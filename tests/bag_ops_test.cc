// Tests for the semantic bag operations (paper §3), including the paper's
// exact quantitative claims:
//  * §1 / §5: |P(n·a)| = n+1 distinct subbags, |P_b(n·a)| has total 2^n;
//  * Definition 5.1's worked example P_b({{a,a}}) vs P({{a,a}});
//  * Proposition 3.2's claim: δ(P(B)) has m(m+1)^k/2 occurrences of each
//    constant, δδPP(B) has 2^((m+1)^k − 2)·(m+1)^k·m;
//  * algebraic laws (commutativity/associativity, monus identities);
//  * resource-limit failure injection.

#include "src/core/bag_ops.h"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "src/core/encoding.h"
#include "src/core/iso.h"
#include "src/stats/sampler.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace bagalg {
namespace {

Value A(const char* name) { return MakeAtom(name); }

Bag B(std::initializer_list<std::pair<Value, uint64_t>> items) {
  return MakeBag(items);
}

// ------------------------------------------------------------ basic merges

TEST(BagOpsTest, AdditiveUnionAddsCounts) {
  Bag a = B({{A("x"), 2}, {A("y"), 1}});
  Bag b = B({{A("x"), 3}, {A("z"), 4}});
  auto r = AdditiveUnion(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->CountOf(A("x")), Mult(5));
  EXPECT_EQ(r->CountOf(A("y")), Mult(1));
  EXPECT_EQ(r->CountOf(A("z")), Mult(4));
  EXPECT_EQ(r->TotalCount(), Mult(10));
}

TEST(BagOpsTest, SubtractIsMonus) {
  Bag a = B({{A("x"), 2}, {A("y"), 5}});
  Bag b = B({{A("x"), 3}, {A("y"), 2}});
  auto r = Subtract(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->CountOf(A("x")), Mult(0));  // sup(0, 2-3)
  EXPECT_EQ(r->CountOf(A("y")), Mult(3));
  EXPECT_EQ(r->DistinctCount(), 1u);  // zero-count entries dropped
}

TEST(BagOpsTest, MaxUnionTakesSup) {
  Bag a = B({{A("x"), 2}, {A("y"), 5}});
  Bag b = B({{A("x"), 3}});
  auto r = MaxUnion(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->CountOf(A("x")), Mult(3));
  EXPECT_EQ(r->CountOf(A("y")), Mult(5));
}

TEST(BagOpsTest, IntersectTakesInf) {
  Bag a = B({{A("x"), 2}, {A("y"), 5}});
  Bag b = B({{A("x"), 3}, {A("z"), 1}});
  auto r = Intersect(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->CountOf(A("x")), Mult(2));
  EXPECT_FALSE(r->Contains(A("y")));
  EXPECT_FALSE(r->Contains(A("z")));
}

TEST(BagOpsTest, MergeOpsRejectIncompatibleTypes) {
  Bag atoms = MakeBagOf({A("x")});
  Bag tuples = MakeBagOf({MakeTuple({A("x")})});
  EXPECT_FALSE(AdditiveUnion(atoms, tuples).ok());
  EXPECT_FALSE(Subtract(atoms, tuples).ok());
  EXPECT_FALSE(MaxUnion(atoms, tuples).ok());
  EXPECT_FALSE(Intersect(atoms, tuples).ok());
}

TEST(BagOpsTest, MergeWithTypedEmptyKeepsType) {
  Bag a = MakeBagOf({MakeTuple({A("x")})});
  Bag empty(Type::Tuple({Type::Atom()}));
  auto r = AdditiveUnion(a, empty);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, a);
}

// -------------------------------------------------------- Cartesian product

TEST(BagOpsTest, ProductMultipliesCounts) {
  Bag a = B({{MakeTuple({A("x")}), 2}});
  Bag b = B({{MakeTuple({A("y"), A("z")}), 3}});
  auto r = CartesianProduct(a, b);
  ASSERT_TRUE(r.ok());
  Value t = MakeTuple({A("x"), A("y"), A("z")});
  EXPECT_EQ(r->CountOf(t), Mult(6));
  EXPECT_EQ(r->DistinctCount(), 1u);
}

TEST(BagOpsTest, ProductRequiresTuples) {
  Bag atoms = MakeBagOf({A("x")});
  Bag tuples = MakeBagOf({MakeTuple({A("x")})});
  EXPECT_FALSE(CartesianProduct(atoms, tuples).ok());
}

TEST(BagOpsTest, ProductWithEmptyIsTypedEmpty) {
  Bag a = MakeBagOf({MakeTuple({A("x")})});
  Bag empty(Type::Tuple({Type::Atom(), Type::Atom()}));
  auto r = CartesianProduct(a, empty);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(r->element_type(),
            Type::Tuple({Type::Atom(), Type::Atom(), Type::Atom()}));
}

// ---------------------------------------------------------------- powerset

TEST(BagOpsTest, PowersetOfNDuplicatesHasNPlusOneSubbags) {
  // §1: "the powerset of a bag containing n occurrences of a single
  // constant has cardinality n+1".
  for (uint64_t n = 0; n <= 8; ++n) {
    Bag bn = NCopies(Mult(n), A("a"));
    auto p = Powerset(bn);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->TotalCount(), Mult(n + 1)) << "n=" << n;
    EXPECT_TRUE(p->IsSetLike());
  }
}

TEST(BagOpsTest, PowersetWorkedExample) {
  // P({{a,a}}) = {{ {{}}, {{a}}, {{a,a}} }} (§5, Definition 5.1 example).
  Bag b = B({{A("a"), 2}});
  auto p = Powerset(b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->TotalCount(), Mult(3));
  EXPECT_EQ(p->CountOf(Value::FromBag(Bag())), Mult(1));
  EXPECT_EQ(p->CountOf(Value::FromBag(B({{A("a"), 1}}))), Mult(1));
  EXPECT_EQ(p->CountOf(Value::FromBag(B({{A("a"), 2}}))), Mult(1));
}

TEST(BagOpsTest, PowersetCountsProductOfMultPlusOne) {
  // Distinct subbags of a bag with multiplicities m_i number Π (m_i + 1).
  Bag b = B({{A("a"), 2}, {A("b"), 3}, {A("c"), 1}});
  auto p = Powerset(b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->TotalCount(), Mult(3 * 4 * 2));
  // Every member is a subbag of b, each exactly once.
  for (const BagEntry& e : p->entries()) {
    EXPECT_EQ(e.count, Mult(1));
    EXPECT_TRUE(e.value.bag().SubBagOf(b));
  }
}

TEST(BagOpsTest, PowersetOfEmptyIsSingletonEmpty) {
  auto p = Powerset(Bag(Type::Atom()));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->TotalCount(), Mult(1));
  EXPECT_EQ(p->entries()[0].value, Value::FromBag(Bag()));
}

// ---------------------------------------------------------------- powerbag

TEST(BagOpsTest, PowerbagWorkedExample) {
  // P_b({{a,a}}) = {{ {{}}, {{a}}, {{a}}, {{a,a}} }} (Definition 5.1).
  Bag b = B({{A("a"), 2}});
  auto p = Powerbag(b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->TotalCount(), Mult(4));
  EXPECT_EQ(p->CountOf(Value::FromBag(Bag())), Mult(1));
  EXPECT_EQ(p->CountOf(Value::FromBag(B({{A("a"), 1}}))), Mult(2));
  EXPECT_EQ(p->CountOf(Value::FromBag(B({{A("a"), 2}}))), Mult(1));
}

TEST(BagOpsTest, PowerbagTotalIsTwoToTheCardinality) {
  // §1: the powerbag of n occurrences of one constant has cardinality 2^n.
  for (uint64_t n = 0; n <= 10; ++n) {
    Bag bn = NCopies(Mult(n), A("a"));
    auto p = Powerbag(bn);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->TotalCount(), BigNat::TwoPow(n)) << "n=" << n;
  }
  // And in general for mixed multiplicities: total 2^|B|.
  Bag b = B({{A("a"), 3}, {A("b"), 2}});
  auto p = Powerbag(b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->TotalCount(), BigNat::TwoPow(5));
}

TEST(BagOpsTest, PowerbagCountsAreBinomialProducts) {
  Bag b = B({{A("a"), 3}, {A("b"), 2}});
  auto p = Powerbag(b);
  ASSERT_TRUE(p.ok());
  // Subbag {a*2, b*1} appears C(3,2)*C(2,1) = 6 times.
  Value sub = Value::FromBag(B({{A("a"), 2}, {A("b"), 1}}));
  EXPECT_EQ(p->CountOf(sub), Mult(6));
}

TEST(BagOpsTest, PowerbagEqualsPowersetOnSets) {
  // On duplicate-free bags the two operators agree (§3's remark that the
  // bag operators restrict to the relational ones on sets).
  Rng rng(7);
  FlatBagSpec spec;
  spec.max_mult = 1;
  Bag set_like = DupElim(RandomFlatBag(rng, spec)).value();
  auto ps = Powerset(set_like);
  auto pb = Powerbag(set_like);
  ASSERT_TRUE(ps.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_EQ(*ps, *pb);
}

// ------------------------------------------------------------- bag-destroy

TEST(BagOpsTest, BagDestroyFlattensWithAdditiveUnion) {
  Bag b1 = B({{A("x"), 2}});
  Bag b2 = B({{A("x"), 1}, {A("y"), 1}});
  Bag outer = MakeBagOf({Value::FromBag(b1), Value::FromBag(b2)});
  auto r = BagDestroy(outer);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->CountOf(A("x")), Mult(3));
  EXPECT_EQ(r->CountOf(A("y")), Mult(1));
}

TEST(BagOpsTest, BagDestroyScalesByOuterMultiplicity) {
  Bag inner = B({{A("x"), 2}});
  Bag outer = B({{Value::FromBag(inner), 5}});
  auto r = BagDestroy(outer);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->CountOf(A("x")), Mult(10));
}

TEST(BagOpsTest, BagDestroyRequiresBagElements) {
  Bag flat = MakeBagOf({A("x")});
  EXPECT_FALSE(BagDestroy(flat).ok());
}

// -------------------------------------------------- Proposition 3.2 claims

TEST(BagOpsTest, Prop32DeltaPowersetExactFormula) {
  // If B holds k constants with m occurrences each, δ(P(B)) contains
  // m(m+1)^k / 2 occurrences of each constant.
  for (uint64_t k = 1; k <= 3; ++k) {
    for (uint64_t m = 1; m <= 3; ++m) {
      Bag::Builder builder;
      for (uint64_t i = 0; i < k; ++i) {
        builder.Add(A(("c" + std::to_string(i)).c_str()), Mult(m));
      }
      Bag b = std::move(std::move(builder).Build()).value();
      auto dp = BagDestroy(Powerset(b).value());
      ASSERT_TRUE(dp.ok());
      BigNat expected = Mult(m) * BigNat::Pow(Mult(m + 1), k);
      auto half = expected.DivMod(Mult(2));
      ASSERT_TRUE(half.ok());
      ASSERT_TRUE(half->remainder.IsZero());
      for (uint64_t i = 0; i < k; ++i) {
        EXPECT_EQ(dp->CountOf(A(("c" + std::to_string(i)).c_str())),
                  half->quotient)
            << "k=" << k << " m=" << m;
      }
    }
  }
}

TEST(BagOpsTest, Prop32DoubleDeltaDoublePowersetExactFormula) {
  // δδPP(B) contains 2^((m+1)^k − 2) · (m+1)^k · m occurrences of each
  // constant (Prop 3.2 claim).
  for (uint64_t k = 1; k <= 2; ++k) {
    for (uint64_t m = 1; m <= 2; ++m) {
      Bag::Builder builder;
      for (uint64_t i = 0; i < k; ++i) {
        builder.Add(A(("d" + std::to_string(i)).c_str()), Mult(m));
      }
      Bag b = std::move(std::move(builder).Build()).value();
      Limits limits;
      limits.max_powerset_results = 1u << 20;
      auto pp = Powerset(Powerset(b, limits).value(), limits);
      ASSERT_TRUE(pp.ok());
      auto dd = BagDestroy(BagDestroy(*pp).value());
      ASSERT_TRUE(dd.ok());
      uint64_t mp1k = 1;
      for (uint64_t i = 0; i < k; ++i) mp1k *= (m + 1);
      BigNat expected =
          BigNat::TwoPow(mp1k - 2) * BigNat(mp1k) * BigNat(m);
      for (uint64_t i = 0; i < k; ++i) {
        EXPECT_EQ(dd->CountOf(A(("d" + std::to_string(i)).c_str())), expected)
            << "k=" << k << " m=" << m;
      }
    }
  }
}

TEST(BagOpsTest, Prop32PowerbagExplodesEachStep) {
  // (δ P_b)^i multiplies the bag size by 2^|B| each round: iterating from
  // |B|=2 gives sizes 2 -> 2·? ... measured here via total counts.
  Bag b = NCopies(Mult(2), A("a"));
  Limits limits;
  limits.max_mult_bits = 1u << 16;
  auto step1 = BagDestroy(Powerbag(b, limits).value(), limits);
  ASSERT_TRUE(step1.ok());
  // δ(P_b(B)): every occurrence participates in half of the 2^n occurrence
  // subsets: n · 2^(n-1) total occurrences. n=2 -> 4.
  EXPECT_EQ(step1->TotalCount(), Mult(4));
  auto step2 = BagDestroy(Powerbag(*step1, limits).value(), limits);
  ASSERT_TRUE(step2.ok());
  // n=4 -> 4 · 2^3 = 32.
  EXPECT_EQ(step2->TotalCount(), Mult(32));
  auto step3 = BagDestroy(Powerbag(*step2, limits).value(), limits);
  ASSERT_TRUE(step3.ok());
  // n=32 -> 32 · 2^31.
  EXPECT_EQ(step3->TotalCount(), Mult(32) * BigNat::TwoPow(31));
}

// ----------------------------------------------------------------- filters

TEST(BagOpsTest, DupElimKeepsOneOfEach) {
  Bag b = B({{A("x"), 7}, {A("y"), 1}});
  auto r = DupElim(b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->CountOf(A("x")), Mult(1));
  EXPECT_EQ(r->CountOf(A("y")), Mult(1));
  EXPECT_TRUE(r->IsSetLike());
}

TEST(BagOpsTest, MapAddsImageMultiplicities) {
  // MAP λx.β(x) example from §3 and image-collision counting.
  Bag b = B({{A("a"), 2}, {A("b"), 1}});
  auto r = MapBag(b, [](const Value&) -> Result<Value> {
    return MakeAtom("k");
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->CountOf(A("k")), Mult(3));  // n = n1 + n2
}

TEST(BagOpsTest, MapBagBetaExample) {
  // MAP β ({{a, a, b}}) = {{ {{a}}, {{a}}, {{b}} }} (§3 example).
  Bag b = B({{A("a"), 2}, {A("b"), 1}});
  auto r = MapBag(b, [](const Value& v) -> Result<Value> {
    return Value::FromBag(MakeBagOf({v}));
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->CountOf(Value::FromBag(MakeBagOf({A("a")}))), Mult(2));
  EXPECT_EQ(r->CountOf(Value::FromBag(MakeBagOf({A("b")}))), Mult(1));
}

TEST(BagOpsTest, SelectKeepsMultiplicities) {
  Bag b = B({{MakeTuple({A("a"), A("a")}), 3}, {MakeTuple({A("a"), A("b")}), 2}});
  auto r = SelectBag(b, [](const Value& v) -> Result<bool> {
    return v.fields()[0] == v.fields()[1];
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->TotalCount(), Mult(3));
  EXPECT_EQ(r->CountOf(MakeTuple({A("a"), A("a")})), Mult(3));
}

// ---------------------------------------------------------- nest / unnest

TEST(BagOpsTest, NestGroupsByComplementAttributes) {
  Bag b = B({{MakeTuple({A("g1"), A("x")}), 2},
             {MakeTuple({A("g1"), A("y")}), 1},
             {MakeTuple({A("g2"), A("x")}), 1}});
  auto r = Nest(b, {1});  // nest the second attribute (0-based here)
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->DistinctCount(), 2u);
  Value g1_group = Value::FromBag(
      B({{MakeTuple({A("x")}), 2}, {MakeTuple({A("y")}), 1}}));
  EXPECT_EQ(r->CountOf(MakeTuple({A("g1"), g1_group})), Mult(1));
}

TEST(BagOpsTest, UnnestInvertsNestOnGroups) {
  Bag b = B({{MakeTuple({A("g1"), A("x")}), 2},
             {MakeTuple({A("g1"), A("y")}), 1},
             {MakeTuple({A("g2"), A("x")}), 1}});
  auto nested = Nest(b, {1});
  ASSERT_TRUE(nested.ok());
  auto back = Unnest(*nested, 1);
  ASSERT_TRUE(back.ok());
  // Unnest yields tuples [group_key, inner_tuple]; flattening the inner
  // unary tuples recovers the original pairs.
  auto flat = MapBag(*back, [](const Value& v) -> Result<Value> {
    return MakeTuple({v.fields()[0], v.fields()[1].fields()[0]});
  });
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(*flat, b);
}

// -------------------------------------------------------------- properties

class BagOpsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BagOpsPropertyTest, AlgebraicLaws) {
  Rng rng(GetParam());
  FlatBagSpec spec;
  for (int i = 0; i < 25; ++i) {
    Bag a = RandomFlatBag(rng, spec);
    Bag b = RandomFlatBag(rng, spec);
    Bag c = RandomFlatBag(rng, spec);
    // Commutativity (§3: ⊎, ∪, ∩ are commutative).
    EXPECT_EQ(*AdditiveUnion(a, b), *AdditiveUnion(b, a));
    EXPECT_EQ(*MaxUnion(a, b), *MaxUnion(b, a));
    EXPECT_EQ(*Intersect(a, b), *Intersect(b, a));
    // Associativity (§3: ⊎, ∪, ∩, × are associative).
    EXPECT_EQ(*AdditiveUnion(*AdditiveUnion(a, b), c),
              *AdditiveUnion(a, *AdditiveUnion(b, c)));
    EXPECT_EQ(*MaxUnion(*MaxUnion(a, b), c), *MaxUnion(a, *MaxUnion(b, c)));
    EXPECT_EQ(*Intersect(*Intersect(a, b), c),
              *Intersect(a, *Intersect(b, c)));
    EXPECT_EQ(*CartesianProduct(CartesianProduct(a, b).value(), c),
              *CartesianProduct(a, CartesianProduct(b, c).value()));
    // Monus laws: (a ⊎ b) − b = a; a − a = ∅.
    EXPECT_EQ(*Subtract(*AdditiveUnion(a, b), b), a);
    EXPECT_TRUE(Subtract(a, a)->empty());
    // ∪ and ∩ from ⊎ and − ([Alb91], §3): a ∩ b = a − (a − b),
    // a ∪ b = (a − b) ⊎ b.
    EXPECT_EQ(*Intersect(a, b), *Subtract(a, *Subtract(a, b)));
    EXPECT_EQ(*MaxUnion(a, b), *AdditiveUnion(*Subtract(a, b), b));
  }
}

TEST_P(BagOpsPropertyTest, SetRestrictionMatchesRelationalSemantics) {
  // On duplicate-free bags, −, ∩, ∪ behave exactly as set operations (§3).
  Rng rng(GetParam() ^ 0x5555);
  FlatBagSpec spec;
  spec.max_mult = 1;
  for (int i = 0; i < 25; ++i) {
    // Repeated draws of the same tuple merge to multiplicity > 1, so
    // deduplicate to obtain genuine sets.
    Bag a = DupElim(RandomFlatBag(rng, spec)).value();
    Bag b = DupElim(RandomFlatBag(rng, spec)).value();
    auto u = MaxUnion(a, b);
    auto n = Intersect(a, b);
    auto d = Subtract(a, b);
    ASSERT_TRUE(u.ok() && n.ok() && d.ok());
    EXPECT_TRUE(u->IsSetLike());
    for (const BagEntry& e : u->entries()) {
      EXPECT_TRUE(a.Contains(e.value) || b.Contains(e.value));
    }
    for (const BagEntry& e : n->entries()) {
      EXPECT_TRUE(a.Contains(e.value) && b.Contains(e.value));
    }
    for (const BagEntry& e : d->entries()) {
      EXPECT_TRUE(a.Contains(e.value) && !b.Contains(e.value));
    }
  }
}

TEST_P(BagOpsPropertyTest, GenericityUnderAtomPermutation) {
  // Operations commute with database isomorphisms (§2 genericity).
  Rng rng(GetParam() ^ 0x777);
  FlatBagSpec spec;
  for (int i = 0; i < 10; ++i) {
    Bag a = RandomFlatBag(rng, spec);
    Bag b = RandomFlatBag(rng, spec);
    std::unordered_set<AtomId> atom_set;
    CollectAtoms(a, &atom_set);
    CollectAtoms(b, &atom_set);
    std::vector<AtomId> atoms(atom_set.begin(), atom_set.end());
    Isomorphism h = Isomorphism::RandomPermutation(atoms, rng);
    auto lhs = h.Apply(*AdditiveUnion(a, b));
    auto rhs = AdditiveUnion(*h.Apply(a), *h.Apply(b));
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    EXPECT_EQ(*lhs, *rhs);
    auto lhs2 = h.Apply(*Powerset(a));
    auto rhs2 = Powerset(*h.Apply(a));
    ASSERT_TRUE(lhs2.ok() && rhs2.ok());
    EXPECT_EQ(*lhs2, *rhs2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BagOpsPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// --------------------------------------------------------- failure injection

TEST(BagOpsLimitsTest, PowersetRespectsResultBudget) {
  Bag b = NCopies(Mult(1000), A("a"));
  Limits limits;
  limits.max_powerset_results = 100;
  auto p = Powerset(b, limits);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kResourceExhausted);
}

TEST(BagOpsLimitsTest, PowerbagRespectsMultBudget) {
  Bag b = NCopies(Mult(100000), A("a"));
  Limits limits;
  limits.max_powerset_results = 1u << 20;
  limits.max_mult_bits = 8;
  auto p = Powerbag(b, limits);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kResourceExhausted);
}

TEST(BagOpsLimitsTest, ProductRespectsDistinctBudget) {
  Bag::Builder ba, bb;
  for (int i = 0; i < 40; ++i) {
    ba.AddOne(MakeTuple({MakeAtom("l" + std::to_string(i))}));
    bb.AddOne(MakeTuple({MakeAtom("r" + std::to_string(i))}));
  }
  Bag a = std::move(std::move(ba).Build()).value();
  Bag b = std::move(std::move(bb).Build()).value();
  Limits limits;
  limits.max_distinct = 100;  // 40*40 = 1600 > 100
  auto p = CartesianProduct(a, b, limits);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kResourceExhausted);
}

TEST(BagOpsLimitsTest, BagDestroyRespectsMultBudget) {
  Bag inner = NCopies(BigNat::TwoPow(40), A("a"));
  Bag outer = B({{Value::FromBag(inner), 1u << 30}});
  Limits limits;
  limits.max_mult_bits = 32;
  auto r = BagDestroy(outer, limits);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// ------------------------------------------- determinism across thread counts

/// Restores the default pool configuration when a test exits.
struct PoolConfigGuard {
  ~PoolConfigGuard() { ThreadPool::Configure(ParallelOptions::Default()); }
};

/// A bag of `n` distinct unary tuples with varying multiplicities.
Bag WideTupleBag(size_t n, const char* prefix) {
  Bag::Builder builder;
  for (size_t i = 0; i < n; ++i) {
    builder.Add(MakeTuple({MakeAtom(prefix + std::to_string(i))}),
                Mult(i % 5 + 1));
  }
  return std::move(builder).Build().value();
}

struct KernelResults {
  Bag uni, sub, prod, pset, pbag;
};

KernelResults RunKernels(const Bag& left, const Bag& right,
                         const Bag& multbag) {
  KernelResults r;
  r.uni = AdditiveUnion(left, right).value();
  r.sub = Subtract(left, right).value();
  r.prod = CartesianProduct(left, right).value();
  r.pset = Powerset(multbag).value();
  r.pbag = Powerbag(multbag).value();
  return r;
}

void ExpectIdentical(const KernelResults& x, const KernelResults& y) {
  // Byte-identical: canonical equality, hash, and rendering all agree.
  const Bag* xs[] = {&x.uni, &x.sub, &x.prod, &x.pset, &x.pbag};
  const Bag* ys[] = {&y.uni, &y.sub, &y.prod, &y.pset, &y.pbag};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(*xs[i], *ys[i]) << "kernel " << i;
    EXPECT_EQ(xs[i]->Hash(), ys[i]->Hash()) << "kernel " << i;
    EXPECT_EQ(xs[i]->ToString(), ys[i]->ToString()) << "kernel " << i;
  }
}

TEST(BagOpsDeterminismTest, KernelsIdenticalForOneTwoAndEightThreads) {
  PoolConfigGuard guard;
  // 64x64 product = 4096 pairs (above the pair grain) and a powerset of
  // 8^4 = 4096 subbags (above the subbag grain), so the multi-thread
  // configurations genuinely dispatch in parallel.
  Bag left = WideTupleBag(64, "dl");
  Bag right = WideTupleBag(64, "dr");
  Bag multbag = B({{A("p"), 7}, {A("q"), 7}, {A("r"), 7}, {A("s"), 7}});

  ThreadPool::Configure({1, 4096});
  KernelResults serial = RunKernels(left, right, multbag);
  ThreadPool::Configure({2, 64});
  KernelResults two = RunKernels(left, right, multbag);
  ThreadPool::Configure({8, 16});
  KernelResults eight = RunKernels(left, right, multbag);

  ExpectIdentical(serial, two);
  ExpectIdentical(serial, eight);
  // Sanity: the parallel runs computed the real thing.
  EXPECT_EQ(serial.prod.DistinctCount(), 64u * 64u);
  EXPECT_EQ(serial.pset.DistinctCount(), 4096u);
  EXPECT_EQ(serial.pbag.TotalCount(),
            BigNat::TwoPow(7 * 4));  // |P_b(B)| = 2^|B|
}

TEST(BagOpsDeterminismTest, BuilderCanonicalizationIdenticalAcrossThreads) {
  PoolConfigGuard guard;
  Rng rng(2024);
  FlatBagSpec spec;
  spec.arity = 2;
  spec.num_atoms = 12;
  spec.num_elements = 20000;  // large enough for the parallel sort path
  spec.max_mult = 9;
  ThreadPool::Configure({1, 4096});
  Bag serial = RandomFlatBag(rng, spec);
  rng = Rng(2024);
  ThreadPool::Configure({8, 128});
  Bag parallel = RandomFlatBag(rng, spec);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial.Hash(), parallel.Hash());
  EXPECT_EQ(serial.ToString(), parallel.ToString());
}

// ------------------------------------------------ indexed merge fast paths

TEST(BagOpsIndexTest, IndexedIntersectMatchesMergeWalk) {
  // large is big enough to carry a hash index and small is a fraction of
  // it, so Intersect takes the probe path; verify against a linear scan.
  Bag large = WideTupleBag(256, "ix");
  Bag::Builder sb;
  for (size_t i = 0; i < 32; ++i) {
    // Every other element overlaps with `large`.
    const std::string name =
        i % 2 == 0 ? "ix" + std::to_string(i * 4) : "only" + std::to_string(i);
    sb.Add(MakeTuple({MakeAtom(name)}), Mult(2));
  }
  Bag small = std::move(sb).Build().value();

  auto isect = Intersect(small, large);
  ASSERT_TRUE(isect.ok());
  auto isect_flipped = Intersect(large, small);
  ASSERT_TRUE(isect_flipped.ok());
  EXPECT_EQ(*isect, *isect_flipped);

  Bag::Builder expected;
  for (const BagEntry& e : small.entries()) {
    Mult in_large;
    for (const BagEntry& f : large.entries()) {
      if (f.value == e.value) in_large = f.count;
    }
    Mult m = Mult::Min(e.count, in_large);
    if (!m.IsZero()) expected.Add(e.value, std::move(m));
  }
  EXPECT_EQ(*isect, std::move(expected).Build().value());
}

TEST(BagOpsIndexTest, IndexedSubtractMatchesMergeWalk) {
  Bag large = WideTupleBag(256, "sx");
  Bag::Builder sb;
  for (size_t i = 0; i < 32; ++i) {
    const std::string name =
        i % 2 == 0 ? "sx" + std::to_string(i * 4) : "keep" + std::to_string(i);
    sb.Add(MakeTuple({MakeAtom(name)}), Mult(3));
  }
  Bag small = std::move(sb).Build().value();

  auto diff = Subtract(small, large);
  ASSERT_TRUE(diff.ok());
  Bag::Builder expected;
  for (const BagEntry& e : small.entries()) {
    Mult in_large;
    for (const BagEntry& f : large.entries()) {
      if (f.value == e.value) in_large = f.count;
    }
    Mult m = e.count.MonusSub(in_large);
    if (!m.IsZero()) expected.Add(e.value, std::move(m));
  }
  EXPECT_EQ(*diff, std::move(expected).Build().value());
}

TEST(BagOpsIndexTest, EmptyOperandIdentities) {
  Bag a = WideTupleBag(8, "eid");
  Bag empty;
  EXPECT_EQ(AdditiveUnion(a, empty).value(), a);
  EXPECT_EQ(AdditiveUnion(empty, a).value(), a);
  EXPECT_EQ(MaxUnion(a, empty).value(), a);
  EXPECT_EQ(Subtract(a, empty).value(), a);
  EXPECT_TRUE(Subtract(empty, a).value().empty());
  EXPECT_TRUE(Intersect(a, empty).value().empty());
  EXPECT_TRUE(Intersect(empty, a).value().empty());
  // Typed-empty results keep the joined element type.
  EXPECT_EQ(Intersect(a, empty).value().element_type(), a.element_type());
}

}  // namespace
}  // namespace bagalg
