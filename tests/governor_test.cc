// Tests for the runtime resource governor: cancellation tokens, deadline /
// memory-cap / cancellation trips, checkpoint tickers, thread-pool governor
// propagation, deterministic fault injection (one-shot sweeps and the
// probabilistic mode), the REPL \timeout / \memlimit commands, and the
// governor.* metric mirroring. Every abort path must surface as a typed
// Status — never a crash — and leave the session usable.

#include "src/util/governor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/algebra/builder.h"
#include "src/algebra/eval.h"
#include "src/exec/compile.h"
#include "src/lang/script.h"
#include "src/obs/metrics.h"
#include "src/util/bignat.h"
#include "src/util/fault.h"
#include "src/util/parallel.h"

namespace bagalg {
namespace {

// ------------------------------------------------------------- fixtures

/// Disarms fault injection on scope exit so a failing test cannot leave a
/// process-global fault armed for the tests after it.
struct FaultDisarmer {
  ~FaultDisarmer() { fault::Disarm(); }
};

/// Restores the default global thread pool on scope exit.
struct PoolRestorer {
  ~PoolRestorer() { ThreadPool::Configure(ParallelOptions::Default()); }
};

Value A(const std::string& name) { return MakeAtom(name); }

/// A bag of n distinct atoms e0..e(n-1); pow() of it has 2^n subbags.
Bag Atoms(size_t n) {
  Bag::Builder b;
  for (size_t i = 0; i < n; ++i) b.AddOne(A("e" + std::to_string(i)));
  auto r = std::move(b).Build();
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? std::move(r).value() : Bag();
}

Database Db(std::initializer_list<std::pair<std::string, Bag>> items) {
  Database db;
  for (const auto& [name, bag] : items) {
    Status st = db.Put(name, bag);
    EXPECT_TRUE(st.ok()) << st;
  }
  return db;
}

/// A REPL `let` line binding NAME to a bag of n distinct atoms.
std::string LetAtoms(const std::string& name, size_t n) {
  std::string line = "let " + name + " = {{";
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) line += ", ";
    line += name + std::to_string(i);
  }
  return line + "}}";
}

GovernorOptions ExpiredDeadline() {
  GovernorOptions options;
  options.wall_limit_ns = 1;
  return options;
}

// ------------------------------------------------------ token + scope

TEST(CancellationTokenTest, DefaultTokenIsInert) {
  CancellationToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.cancelled());
  t.Cancel();  // no-op, must not crash
  EXPECT_FALSE(t.cancelled());
}

TEST(CancellationTokenTest, CopiesShareTheFlag) {
  CancellationToken t = CancellationToken::Create();
  EXPECT_TRUE(t.valid());
  CancellationToken copy = t;
  EXPECT_FALSE(copy.cancelled());
  t.Cancel();
  EXPECT_TRUE(copy.cancelled());
  t.Reset();
  EXPECT_FALSE(copy.cancelled());
}

TEST(GovernorScopeTest, InstallsAndRestores) {
  EXPECT_EQ(CurrentGovernor(), nullptr);
  ResourceGovernor outer{GovernorOptions{}};
  {
    GovernorScope scope(&outer);
    EXPECT_EQ(CurrentGovernor(), &outer);
    {
      ResourceGovernor inner{GovernorOptions{}};
      GovernorScope nested(&inner);
      EXPECT_EQ(CurrentGovernor(), &inner);
    }
    EXPECT_EQ(CurrentGovernor(), &outer);
    {
      // Installing nullptr keeps the outer governor in effect.
      GovernorScope noop(nullptr);
      EXPECT_EQ(CurrentGovernor(), &outer);
    }
  }
  EXPECT_EQ(CurrentGovernor(), nullptr);
}

TEST(GovernorScopeTest, UngovernedHooksAreNoOps) {
  ASSERT_EQ(CurrentGovernor(), nullptr);
  EXPECT_TRUE(GovernorCheckpoint().ok());
  GovernorAccountBytes(1 << 20);  // must not crash or trip anything
  CheckpointTicker ticker(/*bytes_per_tick=*/1);
  EXPECT_FALSE(ticker.active());
  for (int i = 0; i < 2000; ++i) EXPECT_FALSE(ticker.Due());
  EXPECT_TRUE(ticker.Flush().ok());
}

// ---------------------------------------------------------- trip paths

TEST(GovernorTest, ExpiredDeadlineTrips) {
  ResourceGovernor gov(ExpiredDeadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  Status st = gov.Check();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(gov.tripped());
  // Sticky: every later checkpoint repeats the recorded status.
  EXPECT_EQ(gov.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernorTest, MemoryCapTrips) {
  GovernorOptions options;
  options.memory_limit_bytes = 100;
  ResourceGovernor gov(options);
  EXPECT_TRUE(gov.Check().ok());
  gov.AccountBytes(250);
  EXPECT_EQ(gov.bytes_allocated(), 250u);
  Status st = gov.Check();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("250"), std::string::npos);
  EXPECT_NE(st.message().find("100"), std::string::npos);
}

TEST(GovernorTest, CancellationTrips) {
  GovernorOptions options;
  options.cancel = CancellationToken::Create();
  ResourceGovernor gov(options);
  EXPECT_TRUE(gov.Check().ok());
  options.cancel.Cancel();
  EXPECT_EQ(gov.Check().code(), StatusCode::kCancelled);
}

TEST(GovernorTest, FirstTripWinsAndIsSticky) {
  // Cancellation is checked before the memory cap, so with both violated
  // the first Check records kCancelled...
  GovernorOptions options;
  options.memory_limit_bytes = 1;
  options.cancel = CancellationToken::Create();
  options.cancel.Cancel();
  ResourceGovernor gov(options);
  gov.AccountBytes(1000);
  EXPECT_EQ(gov.Check().code(), StatusCode::kCancelled);
  // ...and un-cancelling does not un-trip: the memcap violation persists
  // but the recorded first status keeps being returned.
  options.cancel.Reset();
  EXPECT_EQ(gov.Check().code(), StatusCode::kCancelled);
}

TEST(GovernorTest, TickerChecksOnlyAtStrideBoundaries) {
  GovernorOptions options;
  options.memory_limit_bytes = 10;
  ResourceGovernor gov(options);
  CheckpointTicker ticker(&gov, /*bytes_per_tick=*/100);
  ASSERT_TRUE(ticker.active());
  // Bytes are charged lazily: no check is due until the stride-th tick.
  for (uint64_t i = 0; i + 1 < kCheckpointStride; ++i) {
    EXPECT_FALSE(ticker.Due()) << "tick " << i;
  }
  EXPECT_EQ(gov.bytes_allocated(), 0u);
  ASSERT_TRUE(ticker.Due());
  Status st = ticker.Flush();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.bytes_allocated(), 100 * kCheckpointStride);
}

TEST(GovernorTest, StatsCountTrips) {
  GovernorStats before = ResourceGovernor::Stats();
  ResourceGovernor gov(ExpiredDeadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(gov.Check().ok());
  EXPECT_FALSE(gov.Check().ok());  // sticky repeat must not double-count
  GovernorStats after = ResourceGovernor::Stats();
  EXPECT_EQ(after.deadline_trips, before.deadline_trips + 1);
  EXPECT_GE(after.checkpoints, before.checkpoints + 2);
}

TEST(GovernorTest, NewStatusCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

// ------------------------------------------------- accounting coverage

TEST(GovernorTest, BagBuilderAccountsLargeOutputs) {
  ResourceGovernor gov{GovernorOptions{}};
  GovernorScope scope(&gov);
  Bag b = Atoms(2 * kGovernorAccountMinEntries);
  EXPECT_EQ(b.DistinctCount(), 2 * kGovernorAccountMinEntries);
  EXPECT_GT(gov.bytes_allocated(), 0u);
}

TEST(GovernorTest, BigNatLimbGrowthIsAccounted) {
  ResourceGovernor gov{GovernorOptions{}};
  GovernorScope scope(&gov);
  // 2^128 needs four 32-bit limbs — past the small-value fast path.
  auto n = BigNat::FromDecimal("340282366920938463463374607431768211456");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_GT(gov.bytes_allocated(), 0u);
}

// ------------------------------------------------ engine-level trips

TEST(GovernorEvalTest, DeadlineSurfacesAsTypedError) {
  Database db = Db({{"R", Atoms(18)}});
  Evaluator eval;
  ResourceGovernor gov(ExpiredDeadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  eval.set_governor(&gov);
  auto r = eval.EvalToBag(Pow(Input("R")), db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // Detached evaluator works again.
  eval.set_governor(nullptr);
  EXPECT_TRUE(eval.EvalToBag(Input("R"), db).ok());
}

TEST(GovernorEvalTest, MemoryCapSurfacesAsTypedError) {
  Database db = Db({{"R", Atoms(18)}});
  Evaluator eval;
  GovernorOptions options;
  options.memory_limit_bytes = 4096;
  ResourceGovernor gov(options);
  eval.set_governor(&gov);
  auto r = eval.EvalToBag(Pow(Input("R")), db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(gov.bytes_allocated(), options.memory_limit_bytes);
}

TEST(GovernorEvalTest, CrossThreadCancellationAborts) {
  Database db = Db({{"R", Atoms(22)}});
  Evaluator eval;
  GovernorOptions options;
  options.cancel = CancellationToken::Create();
  ResourceGovernor gov(options);
  eval.set_governor(&gov);
  std::thread canceller([&options] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    options.cancel.Cancel();
  });
  // 2^22 subbags takes far longer than 20ms, so the cancel always lands
  // mid-enumeration.
  auto r = eval.EvalToBag(Pow(Input("R")), db);
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(GovernorEvalTest, PoolWorkersInheritTheGovernor) {
  PoolRestorer restore;
  ThreadPool::Configure(ParallelOptions{2, 4096});
  ResourceGovernor gov{GovernorOptions{}};
  GovernorScope scope(&gov);
  std::vector<ResourceGovernor*> seen(8, nullptr);
  ThreadPool::Global().Run(seen.size(),
                           [&seen](size_t i) { seen[i] = CurrentGovernor(); });
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], &gov) << "task " << i;
  }
}

TEST(GovernorEvalTest, ResultOrErrorIsThreadCountInvariant) {
  PoolRestorer restore;
  Database db = Db({{"R", Atoms(14)}});
  // Small grain forces the powerset odometer onto the parallel path.
  std::vector<unsigned> thread_counts = {1, 2, 8};
  std::vector<Bag> results;
  for (unsigned threads : thread_counts) {
    ThreadPool::Configure(ParallelOptions{threads, 64});
    Evaluator eval;
    auto ok = eval.EvalToBag(Pow(Input("R")), db);
    ASSERT_TRUE(ok.ok()) << "threads=" << threads << ": " << ok.status();
    results.push_back(std::move(ok).value());
    // A pre-expired deadline yields the same typed error at every count.
    ResourceGovernor gov(ExpiredDeadline());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    eval.set_governor(&gov);
    auto err = eval.EvalToBag(Pow(Input("R")), db);
    ASSERT_FALSE(err.ok()) << "threads=" << threads;
    EXPECT_EQ(err.status().code(), StatusCode::kDeadlineExceeded)
        << "threads=" << threads;
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(GovernorExecTest, PipelineHonorsTheGovernor) {
  Bag::Builder b;
  for (size_t i = 0; i < 40; ++i) {
    b.AddOne(MakeTuple({A("a" + std::to_string(i)), A("b")}));
  }
  auto left = std::move(b).Build();
  ASSERT_TRUE(left.ok());
  Database db = Db({{"B", *left}});
  Expr query = Product(Input("B"), Input("B"));  // 1600 rows > one stride
  exec::ExecOptions options;
  ASSERT_TRUE(exec::RunPipeline(query, db, options).ok());
  ResourceGovernor gov(ExpiredDeadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  options.governor = &gov;
  auto r = exec::RunPipeline(query, db, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

// ------------------------------------------------------ fault injection

TEST(FaultTest, ParseAcceptsTheDocumentedSyntax) {
  auto one_shot = fault::FaultSpec::Parse("alloc:after=42");
  ASSERT_TRUE(one_shot.ok()) << one_shot.status();
  EXPECT_EQ(one_shot->point, fault::FaultPoint::kAlloc);
  EXPECT_EQ(one_shot->after, 42u);
  EXPECT_EQ(one_shot->probability, 0.0);

  auto checkpoint = fault::FaultSpec::Parse("checkpoint:after=7");
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  EXPECT_EQ(checkpoint->point, fault::FaultPoint::kCheckpoint);
  EXPECT_EQ(checkpoint->after, 7u);

  auto prob = fault::FaultSpec::Parse("alloc:p=0.25:seed=9");
  ASSERT_TRUE(prob.ok()) << prob.status();
  EXPECT_DOUBLE_EQ(prob->probability, 0.25);
  EXPECT_EQ(prob->seed, 9u);
}

TEST(FaultTest, ParseRejectsMalformedSpecs) {
  const char* bad[] = {"",           "alloc",          "bogus:after=1",
                       "alloc:p=0",  "alloc:p=1.5",    "alloc:after=x",
                       "alloc:zz=1", "alloc:after=1:p"};
  for (const char* text : bad) {
    EXPECT_FALSE(fault::FaultSpec::Parse(text).ok()) << text;
  }
}

TEST(FaultTest, CheckpointFaultTripsWithTypedStatus) {
  FaultDisarmer disarm;
  fault::FaultSpec spec;
  spec.point = fault::FaultPoint::kCheckpoint;
  spec.after = 0;
  fault::Configure(spec);
  ResourceGovernor gov{GovernorOptions{}};
  Status st = gov.Check();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("fault injection"), std::string::npos);
  EXPECT_EQ(fault::FireCount(), 1u);
  EXPECT_GE(fault::EventCount(), 1u);
}

TEST(FaultTest, AllocFaultSurfacesAtTheNextCheckpoint) {
  FaultDisarmer disarm;
  fault::FaultSpec spec;
  spec.point = fault::FaultPoint::kAlloc;
  spec.after = 0;
  fault::Configure(spec);
  ResourceGovernor gov{GovernorOptions{}};
  gov.AccountBytes(64);  // event 0 fires; the trip lands at the next Check
  Status st = gov.Check();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("fault injection"), std::string::npos);
}

TEST(FaultTest, ProbabilisticModeIsDeterministic) {
  FaultDisarmer disarm;
  fault::FaultSpec spec;
  spec.point = fault::FaultPoint::kAlloc;
  spec.probability = 0.5;
  spec.seed = 9;
  auto run_once = [&spec] {
    fault::Configure(spec);  // resets the event / fire counters
    ResourceGovernor gov{GovernorOptions{}};
    GovernorScope scope(&gov);
    for (int i = 0; i < 100; ++i) gov.AccountBytes(8);
    return std::pair<uint64_t, uint64_t>{fault::EventCount(),
                                         fault::FireCount()};
  };
  auto first = run_once();
  auto second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.first, 100u);
  EXPECT_GT(first.second, 0u);
  EXPECT_LT(first.second, 100u);
}

/// The sweep corpus: nested powerset, product, a map/sel pipeline, and the
/// Volcano exec path — every family of checkpointed loop.
std::vector<std::string> SweepSetup() {
  return {LetAtoms("S", 12), LetAtoms("T", 3),
          "let B = {{[a1, b1], [a2, b2], [a3, b3], [a4, b4], [a5, b5],"
          " [a6, b6], [a7, b7], [a8, b8], [a9, b9], [a10, b10]}}"};
}

std::vector<std::string> SweepCorpus() {
  return {
      "count pow(S)",
      "count pow(pow(T))",
      "eval prod(B, B)",
      "count map(x -> tup(proj(2, x)), sel(x -> proj(1, x) == 'a1, B))",
      "exec prod(B, B)",
  };
}

/// Runs the corpus with a one-shot fault armed at event N. Every statement
/// must either succeed or fail with the expected typed code; afterwards the
/// session must still evaluate queries normally.
void RunFaultSweep(fault::FaultPoint point, StatusCode expected_code) {
  FaultDisarmer disarm;
  PoolRestorer restore;
  ThreadPool::Configure(ParallelOptions{2, 64});
  const uint64_t sweep[] = {0, 1, 2, 3, 4, 5, 6, 7, 15, 31, 64, 1000};
  for (uint64_t after : sweep) {
    fault::FaultSpec spec;
    spec.point = point;
    spec.after = after;
    lang::ScriptRunner runner;
    for (const std::string& line : SweepSetup()) {
      ASSERT_TRUE(runner.RunLine(line).ok()) << line;
    }
    fault::Configure(spec);
    for (const std::string& line : SweepCorpus()) {
      auto r = runner.RunLine(line);
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), expected_code)
            << "after=" << after << " line=" << line << ": " << r.status();
        EXPECT_NE(r.status().message().find("fault injection"),
                  std::string::npos)
            << r.status();
      }
    }
    fault::Disarm();
    auto alive = runner.RunLine("count S");
    ASSERT_TRUE(alive.ok()) << "after=" << after << ": " << alive.status();
    EXPECT_EQ(*alive, "12");
  }
}

TEST(FaultTest, AllocSweepOverQueryCorpus) {
  RunFaultSweep(fault::FaultPoint::kAlloc, StatusCode::kResourceExhausted);
}

TEST(FaultTest, CheckpointSweepOverQueryCorpus) {
  RunFaultSweep(fault::FaultPoint::kCheckpoint, StatusCode::kCancelled);
}

// ------------------------------------------------------------ REPL layer

TEST(GovernorReplTest, TimeoutAndMemlimitCommands) {
  lang::ScriptRunner runner;
  auto on = runner.RunLine("\\timeout 250");
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_EQ(*on, "timeout 250ms");
  EXPECT_EQ(runner.timeout_ms(), 250u);
  auto off = runner.RunLine("\\timeout off");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*off, "timeout off");
  EXPECT_EQ(runner.timeout_ms(), 0u);
  EXPECT_FALSE(runner.RunLine("\\timeout").ok());
  EXPECT_FALSE(runner.RunLine("\\timeout soon").ok());

  auto mem = runner.RunLine("\\memlimit 1048576");
  ASSERT_TRUE(mem.ok()) << mem.status();
  EXPECT_EQ(*mem, "memlimit 1048576 bytes");
  EXPECT_EQ(runner.memlimit_bytes(), 1048576u);
  ASSERT_TRUE(runner.RunLine("\\memlimit off").ok());
  EXPECT_EQ(runner.memlimit_bytes(), 0u);
  EXPECT_FALSE(runner.RunLine("\\memlimit -3").ok());
}

TEST(GovernorReplTest, TimeoutTripsAndSessionSurvives) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 20)).ok());
  ASSERT_TRUE(runner.RunLine("\\timeout 1").ok());
  auto r = runner.RunLine("count pow(R)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(runner.RunLine("\\timeout off").ok());
  auto alive = runner.RunLine("count R");
  ASSERT_TRUE(alive.ok()) << alive.status();
  EXPECT_EQ(*alive, "20");
}

TEST(GovernorReplTest, MemlimitTripsAndSessionSurvives) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 18)).ok());
  ASSERT_TRUE(runner.RunLine("\\memlimit 4096").ok());
  auto r = runner.RunLine("count pow(R)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(runner.RunLine("\\memlimit off").ok());
  auto alive = runner.RunLine("count R");
  ASSERT_TRUE(alive.ok()) << alive.status();
  EXPECT_EQ(*alive, "18");
}

TEST(GovernorReplTest, SessionTokenCancelsARunningStatement) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 22)).ok());
  CancellationToken token = runner.cancel_token();
  std::thread canceller([token]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel();
  });
  auto r = runner.RunLine("count pow(R)");
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  // The token is re-armed per statement, so the session keeps working.
  auto alive = runner.RunLine("count R");
  ASSERT_TRUE(alive.ok()) << alive.status();
  EXPECT_EQ(*alive, "22");
}

// ------------------------------------------------------------- metrics

TEST(GovernorMetricsTest, TripsAreMirroredIntoCounters) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 18)).ok());
  ASSERT_TRUE(runner.RunLine("\\memlimit 4096").ok());
  ASSERT_FALSE(runner.RunLine("count pow(R)").ok());
  auto& metrics = obs::GlobalMetrics();
  // Monotone governor totals surface as counters (Prometheus-typed), not
  // gauges.
  EXPECT_GE(metrics.GetCounter("governor.memcap.trips")->value(), 1u);
  EXPECT_GE(metrics.GetCounter("governor.checkpoints")->value(), 1u);
  EXPECT_GE(metrics.GetCounter("governor.bytes_accounted")->value(), 4096u);
}

TEST(GovernorMetricsTest, PreflightRefusalsCountInBothFamilies) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(
      runner.RunLine("let R = {{[r1], [r2], [r3], [r4]}}").ok());
  ASSERT_TRUE(runner.RunLine("\\budget 5").ok());
  auto& metrics = obs::GlobalMetrics();
  uint64_t legacy = metrics.GetCounter("budget.refusals")->value();
  uint64_t governor = metrics.GetCounter("governor.preflight.refusals")->value();
  auto r = runner.RunLine("eval prod(R, R)");  // estimate 16 > budget 5
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
  EXPECT_EQ(metrics.GetCounter("budget.refusals")->value(), legacy + 1);
  EXPECT_EQ(metrics.GetCounter("governor.preflight.refusals")->value(),
            governor + 1);
}

}  // namespace
}  // namespace bagalg
