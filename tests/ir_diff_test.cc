// Differential corpus for the two execution engines: every query family
// the exec/eval tests exercise runs through the tree-walking evaluator,
// the Volcano pipeline, and the strict IR engine, and the three must
// produce bit-identical canonical bags — at 1, 2, and 8 pool threads, and
// including the abort paths (governor deadline/memcap trips and injected
// checkpoint/alloc faults), where the engines must agree on the *typed
// error* and unwind cleanly enough to rerun identically afterwards.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/exec/compile.h"
#include "src/stats/expr_gen.h"
#include "src/stats/sampler.h"
#include "src/util/fault.h"
#include "src/util/governor.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace bagalg {
namespace {

using exec::RunPipeline;
using exec::RunVolcanoPipeline;

Value A(const char* name) { return MakeAtom(name); }

/// Restores the global pool on scope exit (mirrors governor_test.cc).
struct PoolRestorer {
  ~PoolRestorer() { ThreadPool::Configure(ParallelOptions::Default()); }
};

/// Disarms fault injection on scope exit so a failing assertion cannot
/// poison later tests.
struct FaultDisarmer {
  ~FaultDisarmer() { fault::Disarm(); }
};

/// n distinct 2-tuples [kI, vJ] with small duplicate groups in column 2 —
/// big enough (>512) that every engine crosses checkpoint strides.
Bag Pairs(size_t n) {
  Bag::Builder builder;
  builder.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    builder.AddOne(MakeTuple({MakeAtom("k" + std::to_string(i)),
                              MakeAtom("v" + std::to_string(i % 5))}));
  }
  auto bag = std::move(builder).Build();
  EXPECT_TRUE(bag.ok());
  return *bag;
}

Database CorpusDb() {
  Database db;
  EXPECT_TRUE(db.Put("R", Pairs(700)).ok());
  EXPECT_TRUE(db.Put("R2", Pairs(300)).ok());
  EXPECT_TRUE(
      db.Put("S", MakeBag({{MakeTuple({A("x")}), 5},
                           {MakeTuple({A("y")}), 2},
                           {MakeTuple({A("z")}), 1}}))
          .ok());
  return db;
}

/// Every operator family the exec/eval tests cover, in pipeline
/// combinations: scans, all four unions/merges, ε, fused map/σ chains,
/// cross and equi joins, and shared subplans for the CSE path.
std::vector<Expr> Corpus() {
  // Equi-join of the two pair bags on their duplicate-heavy v columns
  // (probe column 2 against build column 2, i.e. joined column 4).
  Expr join = ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 4),
                                  Product(Input("R"), Input("R2"))),
                           {1, 3});
  return {
      Input("R"),
      Uplus(Input("R"), Input("R2")),
      Monus(Input("R"), Input("R2")),
      Umax(Input("R"), Input("R2")),
      Inter(Input("R"), Input("R2")),
      Eps(ProjectAttrs(Input("R"), {2})),
      Map(Tup({Proj(Var(0), 2), Proj(Var(0), 1)}), Input("R")),
      Select(Proj(Var(0), 2), Proj(Var(0), 2), Input("R")),
      ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 3),
                          Product(Input("R"), Input("S"))),
                   {1, 3}),
      join,
      Product(Input("S"), Input("S")),
      Uplus(Eps(Input("R")), Eps(Input("R"))),
      Monus(Uplus(Input("R"), Input("R")), Input("R")),
      Map(Tup({Proj(Var(0), 1)}),
          Select(Proj(Var(0), 2), Proj(Var(0), 2),
                 Uplus(Input("R"), Input("R2")))),
  };
}

/// Evaluator vs Volcano vs strict IR on one query; all three must agree
/// bit for bit (canonical Bag equality is structural).
void ExpectEnginesAgree(const Expr& q, const Database& db) {
  Evaluator eval;
  auto reference = eval.EvalToBag(q, db);
  ASSERT_TRUE(reference.ok()) << q.ToString() << "\n" << reference.status();
  auto volcano = RunVolcanoPipeline(q, db);
  ASSERT_TRUE(volcano.ok()) << q.ToString() << "\n" << volcano.status();
  exec::ExecOptions strict;
  strict.engine = exec::Engine::kIr;
  auto fused = RunPipeline(q, db, strict);
  ASSERT_TRUE(fused.ok()) << q.ToString() << "\n" << fused.status();
  EXPECT_EQ(*volcano, *reference) << q.ToString();
  EXPECT_EQ(*fused, *reference) << q.ToString();
}

TEST(IrDiffTest, CorpusAgreesAcrossEnginesAndThreadCounts) {
  PoolRestorer restore;
  Database db = CorpusDb();
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool::Configure(ParallelOptions{threads, 64});
    for (const Expr& q : Corpus()) {
      ExpectEnginesAgree(q, db);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ------------------------------------------------------- random queries

class IrDiffFuzzTest : public ::testing::TestWithParam<uint64_t> {};

/// The exec_test fuzz harness re-pointed at the strict IR engine: every
/// generated BALG¹ query must lower (no fallback) and agree with the
/// evaluator exactly.
TEST_P(IrDiffFuzzTest, StrictIrAgreesWithEvaluatorOnBalg1) {
  Rng rng(GetParam());
  Type tup1 = Type::Tuple({Type::Atom()});
  Type tup2 = Type::Tuple({Type::Atom(), Type::Atom()});
  Schema schema{{"R", Type::Bag(tup1)}, {"S", Type::Bag(tup2)}};
  ExprGenOptions options;
  options.max_bag_nesting = 1;  // the BALG¹ pipeline fragment
  options.allow_powerset = false;
  options.growth_rounds = 14;
  Evaluator eval;
  int lowered = 0;
  for (int i = 0; i < 60; ++i) {
    auto e = RandomExpr(rng, schema, options);
    ASSERT_TRUE(e.ok());
    FlatBagSpec spec1;
    spec1.arity = 1;
    spec1.num_elements = 4;
    FlatBagSpec spec2 = spec1;
    spec2.arity = 2;
    Database db;
    ASSERT_TRUE(db.Put("R", RandomFlatBag(rng, spec1)).ok());
    ASSERT_TRUE(db.Put("S", RandomFlatBag(rng, spec2)).ok());
    auto reference = eval.EvalToBag(*e, db);
    ASSERT_TRUE(reference.ok()) << e->ToString();
    exec::ExecOptions strict;
    strict.engine = exec::Engine::kIr;
    auto fused = RunPipeline(*e, db, strict);
    ASSERT_TRUE(fused.ok()) << e->ToString() << "\n" << fused.status();
    ++lowered;
    EXPECT_EQ(*fused, *reference) << e->ToString();
  }
  EXPECT_EQ(lowered, 60);  // the whole generated fragment must lower
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrDiffFuzzTest,
                         ::testing::Values(91, 92, 93, 94));

// ---------------------------------------------------------- abort paths

/// Both engines must turn an already-expired deadline into the same typed
/// error, and leave the governor's trip kind telling the same story.
TEST(IrDiffAbortTest, DeadlineTripsWithTheSameCodeOnBothEngines) {
  Database db = CorpusDb();
  Expr q = Map(Tup({Proj(Var(0), 2), Proj(Var(0), 1)}), Input("R"));
  for (exec::Engine engine : {exec::Engine::kVolcano, exec::Engine::kIr}) {
    GovernorOptions gopts;
    gopts.wall_limit_ns = 1;
    ResourceGovernor gov{gopts};
    exec::ExecOptions options;
    options.engine = engine;
    options.governor = &gov;
    auto out = RunPipeline(q, db, options);
    ASSERT_FALSE(out.ok()) << exec::EngineName(engine);
    EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded)
        << exec::EngineName(engine) << ": " << out.status();
    EXPECT_EQ(gov.trip_kind(), TripKind::kDeadline);
  }
}

TEST(IrDiffAbortTest, MemcapTripsWithTheSameCodeOnBothEngines) {
  Database db = CorpusDb();
  // The cross product materializes far beyond a 4 KiB accounting cap.
  Expr q = Product(Input("R"), Input("R2"));
  for (exec::Engine engine : {exec::Engine::kVolcano, exec::Engine::kIr}) {
    GovernorOptions gopts;
    gopts.memory_limit_bytes = 4096;
    ResourceGovernor gov{gopts};
    exec::ExecOptions options;
    options.engine = engine;
    options.governor = &gov;
    auto out = RunPipeline(q, db, options);
    ASSERT_FALSE(out.ok()) << exec::EngineName(engine);
    EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted)
        << exec::EngineName(engine) << ": " << out.status();
    EXPECT_EQ(gov.trip_kind(), TripKind::kMemcap);
  }
}

/// The BAGALG_FAULT sweep of governor_test.cc, per engine: a one-shot
/// checkpoint fault armed at event N either lets the query finish or
/// aborts it with the typed injection error; after disarming, the same
/// query must rerun to the exact reference result. Sweeping N visits abort
/// sites at different pipeline depths (scan, staged loops, join
/// build/probe, merge kernels).
void RunEngineFaultSweep(exec::Engine engine, fault::FaultPoint point,
                         StatusCode expected_code) {
  FaultDisarmer disarm;
  PoolRestorer restore;
  ThreadPool::Configure(ParallelOptions{2, 64});
  Database db = CorpusDb();
  const Expr queries[] = {
      Map(Tup({Proj(Var(0), 2)}), Input("R")),
      ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 4),
                          Product(Input("R2"), Input("R2"))),
                   {1, 3}),
      Monus(Uplus(Input("R"), Input("R")), Input("R2")),
      Eps(ProjectAttrs(Input("R"), {2})),
  };
  Evaluator eval;
  const uint64_t sweep[] = {0, 1, 2, 3, 5, 8, 13, 33, 150, 5000};
  for (uint64_t after : sweep) {
    for (const Expr& q : queries) {
      auto reference = eval.EvalToBag(q, db);
      ASSERT_TRUE(reference.ok());
      fault::FaultSpec spec;
      spec.point = point;
      spec.after = after;
      fault::Configure(spec);
      {
        ResourceGovernor gov{GovernorOptions{}};
        exec::ExecOptions options;
        options.engine = engine;
        options.governor = &gov;
        auto out = RunPipeline(q, db, options);
        if (!out.ok()) {
          EXPECT_EQ(out.status().code(), expected_code)
              << "engine=" << exec::EngineName(engine) << " after=" << after
              << " q=" << q.ToString() << ": " << out.status();
          EXPECT_NE(out.status().message().find("fault injection"),
                    std::string::npos)
              << out.status();
        } else {
          EXPECT_EQ(*out, *reference) << q.ToString();
        }
      }
      // Clean unwind: disarmed, the identical query must succeed exactly.
      fault::Disarm();
      ResourceGovernor gov{GovernorOptions{}};
      exec::ExecOptions options;
      options.engine = engine;
      options.governor = &gov;
      auto again = RunPipeline(q, db, options);
      ASSERT_TRUE(again.ok())
          << "engine=" << exec::EngineName(engine) << " after=" << after
          << ": " << again.status();
      EXPECT_EQ(*again, *reference) << q.ToString();
    }
  }
}

TEST(IrDiffAbortTest, CheckpointFaultSweepVolcano) {
  RunEngineFaultSweep(exec::Engine::kVolcano, fault::FaultPoint::kCheckpoint,
                      StatusCode::kCancelled);
}

TEST(IrDiffAbortTest, CheckpointFaultSweepIr) {
  RunEngineFaultSweep(exec::Engine::kIr, fault::FaultPoint::kCheckpoint,
                      StatusCode::kCancelled);
}

TEST(IrDiffAbortTest, AllocFaultSweepVolcano) {
  RunEngineFaultSweep(exec::Engine::kVolcano, fault::FaultPoint::kAlloc,
                      StatusCode::kResourceExhausted);
}

TEST(IrDiffAbortTest, AllocFaultSweepIr) {
  RunEngineFaultSweep(exec::Engine::kIr, fault::FaultPoint::kAlloc,
                      StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace bagalg
