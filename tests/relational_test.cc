// Tests for the RALG baseline and the Proposition 4.2 equivalence: the
// standalone set-relation engine, the set-semantics transform, and the
// BALG¹∖{−} → RALG∖{−} translation — cross-validated on random databases.

#include "src/relational/translate.h"

#include <gtest/gtest.h>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/core/bag_ops.h"
#include "src/relational/relation.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

namespace bagalg {
namespace {

using relational::Relation;
using relational::ToSetSemantics;
using relational::TranslateBalg1ToRalg;

Value A(const char* name) { return MakeAtom(name); }

// ------------------------------------------------------- standalone engine

TEST(RelationTest, ConstructionAndBasicOps) {
  auto r = Relation::FromTuples({MakeTuple({A("a"), A("b")}),
                                 MakeTuple({A("b"), A("c")}),
                                 MakeTuple({A("a"), A("b")})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // duplicates collapse
  auto s = Relation::FromTuples({MakeTuple({A("a"), A("b")})});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(r->Intersect(*s).size(), 1u);
  EXPECT_EQ(r->Difference(*s).size(), 1u);
  EXPECT_EQ(r->Union(*s), *r);
  EXPECT_EQ(r->Product(*s).size(), 2u);
}

TEST(RelationTest, RejectsMixedArityAndNonTuples) {
  EXPECT_FALSE(Relation::FromTuples({MakeTuple({A("a")}),
                                     MakeTuple({A("a"), A("b")})})
                   .ok());
  EXPECT_FALSE(Relation::FromTuples({A("a")}).ok());
}

TEST(RelationTest, ProjectAndSelect) {
  auto r = Relation::FromTuples({MakeTuple({A("a"), A("a")}),
                                 MakeTuple({A("a"), A("b")}),
                                 MakeTuple({A("b"), A("b")})});
  ASSERT_TRUE(r.ok());
  auto pi1 = r->Project({1});
  ASSERT_TRUE(pi1.ok());
  EXPECT_EQ(pi1->size(), 2u);
  auto diag = r->SelectEqAttrs(1, 2);
  ASSERT_TRUE(diag.ok());
  EXPECT_EQ(diag->size(), 2u);
  auto first_a = r->SelectEqConst(1, A("a"));
  ASSERT_TRUE(first_a.ok());
  EXPECT_EQ(first_a->size(), 2u);
  EXPECT_FALSE(r->Project({5}).ok());
  EXPECT_FALSE(r->SelectEqAttrs(0, 1).ok());
}

TEST(RelationTest, BagRoundTrip) {
  Bag b = MakeBag({{MakeTuple({A("a")}), 3}, {MakeTuple({A("b")}), 1}});
  auto r = Relation::FromBag(b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->ToBag(), DupElim(b).value());
}

// ------------------------------------------------- set-semantics transform

TEST(SetSemanticsTest, DropsDuplicatesEverywhere) {
  Bag b = MakeBag({{MakeTuple({A("a"), A("b")}), 4},
                   {MakeTuple({A("b"), A("a")}), 3}});
  Database db;
  ASSERT_TRUE(db.Put("B", b).ok());
  // Q(B) = π_{1,4}(σ_{2=3}(B×B)) — under bag semantics counts are nm = 12
  // (§4 table); under set semantics everything is 1.
  Expr q = ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 3),
                               Product(Input("B"), Input("B"))),
                        {1, 4});
  Evaluator eval;
  auto bag_result = eval.EvalToBag(q, db);
  ASSERT_TRUE(bag_result.ok());
  EXPECT_EQ(bag_result->CountOf(MakeTuple({A("a"), A("a")})), Mult(12));
  auto set_result = eval.EvalToBag(ToSetSemantics(q), db);
  ASSERT_TRUE(set_result.ok());
  EXPECT_TRUE(set_result->IsSetLike());
  EXPECT_EQ(set_result->CountOf(MakeTuple({A("a"), A("a")})), Mult(1));
}

// -------------------------------------------- Proposition 4.2 translation

TEST(TranslateTest, RejectsOperatorsOutsideFragment) {
  EXPECT_FALSE(TranslateBalg1ToRalg(Monus(Input("A"), Input("B"))).ok());
  EXPECT_FALSE(TranslateBalg1ToRalg(Pow(Input("B"))).ok());
  EXPECT_FALSE(TranslateBalg1ToRalg(Destroy(Input("B"))).ok());
  EXPECT_FALSE(TranslateBalg1ToRalg(TransitiveClosure(Input("B"))).ok());
  EXPECT_TRUE(TranslateBalg1ToRalg(Uplus(Input("A"), Input("B"))).ok());
}

class Prop42Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Prop42Test, TranslationAgreesOnMembership) {
  // For every BALG¹∖{−} expression Q: a ∈ Q(DB) iff a ∈ Q'(DB'), where Q'
  // is the translation and DB' the deduplicated database. Since Q' output
  // is set-like, this says ε(Q(DB)) == Q'(DB) on set inputs — and on bag
  // inputs, ε(Q(DB')) == Q'(DB).
  Rng rng(GetParam());
  FlatBagSpec spec;
  spec.arity = 2;
  std::vector<Expr> zoo = {
      Uplus(Input("A"), Input("B")),
      Umax(Inter(Input("A"), Input("B")), Input("A")),
      ProjectAttrs(Product(Input("A"), Input("B")), {1, 3}),
      Select(Proj(Var(0), 1), Proj(Var(0), 2), Uplus(Input("A"), Input("B"))),
      Map(Tup({Proj(Var(0), 2), Proj(Var(0), 1)}),
          Inter(Input("A"), Uplus(Input("B"), Input("B")))),
      Eps(Product(Input("A"), Eps(Input("B")))),
      CardAsInt(Input("A"), A("u")),
  };
  Evaluator eval;
  for (int i = 0; i < 10; ++i) {
    // Set inputs (DB = DB').
    Database db;
    ASSERT_TRUE(db.Put("A", DupElim(RandomFlatBag(rng, spec)).value()).ok());
    ASSERT_TRUE(db.Put("B", DupElim(RandomFlatBag(rng, spec)).value()).ok());
    for (const Expr& q : zoo) {
      auto translated = TranslateBalg1ToRalg(q);
      ASSERT_TRUE(translated.ok()) << q.ToString();
      auto direct = eval.EvalToBag(q, db);
      auto ralg = eval.EvalToBag(*translated, db);
      ASSERT_TRUE(direct.ok());
      ASSERT_TRUE(ralg.ok());
      EXPECT_TRUE(ralg->IsSetLike()) << translated->ToString();
      EXPECT_EQ(DupElim(*direct).value(), *ralg) << q.ToString();
    }
  }
}

TEST_P(Prop42Test, TranslationDedupsBagInputsLikeDBPrime) {
  Rng rng(GetParam() ^ 0xbeef);
  FlatBagSpec spec;
  spec.arity = 2;
  Expr q = ProjectAttrs(Product(Input("A"), Input("A")), {1, 4});
  auto translated = TranslateBalg1ToRalg(q);
  ASSERT_TRUE(translated.ok());
  Evaluator eval;
  for (int i = 0; i < 10; ++i) {
    Bag a = RandomFlatBag(rng, spec);  // duplicates allowed
    Database db;
    ASSERT_TRUE(db.Put("A", a).ok());
    Database db_prime;
    ASSERT_TRUE(db_prime.Put("A", DupElim(a).value()).ok());
    // Q'(DB) (inputs are deduplicated by the translation itself) equals
    // ε(Q(DB')).
    auto ralg_on_bags = eval.EvalToBag(*translated, db);
    auto direct_on_sets = eval.EvalToBag(q, db_prime);
    ASSERT_TRUE(ralg_on_bags.ok());
    ASSERT_TRUE(direct_on_sets.ok());
    EXPECT_EQ(*ralg_on_bags, DupElim(*direct_on_sets).value());
  }
}

TEST_P(Prop42Test, TranslationCrossValidatesAgainstStandaloneEngine) {
  // π_{1,3}(σ_{2=3}(A×B)) three ways: bag engine + translation, and the
  // independent std::set-based relational engine.
  Rng rng(GetParam() ^ 0xf00d);
  FlatBagSpec spec;
  spec.arity = 2;
  Expr q = ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 3),
                               Product(Input("A"), Input("B"))),
                        {1, 4});
  auto translated = TranslateBalg1ToRalg(q);
  ASSERT_TRUE(translated.ok());
  Evaluator eval;
  for (int i = 0; i < 10; ++i) {
    Bag a = DupElim(RandomFlatBag(rng, spec)).value();
    Bag b = DupElim(RandomFlatBag(rng, spec)).value();
    Database db;
    ASSERT_TRUE(db.Put("A", a).ok());
    ASSERT_TRUE(db.Put("B", b).ok());
    auto via_translation = eval.EvalToBag(*translated, db);
    ASSERT_TRUE(via_translation.ok());

    auto ra = Relation::FromBag(a).value();
    auto rb = Relation::FromBag(b).value();
    auto reference =
        ra.Product(rb).SelectEqAttrs(2, 3).value().Project({1, 4}).value();
    EXPECT_EQ(*via_translation, reference.ToBag());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop42Test, ::testing::Values(31, 32, 33));

}  // namespace
}  // namespace bagalg
