// Tests for the complex-object type system (paper §2): construction, bag
// nesting, equality, the Bottom order (Accepts/Join), and rendering.

#include "src/core/type.h"

#include <gtest/gtest.h>

namespace bagalg {
namespace {

Type U() { return Type::Atom(); }

TEST(TypeTest, AtomBasics) {
  Type u = U();
  EXPECT_TRUE(u.IsAtom());
  EXPECT_EQ(u.BagNesting(), 0);
  EXPECT_EQ(u.ToString(), "U");
}

TEST(TypeTest, TupleBasics) {
  Type t = Type::Tuple({U(), U()});
  EXPECT_TRUE(t.IsTuple());
  EXPECT_EQ(t.fields().size(), 2u);
  EXPECT_EQ(t.BagNesting(), 0);
  EXPECT_EQ(t.ToString(), "[U, U]");
}

TEST(TypeTest, EmptyTupleAllowed) {
  Type t = Type::Tuple({});
  EXPECT_TRUE(t.IsTuple());
  EXPECT_EQ(t.ToString(), "[]");
}

TEST(TypeTest, BagNestingCountsBagConstructorsOnPath) {
  // {{ [ U, {{U}} ] }} has nesting 2: the outer bag plus the inner bag.
  Type t = Type::Bag(Type::Tuple({U(), Type::Bag(U())}));
  EXPECT_EQ(t.BagNesting(), 2);
  // Tuple of two bags side by side: nesting 1 (max over paths, not sum).
  Type s = Type::Tuple({Type::Bag(U()), Type::Bag(U())});
  EXPECT_EQ(s.BagNesting(), 1);
}

TEST(TypeTest, DeepNesting) {
  Type t = U();
  for (int i = 1; i <= 5; ++i) {
    t = Type::Bag(t);
    EXPECT_EQ(t.BagNesting(), i);
  }
  EXPECT_EQ(t.ToString(), "{{{{{{{{{{U}}}}}}}}}}");
}

TEST(TypeTest, StructuralEquality) {
  Type a = Type::Bag(Type::Tuple({U(), U()}));
  Type b = Type::Bag(Type::Tuple({U(), U()}));
  Type c = Type::Bag(Type::Tuple({U()}));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
  EXPECT_NE(a, U());
}

TEST(TypeTest, DefaultIsBottom) {
  Type t;
  EXPECT_TRUE(t.IsBottom());
  EXPECT_EQ(t.ToString(), "_");
  EXPECT_EQ(t.BagNesting(), 0);
}

TEST(TypeTest, AcceptsBottomAnywhere) {
  Type target = Type::Bag(Type::Tuple({U(), Type::Bag(U())}));
  EXPECT_TRUE(target.Accepts(Type::Bottom()));
  EXPECT_TRUE(target.Accepts(Type::Bag(Type::Bottom())));
  EXPECT_TRUE(
      target.Accepts(Type::Bag(Type::Tuple({U(), Type::Bag(Type::Bottom())}))));
  EXPECT_TRUE(target.Accepts(target));
  EXPECT_FALSE(target.Accepts(Type::Bag(U())));
  EXPECT_FALSE(Type::Bottom().Accepts(U()));
}

TEST(TypeTest, JoinWithBottom) {
  Type t = Type::Bag(U());
  auto j1 = Type::Join(t, Type::Bottom());
  ASSERT_TRUE(j1.ok());
  EXPECT_EQ(*j1, t);
  auto j2 = Type::Join(Type::Bottom(), t);
  ASSERT_TRUE(j2.ok());
  EXPECT_EQ(*j2, t);
}

TEST(TypeTest, JoinRefinesNestedBottoms) {
  Type partial = Type::Tuple({Type::Bottom(), Type::Bag(U())});
  Type other = Type::Tuple({U(), Type::Bag(Type::Bottom())});
  auto j = Type::Join(partial, other);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(*j, Type::Tuple({U(), Type::Bag(U())}));
}

TEST(TypeTest, JoinIncompatibleKindsFails) {
  auto j = Type::Join(U(), Type::Bag(U()));
  ASSERT_FALSE(j.ok());
  EXPECT_EQ(j.status().code(), StatusCode::kTypeError);
}

TEST(TypeTest, JoinArityMismatchFails) {
  auto j = Type::Join(Type::Tuple({U()}), Type::Tuple({U(), U()}));
  ASSERT_FALSE(j.ok());
  EXPECT_EQ(j.status().code(), StatusCode::kTypeError);
}

TEST(TypeTest, JoinIsCommutativeAndIdempotent) {
  Type a = Type::Bag(Type::Tuple({U(), Type::Bottom()}));
  Type b = Type::Bag(Type::Tuple({Type::Bottom(), U()}));
  auto ab = Type::Join(a, b);
  auto ba = Type::Join(b, a);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(*ab, *ba);
  auto aa = Type::Join(a, a);
  ASSERT_TRUE(aa.ok());
  EXPECT_EQ(*aa, a);
}

TEST(TypeTest, CopyIsCheapAndShared) {
  Type a = Type::Bag(Type::Tuple({U(), U()}));
  Type b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

}  // namespace
}  // namespace bagalg
