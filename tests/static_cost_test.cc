// Tests for the static cost analysis (src/analysis/static_cost.h) and the
// lint rules on top of it (src/analysis/lint.h).
//
// The load-bearing property is *soundness*: whenever the analyzer produces a
// finite bound, that bound dominates the actual evaluated output size — in
// exact mode directly, and in symbolic mode after substituting any n that
// dominates every input bag (nested bags included). The corpus below sweeps
// every operator, including the powerset tower and fixpoint widening.

#include "src/analysis/static_cost.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/algebra/builder.h"
#include "src/algebra/eval.h"
#include "src/algebra/typecheck.h"
#include "src/analysis/lint.h"
#include "src/exec/compile.h"
#include "src/lang/script.h"
#include "src/obs/metrics.h"

namespace bagalg {
namespace {

using analysis::AnalyzeCost;
using analysis::CheckBudget;
using analysis::CostAnalysis;
using analysis::CostBudget;
using analysis::CostFacts;
using analysis::ExplainCostExpr;
using analysis::LintDiag;
using analysis::LintOptions;
using analysis::LintRule;
using analysis::LintRuleRegistry;
using analysis::NodeCost;
using analysis::Polynomial;
using analysis::RunLint;
using analysis::SizeBound;
using analysis::Tractability;

Value A(const char* name) { return MakeAtom(name); }

/// R : {{[U, U]}} with 4 total rows (one duplicated), S : {{U}} with 3
/// atoms, N : {{[U, {{U}}]}} with nested bags of different sizes.
Database CorpusDb() {
  Database db;
  EXPECT_TRUE(db.Put("R", MakeBag({{MakeTuple({A("a"), A("b")}), 2},
                                   {MakeTuple({A("c"), A("d")}), 1},
                                   {MakeTuple({A("a"), A("d")}), 1}}))
                  .ok());
  EXPECT_TRUE(db.Put("S", MakeBagOf({A("x"), A("y"), A("z")})).ok());
  EXPECT_TRUE(
      db.Put("N",
             MakeBagOf({MakeTuple({A("a"), Value::FromBag(MakeBagOf(
                                               {A("x"), A("y")}))}),
                        MakeTuple({A("b"), Value::FromBag(MakeBagOf(
                                               {A("x"), A("y"), A("z")}))})}))
          .ok());
  return db;
}

/// Largest bag total reachable anywhere inside a value (the n that the
/// symbolic convention promises to dominate).
BigNat MaxBagCard(const Value& v) {
  BigNat best;
  if (v.IsTuple()) {
    for (const Value& f : v.fields()) {
      best = BigNat::Max(best, MaxBagCard(f));
    }
  } else if (v.IsBag()) {
    best = v.bag().TotalCount();
    for (const BagEntry& e : v.bag().entries()) {
      best = BigNat::Max(best, MaxBagCard(e.value));
    }
  }
  return best;
}

BigNat MaxInputCard(const Database& db) {
  BigNat best;
  for (const auto& [name, bag] : db.instances()) {
    best = BigNat::Max(best, MaxBagCard(Value::FromBag(bag)));
  }
  return best;
}

/// Actual "output size" in the bound's currency: total cardinality for
/// bags, 1 for atoms/tuples.
BigNat ActualSize(const Value& v) {
  return v.IsBag() ? v.bag().TotalCount() : BigNat(1);
}

/// Asserts bound >= actual for a finite bound; unknown bounds admit
/// anything; astronomical bounds are vacuously sound for evaluable inputs.
void ExpectBoundDominates(const SizeBound& bound, const BigNat& n,
                          const BigNat& actual, const std::string& what) {
  if (!bound.IsFinite()) return;
  BigInt value = bound.poly.Eval(n);
  ASSERT_FALSE(value.IsNegative()) << what;
  EXPECT_GE(value.magnitude(), actual)
      << what << ": bound " << bound.ToString() << " at n=" << n.ToString()
      << " vs actual " << actual.ToString();
}

std::vector<Expr> Corpus() {
  Expr r = Input("R");
  Expr s = Input("S");
  Expr nn = Input("N");
  Expr first = Tup({Proj(Var(0), 1)});
  return {
      r,
      s,
      Uplus(r, r),
      Monus(r, Uplus(r, r)),
      Monus(Uplus(r, r), r),
      Umax(r, Uplus(r, r)),
      Inter(r, Uplus(r, r)),
      Product(r, r),
      Product(Product(r, r), r),
      Map(first, r),
      Map(Tup({Proj(Var(0), 2), Proj(Var(0), 1)}), r),
      Select(Proj(Var(0), 1), Proj(Var(0), 2), r),
      Eps(Uplus(r, r)),
      Beta(ConstExpr(A("a"))),
      Tup({ConstExpr(A("a")), ConstExpr(A("b"))}),
      Pow(s),
      Powbag(s),
      Destroy(Pow(s)),
      Destroy(Powbag(s)),
      Pow(Pow(s)),
      Destroy(Map(Beta(Var(0)), r)),
      NestExpr(r, {2}),
      UnnestExpr(NestExpr(r, {2}), 2),
      UnnestExpr(nn, 2),
      ProjectAttrs(r, {1}),
      Ifp(Var(0), r),
      BoundedIfp(Var(0), r, Uplus(r, r)),
      BoundedIfp(Map(Tup({Proj(Var(0), 1), Proj(Var(0), 1)}),
                     Select(Proj(Var(0), 1), Proj(Var(0), 1), Var(0))),
                 r, Uplus(r, r)),
  };
}

TEST(StaticCostTest, ExactBoundsDominateActualSizes) {
  Database db = CorpusDb();
  Evaluator ev(Limits::Default());
  for (const Expr& e : Corpus()) {
    auto analysis = AnalyzeCost(e, db.schema(), CostFacts::Exact(db));
    ASSERT_TRUE(analysis.ok()) << e.ToString() << ": "
                               << analysis.status().ToString();
    auto v = ev.Eval(e, db);
    ASSERT_TRUE(v.ok()) << e.ToString();
    // Exact-mode finite bounds are constants; evaluate at n=0.
    if (analysis->root.bound.IsFinite()) {
      EXPECT_EQ(analysis->root.degree(), 0u) << e.ToString();
    }
    ExpectBoundDominates(analysis->root.bound, BigNat(0), ActualSize(*v),
                         e.ToString());
  }
}

TEST(StaticCostTest, SymbolicBoundsDominateActualSizesAtInputCardinality) {
  Database db = CorpusDb();
  BigNat n = MaxInputCard(db);
  Evaluator ev(Limits::Default());
  for (const Expr& e : Corpus()) {
    auto analysis = AnalyzeCost(e, db.schema(), CostFacts::Symbolic());
    ASSERT_TRUE(analysis.ok()) << e.ToString();
    auto v = ev.Eval(e, db);
    ASSERT_TRUE(v.ok()) << e.ToString();
    ExpectBoundDominates(analysis->root.bound, n, ActualSize(*v),
                         e.ToString());
  }
}

TEST(StaticCostTest, PowersetFreeExpressionsArePolynomialWithFiniteDegree) {
  Database db = CorpusDb();
  for (const Expr& e : Corpus()) {
    auto typed = AnalyzeExpr(e, db.schema());
    ASSERT_TRUE(typed.ok());
    auto analysis = AnalyzeCost(e, db.schema(), CostFacts::Symbolic());
    ASSERT_TRUE(analysis.ok());
    // The dichotomy is syntactic: class and height mirror power nesting.
    EXPECT_EQ(analysis->root.tower_height, typed->power_nesting)
        << e.ToString();
    if (typed->power_nesting == 0) {
      EXPECT_EQ(analysis->root.cls, Tractability::kPolynomial)
          << e.ToString();
      // Powerset-free and fixpoint-free implies a finite polynomial bound.
      if (!typed->uses_fixpoint) {
        EXPECT_TRUE(analysis->root.bound.IsFinite()) << e.ToString();
      }
    } else {
      EXPECT_EQ(analysis->root.cls, Tractability::kExponentialTower)
          << e.ToString();
    }
  }
}

TEST(StaticCostTest, PerNodeVerdictsCoverEveryNode) {
  Database db = CorpusDb();
  Expr e = Destroy(Map(Beta(Tup({Proj(Var(0), 1)})), Input("R")));
  auto analysis = AnalyzeCost(e, db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->per_node.size(), ExprSize(e));
}

TEST(StaticCostTest, KnownDegrees) {
  Database db = CorpusDb();
  Expr r = Input("R");
  struct Case {
    Expr expr;
    size_t degree;
  };
  std::vector<Case> cases = {
      {r, 1},
      {Product(r, r), 2},
      {Product(Product(r, r), r), 3},
      {Map(Tup({Proj(Var(0), 1)}), Product(r, r)), 2},
      // δ(MAP β) is the identity: n singleton bags flatten back to n rows.
      {Destroy(Map(Beta(Var(0)), r)), 1},
      {Destroy(Map(Beta(Var(0)), Product(r, r))), 2},
      {UnnestExpr(NestExpr(r, {2}), 2), 2},
      {Beta(ConstExpr(A("a"))), 0},
  };
  for (const auto& c : cases) {
    auto analysis = AnalyzeCost(c.expr, db.schema(), CostFacts::Symbolic());
    ASSERT_TRUE(analysis.ok()) << c.expr.ToString();
    ASSERT_TRUE(analysis->root.bound.IsFinite()) << c.expr.ToString();
    EXPECT_EQ(analysis->root.degree(), c.degree) << c.expr.ToString();
  }
}

TEST(StaticCostTest, MapPreservesCardinalityExactly) {
  Database db = CorpusDb();
  Expr e = Map(Tup({Proj(Var(0), 1)}), Input("R"));
  auto analysis = AnalyzeCost(e, db.schema(), CostFacts::Exact(db));
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->root.bound.IsFinite());
  EXPECT_EQ(analysis->root.bound.poly.ConstantTerm(), BigInt(4));
}

TEST(StaticCostTest, PowersetBoundsAreExactlyTwoPowCardinality) {
  Database db = CorpusDb();
  // |P_b(S)| = 2^|S| = 8 for the 3-atom set-like S; |P(S)| = 8 as well.
  for (const Expr& e : {Pow(Input("S")), Powbag(Input("S"))}) {
    auto analysis = AnalyzeCost(e, db.schema(), CostFacts::Exact(db));
    ASSERT_TRUE(analysis.ok());
    ASSERT_TRUE(analysis->root.bound.IsFinite());
    EXPECT_EQ(analysis->root.bound.poly.ConstantTerm(), BigInt(8));
  }
  // Symbolically the same expressions are astronomical.
  for (const Expr& e : {Pow(Input("S")), Powbag(Input("S"))}) {
    auto analysis = AnalyzeCost(e, db.schema(), CostFacts::Symbolic());
    ASSERT_TRUE(analysis.ok());
    EXPECT_EQ(analysis->root.bound.kind, SizeBound::Kind::kAstronomical);
    EXPECT_EQ(analysis->root.tower_height, 1);
  }
}

TEST(StaticCostTest, TowerHeightCountsNestedPowersets) {
  Database db = CorpusDb();
  auto analysis =
      AnalyzeCost(Pow(Pow(Input("S"))), db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->root.tower_height, 2);
  EXPECT_EQ(analysis->root.cls, Tractability::kExponentialTower);
}

TEST(StaticCostTest, UnboundedFixpointHasUnknownBound) {
  Database db = CorpusDb();
  auto analysis =
      AnalyzeCost(Ifp(Var(0), Input("R")), db.schema(), CostFacts::Exact(db));
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->root.bound.kind, SizeBound::Kind::kUnknown);
  EXPECT_EQ(analysis->root.cls, Tractability::kPolynomial);
}

TEST(StaticCostTest, BoundedFixpointInheritsTheBoundsShape) {
  Database db = CorpusDb();
  Expr e = BoundedIfp(Var(0), Input("R"), Uplus(Input("R"), Input("R")));
  auto analysis = AnalyzeCost(e, db.schema(), CostFacts::Exact(db));
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->root.bound.IsFinite());
  EXPECT_EQ(analysis->root.bound.poly.ConstantTerm(), BigInt(8));
}

TEST(StaticCostTest, IllTypedExpressionsAreRejected) {
  Database db = CorpusDb();
  EXPECT_EQ(AnalyzeCost(Input("Z"), db.schema(), CostFacts::Symbolic())
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(AnalyzeCost(Proj(Input("R"), 1), db.schema(),
                        CostFacts::Symbolic())
                .status()
                .code(),
            StatusCode::kTypeError);
}

// ------------------------------------------------------------- SizeBound

TEST(SizeBoundTest, LatticeArithmetic) {
  SizeBound two = SizeBound::Constant(BigNat(2));
  SizeBound n = SizeBound::Finite(Polynomial::Identity());
  SizeBound astro = SizeBound::Astronomical();
  SizeBound unknown = SizeBound::Unknown();

  EXPECT_EQ(SizeBound::Add(two, n).poly.Degree(), 1u);
  EXPECT_EQ(SizeBound::Mul(n, n).poly.Degree(), 2u);
  EXPECT_EQ(SizeBound::Add(n, astro).kind, SizeBound::Kind::kAstronomical);
  EXPECT_EQ(SizeBound::Add(n, unknown).kind, SizeBound::Kind::kUnknown);
  // A statically-empty factor annihilates even unbounded ones.
  SizeBound zero = SizeBound::Constant(BigNat(0));
  EXPECT_TRUE(SizeBound::Mul(zero, astro).IsFinite());
  EXPECT_TRUE(SizeBound::Mul(unknown, zero).IsFinite());
  // Min prefers the informative side.
  EXPECT_TRUE(SizeBound::Min(astro, two).IsFinite());
  EXPECT_TRUE(SizeBound::Min(unknown, n).IsFinite());
  EXPECT_EQ(SizeBound::Min(n, two).poly.Degree(), 0u);
  // Join is coefficient-wise max.
  SizeBound j = SizeBound::Join(SizeBound::Finite(Polynomial::Identity()),
                                SizeBound::Constant(BigNat(5)));
  ASSERT_TRUE(j.IsFinite());
  EXPECT_EQ(j.poly.ConstantTerm(), BigInt(5));
  EXPECT_EQ(j.poly.Degree(), 1u);
}

TEST(SizeBoundTest, Exp2MaterializesSmallConstantsOnly) {
  EXPECT_EQ(SizeBound::Exp2(SizeBound::Constant(BigNat(10)))
                .poly.ConstantTerm(),
            BigInt(1024));
  EXPECT_EQ(SizeBound::Exp2(SizeBound::Finite(Polynomial::Identity())).kind,
            SizeBound::Kind::kAstronomical);
  EXPECT_EQ(
      SizeBound::Exp2(SizeBound::Constant(BigNat::TwoPow(40))).kind,
      SizeBound::Kind::kAstronomical);
  EXPECT_EQ(SizeBound::Exp2(SizeBound::Unknown()).kind,
            SizeBound::Kind::kUnknown);
}

// ------------------------------------------------------------------ lint

TEST(LintTest, W001FiresOnPowersetOfInputDependentBag) {
  Database db = CorpusDb();
  auto diags = RunLint(Pow(Input("S")), db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(diags.ok());
  ASSERT_EQ(diags->size(), 1u);
  EXPECT_EQ((*diags)[0].code, "W001");
  EXPECT_EQ((*diags)[0].span, "pow");
  EXPECT_EQ((*diags)[0].severity, LintDiag::Severity::kWarning);
}

TEST(LintTest, W001SilentOnConstantOperand) {
  Database db = CorpusDb();
  Expr constant_bag = ConstBag(MakeBagOf({A("x"), A("y")}));
  auto diags = RunLint(Pow(constant_bag), db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(diags.ok());
  for (const LintDiag& d : *diags) EXPECT_NE(d.code, "W001");
}

TEST(LintTest, W002FiresAtTheDegreeThreshold) {
  Database db = CorpusDb();
  Expr r = Input("R");
  Expr cube = Product(Product(r, r), r);
  auto diags = RunLint(cube, db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(diags.ok());
  ASSERT_EQ(diags->size(), 1u);
  EXPECT_EQ((*diags)[0].code, "W002");
  EXPECT_EQ((*diags)[0].span, "prod");
  // Degree 2 stays below the default threshold of 3.
  auto square = RunLint(Product(r, r), db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(square.ok());
  EXPECT_TRUE(square->empty());
  // A lower threshold flags it.
  LintOptions strict;
  strict.product_degree_threshold = 2;
  auto strict_diags =
      RunLint(Product(r, r), db.schema(), CostFacts::Symbolic(), strict);
  ASSERT_TRUE(strict_diags.ok());
  ASSERT_EQ(strict_diags->size(), 1u);
  EXPECT_EQ((*strict_diags)[0].code, "W002");
}

TEST(LintTest, W003FiresOnSelfSubtraction) {
  Database db = CorpusDb();
  Expr r = Input("R");
  auto diags = RunLint(Uplus(Monus(r, r), r), db.schema(),
                       CostFacts::Symbolic());
  ASSERT_TRUE(diags.ok());
  bool found = false;
  for (const LintDiag& d : *diags) {
    if (d.code == "W003") {
      found = true;
      EXPECT_EQ(d.span, "uplus > monus");
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintTest, W004FiresWhenTheOptimizerWouldRewrite) {
  Database db = CorpusDb();
  Expr r = Input("R");
  // e ∩ e is an idempotence-rule target.
  auto diags = RunLint(Inter(r, r), db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(diags.ok());
  bool found = false;
  for (const LintDiag& d : *diags) found |= d.code == "W004";
  EXPECT_TRUE(found);
  // A plain input has nothing to rewrite.
  auto clean = RunLint(r, db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(clean.ok());
  for (const LintDiag& d : *clean) EXPECT_NE(d.code, "W004");
}

TEST(LintTest, E001FiresWhenBudgetProvablyExceeded) {
  Database db = CorpusDb();
  CostBudget budget;
  budget.max_estimated_size = BigNat(5);
  LintOptions options;
  options.budget = &budget;
  auto diags = RunLint(Product(Input("R"), Input("R")), db.schema(),
                       CostFacts::Exact(db), options);
  ASSERT_TRUE(diags.ok());
  bool found = false;
  for (const LintDiag& d : *diags) {
    if (d.code == "E001") {
      found = true;
      EXPECT_EQ(d.severity, LintDiag::Severity::kError);
    }
  }
  EXPECT_TRUE(found);
  // Without a budget the same query lints clean of E001.
  auto no_budget = RunLint(Product(Input("R"), Input("R")), db.schema(),
                           CostFacts::Exact(db));
  ASSERT_TRUE(no_budget.ok());
  for (const LintDiag& d : *no_budget) EXPECT_NE(d.code, "E001");
}

TEST(LintTest, DiagMetricsAreRecorded) {
  Database db = CorpusDb();
  uint64_t before =
      obs::GlobalMetrics().GetCounter("lint.diags.W001")->value();
  ASSERT_TRUE(
      RunLint(Pow(Input("S")), db.schema(), CostFacts::Symbolic()).ok());
  EXPECT_EQ(obs::GlobalMetrics().GetCounter("lint.diags.W001")->value(),
            before + 1);
}

TEST(LintTest, RegistryAcceptsCustomRules) {
  Database db = CorpusDb();
  LintRule rule;
  rule.code = "X001";
  rule.description = "flags every dedup for testing";
  rule.check = [](const analysis::LintContext& ctx,
                  std::vector<LintDiag>* out) {
    for (const auto& ref : ctx.nodes) {
      if (ref.expr->kind == ExprKind::kDupElim) {
        out->push_back({LintDiag::Severity::kWarning, "X001", ref.path,
                        "dedup spotted"});
      }
    }
  };
  LintRuleRegistry::Global().Register(rule);
  auto diags = RunLint(Eps(Input("R")), db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(diags.ok());
  bool found = false;
  for (const LintDiag& d : *diags) found |= d.code == "X001";
  EXPECT_TRUE(found);
  // Re-registering the same code replaces, not duplicates.
  size_t rules_before = LintRuleRegistry::Global().rules().size();
  LintRuleRegistry::Global().Register(rule);
  EXPECT_EQ(LintRuleRegistry::Global().rules().size(), rules_before);
  // Neutralize for any later test in this process.
  rule.check = [](const analysis::LintContext&, std::vector<LintDiag>*) {};
  LintRuleRegistry::Global().Register(rule);
}

// ---------------------------------------------------------------- budget

TEST(BudgetTest, RefusesOverBudgetQueriesWithTypedStatus) {
  Database db = CorpusDb();
  CostBudget budget;
  budget.max_estimated_size = BigNat(5);
  uint64_t before =
      obs::GlobalMetrics().GetCounter("budget.refusals")->value();
  Status st = CheckBudget(Product(Input("R"), Input("R")), db, budget);
  EXPECT_EQ(st.code(), StatusCode::kBudgetExceeded);
  EXPECT_NE(st.message().find("exceeds budget 5"), std::string::npos);
  EXPECT_EQ(obs::GlobalMetrics().GetCounter("budget.refusals")->value(),
            before + 1);
}

TEST(BudgetTest, AdmitsWithinBudgetAndWarnMode) {
  Database db = CorpusDb();
  CostBudget budget;
  budget.max_estimated_size = BigNat(100);
  EXPECT_TRUE(CheckBudget(Product(Input("R"), Input("R")), db, budget).ok());
  budget.max_estimated_size = BigNat(5);
  budget.on_exceed = CostBudget::OnExceed::kWarn;
  uint64_t refusals_before =
      obs::GlobalMetrics().GetCounter("budget.refusals")->value();
  EXPECT_TRUE(CheckBudget(Product(Input("R"), Input("R")), db, budget).ok());
  EXPECT_EQ(obs::GlobalMetrics().GetCounter("budget.refusals")->value(),
            refusals_before);
}

TEST(BudgetTest, AdmitsUnknownBoundsAndIllTypedQueries) {
  Database db = CorpusDb();
  CostBudget budget;
  // Large enough for the inputs themselves (every subexpression is
  // checked); the fixpoint's own bound is unknown and must be admitted.
  budget.max_estimated_size = BigNat(10);
  EXPECT_TRUE(CheckBudget(Ifp(Var(0), Input("R")), db, budget).ok());
  // Ill-typed: admitted so evaluation reports the real error.
  budget.max_estimated_size = BigNat(1);
  EXPECT_TRUE(CheckBudget(Input("Z"), db, budget).ok());
}

TEST(BudgetTest, ZeroBudgetMeansNoLimit) {
  Database db = CorpusDb();
  CostBudget budget;  // max_estimated_size defaults to 0
  EXPECT_TRUE(CheckBudget(Pow(Input("S")), db, budget).ok());
}

TEST(BudgetTest, EvaluatorPreflightRefusesBeforeEvaluating) {
  Database db = CorpusDb();
  CostBudget budget;
  budget.max_estimated_size = BigNat(5);
  Evaluator ev(Limits::Default());
  ev.set_preflight(analysis::MakeBudgetPreflight(budget));
  auto refused = ev.Eval(Product(Input("R"), Input("R")), db);
  EXPECT_EQ(refused.status().code(), StatusCode::kBudgetExceeded);
  // Nothing ran: the refusal happens before any operator application.
  EXPECT_EQ(ev.stats().steps, 0u);
  // Within budget still evaluates.
  EXPECT_TRUE(ev.Eval(Input("R"), db).ok());
  // Clearing the hook restores unguarded evaluation.
  ev.set_preflight({});
  EXPECT_TRUE(ev.Eval(Product(Input("R"), Input("R")), db).ok());
}

TEST(BudgetTest, ExecPipelinePreflightRefuses) {
  Database db = CorpusDb();
  CostBudget budget;
  budget.max_estimated_size = BigNat(5);
  exec::ExecOptions options;
  options.preflight = analysis::MakeBudgetPreflight(budget);
  auto refused =
      exec::RunPipeline(Product(Input("R"), Input("R")), db, options);
  EXPECT_EQ(refused.status().code(), StatusCode::kBudgetExceeded);
  options.preflight = {};
  EXPECT_TRUE(
      exec::RunPipeline(Product(Input("R"), Input("R")), db, options).ok());
}

// ---------------------------------------------------------- explain cost

TEST(ExplainCostTest, AnnotatesNodesWithClassDegreeAndBound) {
  Database db = CorpusDb();
  auto plan = ExplainCostExpr(Product(Input("R"), Input("R")), db.schema(),
                              CostFacts::Symbolic());
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("[poly deg=2 size<=n^2]"), std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("[poly deg=1 size<=n]"), std::string::npos) << *plan;
}

TEST(ExplainCostTest, ExactFactsAddEstimates) {
  Database db = CorpusDb();
  auto plan = ExplainCostExpr(Product(Input("R"), Input("R")), db.schema(),
                              CostFacts::Exact(db));
  ASSERT_TRUE(plan.ok());
  // Symbolic verdict plus the concrete estimate from the bound instance.
  EXPECT_NE(plan->find("deg=2"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("est<=16"), std::string::npos) << *plan;
}

TEST(ExplainCostTest, TowersAreMarked) {
  Database db = CorpusDb();
  auto plan =
      ExplainCostExpr(Pow(Input("S")), db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("[tower h=1 size=astronomical]"), std::string::npos)
      << *plan;
}

// ------------------------------------------------------------------ REPL

TEST(ScriptLintTest, LintCommandPrintsDiagnostics) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("schema S : {{U}}").ok());
  auto out = runner.RunLine("\\lint pow(S)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("W001"), std::string::npos) << *out;
  auto clean = runner.RunLine("\\lint S");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, "no lint diagnostics");
}

TEST(ScriptLintTest, ExplainCostCommand) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("let R = {{[a, b], [c, d]}}").ok());
  auto out = runner.RunLine("explain cost prod(R, R)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("[poly"), std::string::npos) << *out;
  EXPECT_NE(out->find("est<="), std::string::npos) << *out;
}

TEST(ScriptLintTest, BudgetCommandGuardsEvalAndExec) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("let R = {{[a, b], [c, d], [a, d]}}").ok());
  ASSERT_TRUE(runner.RunLine("\\budget 5").ok());
  auto refused = runner.RunLine("count prod(R, R)");
  EXPECT_EQ(refused.status().code(), StatusCode::kBudgetExceeded);
  auto exec_refused = runner.RunLine("exec prod(R, R)");
  EXPECT_EQ(exec_refused.status().code(), StatusCode::kBudgetExceeded);
  // Warn mode lets it through.
  ASSERT_TRUE(runner.RunLine("\\budget 5 warn").ok());
  EXPECT_TRUE(runner.RunLine("count prod(R, R)").ok());
  // Off clears the guard.
  ASSERT_TRUE(runner.RunLine("\\budget off").ok());
  EXPECT_TRUE(runner.RunLine("count prod(R, R)").ok());
  EXPECT_FALSE(runner.budget().has_value());
}

}  // namespace
}  // namespace bagalg
