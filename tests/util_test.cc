// Tests for the util substrate: Status/Result plumbing, string helpers,
// and the deterministic RNG.

#include "src/util/status.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/parallel.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace bagalg {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status st = Status::TypeError("tuple arity mismatch");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_EQ(st.ToString(), "TypeError: tuple arity mismatch");
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  BAGALG_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  auto ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = Doubled(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StringsTest, JoinAndSplit) {
  std::vector<int> xs = {1, 2, 3};
  EXPECT_EQ(JoinToString(xs, ", "), "1, 2, 3");
  EXPECT_EQ(JoinToString(std::vector<int>{}, ","), "");
  auto parts = SplitString("a\nb\n\nc", '\n');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(SplitString("", ';').size(), 1u);
  EXPECT_TRUE(StartsWith("bagalg", "bag"));
  EXPECT_FALSE(StartsWith("bag", "bagalg"));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(12345), b(12345), c(54321);
  bool all_same = true;
  bool any_differs = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next(), vb = b.Next(), vc = c.Next();
    all_same = all_same && va == vb;
    any_differs = any_differs || va != vc;
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_differs);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    uint64_t v = rng.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, CoinIsRoughlyFair) {
  Rng rng(31337);
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Coin()) ++heads;
  }
  double p = static_cast<double>(heads) / trials;
  EXPECT_NEAR(p, 0.5, 0.02);
  // Biased coin.
  int biased = 0;
  for (int i = 0; i < trials; ++i) {
    if (rng.Coin(0.1)) ++biased;
  }
  EXPECT_NEAR(static_cast<double>(biased) / trials, 0.1, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(8);
  Rng child = parent.Fork();
  // The child stream should not replicate the parent's next values.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

// --------------------------------------------------- thread pool / parallel

/// Restores the default pool configuration when a test exits.
struct PoolConfigGuard {
  ~PoolConfigGuard() { ThreadPool::Configure(ParallelOptions::Default()); }
};

TEST(ParallelTest, ParallelForCoversEveryIndexExactlyOnce) {
  PoolConfigGuard guard;
  ThreadPool::Configure({4, 8});
  const size_t n = 1000;
  // Chunks cover disjoint ranges, so plain ints are race-free.
  std::vector<int> hits(n, 0);
  size_t chunks = ParallelFor(n, 8, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_GE(chunks, 2u);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelTest, TransformReduceMatchesSerialSum) {
  PoolConfigGuard guard;
  ThreadPool::Configure({3, 16});
  const uint64_t n = 4096;
  uint64_t total = ParallelTransformReduce<uint64_t>(
      n, 16, 0,
      [](size_t begin, size_t end, size_t) {
        uint64_t s = 0;
        for (size_t i = begin; i < end; ++i) s += i;
        return s;
      },
      [](uint64_t acc, uint64_t next) { return acc + next; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ParallelTest, ReduceFoldsPartialsInChunkIndexOrder) {
  PoolConfigGuard guard;
  ThreadPool::Configure({8, 4});
  const size_t n = 512;
  std::vector<size_t> order = ParallelTransformReduce<std::vector<size_t>>(
      n, 4, {},
      [](size_t, size_t, size_t chunk) {
        return std::vector<size_t>{chunk};
      },
      [](std::vector<size_t> acc, std::vector<size_t> next) {
        acc.insert(acc.end(), next.begin(), next.end());
        return acc;
      });
  ASSERT_GE(order.size(), 2u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelTest, SerialConfigurationDispatchesInline) {
  PoolConfigGuard guard;
  ThreadPool::Configure(ParallelOptions::Serial());
  EXPECT_EQ(ThreadPool::Global().parallelism(), 1u);
  EXPECT_EQ(ParallelChunkCount(size_t{1} << 20), 1u);
  uint64_t sum = 0;
  size_t chunks = ParallelFor(100, 0, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(chunks, 1u);
  EXPECT_EQ(sum, 100u * 99 / 2);
}

TEST(ParallelTest, SmallBatchesStaySerial) {
  PoolConfigGuard guard;
  ThreadPool::Configure({4, 4096});
  // Below 2x grain there is nothing to split.
  EXPECT_EQ(ParallelChunkCount(10), 1u);
  EXPECT_EQ(ParallelChunkCount(0), 1u);
  size_t calls = 0;
  ParallelFor(1, 0, [&](size_t begin, size_t end, size_t) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelTest, NestedParallelSectionsRunInline) {
  PoolConfigGuard guard;
  ThreadPool::Configure({4, 8});
  // A body that itself calls ParallelFor must not deadlock; the inner
  // dispatch runs serially on the worker.
  std::vector<int> hits(256, 0);
  ParallelFor(16, 1, [&](size_t begin, size_t end, size_t) {
    for (size_t outer = begin; outer < end; ++outer) {
      ParallelFor(16, 1, [&](size_t b, size_t e, size_t) {
        for (size_t inner = b; inner < e; ++inner) {
          ++hits[outer * 16 + inner];
        }
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelTest, StatsCountDispatches) {
  PoolConfigGuard guard;
  ThreadPool::Configure({4, 8});
  ParallelStats before = ThreadPool::Stats();
  ParallelFor(1000, 8, [](size_t, size_t, size_t) {});
  ThreadPool::Global().Run(1, [](size_t) {});  // trivial batch: serial path
  ParallelStats after = ThreadPool::Stats();
  EXPECT_GT(after.parallel_dispatches, before.parallel_dispatches);
  EXPECT_GT(after.serial_dispatches, before.serial_dispatches);
  EXPECT_GT(after.tasks_spawned, before.tasks_spawned);
}

}  // namespace
}  // namespace bagalg
