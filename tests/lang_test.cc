// Tests for the surface-syntax lexer, parser, printer round-trips, and the
// script runner.

#include "src/lang/parser.h"

#include <gtest/gtest.h>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/algebra/rewrite.h"
#include "src/lang/lexer.h"
#include "src/lang/script.h"

namespace bagalg {
namespace {

using lang::ParseExpr;
using lang::ParseType;
using lang::ParseValue;
using lang::ScriptRunner;
using lang::Tokenize;

Value A(const char* name) { return MakeAtom(name); }

TEST(LexerTest, TokenizesAllTokenKinds) {
  auto toks = Tokenize("foo 42 ( ) [ ] {{ }} , -> == = * ' : _");
  ASSERT_TRUE(toks.ok());
  std::vector<lang::TokenKind> kinds;
  for (const auto& t : *toks) kinds.push_back(t.kind);
  using K = lang::TokenKind;
  std::vector<K> expected = {K::kIdent,  K::kNumber,     K::kLParen,
                             K::kRParen, K::kLBracket,   K::kRBracket,
                             K::kLBagBrace, K::kRBagBrace, K::kComma,
                             K::kArrow,  K::kEqEq,       K::kEq,
                             K::kStar,   K::kQuote,      K::kColon,
                             K::kUnderscore, K::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, CommentsSkippedAndErrorsReported) {
  auto toks = Tokenize("a # everything here is ignored {{\nb");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks->size(), 3u);  // a, b, end
  EXPECT_FALSE(Tokenize("{x").ok());
  EXPECT_FALSE(Tokenize("a - b").ok());
  EXPECT_FALSE(Tokenize("?").ok());
}

TEST(ParseValueTest, AtomsTuplesBags) {
  auto v1 = ParseValue("a");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, A("a"));
  auto v2 = ParseValue("[a, b]");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, MakeTuple({A("a"), A("b")}));
  auto v3 = ParseValue("{{[a, b]*3, [b, a]}}");
  ASSERT_TRUE(v3.ok());
  ASSERT_TRUE(v3->IsBag());
  EXPECT_EQ(v3->bag().CountOf(MakeTuple({A("a"), A("b")})), Mult(3));
  EXPECT_EQ(v3->bag().CountOf(MakeTuple({A("b"), A("a")})), Mult(1));
}

TEST(ParseValueTest, EmptyContainersAndBigCounts) {
  auto v1 = ParseValue("{{}}");
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->bag().empty());
  auto v2 = ParseValue("[]");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->fields().size(), 0u);
  auto v3 = ParseValue("{{a*340282366920938463463374607431768211456}}");
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3->bag().TotalCount(), BigNat::TwoPow(128));
}

TEST(ParseValueTest, ValueRoundTripsThroughToString) {
  const char* cases[] = {
      "a",
      "[a, b]",
      "{{a*3, b}}",
      "{{[a, {{b*2}}], [c, {{}}]}}",
      "{{{{a}}*5, {{b, c}}}}",
  };
  for (const char* text : cases) {
    auto v = ParseValue(text);
    ASSERT_TRUE(v.ok()) << text;
    auto back = ParseValue(v->ToString());
    ASSERT_TRUE(back.ok()) << v->ToString();
    EXPECT_EQ(*v, *back) << text;
  }
}

TEST(ParseValueTest, Errors) {
  EXPECT_FALSE(ParseValue("").ok());
  EXPECT_FALSE(ParseValue("[a").ok());
  EXPECT_FALSE(ParseValue("{{a*}}").ok());
  EXPECT_FALSE(ParseValue("{{a, [b]}}").ok());  // inhomogeneous
  EXPECT_FALSE(ParseValue("a b").ok());         // trailing input
}

TEST(ParseTypeTest, AllConstructors) {
  auto t1 = ParseType("U");
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(*t1, Type::Atom());
  auto t2 = ParseType("[U, {{U}}]");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t2, Type::Tuple({Type::Atom(), Type::Bag(Type::Atom())}));
  auto t3 = ParseType("{{[U, U]}}");
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(t3->BagNesting(), 1);
  auto t4 = ParseType("_");
  ASSERT_TRUE(t4.ok());
  EXPECT_TRUE(t4->IsBottom());
  EXPECT_FALSE(ParseType("V").ok());
  EXPECT_FALSE(ParseType("{{U").ok());
}

TEST(ParseExprTest, OperatorsAndVariables) {
  auto e = ParseExpr("map(x -> proj(1, x), sel(y -> proj(1, y) == proj(2, y), B))");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kMap);
  // Variable resolution: x and y are separate binders, both depth 0 in
  // their own scopes.
  const Expr& body = (*e)->children[0];
  EXPECT_EQ(body->kind, ExprKind::kAttrProj);
  EXPECT_EQ(body->children[0]->kind, ExprKind::kVar);
  EXPECT_EQ(body->children[0]->index, 0u);
}

TEST(ParseExprTest, NestedBindersResolveByDepth) {
  auto e = ParseExpr("map(x -> map(y -> tup(x, y), B), C)");
  ASSERT_TRUE(e.ok());
  const Expr& inner_body = (*e)->children[0]->children[0];
  ASSERT_EQ(inner_body->kind, ExprKind::kTupling);
  EXPECT_EQ(inner_body->children[0]->index, 1u);  // x from outer scope
  EXPECT_EQ(inner_body->children[1]->index, 0u);  // y innermost
}

TEST(ParseExprTest, ShadowingInnermostWins) {
  auto e = ParseExpr("map(x -> map(x -> x, B), C)");
  ASSERT_TRUE(e.ok());
  const Expr& inner_body = (*e)->children[0]->children[0];
  EXPECT_EQ(inner_body->kind, ExprKind::kVar);
  EXPECT_EQ(inner_body->index, 0u);
}

TEST(ParseExprTest, LiteralsAndReservedWords) {
  auto e = ParseExpr("uplus(B, '{{[a]*2}})");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->children[1]->kind, ExprKind::kConst);
  EXPECT_FALSE(ParseExpr("uplus(map, B)").ok());  // reserved word as input
  EXPECT_FALSE(ParseExpr("map(pow -> pow, B)").ok());
}

TEST(ParseExprTest, FixpointForms) {
  auto e = ParseExpr("ifp(X -> umax(X, X), G)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kIfp);
  auto b = ParseExpr("bifp(X -> X, G, dedup(G))");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->kind, ExprKind::kBoundedIfp);
  EXPECT_EQ((*b)->children.size(), 3u);
}

TEST(ParseExprTest, NestUnnestAttributeLists) {
  auto e = ParseExpr("nest([2, 3], B)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->attrs, (std::vector<size_t>{2, 3}));
  auto u = ParseExpr("unnest([2], B)");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ((*u)->attrs, (std::vector<size_t>{2}));
  EXPECT_FALSE(ParseExpr("unnest([1, 2], B)").ok());
  EXPECT_FALSE(ParseExpr("proj(0, B)").ok());  // attrs are 1-based
}

TEST(ParseExprTest, ExpressionRoundTripsThroughToString) {
  // Build a representative zoo with the C++ API, print, re-parse, and
  // compare structurally.
  Value unit = A("u");
  std::vector<Expr> zoo = {
      Input("B"),
      CardGreater(Input("R"), Input("S")),
      EvenCardinalityWithOrder(Input("R"), Input("Leq"), unit),
      TransitiveClosure(Input("G")),
      TransitiveClosureBounded(Input("G")),
      AverageAgg(Input("B"), unit),
      MonusViaPowerset(Input("A"), Input("B")),
      EpsViaPowerset(Input("B")),
      NestExpr(Input("B"), {1, 2}),
      Powbag(UnnestExpr(NestExpr(Input("B"), {2}), 2)),
  };
  for (const Expr& e : zoo) {
    std::string text = e.ToString();
    auto parsed = ParseExpr(text);
    ASSERT_TRUE(parsed.ok()) << text << " -> " << parsed.status();
    EXPECT_TRUE(ExprEquals(e, *parsed)) << text;
  }
}

// ---------------------------------------------------------- script runner

TEST(ScriptTest, LetEvalCountFlow) {
  ScriptRunner runner;
  auto r1 = runner.RunLine("let B = {{[a, b]*4, [b, a]*3}}");
  ASSERT_TRUE(r1.ok()) << r1.status();
  auto r2 = runner.RunLine(
      "count map(x -> tup(proj(1, x), proj(4, x)),"
      " sel(x -> proj(2, x) == proj(3, x), prod(B, B)))");
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(*r2, "24");  // 2nm with n=4, m=3
}

TEST(ScriptTest, SchemaAndTypeCommands) {
  ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("schema G : {{[U, U]}}").ok());
  auto t = runner.RunLine("type map(x -> proj(1, x), G)");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, "{{U}}");
  auto a = runner.RunLine("analyze pow(G)");
  ASSERT_TRUE(a.ok());
  EXPECT_NE(a->find("BALG^2"), std::string::npos);
  EXPECT_NE(a->find("power_nesting=1"), std::string::npos);
}

TEST(ScriptTest, OptimizeCommand) {
  ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("schema B : {{[U]}}").ok());
  auto r = runner.RunLine("optimize dedup(dedup(B))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "dedup(B)");
}

TEST(ScriptTest, ErrorsCarryLineNumbers) {
  ScriptRunner runner;
  auto r = runner.RunScript("let B = {{a}}\neval flat(B)\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(ScriptTest, FullScriptProducesOutput) {
  ScriptRunner runner;
  auto r = runner.RunScript(
      "# Example 4.1\n"
      "let G = {{[u1, c], [u2, c], [c, w1]}}\n"
      "eval monus(map(x -> tup(proj(2, x)), sel(x -> proj(2, x) == 'c, G)),"
      " map(x -> tup(proj(1, x)), sel(x -> proj(1, x) == 'c, G)))\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("{{[c]}}"), std::string::npos);
}

TEST(ScriptTest, DumpRoundTripsTheDatabase) {
  ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("let B = {{[a, b]*3}}").ok());
  ASSERT_TRUE(runner.RunLine("let C = {{x, y*2}}").ok());
  auto dump = runner.RunLine("dump");
  ASSERT_TRUE(dump.ok());
  // Replaying the dump in a fresh runner reproduces the instances.
  ScriptRunner replay;
  ASSERT_TRUE(replay.RunScript(*dump + "\n").ok());
  EXPECT_EQ(replay.database().instances(), runner.database().instances());
}

TEST(ScriptTest, ResetClearsState) {
  ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("let B = {{a}}").ok());
  ASSERT_TRUE(runner.RunLine("reset").ok());
  auto r = runner.RunLine("eval B");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace bagalg
