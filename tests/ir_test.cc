// Tests for the fused loop IR: compiled row programs, lowering and the IR
// passes (hash-join promotion, pushdowns, CSE), the vectorized batch
// interpreter, engine dispatch/reporting, and — the governor-parity
// property promised in util/governor.h — byte-for-byte agreement between
// per-row and per-batch checkpoint ticking.

#include "src/ir/lower.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/analysis/lint.h"
#include "src/analysis/static_cost.h"
#include "src/exec/compile.h"
#include "src/ir/exec_ir.h"
#include "src/ir/ir.h"
#include "src/ir/program.h"
#include "src/lang/script.h"
#include "src/util/governor.h"

namespace bagalg {
namespace {

using ir::ExecuteIr;
using ir::IrKind;
using ir::LowerOptions;
using ir::LowerToIr;
using ir::RowProgram;

Value A(const char* name) { return MakeAtom(name); }

Database Db(std::initializer_list<std::pair<std::string, Bag>> items) {
  Database db;
  for (const auto& [name, bag] : items) {
    Status st = db.Put(name, bag);
    EXPECT_TRUE(st.ok()) << st;
  }
  return db;
}

/// The §4 join pipeline over B: π_{1,4}(σ_{2=3}(B × B)).
Expr JoinChain(const char* input) {
  return ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 3),
                             Product(Input(input), Input(input))),
                      {1, 4});
}

/// A flat bag of n distinct 2-tuples [kI, vI], each with multiplicity 1 —
/// sized to straddle batch boundaries.
Bag DistinctPairs(size_t n) {
  Bag::Builder builder;
  builder.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    builder.AddOne(MakeTuple({MakeAtom("k" + std::to_string(i)),
                              MakeAtom("v" + std::to_string(i % 7))}));
  }
  auto bag = std::move(builder).Build();
  EXPECT_TRUE(bag.ok());
  return *bag;
}

// ------------------------------------------------------------ RowProgram

TEST(RowProgramTest, IdentityFastPath) {
  auto p = RowProgram::Compile(Var(0));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsIdentity());
  EXPECT_EQ(p->ToString(), "x");
  Value row = MakeTuple({A("a"), A("b")});
  auto out = p->Run(row);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, row);
  // The whole row escapes: no column set to push across.
  EXPECT_FALSE(p->ColumnRefs().has_value());
}

TEST(RowProgramTest, FieldRefFastPath) {
  auto p = RowProgram::Compile(Proj(Var(0), 2));
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(p->FieldRef().has_value());
  EXPECT_EQ(*p->FieldRef(), 2u);
  EXPECT_EQ(p->ToString(), "a2");
  auto out = p->Run(MakeTuple({A("a"), A("b")}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, A("b"));
  auto refs = p->ColumnRefs();
  ASSERT_TRUE(refs.has_value());
  EXPECT_EQ(*refs, std::vector<size_t>{2});
}

TEST(RowProgramTest, GatherFastPathSwapsColumns) {
  auto p = RowProgram::Compile(Tup({Proj(Var(0), 2), Proj(Var(0), 1)}));
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(p->Gather().has_value());
  EXPECT_EQ(*p->Gather(), (std::vector<size_t>{2, 1}));
  EXPECT_EQ(p->ToString(), "t(a2, a1)");
  auto out = p->Run(MakeTuple({A("a"), A("b")}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, MakeTuple({A("b"), A("a")}));
}

TEST(RowProgramTest, RunReportsBadProjection) {
  auto p = RowProgram::Compile(Proj(Var(0), 9));
  ASSERT_TRUE(p.ok());
  auto out = p->Run(MakeTuple({A("a"), A("b")}));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out.status().message().find("bad attribute projection"),
            std::string::npos);
  // Non-tuple operand trips the same way.
  EXPECT_FALSE(RowProgram::Compile(Proj(Var(0), 1))->Run(A("x")).ok());
}

TEST(RowProgramTest, CompileRejectsOutsideFragment) {
  auto deep = RowProgram::Compile(Var(1));
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(deep.status().message().find("single binder level"),
            std::string::npos);
  auto bag_op = RowProgram::Compile(Eps(Var(0)));
  ASSERT_FALSE(bag_op.ok());
  EXPECT_EQ(bag_op.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(bag_op.status().message().find("outside the pipeline fragment"),
            std::string::npos);
}

TEST(RowProgramTest, ShiftColumnsRebasesForBuildSide) {
  auto p = RowProgram::Compile(Proj(Var(0), 3));
  ASSERT_TRUE(p.ok());
  p->ShiftColumns(2);
  ASSERT_TRUE(p->FieldRef().has_value());
  EXPECT_EQ(*p->FieldRef(), 1u);
}

TEST(RowProgramTest, RemapColumnsFollowsGatherPermutation) {
  // Pushing a filter on column 2 below a projection t(a3, a1) means the
  // filter must read column 1 of the *unprojected* row.
  auto p = RowProgram::Compile(Proj(Var(0), 2));
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(p->RemapColumns({3, 1}));
  EXPECT_EQ(*p->FieldRef(), 1u);
  // A reference with no mapping refuses the push.
  auto q = RowProgram::Compile(Proj(Var(0), 5));
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->RemapColumns({3, 1}));
}

// ------------------------------------------ batched governor checkpoints

/// The satellite's paired property: for any item count and any batch
/// split, BatchCheckpointTicker must account exactly the bytes the per-row
/// CheckpointTicker accounts for the same items (both followed by the
/// mandatory final Flush).
TEST(BatchTickerTest, ByteAccountingMatchesPerRowTicker) {
  constexpr uint64_t kBytes = 16;
  const uint64_t counts[] = {0, 1, 511, 512, 513, 1024, 1025, 5000};
  for (uint64_t n : counts) {
    ResourceGovernor per_row{GovernorOptions{}};
    {
      CheckpointTicker ticker(&per_row, kBytes);
      for (uint64_t i = 0; i < n; ++i) {
        if (ticker.Due()) {
          ASSERT_TRUE(ticker.Flush().ok());
        }
      }
      ASSERT_TRUE(ticker.Flush().ok());
    }
    ResourceGovernor batched{GovernorOptions{}};
    {
      BatchCheckpointTicker ticker(&batched, kBytes);
      // Deliberately ragged batch sizes, including empty batches.
      const uint64_t splits[] = {1, 7, 0, 511, 1024, 3};
      uint64_t remaining = n;
      size_t i = 0;
      while (remaining > 0) {
        uint64_t take = splits[i++ % (sizeof(splits) / sizeof(splits[0]))];
        if (take > remaining) take = remaining;
        ASSERT_TRUE(ticker.OnBatch(take).ok());
        remaining -= take;
      }
      ASSERT_TRUE(ticker.Flush().ok());
    }
    EXPECT_EQ(per_row.bytes_allocated(), batched.bytes_allocated())
        << "n=" << n;
    EXPECT_EQ(batched.bytes_allocated(), n * kBytes) << "n=" << n;
  }
}

TEST(BatchTickerTest, FullBatchObservesDeadline) {
  GovernorOptions options;
  options.wall_limit_ns = 1;
  ResourceGovernor gov{options};
  BatchCheckpointTicker ticker(&gov, 8);
  // A full batch crosses the stride, so the trip lands on this OnBatch.
  Status st = ticker.OnBatch(1024);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(gov.trip_kind(), TripKind::kDeadline);
}

TEST(BatchTickerTest, MemoryCapTripsOnAccountedBatches) {
  GovernorOptions options;
  options.memory_limit_bytes = 4096;
  ResourceGovernor gov{options};
  BatchCheckpointTicker ticker(&gov, 64);
  Status st = ticker.OnBatch(1024);  // accounts 64 KiB, far over the cap
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.trip_kind(), TripKind::kMemcap);
}

TEST(BatchTickerTest, UngovernedTickerIsANoop) {
  BatchCheckpointTicker ticker(nullptr, 64);
  EXPECT_FALSE(ticker.active());
  EXPECT_TRUE(ticker.OnBatch(1 << 20).ok());
  EXPECT_TRUE(ticker.Flush().ok());
}

// --------------------------------------------------- lowering and passes

TEST(LowerTest, JoinChainPromotesToHashJoin) {
  Bag b = MakeBag({{MakeTuple({A("a"), A("b")}), 4},
                   {MakeTuple({A("b"), A("a")}), 3}});
  Database db = Db({{"B", b}});
  LowerOptions options;
  options.optimize_first = false;  // assert on the raw lowering shape
  auto plan = LowerToIr(JoinChain("B"), db, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->passes.hash_joins, 1u);
  ASSERT_NE(plan->root, nullptr);
  EXPECT_EQ(plan->root->kind, IrKind::kHashJoin);
  EXPECT_EQ(plan->root->probe_arity, 2u);
  EXPECT_EQ(plan->root->probe_key, 2u);
  EXPECT_EQ(plan->root->build_key, 1u);
  ASSERT_EQ(plan->root->children.size(), 2u);
  // The fused projection π_{1,4} stays on the join node.
  ASSERT_FALSE(plan->root->stages.empty());
  EXPECT_EQ(plan->root->stages.back().kind, ir::StageKind::kProject);
}

TEST(LowerTest, ExplainIrRendersThePipelineTree) {
  Bag b = MakeBag({{MakeTuple({A("a"), A("b")}), 4},
                   {MakeTuple({A("b"), A("a")}), 3}});
  Database db = Db({{"B", b}});
  auto text = ir::ExplainIr(JoinChain("B"), db);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("ir plan:"), std::string::npos) << *text;
  EXPECT_NE(text->find("batch=1024"), std::string::npos) << *text;
  EXPECT_NE(text->find("hash_join"), std::string::npos) << *text;
  EXPECT_NE(text->find("probe:"), std::string::npos) << *text;
  EXPECT_NE(text->find("build:"), std::string::npos) << *text;
  EXPECT_NE(text->find("| project"), std::string::npos) << *text;
}

TEST(LowerTest, OutsideFragmentIsUnsupported) {
  Database db = Db({{"S", MakeBagOf({MakeTuple({A("x")})})}});
  auto plan = LowerToIr(Pow(Input("S")), db);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnsupported);
  auto missing = LowerToIr(Input("ZZZ"), db);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(LowerTest, CsePassMarksRepeatedBlockingSubplans) {
  Bag x = MakeBag({{MakeTuple({A("x")}), 5}, {MakeTuple({A("y")}), 1}});
  Database db = Db({{"X", x}});
  LowerOptions options;
  options.optimize_first = false;
  auto plan = LowerToIr(Uplus(Eps(Input("X")), Eps(Input("X"))), db, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // One shared group: the two identical ε pipelines.
  EXPECT_EQ(plan->passes.cse_nodes, 1u);
  ASSERT_EQ(plan->root->children.size(), 2u);
  for (const auto& child : plan->root->children) {
    EXPECT_TRUE(child->cse_shared);
    EXPECT_FALSE(child->cse_key.empty());
  }
  EXPECT_EQ(plan->root->children[0]->cse_key, plan->root->children[1]->cse_key);
}

// ------------------------------------------------ the batch interpreter

TEST(ExecIrTest, JoinMatchesTheEvaluator) {
  Bag b = MakeBag({{MakeTuple({A("a"), A("b")}), 4},
                   {MakeTuple({A("b"), A("a")}), 3}});
  Database db = Db({{"B", b}});
  Evaluator eval;
  auto reference = eval.EvalToBag(JoinChain("B"), db);
  ASSERT_TRUE(reference.ok());
  auto plan = LowerToIr(JoinChain("B"), db);
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto out = ExecuteIr(*plan, db);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, *reference);
  EXPECT_EQ(out->CountOf(MakeTuple({A("a"), A("a")})), Mult(12));
}

TEST(ExecIrTest, BatchBoundarySizesRoundTrip) {
  // One row short of a batch, exactly one batch, one row over.
  for (size_t n : {1023u, 1024u, 1025u}) {
    Database db = Db({{"R", DistinctPairs(n)}});
    Expr q = Select(Proj(Var(0), 2), Proj(Var(0), 2),
                    ProjectAttrs(Input("R"), {2, 1}));
    Evaluator eval;
    auto reference = eval.EvalToBag(q, db);
    ASSERT_TRUE(reference.ok());
    auto plan = LowerToIr(q, db);
    ASSERT_TRUE(plan.ok()) << plan.status();
    auto out = ExecuteIr(*plan, db);
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_EQ(*out, *reference) << "n=" << n;
    EXPECT_EQ(out->TotalCount(), Mult(n)) << "n=" << n;
  }
}

TEST(ExecIrTest, MergeKindsNativeAndViaBridgeAgree) {
  Bag x = MakeBag({{MakeTuple({A("x")}), 5}, {MakeTuple({A("y")}), 1}});
  Bag y = MakeBag({{MakeTuple({A("x")}), 2}, {MakeTuple({A("z")}), 7}});
  Database db = Db({{"X", x}, {"Y", y}});
  Evaluator eval;
  const Expr queries[] = {Monus(Input("X"), Input("Y")),
                          Umax(Input("X"), Input("Y")),
                          Inter(Input("X"), Input("Y"))};
  for (const Expr& q : queries) {
    auto reference = eval.EvalToBag(q, db);
    ASSERT_TRUE(reference.ok());
    auto native = LowerToIr(q, db);
    ASSERT_TRUE(native.ok()) << native.status();
    EXPECT_EQ(native->root->kind, IrKind::kMerge);
    auto native_out = ExecuteIr(*native, db);
    ASSERT_TRUE(native_out.ok()) << native_out.status();
    EXPECT_EQ(*native_out, *reference) << q.ToString();

    LowerOptions bridged;
    bridged.merges_via_bridge = true;
    auto bridge = LowerToIr(q, db, bridged);
    ASSERT_TRUE(bridge.ok()) << bridge.status();
    EXPECT_EQ(bridge->root->kind, IrKind::kBridge);
    auto bridge_out = ExecuteIr(*bridge, db);
    ASSERT_TRUE(bridge_out.ok()) << bridge_out.status();
    EXPECT_EQ(*bridge_out, *reference) << q.ToString();
  }
}

TEST(ExecIrTest, CseSharingPreservesSemantics) {
  Bag x = MakeBag({{MakeTuple({A("x")}), 5}, {MakeTuple({A("y")}), 1}});
  Database db = Db({{"X", x}});
  Expr q = Uplus(Eps(Input("X")), Eps(Input("X")));
  Evaluator eval;
  auto reference = eval.EvalToBag(q, db);
  ASSERT_TRUE(reference.ok());
  LowerOptions options;
  options.optimize_first = false;
  auto plan = LowerToIr(q, db, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_GE(plan->passes.cse_nodes, 1u);
  auto out = ExecuteIr(*plan, db);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, *reference);
}

// ------------------------------------------------------- engine dispatch

TEST(EngineTest, StrictIrRefusesUnsupportedPlans) {
  Database db = Db({{"S", MakeBagOf({MakeTuple({A("x")})})}});
  exec::ExecOptions options;
  options.engine = exec::Engine::kIr;
  auto out = exec::RunPipeline(Pow(Input("S")), db, options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnsupported);
}

TEST(EngineTest, AutoPrefersTheIrEngine) {
  Database db = Db({{"S", MakeBagOf({MakeTuple({A("x")})})}});
  exec::ExecReport report;
  exec::ExecOptions options;
  options.engine = exec::Engine::kAuto;
  options.report = &report;
  auto out = exec::RunPipeline(Eps(Input("S")), db, options);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(report.engine_used, exec::Engine::kIr);
  EXPECT_FALSE(report.fell_back);
}

TEST(EngineTest, AutoFallsBackToVolcanoOnPlansTheIrCannotLower) {
  // P is outside both engines' fragments, but under kAuto the dispatcher
  // records the attempted fallback: the IR refuses at lowering time, the
  // Volcano leg runs (and refuses too — the final status is its verdict).
  Database db = Db({{"S", MakeBagOf({MakeTuple({A("x")})})}});
  exec::ExecReport report;
  exec::ExecOptions options;
  options.engine = exec::Engine::kAuto;
  options.report = &report;
  auto out = exec::RunPipeline(Pow(Input("S")), db, options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(report.engine_used, exec::Engine::kVolcano);
  EXPECT_TRUE(report.fell_back);
}

TEST(EngineTest, VolcanoPinRunsTheOldEngine) {
  Database db = Db({{"S", MakeBagOf({MakeTuple({A("x")})})}});
  exec::ExecReport report;
  exec::ExecOptions options;
  options.engine = exec::Engine::kVolcano;
  options.report = &report;
  auto out = exec::RunPipeline(Eps(Input("S")), db, options);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(report.engine_used, exec::Engine::kVolcano);
  EXPECT_FALSE(report.fell_back);
}

TEST(EngineTest, StrictIrAndPinnedVolcanoAgreeOnResults) {
  Bag b = MakeBag({{MakeTuple({A("a"), A("b")}), 4},
                   {MakeTuple({A("b"), A("a")}), 3}});
  Database db = Db({{"B", b}});
  auto volcano = exec::RunVolcanoPipeline(JoinChain("B"), db);
  ASSERT_TRUE(volcano.ok()) << volcano.status();
  exec::ExecOptions strict;
  strict.engine = exec::Engine::kIr;
  auto fused = exec::RunPipeline(JoinChain("B"), db, strict);
  ASSERT_TRUE(fused.ok()) << fused.status();
  EXPECT_EQ(*fused, *volcano);
}

TEST(EngineTest, StrictIrCatchesIllTypedLambdasAtPlanTime) {
  // The IR engine typechecks before lowering, so an out-of-range
  // projection is a plan-time kTypeError rather than a mid-run abort —
  // and being a plan-time error it never silently falls back under kIr.
  Bag b = MakeBag({{MakeTuple({A("a"), A("b")}), 1}});
  Database db = Db({{"B", b}});
  exec::ExecOptions strict;
  strict.engine = exec::Engine::kIr;
  auto out = exec::RunPipeline(Map(Proj(Var(0), 9), Input("B")), db, strict);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kTypeError);
}

TEST(EngineTest, EngineFromEnvParsesTheKnownNames) {
  ASSERT_EQ(setenv("BAGALG_EXEC_ENGINE", "ir", 1), 0);
  EXPECT_EQ(exec::EngineFromEnv(), exec::Engine::kIr);
  ASSERT_EQ(setenv("BAGALG_EXEC_ENGINE", "interp", 1), 0);
  EXPECT_EQ(exec::EngineFromEnv(), exec::Engine::kVolcano);
  ASSERT_EQ(setenv("BAGALG_EXEC_ENGINE", "volcano", 1), 0);
  EXPECT_EQ(exec::EngineFromEnv(), exec::Engine::kVolcano);
  ASSERT_EQ(setenv("BAGALG_EXEC_ENGINE", "sorcery", 1), 0);
  EXPECT_EQ(exec::EngineFromEnv(), exec::Engine::kAuto);
  ASSERT_EQ(unsetenv("BAGALG_EXEC_ENGINE"), 0);
  EXPECT_EQ(exec::EngineFromEnv(), exec::Engine::kAuto);
}

// ------------------------------------------------------- REPL and lint

TEST(IrScriptTest, ExplainIrCommandRendersThePlan) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("let B = {{[a, b], [b, a]}}").ok());
  auto out = runner.RunLine(
      "explain ir map(x -> tup(proj(2, x)), sel(x -> proj(1, x) == 'a, B))");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("ir plan:"), std::string::npos) << *out;
  EXPECT_NE(out->find("batch=1024"), std::string::npos) << *out;
  EXPECT_NE(out->find("scan B"), std::string::npos) << *out;
}

TEST(IrScriptTest, JournalRecordsTheEngineThatRan) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("let B = {{[a, b], [b, a]}}").ok());
  ASSERT_TRUE(runner.RunLine("exec uplus(B, B)").ok());
  auto tail = runner.journal().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].kind, "exec");
  EXPECT_EQ(tail[0].engine, "ir");
  ASSERT_TRUE(runner.RunLine("eval uplus(B, B)").ok());
  tail = runner.journal().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].engine, "eval");
}

TEST(LintTest, W005FiresWhenPowersetBlocksFusion) {
  Database db = Db({{"S", MakeBagOf({MakeTuple({A("x")}),
                                     MakeTuple({A("y")})})}});
  auto diags = analysis::RunLint(Eps(Pow(Input("S"))), db.schema(),
                                 analysis::CostFacts::Symbolic());
  ASSERT_TRUE(diags.ok()) << diags.status();
  bool found = false;
  for (const auto& d : *diags) found |= d.code == "W005";
  EXPECT_TRUE(found);

  auto map_over = analysis::RunLint(Map(Var(0), Pow(Input("S"))), db.schema(),
                                    analysis::CostFacts::Symbolic());
  ASSERT_TRUE(map_over.ok()) << map_over.status();
  found = false;
  for (const auto& d : *map_over) found |= d.code == "W005";
  EXPECT_TRUE(found);
}

TEST(LintTest, W005SilentOnFusiblePlans) {
  Bag b = MakeBag({{MakeTuple({A("a"), A("b")}), 1}});
  Database db = Db({{"B", b}});
  auto diags = analysis::RunLint(JoinChain("B"), db.schema(),
                                 analysis::CostFacts::Symbolic());
  ASSERT_TRUE(diags.ok()) << diags.status();
  for (const auto& d : *diags) EXPECT_NE(d.code, "W005");
  // P in operand position (not pipeline position) is W001's business only.
  auto hoisted = analysis::RunLint(Pow(Eps(Input("B"))), db.schema(),
                                   analysis::CostFacts::Symbolic());
  ASSERT_TRUE(hoisted.ok()) << hoisted.status();
  for (const auto& d : *hoisted) EXPECT_NE(d.code, "W005");
}

}  // namespace
}  // namespace bagalg
