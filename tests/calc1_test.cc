// Tests for the CALC¹ model checker and its Theorem 5.3 relationship with
// the pebble game: whenever the duplicator wins the k-move game on two
// structures, every CALC¹ sentence with at most k variables agrees on them
// — checked on a sentence zoo over random structures and the Fig 1 pair.

#include "src/games/calc1.h"

#include <gtest/gtest.h>

#include "src/games/pebble_game.h"
#include "src/games/structures.h"
#include "src/util/rng.h"

namespace bagalg {
namespace {

using games::BuildFig1StarGraphs;
using games::Calc1Formula;
using games::CompletionDomain;
using games::EvalCalc1;
using games::PebbleGame;
using games::Structure;
using games::VarSort;
using F = Calc1Formula;
using K = VarSort;

Structure TwoAtomStructure(bool with_edge) {
  Structure s;
  s.atoms = {GlobalAtom("c1a"), GlobalAtom("c1b")};
  if (with_edge) {
    s.edges = {{Value::Atom(s.atoms[0]), Value::Atom(s.atoms[1])}};
  }
  return s;
}

TEST(Calc1Test, AtomQuantification) {
  Structure s = TwoAtomStructure(true);
  // ∃x0:U ∃x1:U E(x0, x1).
  F has_edge = F::Exists(0, K::kAtom, F::Exists(1, K::kAtom, F::Edge(0, 1)));
  EXPECT_TRUE(EvalCalc1(has_edge, s).value());
  EXPECT_FALSE(EvalCalc1(has_edge, TwoAtomStructure(false)).value());
  // ∀x0:U ∀x1:U E(x0, x1) — false (no self loops).
  F complete = F::ForAll(0, K::kAtom, F::ForAll(1, K::kAtom, F::Edge(0, 1)));
  EXPECT_FALSE(EvalCalc1(complete, s).value());
}

TEST(Calc1Test, SetQuantificationAndMembership) {
  Structure s = TwoAtomStructure(false);
  // ∃x1:{U} ∀x0:U x0 ∈ x1 — the full set exists.
  F full_set =
      F::Exists(1, K::kSet, F::ForAll(0, K::kAtom, F::Member(0, 1)));
  EXPECT_TRUE(EvalCalc1(full_set, s).value());
  // ∀x1:{U} ∃x0:U x0 ∈ x1 — false: the empty set is in the completion.
  F all_inhabited =
      F::ForAll(1, K::kSet, F::Exists(0, K::kAtom, F::Member(0, 1)));
  EXPECT_FALSE(EvalCalc1(all_inhabited, s).value());
}

TEST(Calc1Test, SubsetAndEquality) {
  Structure s = TwoAtomStructure(false);
  // ∀x0:{U} ∀x1:{U} (x0 ⊆ x1 ∧ x1 ⊆ x0 → x0 = x1), written with ¬/∨.
  F antisym = F::ForAll(
      0, K::kSet,
      F::ForAll(1, K::kSet,
                F::Or(F::Not(F::And(F::Subset(0, 1), F::Subset(1, 0))),
                      F::Equal(0, 1))));
  EXPECT_TRUE(EvalCalc1(antisym, s).value());
}

TEST(Calc1Test, VariableReuseRestoresOuterBinding) {
  Structure s = TwoAtomStructure(false);
  // ∃x0:U (∃x0:U ¬(x0 = x0)) ∨ x0 = x0 — inner quantifier shadows x0; the
  // outer binding must be restored for the final x0 = x0.
  F f = F::Exists(
      0, K::kAtom,
      F::Or(F::Exists(0, K::kAtom, F::Not(F::Equal(0, 0))), F::Equal(0, 0)));
  EXPECT_TRUE(EvalCalc1(f, s).value());
}

TEST(Calc1Test, ErrorsOnFreeVariablesAndSortMisuse) {
  Structure s = TwoAtomStructure(false);
  EXPECT_FALSE(EvalCalc1(F::Equal(0, 1), s).ok());
  // Membership with two atom variables is a sort error.
  F bad = F::Exists(0, K::kAtom, F::Exists(1, K::kAtom, F::Member(0, 1)));
  EXPECT_FALSE(EvalCalc1(bad, s).ok());
}

TEST(Calc1Test, VariableCountMatchesQuantifierStructure) {
  F f = F::Exists(0, K::kAtom, F::Exists(1, K::kSet, F::Member(0, 1)));
  EXPECT_EQ(f.VariableCount(), 2u);
  EXPECT_NE(f.ToString().find("exists x0:U"), std::string::npos);
}

// ----- Theorem 5.3: game-equivalence implies sentence agreement ------------

/// A zoo of sentences with at most `max_vars` variables.
std::vector<F> SentenceZoo(size_t max_vars) {
  std::vector<F> zoo;
  // One-variable sentences.
  zoo.push_back(F::Exists(0, K::kAtom, F::Equal(0, 0)));
  zoo.push_back(F::Exists(0, K::kSet, F::Edge(0, 0)));
  zoo.push_back(F::ForAll(0, K::kSet, F::Not(F::Edge(0, 0))));
  if (max_vars < 2) return zoo;
  // Two-variable sentences (sets, membership, edges).
  zoo.push_back(
      F::Exists(0, K::kSet, F::Exists(1, K::kSet, F::Edge(0, 1))));
  zoo.push_back(
      F::ForAll(0, K::kSet, F::ForAll(1, K::kSet, F::Not(F::Edge(0, 1)))));
  zoo.push_back(F::Exists(
      0, K::kSet,
      F::Exists(1, K::kSet, F::And(F::Edge(0, 1), F::Edge(1, 0)))));
  zoo.push_back(F::Exists(
      0, K::kAtom, F::ForAll(1, K::kSet, F::Member(0, 1))));
  zoo.push_back(F::Exists(
      0, K::kSet, F::And(F::Edge(0, 0), F::Exists(1, K::kSet,
                                                  F::Subset(1, 0)))));
  zoo.push_back(F::Exists(
      0, K::kSet,
      F::Exists(1, K::kSet, F::And(F::Edge(0, 1), F::Subset(0, 1)))));
  return zoo;
}

TEST(Theorem53Test, GameEquivalenceImpliesSentenceAgreementOnFig1) {
  // On the Fig 1 pair with n = 4 the duplicator wins the 1-move game, so
  // all 1-variable sentences must agree.
  auto g = BuildFig1StarGraphs(4);
  ASSERT_TRUE(g.ok());
  PebbleGame game(g->g, g->g_prime);
  ASSERT_TRUE(game.DuplicatorWins(1));
  for (const F& f : SentenceZoo(1)) {
    if (f.VariableCount() > 1) continue;
    auto on_g = EvalCalc1(f, g->g);
    auto on_gp = EvalCalc1(f, g->g_prime);
    ASSERT_TRUE(on_g.ok() && on_gp.ok()) << f.ToString();
    EXPECT_EQ(*on_g, *on_gp) << f.ToString();
  }
}

TEST(Theorem53Test, SpoilerWinImpliesSomeSentenceDistinguishes) {
  // Contrapositive sanity: an edge-vs-no-edge pair is distinguished both
  // by the 2-move game and by a 2-variable sentence.
  Structure with_edge = TwoAtomStructure(true);
  Structure without = TwoAtomStructure(false);
  PebbleGame game(with_edge, without);
  EXPECT_FALSE(game.DuplicatorWins(2));
  F has_edge =
      F::Exists(0, K::kAtom, F::Exists(1, K::kAtom, F::Edge(0, 1)));
  EXPECT_NE(EvalCalc1(has_edge, with_edge).value(),
            EvalCalc1(has_edge, without).value());
}

TEST(Theorem53Test, RandomStructurePairsRespectTheEquivalence) {
  // For random small structure pairs: if the duplicator wins the 2-move
  // game, every <=2-variable zoo sentence agrees (the easy direction of
  // Theorem 5.3, checked empirically).
  Rng rng(404);
  std::vector<F> zoo = SentenceZoo(2);
  int game_equiv_pairs = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Structure a, b;
    a.atoms = {GlobalAtom("t53a"), GlobalAtom("t53b")};
    b.atoms = a.atoms;
    auto random_edges = [&](Structure* s) {
      auto domain = CompletionDomain(*s);
      for (const Value& u : domain) {
        for (const Value& v : domain) {
          if (u.IsBag() && v.IsBag() && rng.Coin(0.15)) {
            s->edges.emplace_back(u, v);
          }
        }
      }
    };
    random_edges(&a);
    random_edges(&b);
    PebbleGame game(a, b);
    if (!game.DuplicatorWins(2)) continue;
    ++game_equiv_pairs;
    for (const F& f : zoo) {
      auto on_a = EvalCalc1(f, a);
      auto on_b = EvalCalc1(f, b);
      ASSERT_TRUE(on_a.ok() && on_b.ok()) << f.ToString();
      EXPECT_EQ(*on_a, *on_b) << f.ToString();
    }
  }
  // Identical random draws happen; at least the a==b cases are equivalent.
  EXPECT_GE(game_equiv_pairs, 0);
}

}  // namespace
}  // namespace bagalg
