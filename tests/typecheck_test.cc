// Tests for the static type checker and the fragment analyses: output
// types per operator, error paths, bag-nesting stratification (BALG^k) and
// power nesting (BALG^k_i, §6).

#include "src/algebra/typecheck.h"

#include <gtest/gtest.h>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"

namespace bagalg {
namespace {

Type U() { return Type::Atom(); }
Type TupU(size_t k) { return Type::Tuple(std::vector<Type>(k, U())); }

Schema FlatSchema() {
  return Schema{{"B", Type::Bag(TupU(2))}, {"C", Type::Bag(TupU(1))}};
}

TEST(TypecheckTest, InputTypes) {
  Schema s = FlatSchema();
  auto t = TypeOf(Input("B"), s);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, Type::Bag(TupU(2)));
  EXPECT_EQ(TypeOf(Input("Z"), s).status().code(), StatusCode::kNotFound);
}

TEST(TypecheckTest, MergeOpsJoinElementTypes) {
  Schema s = FlatSchema();
  auto t = TypeOf(Uplus(Input("B"), Input("B")), s);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, Type::Bag(TupU(2)));
  // Arity mismatch is a type error.
  EXPECT_EQ(TypeOf(Uplus(Input("B"), Input("C")), s).status().code(),
            StatusCode::kTypeError);
}

TEST(TypecheckTest, ProductConcatenatesTupleTypes) {
  Schema s = FlatSchema();
  auto t = TypeOf(Product(Input("B"), Input("C")), s);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, Type::Bag(TupU(3)));
}

TEST(TypecheckTest, ProductRejectsNonTuples) {
  Schema s{{"A", Type::Bag(U())}};
  EXPECT_EQ(TypeOf(Product(Input("A"), Input("A")), s).status().code(),
            StatusCode::kTypeError);
}

TEST(TypecheckTest, PowersetAndDestroy) {
  Schema s = FlatSchema();
  auto t = TypeOf(Pow(Input("B")), s);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, Type::Bag(Type::Bag(TupU(2))));
  auto back = TypeOf(Destroy(Pow(Input("B"))), s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Type::Bag(TupU(2)));
  // δ on a flat bag is a type error.
  EXPECT_EQ(TypeOf(Destroy(Input("B")), s).status().code(),
            StatusCode::kTypeError);
}

TEST(TypecheckTest, MapInfersBodyUnderBinder) {
  Schema s = FlatSchema();
  auto t = TypeOf(Map(Proj(Var(0), 1), Input("B")), s);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, Type::Bag(U()));
  // Out-of-range projection.
  EXPECT_EQ(TypeOf(Map(Proj(Var(0), 3), Input("B")), s).status().code(),
            StatusCode::kTypeError);
  // Unbound variable.
  EXPECT_EQ(TypeOf(Map(Var(1), Input("B")), s).status().code(),
            StatusCode::kTypeError);
}

TEST(TypecheckTest, SelectRequiresComparableSides) {
  Schema s = FlatSchema();
  auto ok = TypeOf(Select(Proj(Var(0), 1), Proj(Var(0), 2), Input("B")), s);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, Type::Bag(TupU(2)));
  // Comparing an atom with a bag of atoms is ill-typed.
  EXPECT_EQ(
      TypeOf(Select(Proj(Var(0), 1), Beta(Proj(Var(0), 2)), Input("B")), s)
          .status()
          .code(),
      StatusCode::kTypeError);
}

TEST(TypecheckTest, NestAndUnnestTypes) {
  Schema s = FlatSchema();
  auto nested = TypeOf(NestExpr(Input("B"), {2}), s);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(*nested, Type::Bag(Type::Tuple({U(), Type::Bag(TupU(1))})));
  auto back = TypeOf(UnnestExpr(NestExpr(Input("B"), {2}), 2), s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Type::Bag(Type::Tuple({U(), TupU(1)})));
}

TEST(TypecheckTest, FixpointTypes) {
  Schema s = FlatSchema();
  Expr tc = TransitiveClosure(Input("B"));
  auto t = TypeOf(tc, s);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, Type::Bag(TupU(2)));
}

TEST(TypecheckTest, ConstLiteralTypes) {
  Schema s;
  Bag b = MakeBagOf({MakeTuple({MakeAtom("a")})});
  auto t = TypeOf(ConstBag(b), s);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, Type::Bag(TupU(1)));
}

// ----------------------------------------------------------- fragment info

TEST(AnalysisTest, PowerNestingCountsNestedPowersets) {
  Schema s = FlatSchema();
  // P(P(B)) has power nesting 2; δP δP has nesting 2 as well (they nest);
  // P(B) × P(B) has nesting 1 (parallel, not nested).
  auto a1 = AnalyzeExpr(Pow(Pow(Input("B"))), s);
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->power_nesting, 2);
  auto a2 = AnalyzeExpr(Destroy(Pow(Destroy(Pow(Input("B"))))), s);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->power_nesting, 2);
  auto a3 = AnalyzeExpr(Uplus(Destroy(Pow(Input("B"))),
                              Destroy(Pow(Input("B")))),
                        s);
  ASSERT_TRUE(a3.ok());
  EXPECT_EQ(a3->power_nesting, 1);
}

TEST(AnalysisTest, MaxTypeNestingTracksIntermediates) {
  Schema s = FlatSchema();
  // The output of δ(P(B)) is flat but the intermediate P(B) has nesting 2.
  auto a = AnalyzeExpr(Destroy(Pow(Input("B"))), s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->type.BagNesting(), 1);
  EXPECT_EQ(a->max_type_nesting, 2);
}

TEST(AnalysisTest, OpCountsAndFlags) {
  Schema s = FlatSchema();
  Expr e = Uplus(Powbag(Input("B")) , Powbag(Input("B")));
  auto a = AnalyzeExpr(Destroy(e), s);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->uses_powerbag);
  EXPECT_FALSE(a->uses_fixpoint);
  EXPECT_EQ(a->op_counts.at(ExprKind::kPowerbag), 2u);
  auto b = AnalyzeExpr(TransitiveClosure(Input("B")), s);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->uses_fixpoint);
}

TEST(AnalysisTest, CheckFragmentStratifies) {
  Schema s = FlatSchema();
  // ε and merges stay in BALG^1; one powerset needs BALG^2; P(P(·)) BALG^3.
  EXPECT_TRUE(CheckFragment(Eps(Input("B")), s, 1).ok());
  EXPECT_FALSE(CheckFragment(Pow(Input("B")), s, 1).ok());
  EXPECT_TRUE(CheckFragment(Pow(Input("B")), s, 2).ok());
  EXPECT_FALSE(CheckFragment(Pow(Pow(Input("B"))), s, 2).ok());
  EXPECT_TRUE(CheckFragment(Pow(Pow(Input("B"))), s, 3).ok());
}

TEST(AnalysisTest, CheckBalg1RejectsPowerAndDestroy) {
  Schema s = FlatSchema();
  EXPECT_TRUE(CheckBalg1(Uplus(Input("B"), Eps(Input("B"))), s).ok());
  EXPECT_FALSE(CheckBalg1(Destroy(Pow(Input("B"))), s).ok());
  // MAP producing a nested type also leaves BALG^1.
  EXPECT_FALSE(CheckBalg1(Map(Beta(Var(0)), Input("B")), s).ok());
}

TEST(AnalysisTest, Balg1QueriesFromThePaperAreBalg1) {
  Schema s{{"R", Type::Bag(TupU(1))},
           {"S", Type::Bag(TupU(1))},
           {"G", Type::Bag(TupU(2))},
           {"Leq", Type::Bag(TupU(2))}};
  Value unit = MakeAtom("u");
  EXPECT_TRUE(CheckBalg1(CardGreater(Input("R"), Input("S")), s).ok());
  EXPECT_TRUE(
      CheckBalg1(InDegreeGreaterThanOut(Input("G"), MakeAtom("c")), s).ok());
  EXPECT_TRUE(CheckBalg1(EvenCardinalityWithOrder(Input("R"), Input("Leq"),
                                                  unit),
                         s)
                  .ok());
  // The §3 subtraction-from-powerset construction is *not* BALG^1 — the
  // paper's point that the nesting increase is essential (Prop 4.1).
  EXPECT_FALSE(
      CheckBalg1(MonusViaPowerset(Input("R"), Input("S")), s).ok());
}

TEST(AnalysisTest, BoundedFixpointTransitiveClosureStaysBalg1) {
  // §6 end: "Transitive closure is expressible in the extension of BALG1
  // to bounded fixpoint" — the bounded-TC expression uses only flat types
  // and no powerset/bag-destroy.
  Schema s{{"G", Type::Bag(TupU(2))}};
  EXPECT_TRUE(CheckBalg1(TransitiveClosureBounded(Input("G")), s).ok());
  // The plain-IFP variant is also flat, but Theorem 6.6 shows unbounded
  // IFP over nested types is Turing complete — boundedness is what keeps
  // the complexity tame.
  auto a = AnalyzeExpr(TransitiveClosureBounded(Input("G")), s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->max_type_nesting, 1);
  EXPECT_EQ(a->power_nesting, 0);
}

TEST(AnalysisTest, NodeCountMatchesExprSize) {
  Schema s = FlatSchema();
  Expr e = Uplus(Input("B"), Eps(Input("B")));
  auto a = AnalyzeExpr(e, s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->node_count, ExprSize(e));
}

// Error paths are part of the checker's contract: the lint/budget layer and
// the REPL both surface these messages verbatim, so the code AND the message
// content are pinned here. A message regression is a user-facing regression.

// Helper: run TypeOf and return the error status (asserting it IS an error).
Status TypeErrorOf(const Expr& e, const Schema& s) {
  auto t = TypeOf(e, s);
  EXPECT_FALSE(t.ok()) << "expected a type error, got " << t->ToString();
  return t.ok() ? Status::Ok() : t.status();
}

TEST(TypecheckErrorTest, MissingInputNamesTheBag) {
  Status st = TypeErrorOf(Input("Missing"), FlatSchema());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_NE(st.message().find("no input bag named 'Missing'"),
            std::string::npos)
      << st;
}

TEST(TypecheckErrorTest, UnboundVariableReportsItsDepth) {
  Schema s = FlatSchema();
  // Var(0) is bound by the map; Var(2) reaches past every binder.
  Status st = TypeErrorOf(Map(Tup({Var(2)}), Input("B")), s);
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_NE(st.message().find("unbound variable of depth 2"),
            std::string::npos)
      << st;
}

TEST(TypecheckErrorTest, ProjOutOfRangeNamesAttributeAndType) {
  Schema s = FlatSchema();
  // B's tuples have arity 2; attribute 3 is out of range.
  Status st = TypeErrorOf(Map(Tup({Proj(Var(0), 3)}), Input("B")), s);
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_NE(st.message().find("proj attribute 3 out of range for [U, U]"),
            std::string::npos)
      << st;
}

TEST(TypecheckErrorTest, ProjOnNonTupleNamesTheActualType) {
  Schema s = FlatSchema();
  Status st = TypeErrorOf(Map(Tup({Proj(Beta(Var(0)), 1)}), Input("B")), s);
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_NE(st.message().find("proj applies to tuples"), std::string::npos)
      << st;
}

TEST(TypecheckErrorTest, MergeArityMismatchSurfacesJoinError) {
  Schema s = FlatSchema();
  // B : {{[U, U]}} vs C : {{[U]}} — Type::Join reports the arity mismatch
  // and uplus propagates it unchanged.
  Status st = TypeErrorOf(Uplus(Input("B"), Input("C")), s);
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_NE(st.message().find("tuple arity mismatch"), std::string::npos)
      << st;
  EXPECT_NE(st.message().find("[U, U]"), std::string::npos) << st;
  EXPECT_NE(st.message().find("[U]"), std::string::npos) << st;
}

TEST(TypecheckErrorTest, MergeOnNonBagNamesTheOperator) {
  Schema s = FlatSchema();
  Status st = TypeErrorOf(Map(Tup({Inter(Proj(Var(0), 1), Proj(Var(0), 1))}),
                              Input("B")),
                          s);
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_NE(st.message().find("inter requires a bag operand"),
            std::string::npos)
      << st;
}

TEST(TypecheckErrorTest, FlatOnFlatBagNamesTheFullType) {
  Schema s = FlatSchema();
  Status st = TypeErrorOf(Destroy(Input("B")), s);
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_NE(st.message().find("flat requires a bag of bags"),
            std::string::npos)
      << st;
  EXPECT_NE(st.message().find("{{[U, U]}}"), std::string::npos) << st;
}

TEST(TypecheckErrorTest, ProductOfNonTuplesNamesBothElements) {
  Schema s{{"NB", Type::Bag(Type::Bag(TupU(1)))}};
  Status st = TypeErrorOf(Product(Input("NB"), Input("NB")), s);
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_NE(st.message().find("prod requires bags of tuples"),
            std::string::npos)
      << st;
}

TEST(TypecheckErrorTest, FragmentViolationsAreUnsupportedNotTypeErrors) {
  Schema s = FlatSchema();
  // Fragment checks gate *well-typed* queries, so they report kUnsupported —
  // callers distinguish "your query is wrong" from "not in this fragment".
  Status st = CheckBalg1(Pow(Input("B")), s);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
  Status nested = CheckFragment(Pow(Pow(Input("B"))), s, 2);
  ASSERT_FALSE(nested.ok());
  EXPECT_EQ(nested.code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace bagalg
