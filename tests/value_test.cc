// Tests for complex-object values and canonical counted bags (paper §2):
// construction, n-membership, canonicalization, ordering, subbag relation,
// rendering, and the standard-encoding size measure.

#include "src/core/value.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>
#include <vector>

#include "src/core/encoding.h"
#include "src/core/iso.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

namespace bagalg {
namespace {

Value A(const char* name) { return MakeAtom(name); }

TEST(ValueTest, AtomBasics) {
  Value a = A("a");
  EXPECT_TRUE(a.IsAtom());
  EXPECT_EQ(a.type(), Type::Atom());
  EXPECT_EQ(a.ToString(), "a");
  EXPECT_EQ(a, A("a"));
  EXPECT_NE(a, A("b"));
}

TEST(ValueTest, TupleBasics) {
  Value t = MakeTuple({A("a"), A("b")});
  EXPECT_TRUE(t.IsTuple());
  EXPECT_EQ(t.fields().size(), 2u);
  EXPECT_EQ(t.type(), Type::Tuple({Type::Atom(), Type::Atom()}));
  EXPECT_EQ(t.ToString(), "[a, b]");
}

TEST(ValueTest, DefaultValueIsEmptyTuple) {
  Value v;
  EXPECT_TRUE(v.IsTuple());
  EXPECT_EQ(v.fields().size(), 0u);
}

TEST(ValueTest, NestedBagValue) {
  Bag inner = MakeBagOf({A("a"), A("b")});
  Value v = Value::FromBag(inner);
  EXPECT_TRUE(v.IsBag());
  EXPECT_EQ(v.type(), Type::Bag(Type::Atom()));
  EXPECT_EQ(v.bag(), inner);
}

TEST(BagTest, CanonicalizationMergesDuplicates) {
  Bag b = MakeBag({{A("b"), 2}, {A("a"), 1}, {A("b"), 3}});
  ASSERT_EQ(b.DistinctCount(), 2u);
  // Entries are sorted by the value order (atom ids) and counts merged.
  EXPECT_LT(b.entries()[0].value.Compare(b.entries()[1].value), 0);
  EXPECT_EQ(b.CountOf(A("a")), Mult(1));
  EXPECT_EQ(b.CountOf(A("b")), Mult(5));
  EXPECT_EQ(b.TotalCount(), Mult(6));
}

TEST(BagTest, NMembership) {
  // "an element n-belongs to a bag if it has exactly n occurrences" (§2).
  Bag b = MakeBag({{A("a"), 3}, {A("c"), 1}});
  EXPECT_EQ(b.CountOf(A("a")), Mult(3));
  EXPECT_EQ(b.CountOf(A("c")), Mult(1));
  EXPECT_EQ(b.CountOf(A("zz")), Mult(0));
  EXPECT_TRUE(b.Contains(A("a")));
  EXPECT_FALSE(b.Contains(A("zz")));
}

TEST(BagTest, ZeroCountAdditionsIgnored) {
  Bag::Builder builder;
  builder.Add(A("a"), Mult(0));
  auto b = std::move(builder).Build();
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->empty());
}

TEST(BagTest, InhomogeneousBuildFails) {
  Bag::Builder builder;
  builder.AddOne(A("a"));
  builder.AddOne(MakeTuple({A("a")}));
  auto b = std::move(builder).Build();
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kTypeError);
}

TEST(BagTest, DeclaredElementTypeSurvivesEmptiness) {
  Bag b(Type::Tuple({Type::Atom()}));
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.element_type(), Type::Tuple({Type::Atom()}));
  EXPECT_EQ(b.type(), Type::Bag(Type::Tuple({Type::Atom()})));
}

TEST(BagTest, EmptyBagsEqualRegardlessOfElementType) {
  Bag a(Type::Atom());
  Bag b(Type::Tuple({Type::Atom(), Type::Atom()}));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(BagTest, SetLikeDetection) {
  EXPECT_TRUE(MakeBagOf({A("a"), A("b")}).IsSetLike());
  EXPECT_FALSE(MakeBag({{A("a"), 2}}).IsSetLike());
  EXPECT_TRUE(Bag().IsSetLike());
}

TEST(BagTest, SubBagRelation) {
  Bag big = MakeBag({{A("a"), 3}, {A("b"), 1}});
  EXPECT_TRUE(MakeBag({{A("a"), 2}}).SubBagOf(big));
  EXPECT_TRUE(MakeBag({{A("a"), 3}, {A("b"), 1}}).SubBagOf(big));
  EXPECT_TRUE(Bag().SubBagOf(big));
  EXPECT_FALSE(MakeBag({{A("a"), 4}}).SubBagOf(big));
  EXPECT_FALSE(MakeBag({{A("zzz"), 1}}).SubBagOf(big));
  EXPECT_FALSE(big.SubBagOf(MakeBag({{A("a"), 3}})));
}

TEST(BagTest, NCopiesBuildsThePaperBn) {
  Bag bn = NCopies(Mult(7), MakeTuple({A("a")}));
  EXPECT_EQ(bn.DistinctCount(), 1u);
  EXPECT_EQ(bn.TotalCount(), Mult(7));
}

TEST(ValueTest, TotalOrderIsConsistent) {
  // atoms < tuples < bags; recursive lexicographic within kinds.
  std::vector<Value> values = {
      A("a"),
      MakeTuple({A("a")}),
      Value::FromBag(MakeBagOf({A("a")})),
      MakeTuple({A("a"), A("b")}),
      Value::FromBag(MakeBag({{A("a"), 2}})),
  };
  for (const Value& x : values) {
    EXPECT_EQ(x.Compare(x), 0);
    for (const Value& y : values) {
      EXPECT_EQ(x.Compare(y), -y.Compare(x));
      for (const Value& z : values) {
        if (x.Compare(y) < 0 && y.Compare(z) < 0) {
          EXPECT_LT(x.Compare(z), 0);
        }
      }
    }
  }
}

TEST(ValueTest, EqualValuesShareHash) {
  Value v1 = Value::FromBag(MakeBag({{MakeTuple({A("a"), A("b")}), 5}}));
  Value v2 = Value::FromBag(MakeBag({{MakeTuple({A("a"), A("b")}), 5}}));
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(v1.Hash(), v2.Hash());
}

TEST(ValueTest, RenderingWithMultiplicities) {
  Bag b = MakeBag({{MakeTuple({A("a"), A("b")}), 3}, {MakeTuple({A("b"), A("a")}), 1}});
  EXPECT_EQ(b.ToString(), "{{[a, b]*3, [b, a]}}");
}

TEST(EncodingTest, StandardSizeWeighsDuplicates) {
  // Standard encoding repeats each object per occurrence (§2).
  Bag b = MakeBag({{MakeTuple({A("a"), A("b")}), 3}});
  // Tuple [a, b] weighs 1 + 1 + 1 = 3; three occurrences -> 9.
  EXPECT_EQ(StandardEncodingSize(b), BigNat(9));
  // Counted representation charges the tuple once plus one limb.
  EXPECT_EQ(CountedEncodingSize(b), 4u);
}

TEST(EncodingTest, StandardSizeNested) {
  Bag inner = MakeBag({{A("a"), 2}});       // size 2
  Bag outer = MakeBag({{Value::FromBag(inner), 3}});  // 3 * (2 + 1)
  EXPECT_EQ(StandardEncodingSize(outer), BigNat(9));
}

TEST(EncodingTest, MaxMultiplicityFindsNestedCounts) {
  Bag inner = MakeBag({{A("a"), 17}});
  Bag outer = MakeBag({{Value::FromBag(inner), 3}});
  EXPECT_EQ(MaxMultiplicity(outer), BigNat(17));
}

TEST(IsoTest, RenamingPreservesStructureAndCounts) {
  AtomId a = GlobalAtom("a"), b = GlobalAtom("b"), c = GlobalAtom("c");
  Isomorphism iso;
  iso.Map(a, b);
  iso.Map(b, c);
  iso.Map(c, a);
  Bag bag = MakeBag({{MakeTuple({A("a"), A("b")}), 2}, {MakeTuple({A("c"), A("c")}), 5}});
  auto renamed = iso.Apply(bag);
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(renamed->CountOf(MakeTuple({A("b"), A("c")})), Mult(2));
  EXPECT_EQ(renamed->CountOf(MakeTuple({A("a"), A("a")})), Mult(5));
  // Applying the inverse recovers the original.
  auto back = iso.Inverse().Apply(*renamed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, bag);
}

TEST(IsoTest, RandomPermutationIsBijective) {
  Rng rng(42);
  std::vector<AtomId> atoms;
  for (int i = 0; i < 10; ++i) atoms.push_back(GlobalAtom("p" + std::to_string(i)));
  Isomorphism iso = Isomorphism::RandomPermutation(atoms, rng);
  std::set<AtomId> images;
  for (AtomId id : atoms) images.insert(iso.Apply(id));
  EXPECT_EQ(images.size(), atoms.size());
}

TEST(IsoTest, CollectAtomsFindsAllOccurrences) {
  Bag inner = MakeBagOf({A("x1")});
  Bag bag = MakeBag({{MakeTuple({A("x2"), Value::FromBag(inner)}), 2}});
  std::unordered_set<AtomId> atoms;
  CollectAtoms(bag, &atoms);
  EXPECT_EQ(atoms.size(), 2u);
  EXPECT_TRUE(atoms.count(GlobalAtom("x1")));
  EXPECT_TRUE(atoms.count(GlobalAtom("x2")));
}

// ------------------------------------------------------- lazy hash index

/// Reference membership lookup: a linear scan of the canonical entries.
Mult LinearCountOf(const Bag& bag, const Value& v) {
  for (const BagEntry& e : bag.entries()) {
    if (e.value == v) return e.count;
  }
  return Mult();
}

class BagIndexTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BagIndexTest, CountOfAgreesWithLinearScanOnRandomBags) {
  Rng rng(GetParam());
  FlatBagSpec spec;
  spec.arity = 2;
  spec.num_atoms = 24;
  spec.num_elements = 400;  // distinct count well above kIndexThreshold
  spec.max_mult = 7;
  Bag bag = RandomFlatBag(rng, spec);
  ASSERT_GE(bag.DistinctCount(), Bag::kIndexThreshold);

  // Every present value answers its exact multiplicity.
  for (const BagEntry& e : bag.entries()) {
    EXPECT_EQ(bag.CountOf(e.value), e.count);
    EXPECT_TRUE(bag.Contains(e.value));
  }
  // Random probes (present or absent) agree with the linear scan.
  std::vector<Value> pool = AtomPool(spec.num_atoms + 8);
  for (int i = 0; i < 500; ++i) {
    Value probe = MakeTuple({pool[rng.Below(pool.size())],
                             pool[rng.Below(pool.size())]});
    EXPECT_EQ(bag.CountOf(probe), LinearCountOf(bag, probe))
        << probe.ToString();
  }
  // Values of a different shape never match.
  EXPECT_TRUE(bag.CountOf(pool[0]).IsZero());
  EXPECT_TRUE(bag.CountOf(MakeTuple({pool[0]})).IsZero());
}

TEST_P(BagIndexTest, SubBagOfAgreesWithDefinitionOnRandomBags) {
  Rng rng(GetParam() ^ 0x5eed);
  FlatBagSpec spec;
  spec.arity = 2;
  spec.num_atoms = 12;
  spec.num_elements = 300;
  spec.max_mult = 5;
  Bag large = RandomFlatBag(rng, spec);
  ASSERT_GE(large.DistinctCount(), Bag::kIndexThreshold);

  // A genuine subbag drawn from large's entries (indexed probe path).
  Bag::Builder sub_builder;
  for (const BagEntry& e : large.entries()) {
    if (rng.Coin(0.15)) sub_builder.Add(e.value, Mult(1));
  }
  Bag sub = std::move(sub_builder).Build().value();
  EXPECT_TRUE(sub.SubBagOf(large));

  // Bumping one multiplicity past its entry in large breaks the relation.
  if (!sub.empty()) {
    Bag::Builder bump;
    bump.AddBag(sub);
    const Value& v = sub.entries().front().value;
    bump.Add(v, large.CountOf(v));  // now count(v) = large's count + 1
    Bag not_sub = std::move(bump).Build().value();
    EXPECT_FALSE(not_sub.SubBagOf(large));
  }

  // Reference check on random small bags in both directions.
  for (int trial = 0; trial < 20; ++trial) {
    FlatBagSpec small_spec;
    small_spec.arity = 2;
    small_spec.num_atoms = 12;
    small_spec.num_elements = 10;
    small_spec.max_mult = 5;
    Bag small = RandomFlatBag(rng, small_spec);
    bool expected = true;
    for (const BagEntry& e : small.entries()) {
      if (LinearCountOf(large, e.value) < e.count) expected = false;
    }
    EXPECT_EQ(small.SubBagOf(large), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BagIndexTest,
                         ::testing::Values(7, 21, 1234, 987654));

TEST(BagIndexTest, SmallBagsAnswerWithoutIndex) {
  // Below the threshold CountOf binary-searches; semantics are identical.
  Bag bag = MakeBag({{A("a"), 3}, {A("b"), 1}});
  EXPECT_LT(bag.DistinctCount(), Bag::kIndexThreshold);
  EXPECT_EQ(bag.CountOf(A("a")), Mult(3));
  EXPECT_EQ(bag.CountOf(A("b")), Mult(1));
  EXPECT_TRUE(bag.CountOf(A("c")).IsZero());
}

}  // namespace
}  // namespace bagalg
