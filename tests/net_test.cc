// Tests for the bagalgd server stack (src/net): the defensive JSON reader,
// wire serialization and framing, the HTTP layer's caps and status mapping,
// and the server itself end-to-end over loopback — sessions, admission
// control, governor trips with flight dumps, and graceful drain.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/value.h"
#include "src/net/http.h"
#include "src/net/io.h"
#include "src/net/json_reader.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/util/status.h"

namespace bagalg::net {
namespace {

// ------------------------------------------------------------ json_reader

TEST(JsonReaderTest, ParsesScalarsAndNesting) {
  auto doc = ParseJson(R"js({"a": 1.5, "b": [true, null, "x\nA"]})js");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, JsonValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(a->number, 1.5);
  const JsonValue* b = doc->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_TRUE(b->items[0].boolean);
  EXPECT_EQ(b->items[1].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(b->items[2].string, "x\nA");
}

TEST(JsonReaderTest, GetStringAndGetUint) {
  auto doc = ParseJson(R"js({"s": "hi", "n": 42, "f": 1.5, "neg": -3})js");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("s"), "hi");
  EXPECT_EQ(doc->GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(doc->GetString("n", "dflt"), "dflt");  // wrong type
  EXPECT_EQ(doc->GetUint("n"), 42u);
  EXPECT_EQ(doc->GetUint("f", 7), 7u);    // not integral
  EXPECT_EQ(doc->GetUint("neg", 7), 7u);  // negative
  EXPECT_EQ(doc->GetUint("missing", 9), 9u);
}

TEST(JsonReaderTest, SurrogatePairDecodes) {
  auto doc = ParseJson(R"js("😀")js");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->string, "\xF0\x9F\x98\x80");
  EXPECT_FALSE(ParseJson(R"js("\ud83d")js").ok());   // lone high surrogate
  EXPECT_FALSE(ParseJson(R"js("\ude00")js").ok());   // lone low surrogate
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated",
        "{\"a\" 1}", "[1] trailing", "nan", "\"\x01\""}) {
    auto doc = ParseJson(bad);
    EXPECT_FALSE(doc.ok()) << "accepted: " << bad;
    if (!doc.ok()) {
      EXPECT_EQ(doc.status().code(), StatusCode::kParseError) << bad;
    }
  }
}

TEST(JsonReaderTest, DepthCapHolds) {
  std::string deep;
  for (int i = 0; i < kMaxJsonDepth + 8; ++i) deep += "[";
  auto doc = ParseJson(deep);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("deep"), std::string::npos);
  // At the cap it still parses.
  std::string ok_doc(static_cast<size_t>(kMaxJsonDepth), '[');
  ok_doc += std::string(static_cast<size_t>(kMaxJsonDepth), ']');
  EXPECT_TRUE(ParseJson(ok_doc).ok());
}

// ------------------------------------------------------------------ wire

TEST(WireTest, SerializesNestedValues) {
  const AtomId a = GlobalAtomTable().Intern("wire_a");
  Bag::Builder builder(Type::Atom());
  builder.Add(Value::Atom(a), 3);
  const Bag bag = *std::move(builder).Build();
  EXPECT_EQ(ValueToWireJson(Value::Atom(a)), "{\"atom\":\"wire_a\"}");
  EXPECT_EQ(ValueToWireJson(Value::Tuple({Value::Atom(a), Value::Atom(a)})),
            "{\"tuple\":[{\"atom\":\"wire_a\"},{\"atom\":\"wire_a\"}]}");
  EXPECT_EQ(BagToWireJson(bag),
            "{\"bag\":{\"type\":\"{{U}}\",\"entries\":[{\"v\":{\"atom\":"
            "\"wire_a\"},\"n\":\"3\"}]}}");
}

TEST(WireTest, HugeMultiplicitiesTravelAsStrings) {
  const AtomId a = GlobalAtomTable().Intern("wire_big");
  Bag::Builder builder(Type::Atom());
  builder.Add(Value::Atom(a), BigNat::TwoPow(100));
  const std::string json = BagToWireJson(*std::move(builder).Build());
  // 2^100 — far past double precision; must appear quoted and exact.
  EXPECT_NE(json.find("\"1267650600228229401496703205376\""),
            std::string::npos)
      << json;
}

TEST(WireTest, FrameRoundTrips) {
  const std::string payload = "{\"atom\":\"x\"}";
  const std::string frame = EncodeFrame(WireFormat::kJson, payload);
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  size_t consumed = 0;
  auto decoded = DecodeFrame(frame, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded->payload, payload);
  EXPECT_EQ(decoded->format, WireFormat::kJson);
}

TEST(WireTest, FrameDecodeIsDefensive) {
  const std::string frame = EncodeFrame(WireFormat::kJson, "payload");
  size_t consumed = 0;
  // A prefix is retryable (kUnavailable), not an error.
  auto partial = DecodeFrame(std::string_view(frame).substr(0, 5), &consumed);
  ASSERT_FALSE(partial.ok());
  EXPECT_EQ(partial.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(consumed, 0u);
  // Wrong magic fails immediately, even on a short buffer.
  auto bad = DecodeFrame("XXXX", &consumed);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  // An absurd length is refused before any allocation.
  std::string huge = frame.substr(0, kFrameHeaderBytes);
  huge[8] = '\xFF';
  huge[9] = '\xFF';
  huge[10] = '\xFF';
  huge[11] = '\x7F';
  auto oversized = DecodeFrame(huge, &consumed);
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kParseError);
}

// ------------------------------------------------------------------ http

TEST(HttpTest, StatusMappingFollowsRetryabilityContract) {
  // The three retryable codes map to statuses clients may retry; every
  // permanent code maps to one they must not.
  for (const StatusCode code :
       {StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
        StatusCode::kUnavailable}) {
    EXPECT_TRUE(IsRetryable(code));
    const int http = HttpStatusForCode(code);
    EXPECT_TRUE(http == 429 || http == 499 || http == 503 || http == 504)
        << http;
  }
  EXPECT_EQ(HttpStatusForCode(StatusCode::kBudgetExceeded), 422);
  EXPECT_FALSE(IsRetryable(StatusCode::kBudgetExceeded));
  EXPECT_EQ(HttpStatusForCode(StatusCode::kResourceExhausted), 507);
  EXPECT_FALSE(IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_EQ(HttpStatusForCode(StatusCode::kParseError), 400);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kOk), 200);
}

// Feeds raw bytes to ReadHttpRequest through a socketpair.
class HttpParseFixture {
 public:
  HttpParseFixture() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    reader_ = Fd(fds[0]);
    writer_ = Fd(fds[1]);
  }

  Result<HttpRequest> Feed(std::string_view bytes, HttpLimits limits = {}) {
    EXPECT_TRUE(WriteAll(writer_.get(), bytes).ok());
    writer_.Reset();  // EOF after the payload
    return ReadHttpRequest(reader_.get(), &buffer_, limits, nullptr);
  }

 private:
  Fd reader_, writer_;
  std::string buffer_;
};

TEST(HttpTest, ParsesRequestWithBody) {
  HttpParseFixture fixture;
  auto request = fixture.Feed(
      "POST /v1/statement?x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "hello");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->path, "/v1/statement");
  EXPECT_EQ(request->query, "x=1");
  EXPECT_EQ(request->headers.at("host"), "localhost");
  EXPECT_EQ(request->body, "hello");
}

TEST(HttpTest, RejectsOversizedBody) {
  HttpParseFixture fixture;
  HttpLimits limits;
  limits.max_body_bytes = 4;
  auto request = fixture.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789", limits);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kResourceExhausted);
}

TEST(HttpTest, RejectsMalformedRequestLine) {
  HttpParseFixture fixture;
  auto request = fixture.Feed("GARBAGE\r\n\r\n");
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kParseError);
}

TEST(HttpTest, MidRequestEofIsAnIoError) {
  HttpParseFixture fixture;
  auto request = fixture.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort");
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------- server

// Minimal blocking HTTP client for loopback tests: one request per
// connection (Connection: close), returns status line + body.
struct ClientResponse {
  int status = 0;
  std::string body;
  std::string raw;
};

ClientResponse Fetch(uint16_t port, const std::string& method,
                     const std::string& path, const std::string& body) {
  ClientResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }
  std::string request = method + " " + path +
                        " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                        "Content-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body;
  if (!WriteAll(fd, request).ok()) {
    ::close(fd);
    return out;
  }
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    out.raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  if (out.raw.size() > 12) out.status = std::atoi(out.raw.c_str() + 9);
  const size_t split = out.raw.find("\r\n\r\n");
  if (split != std::string::npos) out.body = out.raw.substr(split + 4);
  return out;
}

ClientResponse PostStatement(uint16_t port, const std::string& json) {
  return Fetch(port, "POST", "/v1/statement", json);
}

TEST(ServerTest, StatementsRunAndSessionsAreIsolated) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  auto let = PostStatement(
      port, R"js({"session":"alpha","statement":"let X = {{a, a, b}}"})js");
  EXPECT_EQ(let.status, 200) << let.raw;
  EXPECT_NE(let.body.find("\"outcome\":\"ok\""), std::string::npos);

  auto eval = PostStatement(
      port, R"js({"session":"alpha","statement":"eval uplus(X, X)"})js");
  EXPECT_EQ(eval.status, 200) << eval.raw;
  EXPECT_NE(eval.body.find("\"result\":{\"bag\""), std::string::npos);
  EXPECT_NE(eval.body.find("\"n\":\"4\""), std::string::npos);

  // A different session must not see alpha's database.
  auto other = PostStatement(
      port, R"js({"session":"beta","statement":"eval uplus(X, X)"})js");
  EXPECT_EQ(other.status, 404) << other.raw;
  EXPECT_NE(other.body.find("NotFound"), std::string::npos);

  (*server)->RequestShutdown();
  (*server)->Wait();
  const ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.errors, 1u);
}

TEST(ServerTest, BudgetRefusalIsTypedAndPermanent) {
  ServerOptions options;
  options.cost_budget = 1000;  // pow({{..16 atoms..}}) estimates 2^16 >> 1000
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  PostStatement(port,
                R"js({"session":"b","statement":)js"
                R"js("let X = {{a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p}}"})js");
  auto refused =
      PostStatement(port, R"js({"session":"b","statement":"eval pow(X)"})js");
  EXPECT_EQ(refused.status, 422) << refused.raw;
  EXPECT_NE(refused.body.find("\"outcome\":\"budget-refused\""),
            std::string::npos)
      << refused.body;
  EXPECT_NE(refused.body.find("\"retryable\":false"), std::string::npos);

  // Small statements still run: the session survived the refusal.
  auto ok = PostStatement(port, R"js({"session":"b","statement":"count X"})js");
  EXPECT_EQ(ok.status, 200) << ok.raw;

  (*server)->RequestShutdown();
  (*server)->Wait();
  EXPECT_EQ((*server)->stats().refused, 1u);
}

TEST(ServerTest, DeadlineTripReturns504WithFlightDump) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  PostStatement(port,
                R"js({"session":"t","statement":)js"
                R"js("let X = {{a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p}}"})js");
  auto tripped = PostStatement(
      port,
      R"js({"session":"t","statement":"eval pow(pow(X))","timeout_ms":30})js");
  EXPECT_EQ(tripped.status, 504) << tripped.raw;
  EXPECT_NE(tripped.body.find("\"outcome\":\"deadline\""), std::string::npos);
  EXPECT_NE(tripped.body.find("\"retryable\":true"), std::string::npos);
  EXPECT_NE(tripped.body.find("\"flight\""), std::string::npos);
  EXPECT_NE(tripped.raw.find("Retry-After"), std::string::npos);

  // The session survives its trip — REPL semantics.
  auto ok = PostStatement(port, R"js({"session":"t","statement":"count X"})js");
  EXPECT_EQ(ok.status, 200) << ok.raw;

  (*server)->RequestShutdown();
  (*server)->Wait();
  EXPECT_EQ((*server)->stats().tripped, 1u);
}

TEST(ServerTest, SessionCapSheds) {
  ServerOptions options;
  options.max_sessions = 1;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  auto first =
      PostStatement(port, R"js({"session":"one","statement":"count '{{a}}"})js");
  EXPECT_EQ(first.status, 200) << first.raw;
  auto second =
      PostStatement(port, R"js({"session":"two","statement":"count '{{a}}"})js");
  EXPECT_EQ(second.status, 503) << second.raw;
  EXPECT_NE(second.body.find("\"retryable\":true"), std::string::npos);
  EXPECT_NE(second.raw.find("Retry-After"), std::string::npos);

  // Closing the resident session frees the slot.
  auto closed =
      Fetch(port, "POST", "/v1/session/close", R"js({"session":"one"})js");
  EXPECT_EQ(closed.status, 200) << closed.raw;
  auto third =
      PostStatement(port, R"js({"session":"two","statement":"count '{{a}}"})js");
  EXPECT_EQ(third.status, 200) << third.raw;

  (*server)->RequestShutdown();
  (*server)->Wait();
}

TEST(ServerTest, MalformedRequestsAreTyped400s) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  EXPECT_EQ(PostStatement(port, "{not json").status, 400);
  EXPECT_EQ(PostStatement(port, R"js({"statement": 7})js").status, 400);
  EXPECT_EQ(
      PostStatement(port,
                    R"js({"session":"../etc","statement":"count '{{a}}"})js")
          .status,
      400);
  EXPECT_EQ(Fetch(port, "GET", "/nope", "").status, 404);
  EXPECT_EQ(Fetch(port, "GET", "/v1/statement", "").status, 405);

  (*server)->RequestShutdown();
  (*server)->Wait();
}

TEST(ServerTest, ObservabilityEndpointsServe) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  PostStatement(port, R"js({"session":"obs","statement":"count '{{a, b}}"})js");

  auto health = Fetch(port, "GET", "/healthz", "");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"serving\""), std::string::npos);
  EXPECT_NE(health.body.find("\"build\""), std::string::npos);
  EXPECT_NE(health.body.find("\"engine_default\""), std::string::npos);

  auto metrics = Fetch(port, "GET", "/metrics", "");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE bagalg_server_requests_total counter"),
            std::string::npos);

  auto trace = Fetch(port, "GET", "/trace", "");
  EXPECT_EQ(trace.status, 200);
  EXPECT_NE(trace.body.find("\"id\":\"obs\""), std::string::npos);
  EXPECT_NE(trace.body.find("\"outcome\":\"ok\""), std::string::npos);

  (*server)->RequestShutdown();
  (*server)->Wait();
}

TEST(ServerTest, DrainCancelsInFlightAndFlushesJournals) {
  ServerOptions options;
  options.journal_dir = ::testing::TempDir();
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  PostStatement(port,
                R"js({"session":"drain","statement":)js"
                R"js("let X = {{a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p}}"})js");

  // A statement that would run ~forever, launched from a helper thread;
  // the drain below must cancel it rather than wait it out.
  ClientResponse slow;
  std::thread in_flight([&] {
    slow = PostStatement(
        port, R"js({"session":"drain","statement":"eval pow(pow(X))"})js");
  });
  // Give it time to pass admission and start executing.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  (*server)->RequestShutdown();
  (*server)->Wait();
  in_flight.join();

  // The in-flight statement ended in a typed outcome: cancelled by the
  // drain (or, if the race went the other way, shed before starting).
  EXPECT_TRUE(slow.status == 499 || slow.status == 503 || slow.status == 0)
      << slow.raw;
  if (slow.status == 499) {
    EXPECT_NE(slow.body.find("\"outcome\":\"cancel\""), std::string::npos);
  }

  // The session journal was flushed on drain.
  const std::string path =
      options.journal_dir + "/session-drain.jsonl";
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << path;
  char first[16] = {};
  EXPECT_GT(std::fread(first, 1, sizeof(first) - 1, f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::string(first).substr(0, 10), "{\"header\":");

  // After drain every new connection is refused or reset — the listener
  // is gone.
  auto after = Fetch(port, "GET", "/healthz", "");
  EXPECT_EQ(after.status, 0);
}

TEST(ServerTest, ConcurrentSessionsSurviveMixedLoad) {
  ServerOptions options;
  options.executors = 4;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 12;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0}, typed_errors{0}, unexpected{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      const std::string session = "mix" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        ClientResponse r;
        switch (i % 3) {
          case 0:
            r = PostStatement(port, "{\"session\":\"" + session +
                                        "\",\"statement\":"
                                        "\"count pow('{{a,b,c}})\"}");
            break;
          case 1:  // parse error: typed 400
            r = PostStatement(port, "{\"session\":\"" + session +
                                        "\",\"statement\":\"eval ((\"}");
            break;
          default:  // deadline trip on a big statement
            r = PostStatement(
                port, "{\"session\":\"" + session +
                          "\",\"statement\":\"count pow(pow('{{a,b,c,d,e,f,"
                          "g,h,i,j,k,l,m,n,o,p}}))\",\"timeout_ms\":10}");
            break;
        }
        if (r.status == 200) {
          ok.fetch_add(1);
        } else if (r.status == 400 || r.status == 504 || r.status == 429 ||
                   r.status == 503 || r.status == 507) {
          typed_errors.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_EQ(ok.load() + typed_errors.load(), kThreads * kPerThread);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(typed_errors.load(), 0);

  (*server)->RequestShutdown();
  (*server)->Wait();
  const ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace bagalg::net
