// Tests for the bagalgd server stack (src/net): the defensive JSON reader,
// wire serialization and framing, the HTTP layer's caps and status mapping,
// and the server itself end-to-end over loopback — sessions, admission
// control, governor trips with flight dumps, and graceful drain.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/value.h"
#include "src/net/http.h"
#include "src/net/io.h"
#include "src/net/json_reader.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/util/fault.h"
#include "src/util/status.h"

namespace bagalg::net {
namespace {

// ------------------------------------------------------------ json_reader

TEST(JsonReaderTest, ParsesScalarsAndNesting) {
  auto doc = ParseJson(R"js({"a": 1.5, "b": [true, null, "x\nA"]})js");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, JsonValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(a->number, 1.5);
  const JsonValue* b = doc->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_TRUE(b->items[0].boolean);
  EXPECT_EQ(b->items[1].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(b->items[2].string, "x\nA");
}

TEST(JsonReaderTest, GetStringAndGetUint) {
  auto doc = ParseJson(R"js({"s": "hi", "n": 42, "f": 1.5, "neg": -3})js");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("s"), "hi");
  EXPECT_EQ(doc->GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(doc->GetString("n", "dflt"), "dflt");  // wrong type
  EXPECT_EQ(doc->GetUint("n"), 42u);
  EXPECT_EQ(doc->GetUint("f", 7), 7u);    // not integral
  EXPECT_EQ(doc->GetUint("neg", 7), 7u);  // negative
  EXPECT_EQ(doc->GetUint("missing", 9), 9u);
}

TEST(JsonReaderTest, SurrogatePairDecodes) {
  auto doc = ParseJson(R"js("😀")js");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->string, "\xF0\x9F\x98\x80");
  EXPECT_FALSE(ParseJson(R"js("\ud83d")js").ok());   // lone high surrogate
  EXPECT_FALSE(ParseJson(R"js("\ude00")js").ok());   // lone low surrogate
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated",
        "{\"a\" 1}", "[1] trailing", "nan", "\"\x01\""}) {
    auto doc = ParseJson(bad);
    EXPECT_FALSE(doc.ok()) << "accepted: " << bad;
    if (!doc.ok()) {
      EXPECT_EQ(doc.status().code(), StatusCode::kParseError) << bad;
    }
  }
}

TEST(JsonReaderTest, DepthCapHolds) {
  std::string deep;
  for (int i = 0; i < kMaxJsonDepth + 8; ++i) deep += "[";
  auto doc = ParseJson(deep);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("deep"), std::string::npos);
  // At the cap it still parses.
  std::string ok_doc(static_cast<size_t>(kMaxJsonDepth), '[');
  ok_doc += std::string(static_cast<size_t>(kMaxJsonDepth), ']');
  EXPECT_TRUE(ParseJson(ok_doc).ok());
}

// ------------------------------------------------------------------ wire

TEST(WireTest, SerializesNestedValues) {
  const AtomId a = GlobalAtomTable().Intern("wire_a");
  Bag::Builder builder(Type::Atom());
  builder.Add(Value::Atom(a), 3);
  const Bag bag = *std::move(builder).Build();
  EXPECT_EQ(ValueToWireJson(Value::Atom(a)), "{\"atom\":\"wire_a\"}");
  EXPECT_EQ(ValueToWireJson(Value::Tuple({Value::Atom(a), Value::Atom(a)})),
            "{\"tuple\":[{\"atom\":\"wire_a\"},{\"atom\":\"wire_a\"}]}");
  EXPECT_EQ(BagToWireJson(bag),
            "{\"bag\":{\"type\":\"{{U}}\",\"entries\":[{\"v\":{\"atom\":"
            "\"wire_a\"},\"n\":\"3\"}]}}");
}

TEST(WireTest, HugeMultiplicitiesTravelAsStrings) {
  const AtomId a = GlobalAtomTable().Intern("wire_big");
  Bag::Builder builder(Type::Atom());
  builder.Add(Value::Atom(a), BigNat::TwoPow(100));
  const std::string json = BagToWireJson(*std::move(builder).Build());
  // 2^100 — far past double precision; must appear quoted and exact.
  EXPECT_NE(json.find("\"1267650600228229401496703205376\""),
            std::string::npos)
      << json;
}

TEST(WireTest, FrameRoundTrips) {
  const std::string payload = "{\"atom\":\"x\"}";
  const std::string frame = EncodeFrame(WireFormat::kJson, payload);
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  size_t consumed = 0;
  auto decoded = DecodeFrame(frame, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded->payload, payload);
  EXPECT_EQ(decoded->format, WireFormat::kJson);
}

TEST(WireTest, FrameDecodeIsDefensive) {
  const std::string frame = EncodeFrame(WireFormat::kJson, "payload");
  size_t consumed = 0;
  // A prefix is retryable (kUnavailable), not an error.
  auto partial = DecodeFrame(std::string_view(frame).substr(0, 5), &consumed);
  ASSERT_FALSE(partial.ok());
  EXPECT_EQ(partial.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(consumed, 0u);
  // Wrong magic fails immediately, even on a short buffer.
  auto bad = DecodeFrame("XXXX", &consumed);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  // An absurd length is refused before any allocation.
  std::string huge = frame.substr(0, kFrameHeaderBytes);
  huge[8] = '\xFF';
  huge[9] = '\xFF';
  huge[10] = '\xFF';
  huge[11] = '\x7F';
  auto oversized = DecodeFrame(huge, &consumed);
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kParseError);
}

// ------------------------------------------------------------------ http

TEST(HttpTest, StatusMappingFollowsRetryabilityContract) {
  // The three retryable codes map to statuses clients may retry; every
  // permanent code maps to one they must not.
  for (const StatusCode code :
       {StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
        StatusCode::kUnavailable}) {
    EXPECT_TRUE(IsRetryable(code));
    const int http = HttpStatusForCode(code);
    EXPECT_TRUE(http == 429 || http == 499 || http == 503 || http == 504)
        << http;
  }
  EXPECT_EQ(HttpStatusForCode(StatusCode::kBudgetExceeded), 422);
  EXPECT_FALSE(IsRetryable(StatusCode::kBudgetExceeded));
  EXPECT_EQ(HttpStatusForCode(StatusCode::kResourceExhausted), 507);
  EXPECT_FALSE(IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_EQ(HttpStatusForCode(StatusCode::kParseError), 400);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kOk), 200);
}

// Feeds raw bytes to ReadHttpRequest through a socketpair.
class HttpParseFixture {
 public:
  HttpParseFixture() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    reader_ = Fd(fds[0]);
    writer_ = Fd(fds[1]);
  }

  Result<HttpRequest> Feed(std::string_view bytes, HttpLimits limits = {}) {
    EXPECT_TRUE(WriteAll(writer_.get(), bytes).ok());
    writer_.Reset();  // EOF after the payload
    return ReadHttpRequest(reader_.get(), &buffer_, limits, nullptr);
  }

 private:
  Fd reader_, writer_;
  std::string buffer_;
};

TEST(HttpTest, ParsesRequestWithBody) {
  HttpParseFixture fixture;
  auto request = fixture.Feed(
      "POST /v1/statement?x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "hello");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->path, "/v1/statement");
  EXPECT_EQ(request->query, "x=1");
  EXPECT_EQ(request->headers.at("host"), "localhost");
  EXPECT_EQ(request->body, "hello");
}

TEST(HttpTest, RejectsOversizedBody) {
  HttpParseFixture fixture;
  HttpLimits limits;
  limits.max_body_bytes = 4;
  auto request = fixture.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789", limits);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kResourceExhausted);
}

TEST(HttpTest, RejectsMalformedRequestLine) {
  HttpParseFixture fixture;
  auto request = fixture.Feed("GARBAGE\r\n\r\n");
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kParseError);
}

TEST(HttpTest, MidRequestEofIsAnIoError) {
  HttpParseFixture fixture;
  auto request = fixture.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort");
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------- server

// Minimal blocking HTTP client for loopback tests: one request per
// connection (Connection: close), returns status line + body.
struct ClientResponse {
  int status = 0;
  std::string body;
  std::string raw;
};

ClientResponse Fetch(uint16_t port, const std::string& method,
                     const std::string& path, const std::string& body) {
  ClientResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }
  std::string request = method + " " + path +
                        " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                        "Content-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body;
  if (!WriteAll(fd, request).ok()) {
    ::close(fd);
    return out;
  }
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    out.raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  if (out.raw.size() > 12) out.status = std::atoi(out.raw.c_str() + 9);
  const size_t split = out.raw.find("\r\n\r\n");
  if (split != std::string::npos) out.body = out.raw.substr(split + 4);
  return out;
}

ClientResponse PostStatement(uint16_t port, const std::string& json) {
  return Fetch(port, "POST", "/v1/statement", json);
}

TEST(ServerTest, StatementsRunAndSessionsAreIsolated) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  auto let = PostStatement(
      port, R"js({"session":"alpha","statement":"let X = {{a, a, b}}"})js");
  EXPECT_EQ(let.status, 200) << let.raw;
  EXPECT_NE(let.body.find("\"outcome\":\"ok\""), std::string::npos);

  auto eval = PostStatement(
      port, R"js({"session":"alpha","statement":"eval uplus(X, X)"})js");
  EXPECT_EQ(eval.status, 200) << eval.raw;
  EXPECT_NE(eval.body.find("\"result\":{\"bag\""), std::string::npos);
  EXPECT_NE(eval.body.find("\"n\":\"4\""), std::string::npos);

  // A different session must not see alpha's database.
  auto other = PostStatement(
      port, R"js({"session":"beta","statement":"eval uplus(X, X)"})js");
  EXPECT_EQ(other.status, 404) << other.raw;
  EXPECT_NE(other.body.find("NotFound"), std::string::npos);

  (*server)->RequestShutdown();
  (*server)->Wait();
  const ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.errors, 1u);
}

TEST(ServerTest, BudgetRefusalIsTypedAndPermanent) {
  ServerOptions options;
  options.cost_budget = 1000;  // pow({{..16 atoms..}}) estimates 2^16 >> 1000
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  PostStatement(port,
                R"js({"session":"b","statement":)js"
                R"js("let X = {{a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p}}"})js");
  auto refused =
      PostStatement(port, R"js({"session":"b","statement":"eval pow(X)"})js");
  EXPECT_EQ(refused.status, 422) << refused.raw;
  EXPECT_NE(refused.body.find("\"outcome\":\"budget-refused\""),
            std::string::npos)
      << refused.body;
  EXPECT_NE(refused.body.find("\"retryable\":false"), std::string::npos);

  // Small statements still run: the session survived the refusal.
  auto ok = PostStatement(port, R"js({"session":"b","statement":"count X"})js");
  EXPECT_EQ(ok.status, 200) << ok.raw;

  (*server)->RequestShutdown();
  (*server)->Wait();
  EXPECT_EQ((*server)->stats().refused, 1u);
}

TEST(ServerTest, DeadlineTripReturns504WithFlightDump) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  PostStatement(port,
                R"js({"session":"t","statement":)js"
                R"js("let X = {{a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p}}"})js");
  auto tripped = PostStatement(
      port,
      R"js({"session":"t","statement":"eval pow(pow(X))","timeout_ms":30})js");
  EXPECT_EQ(tripped.status, 504) << tripped.raw;
  EXPECT_NE(tripped.body.find("\"outcome\":\"deadline\""), std::string::npos);
  EXPECT_NE(tripped.body.find("\"retryable\":true"), std::string::npos);
  EXPECT_NE(tripped.body.find("\"flight\""), std::string::npos);
  EXPECT_NE(tripped.raw.find("Retry-After"), std::string::npos);

  // The session survives its trip — REPL semantics.
  auto ok = PostStatement(port, R"js({"session":"t","statement":"count X"})js");
  EXPECT_EQ(ok.status, 200) << ok.raw;

  (*server)->RequestShutdown();
  (*server)->Wait();
  EXPECT_EQ((*server)->stats().tripped, 1u);
}

TEST(ServerTest, SessionCapSheds) {
  ServerOptions options;
  options.max_sessions = 1;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  auto first =
      PostStatement(port, R"js({"session":"one","statement":"count '{{a}}"})js");
  EXPECT_EQ(first.status, 200) << first.raw;
  auto second =
      PostStatement(port, R"js({"session":"two","statement":"count '{{a}}"})js");
  EXPECT_EQ(second.status, 503) << second.raw;
  EXPECT_NE(second.body.find("\"retryable\":true"), std::string::npos);
  EXPECT_NE(second.raw.find("Retry-After"), std::string::npos);

  // Closing the resident session frees the slot.
  auto closed =
      Fetch(port, "POST", "/v1/session/close", R"js({"session":"one"})js");
  EXPECT_EQ(closed.status, 200) << closed.raw;
  auto third =
      PostStatement(port, R"js({"session":"two","statement":"count '{{a}}"})js");
  EXPECT_EQ(third.status, 200) << third.raw;

  (*server)->RequestShutdown();
  (*server)->Wait();
}

TEST(ServerTest, MalformedRequestsAreTyped400s) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  EXPECT_EQ(PostStatement(port, "{not json").status, 400);
  EXPECT_EQ(PostStatement(port, R"js({"statement": 7})js").status, 400);
  EXPECT_EQ(
      PostStatement(port,
                    R"js({"session":"../etc","statement":"count '{{a}}"})js")
          .status,
      400);
  EXPECT_EQ(Fetch(port, "GET", "/nope", "").status, 404);
  EXPECT_EQ(Fetch(port, "GET", "/v1/statement", "").status, 405);

  (*server)->RequestShutdown();
  (*server)->Wait();
}

TEST(ServerTest, ObservabilityEndpointsServe) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  PostStatement(port, R"js({"session":"obs","statement":"count '{{a, b}}"})js");

  auto health = Fetch(port, "GET", "/healthz", "");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"serving\""), std::string::npos);
  EXPECT_NE(health.body.find("\"build\""), std::string::npos);
  EXPECT_NE(health.body.find("\"engine_default\""), std::string::npos);

  auto metrics = Fetch(port, "GET", "/metrics", "");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE bagalg_server_requests_total counter"),
            std::string::npos);

  auto trace = Fetch(port, "GET", "/trace", "");
  EXPECT_EQ(trace.status, 200);
  EXPECT_NE(trace.body.find("\"id\":\"obs\""), std::string::npos);
  EXPECT_NE(trace.body.find("\"outcome\":\"ok\""), std::string::npos);

  (*server)->RequestShutdown();
  (*server)->Wait();
}

TEST(ServerTest, DrainCancelsInFlightAndFlushesJournals) {
  ServerOptions options;
  options.journal_dir = ::testing::TempDir();
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  PostStatement(port,
                R"js({"session":"drain","statement":)js"
                R"js("let X = {{a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p}}"})js");

  // A statement that would run ~forever, launched from a helper thread;
  // the drain below must cancel it rather than wait it out.
  ClientResponse slow;
  std::thread in_flight([&] {
    slow = PostStatement(
        port, R"js({"session":"drain","statement":"eval pow(pow(X))"})js");
  });
  // Give it time to pass admission and start executing.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  (*server)->RequestShutdown();
  (*server)->Wait();
  in_flight.join();

  // The in-flight statement ended in a typed outcome: cancelled by the
  // drain (or, if the race went the other way, shed before starting).
  EXPECT_TRUE(slow.status == 499 || slow.status == 503 || slow.status == 0)
      << slow.raw;
  if (slow.status == 499) {
    EXPECT_NE(slow.body.find("\"outcome\":\"cancel\""), std::string::npos);
  }

  // The session journal was flushed on drain.
  const std::string path =
      options.journal_dir + "/session-drain.jsonl";
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << path;
  char first[16] = {};
  EXPECT_GT(std::fread(first, 1, sizeof(first) - 1, f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::string(first).substr(0, 10), "{\"header\":");

  // After drain every new connection is refused or reset — the listener
  // is gone.
  auto after = Fetch(port, "GET", "/healthz", "");
  EXPECT_EQ(after.status, 0);
}

TEST(ServerTest, ConcurrentSessionsSurviveMixedLoad) {
  ServerOptions options;
  options.executors = 4;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 12;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0}, typed_errors{0}, unexpected{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      const std::string session = "mix" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        ClientResponse r;
        switch (i % 3) {
          case 0:
            r = PostStatement(port, "{\"session\":\"" + session +
                                        "\",\"statement\":"
                                        "\"count pow('{{a,b,c}})\"}");
            break;
          case 1:  // parse error: typed 400
            r = PostStatement(port, "{\"session\":\"" + session +
                                        "\",\"statement\":\"eval ((\"}");
            break;
          default:  // deadline trip on a big statement
            r = PostStatement(
                port, "{\"session\":\"" + session +
                          "\",\"statement\":\"count pow(pow('{{a,b,c,d,e,f,"
                          "g,h,i,j,k,l,m,n,o,p}}))\",\"timeout_ms\":10}");
            break;
        }
        if (r.status == 200) {
          ok.fetch_add(1);
        } else if (r.status == 400 || r.status == 504 || r.status == 429 ||
                   r.status == 503 || r.status == 507) {
          typed_errors.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_EQ(ok.load() + typed_errors.load(), kThreads * kPerThread);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(typed_errors.load(), 0);

  (*server)->RequestShutdown();
  (*server)->Wait();
  const ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kThreads * kPerThread));
}

// ------------------------------------------------- HttpReader increments

TEST(HttpReaderTest, TwoRequestsInOneFeedBothParse) {
  // The pipelined-second-request regression: bytes after a parsed body
  // must stay buffered for the next Next(), byte-exact.
  HttpReader reader;
  reader.Feed(
      "POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\none"
      "POST /b HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  HttpRequest first;
  auto got = reader.Next(&first);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(*got);
  EXPECT_EQ(first.path, "/a");
  EXPECT_EQ(first.body, "one");
  EXPECT_GT(reader.buffered_bytes(), 0u);
  HttpRequest second;
  got = reader.Next(&second);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(*got);
  EXPECT_EQ(second.path, "/b");
  EXPECT_EQ(second.body, "hello");
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(HttpReaderTest, ArbitrarySplitBoundariesParseIdentically) {
  // recv never promises request-aligned chunks: feeding the same stream
  // one byte at a time must yield the same two requests. This also walks
  // the head terminator across every possible Feed split.
  const std::string stream =
      "POST /v1/statement HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\nhi"
      "GET /healthz HTTP/1.1\r\n\r\n";
  for (size_t step = 1; step <= 7; ++step) {
    HttpReader reader;
    std::vector<HttpRequest> requests;
    for (size_t off = 0; off < stream.size(); off += step) {
      reader.Feed(stream.substr(off, step));
      while (true) {
        HttpRequest request;
        auto got = reader.Next(&request);
        ASSERT_TRUE(got.ok()) << got.status() << " step=" << step;
        if (!*got) break;
        requests.push_back(std::move(request));
      }
    }
    ASSERT_EQ(requests.size(), 2u) << "step=" << step;
    EXPECT_EQ(requests[0].path, "/v1/statement");
    EXPECT_EQ(requests[0].body, "hi");
    EXPECT_EQ(requests[1].path, "/healthz");
    EXPECT_EQ(requests[1].method, "GET");
  }
}

TEST(HttpReaderTest, PipelinedBytesDoNotCountAgainstNextHeaderCap) {
  // A parsed request's leftovers must never be billed to the *following*
  // request's header cap until they are that request's header bytes.
  HttpLimits limits;
  limits.max_header_bytes = 64;
  HttpReader reader(limits);
  const std::string big_body(48, 'x');
  reader.Feed("POST /a HTTP/1.1\r\nContent-Length: " +
              std::to_string(big_body.size()) + "\r\n\r\n" + big_body +
              "GET /b HTTP/1.1\r\n\r\n");
  HttpRequest request;
  auto got = reader.Next(&request);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(*got);
  got = reader.Next(&request);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(*got);
  EXPECT_EQ(request.path, "/b");
}

TEST(HttpReaderTest, KeepAliveSemantics) {
  HttpReader reader;
  reader.Feed("GET /a HTTP/1.1\r\n\r\n");
  HttpRequest http11;
  ASSERT_TRUE(*reader.Next(&http11));
  EXPECT_FALSE(RequestWantsClose(http11));

  reader.Feed("GET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
  HttpRequest explicit_close;
  ASSERT_TRUE(*reader.Next(&explicit_close));
  EXPECT_TRUE(RequestWantsClose(explicit_close));

  reader.Feed("GET /c HTTP/1.0\r\n\r\n");
  HttpRequest http10;
  ASSERT_TRUE(*reader.Next(&http10));
  EXPECT_FALSE(http10.http11);
  EXPECT_TRUE(RequestWantsClose(http10));
}

TEST(HttpTest, ChunkedResponseFormatting) {
  HttpResponse resp;
  resp.status = 200;
  std::string wire = FormatHttpResponseHead(resp, /*chunked=*/true, 0);
  EXPECT_NE(wire.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);
  AppendHttpChunk("hello ", &wire);
  AppendHttpChunk("", &wire);  // must not emit a stream terminator
  AppendHttpChunk("world", &wire);
  AppendHttpLastChunk(&wire);
  const size_t head_end = wire.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  EXPECT_EQ(wire.substr(head_end + 4),
            "6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n");
}

// ------------------------------------------------------- wire: binary

Value MakeFixtureBag() {
  AtomTable& table = GlobalAtomTable();
  const AtomId a = table.Intern("bin_a");
  const AtomId b = table.Intern("bin_b");
  // {{[bin_a, {{bin_b: 2^100}}]: 3, [bin_b, {{}}]: 1}} — nesting, tuples,
  // an inner bag, and a multiplicity past 2^64 in one fixture.
  Bag::Builder inner_builder(Type::Atom());
  inner_builder.Add(Value::Atom(b), BigNat::TwoPow(100));
  const Value inner = Value::FromBag(*std::move(inner_builder).Build());
  Bag::Builder empty_builder(Type::Atom());
  const Value empty = Value::FromBag(*std::move(empty_builder).Build());
  Bag::Builder outer(Type::Tuple({Type::Atom(), Type::Bag(Type::Atom())}));
  outer.Add(Value::Tuple({Value::Atom(a), inner}), 3);
  outer.Add(Value::Tuple({Value::Atom(b), empty}), 1);
  return Value::FromBag(*std::move(outer).Build());
}

TEST(WireBinaryTest, RoundTripsToBitIdenticalWireJson) {
  const Value original = MakeFixtureBag();
  const std::string binary = ValueToWireBinary(original);
  auto decoded = WireBinaryToValue(binary);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  // Parity oracle: both paths must render the identical canonical wire
  // JSON — same entries, same order, same exact multiplicity digits.
  EXPECT_EQ(ValueToWireJson(*decoded), ValueToWireJson(original));
  // And the JSON path itself round-trips to the same value.
  auto via_json = WireJsonToValue(ValueToWireJson(original));
  ASSERT_TRUE(via_json.ok()) << via_json.status();
  EXPECT_EQ(ValueToWireBinary(*via_json), binary);
}

TEST(WireBinaryTest, HugeMultiplicitySurvivesExactly) {
  const Value fixture = MakeFixtureBag();
  auto decoded = WireBinaryToValue(ValueToWireBinary(fixture));
  ASSERT_TRUE(decoded.ok());
  const std::string json = ValueToWireJson(*decoded);
  EXPECT_NE(json.find("\"1267650600228229401496703205376\""),
            std::string::npos)
      << json;
}

TEST(WireBinaryTest, UntypedEmptyBagRoundTrips) {
  Bag::Builder builder;  // no element type: Bottom, rendered "_"
  const Value empty = Value::FromBag(*std::move(builder).Build());
  auto decoded = WireBinaryToValue(ValueToWireBinary(empty));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(decoded->IsBag());
  EXPECT_TRUE(decoded->bag().entries().empty());
  EXPECT_EQ(ValueToWireJson(*decoded), ValueToWireJson(empty));
}

TEST(WireBinaryTest, DecodeIsDefensive) {
  const std::string binary = ValueToWireBinary(MakeFixtureBag());
  // Every proper prefix must fail cleanly — never crash, never accept.
  for (size_t len = 0; len < binary.size(); ++len) {
    auto truncated = WireBinaryToValue(binary.substr(0, len));
    EXPECT_FALSE(truncated.ok()) << "accepted prefix of " << len;
  }
  // Trailing garbage is rejected: the whole input must be consumed.
  EXPECT_FALSE(WireBinaryToValue(binary + "x").ok());
  // Unknown tag.
  EXPECT_FALSE(WireBinaryToValue(std::string("\x7f", 1)).ok());
  // A nesting bomb past kMaxWireDepth: tuples of arity 1 all the way down.
  std::string bomb;
  for (int i = 0; i < kMaxWireDepth + 4; ++i) {
    bomb += '\x02';
    bomb += std::string("\x01\x00\x00\x00", 4);  // arity 1, LE
  }
  bomb += '\x01';
  bomb += std::string("\x00\x00\x00\x00", 4);  // atom with empty name
  auto deep = WireBinaryToValue(bomb);
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.status().code(), StatusCode::kParseError);
}

TEST(WireBinaryTest, StatementEnvelopesRoundTrip) {
  WireStatementRequest request;
  request.session = "env";
  request.statement = "eval uplus(X, X)";
  request.timeout_ms = 250;
  request.memlimit_bytes = 1 << 20;
  auto request_back = DecodeStatementRequest(EncodeStatementRequest(request));
  ASSERT_TRUE(request_back.ok()) << request_back.status();
  EXPECT_EQ(request_back->session, "env");
  EXPECT_EQ(request_back->statement, "eval uplus(X, X)");
  EXPECT_EQ(request_back->timeout_ms, 250u);
  EXPECT_EQ(request_back->memlimit_bytes, 1u << 20);

  WireStatementResponse response;
  response.ok = true;
  response.outcome = "ok";
  response.output = "{{bin_a: 3}}";
  response.wall_us = 1234;
  response.has_result = true;
  response.result = MakeFixtureBag();
  auto response_back =
      DecodeStatementResponse(EncodeStatementResponse(response));
  ASSERT_TRUE(response_back.ok()) << response_back.status();
  EXPECT_TRUE(response_back->ok);
  EXPECT_EQ(response_back->outcome, "ok");
  EXPECT_EQ(response_back->wall_us, 1234u);
  ASSERT_TRUE(response_back->has_result);
  EXPECT_EQ(ValueToWireJson(response_back->result),
            ValueToWireJson(response.result));

  WireStatementResponse error;
  error.ok = false;
  error.outcome = "deadline";
  error.error_code = "DeadlineExceeded";
  error.error_message = "governor: wall deadline";
  error.retryable = true;
  error.flight = "{\"spans\":[]}";
  auto error_back = DecodeStatementResponse(EncodeStatementResponse(error));
  ASSERT_TRUE(error_back.ok()) << error_back.status();
  EXPECT_FALSE(error_back->ok);
  EXPECT_EQ(error_back->error_code, "DeadlineExceeded");
  EXPECT_TRUE(error_back->retryable);
  EXPECT_EQ(error_back->flight, "{\"spans\":[]}");
}

TEST(WireBinaryTest, BinaryFramesRoundTrip) {
  const std::string payload = ValueToWireBinary(MakeFixtureBag());
  const std::string frame = EncodeFrame(WireFormat::kBinary, payload);
  size_t consumed = 0;
  auto decoded = DecodeFrame(frame, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->format, WireFormat::kBinary);
  EXPECT_EQ(decoded->payload, payload);
  // A frame cut mid-payload is retryable (read more), not poison.
  auto short_frame = DecodeFrame(frame.substr(0, frame.size() - 1), &consumed);
  ASSERT_FALSE(short_frame.ok());
  EXPECT_EQ(short_frame.status().code(), StatusCode::kUnavailable);
}

TEST(WireStreamerTest, ProducesExactlyTheMaterializedJson) {
  const Value fixture = MakeFixtureBag();
  const std::string expected =
      "{\"result\":" + ValueToWireJson(fixture) + ",\"ok\":true}";
  // Any budget must yield identical bytes — only the slicing differs.
  for (const size_t budget : {size_t{1}, size_t{7}, size_t{64}, size_t{1 << 20}}) {
    WireJsonStreamer streamer("{\"result\":", fixture, ",\"ok\":true}");
    std::string produced;
    size_t slices = 0;
    while (streamer.Produce(budget, &produced)) {
      ASSERT_LT(++slices, size_t{100000});
    }
    EXPECT_TRUE(streamer.done());
    EXPECT_EQ(produced, expected) << "budget=" << budget;
  }
}

// --------------------------------------------- server: event-loop paths

// A persistent-connection client: sends requests on one socket and parses
// Content-Length and chunked responses incrementally, like a real
// keep-alive peer.
class KeepAliveClient {
 public:
  explicit KeepAliveClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (fd_ >= 0 && ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                              sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~KeepAliveClient() { Close(); }

  bool connected() const { return fd_ >= 0; }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  void HalfClose() { ::shutdown(fd_, SHUT_WR); }

  static std::string Request(const std::string& method,
                             const std::string& path, const std::string& body,
                             const std::string& content_type =
                                 "application/json") {
    return method + " " + path + " HTTP/1.1\r\nHost: t\r\nContent-Type: " +
           content_type + "\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
  }

  bool Send(const std::string& bytes) { return WriteAll(fd_, bytes).ok(); }

  // Reads one full response (dechunking if needed). False on EOF or error.
  bool ReadResponse(ClientResponse* out) {
    size_t head_end;
    while ((head_end = buf_.find("\r\n\r\n")) == std::string::npos) {
      if (!ReadMore()) return false;
    }
    const std::string head = buf_.substr(0, head_end + 4);
    out->status = std::atoi(head.c_str() + 9);
    std::string lower = head;
    for (char& ch : lower) {
      ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    }
    const size_t body_start = head_end + 4;
    if (lower.find("transfer-encoding: chunked") != std::string::npos) {
      std::string body;
      size_t pos = body_start;
      while (true) {
        size_t line_end;
        while ((line_end = buf_.find("\r\n", pos)) == std::string::npos) {
          if (!ReadMore()) return false;
        }
        const size_t len = std::strtoul(buf_.c_str() + pos, nullptr, 16);
        pos = line_end + 2;
        while (buf_.size() < pos + len + 2) {
          if (!ReadMore()) return false;
        }
        if (len == 0) break;
        body.append(buf_, pos, len);
        pos += len + 2;
      }
      out->body = std::move(body);
      out->raw = buf_.substr(0, pos + 2);
      buf_.erase(0, pos + 2);
      return true;
    }
    size_t len = 0;
    const size_t cl = lower.find("content-length:");
    if (cl != std::string::npos) {
      len = std::strtoul(lower.c_str() + cl + 15, nullptr, 10);
    }
    while (buf_.size() < body_start + len) {
      if (!ReadMore()) return false;
    }
    out->body = buf_.substr(body_start, len);
    out->raw = buf_.substr(0, body_start + len);
    buf_.erase(0, body_start + len);
    return true;
  }

 private:
  bool ReadMore() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buf_;
};

TEST(ServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  KeepAliveClient client((*server)->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send(KeepAliveClient::Request(
      "POST", "/v1/statement",
      R"js({"session":"ka","statement":"let X = {{a, a, b}}"})js")));
  ClientResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 200) << r.raw;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.Send(KeepAliveClient::Request(
        "POST", "/v1/statement",
        R"js({"session":"ka","statement":"count X"})js")));
    ASSERT_TRUE(client.ReadResponse(&r)) << "request " << i;
    EXPECT_EQ(r.status, 200) << r.raw;
    EXPECT_NE(r.body.find("\"outcome\":\"ok\""), std::string::npos);
  }
  client.Close();

  (*server)->RequestShutdown();
  (*server)->Wait();
  const ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.keepalive_reuses, 4u);
}

TEST(ServerTest, PipelinedRequestsAnswerInOrder) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  KeepAliveClient client((*server)->port());
  ASSERT_TRUE(client.connected());

  // Three requests in one write: the server must answer all three, in
  // order, on the one connection — statement, statement, inline GET.
  std::string burst;
  burst += KeepAliveClient::Request(
      "POST", "/v1/statement",
      R"js({"session":"pipe","statement":"let X = {{a, a, b}}"})js");
  burst += KeepAliveClient::Request(
      "POST", "/v1/statement",
      R"js({"session":"pipe","statement":"eval uplus(X, X)"})js");
  burst += KeepAliveClient::Request("GET", "/healthz", "");
  ASSERT_TRUE(client.Send(burst));

  ClientResponse first, second, third;
  ASSERT_TRUE(client.ReadResponse(&first));
  ASSERT_TRUE(client.ReadResponse(&second));
  ASSERT_TRUE(client.ReadResponse(&third));
  EXPECT_EQ(first.status, 200) << first.raw;
  EXPECT_NE(first.body.find("\"session\":\"pipe\""), std::string::npos);
  EXPECT_EQ(second.status, 200) << second.raw;
  EXPECT_NE(second.body.find("\"n\":\"4\""), std::string::npos);
  EXPECT_EQ(third.status, 200) << third.raw;
  EXPECT_NE(third.body.find("\"status\":\"serving\""), std::string::npos);
  client.Close();

  (*server)->RequestShutdown();
  (*server)->Wait();
  const ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_GE(stats.pipelined, 1u);
}

TEST(ServerTest, HalfClosedClientStillGetsItsResponse) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  KeepAliveClient client((*server)->port());
  ASSERT_TRUE(client.connected());

  // shutdown(SHUT_WR) right after the request: the server sees EOF while
  // the statement executes, and must still deliver the response.
  ASSERT_TRUE(client.Send(KeepAliveClient::Request(
      "POST", "/v1/statement",
      R"js({"session":"half","statement":"count '{{a, b}}"})js")));
  client.HalfClose();
  ClientResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 200) << r.raw;
  EXPECT_NE(r.body.find("\"outcome\":\"ok\""), std::string::npos);

  (*server)->RequestShutdown();
  (*server)->Wait();
  EXPECT_EQ((*server)->stats().io_errors, 0u);
}

TEST(ServerTest, Bag1BinaryStatementsSkipJsonBothWays) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  KeepAliveClient client((*server)->port());
  ASSERT_TRUE(client.connected());

  auto post_bag1 = [&](const std::string& statement,
                       WireStatementResponse* out) {
    WireStatementRequest request;
    request.session = "bin";
    request.statement = statement;
    const std::string body =
        EncodeFrame(WireFormat::kBinary, EncodeStatementRequest(request));
    ASSERT_TRUE(client.Send(KeepAliveClient::Request(
        "POST", "/v1/statement", body, "application/x-bag1")));
    ClientResponse r;
    ASSERT_TRUE(client.ReadResponse(&r));
    EXPECT_EQ(r.status, 200) << r.raw;
    EXPECT_NE(r.raw.find("application/x-bag1"), std::string::npos);
    size_t consumed = 0;
    auto frame = DecodeFrame(r.body, &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status();
    EXPECT_EQ(frame->format, WireFormat::kBinary);
    EXPECT_EQ(consumed, r.body.size());
    auto decoded = DecodeStatementResponse(frame->payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    *out = std::move(*decoded);
  };

  WireStatementResponse let;
  // 2^64 as a literal multiplicity: the binary path must carry the exact
  // BigNat through uplus, where JSON doubles would have rounded.
  post_bag1("let X = {{a*18446744073709551616}}", &let);
  EXPECT_TRUE(let.ok);
  EXPECT_EQ(let.outcome, "ok");

  WireStatementResponse eval;
  post_bag1("eval uplus(X, X)", &eval);
  EXPECT_TRUE(eval.ok);
  ASSERT_TRUE(eval.has_result);
  ASSERT_TRUE(eval.result.IsBag());
  ASSERT_EQ(eval.result.bag().entries().size(), 1u);
  EXPECT_EQ(eval.result.bag().entries()[0].count.ToString(),
            "36893488147419103232");  // 2^65, exact

  // A truncated frame is a typed 400, and the connection survives it.
  WireStatementRequest request;
  request.session = "bin";
  request.statement = "count X";
  const std::string full =
      EncodeFrame(WireFormat::kBinary, EncodeStatementRequest(request));
  const std::string cut = full.substr(0, full.size() - 2);
  ASSERT_TRUE(client.Send(KeepAliveClient::Request(
      "POST", "/v1/statement", cut, "application/x-bag1")));
  ClientResponse bad;
  ASSERT_TRUE(client.ReadResponse(&bad));
  EXPECT_EQ(bad.status, 400) << bad.raw;
  size_t consumed = 0;
  auto bad_frame = DecodeFrame(bad.body, &consumed);
  ASSERT_TRUE(bad_frame.ok()) << bad_frame.status();
  auto bad_resp = DecodeStatementResponse(bad_frame->payload);
  ASSERT_TRUE(bad_resp.ok()) << bad_resp.status();
  EXPECT_FALSE(bad_resp->ok);

  WireStatementResponse after;
  post_bag1("count X", &after);
  EXPECT_TRUE(after.ok);
  client.Close();

  (*server)->RequestShutdown();
  (*server)->Wait();
  const ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.bag1_requests, 4u);
  EXPECT_EQ(stats.ok, 3u);
  EXPECT_EQ(stats.errors, 1u);
}

TEST(ServerTest, LargeResultsStreamChunked) {
  ServerOptions options;
  options.stream_entries_threshold = 4;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  KeepAliveClient client((*server)->port());
  ASSERT_TRUE(client.connected());

  // pow({{a,b,c}}) has 8 distinct subbags — over the threshold of 4, so
  // the response must arrive chunked and still be byte-perfect JSON.
  ASSERT_TRUE(client.Send(KeepAliveClient::Request(
      "POST", "/v1/statement",
      R"js({"session":"big","statement":"eval pow('{{a, b, c}})"})js")));
  ClientResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 200) << r.raw;
  EXPECT_NE(r.raw.find("Transfer-Encoding: chunked"), std::string::npos);
  auto doc = ParseJson(r.body);
  ASSERT_TRUE(doc.ok()) << doc.status() << "\n" << r.body;
  const JsonValue* result = doc->Find("result");
  ASSERT_NE(result, nullptr);
  auto value = WireJsonToValue(*result);
  ASSERT_TRUE(value.ok()) << value.status();
  ASSERT_TRUE(value->IsBag());
  EXPECT_EQ(value->bag().entries().size(), 8u);

  // The connection re-arms after a chunked response: keep-alive holds.
  ASSERT_TRUE(client.Send(KeepAliveClient::Request("GET", "/healthz", "")));
  ClientResponse next;
  ASSERT_TRUE(client.ReadResponse(&next));
  EXPECT_EQ(next.status, 200);
  client.Close();

  (*server)->RequestShutdown();
  (*server)->Wait();
  EXPECT_EQ((*server)->stats().streamed_responses, 1u);
}

TEST(ServerTest, EpollMetricsAreExposed) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  PostStatement(port, R"js({"session":"m","statement":"count '{{a}}"})js");
  auto metrics = Fetch(port, "GET", "/metrics", "");
  EXPECT_EQ(metrics.status, 200);
  for (const char* name :
       {"bagalg_server_epoll_fds", "bagalg_server_epoll_ready_depth",
        "bagalg_server_epoll_loop_iter_us", "bagalg_server_conn_state_reading",
        "bagalg_server_conn_state_executing",
        "bagalg_server_conn_state_writing",
        "bagalg_server_http_keepalive_reuses_total",
        "bagalg_server_http_pipelined_total",
        "bagalg_server_wire_bag1_requests_total"}) {
    EXPECT_NE(metrics.body.find(name), std::string::npos) << name;
  }
  // The loop registers at least the listener + wakeup fd.
  EXPECT_GE((*server)->stats().epoll_fds, 2u);

  (*server)->RequestShutdown();
  (*server)->Wait();
}

TEST(ServerTest, SurvivesInjectedIoFaults) {
  ServerOptions options;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  fault::FaultSpec spec;
  spec.point = fault::FaultPoint::kIo;
  spec.probability = 0.05;
  spec.seed = 1234;
  fault::Configure(spec);
  int ok = 0, torn = 0;
  for (int i = 0; i < 40; ++i) {
    auto r = PostStatement(
        port, R"js({"session":"chaos","statement":"count '{{a, b}}"})js");
    // Either the statement answered, or injected io tore the connection —
    // nothing in between, and never a hang or crash.
    if (r.status == 200) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, 0) << r.raw;
      ++torn;
    }
  }
  fault::Disarm();

  // The server is intact after the storm.
  auto after = PostStatement(
      port, R"js({"session":"chaos","statement":"count '{{a, b}}"})js");
  EXPECT_EQ(after.status, 200) << after.raw;
  EXPECT_GT(ok, 0);

  (*server)->RequestShutdown();
  (*server)->Wait();
}

TEST(ServerTest, ConcurrentKeepAliveSessions) {
  ServerOptions options;
  options.executors = 4;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();

  constexpr int kClients = 16;
  constexpr int kPerClient = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0}, unexpected{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      KeepAliveClient client(port);
      if (!client.connected()) {
        unexpected.fetch_add(kPerClient);
        return;
      }
      const std::string session = "kas" + std::to_string(t);
      for (int i = 0; i < kPerClient; ++i) {
        if (!client.Send(KeepAliveClient::Request(
                "POST", "/v1/statement",
                "{\"session\":\"" + session +
                    "\",\"statement\":\"count pow('{{a,b,c}})\"}"))) {
          unexpected.fetch_add(1);
          continue;
        }
        ClientResponse r;
        if (client.ReadResponse(&r) && r.status == 200) {
          ok.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_EQ(ok.load(), kClients * kPerClient);

  (*server)->RequestShutdown();
  (*server)->Wait();
  const ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.requests,
            static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.keepalive_reuses,
            static_cast<uint64_t>(kClients * (kPerClient - 1)));
}

}  // namespace
}  // namespace bagalg::net
