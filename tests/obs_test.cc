// Tests for the bagalg::obs subsystem: span nesting and the disabled
// no-op path, metrics snapshot/merge, exporter output shape (validated
// with a small JSON syntax checker), the evaluator/exec wiring, and the
// new REPL observability commands.

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/algebra/explain.h"
#include "src/exec/compile.h"
#include "src/lang/script.h"
#include "src/obs/json.h"

namespace bagalg {
namespace {

// ----------------------------------------------------- minimal JSON check

/// A tiny recursive-descent JSON validator — enough to assert the
/// exporters emit syntactically well-formed documents (balanced
/// structure, quoted keys, no trailing commas).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson(R"({"a":[1,2.5,"x\"y"],"b":{},"c":null})"));
  EXPECT_FALSE(IsValidJson(R"({"a":1,})"));
  EXPECT_FALSE(IsValidJson(R"({"a")"));
  EXPECT_FALSE(IsValidJson("{'a':1}"));
}

TEST(JsonTest, EscapesControlCharacters) {
  EXPECT_EQ(obs::JsonQuote("a\"b\\c\n\t"), "\"a\\\"b\\\\c\\n\\t\"");
  std::string out;
  obs::AppendJsonEscaped(&out, std::string_view("\x01", 1));
  EXPECT_EQ(out, "\\u0001");
}

// ----------------------------------------------------------------- spans

TEST(TracerTest, RecordsNestedSpans) {
  obs::Tracer tracer;
  {
    obs::Span outer = tracer.StartSpan("outer", "test");
    outer.AddAttr("size", uint64_t{42});
    {
      obs::Span inner = tracer.StartSpan("inner", "test");
      inner.AddAttr("note", std::string_view("child"));
    }
  }
  auto events = tracer.TakeEvents();
  ASSERT_EQ(events.size(), 2u);
  // Spans record on End, so the inner span lands first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].depth, 0u);
  // Child interval contained in the parent's.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].wall_ns,
            events[1].start_ns + events[1].wall_ns);
  ASSERT_EQ(events[1].attrs.size(), 1u);
  EXPECT_EQ(events[1].attrs[0].first, "size");
}

TEST(TracerTest, DisabledTracerIsNoOp) {
  obs::Tracer tracer(/*enabled=*/false);
  obs::Span span = tracer.StartSpan("ignored");
  EXPECT_FALSE(span.active());
  span.AddAttr("x", uint64_t{1});
  span.End();
  EXPECT_EQ(tracer.event_count(), 0u);

  obs::Span defaulted;  // never attached to any tracer
  defaulted.AddAttr("y", int64_t{-1});
  defaulted.End();
}

TEST(TracerTest, MoveTransfersOwnership) {
  obs::Tracer tracer;
  {
    obs::Span a = tracer.StartSpan("moved");
    obs::Span b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(tracer.event_count(), 1u);  // recorded exactly once
}

TEST(TracerTest, MaxEventsCapDrops) {
  obs::Tracer tracer;
  tracer.set_max_events(2);
  for (int i = 0; i < 5; ++i) tracer.StartSpan("s");
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped_count(), 3u);
  tracer.Clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped_count(), 0u);
}

TEST(TracerTest, ChromeExportIsValidJson) {
  obs::Tracer tracer;
  {
    obs::Span s = tracer.StartSpan("parent", "eval");
    s.AddAttr("distinct", uint64_t{7});
    s.AddAttr("selectivity", 0.25);
    s.AddAttr("label", std::string_view("needs \"escaping\"\n"));
    obs::Span child = tracer.StartSpan("child", "exec");
  }
  std::ostringstream os;
  obs::WriteChromeTrace(tracer.SnapshotEvents(), os);
  std::string json = os.str();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parent\""), std::string::npos);
  EXPECT_NE(json.find("\"distinct\":7"), std::string::npos);
}

// --------------------------------------------------------------- metrics

TEST(MetricsTest, CountersGaugesHistograms) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("queries");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(registry.GetCounter("queries"), c);  // stable pointer
  registry.GetGauge("bytes")->Set(-12);
  obs::Histogram* h = registry.GetHistogram("rows");
  h->Observe(0);
  h->Observe(3);
  h->Observe(100);

  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("queries"), 5u);
  EXPECT_EQ(snap.gauges.at("bytes"), -12);
  const obs::HistogramSnapshot& hs = snap.histograms.at("rows");
  EXPECT_EQ(hs.count, 3u);
  EXPECT_EQ(hs.sum, 103u);
  EXPECT_EQ(hs.max, 100u);
  ASSERT_FALSE(hs.buckets.empty());
  EXPECT_EQ(hs.buckets[0], 1u);  // the zero observation
}

TEST(MetricsTest, SnapshotMergeAdds) {
  obs::MetricsRegistry a, b;
  a.GetCounter("x")->Increment(2);
  b.GetCounter("x")->Increment(3);
  b.GetCounter("y")->Increment(1);
  a.GetHistogram("h")->Observe(8);
  b.GetHistogram("h")->Observe(1024);

  obs::MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("x"), 5u);
  EXPECT_EQ(merged.counters.at("y"), 1u);
  EXPECT_EQ(merged.histograms.at("h").count, 2u);
  EXPECT_EQ(merged.histograms.at("h").sum, 1032u);
  EXPECT_EQ(merged.histograms.at("h").max, 1024u);
}

TEST(MetricsTest, JsonExportShape) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.b")->Increment();
  registry.GetGauge("g")->Set(7);
  registry.GetHistogram("h")->Observe(5);
  std::string json = registry.Snapshot().ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.b\":1"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsTest, ResetZeroes) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c")->Increment(9);
  registry.GetHistogram("h")->Observe(9);
  registry.Reset();
  EXPECT_EQ(registry.Snapshot().counters.at("c"), 0u);
  EXPECT_EQ(registry.Snapshot().histograms.at("h").count, 0u);
}

// ------------------------------------------------------------- EvalStats

TEST(EvalStatsTest, ResetAndMerge) {
  EvalStats a;
  a.steps = 10;
  a.op_counts[static_cast<size_t>(ExprKind::kMap)] = 4;
  a.max_distinct = 100;
  a.fixpoint_iterations = 2;
  EvalStats b;
  b.steps = 5;
  b.op_counts[static_cast<size_t>(ExprKind::kMap)] = 1;
  b.max_distinct = 7;
  b.max_mult_bits = 99;
  a.Merge(b);
  EXPECT_EQ(a.steps, 15u);
  EXPECT_EQ(a.CountOf(ExprKind::kMap), 5u);
  EXPECT_EQ(a.max_distinct, 100u);
  EXPECT_EQ(a.max_mult_bits, 99u);
  EXPECT_EQ(a.fixpoint_iterations, 2u);
  a.Reset();
  EXPECT_EQ(a.steps, 0u);
  EXPECT_EQ(a.CountOf(ExprKind::kMap), 0u);
}

// --------------------------------------------------- evaluator integration

Database JoinDb() {
  Bag r = MakeBag({{MakeTuple({MakeAtom("a"), MakeAtom("b")}), 2},
                   {MakeTuple({MakeAtom("b"), MakeAtom("c")}), 1}});
  Database db;
  EXPECT_TRUE(db.Put("R", r).ok());
  EXPECT_TRUE(db.Put("S", r).ok());
  return db;
}

Expr JoinQuery() {
  // π_{1,4}(σ_{2=3}(R × S)) — a join + selection.
  return ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 3),
                             Product(Input("R"), Input("S"))),
                      {1, 4});
}

TEST(EvalTracingTest, EmitsNestedEvaluatorSpans) {
  obs::Tracer tracer;
  Evaluator eval;
  eval.set_tracer(&tracer);
  Database db = JoinDb();
  auto r = eval.EvalToBag(JoinQuery(), db);
  ASSERT_TRUE(r.ok()) << r.status();
  auto events = tracer.SnapshotEvents();
  ASSERT_FALSE(events.empty());
  bool saw_input = false, saw_select = false, saw_nested = false;
  std::set<uint64_t> ids;
  for (const auto& e : events) {
    // Kernel-layer spans ride along in the same trace now that KernelScope
    // picks up the ambient tracer; everything else here is evaluator spans.
    EXPECT_TRUE(e.category == "eval" || e.category == "kernel")
        << e.category;
    ids.insert(e.id);
    if (e.name == "input") saw_input = true;
    if (e.name == "sel") saw_select = true;
    if (e.depth > 0) saw_nested = true;
  }
  EXPECT_TRUE(saw_input);
  EXPECT_TRUE(saw_select);
  EXPECT_TRUE(saw_nested);
  // Kernel spans triggered by the evaluation are children of recorded eval
  // (or kernel) spans, never orphaned roots.
  for (const auto& e : events) {
    if (e.category != "kernel") continue;
    EXPECT_NE(e.parent_id, 0u) << e.name;
    EXPECT_TRUE(ids.count(e.parent_id) == 1) << e.name;
  }
}

TEST(EvalTracingTest, FixpointIterationsBecomeChildSpans) {
  obs::Tracer tracer;
  Evaluator eval;
  eval.set_tracer(&tracer);
  Bag edges = MakeBagOf({MakeTuple({MakeAtom("x"), MakeAtom("y")}),
                         MakeTuple({MakeAtom("y"), MakeAtom("z")})});
  Database db;
  ASSERT_TRUE(db.Put("G", edges).ok());
  Expr tc = TransitiveClosure(Input("G"));
  auto r = eval.EvalToBag(tc, db);
  ASSERT_TRUE(r.ok()) << r.status();
  size_t iteration_spans = 0;
  for (const auto& e : tracer.SnapshotEvents()) {
    if (e.name == "ifp.iteration") ++iteration_spans;
  }
  EXPECT_EQ(iteration_spans, eval.stats().fixpoint_iterations);
}

TEST(EvalTracingTest, NullTracerKeepsEvaluatorClean) {
  Evaluator eval;
  Database db = JoinDb();
  auto r = eval.EvalToBag(JoinQuery(), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(eval.tracer(), nullptr);
  EXPECT_TRUE(eval.node_profiles().empty());
}

// ------------------------------------------------------- explain analyze

TEST(ExplainAnalyzeTest, AnnotatesJoinSelectionPlan) {
  Evaluator eval;
  Database db = JoinDb();
  auto plan = ExplainAnalyzeExpr(JoinQuery(), db, eval);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("calls="), std::string::npos) << *plan;
  EXPECT_NE(plan->find("time="), std::string::npos) << *plan;
  EXPECT_NE(plan->find("rows="), std::string::npos) << *plan;
  EXPECT_NE(plan->find("result:"), std::string::npos) << *plan;
  // The σ body runs once per product row: 4 product rows here, plus lhs
  // calls counted per row. The product node itself is applied once.
  EXPECT_NE(plan->find("prod : "), std::string::npos) << *plan;
  // Profiling is restored off afterwards.
  EXPECT_FALSE(eval.node_profiling());
  EXPECT_FALSE(eval.node_profiles().empty());
}

TEST(ExplainAnalyzeTest, PropagatesEvalErrors) {
  Evaluator eval;
  Database db;  // "R"/"S" missing
  auto plan = ExplainAnalyzeExpr(JoinQuery(), db, eval);
  EXPECT_FALSE(plan.ok());
}

// ------------------------------------------------------ exec integration

TEST(ExecTracingTest, OperatorLifecyclesBecomeSpans) {
  obs::Tracer tracer;
  Database db = JoinDb();
  exec::ExecOptions options;
  options.tracer = &tracer;
  // This test is about the Volcano operator tracing decorator; the IR
  // engine's spans are covered in ir_test.cc.
  options.engine = exec::Engine::kVolcano;
  auto r = exec::RunPipeline(JoinQuery(), db, options);
  ASSERT_TRUE(r.ok()) << r.status();
  bool saw_scan = false, saw_product = false, saw_pipeline = false;
  uint64_t scan_rows = 0;
  for (const auto& e : tracer.SnapshotEvents()) {
    if (e.name == "exec.scan") {
      saw_scan = true;
      for (const auto& [k, v] : e.attrs) {
        if (k == "rows") scan_rows = std::get<uint64_t>(v);
      }
    }
    if (e.name == "exec.nested-loop-product") saw_product = true;
    if (e.name == "exec.pipeline") saw_pipeline = true;
  }
  EXPECT_TRUE(saw_scan);
  EXPECT_TRUE(saw_product);
  EXPECT_TRUE(saw_pipeline);
  EXPECT_EQ(scan_rows, 2u);  // R has two distinct rows
}

TEST(ExecTracingTest, DisabledTracerAddsNoWrappers) {
  Database db = JoinDb();
  obs::Tracer off(/*enabled=*/false);
  exec::ExecOptions options;
  options.tracer = &off;
  auto with = exec::RunPipeline(JoinQuery(), db, options);
  auto without = exec::RunPipeline(JoinQuery(), db);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(*with, *without);
  EXPECT_EQ(off.event_count(), 0u);
}

// ----------------------------------------------------------- REPL wiring

TEST(ScriptObsTest, ExplainAnalyzeCommand) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("let R = {{[a, b]*2, [b, c]}}").ok());
  ASSERT_TRUE(runner.RunLine("let S = {{[a, b], [b, c]}}").ok());
  auto r = runner.RunLine(
      "explain analyze map(p -> tup(proj(1, p), proj(4, p)), "
      "sel(p -> proj(2, p) == proj(3, p), prod(R, S)))");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("calls="), std::string::npos) << *r;
  EXPECT_NE(r->find("time="), std::string::npos) << *r;
  EXPECT_NE(r->find("rows="), std::string::npos) << *r;
}

TEST(ScriptObsTest, TimingToggle) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("timing on").ok());
  auto r = runner.RunLine("eval uplus('{{a}}, '{{a}})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("time="), std::string::npos) << *r;
  EXPECT_NE(r->find("steps="), std::string::npos) << *r;
  ASSERT_TRUE(runner.RunLine("timing off").ok());
  auto quiet = runner.RunLine("eval uplus('{{a}}, '{{a}})");
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet->find("steps="), std::string::npos) << *quiet;
  EXPECT_FALSE(runner.RunLine("timing maybe").ok());
}

TEST(ScriptObsTest, TraceCommandWritesValidChromeTrace) {
  std::string path = testing::TempDir() + "/bagalg_script_trace.json";
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("let R = {{[a, b]*2, [b, c]}}").ok());
  auto on = runner.RunLine("\\trace " + path);
  ASSERT_TRUE(on.ok()) << on.status();
  ASSERT_TRUE(
      runner.RunLine("eval sel(p -> proj(1, p) == proj(1, p), R)").ok());
  auto off = runner.RunLine("\\trace off");
  ASSERT_TRUE(off.ok()) << off.status();

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::string json = buffer.str();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"sel\""), std::string::npos) << json;
}

TEST(ScriptObsTest, ExecCommandRunsPipelineAndTraces) {
  std::string path = testing::TempDir() + "/bagalg_exec_trace.json";
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("let R = {{[a, b]*2, [b, c]}}").ok());
  auto direct = runner.RunLine("eval sel(p -> proj(1, p) == 'a, R)");
  ASSERT_TRUE(runner.RunLine("\\trace " + path).ok());
  auto piped = runner.RunLine("exec sel(p -> proj(1, p) == 'a, R)");
  ASSERT_TRUE(piped.ok()) << piped.status();
  EXPECT_EQ(*piped, *direct);  // both engines agree
  bool saw_exec_span = false;
  for (const auto& e : runner.tracer().SnapshotEvents()) {
    if (e.category == "exec") saw_exec_span = true;
  }
  EXPECT_TRUE(saw_exec_span);
}

TEST(ScriptObsTest, MetricsCommandPrintsRegistry) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("eval '{{a}}").ok());
  auto r = runner.RunLine("\\metrics");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("repl.statements"), std::string::npos) << *r;
}

}  // namespace
}  // namespace bagalg
