// Tests for the Volcano-style BALG¹ pipeline engine: per-operator
// behaviour, fragment gating, and — the load-bearing property — exact
// agreement with the tree-walking evaluator on randomly generated BALG¹
// queries.

#include "src/exec/compile.h"

#include <gtest/gtest.h>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/exec/operators.h"
#include "src/stats/expr_gen.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

namespace bagalg {
namespace {

using exec::Collect;
using exec::CompilePipeline;
using exec::EvalRowLambda;
using exec::MakeScan;
using exec::RunPipeline;

Value A(const char* name) { return MakeAtom(name); }

Database Db(std::initializer_list<std::pair<std::string, Bag>> items) {
  Database db;
  for (const auto& [name, bag] : items) {
    Status st = db.Put(name, bag);
    EXPECT_TRUE(st.ok()) << st;
  }
  return db;
}

TEST(ExecTest, ScanStreamsCanonicalEntries) {
  Bag b = MakeBag({{MakeTuple({A("x")}), 3}, {MakeTuple({A("y")}), 1}});
  auto scan = MakeScan(b);
  auto out = Collect(scan.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, b);
  // Re-open works.
  auto again = Collect(scan.get());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, b);
}

TEST(ExecTest, RowLambdaEvaluation) {
  Value row = MakeTuple({A("p"), A("q")});
  auto swapped =
      EvalRowLambda(Tup({Proj(Var(0), 2), Proj(Var(0), 1)}), row);
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(*swapped, MakeTuple({A("q"), A("p")}));
  EXPECT_FALSE(EvalRowLambda(Var(1), row).ok());
  EXPECT_FALSE(EvalRowLambda(Eps(Var(0)), row).ok());
  EXPECT_FALSE(EvalRowLambda(Proj(Var(0), 9), row).ok());
}

TEST(ExecTest, JoinPipelineMatchesSection4Table) {
  const uint64_t n = 4, m = 3;
  Bag b = MakeBag({{MakeTuple({A("a"), A("b")}), n},
                   {MakeTuple({A("b"), A("a")}), m}});
  Database db = Db({{"B", b}});
  Expr q = ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 3),
                               Product(Input("B"), Input("B"))),
                        {1, 4});
  auto out = RunPipeline(q, db);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->CountOf(MakeTuple({A("a"), A("a")})), Mult(n * m));
  EXPECT_EQ(out->CountOf(MakeTuple({A("b"), A("b")})), Mult(n * m));
}

TEST(ExecTest, MergeOperatorsMatchSemantics) {
  Bag x = MakeBag({{MakeTuple({A("x")}), 5}, {MakeTuple({A("y")}), 1}});
  Bag y = MakeBag({{MakeTuple({A("x")}), 2}, {MakeTuple({A("z")}), 7}});
  Database db = Db({{"X", x}, {"Y", y}});
  auto monus = RunPipeline(Monus(Input("X"), Input("Y")), db);
  ASSERT_TRUE(monus.ok());
  EXPECT_EQ(monus->CountOf(MakeTuple({A("x")})), Mult(3));
  auto um = RunPipeline(Umax(Input("X"), Input("Y")), db);
  ASSERT_TRUE(um.ok());
  EXPECT_EQ(um->CountOf(MakeTuple({A("z")})), Mult(7));
  auto in = RunPipeline(Inter(Input("X"), Input("Y")), db);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in->TotalCount(), Mult(2));
  auto up = RunPipeline(Uplus(Input("X"), Input("Y")), db);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->CountOf(MakeTuple({A("x")})), Mult(7));
  auto de = RunPipeline(Eps(Input("X")), db);
  ASSERT_TRUE(de.ok());
  EXPECT_TRUE(de->IsSetLike());
}

TEST(ExecTest, MapMergesEqualImagesThroughSink) {
  // MAP collapsing everything to [k]: the stream emits two rows for [k];
  // the sink must merge to multiplicity 6 (additive MAP semantics).
  Bag b = MakeBag({{MakeTuple({A("x")}), 5}, {MakeTuple({A("y")}), 1}});
  Database db = Db({{"B", b}});
  auto out = RunPipeline(Map(Tup({ConstExpr(A("k"))}), Input("B")), db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->CountOf(MakeTuple({A("k")})), Mult(6));
}

TEST(ExecTest, RejectsOperatorsOutsideFragment) {
  Database db = Db({{"B", MakeBagOf({MakeTuple({A("x")})})}});
  EXPECT_EQ(RunPipeline(Pow(Input("B")), db).status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(RunPipeline(Destroy(Pow(Input("B"))), db).status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(
      RunPipeline(TransitiveClosure(Input("B")), db).status().code(),
      StatusCode::kUnsupported);
  // Bag-building lambda bodies are out too.
  EXPECT_EQ(RunPipeline(Map(Beta(Var(0)), Input("B")), db).status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(RunPipeline(Input("ZZZ"), db).status().code(),
            StatusCode::kNotFound);
}

TEST(ExecTest, EmptyInputsFlowThrough) {
  Database db;
  ASSERT_TRUE(db.Declare("E", Type::Bag(Type::Tuple({Type::Atom()}))).ok());
  auto out = RunPipeline(
      Product(Input("E"), Uplus(Input("E"), Input("E"))), db);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

class ExecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecFuzzTest, PipelineAgreesWithEvaluatorOnBalg1) {
  Rng rng(GetParam());
  Type tup1 = Type::Tuple({Type::Atom()});
  Type tup2 = Type::Tuple({Type::Atom(), Type::Atom()});
  Schema schema{{"R", Type::Bag(tup1)}, {"S", Type::Bag(tup2)}};
  ExprGenOptions options;
  options.max_bag_nesting = 1;   // the BALG¹ pipeline fragment
  options.allow_powerset = false;
  options.growth_rounds = 14;
  Evaluator eval;
  int compiled = 0;
  for (int i = 0; i < 80; ++i) {
    auto e = RandomExpr(rng, schema, options);
    ASSERT_TRUE(e.ok());
    FlatBagSpec spec1;
    spec1.arity = 1;
    spec1.num_elements = 4;
    FlatBagSpec spec2 = spec1;
    spec2.arity = 2;
    Database db;
    ASSERT_TRUE(db.Put("R", RandomFlatBag(rng, spec1)).ok());
    ASSERT_TRUE(db.Put("S", RandomFlatBag(rng, spec2)).ok());
    auto reference = eval.EvalToBag(*e, db);
    ASSERT_TRUE(reference.ok()) << e->ToString();
    auto pipeline = RunPipeline(*e, db);
    ASSERT_TRUE(pipeline.ok()) << e->ToString() << "\n" << pipeline.status();
    ++compiled;
    EXPECT_EQ(*pipeline, *reference) << e->ToString();
  }
  EXPECT_EQ(compiled, 80);  // the whole generated fragment must compile
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecFuzzTest,
                         ::testing::Values(71, 72, 73, 74));

}  // namespace
}  // namespace bagalg
