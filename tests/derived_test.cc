// Tests for the derived-operation library: §3 aggregates, the §3
// interdefinability constructions (checked against the primitive operators
// on random bags — Prop 3.1 and friends), and the §4 counting queries.

#include "src/algebra/derived.h"

#include <gtest/gtest.h>

#include "src/algebra/eval.h"
#include "src/core/bag_ops.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

namespace bagalg {
namespace {

Value A(const char* name) { return MakeAtom(name); }

Bag EvalBag(const Expr& e, const Database& db) {
  Evaluator eval;
  auto r = eval.EvalToBag(e, db);
  EXPECT_TRUE(r.ok()) << r.status() << " for " << e.ToString();
  return r.ok() ? std::move(r).value() : Bag();
}

Database Db(std::initializer_list<std::pair<std::string, Bag>> items) {
  Database db;
  for (const auto& [name, bag] : items) {
    Status st = db.Put(name, bag);
    EXPECT_TRUE(st.ok()) << st;
  }
  return db;
}

// ------------------------------------------------------------------ shifts

TEST(ShiftVarsTest, ShiftsOnlyFreeVariables) {
  // map(v -> [v.1, x], src) where x is free (depth 0 outside): shifting by
  // 2 moves x but not the bound v.
  Expr body = Tup({Proj(Var(0), 1), Var(1)});
  Expr e = Map(body, Var(0));
  Expr shifted = ShiftVars(e, 0, 2);
  const ExprNode& map_node = shifted.node();
  // Source Var(0) became Var(2).
  EXPECT_EQ(map_node.children[1]->index, 2u);
  // Inside the body: bound Var(0) unchanged; free Var(1) became Var(3).
  const ExprNode& tup = map_node.children[0].node();
  EXPECT_EQ(tup.children[0]->children[0]->index, 0u);
  EXPECT_EQ(tup.children[1]->index, 3u);
}

// -------------------------------------------------------------- aggregates

TEST(AggregateTest, CountAggIsCardinality) {
  Bag b = MakeBag({{MakeTuple({A("p"), A("q")}), 3},
                   {MakeTuple({A("q"), A("p")}), 2}});
  Database db = Db({{"B", b}});
  Bag r = EvalBag(CountAgg(Input("B"), A("one")), db);
  EXPECT_EQ(DecodeIntBag(r).value(), 5u);
  EXPECT_EQ(r.DistinctCount(), 1u);
  EXPECT_EQ(r.entries()[0].value, MakeTuple({A("one")}));
}

TEST(AggregateTest, SumAggAddsIntegerBags) {
  // {{ int(3), int(4)*2 }} sums to 11.
  Bag b = MakeBagOf({Value::FromBag(IntAsBag(3, A("u")))});
  Bag::Builder builder;
  builder.AddBag(b);
  builder.Add(Value::FromBag(IntAsBag(4, A("u"))), Mult(2));
  Bag nested = std::move(std::move(builder).Build()).value();
  Database db = Db({{"B", nested}});
  Bag r = EvalBag(SumAgg(Input("B")), db);
  EXPECT_EQ(DecodeIntBag(r).value(), 11u);
}

TEST(AggregateTest, AverageAggExactDivision) {
  // avg{2, 4, 6} = 4.
  Bag b = MakeBagOf({Value::FromBag(IntAsBag(2, A("u"))),
                     Value::FromBag(IntAsBag(4, A("u"))),
                     Value::FromBag(IntAsBag(6, A("u")))});
  Database db = Db({{"B", b}});
  Bag r = EvalBag(AverageAgg(Input("B"), A("u")), db);
  EXPECT_EQ(DecodeIntBag(r).value(), 4u);
}

TEST(AggregateTest, AverageAggRespectsMultiplicities) {
  // avg of {{ int(1)*3, int(5) }} = (3+5)/4 = 2.
  Bag::Builder builder;
  builder.Add(Value::FromBag(IntAsBag(1, A("u"))), Mult(3));
  builder.Add(Value::FromBag(IntAsBag(5, A("u"))), Mult(1));
  Bag b = std::move(std::move(builder).Build()).value();
  Database db = Db({{"B", b}});
  Bag r = EvalBag(AverageAgg(Input("B"), A("u")), db);
  EXPECT_EQ(DecodeIntBag(r).value(), 2u);
}

TEST(AggregateTest, AverageAggEmptyWhenNotDivisible) {
  // avg{1, 2} = 1.5: exact-division semantics yield the empty bag.
  Bag b = MakeBagOf({Value::FromBag(IntAsBag(1, A("u"))),
                     Value::FromBag(IntAsBag(2, A("u")))});
  Database db = Db({{"B", b}});
  Bag r = EvalBag(AverageAgg(Input("B"), A("u")), db);
  EXPECT_TRUE(r.empty());
}

// ------------------------------------------------------- counting queries

TEST(CountingTest, CardGreaterMatchesCardinalities) {
  for (uint64_t nr : {0u, 1u, 3u}) {
    for (uint64_t ns : {0u, 1u, 3u}) {
      Bag::Builder br, bs;
      for (uint64_t i = 0; i < nr; ++i) {
        br.AddOne(MakeTuple({MakeAtom("r" + std::to_string(i))}));
      }
      for (uint64_t i = 0; i < ns; ++i) {
        bs.AddOne(MakeTuple({MakeAtom("s" + std::to_string(i))}));
      }
      Database db;
      ASSERT_TRUE(db.Put("R", std::move(std::move(br).Build()).value()).ok());
      ASSERT_TRUE(db.Put("S", std::move(std::move(bs).Build()).value()).ok());
      ASSERT_TRUE(db.Declare("R", Type::Bag(Type::Tuple({Type::Atom()}))).ok());
      ASSERT_TRUE(db.Declare("S", Type::Bag(Type::Tuple({Type::Atom()}))).ok());
      Bag r = EvalBag(CardGreater(Input("R"), Input("S")), db);
      EXPECT_EQ(!r.empty(), nr > ns) << "nr=" << nr << " ns=" << ns;
    }
  }
}

TEST(CountingTest, CardEqualHartig) {
  Bag r2 = MakeBagOf({MakeTuple({A("r1")}), MakeTuple({A("r2")})});
  Bag s2 = MakeBagOf({MakeTuple({A("s1")}), MakeTuple({A("s2")})});
  Bag s3 = MakeBagOf({MakeTuple({A("s1")}), MakeTuple({A("s2")}),
                      MakeTuple({A("s3")})});
  EXPECT_FALSE(
      EvalBag(CardEqual(Input("R"), Input("S"), A("u")),
              Db({{"R", r2}, {"S", s2}})).empty());
  EXPECT_TRUE(
      EvalBag(CardEqual(Input("R"), Input("S"), A("u")),
              Db({{"R", r2}, {"S", s3}})).empty());
}

TEST(CountingTest, AtLeastDistinctQuantifier) {
  Bag r = MakeBag({{MakeTuple({A("x")}), 5}, {MakeTuple({A("y")}), 1}});
  Database db = Db({{"R", r}});
  // Two distinct elements despite six occurrences.
  EXPECT_FALSE(EvalBag(AtLeastDistinct(Input("R"), 0, A("u")), db).empty());
  EXPECT_FALSE(EvalBag(AtLeastDistinct(Input("R"), 1, A("u")), db).empty());
  EXPECT_FALSE(EvalBag(AtLeastDistinct(Input("R"), 2, A("u")), db).empty());
  EXPECT_TRUE(EvalBag(AtLeastDistinct(Input("R"), 3, A("u")), db).empty());
}

TEST(CountingTest, AtLeastTotalCountsOccurrences) {
  Bag r = MakeBag({{MakeTuple({A("x")}), 5}, {MakeTuple({A("y")}), 1}});
  Database db = Db({{"R", r}});
  EXPECT_FALSE(EvalBag(AtLeastTotal(Input("R"), 6, A("u")), db).empty());
  EXPECT_TRUE(EvalBag(AtLeastTotal(Input("R"), 7, A("u")), db).empty());
  EXPECT_FALSE(EvalBag(AtLeastTotal(Input("R"), 0, A("u")), db).empty());
}

TEST(CountingTest, EvenCardinalityWithOrder) {
  // §4: parity of |R| is definable given a total order.
  std::vector<Value> atoms = AtomPool(6, "o");
  Bag leq = TotalOrderLeq(atoms);
  for (size_t card = 1; card <= 6; ++card) {
    Bag::Builder builder;
    for (size_t i = 0; i < card; ++i) builder.AddOne(MakeTuple({atoms[i]}));
    Bag r = std::move(std::move(builder).Build()).value();
    Database db = Db({{"R", r}, {"Leq", leq}});
    Bag out = EvalBag(EvenCardinalityWithOrder(Input("R"), Input("Leq"),
                                               A("u")),
                      db);
    EXPECT_EQ(!out.empty(), card % 2 == 0) << "card=" << card;
  }
}

TEST(CountingTest, EvenCardinalityWorksOnNonPrefixSubsets) {
  std::vector<Value> atoms = AtomPool(6, "o");
  Bag leq = TotalOrderLeq(atoms);
  // R = {o1, o3, o4, o5}: even.
  Bag r = MakeBagOf({MakeTuple({atoms[1]}), MakeTuple({atoms[3]}),
                     MakeTuple({atoms[4]}), MakeTuple({atoms[5]})});
  Database db = Db({{"R", r}, {"Leq", leq}});
  EXPECT_FALSE(
      EvalBag(EvenCardinalityWithOrder(Input("R"), Input("Leq"), A("u")), db)
          .empty());
  // R = {o0, o2, o5}: odd.
  Bag r2 = MakeBagOf({MakeTuple({atoms[0]}), MakeTuple({atoms[2]}),
                      MakeTuple({atoms[5]})});
  Database db2 = Db({{"R", r2}, {"Leq", leq}});
  EXPECT_TRUE(
      EvalBag(EvenCardinalityWithOrder(Input("R"), Input("Leq"), A("u")), db2)
          .empty());
}

// -------------------------------------- §3 interdefinability (Prop 3.1 etc.)

class DerivedEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DerivedEquivalenceTest, UplusViaMaxUnionAgrees) {
  Rng rng(GetParam());
  FlatBagSpec spec;
  for (int i = 0; i < 15; ++i) {
    Bag a = RandomFlatBag(rng, spec);
    Bag b = RandomFlatBag(rng, spec);
    Database db = Db({{"A", a}, {"B", b}});
    Bag direct = EvalBag(Uplus(Input("A"), Input("B")), db);
    Bag derived = EvalBag(UplusViaMaxUnion(Input("A"), Input("B"), spec.arity,
                                           A("tagA"), A("tagB")),
                          db);
    EXPECT_EQ(direct, derived);
  }
}

TEST_P(DerivedEquivalenceTest, MonusViaPowersetAgrees) {
  Rng rng(GetParam() ^ 0x1111);
  FlatBagSpec spec;
  spec.num_elements = 4;  // powerset of A is enumerated; keep A small
  spec.max_mult = 2;
  for (int i = 0; i < 10; ++i) {
    Bag a = RandomFlatBag(rng, spec);
    Bag b = RandomFlatBag(rng, spec);
    Database db = Db({{"A", a}, {"B", b}});
    Bag direct = EvalBag(Monus(Input("A"), Input("B")), db);
    Bag derived = EvalBag(MonusViaPowerset(Input("A"), Input("B")), db);
    EXPECT_EQ(direct, derived);
  }
}

TEST_P(DerivedEquivalenceTest, EpsViaPowersetAgrees) {
  Rng rng(GetParam() ^ 0x2222);
  FlatBagSpec spec;
  spec.num_elements = 4;
  spec.max_mult = 3;
  for (int i = 0; i < 10; ++i) {
    Bag b = RandomFlatBag(rng, spec);
    Database db = Db({{"B", b}});
    Bag direct = EvalBag(Eps(Input("B")), db);
    Bag derived = EvalBag(EpsViaPowerset(Input("B")), db);
    EXPECT_EQ(direct, derived);
  }
}

TEST_P(DerivedEquivalenceTest, EpsViaPowersetNestedAgrees) {
  Rng rng(GetParam() ^ 0x3333);
  FlatBagSpec inner;
  inner.num_elements = 2;
  inner.max_mult = 2;
  for (int i = 0; i < 10; ++i) {
    Bag b = RandomNestedBag(rng, 3, inner);
    Database db = Db({{"B", b}});
    Bag direct = EvalBag(Eps(Input("B")), db);
    Bag derived = EvalBag(EpsViaPowersetNested(Input("B")), db);
    EXPECT_EQ(direct, derived);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerivedEquivalenceTest,
                         ::testing::Values(5, 6, 7));

// --------------------------------------------------- boolean-test plumbing

TEST(BoolTestTest, WitnessSemantics) {
  Bag b = MakeBag({{A("x"), 2}});
  Database db = Db({{"B", b}});
  EXPECT_FALSE(EvalBag(BoolTest(Input("B"), Input("B"), A("w")), db).empty());
  EXPECT_TRUE(
      EvalBag(BoolTest(Input("B"), Eps(Input("B")), A("w")), db).empty());
}

TEST(BoolTestTest, MembershipPredicate) {
  Bag b = MakeBag({{MakeTuple({A("x")}), 3}, {MakeTuple({A("y")}), 1}});
  Database db = Db({{"B", b}});
  // σ_{t ∈ B}(B) = B (everything is a member).
  auto [lhs, rhs] = MemberTestPair(Var(0), ShiftVars(Input("B"), 0, 1));
  Bag r = EvalBag(Select(lhs, rhs, Input("B")), db);
  EXPECT_EQ(r, b);
}

TEST(BoolTestTest, SubbagPredicate) {
  Bag small = MakeBag({{A("x"), 1}});
  Bag big = MakeBag({{A("x"), 2}, {A("y"), 1}});
  Database db = Db({{"S", small}, {"B", big}});
  auto [lhs, rhs] = SubbagTestPair(Input("S"), Input("B"));
  EXPECT_FALSE(EvalBag(Select(ShiftVars(lhs, 0, 1), ShiftVars(rhs, 0, 1),
                              ConstBag(MakeBagOf({MakeTuple({A("w")})}))),
                       db)
                   .empty());
  auto [lhs2, rhs2] = SubbagTestPair(Input("B"), Input("S"));
  EXPECT_TRUE(EvalBag(Select(ShiftVars(lhs2, 0, 1), ShiftVars(rhs2, 0, 1),
                             ConstBag(MakeBagOf({MakeTuple({A("w")})}))),
                      db)
                  .empty());
}

}  // namespace
}  // namespace bagalg
