// Tests for the samplers and the asymptotic-probability estimators
// (Example 4.2 / the §4 0–1 law discussion).

#include "src/stats/probability.h"

#include <gtest/gtest.h>

#include "src/algebra/derived.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

namespace bagalg {
namespace {

TEST(SamplerTest, AtomPoolIsStable) {
  auto a = AtomPool(4);
  auto b = AtomPool(4);
  ASSERT_EQ(a.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(SamplerTest, FlatBagRespectsSpec) {
  Rng rng(5);
  FlatBagSpec spec;
  spec.arity = 3;
  spec.num_elements = 10;
  spec.max_mult = 4;
  Bag bag = RandomFlatBag(rng, spec);
  EXPECT_LE(bag.DistinctCount(), 10u);
  EXPECT_FALSE(bag.empty());
  for (const BagEntry& e : bag.entries()) {
    EXPECT_TRUE(e.value.IsTuple());
    EXPECT_EQ(e.value.fields().size(), 3u);
  }
  EXPECT_EQ(bag.element_type().fields().size(), 3u);
}

TEST(SamplerTest, SamplingIsDeterministicPerSeed) {
  FlatBagSpec spec;
  Rng r1(99), r2(99), r3(100);
  EXPECT_EQ(RandomFlatBag(r1, spec), RandomFlatBag(r2, spec));
  // Different seeds should (overwhelmingly) differ.
  Rng r4(99);
  (void)RandomFlatBag(r4, spec);
  EXPECT_NE(RandomFlatBag(r3, spec), RandomFlatBag(r4, spec));
}

TEST(SamplerTest, NestedBagHasOneMoreLevel) {
  Rng rng(6);
  FlatBagSpec inner;
  Bag nested = RandomNestedBag(rng, 4, inner);
  EXPECT_EQ(nested.type().BagNesting(), 2);
  for (const BagEntry& e : nested.entries()) {
    EXPECT_TRUE(e.value.IsBag());
  }
}

TEST(SamplerTest, GraphIsSetLikeBinary) {
  Rng rng(7);
  Bag g = RandomGraph(rng, 10, 0.4);
  EXPECT_TRUE(g.IsSetLike());
  for (const BagEntry& e : g.entries()) {
    EXPECT_EQ(e.value.fields().size(), 2u);
  }
  // Edge count concentrates near p·n².
  EXPECT_GT(g.TotalCount(), Mult(10));
  EXPECT_LT(g.TotalCount(), Mult(80));
}

TEST(SamplerTest, TotalOrderLeqIsReflexiveTotalOrder) {
  auto atoms = AtomPool(5, "ord");
  Bag leq = TotalOrderLeq(atoms);
  // n(n+1)/2 pairs.
  EXPECT_EQ(leq.TotalCount(), Mult(15));
  for (size_t i = 0; i < atoms.size(); ++i) {
    EXPECT_TRUE(leq.Contains(MakeTuple({atoms[i], atoms[i]})));
    for (size_t j = i + 1; j < atoms.size(); ++j) {
      EXPECT_TRUE(leq.Contains(MakeTuple({atoms[i], atoms[j]})));
      EXPECT_FALSE(leq.Contains(MakeTuple({atoms[j], atoms[i]})));
    }
  }
}

TEST(ProbabilityTest, EstimatorCountsNonemptyFraction) {
  // A deterministic query on a deterministic sampler: probability 1.
  Rng rng(1);
  auto always = EstimateNonemptyProbability(
      ConstBag(MakeBagOf({MakeTuple({MakeAtom("w")})})),
      [](Rng&) { return Database(); }, 25, rng);
  ASSERT_TRUE(always.ok());
  EXPECT_DOUBLE_EQ(always->probability, 1.0);
  EXPECT_EQ(always->trials, 25u);
  auto never = EstimateNonemptyProbability(
      ConstBag(Bag(Type::Tuple({Type::Atom()}))),
      [](Rng&) { return Database(); }, 25, rng);
  ASSERT_TRUE(never.ok());
  EXPECT_DOUBLE_EQ(never->probability, 0.0);
}

TEST(ProbabilityTest, CardGreaterApproachesOneHalf) {
  Rng rng(2024);
  auto small = ProbCardGreater(4, 600, rng);
  auto large = ProbCardGreater(64, 600, rng);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  // By symmetry mu < 1/2 at every n (ties cost both sides); it must climb
  // toward 1/2 as ties become rare.
  EXPECT_LT(large->probability, 0.58);
  EXPECT_GT(large->probability, 0.40);
  EXPECT_GT(large->probability, small->probability - 0.05);
}

TEST(ProbabilityTest, CardEqualVanishes) {
  Rng rng(2025);
  auto small = ProbCardEqual(4, 600, rng);
  auto large = ProbCardEqual(64, 600, rng);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(large->probability, small->probability);
  EXPECT_LT(large->probability, 0.15);
}

TEST(ProbabilityTest, NonemptyObeysZeroOneLaw) {
  Rng rng(2026);
  auto large = ProbNonemptyMonadic(32, 400, rng);
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->probability, 0.999);
}

}  // namespace
}  // namespace bagalg
