// Tests for the EXPLAIN facility and the extended REPL commands.

#include "src/algebra/explain.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/algebra/derived.h"
#include "src/lang/script.h"

namespace bagalg {
namespace {

Schema TestSchema() {
  return Schema{{"G", Type::Bag(Type::Tuple({Type::Atom(), Type::Atom()}))}};
}

TEST(ExplainTest, RendersTypedOperatorTree) {
  Schema s = TestSchema();
  Expr q = ProjectAttrs(Select(Proj(Var(0), 1), Proj(Var(0), 2), Input("G")),
                        {1});
  auto plan = ExplainExpr(q, s);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Operator names, indentation, and types all present.
  EXPECT_NE(plan->find("map : {{[U]}}"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("sel : {{[U, U]}}"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("input G : {{[U, U]}}"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("body:"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("lhs:"), std::string::npos) << *plan;
}

TEST(ExplainTest, LambdaBodiesGetBinderNames) {
  Schema s = TestSchema();
  auto plan = ExplainExpr(Map(Tup({Proj(Var(0), 2)}), Input("G")), s);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("var v0"), std::string::npos) << *plan;
}

TEST(ExplainTest, FixpointPlansShowStepAndBound) {
  Schema s = TestSchema();
  auto plan = ExplainExpr(TransitiveClosureBounded(Input("G")), s);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("bifp"), std::string::npos);
  EXPECT_NE(plan->find("step:"), std::string::npos);
  EXPECT_NE(plan->find("bound:"), std::string::npos);
}

TEST(ExplainTest, FlagsPowersetNodes) {
  Schema s = TestSchema();
  auto plan = ExplainExpr(Pow(Input("G")), s);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("pow"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("[powerset]"), std::string::npos) << *plan;
  auto bagplan = ExplainExpr(Powbag(Input("G")), s);
  ASSERT_TRUE(bagplan.ok());
  EXPECT_NE(bagplan->find("[powerset]"), std::string::npos) << *bagplan;
  // Tractable plans carry no such flag.
  auto flat = ExplainExpr(Uplus(Input("G"), Input("G")), s);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->find("[powerset]"), std::string::npos) << *flat;
}

// Regression: ancestors of a powerset node carry an "[powerset inside]"
// marker so the intractable core is visible from the plan root, not only at
// the pow/powbag line itself. Derived operators that expand to powerset
// constructions (monus-via-P, eps-via-P) must propagate it to their root.
TEST(ExplainTest, AncestorsOfPowersetCarryInsideMarker) {
  Schema s = TestSchema();
  auto plan = ExplainExpr(Eps(Pow(Input("G"))), s);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The root dedup line is flagged "inside"; the pow line itself keeps the
  // direct "[powerset]" flag (and not the ancestor marker).
  std::istringstream lines(*plan);
  std::string line;
  bool saw_root_marker = false, saw_pow_flag = false;
  while (std::getline(lines, line)) {
    if (line.find("dedup") != std::string::npos) {
      EXPECT_NE(line.find("[powerset inside]"), std::string::npos) << line;
      saw_root_marker = true;
    }
    if (line.find("pow") != std::string::npos &&
        line.find("dedup") == std::string::npos) {
      EXPECT_NE(line.find("[powerset]"), std::string::npos) << line;
      EXPECT_EQ(line.find("[powerset inside]"), std::string::npos) << line;
      saw_pow_flag = true;
    }
  }
  EXPECT_TRUE(saw_root_marker) << *plan;
  EXPECT_TRUE(saw_pow_flag) << *plan;

  // Powerset-free plans carry neither marker.
  auto flat = ExplainExpr(Uplus(Input("G"), Input("G")), s);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->find("[powerset inside]"), std::string::npos) << *flat;
}

TEST(ExplainTest, DerivedPowersetConstructionsPropagateInsideMarker) {
  Type unary = Type::Bag(Type::Tuple({Type::Atom()}));
  Schema s{{"R", unary}, {"S", unary}};
  // MonusViaPowerset / EpsViaPowerset expand to trees whose *root* operator
  // is not a powerset — the marker is how a reader learns the plan hides one.
  for (const Expr& e : {MonusViaPowerset(Input("R"), Input("S")),
                        EpsViaPowerset(Input("R"))}) {
    auto plan = ExplainExpr(e, s);
    ASSERT_TRUE(plan.ok()) << plan.status();
    std::istringstream lines(*plan);
    std::string first;
    ASSERT_TRUE(static_cast<bool>(std::getline(lines, first))) << *plan;
    EXPECT_NE(first.find("[powerset inside]"), std::string::npos) << *plan;
  }
}

// Every derived operator from src/algebra/derived.h renders through
// ExplainExpr: the combinators produce well-typed trees and the renderer
// handles each shape they expand to.
TEST(ExplainTest, CoversAllDerivedOperators) {
  const Value unit = MakeAtom("u");
  const Value node = MakeAtom("n");
  // R, S: unary-tuple bags; G, Leq: binary edge/order bags; NB: a bag of
  // integer bags (the §3 aggregate input convention).
  Type unary = Type::Bag(Type::Tuple({Type::Atom()}));
  Type binary = Type::Bag(Type::Tuple({Type::Atom(), Type::Atom()}));
  Schema s{{"R", unary},
           {"S", unary},
           {"G", binary},
           {"Leq", binary},
           {"NB", Type::Bag(unary)}};

  auto member = MemberTestPair(Var(0), Input("R"));
  auto subbag = SubbagTestPair(Beta(Var(0)), Input("R"));
  struct Case {
    const char* name;
    Expr expr;
  };
  const Case cases[] = {
      {"ShiftVars", Map(ShiftVars(Proj(Var(0), 1), 1, 0), Input("R"))},
      {"IntAsBag", ConstBag(IntAsBag(3, unit))},
      {"IntConst", IntConst(3, unit)},
      {"CardAsInt", CardAsInt(Input("G"), unit)},
      {"CountAgg", CountAgg(Input("G"), unit)},
      {"SumAgg", SumAgg(Input("NB"))},
      {"AverageAgg", AverageAgg(Input("NB"), unit)},
      {"BoolTest", BoolTest(Input("R"), Input("S"), unit)},
      {"MemberTestPair", Select(member.first, member.second, Input("R"))},
      {"SubbagTestPair", Select(subbag.first, subbag.second, Input("R"))},
      {"CardGreater", CardGreater(Input("R"), Input("S"))},
      {"CardEqual", CardEqual(Input("R"), Input("S"), unit)},
      {"AtLeastDistinct", AtLeastDistinct(Input("R"), 2, unit)},
      {"AtLeastTotal", AtLeastTotal(Input("R"), 2, unit)},
      {"InDegreeGreaterThanOut", InDegreeGreaterThanOut(Input("G"), node)},
      {"EvenCardinalityWithOrder",
       EvenCardinalityWithOrder(Input("R"), Input("Leq"), unit)},
      {"UplusViaMaxUnion",
       UplusViaMaxUnion(Input("G"), Input("G"), 2, MakeAtom("ta"),
                        MakeAtom("tb"))},
      {"MonusViaPowerset", MonusViaPowerset(Input("R"), Input("S"))},
      {"EpsViaPowerset", EpsViaPowerset(Input("R"))},
      {"EpsViaPowersetNested", EpsViaPowersetNested(Input("NB"))},
      {"TransitiveClosure", TransitiveClosure(Input("G"))},
      {"TransitiveClosureBounded", TransitiveClosureBounded(Input("G"))},
  };
  for (const Case& c : cases) {
    auto plan = ExplainExpr(c.expr, s);
    EXPECT_TRUE(plan.ok()) << c.name << ": " << plan.status();
    if (plan.ok()) {
      EXPECT_FALSE(plan->empty()) << c.name;
      EXPECT_NE(plan->find(" : "), std::string::npos) << c.name << *plan;
    }
  }

  // The powerset-based interdefinability constructions are exactly the ones
  // the renderer flags.
  auto monus_plan = ExplainExpr(MonusViaPowerset(Input("R"), Input("S")), s);
  ASSERT_TRUE(monus_plan.ok());
  EXPECT_NE(monus_plan->find("[powerset]"), std::string::npos) << *monus_plan;
  auto eps_plan = ExplainExpr(EpsViaPowerset(Input("R")), s);
  ASSERT_TRUE(eps_plan.ok());
  EXPECT_NE(eps_plan->find("[powerset]"), std::string::npos) << *eps_plan;

  // DecodeIntBag is the value-level inverse of IntAsBag.
  auto decoded = DecodeIntBag(IntAsBag(5, unit));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, 5u);
}

TEST(ExplainTest, ErrorsOnIllTypedExpressions) {
  Schema s = TestSchema();
  EXPECT_FALSE(ExplainExpr(Destroy(Input("G")), s).ok());
  EXPECT_FALSE(ExplainExpr(Input("Missing"), s).ok());
}

TEST(ScriptExplainTest, ExplainCommand) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("schema G : {{[U, U]}}").ok());
  auto r = runner.RunLine("explain sel(x -> proj(1, x) == proj(2, x), G)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("sel : {{[U, U]}}"), std::string::npos) << *r;
}

TEST(ScriptExplainTest, FragmentCommand) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("schema G : {{[U, U]}}").ok());
  auto ok = runner.RunLine("fragment 1 dedup(G)");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "within BALG^1");
  auto too_deep = runner.RunLine("fragment 1 pow(G)");
  ASSERT_TRUE(too_deep.ok());
  EXPECT_NE(too_deep->find("Unsupported"), std::string::npos);
  EXPECT_FALSE(runner.RunLine("fragment x pow(G)").ok());
}

}  // namespace
}  // namespace bagalg
