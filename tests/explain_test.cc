// Tests for the EXPLAIN facility and the extended REPL commands.

#include "src/algebra/explain.h"

#include <gtest/gtest.h>

#include "src/algebra/derived.h"
#include "src/lang/script.h"

namespace bagalg {
namespace {

Schema TestSchema() {
  return Schema{{"G", Type::Bag(Type::Tuple({Type::Atom(), Type::Atom()}))}};
}

TEST(ExplainTest, RendersTypedOperatorTree) {
  Schema s = TestSchema();
  Expr q = ProjectAttrs(Select(Proj(Var(0), 1), Proj(Var(0), 2), Input("G")),
                        {1});
  auto plan = ExplainExpr(q, s);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Operator names, indentation, and types all present.
  EXPECT_NE(plan->find("map : {{[U]}}"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("sel : {{[U, U]}}"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("input G : {{[U, U]}}"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("body:"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("lhs:"), std::string::npos) << *plan;
}

TEST(ExplainTest, LambdaBodiesGetBinderNames) {
  Schema s = TestSchema();
  auto plan = ExplainExpr(Map(Tup({Proj(Var(0), 2)}), Input("G")), s);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("var v0"), std::string::npos) << *plan;
}

TEST(ExplainTest, FixpointPlansShowStepAndBound) {
  Schema s = TestSchema();
  auto plan = ExplainExpr(TransitiveClosureBounded(Input("G")), s);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("bifp"), std::string::npos);
  EXPECT_NE(plan->find("step:"), std::string::npos);
  EXPECT_NE(plan->find("bound:"), std::string::npos);
}

TEST(ExplainTest, ErrorsOnIllTypedExpressions) {
  Schema s = TestSchema();
  EXPECT_FALSE(ExplainExpr(Destroy(Input("G")), s).ok());
  EXPECT_FALSE(ExplainExpr(Input("Missing"), s).ok());
}

TEST(ScriptExplainTest, ExplainCommand) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("schema G : {{[U, U]}}").ok());
  auto r = runner.RunLine("explain sel(x -> proj(1, x) == proj(2, x), G)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("sel : {{[U, U]}}"), std::string::npos) << *r;
}

TEST(ScriptExplainTest, FragmentCommand) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("schema G : {{[U, U]}}").ok());
  auto ok = runner.RunLine("fragment 1 dedup(G)");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "within BALG^1");
  auto too_deep = runner.RunLine("fragment 1 pow(G)");
  ASSERT_TRUE(too_deep.ok());
  EXPECT_NE(too_deep->find("Unsupported"), std::string::npos);
  EXPECT_FALSE(runner.RunLine("fragment x pow(G)").ok());
}

}  // namespace
}  // namespace bagalg
