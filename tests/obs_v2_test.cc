// Obs v2 tests: cross-thread trace propagation (worker chunk spans parent
// to the kernel span that dispatched them, and the non-chunk span tree is
// identical across thread counts), the flight recorder (ring semantics,
// ancestry dumps on governor trips and injected faults), the query journal
// (outcomes, analyzer verdicts, JSONL export), histogram percentiles, and
// the Prometheus text exposition.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/bag_ops.h"
#include "src/lang/script.h"
#include "src/obs/flight.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/fault.h"
#include "src/util/parallel.h"

namespace bagalg {
namespace {

Value A(const char* name) { return MakeAtom(name); }

Bag B(std::initializer_list<std::pair<Value, uint64_t>> items) {
  return MakeBag(items);
}

/// Restores the default pool configuration when a test exits.
struct PoolConfigGuard {
  ~PoolConfigGuard() { ThreadPool::Configure(ParallelOptions::Default()); }
};

/// Disarms fault injection when a test exits.
struct FaultDisarmGuard {
  ~FaultDisarmGuard() { fault::Disarm(); }
};

/// A bag of `n` distinct unary tuples with varying multiplicities.
Bag WideTupleBag(size_t n, const char* prefix) {
  Bag::Builder builder;
  for (size_t i = 0; i < n; ++i) {
    builder.Add(MakeTuple({MakeAtom(prefix + std::to_string(i))}),
                Mult(i % 5 + 1));
  }
  return std::move(builder).Build().value();
}

/// A REPL `let` line binding NAME to a bag of n distinct atoms.
std::string LetAtoms(const std::string& name, size_t n) {
  std::string line = "let " + name + " = {{";
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) line += ", ";
    line += name + std::to_string(i);
  }
  return line + "}}";
}

// --------------------------------------------- cross-thread trace parents

/// Runs product + powerset kernels under a root span on `tracer` and
/// copies the finished events into `events`. The root span installs the
/// ambient context, so KernelScope spans (and, through pool propagation,
/// worker chunk spans) land in this tracer.
void CollectKernelTrace(obs::Tracer& tracer,
                        std::vector<obs::TraceEvent>& events) {
  Bag left = WideTupleBag(64, "dl");
  Bag right = WideTupleBag(64, "dr");
  Bag multbag = B({{A("p"), 7}, {A("q"), 7}, {A("r"), 7}, {A("s"), 7}});
  {
    obs::Span root = tracer.StartSpan("test.root", "test");
    ASSERT_TRUE(CartesianProduct(left, right).ok());
    ASSERT_TRUE(Powerset(multbag).ok());
  }
  events = tracer.SnapshotEvents();
}

bool IsChunkSpan(const obs::TraceEvent& e) {
  return e.name.find(".chunk") != std::string::npos ||
         e.name == "kernel.build.sort_merge";
}

TEST(TracePropagationTest, WorkerChunkSpansParentToOwningKernelSpan) {
  PoolConfigGuard guard;
  ThreadPool::Configure({8, 16});
  obs::Tracer tracer;
  std::vector<obs::TraceEvent> events;
  ASSERT_NO_FATAL_FAILURE(CollectKernelTrace(tracer, events));
  std::map<uint64_t, const obs::TraceEvent*> by_id;
  for (const auto& e : events) by_id[e.id] = &e;
  size_t chunk_spans = 0;
  for (const auto& e : events) {
    if (!IsChunkSpan(e)) continue;
    ++chunk_spans;
    // Propagation means no orphaned depth-0 worker spans: every chunk span
    // parents to a recorded kernel span one level up.
    EXPECT_NE(e.parent_id, 0u) << e.name;
    EXPECT_GT(e.depth, 0u) << e.name;
    auto parent = by_id.find(e.parent_id);
    ASSERT_NE(parent, by_id.end()) << e.name;
    EXPECT_EQ(parent->second->name.rfind("kernel.", 0), 0u)
        << e.name << " parented to " << parent->second->name;
    EXPECT_EQ(e.depth, parent->second->depth + 1) << e.name;
  }
  // Sanity: 64x64 pairs and 8^4 subbags are above the dispatch grains, so
  // the 8-thread pool really produced worker chunk spans.
  EXPECT_GT(chunk_spans, 0u);
}

TEST(TracePropagationTest, ChunkSpansNameTheirDispatchingKernel) {
  PoolConfigGuard guard;
  ThreadPool::Configure({8, 16});
  obs::Tracer tracer;
  std::vector<obs::TraceEvent> events;
  ASSERT_NO_FATAL_FAILURE(CollectKernelTrace(tracer, events));
  std::map<uint64_t, const obs::TraceEvent*> by_id;
  for (const auto& e : events) by_id[e.id] = &e;
  for (const auto& e : events) {
    auto parent = by_id.find(e.parent_id);
    if (parent == by_id.end()) continue;
    if (e.name == "kernel.product.chunk") {
      EXPECT_EQ(parent->second->name, "kernel.product");
    }
    if (e.name == "kernel.subbag.chunk") {
      EXPECT_EQ(parent->second->name, "kernel.powerset");
    }
    if (e.name == "kernel.build.sort_chunk" ||
        e.name == "kernel.build.sort_merge") {
      EXPECT_EQ(parent->second->name, "kernel.build.sort");
    }
  }
}

/// The multiset of (name, ancestor-name-path) pairs for non-chunk spans.
/// Chunk spans are excluded because their count tracks the chunking, which
/// legitimately varies with the pool configuration — the *structural* span
/// tree must not.
std::vector<std::string> StructuralSpanPaths(
    const std::vector<obs::TraceEvent>& events) {
  std::map<uint64_t, const obs::TraceEvent*> by_id;
  for (const auto& e : events) by_id[e.id] = &e;
  std::vector<std::string> paths;
  for (const auto& e : events) {
    if (IsChunkSpan(e)) continue;
    // kernel.build.sort only appears when the sort chunks, which depends on
    // the pool parallelism; skip it alongside its chunks.
    if (e.name == "kernel.build.sort") continue;
    std::string path = e.name;
    uint64_t parent = e.parent_id;
    size_t hops = 0;
    while (parent != 0 && hops++ <= by_id.size()) {
      auto it = by_id.find(parent);
      if (it == by_id.end()) break;
      if (!IsChunkSpan(*it->second) && it->second->name != "kernel.build.sort") {
        path = it->second->name + "/" + path;
      }
      parent = it->second->parent_id;
    }
    paths.push_back(path);
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(TracePropagationTest, StructuralSpanTreeIdenticalAcrossThreadCounts) {
  PoolConfigGuard guard;
  ThreadPool::Configure({1, 4096});
  obs::Tracer serial_tracer;
  std::vector<obs::TraceEvent> serial;
  ASSERT_NO_FATAL_FAILURE(CollectKernelTrace(serial_tracer, serial));
  ThreadPool::Configure({2, 64});
  obs::Tracer two_tracer;
  std::vector<obs::TraceEvent> two;
  ASSERT_NO_FATAL_FAILURE(CollectKernelTrace(two_tracer, two));
  ThreadPool::Configure({8, 16});
  obs::Tracer eight_tracer;
  std::vector<obs::TraceEvent> eight;
  ASSERT_NO_FATAL_FAILURE(CollectKernelTrace(eight_tracer, eight));

  const auto serial_paths = StructuralSpanPaths(serial);
  EXPECT_FALSE(serial_paths.empty());
  EXPECT_EQ(serial_paths, StructuralSpanPaths(two));
  EXPECT_EQ(serial_paths, StructuralSpanPaths(eight));
}

TEST(TracePropagationTest, ContextSurvivesNestedPoolDispatches) {
  // A span opened on this thread is the ancestor of every chunk span even
  // when kernels nest (powerset builds bags whose builders sort in
  // parallel under the powerset kernel span).
  PoolConfigGuard guard;
  ThreadPool::Configure({4, 16});
  obs::Tracer tracer;
  std::vector<obs::TraceEvent> events;
  ASSERT_NO_FATAL_FAILURE(CollectKernelTrace(tracer, events));
  std::map<uint64_t, const obs::TraceEvent*> by_id;
  uint64_t root_id = 0;
  for (const auto& e : events) {
    by_id[e.id] = &e;
    if (e.name == "test.root") root_id = e.id;
  }
  ASSERT_NE(root_id, 0u);
  for (const auto& e : events) {
    // Walk to the root: every span in the trace descends from test.root.
    uint64_t cursor = e.id;
    size_t hops = 0;
    while (cursor != root_id && hops++ <= by_id.size()) {
      auto it = by_id.find(cursor);
      ASSERT_NE(it, by_id.end()) << e.name;
      cursor = it->second->parent_id;
    }
    EXPECT_EQ(cursor, root_id) << e.name << " is not rooted at test.root";
  }
}

// ------------------------------------------------------- tracer atomics

TEST(TracerTest, SetMaxEventsRacesWithRecordSafely) {
  // Exercised under TSan in CI: the cap is an atomic read per Record, so
  // resizing it mid-flight must not race.
  obs::Tracer tracer;
  std::atomic<bool> stop{false};
  std::thread resizer([&] {
    for (int i = 0; i < 1000; ++i) {
      tracer.set_max_events(i % 2 == 0 ? 4 : (size_t{1} << 20));
    }
    stop.store(true);
  });
  std::vector<std::thread> recorders;
  for (int t = 0; t < 4; ++t) {
    recorders.emplace_back([&] {
      while (!stop.load()) {
        obs::Span span = tracer.StartSpan("race.span", "test");
        span.End();
      }
    });
  }
  resizer.join();
  for (auto& r : recorders) r.join();
  // No crash, and the buffer respected *some* cap along the way.
  EXPECT_LE(tracer.event_count(), size_t{1} << 20);
}

TEST(TracerTest, BufferingOffStillFeedsFlightRecorder) {
  obs::FlightRecorder flight(8);
  obs::Tracer tracer;
  tracer.set_flight_recorder(&flight);
  tracer.set_buffering(false);
  {
    obs::Span span = tracer.StartSpan("blackbox.span", "test");
  }
  EXPECT_EQ(tracer.event_count(), 0u);  // not buffered...
  auto records = flight.Snapshot();     // ...but in the ring
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "blackbox.span");
  tracer.set_flight_recorder(nullptr);
}

// ------------------------------------------------------- flight recorder

obs::TraceEvent SyntheticEvent(uint64_t id, uint64_t parent_id,
                               const std::string& name) {
  obs::TraceEvent e;
  e.id = id;
  e.parent_id = parent_id;
  e.depth = 0;
  e.name = name;
  e.category = "test";
  return e;
}

TEST(FlightRecorderTest, RingRetainsTheMostRecentSpans) {
  obs::FlightRecorder recorder(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    recorder.Record(SyntheticEvent(i, 0, "s" + std::to_string(i)));
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);
  auto records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first, and only the final four survived the wrap.
  EXPECT_EQ(records[0].name, "s7");
  EXPECT_EQ(records[3].name, "s10");
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].seq, records[i].seq);
  }
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(FlightRecorderTest, DisabledRecorderDropsSpans) {
  obs::FlightRecorder recorder(4);
  recorder.set_enabled(false);
  recorder.Record(SyntheticEvent(1, 0, "dropped"));
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(FlightRecorderTest, FormatDumpShowsAbortingSpanAncestry) {
  obs::FlightRecorder recorder(8);
  recorder.Record(SyntheticEvent(11, 0, "stmt"));
  recorder.Record(SyntheticEvent(12, 11, "kernel.powerset"));
  obs::TraceEvent errored = SyntheticEvent(13, 12, "kernel.subbag.chunk");
  errored.attrs.emplace_back("error", std::string("memory cap exceeded"));
  recorder.Record(errored);
  std::string dump = obs::FormatFlightDump(recorder.Snapshot());
  size_t ancestry = dump.find("ancestry");
  ASSERT_NE(ancestry, std::string::npos) << dump;
  // Root -> leaf order within the ancestry section.
  size_t stmt_pos = dump.find("stmt", ancestry);
  size_t kernel_pos = dump.find("kernel.powerset", ancestry);
  size_t chunk_pos = dump.find("kernel.subbag.chunk", ancestry);
  ASSERT_NE(stmt_pos, std::string::npos) << dump;
  ASSERT_NE(kernel_pos, std::string::npos) << dump;
  ASSERT_NE(chunk_pos, std::string::npos) << dump;
  EXPECT_LT(stmt_pos, kernel_pos);
  EXPECT_LT(kernel_pos, chunk_pos);
  EXPECT_NE(dump.find("memory cap exceeded"), std::string::npos) << dump;
}

// ------------------------------------------- REPL trips leave flight dumps

TEST(FlightReplTest, MemcapTripProducesDumpWithAncestry) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 18)).ok());
  ASSERT_TRUE(runner.RunLine("\\memlimit 4096").ok());
  auto r = runner.RunLine("count pow(R)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  std::string dump = runner.TakeFlightDump();
  EXPECT_NE(dump.find("ancestry"), std::string::npos) << dump;
  // The dump is take-once: a second read (and the next, clean statement)
  // returns nothing.
  EXPECT_TRUE(runner.TakeFlightDump().empty());
  ASSERT_TRUE(runner.RunLine("\\memlimit off").ok());
  ASSERT_TRUE(runner.RunLine("count R").ok());
  EXPECT_TRUE(runner.TakeFlightDump().empty());
}

TEST(FlightReplTest, DeadlineTripProducesDump) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 20)).ok());
  // 1ms against a powerset that cannot finish in it: pow(20 atoms)
  // enumerates 2^20 subbags.
  ASSERT_TRUE(runner.RunLine("\\timeout 1").ok());
  auto r = runner.RunLine("count pow(R)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(runner.TakeFlightDump().empty());
}

TEST(FlightReplTest, InjectedFaultProducesDumpAndJournalsAsFault) {
  FaultDisarmGuard guard;
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 14)).ok());
  fault::FaultSpec spec;
  spec.point = fault::FaultPoint::kCheckpoint;
  spec.after = 3;
  fault::Configure(spec);
  auto r = runner.RunLine("count pow(R)");
  ASSERT_FALSE(r.ok());
  fault::Disarm();
  EXPECT_FALSE(runner.TakeFlightDump().empty());
  auto tail = runner.journal().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].outcome, "fault");
  EXPECT_FALSE(tail[0].status_message.empty());
}

TEST(FlightReplTest, FlightrecOffSuppressesDumps) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 18)).ok());
  ASSERT_TRUE(runner.RunLine("\\flightrec off").ok());
  ASSERT_TRUE(runner.RunLine("\\memlimit 4096").ok());
  ASSERT_FALSE(runner.RunLine("count pow(R)").ok());
  EXPECT_TRUE(runner.TakeFlightDump().empty());
  ASSERT_TRUE(runner.RunLine("\\flightrec on").ok());
  ASSERT_FALSE(runner.RunLine("count pow(R)").ok());
  EXPECT_FALSE(runner.TakeFlightDump().empty());
}

// --------------------------------------------------------- query journal

TEST(JournalTest, RecordsSuccessWithAnalyzerVerdict) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 4)).ok());
  ASSERT_TRUE(runner.RunLine("count R").ok());
  auto tail = runner.journal().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  const obs::JournalEntry& e = tail[0];
  EXPECT_EQ(e.kind, "count");
  EXPECT_EQ(e.statement, "R");
  EXPECT_EQ(e.outcome, "ok");
  EXPECT_EQ(e.statement_hash, obs::HashStatementText("R"));
  EXPECT_EQ(e.result_distinct, 4u);
  EXPECT_FALSE(e.tractability.empty());
  EXPECT_FALSE(e.cost_bound.empty());
  EXPECT_TRUE(e.status_message.empty());
}

TEST(JournalTest, RecordsFailuresWithTypedOutcomes) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 18)).ok());
  // An evaluation error (not a trip): journaled as "error".
  ASSERT_FALSE(runner.RunLine("eval NoSuchBag").ok());
  auto tail = runner.journal().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].outcome, "error");
  EXPECT_FALSE(tail[0].status_message.empty());
  // A memcap trip: journaled as "memcap" with bytes accounted.
  ASSERT_TRUE(runner.RunLine("\\memlimit 4096").ok());
  ASSERT_FALSE(runner.RunLine("count pow(R)").ok());
  tail = runner.journal().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].outcome, "memcap");
  EXPECT_GE(tail[0].bytes_accounted, 4096u);
}

TEST(JournalTest, BudgetRefusalJournalsAsBudgetRefused) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine("let R = {{[r1], [r2], [r3], [r4]}}").ok());
  ASSERT_TRUE(runner.RunLine("\\budget 5").ok());
  auto r = runner.RunLine("eval prod(R, R)");  // estimate 16 > budget 5
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
  auto tail = runner.journal().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].outcome, "budget-refused");
}

TEST(JournalTest, SeqNumbersAreMonotoneAndTailIsOldestFirst) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 3)).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(runner.RunLine("count R").ok());
  }
  auto tail = runner.journal().Tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_LT(tail[0].seq, tail[1].seq);
  EXPECT_LT(tail[1].seq, tail[2].seq);
  EXPECT_EQ(runner.journal().total(), 5u);
}

TEST(JournalTest, RingEvictsOldestBeyondCapacity) {
  obs::QueryJournal journal(3);
  for (int i = 0; i < 7; ++i) {
    obs::JournalEntry e;
    e.kind = "eval";
    e.statement = "q" + std::to_string(i);
    journal.Append(std::move(e));
  }
  EXPECT_EQ(journal.total(), 7u);
  auto tail = journal.Tail(10);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].statement, "q4");
  EXPECT_EQ(tail[2].statement, "q6");
}

TEST(JournalTest, JsonLineCarriesTheSchemaFields) {
  obs::JournalEntry e;
  e.seq = 7;
  e.kind = "count";
  e.statement = "pow(R)";
  e.statement_hash = obs::HashStatementText("pow(R)");
  e.tractability = "intractable";
  e.cost_bound = "astronomical";
  e.wall_ns = 1234;
  e.outcome = "memcap";
  e.status_message = "memory cap exceeded";
  std::string line = e.ToJsonLine();
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"seq\":7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"kind\":\"count\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"outcome\":\"memcap\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"wall_ns\":1234"), std::string::npos) << line;
  // The hash is a fixed-width 16-hex-digit *string* (a raw uint64 would
  // lose precision in double-parsing JSON consumers).
  size_t hash_key = line.find("\"statement_hash\":\"");
  ASSERT_NE(hash_key, std::string::npos) << line;
  size_t hash_start = hash_key + std::string("\"statement_hash\":\"").size();
  size_t hash_end = line.find('"', hash_start);
  ASSERT_NE(hash_end, std::string::npos);
  EXPECT_EQ(hash_end - hash_start, 16u) << line;
}

TEST(JournalTest, ExportWritesOneJsonObjectPerLine) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 3)).ok());
  ASSERT_TRUE(runner.RunLine("count R").ok());
  ASSERT_TRUE(runner.RunLine("eval R").ok());
  const std::string path = ::testing::TempDir() + "/obs_v2_journal.jsonl";
  auto exported = runner.RunLine("\\journal export " + path);
  ASSERT_TRUE(exported.ok()) << exported.status();
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(file, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    if (lines == 1) {
      // The export opens with a build-info header line.
      EXPECT_NE(line.find("\"header\":true"), std::string::npos) << line;
      EXPECT_NE(line.find("\"build\""), std::string::npos) << line;
    }
  }
  EXPECT_EQ(lines, 3u);  // header + one line per journaled statement
  std::remove(path.c_str());
}

TEST(JournalTest, JournalCommandPrintsRecentEntries) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 3)).ok());
  ASSERT_TRUE(runner.RunLine("count R").ok());
  auto out = runner.RunLine("\\journal");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("outcome=ok"), std::string::npos) << *out;
  EXPECT_NE(out->find(":: R"), std::string::npos) << *out;
  auto bad = runner.RunLine("\\journal nope");
  EXPECT_FALSE(bad.ok());
}

// ---------------------------------------------------- histogram percentiles

TEST(PercentileTest, EmptyHistogramIsZero) {
  obs::HistogramSnapshot h;
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.Percentile(1.0), 0.0);
}

TEST(PercentileTest, SingleObservationReturnsItForEveryQuantile) {
  obs::Histogram h;
  h.Observe(42);
  obs::HistogramSnapshot snap;
  snap.count = h.count();
  snap.sum = h.sum();
  snap.max = h.max();
  for (size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    if (h.bucket(i) != 0) snap.buckets.resize(i + 1);
  }
  for (size_t i = 0; i < snap.buckets.size(); ++i) snap.buckets[i] = h.bucket(i);
  EXPECT_EQ(snap.Percentile(0.0), 42.0);
  EXPECT_EQ(snap.Percentile(0.5), 42.0);
  EXPECT_EQ(snap.Percentile(0.99), 42.0);
  EXPECT_EQ(snap.Percentile(1.0), 42.0);
}

TEST(PercentileTest, TopQuantileIsTheRecordedMax) {
  obs::HistogramSnapshot h;
  h.count = 100;
  h.sum = 5000;
  h.max = 900;
  h.buckets.assign(11, 0);
  h.buckets[6] = 90;   // values 32..63
  h.buckets[10] = 10;  // values 512..1023, max observed 900
  EXPECT_EQ(h.Percentile(1.0), 900.0);
  // p50 lands inside bucket 6 and stays within its range.
  double p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 63.0);
  // Monotone in q.
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.95));
  EXPECT_LE(h.Percentile(0.95), h.Percentile(1.0));
}

TEST(PercentileTest, ZeroOnlyObservationsStayZero) {
  obs::HistogramSnapshot h;
  h.count = 5;
  h.sum = 0;
  h.max = 0;
  h.buckets = {5};
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.Percentile(1.0), 0.0);
}

TEST(PercentileTest, OutOfRangeQuantilesClamp) {
  obs::HistogramSnapshot h;
  h.count = 1;
  h.max = 8;
  h.buckets.assign(5, 0);
  h.buckets[4] = 1;
  EXPECT_EQ(h.Percentile(-1.0), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(2.0), h.Percentile(1.0));
}

TEST(PercentileTest, BucketUpperBoundsMatchBitWidthBuckets) {
  EXPECT_EQ(obs::HistogramBucketUpperBound(0), 0u);
  EXPECT_EQ(obs::HistogramBucketUpperBound(1), 1u);
  EXPECT_EQ(obs::HistogramBucketUpperBound(2), 3u);
  EXPECT_EQ(obs::HistogramBucketUpperBound(3), 7u);
  EXPECT_EQ(obs::HistogramBucketUpperBound(10), 1023u);
  EXPECT_EQ(obs::HistogramBucketUpperBound(64), ~uint64_t{0});
}

// ------------------------------------------------- Prometheus exposition

TEST(PrometheusTest, ExpositionTypesAndSeriesAreWellFormed) {
  obs::MetricsSnapshot snap;
  snap.counters["governor.memcap.trips"] = 3;
  snap.gauges["pool.size"] = 8;
  obs::HistogramSnapshot h;
  h.count = 3;
  h.sum = 10;
  h.max = 7;
  h.buckets = {1, 1, 0, 1};  // values 0, 1, and one in 4..7
  snap.histograms["repl.eval.wall_us"] = h;
  const std::string text = snap.ToPrometheusText();

  // Counter: sanitized name, _total suffix, counter type.
  EXPECT_NE(
      text.find("# TYPE bagalg_governor_memcap_trips_total counter\n"
                "bagalg_governor_memcap_trips_total 3\n"),
      std::string::npos)
      << text;
  // Gauge: no suffix.
  EXPECT_NE(text.find("# TYPE bagalg_pool_size gauge\nbagalg_pool_size 8\n"),
            std::string::npos)
      << text;
  // Histogram: cumulative buckets with pow-2 le labels, +Inf, _sum, _count.
  EXPECT_NE(text.find("# TYPE bagalg_repl_eval_wall_us histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("bagalg_repl_eval_wall_us_bucket{le=\"0\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("bagalg_repl_eval_wall_us_bucket{le=\"1\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("bagalg_repl_eval_wall_us_bucket{le=\"3\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("bagalg_repl_eval_wall_us_bucket{le=\"7\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("bagalg_repl_eval_wall_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("bagalg_repl_eval_wall_us_sum 10"), std::string::npos)
      << text;
  EXPECT_NE(text.find("bagalg_repl_eval_wall_us_count 3"), std::string::npos)
      << text;
}

TEST(PrometheusTest, EveryRegisteredInstrumentAppearsInTheExposition) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 4)).ok());
  ASSERT_TRUE(runner.RunLine("count R").ok());
  obs::MetricsSnapshot snap = obs::GlobalMetrics().Snapshot();
  const std::string text = snap.ToPrometheusText();
  auto sanitized = [](const std::string& name) {
    std::string out = "bagalg_";
    for (char c : name) {
      const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         (c >= '0' && c <= '9') || c == '_' || c == ':';
      out.push_back(valid ? c : '_');
    }
    return out;
  };
  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(text.find(sanitized(name) + "_total "), std::string::npos)
        << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_NE(text.find(sanitized(name) + " "), std::string::npos) << name;
  }
  for (const auto& [name, h] : snap.histograms) {
    EXPECT_NE(text.find(sanitized(name) + "_count "), std::string::npos)
        << name;
    EXPECT_NE(text.find(sanitized(name) + "_bucket{le=\"+Inf\"} "),
              std::string::npos)
        << name;
  }
}

TEST(PrometheusTest, PromCommandWritesTheExposition) {
  lang::ScriptRunner runner;
  ASSERT_TRUE(runner.RunLine(LetAtoms("R", 4)).ok());
  ASSERT_TRUE(runner.RunLine("count R").ok());
  auto printed = runner.RunLine("\\prom");
  ASSERT_TRUE(printed.ok()) << printed.status();
  EXPECT_NE(printed->find("# TYPE "), std::string::npos);
  const std::string path = ::testing::TempDir() + "/obs_v2_metrics.prom";
  auto written = runner.RunLine("\\prom " + path);
  ASSERT_TRUE(written.ok()) << written.status();
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream contents;
  contents << file.rdbuf();
  EXPECT_NE(contents.str().find("bagalg_repl_statements_total"),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bagalg
