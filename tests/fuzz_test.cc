// Fuzz property suites over randomly generated well-typed expressions:
//  * type soundness: evaluation of a well-typed query never fails with a
//    type/argument error (only, possibly, ResourceExhausted), and the
//    result's dynamic type conforms to the static type;
//  * rewriter soundness: optimization preserves semantics exactly;
//  * genericity (paper §2): evaluation commutes with database isomorphisms;
//  * syntax round-trip: ToString output parses back to the same tree.

#include "src/stats/expr_gen.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/algebra/eval.h"
#include "src/algebra/rewrite.h"
#include "src/algebra/typecheck.h"
#include "src/core/iso.h"
#include "src/lang/parser.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

namespace bagalg {
namespace {

Schema FuzzSchema() {
  Type tup1 = Type::Tuple({Type::Atom()});
  Type tup2 = Type::Tuple({Type::Atom(), Type::Atom()});
  return Schema{{"R", Type::Bag(tup1)}, {"S", Type::Bag(tup2)}};
}

Database RandomDbForSchema(Rng& rng) {
  FlatBagSpec spec1;
  spec1.arity = 1;
  spec1.num_atoms = 3;
  spec1.num_elements = 3;
  spec1.max_mult = 2;
  FlatBagSpec spec2 = spec1;
  spec2.arity = 2;
  Database db;
  Status st = db.Put("R", RandomFlatBag(rng, spec1));
  EXPECT_TRUE(st.ok());
  st = db.Put("S", RandomFlatBag(rng, spec2));
  EXPECT_TRUE(st.ok());
  st = db.Declare("R", Type::Bag(Type::Tuple({Type::Atom()})));
  EXPECT_TRUE(st.ok());
  st = db.Declare("S", Type::Bag(Type::Tuple({Type::Atom(), Type::Atom()})));
  EXPECT_TRUE(st.ok());
  return db;
}

Limits FuzzLimits() {
  Limits limits;
  limits.max_distinct = 1u << 14;
  limits.max_powerset_results = 1u << 12;
  limits.max_mult_bits = 1u << 12;
  limits.max_eval_steps = 200000;
  return limits;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, WellTypedQueriesDoNotGoWrong) {
  Rng rng(GetParam());
  Schema schema = FuzzSchema();
  Evaluator eval(FuzzLimits());
  ExprGenOptions options;
  options.allow_nest = true;  // exercise the §7 extensions too
  int evaluated = 0;
  for (int i = 0; i < 60; ++i) {
    auto e = RandomExpr(rng, schema, options);
    ASSERT_TRUE(e.ok()) << e.status();
    auto static_type = TypeOf(*e, schema);
    ASSERT_TRUE(static_type.ok()) << e->ToString();
    Database db = RandomDbForSchema(rng);
    auto r = eval.EvalToBag(*e, db);
    if (!r.ok()) {
      // The only acceptable failure mode for a statically well-typed
      // query is a resource budget miss.
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
          << e->ToString() << "\n" << r.status();
      continue;
    }
    ++evaluated;
    EXPECT_TRUE(static_type->Accepts(r->type()))
        << "static " << static_type->ToString() << " vs dynamic "
        << r->type().ToString() << " for " << e->ToString();
  }
  EXPECT_GT(evaluated, 20);  // the budget shouldn't kill everything
}

TEST_P(FuzzTest, OptimizerPreservesSemantics) {
  Rng rng(GetParam() ^ 0xaaaa);
  Schema schema = FuzzSchema();
  Evaluator eval(FuzzLimits());
  ExprGenOptions options;
  options.allow_nest = true;
  for (int i = 0; i < 40; ++i) {
    auto e = RandomExpr(rng, schema, options);
    ASSERT_TRUE(e.ok());
    auto optimized = Optimize(*e, schema);
    ASSERT_TRUE(optimized.ok()) << e->ToString();
    Database db = RandomDbForSchema(rng);
    auto r1 = eval.EvalToBag(*e, db);
    auto r2 = eval.EvalToBag(*optimized, db);
    if (!r1.ok() || !r2.ok()) continue;  // budget miss on either side
    EXPECT_EQ(*r1, *r2) << "original:  " << e->ToString()
                        << "\noptimized: " << optimized->ToString();
  }
}

TEST_P(FuzzTest, EvaluationIsGeneric) {
  // Paper §2: queries are generic — h(Q(DB)) == Q(h(DB)) for any
  // isomorphism h, as long as h fixes the constants mentioned by Q. We
  // permute only atoms that do NOT appear in the expression's literals.
  Rng rng(GetParam() ^ 0xbbbb);
  Schema schema = FuzzSchema();
  Evaluator eval(FuzzLimits());
  for (int i = 0; i < 30; ++i) {
    auto e = RandomExpr(rng, schema);
    ASSERT_TRUE(e.ok());
    Database db = RandomDbForSchema(rng);
    // Atoms used in the database but not hard-coded in the expression.
    std::unordered_set<AtomId> db_atoms;
    for (const auto& [name, bag] : db.instances()) {
      (void)name;
      CollectAtoms(bag, &db_atoms);
    }
    std::unordered_set<AtomId> expr_atoms;
    std::function<void(const Expr&)> collect = [&](const Expr& x) {
      if (x->kind == ExprKind::kConst) CollectAtoms(*x->literal, &expr_atoms);
      for (const Expr& c : x->children) collect(c);
    };
    collect(*e);
    std::vector<AtomId> movable;
    for (AtomId a : db_atoms) {
      if (expr_atoms.count(a) == 0) movable.push_back(a);
    }
    Isomorphism h = Isomorphism::RandomPermutation(movable, rng);
    Database permuted;
    for (const auto& [name, bag] : db.instances()) {
      auto renamed = h.Apply(bag);
      ASSERT_TRUE(renamed.ok());
      ASSERT_TRUE(permuted.Put(name, std::move(renamed).value()).ok());
      ASSERT_TRUE(permuted.Declare(name, db.schema().at(name)).ok());
    }
    auto r1 = eval.EvalToBag(*e, db);
    auto r2 = eval.EvalToBag(*e, permuted);
    if (!r1.ok() || !r2.ok()) continue;
    auto h_r1 = h.Apply(*r1);
    ASSERT_TRUE(h_r1.ok());
    EXPECT_EQ(*h_r1, *r2) << e->ToString();
  }
}

TEST_P(FuzzTest, SurfaceSyntaxRoundTrips) {
  Rng rng(GetParam() ^ 0xcccc);
  Schema schema = FuzzSchema();
  for (int i = 0; i < 40; ++i) {
    auto e = RandomExpr(rng, schema);
    ASSERT_TRUE(e.ok());
    std::string text = e->ToString();
    auto parsed = lang::ParseExpr(text);
    ASSERT_TRUE(parsed.ok()) << text << "\n" << parsed.status();
    EXPECT_TRUE(ExprEquals(*e, *parsed)) << text;
  }
}

TEST_P(FuzzTest, PowerbagEnabledStillSound) {
  Rng rng(GetParam() ^ 0xdddd);
  Schema schema = FuzzSchema();
  ExprGenOptions options;
  options.allow_powerbag = true;
  options.growth_rounds = 8;
  Evaluator eval(FuzzLimits());
  for (int i = 0; i < 30; ++i) {
    auto e = RandomExpr(rng, schema, options);
    ASSERT_TRUE(e.ok());
    Database db = RandomDbForSchema(rng);
    auto r = eval.EvalToBag(*e, db);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
          << e->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005));

}  // namespace
}  // namespace bagalg
