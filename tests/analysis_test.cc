// Tests for the analysis substrate: BigInt, integer polynomials, and the
// Proposition 4.1 abstract count interpreter — validated against the
// concrete evaluator on an expression zoo (the paper's central §4 lemma,
// mechanized), plus the Prop 4.5 bag-even argument via finite differences.

#include "src/analysis/count_analysis.h"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/analysis/polynomial.h"
#include "src/core/iso.h"
#include "src/util/bigint.h"

namespace bagalg {
namespace {

using analysis::AnalyzeCounts;
using analysis::CountAnalysis;
using analysis::IsPolynomialSequence;
using analysis::Polynomial;

Value A(const char* name) { return MakeAtom(name); }

// ---------------------------------------------------------------- BigInt

TEST(BigIntTest, ConstructionAndSigns) {
  EXPECT_TRUE(BigInt().IsZero());
  EXPECT_TRUE(BigInt(5).IsPositive());
  EXPECT_TRUE(BigInt(-5).IsNegative());
  EXPECT_EQ(BigInt(-5).ToString(), "-5");
  EXPECT_TRUE(BigInt(true, BigNat(0)).IsZero());  // no negative zero
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, Arithmetic) {
  EXPECT_EQ(BigInt(3) + BigInt(-5), BigInt(-2));
  EXPECT_EQ(BigInt(-3) + BigInt(-5), BigInt(-8));
  EXPECT_EQ(BigInt(3) - BigInt(-5), BigInt(8));
  EXPECT_EQ(BigInt(-3) * BigInt(-5), BigInt(15));
  EXPECT_EQ(BigInt(-3) * BigInt(5), BigInt(-15));
  EXPECT_EQ(-BigInt(7), BigInt(-7));
}

TEST(BigIntTest, ComparisonTotalOrder) {
  EXPECT_LT(BigInt(-10), BigInt(-2));
  EXPECT_LT(BigInt(-2), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(3));
  EXPECT_EQ(BigInt(4).Compare(BigInt(4)), 0);
}

TEST(BigIntTest, ToBigNatRejectsNegatives) {
  EXPECT_TRUE(BigInt(4).ToBigNat().ok());
  EXPECT_FALSE(BigInt(-4).ToBigNat().ok());
}

// ------------------------------------------------------------- Polynomial

TEST(PolynomialTest, ConstructionNormalization) {
  Polynomial p({BigInt(1), BigInt(0), BigInt(0)});
  EXPECT_EQ(p.Degree(), 0u);
  EXPECT_TRUE(Polynomial({BigInt(0)}).IsZero());
  EXPECT_EQ(Polynomial::Identity().Degree(), 1u);
}

TEST(PolynomialTest, ArithmeticAndEval) {
  // (n + 1)(n - 1) = n^2 - 1.
  Polynomial np1({BigInt(1), BigInt(1)});
  Polynomial nm1({BigInt(-1), BigInt(1)});
  Polynomial prod = np1 * nm1;
  EXPECT_EQ(prod, Polynomial({BigInt(-1), BigInt(0), BigInt(1)}));
  EXPECT_EQ(prod.Eval(BigNat(5)), BigInt(24));
  EXPECT_EQ((np1 + nm1).Eval(BigNat(10)), BigInt(20));
  EXPECT_EQ((np1 - nm1), Polynomial::Constant(BigInt(2)));
}

TEST(PolynomialTest, ToStringReadable) {
  Polynomial p({BigInt(-3), BigInt(1), BigInt(2)});
  EXPECT_EQ(p.ToString(), "2n^2 + n - 3");
  EXPECT_EQ(Polynomial().ToString(), "0");
  EXPECT_EQ(Polynomial::Identity().ToString(), "n");
}

TEST(PolynomialTest, StablePositivityPoint) {
  // n^2 - 4 is positive exactly from n = 3 on.
  Polynomial p({BigInt(-4), BigInt(0), BigInt(1)});
  EXPECT_EQ(p.StablePositivityPoint(), BigNat(3));
  // -n + 10: positive until 9, non-positive from 10 on.
  Polynomial q({BigInt(10), BigInt(-1)});
  EXPECT_FALSE(q.EventuallyPositive());
  EXPECT_EQ(q.StablePositivityPoint(), BigNat(10));
  // Constants.
  EXPECT_EQ(Polynomial::Constant(BigInt(7)).StablePositivityPoint(),
            BigNat(0));
}

TEST(PolynomialTest, FiniteDifferencesDetectPolynomials) {
  // Samples of n^2 at n = 0..6.
  std::vector<BigInt> squares;
  for (int64_t n = 0; n <= 6; ++n) squares.push_back(BigInt(n * n));
  EXPECT_TRUE(IsPolynomialSequence(squares, 2));
  EXPECT_FALSE(IsPolynomialSequence(squares, 1));
  // 2^n is not polynomial of any small degree.
  std::vector<BigInt> powers;
  for (int64_t n = 0; n <= 10; ++n) powers.push_back(BigInt(int64_t{1} << n));
  for (size_t d = 0; d <= 8; ++d) {
    EXPECT_FALSE(IsPolynomialSequence(powers, d)) << d;
  }
}

// ----------------------------------------------- Prop 4.1 count analysis

/// Checks the analysis against concrete evaluation on B_n for a window of n.
void VerifyAnalysis(const Expr& e, uint64_t max_n) {
  Value a = A("a");
  auto analysis = AnalyzeCounts(e, "B", a);
  ASSERT_TRUE(analysis.ok()) << analysis.status() << " for " << e.ToString();
  uint64_t start = analysis->UniformValidFrom().ToUint64().value();
  Evaluator eval;
  for (uint64_t n = start; n <= start + max_n; ++n) {
    Database db;
    ASSERT_TRUE(db.Put("B", NCopies(Mult(n), Value::Tuple({a}))).ok());
    auto out = eval.EvalToBag(e, db);
    ASSERT_TRUE(out.ok()) << e.ToString();
    // Every concrete entry must match its polynomial...
    for (const BagEntry& entry : out->entries()) {
      BigInt predicted = analysis->CountOf(entry.value).poly.Eval(BigNat(n));
      EXPECT_EQ(predicted, BigInt(entry.count))
          << "tuple " << entry.value.ToString() << " at n=" << n << " in "
          << e.ToString();
    }
    // ...and every tracked tuple must match the concrete count.
    for (const auto& [t, cf] : analysis->counts) {
      EXPECT_EQ(BigInt(out->CountOf(t)), cf.poly.Eval(BigNat(n)))
          << "tuple " << t.ToString() << " at n=" << n << " in "
          << e.ToString();
    }
  }
}

TEST(CountAnalysisTest, InputIsIdentityPolynomial) {
  Value a = A("a");
  auto r = AnalyzeCounts(Input("B"), "B", a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->CountOf(Value::Tuple({a})).poly, Polynomial::Identity());
}

TEST(CountAnalysisTest, ZooAgreesWithConcreteEvaluation) {
  Value a = A("a");
  Expr B = Input("B");
  Bag c1 = MakeBag({{Value::Tuple({A("c")}), 2}});
  std::vector<Expr> zoo = {
      B,
      Uplus(B, B),
      Product(B, B),
      Product(Uplus(B, ConstBag(c1)), B),
      Monus(Product(B, B), Product(B, ConstBag(c1))),  // n^2 - 2n (event. +)
      Monus(B, Map(Tup({Proj(Var(0), 1)}), Product(B, B))),  // eventually 0
      Map(Tup({Proj(Var(0), 1), Proj(Var(0), 1)}), B),
      Select(Proj(Var(0), 1), ConstExpr(A("a")), B),
      Select(Proj(Var(0), 1), ConstExpr(A("zzz")), B),
      Umax(Product(B, B), Product(B, Uplus(B, B))),  // max(n^2, 2n^2)
      Inter(Map(Tup({Proj(Var(0), 1)}), Product(B, B)),
            Uplus(B, B)),                         // min(n^2, 2n) = 2n, n>=2
      Eps(Uplus(B, ConstBag(c1))),
      Map(Tup({ConstExpr(A("k"))}), Product(B, B)),  // all collapse: n^2
      Monus(Uplus(B, B), Uplus(B, ConstBag(c1))),    // 2n - (n... mixed keys
  };
  for (const Expr& e : zoo) {
    VerifyAnalysis(e, 4);
  }
}

TEST(CountAnalysisTest, FreshConstantHasZeroConstantTerm) {
  // The claim: if tuple t contains the fresh constant a, then k0 = 0.
  Value a = A("a");
  Expr B = Input("B");
  std::vector<Expr> zoo = {
      B,
      Product(B, B),
      Uplus(B, Map(Tup({Proj(Var(0), 1), ConstExpr(A("c"))}), B)),
  };
  for (const Expr& e : zoo) {
    auto r = AnalyzeCounts(e, "B", a);
    ASSERT_TRUE(r.ok());
    for (const auto& [t, cf] : r->counts) {
      std::unordered_set<AtomId> atoms;
      CollectAtoms(t, &atoms);
      if (atoms.count(a.atom_id()) != 0) {
        EXPECT_TRUE(cf.poly.ConstantTerm().IsZero())
            << t.ToString() << " in " << e.ToString();
      }
    }
  }
}

TEST(CountAnalysisTest, RejectsOperatorsOutsideFragment) {
  Value a = A("a");
  EXPECT_FALSE(AnalyzeCounts(Pow(Input("B")), "B", a).ok());
  EXPECT_FALSE(AnalyzeCounts(Destroy(Input("B")), "B", a).ok());
  EXPECT_FALSE(AnalyzeCounts(Input("C"), "B", a).ok());
  EXPECT_FALSE(
      AnalyzeCounts(TransitiveClosure(Input("B")), "B", a).ok());
}

TEST(CountAnalysisTest, DupElimRuleMatchesProp45Induction) {
  // ε(B ⊎ B) over B_n: the single tuple [a] has polynomial 1.
  Value a = A("a");
  Expr e = Eps(Uplus(Input("B"), Input("B")));
  auto r = AnalyzeCounts(e, "B", a);
  ASSERT_TRUE(r.ok());
  auto cf = r->CountOf(Value::Tuple({a}));
  EXPECT_EQ(cf.poly, Polynomial::Constant(BigInt(1)));
  VerifyAnalysis(e, 4);
}

TEST(CountAnalysisTest, BagEvenCountFunctionIsNotPolynomial) {
  // Prop 4.5: bag-even(B_n) = B_n if n even, ∅ otherwise. Its count
  // function f(n) = n·[n even] admits no polynomial of any degree d (its
  // (d+1)-th finite differences never vanish), while every BALG¹
  // expression's count function does — hence bag-even ∉ BALG¹.
  std::vector<BigInt> bag_even;
  for (int64_t n = 0; n <= 30; ++n) {
    bag_even.push_back(BigInt(n % 2 == 0 ? n : 0));
  }
  for (size_t d = 0; d <= 12; ++d) {
    EXPECT_FALSE(IsPolynomialSequence(bag_even, d)) << "degree " << d;
  }
  // Control: every analysis-produced polynomial *does* pass the test.
  Value a = A("a");
  Expr e = Monus(Product(Input("B"), Input("B")), Input("B"));
  auto r = AnalyzeCounts(e, "B", a);
  ASSERT_TRUE(r.ok());
  for (const auto& [t, cf] : r->counts) {
    (void)t;
    std::vector<BigInt> samples;
    uint64_t start = cf.valid_from.ToUint64().value();
    for (uint64_t n = start; n < start + cf.poly.Degree() + 4; ++n) {
      samples.push_back(cf.poly.Eval(BigNat(n)));
    }
    EXPECT_TRUE(IsPolynomialSequence(samples, cf.poly.Degree()));
  }
}

TEST(CountAnalysisTest, Prop41MonusNeedsCareAtSmallN) {
  // (B ⊎ B) − π1(B×B): counts max(0, 2n − n²) for the tuple [a] — positive
  // at n = 1, zero from n = 2 on. The monus rule must eliminate the tuple
  // *and* raise the zero floor to at least 2 so the small-n disagreement is
  // outside the claimed validity window.
  Value a = A("a");
  Expr two_b = Uplus(Input("B"), Input("B"));
  Expr n_squared_flat =
      Map(Tup({Proj(Var(0), 1)}), Product(Input("B"), Input("B")));
  Expr e = Monus(two_b, n_squared_flat);
  auto r = AnalyzeCounts(e, "B", a);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->CountOf(Value::Tuple({a})).poly.IsZero());
  EXPECT_GE(r->UniformValidFrom(), BigNat(2));
  VerifyAnalysis(e, 5);
}

}  // namespace
}  // namespace bagalg
