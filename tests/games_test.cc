// Tests for the Lemma 5.4 / Theorem 5.2 machinery: the Fig 1 star graphs,
// the In_n/Out_n balanced-split property (1), the Φ query's behaviour in
// the algebra (BALG², nested input), and the [GV90] pebble game showing the
// duplicator wins while Φ distinguishes the structures.

#include "src/games/pebble_game.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/algebra/typecheck.h"
#include "src/games/structures.h"

namespace bagalg {
namespace {

using games::BalancedSplitHolds;
using games::BuildFig1StarGraphs;
using games::CompletionDomain;
using games::EdgesAsBag;
using games::InDegree;
using games::OutDegree;
using games::PebbleGame;
using games::StarGraphs;
using games::Structure;

TEST(StarGraphTest, RejectsBadN) {
  EXPECT_FALSE(BuildFig1StarGraphs(3).ok());
  EXPECT_FALSE(BuildFig1StarGraphs(5).ok());
  EXPECT_FALSE(BuildFig1StarGraphs(2).ok());
  EXPECT_TRUE(BuildFig1StarGraphs(4).ok());
}

TEST(StarGraphTest, SizesMatchThePaper) {
  for (int n = 4; n <= 10; n += 2) {
    auto g = BuildFig1StarGraphs(n);
    ASSERT_TRUE(g.ok());
    // |In_n| = |Out_n| = 2^{n/2 - 1}; total non-central nodes 2^{n/2}.
    size_t expected = size_t{1} << (n / 2 - 1);
    EXPECT_EQ(g->in_nodes.size(), expected) << n;
    EXPECT_EQ(g->out_nodes.size(), expected) << n;
    // Every node is an n/2-subset; α is the full set.
    for (const Value& v : g->in_nodes) {
      EXPECT_EQ(v.bag().TotalCount(), Mult(n / 2));
    }
    EXPECT_EQ(g->alpha.bag().TotalCount(), Mult(n));
    // Star shape: 2^{n/2} edges, all incident to α.
    EXPECT_EQ(g->g.edges.size(), 2 * expected);
    for (const auto& [u, v] : g->g.edges) {
      EXPECT_TRUE(u == g->alpha || v == g->alpha);
    }
  }
}

TEST(StarGraphTest, BalancedSplitPropertyOne) {
  // Property (1): each atom belongs to exactly half the sets of In_n and
  // half the sets of Out_n.
  for (int n = 4; n <= 12; n += 2) {
    auto g = BuildFig1StarGraphs(n);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(BalancedSplitHolds(g->in_nodes, n)) << "In_" << n;
    EXPECT_TRUE(BalancedSplitHolds(g->out_nodes, n)) << "Out_" << n;
    // And In_n ∩ Out_n = ∅ (they are different node classes).
    for (const Value& v : g->in_nodes) {
      EXPECT_EQ(std::count(g->out_nodes.begin(), g->out_nodes.end(), v), 0);
    }
  }
}

TEST(StarGraphTest, DegreesDifferExactlyAsConstructed) {
  auto g = BuildFig1StarGraphs(6);
  ASSERT_TRUE(g.ok());
  size_t half = g->in_nodes.size();
  EXPECT_EQ(InDegree(g->g, g->alpha), half);
  EXPECT_EQ(OutDegree(g->g, g->alpha), half);
  EXPECT_EQ(InDegree(g->g_prime, g->alpha), half + 1);
  EXPECT_EQ(OutDegree(g->g_prime, g->alpha), half - 1);
}

TEST(StarGraphTest, PhiQueryDistinguishesTheGraphsInBalg2) {
  // Φ — "in-degree(α) > out-degree(α)" — is a BALG² query on the nested
  // input; it is false on G, true on G' (Theorem 5.2's separating query).
  auto g = BuildFig1StarGraphs(6);
  ASSERT_TRUE(g.ok());
  Expr phi = InDegreeGreaterThanOut(Input("G"), g->alpha);

  Database db_g;
  ASSERT_TRUE(db_g.Put("G", EdgesAsBag(g->g)).ok());
  Database db_gp;
  ASSERT_TRUE(db_gp.Put("G", EdgesAsBag(g->g_prime)).ok());

  // Fragment check: the query types live in BALG² (nested input).
  ASSERT_TRUE(CheckFragment(phi, db_g.schema(), 2).ok());

  Evaluator eval;
  auto on_g = eval.EvalToBag(phi, db_g);
  auto on_gp = eval.EvalToBag(phi, db_gp);
  ASSERT_TRUE(on_g.ok());
  ASSERT_TRUE(on_gp.ok());
  EXPECT_TRUE(on_g->empty());
  EXPECT_FALSE(on_gp->empty());
}

TEST(CompletionTest, DomainHoldsAtomsAndAllSets) {
  Structure s;
  s.atoms = {GlobalAtom("q1"), GlobalAtom("q2"), GlobalAtom("q3")};
  auto domain = CompletionDomain(s);
  EXPECT_EQ(domain.size(), 3u + 8u);
  size_t set_count = 0;
  for (const Value& v : domain) {
    if (v.IsBag()) {
      ++set_count;
      EXPECT_TRUE(v.bag().IsSetLike());
    }
  }
  EXPECT_EQ(set_count, 8u);
}

TEST(PebbleGameTest, ConsistencyChecksLogicalPredicates) {
  Structure sa, sb;
  sa.atoms = {GlobalAtom("p1"), GlobalAtom("p2")};
  sb.atoms = sa.atoms;
  PebbleGame game(sa, sb);
  Value a1 = Value::Atom(sa.atoms[0]);
  Value a2 = Value::Atom(sa.atoms[1]);
  Value set1 = Value::FromBag(MakeBagOf({a1}));
  Value set2 = Value::FromBag(MakeBagOf({a2}));
  // Mapping (a1 -> a1, {a1} -> {a1}) is consistent.
  EXPECT_TRUE(game.ConsistentMap({{a1, a1}, {set1, set1}}));
  // Mapping (a1 -> a1, {a1} -> {a2}) breaks membership.
  EXPECT_FALSE(game.ConsistentMap({{a1, a1}, {set1, set2}}));
  // Kind mismatch.
  EXPECT_FALSE(game.ConsistentMap({{a1, set1}}));
  // Equality preservation: two distinct objects cannot merge.
  EXPECT_FALSE(game.ConsistentMap({{a1, a1}, {a2, a1}}));
}

TEST(PebbleGameTest, IdenticalStructuresAlwaysDraw) {
  Structure s;
  s.atoms = {GlobalAtom("r1"), GlobalAtom("r2")};
  Value a1 = Value::Atom(s.atoms[0]);
  Value a2 = Value::Atom(s.atoms[1]);
  s.edges = {{a1, a2}};
  PebbleGame game(s, s);
  EXPECT_TRUE(game.DuplicatorWins(1));
  EXPECT_TRUE(game.DuplicatorWins(2));
}

TEST(PebbleGameTest, SpoilerWinsOnDistinguishableAtomStructures) {
  // A has an edge, B has none: the spoiler exposes it in 2 moves (and the
  // duplicator survives 0 moves trivially).
  Structure sa, sb;
  sa.atoms = {GlobalAtom("s1"), GlobalAtom("s2")};
  sb.atoms = sa.atoms;
  Value a1 = Value::Atom(sa.atoms[0]);
  Value a2 = Value::Atom(sa.atoms[1]);
  sa.edges = {{a1, a2}};
  PebbleGame game(sa, sb);
  EXPECT_TRUE(game.DuplicatorWins(0));
  EXPECT_FALSE(game.DuplicatorWins(2));
}

TEST(PebbleGameTest, DuplicatorWinsOneMoveOnFig1) {
  // Lemma 5.4 with k = 1, n = 4 (n > 2^k): Φ distinguishes G and G' but
  // the duplicator survives one move.
  auto g = BuildFig1StarGraphs(4);
  ASSERT_TRUE(g.ok());
  PebbleGame game(g->g, g->g_prime);
  EXPECT_TRUE(game.DuplicatorWins(1));
  EXPECT_GT(game.stats().states_explored, 0u);
}

TEST(PebbleGameTest, SpoilerEventuallyWinsOnSmallN) {
  // With n = 4 and enough moves the spoiler can pin down the inverted
  // edge (the lemma only protects n > 2^k · l).
  auto g = BuildFig1StarGraphs(4);
  ASSERT_TRUE(g.ok());
  PebbleGame game(g->g, g->g_prime);
  EXPECT_FALSE(game.DuplicatorWins(3));
}

}  // namespace
}  // namespace bagalg
