// Tests for the algebraic rewriter (§3 optimization discussion): each rule
// fires where expected, and — the load-bearing property — rewriting never
// changes query semantics on random databases.

#include "src/algebra/rewrite.h"

#include <gtest/gtest.h>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

namespace bagalg {
namespace {

Value A(const char* name) { return MakeAtom(name); }

Schema TestSchema() {
  Type tup2 = Type::Tuple({Type::Atom(), Type::Atom()});
  return Schema{{"B", Type::Bag(tup2)}, {"C", Type::Bag(tup2)}};
}

TEST(RewriteTest, ExprEqualsDistinguishesStructure) {
  EXPECT_TRUE(ExprEquals(Input("B"), Input("B")));
  EXPECT_FALSE(ExprEquals(Input("B"), Input("C")));
  EXPECT_TRUE(ExprEquals(Uplus(Input("B"), Input("C")),
                         Uplus(Input("B"), Input("C"))));
  EXPECT_FALSE(ExprEquals(Uplus(Input("B"), Input("C")),
                          Uplus(Input("C"), Input("B"))));
  EXPECT_TRUE(ExprEquals(Proj(Var(0), 1), Proj(Var(0), 1)));
  EXPECT_FALSE(ExprEquals(Proj(Var(0), 1), Proj(Var(0), 2)));
}

TEST(RewriteTest, UnionWithEmptyConstEliminated) {
  Schema s = TestSchema();
  Expr empty = ConstBag(Bag(Type::Tuple({Type::Atom(), Type::Atom()})));
  std::map<std::string, size_t> applied;
  auto r = Optimize(Uplus(Input("B"), empty), s, RewriteOptions{}, &applied);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ExprEquals(*r, Input("B")));
  EXPECT_EQ(applied["union-empty"], 1u);
}

TEST(RewriteTest, IdempotentIntersectAndUmax) {
  Schema s = TestSchema();
  auto r1 = Optimize(Inter(Input("B"), Input("B")), s);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(ExprEquals(*r1, Input("B")));
  auto r2 = Optimize(Umax(Input("B"), Input("B")), s);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(ExprEquals(*r2, Input("B")));
  // But ⊎ is NOT idempotent on bags — must not be rewritten.
  auto r3 = Optimize(Uplus(Input("B"), Input("B")), s);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(ExprEquals(*r3, Uplus(Input("B"), Input("B"))));
}

TEST(RewriteTest, DedupRules) {
  Schema s = TestSchema();
  auto r1 = Optimize(Eps(Eps(Input("B"))), s);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(ExprEquals(*r1, Eps(Input("B"))));
  // ε after P is a no-op (P outputs are duplicate-free).
  auto r2 = Optimize(Eps(Pow(Input("B"))), s);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(ExprEquals(*r2, Pow(Input("B"))));
}

TEST(RewriteTest, DestroyMapBetaIsIdentity) {
  Schema s = TestSchema();
  auto r = Optimize(Destroy(Map(Beta(Var(0)), Input("B"))), s);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ExprEquals(*r, Input("B")));
}

TEST(RewriteTest, SelectTautologyEliminated) {
  Schema s = TestSchema();
  // σ_{α1=α1}(B) always holds (well-typed inputs): drop the selection.
  std::map<std::string, size_t> applied;
  auto r = Optimize(Select(Proj(Var(0), 1), Proj(Var(0), 1), Input("B")), s,
                    RewriteOptions{}, &applied);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ExprEquals(*r, Input("B")));
  EXPECT_EQ(applied["select-tautology"], 1u);
  // Distinct attributes are kept.
  auto kept = Optimize(Select(Proj(Var(0), 1), Proj(Var(0), 2), Input("B")), s);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ((*kept)->kind, ExprKind::kSelect);
}

TEST(RewriteTest, SelectionDistributesOverMerges) {
  Schema s = TestSchema();
  Expr sel = Select(Proj(Var(0), 1), Proj(Var(0), 2),
                    Uplus(Input("B"), Input("C")));
  std::map<std::string, size_t> applied;
  auto r = Optimize(sel, s, RewriteOptions{}, &applied);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(applied["select-distribute"], 1u);
  EXPECT_EQ((*r)->kind, ExprKind::kAdditiveUnion);
  EXPECT_EQ((*r)->children[0]->kind, ExprKind::kSelect);
}

TEST(RewriteTest, SelectionPushesIntoProductLeft) {
  Schema s = TestSchema();
  // Predicate touches only attributes 1,2 = the left operand of B × C.
  Expr sel = Select(Proj(Var(0), 1), Proj(Var(0), 2),
                    Product(Input("B"), Input("C")));
  std::map<std::string, size_t> applied;
  auto r = Optimize(sel, s, RewriteOptions{}, &applied);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(applied["select-push-left"], 1u);
  EXPECT_EQ((*r)->kind, ExprKind::kProduct);
  EXPECT_EQ((*r)->children[0]->kind, ExprKind::kSelect);
  EXPECT_TRUE(ExprEquals((*r)->children[1], Input("C")));
}

TEST(RewriteTest, SelectionPushesIntoProductRightWithReindexing) {
  Schema s = TestSchema();
  // Predicate touches attributes 3,4 = the right operand.
  Expr sel = Select(Proj(Var(0), 3), Proj(Var(0), 4),
                    Product(Input("B"), Input("C")));
  std::map<std::string, size_t> applied;
  auto r = Optimize(sel, s, RewriteOptions{}, &applied);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(applied["select-push-right"], 1u);
  EXPECT_EQ((*r)->kind, ExprKind::kProduct);
  const Expr& pushed = (*r)->children[1];
  ASSERT_EQ(pushed->kind, ExprKind::kSelect);
  // Attribute indices were shifted 3,4 -> 1,2.
  EXPECT_EQ(pushed->children[0]->index, 1u);
  EXPECT_EQ(pushed->children[1]->index, 2u);
}

TEST(RewriteTest, CrossOperandPredicateNotPushed) {
  Schema s = TestSchema();
  Expr sel = Select(Proj(Var(0), 1), Proj(Var(0), 3),
                    Product(Input("B"), Input("C")));
  auto r = Optimize(sel, s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->kind, ExprKind::kSelect);
}

TEST(RewriteTest, ConstantFoldingEvaluatesClosedSubtrees) {
  Schema s = TestSchema();
  Bag one = MakeBagOf({MakeTuple({A("k")})});
  Expr closed = Uplus(ConstBag(one), ConstBag(one));
  std::map<std::string, size_t> applied;
  auto r = Optimize(Product(Input("B"), closed), s, RewriteOptions{},
                    &applied);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(applied["constant-fold"], 1u);
  EXPECT_EQ((*r)->children[1]->kind, ExprKind::kConst);
  EXPECT_EQ((*r)->children[1]->literal->bag().TotalCount(), Mult(2));
}

class RewriteEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewriteEquivalenceTest, OptimizationPreservesSemantics) {
  Rng rng(GetParam());
  FlatBagSpec spec;
  Schema s = TestSchema();
  Value unit = A("u");
  // A zoo of expressions mixing every rule's trigger shape.
  std::vector<Expr> zoo = {
      Select(Proj(Var(0), 1), Proj(Var(0), 2),
             Uplus(Input("B"), Input("C"))),
      Select(Proj(Var(0), 1), Proj(Var(0), 2),
             Product(Input("B"), Input("C"))),
      Select(Proj(Var(0), 3), Proj(Var(0), 3),
             Product(Input("B"), Input("C"))),
      Eps(Eps(Monus(Input("B"), Input("C")))),
      Destroy(Map(Beta(Var(0)), Inter(Input("B"), Input("B")))),
      Umax(Uplus(Input("B"), ConstBag(Bag(Type::Tuple(
                                 {Type::Atom(), Type::Atom()})))),
           Input("C")),
      CardGreater(ProjectAttrs(Input("B"), {1}),
                  ProjectAttrs(Input("C"), {2})),
      CountAgg(Select(Proj(Var(0), 1), Proj(Var(0), 2),
                      Inter(Input("B"), Input("C"))),
               unit),
  };
  for (int i = 0; i < 8; ++i) {
    Database db;
    ASSERT_TRUE(db.Put("B", RandomFlatBag(rng, spec)).ok());
    ASSERT_TRUE(db.Put("C", RandomFlatBag(rng, spec)).ok());
    ASSERT_TRUE(db.Declare("B", s["B"]).ok());
    ASSERT_TRUE(db.Declare("C", s["C"]).ok());
    for (const Expr& e : zoo) {
      auto optimized = Optimize(e, s);
      ASSERT_TRUE(optimized.ok()) << e.ToString();
      Evaluator ev1, ev2;
      auto r1 = ev1.EvalToBag(e, db);
      auto r2 = ev2.EvalToBag(*optimized, db);
      ASSERT_TRUE(r1.ok()) << e.ToString();
      ASSERT_TRUE(r2.ok()) << optimized->ToString();
      EXPECT_EQ(*r1, *r2) << "original: " << e.ToString()
                          << "\noptimized: " << optimized->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEquivalenceTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace bagalg
