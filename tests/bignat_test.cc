// Unit and property tests for BigNat, the arbitrary-precision multiplicity
// type. Cross-checks all arithmetic against 64-bit reference computations on
// random operands, plus exact large-number identities.

#include "src/util/bignat.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace bagalg {
namespace {

TEST(BigNatTest, DefaultIsZero) {
  BigNat n;
  EXPECT_TRUE(n.IsZero());
  EXPECT_EQ(n.ToString(), "0");
  EXPECT_EQ(n.BitLength(), 0u);
  EXPECT_EQ(n.ToUint64().value(), 0u);
}

TEST(BigNatTest, SmallConstruction) {
  BigNat n(42);
  EXPECT_FALSE(n.IsZero());
  EXPECT_EQ(n.ToString(), "42");
  EXPECT_EQ(n.ToUint64().value(), 42u);
  EXPECT_EQ(n.BitLength(), 6u);
}

TEST(BigNatTest, Uint64BoundaryConstruction) {
  BigNat n(~uint64_t{0});
  EXPECT_EQ(n.ToString(), "18446744073709551615");
  EXPECT_EQ(n.ToUint64().value(), ~uint64_t{0});
  EXPECT_EQ(n.BitLength(), 64u);
}

TEST(BigNatTest, AdditionCarriesAcrossLimbs) {
  BigNat a(~uint64_t{0});
  BigNat sum = a + BigNat(1);
  EXPECT_EQ(sum.ToString(), "18446744073709551616");
  EXPECT_FALSE(sum.FitsUint64());
  EXPECT_FALSE(sum.ToUint64().ok());
}

TEST(BigNatTest, MultiplicationLarge) {
  // (2^64)^2 = 2^128.
  BigNat a = BigNat(~uint64_t{0}) + BigNat(1);
  BigNat sq = a * a;
  EXPECT_EQ(sq, BigNat::TwoPow(128));
  EXPECT_EQ(sq.ToString(), "340282366920938463463374607431768211456");
}

TEST(BigNatTest, TwoPowMatchesRepeatedDoubling) {
  BigNat doubling(1);
  for (uint64_t i = 0; i <= 200; ++i) {
    EXPECT_EQ(BigNat::TwoPow(i), doubling) << "at exponent " << i;
    doubling = doubling + doubling;
  }
}

TEST(BigNatTest, PowMatchesRepeatedMultiplication) {
  BigNat base(7);
  BigNat acc(1);
  for (uint64_t e = 0; e < 40; ++e) {
    EXPECT_EQ(BigNat::Pow(base, e), acc) << "at exponent " << e;
    acc = acc * base;
  }
}

TEST(BigNatTest, MonusSaturatesAtZero) {
  EXPECT_EQ(BigNat(5).MonusSub(BigNat(7)), BigNat(0));
  EXPECT_EQ(BigNat(7).MonusSub(BigNat(5)), BigNat(2));
  EXPECT_EQ(BigNat(7).MonusSub(BigNat(7)), BigNat(0));
}

TEST(BigNatTest, CheckedSubUnderflowIsError) {
  auto r = BigNat(3).CheckedSub(BigNat(4));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BigNatTest, CheckedSubBorrowsAcrossLimbs) {
  BigNat big = BigNat::TwoPow(100);
  auto r = big.CheckedSub(BigNat(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r + BigNat(1), big);
  EXPECT_EQ(r->BitLength(), 100u);
}

TEST(BigNatTest, DivModByZeroIsError) {
  auto r = BigNat(10).DivMod(BigNat(0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BigNatTest, DivModSmallDivisor) {
  auto r = BigNat(1000001).DivMod(BigNat(10));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->quotient, BigNat(100000));
  EXPECT_EQ(r->remainder, BigNat(1));
}

TEST(BigNatTest, DivModLargeDivisor) {
  BigNat a = BigNat::Pow(BigNat(10), 50) + BigNat(123);
  BigNat d = BigNat::Pow(BigNat(10), 20);
  auto r = a.DivMod(d);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->quotient, BigNat::Pow(BigNat(10), 30));
  EXPECT_EQ(r->remainder, BigNat(123));
}

TEST(BigNatTest, FromDecimalRoundTrip) {
  const char* cases[] = {"0", "1", "999999999", "1000000000",
                         "340282366920938463463374607431768211456",
                         "00042"};
  const char* expected[] = {"0", "1", "999999999", "1000000000",
                            "340282366920938463463374607431768211456", "42"};
  for (size_t i = 0; i < 6; ++i) {
    auto r = BigNat::FromDecimal(cases[i]);
    ASSERT_TRUE(r.ok()) << cases[i];
    EXPECT_EQ(r->ToString(), expected[i]);
  }
}

TEST(BigNatTest, FromDecimalRejectsGarbage) {
  EXPECT_FALSE(BigNat::FromDecimal("").ok());
  EXPECT_FALSE(BigNat::FromDecimal("12x3").ok());
  EXPECT_FALSE(BigNat::FromDecimal("-5").ok());
}

TEST(BigNatTest, CompareTotalOrder) {
  BigNat a(3), b(5), c = BigNat::TwoPow(70);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(BigNat::Max(a, b), b);
  EXPECT_EQ(BigNat::Min(a, c), a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(c >= b);
}

TEST(BigNatTest, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigNat(12345).ToDouble(), 12345.0);
  double big = BigNat::TwoPow(80).ToDouble();
  EXPECT_NEAR(big / 1.2089258196146292e24, 1.0, 1e-12);
}

TEST(BigNatTest, DecimalDigitsCount) {
  EXPECT_EQ(BigNat(0).DecimalDigits(), 1u);
  EXPECT_EQ(BigNat(9).DecimalDigits(), 1u);
  EXPECT_EQ(BigNat(10).DecimalDigits(), 2u);
  EXPECT_EQ(BigNat::Pow(BigNat(10), 30).DecimalDigits(), 31u);
}

TEST(BigNatTest, HashEqualForEqualValues) {
  BigNat a = BigNat::Pow(BigNat(3), 100);
  BigNat b = BigNat::Pow(BigNat(3), 100);
  EXPECT_EQ(a.Hash(), b.Hash());
}

// ---- randomized cross-checks against 64-bit arithmetic --------------------

class BigNatPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigNatPropertyTest, ArithmeticAgreesWithUint64) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    uint64_t x = rng.Below(1u << 31);
    uint64_t y = rng.Below(1u << 31);
    BigNat bx(x), by(y);
    EXPECT_EQ((bx + by).ToUint64().value(), x + y);
    EXPECT_EQ((bx * by).ToUint64().value(), x * y);
    EXPECT_EQ(bx.MonusSub(by).ToUint64().value(), x > y ? x - y : 0);
    EXPECT_EQ(bx.Compare(by), x < y ? -1 : (x == y ? 0 : 1));
    if (y != 0) {
      auto dm = bx.DivMod(by);
      ASSERT_TRUE(dm.ok());
      EXPECT_EQ(dm->quotient.ToUint64().value(), x / y);
      EXPECT_EQ(dm->remainder.ToUint64().value(), x % y);
    }
  }
}

TEST_P(BigNatPropertyTest, AlgebraicLawsOnLargeOperands) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 50; ++i) {
    BigNat a = BigNat::Pow(BigNat(rng.Range(2, 9)), rng.Range(10, 60));
    BigNat b = BigNat::Pow(BigNat(rng.Range(2, 9)), rng.Range(10, 60));
    BigNat c(rng.Below(1u << 20));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) * c, a * c + b * c);
    EXPECT_EQ((a + b).MonusSub(b), a);
    auto dm = (a * b + c).DivMod(b);
    ASSERT_TRUE(dm.ok());
    if (c < b) {
      EXPECT_EQ(dm->quotient, a);
      EXPECT_EQ(dm->remainder, c);
    }
    // Decimal round-trip.
    auto parsed = BigNat::FromDecimal((a * b).ToString());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, a * b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigNatPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

// ---- inline fast path: 2^32 / 2^64 boundaries and promotion round-trips --

TEST(BigNatFastPathTest, ValuesBelowTwoPow64StayInline) {
  const uint64_t k32 = uint64_t{1} << 32;
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, k32 - 1, k32, k32 + 1,
                     UINT64_MAX - 1, UINT64_MAX}) {
    BigNat n(v);
    EXPECT_TRUE(n.IsInlined()) << v;
    EXPECT_TRUE(n.FitsUint64()) << v;
    EXPECT_EQ(n.ToUint64().value(), v);
    EXPECT_EQ(n.ToString(), std::to_string(v));
  }
  EXPECT_TRUE(BigNat::TwoPow(63).IsInlined());
  EXPECT_FALSE(BigNat::TwoPow(64).IsInlined());
}

TEST(BigNatFastPathTest, AdditionPromotesExactlyAtTwoPow64) {
  EXPECT_TRUE((BigNat(UINT64_MAX - 1) + BigNat(1)).IsInlined());
  BigNat sum = BigNat(UINT64_MAX) + BigNat(1);
  EXPECT_FALSE(sum.IsInlined());
  EXPECT_EQ(sum, BigNat::TwoPow(64));
  EXPECT_EQ(sum.BitLength(), 65u);
  EXPECT_EQ(sum.ToString(), "18446744073709551616");
}

TEST(BigNatFastPathTest, MultiplicationPromotesExactlyAtTwoPow64) {
  // (2^32 - 1)(2^32 + 1) = 2^64 - 1: the largest inline product.
  const uint64_t k32 = uint64_t{1} << 32;
  BigNat largest = BigNat(k32 - 1) * BigNat(k32 + 1);
  EXPECT_TRUE(largest.IsInlined());
  EXPECT_EQ(largest.ToUint64().value(), UINT64_MAX);
  // 2^32 · 2^32 = 2^64: the smallest promoting product.
  BigNat promoted = BigNat(k32) * BigNat(k32);
  EXPECT_FALSE(promoted.IsInlined());
  EXPECT_EQ(promoted, BigNat::TwoPow(64));
  EXPECT_FALSE((BigNat::TwoPow(63) * BigNat(2)).IsInlined());
}

TEST(BigNatFastPathTest, SlowPathResultsDemoteBackToInline) {
  // Arithmetic that dips into limb form but lands below 2^64 must return
  // to the inline representation (the canonical-form invariant).
  BigNat big = BigNat::TwoPow(64);
  BigNat back = big.MonusSub(BigNat(1));
  EXPECT_TRUE(back.IsInlined());
  EXPECT_EQ(back.ToUint64().value(), UINT64_MAX);

  auto dm = big.DivMod(BigNat(2));
  ASSERT_TRUE(dm.ok());
  EXPECT_TRUE(dm->quotient.IsInlined());
  EXPECT_EQ(dm->quotient, BigNat::TwoPow(63));

  BigNat wide = BigNat::Pow(BigNat(7), 40);   // ~112 bits
  BigNat narrow = BigNat::Pow(BigNat(7), 20); // ~56 bits
  auto exact = wide.DivMod(narrow);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->quotient.IsInlined());
  EXPECT_EQ(exact->quotient, narrow);
  EXPECT_TRUE(exact->remainder.IsZero());
}

TEST(BigNatFastPathTest, PromotionRoundTripPreservesEqualityHashCompare) {
  const uint64_t samples[] = {1, 42, (uint64_t{1} << 32) - 1,
                              uint64_t{1} << 32, UINT64_MAX};
  for (uint64_t v : samples) {
    BigNat direct(v);
    // Route the same value through the slow path and back.
    BigNat round =
        (direct + BigNat::TwoPow(64)).MonusSub(BigNat::TwoPow(64));
    EXPECT_TRUE(round.IsInlined()) << v;
    EXPECT_EQ(round, direct);
    EXPECT_EQ(round.Hash(), direct.Hash());
    EXPECT_EQ(round.Compare(direct), 0);
  }
}

TEST(BigNatFastPathTest, CompareSpansTheBoundary) {
  BigNat below(UINT64_MAX);
  BigNat at = BigNat::TwoPow(64);
  BigNat above = at + BigNat(1);
  EXPECT_LT(below.Compare(at), 0);
  EXPECT_GT(at.Compare(below), 0);
  EXPECT_LT(at.Compare(above), 0);
  EXPECT_EQ(at.Compare(BigNat::TwoPow(64)), 0);
}

TEST(BigNatFastPathTest, SlowPathCounterTracksPromotions) {
  BigNat::ResetSlowPathOps();
  BigNat a = BigNat(123456) * BigNat(654321);  // inline throughout
  EXPECT_EQ(BigNat::SlowPathOps(), 0u);
  BigNat b = BigNat::TwoPow(64) + a;  // limb-vector arithmetic
  EXPECT_GT(BigNat::SlowPathOps(), 0u);
  EXPECT_FALSE(b.IsInlined());
}

TEST(BigNatFastPathTest, DecimalRoundTripAcrossTheBoundary)  {
  for (const char* text :
       {"18446744073709551615", "18446744073709551616", "4294967295",
        "4294967296", "4294967297", "340282366920938463463374607431768211456"}) {
    auto parsed = BigNat::FromDecimal(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->ToString(), text);
    EXPECT_EQ(parsed->IsInlined(), parsed->FitsUint64());
  }
}

}  // namespace
}  // namespace bagalg
