// End-to-end integration: the shipped example script runs through the
// ScriptRunner (parser → typecheck → optimize → evaluate pipeline), plus
// multi-line script handling and Database/AtomTable edge cases that the
// pipeline depends on.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/algebra/database.h"
#include "src/core/atom.h"
#include "src/lang/script.h"

namespace bagalg {
namespace {

using lang::ScriptRunner;

TEST(IntegrationTest, TourScriptRunsEndToEnd) {
  // Locate the script relative to the source tree (tests run from the
  // build tree; fall back to the repo-root path).
  std::string content;
  for (const char* path : {"examples/scripts/tour.bag",
                           "../examples/scripts/tour.bag",
                           "../../examples/scripts/tour.bag"}) {
    std::ifstream file(path);
    if (file) {
      std::ostringstream text;
      text << file.rdbuf();
      content = text.str();
      break;
    }
  }
  if (content.empty()) {
    GTEST_SKIP() << "tour.bag not found from the test working directory";
  }
  ScriptRunner runner;
  auto out = runner.RunScript(content);
  ASSERT_TRUE(out.ok()) << out.status();
  // Spot-check the §4 worked numbers surface in the output.
  EXPECT_NE(out->find("49"), std::string::npos);          // |B×B| = (4+3)^2
  EXPECT_NE(out->find("[a, a]*12"), std::string::npos);   // nm = 12
  EXPECT_NE(out->find("{{[c]}}"), std::string::npos);     // Example 4.1
  EXPECT_NE(out->find("within BALG^1"), std::string::npos);
  EXPECT_NE(out->find("[n1, n4]"), std::string::npos);    // TC reached 4
}

TEST(IntegrationTest, MultiLineCommandsJoinOnBrackets) {
  ScriptRunner runner;
  auto out = runner.RunScript(
      "let B = {{[a, b]*2,\n"
      "          [b, a]}}\n"
      "count prod(B,\n"
      "           B)   # comment with ) inside is ignored\n");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("9"), std::string::npos);
}

TEST(IntegrationTest, UnbalancedScriptReportsStartLine) {
  ScriptRunner runner;
  auto out = runner.RunScript("let B = {{a}}\ncount prod(B,\n");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("line 2"), std::string::npos);
}

// --------------------------------------------------- database edge cases

TEST(DatabaseTest, DeclareThenPutEnforcesSchema) {
  Database db;
  ASSERT_TRUE(
      db.Declare("R", Type::Bag(Type::Tuple({Type::Atom()}))).ok());
  // Conforming bag: OK.
  EXPECT_TRUE(db.Put("R", MakeBagOf({MakeTuple({MakeAtom("x")})})).ok());
  // Non-conforming bag: rejected.
  auto st = db.Put("R", MakeBagOf({MakeAtom("x")}));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, DeclareRequiresBagType) {
  Database db;
  EXPECT_FALSE(db.Declare("R", Type::Atom()).ok());
  EXPECT_FALSE(db.Declare("R", Type::Tuple({Type::Atom()})).ok());
}

TEST(DatabaseTest, DeclareProvidesTypedEmptyInstance) {
  Database db;
  ASSERT_TRUE(db.Declare("R", Type::Bag(Type::Atom())).ok());
  auto bag = db.Get("R");
  ASSERT_TRUE(bag.ok());
  EXPECT_TRUE(bag->empty());
  EXPECT_EQ(bag->element_type(), Type::Atom());
  EXPECT_EQ(db.TypeOfInput("R").value(), Type::Bag(Type::Atom()));
  EXPECT_FALSE(db.Get("Missing").ok());
  EXPECT_FALSE(db.TypeOfInput("Missing").ok());
}

TEST(DatabaseTest, PutInfersSchemaFromBag) {
  Database db;
  Bag b = MakeBag({{MakeTuple({MakeAtom("x"), MakeAtom("y")}), 2}});
  ASSERT_TRUE(db.Put("S", b).ok());
  EXPECT_EQ(db.TypeOfInput("S").value(), b.type());
}

// --------------------------------------------------- atom table edge cases

TEST(AtomTableTest, InternIsIdempotentAndDense) {
  AtomTable table;
  AtomId a = table.Intern("alpha");
  AtomId b = table.Intern("beta");
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.NameOf(a), "alpha");
  EXPECT_EQ(table.Find("beta").value(), b);
  EXPECT_FALSE(table.Find("gamma").has_value());
}

TEST(AtomTableTest, UnknownIdsPrintPlaceholders) {
  AtomTable table;
  EXPECT_EQ(table.NameOf(12345), "#12345");
}

TEST(AtomTableTest, SeparateTablesAreIndependent) {
  AtomTable t1, t2;
  AtomId a1 = t1.Intern("x");
  AtomId b2 = t2.Intern("completely-different");
  // Dense ids start at 0 in each table.
  EXPECT_EQ(a1, b2);
  EXPECT_EQ(t1.NameOf(a1), "x");
  EXPECT_EQ(t2.NameOf(b2), "completely-different");
}

}  // namespace
}  // namespace bagalg
