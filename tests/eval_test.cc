// Tests for the BALG evaluator: operator dispatch, lambda binding, the §4
// occurrence-counting table, Example 4.1, fixpoints, statistics, and
// resource-limit failure paths.

#include "src/algebra/eval.h"

#include <gtest/gtest.h>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"

namespace bagalg {
namespace {

Value A(const char* name) { return MakeAtom(name); }

Database Db(std::initializer_list<std::pair<std::string, Bag>> items) {
  Database db;
  for (const auto& [name, bag] : items) {
    Status st = db.Put(name, bag);
    EXPECT_TRUE(st.ok()) << st;
  }
  return db;
}

Bag EvalBag(const Expr& e, const Database& db,
            Limits limits = Limits::Default()) {
  Evaluator eval(limits);
  auto r = eval.EvalToBag(e, db);
  EXPECT_TRUE(r.ok()) << r.status() << " for " << e.ToString();
  return r.ok() ? std::move(r).value() : Bag();
}

TEST(EvalTest, InputLookup) {
  Bag b = MakeBag({{A("x"), 2}});
  Database db = Db({{"B", b}});
  EXPECT_EQ(EvalBag(Input("B"), db), b);
  Evaluator eval;
  auto missing = eval.EvalToBag(Input("Z"), db);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(EvalTest, ConstAndTuplingAndBagging) {
  Database db;
  Expr e = Beta(Tup({ConstExpr(A("p")), ConstExpr(A("q"))}));
  Bag r = EvalBag(e, db);
  EXPECT_EQ(r, MakeBagOf({MakeTuple({A("p"), A("q")})}));
}

TEST(EvalTest, MapBindsVariable) {
  Bag b = MakeBag({{MakeTuple({A("x"), A("y")}), 3}});
  Database db = Db({{"B", b}});
  // MAP λt.[α2(t), α1(t)] — swap attributes.
  Expr e = Map(Tup({Proj(Var(0), 2), Proj(Var(0), 1)}), Input("B"));
  Bag r = EvalBag(e, db);
  EXPECT_EQ(r.CountOf(MakeTuple({A("y"), A("x")})), Mult(3));
}

TEST(EvalTest, NestedMapBindsBothDepths) {
  // MAP λx. MAP λy.[x.1, y.1] (B) over B itself: inner body sees both
  // binders (Var(1) is the outer x).
  Bag b = MakeBagOf(
      {MakeTuple({A("m")}), MakeTuple({A("n")})});
  Database db = Db({{"B", b}});
  Expr inner = Map(Tup({Proj(Var(1), 1), Proj(Var(0), 1)}),
                   ShiftVars(Input("B"), 0, 1));
  Expr e = Map(Beta(Var(0)), Map(inner, Input("B")));
  Bag r = EvalBag(e, db);
  // Outer map produced, per x, the bag {[x,m],[x,n]}; there are 2 of them.
  EXPECT_EQ(r.TotalCount(), Mult(2));
}

TEST(EvalTest, SelectionEqualityOfLambdaExpressions) {
  Bag b = MakeBag({{MakeTuple({A("a"), A("a")}), 2},
                   {MakeTuple({A("a"), A("b")}), 5}});
  Database db = Db({{"B", b}});
  Expr e = Select(Proj(Var(0), 1), Proj(Var(0), 2), Input("B"));
  Bag r = EvalBag(e, db);
  EXPECT_EQ(r.TotalCount(), Mult(2));
}

TEST(EvalTest, Section4OccurrenceTable) {
  // The worked table of §4: B holds n×[a,b] and m×[b,a];
  // Q(B) = π_{1,4}(σ_{2=3}(B×B)) yields nm×[a,a] and nm×[b,b].
  const uint64_t n = 4, m = 3;
  Bag b = MakeBag({{MakeTuple({A("a"), A("b")}), n},
                   {MakeTuple({A("b"), A("a")}), m}});
  Database db = Db({{"B", b}});
  Expr prod = Product(Input("B"), Input("B"));
  Expr sel = Select(Proj(Var(0), 2), Proj(Var(0), 3), prod);

  // Intermediate check, also from the table: B×B has n² abab, m² baba,
  // nm baab, nm abba.
  Bag bxb = EvalBag(prod, db);
  EXPECT_EQ(bxb.CountOf(MakeTuple({A("a"), A("b"), A("a"), A("b")})),
            Mult(n * n));
  EXPECT_EQ(bxb.CountOf(MakeTuple({A("b"), A("a"), A("b"), A("a")})),
            Mult(m * m));
  EXPECT_EQ(bxb.CountOf(MakeTuple({A("b"), A("a"), A("a"), A("b")})),
            Mult(n * m));
  EXPECT_EQ(bxb.CountOf(MakeTuple({A("a"), A("b"), A("b"), A("a")})),
            Mult(n * m));

  Bag selected = EvalBag(sel, db);
  EXPECT_EQ(selected.TotalCount(), Mult(2 * n * m));

  Bag q = EvalBag(ProjectAttrs(sel, {1, 4}), db);
  EXPECT_EQ(q.CountOf(MakeTuple({A("a"), A("a")})), Mult(n * m));
  EXPECT_EQ(q.CountOf(MakeTuple({A("b"), A("b")})), Mult(n * m));
  EXPECT_FALSE(q.Contains(MakeTuple({A("a"), A("b")})));
  EXPECT_FALSE(q.Contains(MakeTuple({A("b"), A("a")})));
}

TEST(EvalTest, Example41InDegreeVsOutDegree) {
  // Star graph: edges u1->c, u2->c, c->w1. in(c)=2 > out(c)=1.
  Bag g = MakeBagOf({MakeTuple({A("u1"), A("c")}), MakeTuple({A("u2"), A("c")}),
                     MakeTuple({A("c"), A("w1")})});
  Database db = Db({{"G", g}});
  Expr q = InDegreeGreaterThanOut(Input("G"), A("c"));
  Bag r = EvalBag(q, db);
  EXPECT_FALSE(r.empty());
  // The surplus is exactly in-degree − out-degree copies of [c].
  EXPECT_EQ(r.CountOf(MakeTuple({A("c")})), Mult(1));

  // Balanced node: in == out -> empty.
  Expr q2 = InDegreeGreaterThanOut(Input("G"), A("u1"));
  EXPECT_TRUE(EvalBag(q2, db).empty());
}

TEST(EvalTest, PowersetThenDestroyInsideExpression) {
  Bag b = MakeBag({{A("a"), 2}});
  Database db = Db({{"B", b}});
  Bag r = EvalBag(Destroy(Pow(Input("B"))), db);
  // δ(P({{a,a}})) = {{a}} ⊎ {{a,a}} = a*3 (the m(m+1)^k/2 claim with
  // m=2, k=1).
  EXPECT_EQ(r.CountOf(A("a")), Mult(3));
}

TEST(EvalTest, AttrProjOnNonTupleFails) {
  Database db = Db({{"B", MakeBagOf({A("x")})}});
  Evaluator eval;
  auto r = eval.EvalToBag(Map(Proj(Var(0), 1), Input("B")), db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvalTest, UnboundVariableFails) {
  Database db;
  Evaluator eval;
  auto r = eval.Eval(Var(0), db);
  ASSERT_FALSE(r.ok());
}

TEST(EvalTest, StepBudgetExhaustion) {
  Bag b = MakeBag({{MakeTuple({A("x")}), 1}});
  Database db = Db({{"B", b}});
  Limits limits;
  limits.max_eval_steps = 3;
  Evaluator eval(limits);
  Expr big = Product(Product(Input("B"), Input("B")),
                     Product(Input("B"), Input("B")));
  auto r = eval.EvalToBag(big, db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalTest, StatsCountOperators) {
  Bag b = MakeBag({{MakeTuple({A("x")}), 2}});
  Database db = Db({{"B", b}});
  Evaluator eval;
  auto r = eval.EvalToBag(Uplus(Input("B"), Eps(Input("B"))), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(eval.stats().CountOf(ExprKind::kAdditiveUnion), 1u);
  EXPECT_EQ(eval.stats().CountOf(ExprKind::kDupElim), 1u);
  EXPECT_EQ(eval.stats().CountOf(ExprKind::kInput), 2u);
  EXPECT_GE(eval.stats().steps, 4u);
}

TEST(EvalTest, StatsTrackSizesWhenEnabled) {
  Bag b = MakeBag({{MakeTuple({A("x")}), 5}});
  Database db = Db({{"B", b}});
  Evaluator eval;
  eval.set_track_sizes(true);
  auto r = eval.EvalToBag(Product(Input("B"), Input("B")), db);
  ASSERT_TRUE(r.ok());
  // B×B: 25 occurrences of a 2-tuple of atoms (standard size 3 each) = 75.
  EXPECT_EQ(eval.stats().max_standard_size, BigNat(75));
}

TEST(EvalTest, IfpTransitiveClosure) {
  // Path graph 1->2->3->4 plus a cycle 5->6->5.
  Bag g = MakeBagOf({MakeTuple({A("n1"), A("n2")}), MakeTuple({A("n2"), A("n3")}),
                     MakeTuple({A("n3"), A("n4")}), MakeTuple({A("n5"), A("n6")}),
                     MakeTuple({A("n6"), A("n5")})});
  Database db = Db({{"G", g}});
  Bag tc = EvalBag(TransitiveClosure(Input("G")), db);
  EXPECT_TRUE(tc.Contains(MakeTuple({A("n1"), A("n4")})));
  EXPECT_TRUE(tc.Contains(MakeTuple({A("n1"), A("n3")})));
  EXPECT_TRUE(tc.Contains(MakeTuple({A("n5"), A("n5")})));
  EXPECT_TRUE(tc.Contains(MakeTuple({A("n6"), A("n6")})));
  EXPECT_FALSE(tc.Contains(MakeTuple({A("n4"), A("n1")})));
  EXPECT_FALSE(tc.Contains(MakeTuple({A("n1"), A("n5")})));
  EXPECT_TRUE(tc.IsSetLike());
  EXPECT_EQ(tc.TotalCount(), Mult(6 + 4));  // path pairs + cycle pairs
}

TEST(EvalTest, BoundedIfpTransitiveClosureAgrees) {
  Bag g = MakeBagOf({MakeTuple({A("n1"), A("n2")}), MakeTuple({A("n2"), A("n3")}),
                     MakeTuple({A("n2"), A("n1")})});
  Database db = Db({{"G", g}});
  Bag tc1 = EvalBag(TransitiveClosure(Input("G")), db);
  Bag tc2 = EvalBag(TransitiveClosureBounded(Input("G")), db);
  EXPECT_EQ(tc1, tc2);
}

TEST(EvalTest, IfpIterationBudget) {
  // An IFP whose body strictly grows (adds one more copy each round via ⊎
  // then max with the previous) would iterate forever on multiplicities;
  // the iteration budget stops it.
  Bag b = MakeBag({{MakeTuple({A("x")}), 1}});
  Database db = Db({{"B", b}});
  Limits limits;
  limits.max_fixpoint_iterations = 5;
  Evaluator eval(limits);
  Expr body = Uplus(Var(0), Var(0));  // doubles every round
  auto r = eval.EvalToBag(Ifp(body, Input("B")), db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(eval.stats().fixpoint_iterations, 5u);
}

TEST(EvalTest, NestUnnestThroughEvaluator) {
  Bag b = MakeBagOf({MakeTuple({A("g"), A("x")}), MakeTuple({A("g"), A("y")})});
  Database db = Db({{"B", b}});
  Bag nested = EvalBag(NestExpr(Input("B"), {2}), db);
  EXPECT_EQ(nested.TotalCount(), Mult(1));
  Bag back = EvalBag(UnnestExpr(NestExpr(Input("B"), {2}), 2), db);
  EXPECT_EQ(back.TotalCount(), Mult(2));
}

TEST(EvalTest, EmptyInputTypedResult) {
  Database db;
  ASSERT_TRUE(
      db.Declare("E", Type::Bag(Type::Tuple({Type::Atom()}))).ok());
  Bag r = EvalBag(Map(Tup({Proj(Var(0), 1), Proj(Var(0), 1)}), Input("E")), db);
  EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace bagalg
