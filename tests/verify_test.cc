// The IR verifier, the dataflow fact framework, the fact-driven passes,
// and the translation-validation harness — including the seeded
// mutation corpus: every intentionally broken pass variant behind
// SetPassMutationForTesting must be rejected by the verifier or by
// translation validation, with zero silent escapes. Also pins the lint
// registry's ordering contract and the W006/W007 rules that surface the
// same facts at the algebra level.

#include "src/ir/verify.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/analysis/lint.h"
#include "src/ir/dataflow.h"
#include "src/ir/exec_ir.h"
#include "src/ir/lower.h"
#include "src/ir/passes.h"
#include "src/stats/expr_gen.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

namespace bagalg {
namespace {

using analysis::CostFacts;
using analysis::LintDiag;
using analysis::LintRule;
using analysis::LintRuleRegistry;
using analysis::RunLint;
using ir::ComputeIrFacts;
using ir::IrFacts;
using ir::IrKind;
using ir::IrNode;
using ir::IrPlan;
using ir::IrVerifyEnabled;
using ir::LowerOptions;
using ir::LowerToIr;
using ir::PassMutation;
using ir::RowProgram;
using ir::SetPassMutationForTesting;
using ir::Stage;
using ir::StageKind;
using ir::ValidateTranslation;
using ir::ValidationReport;
using ir::VerifyIr;

Value A(const char* name) { return MakeAtom(name); }

/// R: set-like 2-tuples with a distinct key column and a duplicate-heavy
/// value column; R2: a second such bag sharing some values with R.
/// S: unary tuples with real duplicate counts (not set-like).
Database CorpusDb() {
  Database db;
  EXPECT_TRUE(db.Put("R", MakeBag({{MakeTuple({A("k0"), A("v0")}), 1},
                                   {MakeTuple({A("k1"), A("v1")}), 1},
                                   {MakeTuple({A("k2"), A("v0")}), 1},
                                   {MakeTuple({A("k3"), A("v2")}), 1}}))
                  .ok());
  EXPECT_TRUE(db.Put("R2", MakeBag({{MakeTuple({A("a0"), A("v0")}), 1},
                                    {MakeTuple({A("a1"), A("v1")}), 1},
                                    {MakeTuple({A("a2"), A("v5")}), 1}}))
                  .ok());
  EXPECT_TRUE(db.Put("S", MakeBag({{MakeTuple({A("x")}), 5},
                                   {MakeTuple({A("y")}), 2},
                                   {MakeTuple({A("z")}), 1}}))
                  .ok());
  return db;
}

/// Lowering options with the algebra rewriter off, so crafted stage
/// patterns (the mutation triggers) reach the IR passes intact.
LowerOptions NoRewrite() {
  LowerOptions options;
  options.optimize_first = false;
  return options;
}

/// Restores PassMutation::kNone on scope exit.
struct MutationGuard {
  explicit MutationGuard(PassMutation m) { SetPassMutationForTesting(m); }
  ~MutationGuard() { SetPassMutationForTesting(PassMutation::kNone); }
};

RowProgram MustCompile(const Expr& body) {
  auto program = RowProgram::Compile(body);
  EXPECT_TRUE(program.ok()) << program.status();
  return *std::move(program);
}

Stage FilterStage(const Expr& lhs, const Expr& rhs) {
  Stage stage;
  stage.kind = StageKind::kFilter;
  stage.program = MustCompile(lhs);
  stage.rhs = MustCompile(rhs);
  return stage;
}

Stage ProjectStage(const Expr& body) {
  Stage stage;
  stage.kind = StageKind::kProject;
  stage.program = MustCompile(body);
  return stage;
}

std::unique_ptr<IrNode> ScanOf(const char* name, Bag bag) {
  auto node = std::make_unique<IrNode>(IrKind::kScan);
  node->scan_name = name;
  node->scan_bag = std::move(bag);
  return node;
}

Bag TwoColBag() {
  auto bag = MakeBag({{MakeTuple({A("k0"), A("v0")}), 1},
                      {MakeTuple({A("k1"), A("v1")}), 2}});
  return bag;
}

// --------------------------------------------------- verifier structure

TEST(VerifyIrTest, AcceptsAWellFormedPlan) {
  IrPlan plan;
  plan.root = ScanOf("B", TwoColBag());
  plan.root->stages.push_back(
      FilterStage(Proj(Var(0), 1), ConstExpr(A("k0"))));
  plan.root->stages.push_back(ProjectStage(Tup({Proj(Var(0), 2)})));
  EXPECT_TRUE(VerifyIr(plan).ok());
}

TEST(VerifyIrTest, RejectsFilterColumnOffTheRowShape) {
  IrPlan plan;
  plan.root = ScanOf("B", TwoColBag());
  plan.root->stages.push_back(
      FilterStage(Proj(Var(0), 5), ConstExpr(A("k0"))));
  Status st = VerifyIr(plan);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ir verify"), std::string::npos) << st;
}

TEST(VerifyIrTest, RejectsGatherNamingAMissingColumn) {
  IrPlan plan;
  plan.root = ScanOf("B", TwoColBag());
  plan.root->stages.push_back(
      ProjectStage(Tup({Proj(Var(0), 1), Proj(Var(0), 3)})));
  EXPECT_FALSE(VerifyIr(plan).ok());
}

TEST(VerifyIrTest, RejectsHashJoinKeyOutsideItsSide) {
  IrPlan plan;
  auto join = std::make_unique<IrNode>(IrKind::kHashJoin);
  join->children.push_back(ScanOf("B", TwoColBag()));
  join->children.push_back(ScanOf("C", TwoColBag()));
  join->probe_arity = 2;
  join->probe_key = 3;  // off the probe row
  join->build_key = 1;
  plan.root = std::move(join);
  EXPECT_FALSE(VerifyIr(plan).ok());
}

TEST(VerifyIrTest, RejectsProbeArityDisagreeingWithTheProbeChild) {
  IrPlan plan;
  auto join = std::make_unique<IrNode>(IrKind::kCrossJoin);
  join->children.push_back(ScanOf("B", TwoColBag()));
  join->children.push_back(ScanOf("C", TwoColBag()));
  join->probe_arity = 4;  // the probe child produces 2-tuples
  plan.root = std::move(join);
  EXPECT_FALSE(VerifyIr(plan).ok());
}

TEST(VerifyIrTest, RejectsUnionOfConflictingShapes) {
  IrPlan plan;
  auto u = std::make_unique<IrNode>(IrKind::kUnionAll);
  u->children.push_back(ScanOf("B", TwoColBag()));
  u->children.push_back(
      ScanOf("C", MakeBag({{MakeTuple({A("x")}), 1}})));  // 1-tuple bag
  plan.root = std::move(u);
  EXPECT_FALSE(VerifyIr(plan).ok());
}

TEST(VerifyIrTest, EnvOverrideParsesBothDirections) {
  // Can only observe the process's cached value; assert it is consistent
  // with the environment contract rather than flipping it mid-process.
  const char* env = std::getenv("BAGALG_IR_VERIFY");
  if (env != nullptr && std::string(env) == "1") {
    EXPECT_TRUE(IrVerifyEnabled());
  }
  if (env != nullptr && std::string(env) == "0") {
    EXPECT_FALSE(IrVerifyEnabled());
  }
#ifndef NDEBUG
  if (env == nullptr) EXPECT_TRUE(IrVerifyEnabled());
#endif
}

// ------------------------------------------------------- dataflow facts

TEST(IrFactsTest, ScanFactsCoverShapeDupFreedomKeysAndInterval) {
  Database db = CorpusDb();
  auto plan = LowerToIr(Input("R"), db, NoRewrite());
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto facts = ComputeIrFacts(*plan);
  ASSERT_TRUE(facts.ok()) << facts.status();
  const IrFacts& root = facts->at(plan->root.get());
  EXPECT_EQ(root.shape, IrFacts::Shape::kTuple);
  EXPECT_EQ(root.arity, 2u);
  EXPECT_TRUE(root.dup_free);  // R is set-like
  EXPECT_TRUE(root.HasKeyWithin({1}));  // k0..k3 are distinct
  EXPECT_EQ(root.min_rows, 4u);
  EXPECT_EQ(root.max_rows, 4u);
}

TEST(IrFactsTest, DupElimProvesDupFreedomOverADupHeavyScan) {
  Database db = CorpusDb();
  auto plan = LowerToIr(Eps(Input("S")), db, NoRewrite());
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto facts = ComputeIrFacts(*plan);
  ASSERT_TRUE(facts.ok()) << facts.status();
  const IrFacts& root = facts->at(plan->root.get());
  EXPECT_TRUE(root.dup_free);
}

TEST(IrFactsTest, ExplainIrFactsRendersTheAnnotations) {
  Database db = CorpusDb();
  auto out = ir::ExplainIrFacts(
      Select(Proj(Var(0), 1), ConstExpr(A("k0")), Input("R")), db);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("dup_free"), std::string::npos) << *out;
  EXPECT_NE(out->find("rows="), std::string::npos) << *out;
  EXPECT_NE(out->find("const{1=k0}"), std::string::npos) << *out;
}

// --------------------------------------------------- fact-driven passes

TEST(FactPassTest, RedundantDupElimIsRemovedOverASetLikeScan) {
  Database db = CorpusDb();
  auto plan = LowerToIr(Eps(Input("R")), db, NoRewrite());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->passes.dup_elims_removed, 1u);
  EXPECT_EQ(plan->root->kind, IrKind::kScan);
  auto got = ExecuteIr(*plan, db);
  Evaluator eval;
  auto want = eval.EvalToBag(Eps(Input("R")), db);
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_TRUE(*got == *want);
}

TEST(FactPassTest, DupElimOverADupHeavyScanIsKept) {
  Database db = CorpusDb();
  auto plan = LowerToIr(Eps(Input("S")), db, NoRewrite());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->passes.dup_elims_removed, 0u);
  EXPECT_EQ(plan->root->kind, IrKind::kDupElim);
}

TEST(FactPassTest, DeadColumnsNarrowAJoinSide) {
  Database db = CorpusDb();
  // Join R and R2 on their value columns, then keep only R's key: R2
  // contributes no live column beyond its join key.
  Expr q = ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 4),
                               Product(Input("R"), Input("R2"))),
                        {1});
  auto plan = LowerToIr(q, db, NoRewrite());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_GT(plan->passes.dead_columns, 0u);
  auto got = ExecuteIr(*plan, db);
  Evaluator eval;
  auto want = eval.EvalToBag(q, db);
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_TRUE(*got == *want);
}

TEST(FactPassTest, ConstFoldErasesATautologicalFilter) {
  Database db = CorpusDb();
  // MAP builds ('x, a1); the filter compares the constant column to 'x.
  Expr q = Select(Proj(Var(0), 1), ConstExpr(A("x")),
                  Map(Tup({ConstExpr(A("x")), Proj(Var(0), 1)}),
                      Input("S")));
  auto plan = LowerToIr(q, db, NoRewrite());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_GT(plan->passes.const_folds, 0u);
  auto got = ExecuteIr(*plan, db);
  Evaluator eval;
  auto want = eval.EvalToBag(q, db);
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_TRUE(*got == *want);
}

TEST(FactPassTest, ConstFoldEmptiesAProvablyFalseFilter) {
  Database db = CorpusDb();
  Expr q = Select(Proj(Var(0), 1), ConstExpr(A("nope")),
                  Map(Tup({ConstExpr(A("x")), Proj(Var(0), 1)}),
                      Input("S")));
  auto plan = LowerToIr(q, db, NoRewrite());
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto got = ExecuteIr(*plan, db);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->DistinctCount(), 0u);
}

// --------------------------------------------- translation validation

TEST(ValidateTranslationTest, SoundPassesValidateCleanly) {
  Database db = CorpusDb();
  const std::vector<Expr> corpus = {
      Eps(Input("R")),
      Select(Proj(Var(0), 2), Proj(Var(0), 4),
             Product(Input("R"), Input("R2"))),
      ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 4),
                          Product(Input("R"), Input("R2"))),
                   {1}),
      Map(Tup({Proj(Var(0), 1)}), Uplus(Input("R"), Input("R2"))),
      Select(Proj(Var(0), 1), ConstExpr(A("v0")),
             Map(Tup({Proj(Var(0), 2), Proj(Var(0), 1)}), Input("R"))),
  };
  for (const Expr& q : corpus) {
    ValidationReport report;
    Status st = ValidateTranslation(q, db, &report, NoRewrite());
    EXPECT_TRUE(st.ok()) << q.ToString() << ": " << st;
    EXPECT_GT(report.passes_changed, 0u) << q.ToString();
  }
}

// Each seeded mutation must be rejected by the verifier or by
// translation validation — zero silent escapes. Every trigger expression
// is chosen so the mutated code path demonstrably fires (the companion
// sanity check: with kNone the same expression validates cleanly).
struct MutationCase {
  PassMutation mutation;
  const char* name;
  Expr expr;
};

std::vector<MutationCase> MutationCorpus() {
  Expr reorder_trigger =
      Select(Proj(Var(0), 1), ConstExpr(A("v0")),
             Map(Tup({Proj(Var(0), 2), Proj(Var(0), 1)}), Input("R")));
  Expr hash_join = Select(Proj(Var(0), 2), Proj(Var(0), 4),
                          Product(Input("R"), Input("R2")));
  return {
      {PassMutation::kDropFilterDuringReorder, "drop-filter",
       reorder_trigger},
      {PassMutation::kWrongGatherRemap, "wrong-gather-remap",
       reorder_trigger},
      {PassMutation::kHashJoinProbeKeyOutOfBounds, "probe-key-oob",
       hash_join},
      {PassMutation::kHashJoinWrongBuildKey, "wrong-build-key", hash_join},
      {PassMutation::kNoShiftOnBuildPushdown, "no-shift-build-pushdown",
       Select(Proj(Var(0), 3), ConstExpr(A("a1")),
              Product(Input("R"), Input("R2")))},
      {PassMutation::kUnionPushdownDropsChild, "union-drops-child",
       Map(Tup({Proj(Var(0), 1)}), Uplus(Input("R"), Input("R2")))},
      {PassMutation::kDupElimDropUnproven, "dup-elim-unproven",
       Eps(Input("S"))},
      {PassMutation::kConstFoldInverted, "const-fold-inverted",
       Select(Proj(Var(0), 1), ConstExpr(A("x")),
              Map(Tup({ConstExpr(A("x")), Proj(Var(0), 1)}),
                  Input("S")))},
      {PassMutation::kDeadColumnDropsLive, "dead-column-drops-live",
       ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 4),
                           Product(Input("R"), Input("R2"))),
                    {1})},
      {PassMutation::kCseKeyIgnoresStages, "cse-key-ignores-stages",
       Uplus(Map(Tup({ConstExpr(A("q"))}), Eps(Input("S"))),
             Eps(Input("S")))},
  };
}

TEST(MutationCorpusTest, EveryMutantIsRejectedWithZeroSilentEscapes) {
  Database db = CorpusDb();
  for (const MutationCase& c : MutationCorpus()) {
    {
      // Sanity: the unmutated pipeline handles the trigger cleanly.
      Status clean = ValidateTranslation(c.expr, db, nullptr, NoRewrite());
      EXPECT_TRUE(clean.ok()) << c.name << " (clean): " << clean;
    }
    MutationGuard guard(c.mutation);
    Status st = ValidateTranslation(c.expr, db, nullptr, NoRewrite());
    EXPECT_FALSE(st.ok()) << c.name << " escaped silently";
    if (!st.ok()) {
      bool named = st.message().find("ir verify") != std::string::npos ||
                   st.message().find("translation validation") !=
                       std::string::npos;
      EXPECT_TRUE(named) << c.name << ": " << st;
    }
  }
}

TEST(MutationCorpusTest, StructuralMutantsAreCaughtByTheVerifierAlone) {
  // These corrupt the plan shape itself, so plain lowering with
  // verification on — no execution, no observer — must already fail.
  Database db = CorpusDb();
  const std::vector<MutationCase> structural = {
      {PassMutation::kHashJoinProbeKeyOutOfBounds, "probe-key-oob",
       Select(Proj(Var(0), 2), Proj(Var(0), 4),
              Product(Input("R"), Input("R2")))},
      {PassMutation::kNoShiftOnBuildPushdown, "no-shift-build-pushdown",
       Select(Proj(Var(0), 3), ConstExpr(A("a1")),
              Product(Input("R"), Input("R2")))},
      {PassMutation::kUnionPushdownDropsChild, "union-drops-child",
       Map(Tup({Proj(Var(0), 1)}), Uplus(Input("R"), Input("R2")))},
  };
  for (const MutationCase& c : structural) {
    MutationGuard guard(c.mutation);
    LowerOptions options = NoRewrite();
    options.verify = LowerOptions::Verify::kOn;
    auto plan = LowerToIr(c.expr, db, options);
    EXPECT_FALSE(plan.ok()) << c.name;
    if (!plan.ok()) {
      EXPECT_NE(plan.status().message().find("ir verify after pass"),
                std::string::npos)
          << c.name << ": " << plan.status();
    }
  }
}

// ------------------------------------------------------------ fuzzing

TEST(ValidateTranslationFuzzTest, RandomPlansValidateAcrossThePipeline) {
  Schema schema{{"R", Type::Bag(Type::Tuple({Type::Atom()}))},
                {"S", Type::Bag(Type::Tuple({Type::Atom(), Type::Atom()}))}};
  ExprGenOptions gen;
  gen.max_bag_nesting = 1;
  gen.allow_powerset = false;
  gen.growth_rounds = 10;
  size_t lowered = 0;
  for (uint64_t seed = 0; seed < 250; ++seed) {
    Rng rng(0x5eedf00d + seed);
    FlatBagSpec spec1;
    spec1.arity = 1;
    spec1.num_atoms = 3;
    spec1.num_elements = 4;
    spec1.max_mult = 3;
    FlatBagSpec spec2 = spec1;
    spec2.arity = 2;
    Database db;
    ASSERT_TRUE(db.Put("R", RandomFlatBag(rng, spec1)).ok());
    ASSERT_TRUE(db.Put("S", RandomFlatBag(rng, spec2)).ok());
    auto e = RandomExpr(rng, schema, gen);
    ASSERT_TRUE(e.ok()) << e.status();
    Status st = ValidateTranslation(*e, db);
    if (st.ok()) {
      lowered++;
      continue;
    }
    // Plans outside the BALG¹ pipeline fragment legitimately fail to
    // lower (kUnsupported); verifier or validator rejections are bugs.
    EXPECT_NE(st.code(), StatusCode::kInternal)
        << "seed " << seed << " over " << e->ToString() << ": " << st;
  }
  // The generator must actually exercise the pipeline, not just produce
  // unsupported plans.
  EXPECT_GE(lowered, 50u);
}

// ------------------------------------------- lint: registry + W006/W007

TEST(LintRegistryTest, BuiltInsKeepRegistrationOrderAndReplaceInPlace) {
  const std::vector<std::string> want = {"W001", "W002", "W003", "W004",
                                         "W005", "W006", "W007", "E001"};
  auto codes = [] {
    std::vector<std::string> got;
    for (const LintRule& r : LintRuleRegistry::Global().rules()) {
      got.push_back(r.code);
    }
    return got;
  };
  EXPECT_EQ(codes(), want);
  // Re-registering an existing code replaces the rule in place: the order
  // is unchanged and the replacement is live.
  LintRule original;
  for (const LintRule& r : LintRuleRegistry::Global().rules()) {
    if (r.code == "W003") original = r;
  }
  LintRuleRegistry::Global().Register(
      {"W003", "replacement", [](const analysis::LintContext&,
                                 std::vector<LintDiag>*) {}});
  EXPECT_EQ(codes(), want);
  EXPECT_EQ(LintRuleRegistry::Global().rules()[2].description,
            "replacement");
  LintRuleRegistry::Global().Register(original);
  EXPECT_EQ(codes(), want);
}

TEST(LintTest, W006FiresOnDupElimOfDupElim) {
  Database db = CorpusDb();
  auto diags =
      RunLint(Eps(Eps(Input("S"))), db.schema(), CostFacts::Exact(db));
  ASSERT_TRUE(diags.ok()) << diags.status();
  bool found = false;
  for (const LintDiag& d : *diags) {
    if (d.code == "W006") {
      found = true;
      EXPECT_EQ(d.span, "dedup");
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintTest, W006FiresOnDupElimOfSetLikeInputOnlyWithExactFacts) {
  Database db = CorpusDb();
  auto exact =
      RunLint(Eps(Input("R")), db.schema(), CostFacts::Exact(db));
  ASSERT_TRUE(exact.ok());
  bool found = false;
  for (const LintDiag& d : *exact) found |= d.code == "W006";
  EXPECT_TRUE(found);
  // Symbolic facts carry no instance, so dup-freedom of R is unprovable.
  auto symbolic =
      RunLint(Eps(Input("R")), db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(symbolic.ok());
  for (const LintDiag& d : *symbolic) EXPECT_NE(d.code, "W006");
}

TEST(LintTest, W006SilentOnDupElimOfADupHeavyInput) {
  Database db = CorpusDb();
  auto diags = RunLint(Eps(Input("S")), db.schema(), CostFacts::Exact(db));
  ASSERT_TRUE(diags.ok());
  for (const LintDiag& d : *diags) EXPECT_NE(d.code, "W006");
}

TEST(LintTest, W007FiresOnAPartiallyReadProjection) {
  Database db = CorpusDb();
  // The inner MAP builds 2 columns; the outer MAP reads only column 1.
  Expr q = Map(Tup({Proj(Var(0), 1)}),
               Map(Tup({Proj(Var(0), 1), Proj(Var(0), 2)}), Input("R")));
  auto diags = RunLint(q, db.schema(), CostFacts::Exact(db));
  ASSERT_TRUE(diags.ok()) << diags.status();
  bool found = false;
  for (const LintDiag& d : *diags) {
    if (d.code == "W007") {
      found = true;
      EXPECT_NE(d.message.find("dead columns: 2"), std::string::npos)
          << d.message;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintTest, W007SilentWhenEveryColumnIsReadOrTheRowEscapes) {
  Database db = CorpusDb();
  Expr full = Map(Tup({Proj(Var(0), 2), Proj(Var(0), 1)}),
                  Map(Tup({Proj(Var(0), 1), Proj(Var(0), 2)}), Input("R")));
  auto diags = RunLint(full, db.schema(), CostFacts::Exact(db));
  ASSERT_TRUE(diags.ok());
  for (const LintDiag& d : *diags) EXPECT_NE(d.code, "W007");
  // The raw row escaping into the body makes every column live.
  Expr escape = Map(Var(0), Map(Tup({Proj(Var(0), 1), Proj(Var(0), 2)}),
                                Input("R")));
  auto escaped = RunLint(escape, db.schema(), CostFacts::Exact(db));
  ASSERT_TRUE(escaped.ok());
  for (const LintDiag& d : *escaped) EXPECT_NE(d.code, "W007");
}

// ------------------------------- lint edge cases through derived ops

TEST(LintTest, W003FiresThroughDerivedEpsExpansions) {
  Database db = CorpusDb();
  Expr eps = EpsViaPowerset(Input("S"));
  auto diags = RunLint(Monus(eps, eps), db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(diags.ok()) << diags.status();
  bool found = false;
  for (const LintDiag& d : *diags) found |= d.code == "W003";
  EXPECT_TRUE(found);
}

TEST(LintTest, W004FiresOnARewritableDerivedExpansion) {
  Database db = CorpusDb();
  // ∸ of the empty constant bag is removable (monus-empty), buried under
  // a derived expansion.
  Expr q = Monus(EpsViaPowerset(Input("S")), ConstBag(Bag()));
  auto diags = RunLint(q, db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(diags.ok()) << diags.status();
  bool found = false;
  for (const LintDiag& d : *diags) {
    if (d.code == "W004") {
      found = true;
      EXPECT_NE(d.message.find("monus-empty"), std::string::npos)
          << d.message;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintTest, W005FiresPerOccurrenceOnCseSharedSubtrees) {
  Database db = CorpusDb();
  // The same physically shared MAP-over-powerset subtree used twice: the
  // rule reports both occurrences (spans are per pre-order path), even
  // though CSE will evaluate the subtree once.
  Expr shared = Map(Var(0), Pow(Input("S")));
  auto diags =
      RunLint(Uplus(shared, shared), db.schema(), CostFacts::Symbolic());
  ASSERT_TRUE(diags.ok()) << diags.status();
  size_t w005 = 0;
  for (const LintDiag& d : *diags) {
    if (d.code == "W005") {
      w005++;
      EXPECT_EQ(d.span, "uplus > map");
    }
  }
  EXPECT_EQ(w005, 2u);
}

}  // namespace
}  // namespace bagalg
