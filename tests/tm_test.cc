// Tests for the Turing-machine substrate and its algebra encodings:
// native simulation, the Theorem 6.6 BALG²+IFP compiler (cross-checked
// against the native runs), the Theorem 6.1/5.5 builders (N, E, E_b, D, M,
// and the 2i+2 power-nesting claim), and the Lemma 5.7 bounded-arithmetic
// compiler (cross-checked against a native arithmetic evaluator).

#include "src/tm/ifp_compiler.h"

#include <gtest/gtest.h>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/algebra/typecheck.h"
#include "src/tm/arith.h"
#include "src/tm/encoding.h"
#include "src/tm/machine.h"

namespace bagalg {
namespace {

using tm::AnBnMachine;
using tm::ArithFormula;
using tm::ArithTerm;
using tm::BinaryIncrementMachine;
using tm::CompileBoundedFormula;
using tm::CompiledMachine;
using tm::EvenOnesMachine;
using tm::RunMachine;
using tm::RunMachineViaAlgebra;
using tm::TmSpec;
using tm::UnaryIncrementMachine;

Value A(const char* name) { return MakeAtom(name); }

// ----------------------------------------------------------- native TM

TEST(MachineTest, UnaryIncrement) {
  auto r = RunMachine(UnaryIncrementMachine(), "111");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->accepted);
  EXPECT_EQ(r->final_tape, "1111");
  EXPECT_EQ(r->steps, 4u);  // three scans plus the final write
}

TEST(MachineTest, EvenOnesParity) {
  for (size_t n = 0; n <= 6; ++n) {
    auto r = RunMachine(EvenOnesMachine(), std::string(n, '1'));
    ASSERT_TRUE(r.ok()) << n;
    EXPECT_EQ(r->accepted, n % 2 == 0) << n;
    EXPECT_EQ(r->final_tape.back(), n % 2 == 0 ? 'Y' : 'N');
  }
}

TEST(MachineTest, AnBnRecognizer) {
  struct Case {
    const char* word;
    bool accept;
  } cases[] = {{"", true},     {"ab", true},   {"aabb", true},
               {"aaabbb", true}, {"a", false},  {"b", false},
               {"ba", false},  {"aab", false}, {"abb", false},
               {"abab", false}};
  for (const auto& c : cases) {
    auto r = RunMachine(AnBnMachine(), c.word);
    ASSERT_TRUE(r.ok()) << c.word;
    EXPECT_EQ(r->accepted, c.accept) << c.word;
  }
}

TEST(MachineTest, BinaryIncrement) {
  // LSB-first: "11" = 3 -> "001" = 4.
  auto r = RunMachine(BinaryIncrementMachine(), "11");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->final_tape, "001");
}

TEST(MachineTest, StepBudgetAndLeftFall) {
  TmSpec loop;
  loop.name = "loop";
  loop.initial_state = "s";
  loop.accept_state = "acc";
  loop.reject_state = "rej";
  loop.delta[{"s", '_'}] = {"s", '_', tm::Move::kRight};
  auto r = RunMachine(loop, "", 100);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  TmSpec fall;
  fall.name = "fall";
  fall.initial_state = "s";
  fall.accept_state = "acc";
  fall.reject_state = "rej";
  fall.delta[{"s", '_'}] = {"s", '_', tm::Move::kLeft};
  auto r2 = RunMachine(fall, "");
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------ Theorem 6.6: the IFP compiler

TEST(IfpCompilerTest, ExpressionIsBalg2PlusFixpoint) {
  CompiledMachine compiled = CompiledMachine::Compile(EvenOnesMachine());
  Bag init = compiled.EncodeInitialConfig("11", 4).value();
  Schema schema{{"Init", init.type()}};
  auto analysis = AnalyzeExpr(compiled.expression(), schema);
  ASSERT_TRUE(analysis.ok()) << analysis.status();
  EXPECT_TRUE(analysis->uses_fixpoint);
  EXPECT_EQ(analysis->power_nesting, 0);       // no powerset needed
  EXPECT_EQ(analysis->max_type_nesting, 2);    // BALG² types throughout
}

TEST(IfpCompilerTest, UnaryIncrementThroughTheAlgebra) {
  auto r = RunMachineViaAlgebra(UnaryIncrementMachine(), "11", 5);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->accepted);
  EXPECT_EQ(r->final_tape, "111");
}

TEST(IfpCompilerTest, AgreesWithNativeSimulator) {
  struct Case {
    TmSpec spec;
    std::string input;
    size_t cells;
  } cases[] = {
      {UnaryIncrementMachine(), "", 2},
      {UnaryIncrementMachine(), "1", 3},
      {UnaryIncrementMachine(), "111", 5},
      {EvenOnesMachine(), "", 2},
      {EvenOnesMachine(), "1", 3},
      {EvenOnesMachine(), "11", 4},
      {EvenOnesMachine(), "111", 5},
      {BinaryIncrementMachine(), "11", 4},
      {BinaryIncrementMachine(), "101", 5},
      {AnBnMachine(), "ab", 4},
      {AnBnMachine(), "ba", 4},
      {AnBnMachine(), "aabb", 6},
  };
  for (const auto& c : cases) {
    auto native = RunMachine(c.spec, c.input);
    ASSERT_TRUE(native.ok()) << c.spec.name << " " << c.input;
    auto algebra = RunMachineViaAlgebra(c.spec, c.input, c.cells);
    ASSERT_TRUE(algebra.ok())
        << c.spec.name << " '" << c.input << "': " << algebra.status();
    EXPECT_EQ(algebra->accepted, native->accepted)
        << c.spec.name << " " << c.input;
    EXPECT_EQ(algebra->final_state, native->final_state)
        << c.spec.name << " " << c.input;
    EXPECT_EQ(algebra->final_tape, native->final_tape)
        << c.spec.name << " " << c.input;
    EXPECT_EQ(algebra->steps, native->steps) << c.spec.name << " " << c.input;
  }
}

TEST(IfpCompilerTest, HeadEscapeIsDetected) {
  // Tape too small: the head runs off the padded region; the fixpoint
  // stabilizes without a halting tuple.
  auto r = RunMachineViaAlgebra(UnaryIncrementMachine(), "111", 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(IfpCompilerTest, RejectsForeignInputSymbols) {
  CompiledMachine compiled = CompiledMachine::Compile(EvenOnesMachine());
  auto r = compiled.EncodeInitialConfig("1z", 4);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------- Theorem 6.1 / 5.5 builders

TEST(EncodingTest, CardNormalizeCounts) {
  Value a = A("a");
  Database db;
  ASSERT_TRUE(db.Put("B", NCopies(Mult(5), MakeTuple({A("z")}))).ok());
  Evaluator eval;
  auto r = eval.EvalToBag(tm::CardNormalize(Input("B"), a), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->TotalCount(), Mult(5));
  EXPECT_EQ(r->DistinctCount(), 1u);
}

TEST(EncodingTest, ExpBlowupIsExponential) {
  Value a = A("a");
  Evaluator eval;
  for (uint64_t n = 0; n <= 4; ++n) {
    Database db;
    ASSERT_TRUE(db.Put("B", NCopies(Mult(n), MakeTuple({A("z")}))).ok());
    auto r = eval.EvalToBag(tm::ExpBlowup(Input("B"), a), db);
    ASSERT_TRUE(r.ok());
    // N(P(P(N(B)))): P(N) has n+1 members, P(P(N)) has 2^{n+1}.
    EXPECT_EQ(r->TotalCount(), BigNat::TwoPow(n + 1)) << n;
  }
}

TEST(EncodingTest, ExpViaPowerbagIsExactlyTwoToN) {
  Value a = A("a");
  Evaluator eval;
  for (uint64_t n = 0; n <= 6; ++n) {
    Database db;
    ASSERT_TRUE(db.Put("B", NCopies(Mult(n), MakeTuple({A("z")}))).ok());
    auto r = eval.EvalToBag(tm::ExpBlowupViaPowerbag(Input("B"), a), db);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->TotalCount(), BigNat::TwoPow(n)) << n;
  }
}

TEST(EncodingTest, ExpBlowupKMatchesProp63Shape) {
  // Prop 6.3: with k nesting levels, k-1 consecutive powersets are legal;
  // for k = 3 the doubling expression is recovered, and each extra level
  // adds one more exponential: |E_4(B_n)| = 2^(2^(n+1)+1) etc. Checked for
  // micro n where the tower is enumerable.
  Value a = A("a");
  Evaluator eval;
  Limits limits;
  limits.max_powerset_results = 1u << 20;
  Evaluator bounded(limits);
  Database db;
  ASSERT_TRUE(db.Put("B", NCopies(Mult(1), MakeTuple({A("z")}))).ok());
  // Tower for n = 1: |N(B)| = 1; the first P gives n+1 = 2 distinct
  // subbags, and every further P doubles the exponent: 2 -> 4 -> 16 -> ...
  auto k3 = bounded.EvalToBag(tm::ExpBlowupK(Input("B"), 3, a), db);
  ASSERT_TRUE(k3.ok());
  EXPECT_EQ(k3->TotalCount(), BigNat::TwoPow(2));  // 4
  auto k4 = bounded.EvalToBag(tm::ExpBlowupK(Input("B"), 4, a), db);
  ASSERT_TRUE(k4.ok());
  EXPECT_EQ(k4->TotalCount(), BigNat::TwoPow(4));  // 2^(2^2) = 16
  // And k-1 is exactly the power nesting.
  Schema schema{{"B", Type::Bag(Type::Tuple({Type::Atom()}))}};
  for (int k = 3; k <= 6; ++k) {
    auto an = AnalyzeExpr(tm::ExpBlowupK(Input("B"), k, a), schema);
    ASSERT_TRUE(an.ok());
    EXPECT_EQ(an->power_nesting, k - 1) << k;
  }
}

TEST(EncodingTest, IndexDomainEnumeratesIntegerBags) {
  Value a = A("a");
  Database db;
  ASSERT_TRUE(db.Put("B", NCopies(Mult(3), MakeTuple({A("z")}))).ok());
  Evaluator eval;
  // i = 0: D = P(N(B)) = the integer bags 0..3, one occurrence each.
  auto r = eval.EvalToBag(tm::IndexDomain(Input("B"), 0, a), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->TotalCount(), Mult(4));
  EXPECT_TRUE(r->IsSetLike());
}

TEST(EncodingTest, MoveRelationShape) {
  Value a = A("a");
  Database db;
  ASSERT_TRUE(db.Put("B", NCopies(Mult(2), MakeTuple({A("z")}))).ok());
  Expr m = tm::MoveRelation(EvenOnesMachine(), tm::IndexDomain(Input("B"), 0, a), a);
  auto type = TypeOf(m, db.schema());
  ASSERT_TRUE(type.ok()) << type.status();
  // Bag of [before, after] pairs of partial-configuration bags: nesting 3.
  EXPECT_EQ(type->BagNesting(), 3);
  Evaluator eval;
  auto r = eval.EvalToBag(m, db);
  ASSERT_TRUE(r.ok());
  // EvenOnes has 2 L/R moves (the two scanning moves), 3 symbols, and the
  // i=0 domain has 3 positions... each (move, symbol) pair contributes one
  // entry per index: non-empty and composed of 2-tuples.
  EXPECT_FALSE(r->empty());
  EXPECT_TRUE(r->element_type().IsTuple());
  EXPECT_EQ(r->element_type().fields().size(), 2u);
}

TEST(EncodingTest, Theorem61PowerNestingIs2iPlus2) {
  // The proof of Theorem 6.2: the hyper(i)-time construction uses exactly
  // 2i+2 nested powersets. Verified statically for several i.
  Value a = A("a");
  Schema schema{{"B", Type::Bag(Type::Tuple({Type::Atom()}))}};
  for (int i = 0; i <= 3; ++i) {
    Expr skeleton = tm::Theorem61Skeleton(EvenOnesMachine(), Input("B"), i, a);
    auto analysis = AnalyzeExpr(skeleton, schema);
    ASSERT_TRUE(analysis.ok()) << analysis.status();
    EXPECT_EQ(analysis->power_nesting, 2 * i + 2) << "i=" << i;
    // And the type discipline stays within BALG³.
    EXPECT_LE(analysis->max_type_nesting, 3) << "i=" << i;
  }
}

TEST(EncodingTest, Theorem61SkeletonBlowsPastTinyBudgets) {
  // Prop 3.2 in action: even on a 2-element input the full construction
  // exhausts a small powerset budget rather than evaluating.
  Value a = A("a");
  Database db;
  ASSERT_TRUE(db.Put("B", NCopies(Mult(2), MakeTuple({A("z")}))).ok());
  Limits limits;
  limits.max_powerset_results = 4096;
  Evaluator eval(limits);
  Expr skeleton = tm::Theorem61Skeleton(EvenOnesMachine(), Input("B"), 1, a);
  auto r = eval.EvalToBag(skeleton, db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(EncodingTest, LinearOrdersEnumeratesAllTotalOrders) {
  // The Theorem 6.1 "guess an order" device: P of the pair space filtered
  // by totality, antisymmetry and transitivity yields exactly the n!
  // reflexive total orders over the constants.
  Value a = A("a");
  Evaluator eval;
  uint64_t factorial = 1;
  for (uint64_t n = 1; n <= 3; ++n) {
    factorial *= n;
    Bag::Builder builder;
    for (uint64_t i = 0; i < n; ++i) {
      builder.AddOne(MakeTuple({MakeAtom("lo" + std::to_string(i))}));
    }
    Database db;
    ASSERT_TRUE(db.Put("R", std::move(builder).Build().value()).ok());
    auto r = eval.EvalToBag(tm::LinearOrders(Input("R")), db);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->TotalCount(), Mult(factorial)) << "n=" << n;
    EXPECT_TRUE(r->IsSetLike());
    // Each member is a reflexive total order: n(n+1)/2 pairs, all diagonal
    // pairs present.
    for (const BagEntry& e : r->entries()) {
      const Bag& order = e.value.bag();
      EXPECT_EQ(order.TotalCount(), Mult(n * (n + 1) / 2));
      for (uint64_t i = 0; i < n; ++i) {
        Value x = MakeAtom("lo" + std::to_string(i));
        EXPECT_TRUE(order.Contains(MakeTuple({x, x})));
      }
    }
  }
}

TEST(EncodingTest, LinearOrdersRejectsNonOrders) {
  // With two atoms the four subsets of off-diagonal pairs give exactly two
  // valid orders; verify an invalid candidate (both directions) is absent.
  Value x = A("lo0"), y = A("lo1");
  Database db;
  ASSERT_TRUE(
      db.Put("R", MakeBagOf({MakeTuple({x}), MakeTuple({y})})).ok());
  Evaluator eval;
  auto r = eval.EvalToBag(tm::LinearOrders(Input("R")), db);
  ASSERT_TRUE(r.ok());
  Bag cyclic = MakeBagOf({MakeTuple({x, x}), MakeTuple({y, y}),
                          MakeTuple({x, y}), MakeTuple({y, x})});
  EXPECT_FALSE(r->Contains(Value::FromBag(cyclic)));
}

// ------------------------------------------- Lemma 5.7: bounded arithmetic

/// Compiles and evaluates φ with x0 pinned to n and the other variables
/// ranging over 0..bound; returns "satisfiable".
bool EvalCompiled(const ArithFormula& f, size_t num_vars, uint64_t n,
                  uint64_t bound) {
  Value a = MakeAtom("a");
  // Domain for quantified variables: all integer bags 0..bound — built as
  // P of a bound-sized integer.
  Expr bound_int = ConstBag(IntAsBag(bound, a));
  Expr domain = Pow(bound_int);
  std::vector<Expr> domains;
  domains.push_back(ConstBag(MakeBagOf({Value::FromBag(IntAsBag(n, a))})));
  for (size_t i = 1; i < num_vars; ++i) domains.push_back(domain);
  auto compiled = CompileBoundedFormula(f, num_vars, domains, a);
  EXPECT_TRUE(compiled.ok()) << compiled.status();
  if (!compiled.ok()) return false;
  Evaluator eval;
  Database db;
  auto r = eval.EvalToBag(*compiled, db);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() && !r->empty();
}

TEST(ArithTest, NativeEvaluation) {
  // ∃y: y + y = x — evenness.
  ArithFormula even = ArithFormula::Exists(
      1, ArithFormula::Eq(ArithTerm::Add(ArithTerm::Var(1), ArithTerm::Var(1)),
                          ArithTerm::Var(0)));
  for (uint64_t n = 0; n <= 8; ++n) {
    std::vector<uint64_t> assignment = {n, 0};
    EXPECT_EQ(even.EvalNative(assignment, 8), n % 2 == 0) << n;
  }
}

TEST(ArithTest, CompiledEvennessMatchesNative) {
  ArithFormula even = ArithFormula::Exists(
      1, ArithFormula::Eq(ArithTerm::Add(ArithTerm::Var(1), ArithTerm::Var(1)),
                          ArithTerm::Var(0)));
  for (uint64_t n = 0; n <= 6; ++n) {
    EXPECT_EQ(EvalCompiled(even, 2, n, 6), n % 2 == 0) << n;
  }
}

TEST(ArithTest, CompiledCompositenessMatchesNative) {
  // ∃y ∃z: (y+2)(z+2) = x — compositeness with both factors >= 2.
  ArithTerm y2 = ArithTerm::Add(ArithTerm::Var(1), ArithTerm::Const(2));
  ArithTerm z2 = ArithTerm::Add(ArithTerm::Var(2), ArithTerm::Const(2));
  ArithFormula composite = ArithFormula::Exists(
      1, ArithFormula::Exists(
             2, ArithFormula::Eq(ArithTerm::Mul(y2, z2), ArithTerm::Var(0))));
  bool expected[] = {false, false, false, false, true,  false,
                     true,  false, true,  true,  true};
  for (uint64_t n = 0; n <= 10; ++n) {
    EXPECT_EQ(EvalCompiled(composite, 3, n, 4), expected[n]) << n;
  }
}

TEST(ArithTest, CompiledConnectives) {
  // ¬(x = 3) ∧ (x = 3 ∨ x = 4): satisfiable iff x = 4.
  ArithFormula is3 =
      ArithFormula::Eq(ArithTerm::Var(0), ArithTerm::Const(3));
  ArithFormula is4 =
      ArithFormula::Eq(ArithTerm::Var(0), ArithTerm::Const(4));
  ArithFormula f = ArithFormula::And(ArithFormula::Not(is3),
                                     ArithFormula::Or(is3, is4));
  EXPECT_FALSE(EvalCompiled(f, 1, 3, 5));
  EXPECT_TRUE(EvalCompiled(f, 1, 4, 5));
  EXPECT_FALSE(EvalCompiled(f, 1, 5, 5));
}

TEST(ArithTest, CompilerRejectsBadArity) {
  ArithFormula f = ArithFormula::Eq(ArithTerm::Var(0), ArithTerm::Const(1));
  EXPECT_FALSE(CompileBoundedFormula(f, 0, {}, MakeAtom("a")).ok());
  EXPECT_FALSE(
      CompileBoundedFormula(f, 2, {Input("D")}, MakeAtom("a")).ok());
}

}  // namespace
}  // namespace bagalg
