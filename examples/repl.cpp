// Interactive REPL / script runner for the bagalg surface syntax.
//
//   $ ./build/examples/repl                 # interactive
//   $ ./build/examples/repl script.bag      # run a script file
//   $ echo "eval uplus('{{a}}, '{{a}})" | ./build/examples/repl
//
// Commands: let NAME = VALUE | schema NAME : TYPE | eval EXPR | count EXPR
//           type EXPR | analyze EXPR | optimize EXPR | stats | reset
// See src/lang/script.h for the full description.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/lang/script.h"

using namespace bagalg;

int main(int argc, char** argv) {
  lang::ScriptRunner runner;

  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    auto result = runner.RunScript(text.str());
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::cout << *result;
    return 0;
  }

  bool interactive = true;
  if (interactive) {
    std::cout << "bagalg — a nested bag algebra (Grumbach & Milo, PODS'93)\n"
              << "commands: let, schema, eval, count, type, analyze, "
                 "optimize, stats, reset. Ctrl-D exits.\n";
  }
  std::string line;
  while (true) {
    std::cout << "bagalg> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    auto result = runner.RunLine(line);
    if (!result.ok()) {
      std::cout << "error: " << result.status() << "\n";
      continue;
    }
    if (!result->empty()) std::cout << *result << "\n";
  }
  std::cout << "\n";
  return 0;
}
