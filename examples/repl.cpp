// Interactive REPL / script runner for the bagalg surface syntax.
//
//   $ ./build/examples/repl                      # interactive
//   $ ./build/examples/repl script.bag           # run a script file
//   $ ./build/examples/repl --trace=t.json s.bag # ... with query tracing
//   $ echo "eval uplus('{{a}}, '{{a}})" | ./build/examples/repl
//
// Commands: let NAME = VALUE | schema NAME : TYPE | eval EXPR | count EXPR
//           exec EXPR | type EXPR | analyze EXPR | explain [analyze] EXPR
//           optimize EXPR | stats | timing on|off | \metrics | \trace FILE
//           \timeout MS | \memlimit BYTES | \journal [N] | \flightrec ...
//           \prom [FILE] | reset
// Ctrl-C cancels the statement currently running (the session survives;
// at an idle prompt it is a no-op). Ctrl-D exits.
// See src/lang/script.h for the full description.

#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/exec/compile.h"
#include "src/lang/script.h"
#include "src/util/build_info.h"

using namespace bagalg;

namespace {

// Copy of the runner's session token, installed before the signal handler.
// CancellationToken::Cancel is an atomic release store, so calling it from
// the handler is async-signal-safe.
CancellationToken g_cancel;

void HandleInterrupt(int) { g_cancel.Cancel(); }

}  // namespace

int main(int argc, char** argv) {
  lang::ScriptRunner runner;

  g_cancel = runner.cancel_token();
  struct sigaction action = {};
  action.sa_handler = HandleInterrupt;
  sigemptyset(&action.sa_mask);
  // SA_RESTART keeps the blocking getline at the prompt alive across the
  // signal; only the governed statement in flight observes the token.
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, nullptr);

  const char* script_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    constexpr char kTraceFlag[] = "--trace=";
    if (std::strncmp(argv[i], kTraceFlag, sizeof(kTraceFlag) - 1) == 0) {
      auto r = runner.RunLine(std::string("\\trace ") +
                              (argv[i] + sizeof(kTraceFlag) - 1));
      if (!r.ok()) {
        std::cerr << r.status() << "\n";
        return 1;
      }
      continue;
    }
    script_path = argv[i];
  }

  if (script_path != nullptr) {
    std::ifstream file(script_path);
    if (!file) {
      std::cerr << "cannot open " << script_path << "\n";
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    auto result = runner.RunScript(text.str());
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      // A governor trip leaves a flight-recorder dump behind — the black
      // box of the aborted statement. Surface it next to the error.
      std::string dump = runner.TakeFlightDump();
      if (!dump.empty()) std::cerr << dump << "\n";
      return 1;
    }
    std::cout << *result;
    return 0;
  }

  bool interactive = true;
  if (interactive) {
    std::cout << BuildInfoString() << " engine="
              << exec::EngineName(exec::EngineFromEnv()) << "\n"
              << "bagalg — a nested bag algebra (Grumbach & Milo, PODS'93)\n"
              << "commands: let, schema, eval, count, exec, type, analyze, "
                 "explain [analyze|cost|ir], optimize, stats, timing, \\lint, "
                 "\\budget, \\timeout, \\memlimit, \\metrics, \\trace, "
                 "\\journal, \\flightrec, \\prom, reset. "
                 "Ctrl-C cancels a running query; Ctrl-D exits.\n";
  }
  std::string line;
  while (true) {
    std::cout << "bagalg> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    auto result = runner.RunLine(line);
    if (!result.ok()) {
      std::cout << "error: " << result.status() << "\n";
      std::string dump = runner.TakeFlightDump();
      if (!dump.empty()) std::cout << dump << "\n";
      continue;
    }
    if (!result->empty()) std::cout << *result << "\n";
  }
  std::cout << "\n";
  return 0;
}
