// Asymptotic probabilities: where the 0–1 law breaks (paper §4, Ex. 4.2).
//
//   $ ./build/examples/probabilities [trials] [seed]
//
// Constant-free relational-algebra queries have asymptotic probability 0 or
// 1; the BALG¹ cardinality comparison |R| > |S| converges to 1/2 instead
// ([FGT93]). This example estimates all three probabilities on growing
// random monadic databases by evaluating the actual algebra expressions.

#include <cstdio>
#include <cstdlib>

#include "src/stats/probability.h"
#include "src/util/rng.h"

using namespace bagalg;

int main(int argc, char** argv) {
  size_t trials = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  Rng rng(seed);

  std::printf("%6s  %14s  %14s  %14s\n", "n", "mu(|R|>|S|)", "mu(|R|=|S|)",
              "mu(R nonempty)");
  std::printf("%6s  %14s  %14s  %14s\n", "", "limit: 1/2", "limit: 0",
              "limit: 1");
  for (size_t n : {2, 4, 8, 16, 32, 64}) {
    auto greater = ProbCardGreater(n, trials, rng);
    auto equal = ProbCardEqual(n, trials, rng);
    auto nonempty = ProbNonemptyMonadic(n, trials, rng);
    if (!greater.ok() || !equal.ok() || !nonempty.ok()) {
      std::fprintf(stderr, "estimation failed\n");
      return 1;
    }
    std::printf("%6zu  %14.3f  %14.3f  %14.3f\n", n, greater->probability,
                equal->probability, nonempty->probability);
  }
  std::printf(
      "\nBALG¹'s counting power is exactly what breaks the 0-1 law: the\n"
      "middle column vanishes, the left column settles at 1/2, and the\n"
      "FO-style query on the right obeys the law (limit 1).\n");
  return 0;
}
