// Turing machines running inside the bag algebra — Theorem 6.6.
//
//   $ ./build/examples/turing_complete [input]
//
// Compiles three machines into single BALG²+IFP expressions and executes
// them through the ordinary query evaluator: configurations are bags of
// [time, position, symbol, state] tuples, and head movement is bag
// arithmetic (position ⊎ {{tick}} / position ∸ {{tick}}).

#include <iostream>
#include <string>

#include "src/algebra/typecheck.h"
#include "src/tm/ifp_compiler.h"
#include "src/tm/machine.h"

using namespace bagalg;
using namespace bagalg::tm;

namespace {

void Demo(const TmSpec& spec, const std::string& input, size_t cells) {
  std::cout << "machine '" << spec.name << "' on input \"" << input
            << "\":\n";
  auto native = RunMachine(spec, input);
  if (!native.ok()) {
    std::cerr << "  native: " << native.status() << "\n";
    return;
  }
  EvalStats stats;
  auto algebra = RunMachineViaAlgebra(spec, input, cells, Limits::Default(),
                                      &stats);
  if (!algebra.ok()) {
    std::cerr << "  algebra: " << algebra.status() << "\n";
    return;
  }
  std::cout << "  native : " << (native->accepted ? "ACCEPT" : "REJECT")
            << " in " << native->steps << " steps, tape \""
            << native->final_tape << "\"\n";
  std::cout << "  algebra: " << (algebra->accepted ? "ACCEPT" : "REJECT")
            << " in " << algebra->steps << " steps, tape \""
            << algebra->final_tape << "\"  (" << stats.fixpoint_iterations
            << " fixpoint iterations, " << stats.steps
            << " operator applications)\n";
  std::cout << "  agreement: "
            << (native->accepted == algebra->accepted &&
                        native->final_tape == algebra->final_tape
                    ? "exact"
                    : "MISMATCH")
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Show the compiled expression once: a single algebra term.
  CompiledMachine compiled = CompiledMachine::Compile(EvenOnesMachine());
  std::string text = compiled.expression().ToString();
  Schema schema{{"Init", compiled.EncodeInitialConfig("1", 3)->type()}};
  auto analysis = AnalyzeExpr(compiled.expression(), schema);
  std::cout << "compiled 'even-ones' is one BALG²+IFP expression ("
            << (analysis.ok() ? analysis->node_count : 0) << " AST nodes, "
            << "type nesting "
            << (analysis.ok() ? analysis->max_type_nesting : -1)
            << ", no powerset), first 160 chars:\n  " << text.substr(0, 160)
            << "...\n\n";

  std::string unary = argc > 1 ? argv[1] : "111";
  Demo(UnaryIncrementMachine(), unary, unary.size() + 2);
  Demo(EvenOnesMachine(), "1111", 6);
  Demo(EvenOnesMachine(), "111", 5);
  Demo(AnBnMachine(), "aabb", 6);
  Demo(AnBnMachine(), "aab", 5);
  Demo(BinaryIncrementMachine(), "111", 5);  // 7 + 1 = 8 = "0001"
  return 0;
}
