// Degree analysis on a web-link graph — the paper's Example 4.1 in action.
//
//   $ ./build/examples/degree_analysis [num_pages] [seed]
//
// The query "in-degree(p) > out-degree(p)" is expressible in BALG¹ but not
// in the relational algebra (not even in infinitary logic, §4): the bags
// count for free. This example runs it per node over a random link graph
// and ranks "authority" pages, then shows the Theorem 5.2 variant on
// set-valued nodes (the Fig 1 star graphs).

#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/games/structures.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

using namespace bagalg;

int main(int argc, char** argv) {
  size_t num_pages = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  Rng rng(seed);
  Bag links = RandomGraph(rng, num_pages, 0.35);
  Database db;
  if (Status st = db.Put("Links", links); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "link graph over " << num_pages << " pages, "
            << links.TotalCount() << " links\n\n";

  Evaluator eval;
  std::cout << "pages whose in-degree exceeds their out-degree "
               "(Example 4.1, one BALG¹ query per page):\n";
  for (size_t i = 0; i < num_pages; ++i) {
    Value page = MakeAtom("v" + std::to_string(i));
    Expr q = InDegreeGreaterThanOut(Input("Links"), page);
    auto r = eval.EvalToBag(q, db);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return 1;
    }
    if (!r->empty()) {
      // The result's multiplicity is exactly the degree surplus.
      std::cout << "  v" << i << "  surplus in-links: " << r->TotalCount()
                << "\n";
    }
  }

  // Reachability via the inflationary fixpoint (§6): which pages can reach
  // page v0?
  Expr tc = TransitiveClosure(Input("Links"));
  Expr reach_v0 = Select(Proj(Var(0), 2), ConstExpr(MakeAtom("v0")), tc);
  auto reach = eval.EvalToBag(reach_v0, db);
  if (reach.ok()) {
    std::cout << "\npages that can reach v0 (transitive closure via IFP): "
              << reach->DistinctCount() << "\n";
  }

  // Theorem 5.2's nested variant: nodes that are *sets* of constants.
  auto star = games::BuildFig1StarGraphs(6);
  if (!star.ok()) {
    std::cerr << star.status() << "\n";
    return 1;
  }
  Database db_g, db_gp;
  (void)db_g.Put("G", games::EdgesAsBag(star->g));
  (void)db_gp.Put("G", games::EdgesAsBag(star->g_prime));
  Expr phi = InDegreeGreaterThanOut(Input("G"), star->alpha);
  auto on_g = eval.EvalToBag(phi, db_g);
  auto on_gp = eval.EvalToBag(phi, db_gp);
  std::cout << "\nFig 1 star graphs (n = 6, nodes are sets):\n"
            << "  Φ on balanced G:  "
            << (on_g.ok() && on_g->empty() ? "false" : "true") << "\n"
            << "  Φ on inverted G': "
            << (on_gp.ok() && !on_gp->empty() ? "true" : "false") << "\n"
            << "Φ is BALG² — no RALG² query separates these graphs "
               "(Theorem 5.2; see bench_game for the pebble-game witness)\n";
  return 0;
}
