// bagalgd — a fault-tolerant multi-client BALG server.
//
//   $ ./build/examples/bagalgd --port=8080
//   bagalgd listening on 127.0.0.1:8080
//   $ curl -s localhost:8080/v1/statement -d
//       '{"session":"s1","statement":"eval uplus(X, X)"}'
//   {"ok":true,"outcome":"ok","session":"s1","output":"{{a: 2}}", ...}
//
// Flags (all optional):
//   --host=ADDR            listen address        (default 127.0.0.1)
//   --port=N               listen port, 0 = any  (default 0)
//   --executors=N          statement lanes       (default 4)
//   --queue=N              admission queue bound (default 64)
//   --max-connections=N    connection cap        (default 4096)
//   --max-sessions=N       session cap           (default 128)
//   --stream-threshold=N   chunk-stream result bags with >= N entries
//                          (default 512, 0 = never stream)
//   --timeout-ms=N         per-statement wall deadline ceiling (0 = off)
//   --memlimit-bytes=N     per-statement memory cap ceiling    (0 = off)
//   --budget=N             cost-budget admission ceiling       (0 = off)
//   --journal-dir=DIR      flush session journals here on close/drain
//
// SIGTERM and SIGINT begin a graceful drain: stop accepting, shed the
// queue as 503, cancel in-flight statements, flush journals, exit 0.
// Chaos: run under BAGALG_FAULT=io:p=0.05:seed=7 to inject short reads,
// disconnects, and accept failures deterministically (docs/SERVER.md).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/net/server.h"
#include "src/util/build_info.h"

using namespace bagalg;

namespace {

// The handler only touches the server through the async-signal-safe
// RequestShutdown (atomic store + shutdown(2)).
net::Server* g_server = nullptr;

void HandleShutdownSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* eq = std::strchr(arg, '=');
    const std::string flag(arg, eq != nullptr
                                    ? static_cast<size_t>(eq - arg)
                                    : std::strlen(arg));
    const char* value = eq != nullptr ? eq + 1 : "";
    uint64_t n = 0;
    if (flag == "--host") {
      options.host = value;
    } else if (flag == "--port" && ParseUint(value, &n) && n <= 65535) {
      options.port = static_cast<uint16_t>(n);
    } else if (flag == "--executors" && ParseUint(value, &n) && n > 0) {
      options.executors = static_cast<unsigned>(n);
    } else if (flag == "--queue" && ParseUint(value, &n) && n > 0) {
      options.queue_capacity = static_cast<size_t>(n);
    } else if (flag == "--max-connections" && ParseUint(value, &n) && n > 0) {
      options.max_connections = static_cast<size_t>(n);
    } else if (flag == "--max-sessions" && ParseUint(value, &n) && n > 0) {
      options.max_sessions = static_cast<size_t>(n);
    } else if (flag == "--timeout-ms" && ParseUint(value, &n)) {
      options.default_timeout_ms = n;
    } else if (flag == "--memlimit-bytes" && ParseUint(value, &n)) {
      options.default_memlimit_bytes = n;
    } else if (flag == "--budget" && ParseUint(value, &n)) {
      options.cost_budget = n;
    } else if (flag == "--stream-threshold" && ParseUint(value, &n)) {
      options.stream_entries_threshold = static_cast<size_t>(n);
    } else if (flag == "--journal-dir") {
      options.journal_dir = value;
    } else {
      std::cerr << "bagalgd: bad flag: " << arg << "\n";
      return 2;
    }
  }

  const std::string host = options.host;
  auto server = net::Server::Start(std::move(options));
  if (!server.ok()) {
    std::cerr << "bagalgd: " << server.status() << "\n";
    return 1;
  }
  g_server = server->get();

  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  // The smoke client parses this exact line to find the bound port; keep
  // it first on stdout and flushed.
  std::cout << "bagalgd listening on " << host << ":"
            << (*server)->port() << "\n"
            << BuildInfoString() << "\n"
            << std::flush;

  (*server)->Wait();

  const net::ServerStats stats = (*server)->stats();
  std::cerr << "bagalgd: drained; requests=" << stats.requests
            << " ok=" << stats.ok << " refused=" << stats.refused
            << " shed=" << stats.shed << " tripped=" << stats.tripped
            << " errors=" << stats.errors << " io_errors=" << stats.io_errors
            << " keepalive_reuses=" << stats.keepalive_reuses
            << " pipelined=" << stats.pipelined
            << " bag1=" << stats.bag1_requests
            << " streamed=" << stats.streamed_responses << "\n";
  return 0;
}
