// GROUP BY through the bag algebra: nest + the §3 aggregates.
//
//   $ ./build/examples/aggregates
//
// A sales table [customer, amount-as-integer-bag] is grouped per customer
// with nest (§7) and reduced with the aggregates the paper defines inside
// the algebra (§3): count via MAP-normalization, sum via δ, average via
// the powerset selection — SQL's GROUP BY + COUNT/SUM/AVG, entirely as
// BALG² expressions.

#include <cstdio>
#include <vector>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/algebra/typecheck.h"

using namespace bagalg;

int main() {
  Value unit = MakeAtom("u");
  struct Sale {
    const char* customer;
    uint64_t amount;
  };
  std::vector<Sale> sales = {
      {"alice", 4}, {"alice", 6}, {"alice", 2}, {"bob", 5},
      {"bob", 5},   {"carol", 7}, {"carol", 9},
  };
  // Sales as [customer, amount] with amounts bag-encoded (the paper's
  // integers-as-bags convention).
  Bag::Builder builder;
  for (const Sale& s : sales) {
    builder.AddOne(Value::Tuple(
        {MakeAtom(s.customer), Value::FromBag(IntAsBag(s.amount, unit))}));
  }
  Database db;
  if (Status st = db.Put("Sales", std::move(builder).Build().value());
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // GROUP BY customer: nest the amount column.
  Expr grouped = NestExpr(Input("Sales"), {2});
  Evaluator eval;
  auto groups = eval.EvalToBag(grouped, db);
  if (!groups.ok()) {
    std::fprintf(stderr, "%s\n", groups.status().ToString().c_str());
    return 1;
  }
  auto analysis = AnalyzeExpr(grouped, db.schema());
  std::printf("nest(Sales) : %s  (BALG^%d)\n\n",
              analysis.ok() ? analysis->type.ToString().c_str() : "?",
              analysis.ok() ? analysis->max_type_nesting : -1);

  std::printf("%-8s %7s %7s %7s   (aggregates computed in the algebra)\n",
              "customer", "count", "sum", "avg");
  for (const BagEntry& group : groups->entries()) {
    // Each group is [customer, {{[amount-bag]}}]; unwrap the inner column
    // into a bag of integer bags for the aggregate expressions.
    const Value& customer = group.value.fields()[0];
    const Bag& column = group.value.fields()[1].bag();
    Bag::Builder ints;
    for (const BagEntry& row : column.entries()) {
      ints.Add(row.value.fields()[0], row.count);
    }
    Database group_db;
    (void)group_db.Put("G", std::move(ints).Build().value());

    auto count =
        eval.EvalToBag(CountAgg(Input("G"), unit), group_db).value();
    auto sum = eval.EvalToBag(SumAgg(Input("G")), group_db).value();
    auto avg = eval.EvalToBag(AverageAgg(Input("G"), unit), group_db).value();
    std::printf("%-8s %7s %7s %7s\n", customer.ToString().c_str(),
                count.TotalCount().ToString().c_str(),
                sum.TotalCount().ToString().c_str(),
                avg.empty() ? "-" : avg.TotalCount().ToString().c_str());
  }
  std::printf(
      "\n('-' marks a non-integral average: the paper's construction\n"
      " selects the subbags x of the sum with |x|*count = sum, so only\n"
      " exact divisions produce a witness.)\n");
  return 0;
}
