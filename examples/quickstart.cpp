// Quickstart: build bags, run the BALG operators, evaluate queries, and use
// the surface syntax.
//
//   $ ./build/examples/quickstart
//
// Walks through the paper's §3 operator zoo on a small orders database.

#include <iostream>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/algebra/typecheck.h"
#include "src/lang/parser.h"

using namespace bagalg;

int main() {
  // --- Build a bag database: orders as [customer, item] with duplicates
  // (a customer buying the same item twice is two occurrences — the
  // whole point of bags, §1).
  Value alice = MakeAtom("alice"), bob = MakeAtom("bob");
  Value tea = MakeAtom("tea"), coffee = MakeAtom("coffee");
  Bag orders = MakeBag({
      {MakeTuple({alice, tea}), 3},
      {MakeTuple({alice, coffee}), 1},
      {MakeTuple({bob, tea}), 2},
  });
  Database db;
  if (Status st = db.Put("Orders", orders); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "Orders = " << orders << "\n";
  std::cout << "cardinality |Orders| = " << orders.TotalCount() << ", "
            << orders.DistinctCount() << " distinct\n\n";

  Evaluator eval;
  auto show = [&](const char* label, const Expr& e) {
    auto r = eval.EvalToBag(e, db);
    if (!r.ok()) {
      std::cerr << label << ": " << r.status() << "\n";
      return;
    }
    std::cout << label << "\n  " << e.ToString() << "\n  = " << *r << "\n\n";
  };

  // --- Projection keeps duplicates (the cheap plan SQL engines pick):
  show("items bought (projection, duplicates kept)",
       ProjectAttrs(Input("Orders"), {2}));
  show("items bought (after duplicate elimination)",
       Eps(ProjectAttrs(Input("Orders"), {2})));

  // --- The four unions/differences differ in multiplicity arithmetic:
  Expr o = Input("Orders");
  show("Orders ⊎ Orders (additive union: counts add)", Uplus(o, o));
  show("Orders ∪ Orders (maximal union: counts max)", Umax(o, o));
  show("Orders − dedup(Orders) (monus: surplus copies)", Monus(o, Eps(o)));

  // --- Aggregates from §3, defined inside the algebra:
  Value unit = MakeAtom("u");
  show("count(Orders) as an integer bag", CountAgg(Input("Orders"), unit));

  // --- Selection with lambda-expression equality:
  show("alice's orders",
       Select(Proj(Var(0), 1), ConstExpr(alice), Input("Orders")));

  // --- Powerset: every sub-bag of alice's coffee orders, exactly once.
  show("P(alice's coffee orders)",
       Pow(Select(Proj(Var(0), 2), ConstExpr(coffee), Input("Orders"))));

  // --- The same queries through the parser:
  auto parsed = lang::ParseExpr("sel(x -> proj(1, x) == 'alice, Orders)");
  if (parsed.ok()) {
    auto r = eval.EvalToBag(*parsed, db);
    std::cout << "parsed surface syntax: " << parsed->ToString() << "\n  = "
              << (r.ok() ? r->ToString() : r.status().ToString()) << "\n\n";
  }

  // --- Static analysis: which fragment does a query live in?
  Expr nested = Pow(ProjectAttrs(Input("Orders"), {1}));
  auto analysis = AnalyzeExpr(nested, db.schema());
  if (analysis.ok()) {
    std::cout << "analysis of " << nested.ToString() << ":\n"
              << "  type = " << analysis->type << ", fragment = BALG^"
              << analysis->max_type_nesting
              << ", power nesting = " << analysis->power_nesting << "\n";
  }
  std::cout << "\nevaluator stats: " << eval.stats().ToString() << "\n";
  return 0;
}
