// Experiment E7 — asymptotic probabilities (paper §4, Example 4.2).
//
// Paper claims: boolean constant-free RALG queries obey a 0–1 law; the
// BALG¹ query |R| > |S| has asymptotic probability exactly 1/2 ([FGT93]
// proves the possible limits for such counting sentences are 0, 1/2, 1).
// The table charts empirical μ_n for three queries as n grows; the
// benchmarks measure estimation throughput.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/stats/probability.h"
#include "src/util/rng.h"

using namespace bagalg;

namespace {

void PrintConvergenceTable() {
  std::printf("=== E7: empirical mu_n vs the paper's limits ===\n");
  std::printf("%6s  %14s  %14s  %14s\n", "n", "mu(|R|>|S|)", "mu(|R|=|S|)",
              "mu(R nonempty)");
  std::printf("%6s  %14s  %14s  %14s\n", "limit", "1/2", "0", "1");
  Rng rng(2026);
  const size_t trials = 2000;
  for (size_t n : {2, 4, 8, 16, 32, 64, 128}) {
    auto greater = ProbCardGreater(n, trials, rng);
    auto equal = ProbCardEqual(n, trials, rng);
    auto nonempty = ProbNonemptyMonadic(n, trials, rng);
    if (!greater.ok() || !equal.ok() || !nonempty.ok()) return;
    std::printf("%6zu  %14.3f  %14.3f  %14.3f\n", n, greater->probability,
                equal->probability, nonempty->probability);
  }
  std::printf("\n");
}

void BM_EstimateCardGreater(benchmark::State& state) {
  Rng rng(3);
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto r = ProbCardGreater(n, 50, rng);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_EstimateCardGreater)->RangeMultiplier(4)->Range(4, 256);

}  // namespace

int main(int argc, char** argv) {
  PrintConvergenceTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
