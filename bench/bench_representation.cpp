// Experiment E19b — the §3 representation ablation: explicit duplicates vs
// counted (element, multiplicity) pairs.
//
// The paper defines complexity against the *standard encoding* (duplicates
// written out, §2) but notes bags "can be encoded more efficiently with
// the number of occurrences associated to each element". bagalg stores the
// counted form; this bench quantifies the gap the paper describes: as the
// duplication factor grows, the standard-encoding size explodes linearly
// while the counted size stays flat — and operator cost follows the
// counted size.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/bag_ops.h"
#include "src/core/encoding.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

using namespace bagalg;

namespace {

Bag BagWithDupFactor(size_t distinct, uint64_t dup_factor) {
  Rng rng(99);
  Bag::Builder builder;
  std::vector<Value> atoms = AtomPool(16);
  for (size_t i = 0; i < distinct; ++i) {
    builder.Add(MakeTuple({atoms[rng.Below(atoms.size())],
                           atoms[rng.Below(atoms.size())],
                           MakeAtom("id" + std::to_string(i))}),
                Mult(dup_factor));
  }
  return std::move(builder).Build().value();
}

void PrintSizeTable() {
  std::printf(
      "=== E19b: standard-encoding size vs counted size (64 distinct "
      "tuples) ===\n");
  std::printf("%12s  %16s  %14s  %8s\n", "dup factor", "standard size",
              "counted size", "ratio");
  for (uint64_t dup : {1, 4, 16, 64, 256, 1024, 4096}) {
    Bag bag = BagWithDupFactor(64, dup);
    BigNat standard = StandardEncodingSize(bag);
    uint64_t counted = CountedEncodingSize(bag);
    std::printf("%12llu  %16s  %14llu  %8.0f\n",
                static_cast<unsigned long long>(dup),
                standard.ToString().c_str(),
                static_cast<unsigned long long>(counted),
                standard.ToDouble() / static_cast<double>(counted));
  }
  std::printf(
      "(the paper's point: duplicates are often kept precisely to avoid\n"
      " paying duplicate elimination — the counted engine makes the bag\n"
      " operators cost O(distinct), independent of the duplication.)\n\n");
}

void BM_UnionByDupFactor(benchmark::State& state) {
  Bag a = BagWithDupFactor(256, static_cast<uint64_t>(state.range(0)));
  Bag b = BagWithDupFactor(256, static_cast<uint64_t>(state.range(0)) + 1);
  for (auto _ : state) {
    auto r = AdditiveUnion(a, b);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_UnionByDupFactor)->RangeMultiplier(16)->Range(1, 1 << 16);

void BM_ProductByDupFactor(benchmark::State& state) {
  Bag a = BagWithDupFactor(64, static_cast<uint64_t>(state.range(0)));
  Bag b = BagWithDupFactor(64, static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto r = CartesianProduct(a, b);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ProductByDupFactor)->RangeMultiplier(16)->Range(1, 1 << 16);

void BM_DupElimByDupFactor(benchmark::State& state) {
  // The operation the duplicates were kept to avoid: with the counted
  // representation it is O(distinct) regardless of the factor.
  Bag a = BagWithDupFactor(1024, static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto r = DupElim(a);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DupElimByDupFactor)->RangeMultiplier(16)->Range(1, 1 << 16);

void BM_StandardSizeAccounting(benchmark::State& state) {
  Bag a = BagWithDupFactor(1024, static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto s = StandardEncodingSize(a);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_StandardSizeAccounting)->RangeMultiplier(16)->Range(1, 1 << 16);

}  // namespace

int main(int argc, char** argv) {
  PrintSizeTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
