// Experiments E15/E16 — the Theorem 5.5 / 6.1 encoding machinery.
//
// E15 (Lemma 5.7): bounded arithmetic compiled into the algebra — the
// table cross-checks compiled formulas against a native evaluator and
// shows the doubling expressions E(B) (powerset form) and E_b(B)
// (powerbag form) producing the claimed exponentials.
// E16 (Theorem 6.1/6.2): the index-domain builders D_i(B) = P(E^i(B)) and
// the full TM skeleton — measured statically: power nesting is exactly
// 2i+2, the quantity driving the Theorem 6.2 space hierarchy.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/algebra/typecheck.h"
#include "src/tm/arith.h"
#include "src/tm/encoding.h"
#include "src/tm/machine.h"

using namespace bagalg;
using namespace bagalg::tm;

namespace {

void PrintDoublingTable() {
  std::printf("=== E15a: the doubling expressions ===\n");
  std::printf("%4s  %14s  %14s   %s\n", "n", "|E(B_n)|", "|E_b(B_n)|",
              "paper: 2^(n+1) (P form), 2^n (P_b form)");
  Value a = MakeAtom("a");
  Evaluator eval;
  for (uint64_t n = 0; n <= 8; ++n) {
    Database db;
    (void)db.Put("B", NCopies(Mult(n), MakeTuple({MakeAtom("z")})));
    Bag e = eval.EvalToBag(ExpBlowup(Input("B"), a), db).value();
    Bag eb = eval.EvalToBag(ExpBlowupViaPowerbag(Input("B"), a), db).value();
    std::printf("%4llu  %14s  %14s\n", static_cast<unsigned long long>(n),
                e.TotalCount().ToString().c_str(),
                eb.TotalCount().ToString().c_str());
  }
  std::printf("\n");
}

void PrintArithTable() {
  std::printf(
      "=== E15b: Lemma 5.7 — bounded arithmetic through the algebra ===\n");
  Value a = MakeAtom("a");
  // evenness: ∃y. y+y = x   |  compositeness: ∃y∃z. (y+2)(z+2) = x
  ArithFormula even = ArithFormula::Exists(
      1, ArithFormula::Eq(ArithTerm::Add(ArithTerm::Var(1), ArithTerm::Var(1)),
                          ArithTerm::Var(0)));
  ArithTerm y2 = ArithTerm::Add(ArithTerm::Var(1), ArithTerm::Const(2));
  ArithTerm z2 = ArithTerm::Add(ArithTerm::Var(2), ArithTerm::Const(2));
  ArithFormula composite = ArithFormula::Exists(
      1, ArithFormula::Exists(
             2, ArithFormula::Eq(ArithTerm::Mul(y2, z2), ArithTerm::Var(0))));
  std::printf("%4s  %10s %10s  %12s %12s\n", "n", "even(alg)", "even(nat)",
              "comp(alg)", "comp(nat)");
  Evaluator eval;
  for (uint64_t n = 0; n <= 9; ++n) {
    auto run = [&](const ArithFormula& f, size_t vars, uint64_t bound) {
      Expr domain = Pow(ConstBag(IntAsBag(bound, a)));
      std::vector<Expr> domains;
      domains.push_back(
          ConstBag(MakeBagOf({Value::FromBag(IntAsBag(n, a))})));
      for (size_t i = 1; i < vars; ++i) domains.push_back(domain);
      Expr compiled = CompileBoundedFormula(f, vars, domains, a).value();
      Database db;
      return !eval.EvalToBag(compiled, db).value().empty();
    };
    std::vector<uint64_t> asg2 = {n, 0};
    std::vector<uint64_t> asg3 = {n, 0, 0};
    std::printf("%4llu  %10s %10s  %12s %12s\n",
                static_cast<unsigned long long>(n),
                run(even, 2, 9) ? "true" : "false",
                even.EvalNative(asg2, 9) ? "true" : "false",
                run(composite, 3, 4) ? "true" : "false",
                composite.EvalNative(asg3, 4) ? "true" : "false");
  }
  std::printf("\n");
}

void PrintPowerNestingTable() {
  std::printf(
      "=== E16: Theorem 6.1 construction — power nesting is 2i+2 ===\n");
  std::printf("%4s  %14s  %14s  %12s\n", "i", "power nesting", "paper claim",
              "AST nodes");
  Value a = MakeAtom("a");
  Schema schema{{"B", Type::Bag(Type::Tuple({Type::Atom()}))}};
  for (int i = 0; i <= 4; ++i) {
    Expr skeleton = Theorem61Skeleton(EvenOnesMachine(), Input("B"), i, a);
    auto an = AnalyzeExpr(skeleton, schema);
    if (!an.ok()) continue;
    std::printf("%4d  %14d  %14d  %12zu\n", i, an->power_nesting, 2 * i + 2,
                an->node_count);
  }
  std::printf(
      "(Theorem 6.2: power nesting i buys hyper(~i/2) time — every two\n"
      " extra nested powersets climb one hyperexponential level.)\n\n");
}

void BM_CompileArithFormula(benchmark::State& state) {
  Value a = MakeAtom("a");
  ArithFormula even = ArithFormula::Exists(
      1, ArithFormula::Eq(ArithTerm::Add(ArithTerm::Var(1), ArithTerm::Var(1)),
                          ArithTerm::Var(0)));
  Expr domain = Pow(ConstBag(IntAsBag(8, a)));
  std::vector<Expr> domains = {domain, domain};
  for (auto _ : state) {
    auto r = CompileBoundedFormula(even, 2, domains, a);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CompileArithFormula);

void BM_EvalCompiledEvenness(benchmark::State& state) {
  Value a = MakeAtom("a");
  uint64_t bound = static_cast<uint64_t>(state.range(0));
  ArithFormula even = ArithFormula::Exists(
      1, ArithFormula::Eq(ArithTerm::Add(ArithTerm::Var(1), ArithTerm::Var(1)),
                          ArithTerm::Var(0)));
  Expr domain = Pow(ConstBag(IntAsBag(bound, a)));
  std::vector<Expr> domains = {
      ConstBag(MakeBagOf({Value::FromBag(IntAsBag(bound / 2, a))})), domain};
  Expr compiled = CompileBoundedFormula(even, 2, domains, a).value();
  Database db;
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(compiled, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvalCompiledEvenness)->RangeMultiplier(2)->Range(4, 64);

void BM_IndexDomainI0(benchmark::State& state) {
  Value a = MakeAtom("a");
  Database db;
  (void)db.Put("B", NCopies(Mult(static_cast<uint64_t>(state.range(0))),
                            MakeTuple({MakeAtom("z")})));
  Expr d = IndexDomain(Input("B"), 0, a);
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(d, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IndexDomainI0)->RangeMultiplier(4)->Range(4, 1024);

}  // namespace

int main(int argc, char** argv) {
  PrintDoublingTable();
  PrintArithTable();
  PrintPowerNestingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
