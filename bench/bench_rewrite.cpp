// Experiment E19a — §3 optimization: algebraic rewriting.
//
// The paper notes the bag operators obey the classical laws and that
// selections push down as over sets. The table shows which rules fire on a
// query zoo and verifies semantics preservation; the benchmarks compare
// evaluation time of original vs optimized plans on a selective
// product-heavy pipeline (the classic win for selection push-down).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/algebra/rewrite.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

using namespace bagalg;

namespace {

Schema TwoBagSchema() {
  Type tup2 = Type::Tuple({Type::Atom(), Type::Atom()});
  return Schema{{"A", Type::Bag(tup2)}, {"B", Type::Bag(tup2)}};
}

/// σ_{1=2}(A × B): predicate touches only A's attributes — push-down bait.
Expr SelectiveJoin() {
  return Select(Proj(Var(0), 1), Proj(Var(0), 2),
                Product(Input("A"), Input("B")));
}

void PrintRuleTable() {
  std::printf("=== E19a: rewrite rules firing on a query zoo ===\n");
  Schema schema = TwoBagSchema();
  struct Row {
    const char* label;
    Expr expr;
  } rows[] = {
      {"sigma over product (left attrs)", SelectiveJoin()},
      {"sigma over uplus",
       Select(Proj(Var(0), 1), Proj(Var(0), 2),
              Uplus(Input("A"), Input("B")))},
      {"eps(eps(A))", Eps(Eps(Input("A")))},
      {"eps(pow(A))", Eps(Pow(Input("A")))},
      {"A umax A", Umax(Input("A"), Input("A"))},
      {"flat(map beta)", Destroy(Map(Beta(Var(0)), Input("A")))},
      {"closed constant fold",
       Product(Input("A"),
               Uplus(ConstBag(MakeBagOf({MakeTuple(
                         {MakeAtom("k"), MakeAtom("k")})})),
                     ConstBag(MakeBagOf({MakeTuple(
                         {MakeAtom("k"), MakeAtom("k")})}))))},
  };
  Rng rng(55);
  FlatBagSpec spec;
  spec.arity = 2;
  Evaluator eval;
  for (const Row& row : rows) {
    std::map<std::string, size_t> applied;
    auto optimized = Optimize(row.expr, schema, RewriteOptions{}, &applied);
    if (!optimized.ok()) continue;
    // Semantic check on one random database.
    Database db;
    (void)db.Put("A", RandomFlatBag(rng, spec));
    (void)db.Put("B", RandomFlatBag(rng, spec));
    auto r1 = eval.EvalToBag(row.expr, db);
    auto r2 = eval.EvalToBag(*optimized, db);
    std::string rules;
    for (const auto& [name, count] : applied) {
      rules += name + "x" + std::to_string(count) + " ";
    }
    std::printf("  %-34s rules: %-42s %s\n", row.label,
                rules.empty() ? "(none)" : rules.c_str(),
                r1.ok() && r2.ok() && *r1 == *r2 ? "semantics-preserving"
                                                 : "MISMATCH");
  }
  std::printf("\n");
}

Database BigDb(size_t elements) {
  Rng rng(66);
  FlatBagSpec spec;
  spec.arity = 2;
  spec.num_atoms = 32;
  spec.num_elements = elements;
  spec.max_mult = 2;
  Database db;
  (void)db.Put("A", RandomFlatBag(rng, spec));
  (void)db.Put("B", RandomFlatBag(rng, spec));
  return db;
}

void BM_JoinUnoptimized(benchmark::State& state) {
  Database db = BigDb(static_cast<size_t>(state.range(0)));
  Expr q = SelectiveJoin();
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_JoinUnoptimized)->RangeMultiplier(4)->Range(16, 1024);

void BM_JoinOptimized(benchmark::State& state) {
  Database db = BigDb(static_cast<size_t>(state.range(0)));
  Expr q = Optimize(SelectiveJoin(), TwoBagSchema()).value();
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_JoinOptimized)->RangeMultiplier(4)->Range(16, 1024);

void BM_OptimizerItself(benchmark::State& state) {
  Schema schema = TwoBagSchema();
  Expr q = SelectiveJoin();
  for (int64_t i = 0; i < state.range(0); ++i) {
    q = Uplus(q, SelectiveJoin());
  }
  for (auto _ : state) {
    auto r = Optimize(q, schema);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimizerItself)->DenseRange(1, 9, 4);

}  // namespace

int main(int argc, char** argv) {
  PrintRuleTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
