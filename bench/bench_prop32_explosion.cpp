// Experiments E2/E3/E17 — the duplicate explosion of Proposition 3.2.
//
// Paper claims, for B with k constants of multiplicity m each:
//   δ(P(B))          has m(m+1)^k / 2 occurrences of each constant;
//   δδ(P(P(B)))      has 2^((m+1)^k − 2) · (m+1)^k · m occurrences;
// and iterating:
//   (δP)^i           explodes exponentially once, then only polynomially;
//   (δδPP)^i         reaches hyper(i+1);
//   (δP_b)^i         explodes exponentially at *every* step (the powerbag
//                    pathology of Theorem 5.5 / Prop 6.4).
// This growth separation is the engine of the complexity results
// (Theorems 4.4, 5.1, 6.1, 6.2). The tables print exact counts; the
// benchmarks time one (δP) / (δP_b) round as the seed grows.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/bag_ops.h"
#include "src/core/encoding.h"

using namespace bagalg;

namespace {

Bag UniformBag(uint64_t k, uint64_t m) {
  Bag::Builder builder;
  for (uint64_t i = 0; i < k; ++i) {
    builder.Add(MakeAtom("c" + std::to_string(i)), Mult(m));
  }
  return std::move(builder).Build().value();
}

void PrintExactClaimTable() {
  std::printf(
      "=== E2: Prop 3.2 exact claims — occurrences of each constant ===\n");
  std::printf("%3s %3s  %14s  %14s  %22s  %22s\n", "k", "m", "deltaP",
              "claim", "deltadeltaPP", "claim");
  Limits limits;
  limits.max_powerset_results = 1u << 20;
  limits.max_mult_bits = 1u << 20;
  for (uint64_t k = 1; k <= 3; ++k) {
    for (uint64_t m = 1; m <= 3; ++m) {
      Bag b = UniformBag(k, m);
      Bag dp = BagDestroy(Powerset(b, limits).value(), limits).value();
      BigNat claim1 = (Mult(m) * BigNat::Pow(Mult(m + 1), k))
                          .DivMod(Mult(2))
                          .value()
                          .quotient;
      uint64_t mp1k = 1;
      for (uint64_t i = 0; i < k; ++i) mp1k *= m + 1;
      std::string ddpp = "-";
      std::string claim2 = "-";
      if (mp1k <= 12) {  // keep the doubly exponential case enumerable
        Bag pp = Powerset(Powerset(b, limits).value(), limits).value();
        Bag dd = BagDestroy(BagDestroy(pp, limits).value(), limits).value();
        ddpp = dd.CountOf(MakeAtom("c0")).ToString();
        claim2 = (BigNat::TwoPow(mp1k - 2) * BigNat(mp1k) * BigNat(m))
                     .ToString();
      }
      std::printf("%3llu %3llu  %14s  %14s  %22s  %22s\n",
                  static_cast<unsigned long long>(k),
                  static_cast<unsigned long long>(m),
                  dp.CountOf(MakeAtom("c0")).ToString().c_str(),
                  claim1.ToString().c_str(), ddpp.c_str(), claim2.c_str());
    }
  }
  std::printf("\n");
}

void PrintIterationTable() {
  std::printf(
      "=== E3/E17: growth regimes under iteration (max multiplicity, in "
      "bits) ===\n");
  std::printf("%6s  %18s  %18s\n", "round", "(deltaP)^i bits",
              "(deltaP_b)^i bits");
  Limits limits;
  limits.max_powerset_results = 1u << 20;
  limits.max_mult_bits = 1u << 22;
  Bag dp_state = UniformBag(1, 2);
  Bag dpb_state = dp_state;
  bool dpb_alive = true;
  for (int round = 1; round <= 6; ++round) {
    dp_state =
        BagDestroy(Powerset(dp_state, limits).value(), limits).value();
    std::string dpb_bits = "(budget exhausted)";
    if (dpb_alive) {
      auto pb = Powerbag(dpb_state, limits);
      if (pb.ok()) {
        auto flat = BagDestroy(*pb, limits);
        if (flat.ok()) {
          dpb_state = std::move(flat).value();
          dpb_bits =
              std::to_string(MaxMultiplicity(dpb_state).BitLength());
        } else {
          dpb_alive = false;
        }
      } else {
        dpb_alive = false;
      }
    }
    std::printf("%6d  %18zu  %18s\n", round,
                MaxMultiplicity(dp_state).BitLength(), dpb_bits.c_str());
  }
  std::printf(
      "(paper: after the first blow-up each deltaP round is a *polynomial*\n"
      " explosion — the value is squared, so the bit count merely doubles;\n"
      " each deltaP_b round is an *exponential* explosion — the new value\n"
      " is 2^old, so the bit count itself jumps to the old value: the\n"
      " hyperexponential regime of Theorem 5.5 / Prop 6.4.)\n\n");
}

void BM_DeltaPowersetRound(benchmark::State& state) {
  Bag b = UniformBag(static_cast<uint64_t>(state.range(0)), 2);
  Limits limits;
  limits.max_powerset_results = 1u << 22;
  for (auto _ : state) {
    auto r = BagDestroy(Powerset(b, limits).value(), limits);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DeltaPowersetRound)->DenseRange(1, 7, 1);

void BM_DeltaPowerbagRound(benchmark::State& state) {
  Bag b = UniformBag(static_cast<uint64_t>(state.range(0)), 2);
  Limits limits;
  limits.max_powerset_results = 1u << 22;
  limits.max_mult_bits = 1u << 22;
  for (auto _ : state) {
    auto r = BagDestroy(Powerbag(b, limits).value(), limits);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DeltaPowerbagRound)->DenseRange(1, 7, 1);

}  // namespace

int main(int argc, char** argv) {
  PrintExactClaimTable();
  PrintIterationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
