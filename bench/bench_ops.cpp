// Operator microbenchmarks — per-operator throughput of the semantic core
// (src/core/bag_ops.h) as the input grows. Not tied to a single paper
// table; establishes the cost model the experiment benches build on
// (merges are O(distinct), products O(d1·d2), powerset O(output)).

#include <benchmark/benchmark.h>

#include "src/core/bag_ops.h"
#include "src/obs/trace.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

using namespace bagalg;

namespace {

Bag MakeInput(size_t elements, uint64_t seed = 123) {
  Rng rng(seed);
  FlatBagSpec spec;
  spec.arity = 2;
  spec.num_atoms = 64;
  spec.num_elements = elements;
  spec.max_mult = 4;
  return RandomFlatBag(rng, spec);
}

void BM_AdditiveUnion(benchmark::State& state) {
  Bag a = MakeInput(static_cast<size_t>(state.range(0)), 1);
  Bag b = MakeInput(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto r = AdditiveUnion(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AdditiveUnion)->RangeMultiplier(8)->Range(64, 1 << 15);

void BM_Subtract(benchmark::State& state) {
  Bag a = MakeInput(static_cast<size_t>(state.range(0)), 1);
  Bag b = MakeInput(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto r = Subtract(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Subtract)->RangeMultiplier(8)->Range(64, 1 << 15);

void BM_Intersect(benchmark::State& state) {
  Bag a = MakeInput(static_cast<size_t>(state.range(0)), 1);
  Bag b = MakeInput(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto r = Intersect(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Intersect)->RangeMultiplier(8)->Range(64, 1 << 15);

void BM_CartesianProduct(benchmark::State& state) {
  Bag a = MakeInput(static_cast<size_t>(state.range(0)), 1);
  Bag b = MakeInput(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto r = CartesianProduct(a, b);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CartesianProduct)->RangeMultiplier(4)->Range(16, 512);

void BM_DupElim(benchmark::State& state) {
  Bag a = MakeInput(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = DupElim(a);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DupElim)->RangeMultiplier(8)->Range(64, 1 << 15);

void BM_MapSwapAttrs(benchmark::State& state) {
  Bag a = MakeInput(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = MapBag(a, [](const Value& v) -> Result<Value> {
      return Value::Tuple({v.fields()[1], v.fields()[0]});
    });
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MapSwapAttrs)->RangeMultiplier(8)->Range(64, 1 << 15);

void BM_SelectDiagonal(benchmark::State& state) {
  Bag a = MakeInput(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = SelectBag(a, [](const Value& v) -> Result<bool> {
      return v.fields()[0] == v.fields()[1];
    });
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelectDiagonal)->RangeMultiplier(8)->Range(64, 1 << 15);

void BM_BagDestroy(benchmark::State& state) {
  Rng rng(7);
  FlatBagSpec inner;
  inner.num_elements = 8;
  Bag nested = RandomNestedBag(rng, static_cast<size_t>(state.range(0)),
                               inner);
  for (auto _ : state) {
    auto r = BagDestroy(nested);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BagDestroy)->RangeMultiplier(4)->Range(8, 2048);

void BM_NestOp(benchmark::State& state) {
  Bag a = MakeInput(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = Nest(a, {1});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NestOp)->RangeMultiplier(8)->Range(64, 1 << 13);

}  // namespace

int main(int argc, char** argv) {
  // --bagalg_trace=FILE writes a Chrome trace of any spans recorded during
  // the run (empty but valid for these core-op benches, which sit below the
  // instrumented layers).
  bagalg::obs::EnableGlobalTraceFromArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
