// Server-stack benchmarks: the per-request costs a bagalgd deployment
// actually pays. Three layers, separately measurable so regressions
// localize:
//
//  - envelope parsing (src/net/json_reader) and wire serialization /
//    framing (src/net/wire) as pure CPU microbenches;
//  - full loopback round trips against an in-process Server — one
//    keep-alive connection issuing POST /v1/statement (engine path) and
//    GET /healthz (no-engine path), so the preflight/admission/executor
//    pipeline is on the measured path;
//  - event-loop scaling: pipelined bursts on one connection (syscalls
//    amortized across the batch), a 1000-connection keep-alive fleet with
//    every outcome typed (ok or shed — an untyped failure aborts the
//    bench), and the BAG1 binary statement path against its JSON
//    equivalent on both small and large result bags.
//
// Collected by bench/run_benchmarks.sh into BENCH_bench_server.json.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "src/core/value.h"
#include "src/net/http.h"
#include "src/net/io.h"
#include "src/net/json_reader.h"
#include "src/net/server.h"
#include "src/net/wire.h"

namespace bagalg::net {
namespace {

// ------------------------------------------------------------- parsing

void BM_ParseStatementEnvelope(benchmark::State& state) {
  const std::string doc =
      R"js({"session":"bench","statement":"eval uplus(X, X)","timeout_ms":250})js";
  for (auto _ : state) {
    auto parsed = ParseJson(doc);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ParseStatementEnvelope);

// --------------------------------------------------------------- wire

Bag MakeBag(int64_t entries) {
  Bag::Builder builder(Type::Atom());
  for (int64_t i = 0; i < entries; ++i) {
    builder.Add(Value::Atom(GlobalAtomTable().Intern(
                    "bench_wire_" + std::to_string(i))),
                static_cast<uint64_t>(i + 1));
  }
  return *std::move(builder).Build();
}

void BM_BagToWireJson(benchmark::State& state) {
  const Bag bag = MakeBag(state.range(0));
  std::string json;
  for (auto _ : state) {
    json = BagToWireJson(bag);
    benchmark::DoNotOptimize(json);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(json.size()));
}
BENCHMARK(BM_BagToWireJson)->Arg(8)->Arg(256)->Arg(4096);

void BM_FrameRoundTrip(benchmark::State& state) {
  const std::string payload = BagToWireJson(MakeBag(state.range(0)));
  for (auto _ : state) {
    const std::string frame = EncodeFrame(WireFormat::kJson, payload);
    size_t consumed = 0;
    auto decoded = DecodeFrame(frame, &consumed);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_FrameRoundTrip)->Arg(8)->Arg(4096);

// ------------------------------------------------------------ loopback

// One keep-alive connection to an in-process server. The response parser
// is deliberately minimal: read headers, then Content-Length body bytes.
class LoopbackClient {
 public:
  explicit LoopbackClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LoopbackClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LoopbackClient(const LoopbackClient&) = delete;
  LoopbackClient& operator=(const LoopbackClient&) = delete;

  bool ok() const { return fd_ >= 0; }

  static std::string BuildRequest(const std::string& method,
                                  const std::string& path,
                                  const std::string& body,
                                  const std::string& content_type =
                                      "application/json") {
    return method + " " + path + " HTTP/1.1\r\nHost: bench\r\nContent-Type: " +
           content_type + "\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
  }

  bool SendRaw(const std::string& bytes) { return WriteAll(fd_, bytes).ok(); }

  // Reads one Content-Length response from the connection's buffer,
  // refilling from the socket as needed. Returns the HTTP status, with
  // -1 on connection failure; *bytes (optional) gets the response size.
  int ReadResponseStatus(size_t* bytes = nullptr) {
    // Cursor-based: pipelined responses pile up in buf_ and each call
    // advances pos_ instead of memmoving the tail — the per-response cost
    // is one bounded scan, so the client does not dominate the bench.
    size_t header_end;
    while ((header_end = buf_.find("\r\n\r\n", pos_)) == std::string::npos) {
      if (!Refill()) return -1;
    }
    const size_t cl = buf_.find("Content-Length: ", pos_);
    if (cl == std::string::npos || cl > header_end) return -1;
    const size_t content_length = static_cast<size_t>(
        std::strtoull(buf_.c_str() + cl + 16, nullptr, 10));
    const size_t total = header_end + 4 + content_length;
    while (buf_.size() < total) {
      if (!Refill()) return -1;
    }
    const int status = std::atoi(buf_.c_str() + pos_ + 9);
    if (bytes != nullptr) *bytes = total - pos_;
    pos_ = total;
    if (pos_ == buf_.size()) {
      buf_.clear();
      pos_ = 0;
    } else if (pos_ > (1u << 20)) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
    return status;
  }

  // Returns the raw response (headers + body), empty on failure.
  std::string RoundTrip(const std::string& method, const std::string& path,
                        const std::string& body) {
    const std::string request = method + " " + path +
                                " HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
                                std::to_string(body.size()) + "\r\n\r\n" + body;
    if (!WriteAll(fd_, request).ok()) return "";
    std::string response;
    size_t header_end = std::string::npos;
    size_t content_length = 0;
    char chunk[8192];
    while (true) {
      if (header_end == std::string::npos) {
        header_end = response.find("\r\n\r\n");
        if (header_end != std::string::npos) {
          const size_t cl = response.find("Content-Length: ");
          if (cl == std::string::npos || cl > header_end) return "";
          content_length = static_cast<size_t>(
              std::strtoull(response.c_str() + cl + 16, nullptr, 10));
        }
      }
      if (header_end != std::string::npos &&
          response.size() >= header_end + 4 + content_length) {
        return response;
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      response.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  bool Refill() {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buf_;
  size_t pos_ = 0;
};

uint16_t SharedServerPort() {
  static const uint16_t port = [] {
    ServerOptions options;
    options.executors = 2;
    // Leaked deliberately: the server serves every benchmark iteration
    // until process exit.
    auto started = Server::Start(std::move(options));
    static std::unique_ptr<Server> server = std::move(*started);
    LoopbackClient setup(server->port());
    setup.RoundTrip(
        "POST", "/v1/statement",
        R"js({"session":"bench","statement":"let X = {{a, a, b, c}}"})js");
    // A 256-entry bag for the serialization-bound benches (under the
    // 512-entry streaming threshold, so responses use Content-Length).
    std::string literal = "let BIG = {{";
    for (int i = 0; i < 256; ++i) {
      if (i != 0) literal += ", ";
      literal += "w" + std::to_string(i);
    }
    literal += "}}";
    setup.RoundTrip("POST", "/v1/statement",
                    "{\"session\":\"bench\",\"statement\":\"" + literal +
                        "\"}");
    return server->port();
  }();
  return port;
}

void BM_LoopbackStatement(benchmark::State& state) {
  LoopbackClient client(SharedServerPort());
  if (!client.ok()) {
    state.SkipWithError("loopback connect failed");
    return;
  }
  const std::string body =
      R"js({"session":"bench","statement":"eval uplus(X, X)"})js";
  for (auto _ : state) {
    const std::string response =
        client.RoundTrip("POST", "/v1/statement", body);
    if (response.find("\"outcome\":\"ok\"") == std::string::npos) {
      state.SkipWithError("statement round trip failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LoopbackStatement);

void BM_LoopbackHealthz(benchmark::State& state) {
  LoopbackClient client(SharedServerPort());
  if (!client.ok()) {
    state.SkipWithError("loopback connect failed");
    return;
  }
  for (auto _ : state) {
    const std::string response = client.RoundTrip("GET", "/healthz", "");
    if (response.find("200 OK") == std::string::npos) {
      state.SkipWithError("healthz round trip failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LoopbackHealthz);

void BM_LoopbackStatementPipelined(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  LoopbackClient client(SharedServerPort());
  if (!client.ok()) {
    state.SkipWithError("loopback connect failed");
    return;
  }
  const std::string request = LoopbackClient::BuildRequest(
      "POST", "/v1/statement",
      R"js({"session":"bench","statement":"eval uplus(X, X)"})js");
  std::string batch;
  for (int i = 0; i < depth; ++i) batch += request;
  for (auto _ : state) {
    if (!client.SendRaw(batch)) {
      state.SkipWithError("pipelined write failed");
      return;
    }
    for (int i = 0; i < depth; ++i) {
      if (client.ReadResponseStatus() != 200) {
        state.SkipWithError("pipelined response not ok");
        return;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * depth);
}
BENCHMARK(BM_LoopbackStatementPipelined)->Arg(16)->Arg(64);

void BM_LoopbackStatementBag1(benchmark::State& state) {
  LoopbackClient client(SharedServerPort());
  if (!client.ok()) {
    state.SkipWithError("loopback connect failed");
    return;
  }
  WireStatementRequest statement;
  statement.session = "bench";
  statement.statement = "eval uplus(X, X)";
  const std::string request = LoopbackClient::BuildRequest(
      "POST", "/v1/statement",
      EncodeFrame(WireFormat::kBinary, EncodeStatementRequest(statement)),
      "application/x-bag1");
  for (auto _ : state) {
    if (!client.SendRaw(request) || client.ReadResponseStatus() != 200) {
      state.SkipWithError("bag1 round trip failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LoopbackStatementBag1);

// The serialization-bound pair: the same 256-entry stored bag fetched as
// a JSON envelope and as a BAG1 binary frame. The delta is the price of
// JSON quoting/escaping plus client-side re-parse avoidance.
void LargeBagRoundTrips(benchmark::State& state, const char* content_type,
                        const std::string& request) {
  LoopbackClient client(SharedServerPort());
  if (!client.ok()) {
    state.SkipWithError("loopback connect failed");
    return;
  }
  (void)content_type;
  int64_t bytes = 0;
  for (auto _ : state) {
    size_t response_bytes = 0;
    if (!client.SendRaw(request) ||
        client.ReadResponseStatus(&response_bytes) != 200) {
      state.SkipWithError("large-bag round trip failed");
      return;
    }
    bytes += static_cast<int64_t>(response_bytes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(bytes);
}

void BM_LoopbackLargeBagJson(benchmark::State& state) {
  LargeBagRoundTrips(
      state, "application/json",
      LoopbackClient::BuildRequest(
          "POST", "/v1/statement",
          R"js({"session":"bench","statement":"eval BIG"})js"));
}
BENCHMARK(BM_LoopbackLargeBagJson);

void BM_LoopbackLargeBagBag1(benchmark::State& state) {
  WireStatementRequest statement;
  statement.session = "bench";
  statement.statement = "eval BIG";
  LargeBagRoundTrips(
      state, "application/x-bag1",
      LoopbackClient::BuildRequest(
          "POST", "/v1/statement",
          EncodeFrame(WireFormat::kBinary, EncodeStatementRequest(statement)),
          "application/x-bag1"));
}
BENCHMARK(BM_LoopbackLargeBagBag1);

// The headline event-loop bench: a fleet of keep-alive connections, every
// one with a statement in flight before any response is read. Each
// outcome must be typed — 200 served or 429/503 shed; anything else
// (torn connection, untyped status) aborts the benchmark.
void BM_LoopbackConcurrentKeepAlive(benchmark::State& state) {
  const int fleet = static_cast<int>(state.range(0));
  static const uint16_t port = [] {
    ServerOptions options;
    options.executors = 4;
    options.queue_capacity = 2048;
    auto started = Server::Start(std::move(options));
    static std::unique_ptr<Server> server = std::move(*started);
    return server->port();
  }();
  std::vector<std::unique_ptr<LoopbackClient>> clients;
  clients.reserve(static_cast<size_t>(fleet));
  for (int i = 0; i < fleet; ++i) {
    auto client = std::make_unique<LoopbackClient>(port);
    if (!client->ok()) {
      state.SkipWithError("fleet connect failed");
      return;
    }
    clients.push_back(std::move(client));
  }
  std::vector<std::string> requests;
  requests.reserve(8);
  for (int s = 0; s < 8; ++s) {
    requests.push_back(LoopbackClient::BuildRequest(
        "POST", "/v1/statement",
        "{\"session\":\"fleet" + std::to_string(s) +
            "\",\"statement\":\"count '{{a, b}}\"}"));
  }
  int64_t served = 0, shed = 0;
  for (auto _ : state) {
    for (int i = 0; i < fleet; ++i) {
      if (!clients[static_cast<size_t>(i)]->SendRaw(
              requests[static_cast<size_t>(i % 8)])) {
        state.SkipWithError("fleet write failed");
        return;
      }
    }
    for (int i = 0; i < fleet; ++i) {
      const int status =
          clients[static_cast<size_t>(i)]->ReadResponseStatus();
      if (status == 200) {
        ++served;
      } else if (status == 429 || status == 503) {
        ++shed;
      } else {
        state.SkipWithError("untyped outcome in fleet");
        return;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * fleet);
  state.counters["served"] =
      benchmark::Counter(static_cast<double>(served));
  state.counters["shed"] = benchmark::Counter(static_cast<double>(shed));
}
BENCHMARK(BM_LoopbackConcurrentKeepAlive)
    ->Arg(128)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bagalg::net

BENCHMARK_MAIN();
