// Server-stack benchmarks: the per-request costs a bagalgd deployment
// actually pays. Three layers, separately measurable so regressions
// localize:
//
//  - envelope parsing (src/net/json_reader) and wire serialization /
//    framing (src/net/wire) as pure CPU microbenches;
//  - full loopback round trips against an in-process Server — one
//    keep-alive connection issuing POST /v1/statement (engine path) and
//    GET /healthz (no-engine path), so the preflight/admission/executor
//    pipeline is on the measured path.
//
// Collected by bench/run_benchmarks.sh into BENCH_bench_server.json.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "src/core/value.h"
#include "src/net/http.h"
#include "src/net/io.h"
#include "src/net/json_reader.h"
#include "src/net/server.h"
#include "src/net/wire.h"

namespace bagalg::net {
namespace {

// ------------------------------------------------------------- parsing

void BM_ParseStatementEnvelope(benchmark::State& state) {
  const std::string doc =
      R"js({"session":"bench","statement":"eval uplus(X, X)","timeout_ms":250})js";
  for (auto _ : state) {
    auto parsed = ParseJson(doc);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ParseStatementEnvelope);

// --------------------------------------------------------------- wire

Bag MakeBag(int64_t entries) {
  Bag::Builder builder(Type::Atom());
  for (int64_t i = 0; i < entries; ++i) {
    builder.Add(Value::Atom(GlobalAtomTable().Intern(
                    "bench_wire_" + std::to_string(i))),
                static_cast<uint64_t>(i + 1));
  }
  return *std::move(builder).Build();
}

void BM_BagToWireJson(benchmark::State& state) {
  const Bag bag = MakeBag(state.range(0));
  std::string json;
  for (auto _ : state) {
    json = BagToWireJson(bag);
    benchmark::DoNotOptimize(json);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(json.size()));
}
BENCHMARK(BM_BagToWireJson)->Arg(8)->Arg(256)->Arg(4096);

void BM_FrameRoundTrip(benchmark::State& state) {
  const std::string payload = BagToWireJson(MakeBag(state.range(0)));
  for (auto _ : state) {
    const std::string frame = EncodeFrame(WireFormat::kJson, payload);
    size_t consumed = 0;
    auto decoded = DecodeFrame(frame, &consumed);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_FrameRoundTrip)->Arg(8)->Arg(4096);

// ------------------------------------------------------------ loopback

// One keep-alive connection to an in-process server. The response parser
// is deliberately minimal: read headers, then Content-Length body bytes.
class LoopbackClient {
 public:
  explicit LoopbackClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LoopbackClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LoopbackClient(const LoopbackClient&) = delete;
  LoopbackClient& operator=(const LoopbackClient&) = delete;

  bool ok() const { return fd_ >= 0; }

  // Returns the raw response (headers + body), empty on failure.
  std::string RoundTrip(const std::string& method, const std::string& path,
                        const std::string& body) {
    const std::string request = method + " " + path +
                                " HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
                                std::to_string(body.size()) + "\r\n\r\n" + body;
    if (!WriteAll(fd_, request).ok()) return "";
    std::string response;
    size_t header_end = std::string::npos;
    size_t content_length = 0;
    char chunk[8192];
    while (true) {
      if (header_end == std::string::npos) {
        header_end = response.find("\r\n\r\n");
        if (header_end != std::string::npos) {
          const size_t cl = response.find("Content-Length: ");
          if (cl == std::string::npos || cl > header_end) return "";
          content_length = static_cast<size_t>(
              std::strtoull(response.c_str() + cl + 16, nullptr, 10));
        }
      }
      if (header_end != std::string::npos &&
          response.size() >= header_end + 4 + content_length) {
        return response;
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      response.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
};

uint16_t SharedServerPort() {
  static const uint16_t port = [] {
    ServerOptions options;
    options.executors = 2;
    // Leaked deliberately: the server serves every benchmark iteration
    // until process exit.
    auto started = Server::Start(std::move(options));
    static std::unique_ptr<Server> server = std::move(*started);
    LoopbackClient setup(server->port());
    setup.RoundTrip(
        "POST", "/v1/statement",
        R"js({"session":"bench","statement":"let X = {{a, a, b, c}}"})js");
    return server->port();
  }();
  return port;
}

void BM_LoopbackStatement(benchmark::State& state) {
  LoopbackClient client(SharedServerPort());
  if (!client.ok()) {
    state.SkipWithError("loopback connect failed");
    return;
  }
  const std::string body =
      R"js({"session":"bench","statement":"eval uplus(X, X)"})js";
  for (auto _ : state) {
    const std::string response =
        client.RoundTrip("POST", "/v1/statement", body);
    if (response.find("\"outcome\":\"ok\"") == std::string::npos) {
      state.SkipWithError("statement round trip failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LoopbackStatement);

void BM_LoopbackHealthz(benchmark::State& state) {
  LoopbackClient client(SharedServerPort());
  if (!client.ok()) {
    state.SkipWithError("loopback connect failed");
    return;
  }
  for (auto _ : state) {
    const std::string response = client.RoundTrip("GET", "/healthz", "");
    if (response.find("200 OK") == std::string::npos) {
      state.SkipWithError("healthz round trip failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LoopbackHealthz);

}  // namespace
}  // namespace bagalg::net

BENCHMARK_MAIN();
