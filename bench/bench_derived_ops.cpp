// Experiments E4/E20 — §3 interdefinability and the nest extension.
//
// The paper shows the operator set is redundant: ⊎ from ∪/×/π, − and ε
// from P (Prop 3.1), ∪/∩ from ⊎/−. The table checks each derived form
// against its primitive on random bags (exact equality); the benchmarks
// measure the *price* of the derived forms — the powerset-based
// definitions pay the nesting increase the paper proves unavoidable in
// BALG¹ (Prop 4.1).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/core/bag_ops.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

using namespace bagalg;

namespace {

void PrintEquivalenceTable() {
  std::printf("=== E4: derived forms == primitive forms (random bags) ===\n");
  Rng rng(21);
  FlatBagSpec spec;
  spec.num_elements = 5;
  spec.max_mult = 2;
  Evaluator eval;
  int trials = 50;
  int uplus_ok = 0, monus_ok = 0, eps_ok = 0, eps_nested_ok = 0;
  for (int i = 0; i < trials; ++i) {
    Database db;
    (void)db.Put("A", RandomFlatBag(rng, spec));
    (void)db.Put("B", RandomFlatBag(rng, spec));
    FlatBagSpec inner;
    inner.num_elements = 2;
    inner.max_mult = 2;
    (void)db.Put("N", RandomNestedBag(rng, 3, inner));
    auto eq = [&](const Expr& x, const Expr& y) {
      auto rx = eval.EvalToBag(x, db);
      auto ry = eval.EvalToBag(y, db);
      return rx.ok() && ry.ok() && *rx == *ry;
    };
    uplus_ok += eq(Uplus(Input("A"), Input("B")),
                   UplusViaMaxUnion(Input("A"), Input("B"), spec.arity,
                                    MakeAtom("tA"), MakeAtom("tB")));
    monus_ok += eq(Monus(Input("A"), Input("B")),
                   MonusViaPowerset(Input("A"), Input("B")));
    eps_ok += eq(Eps(Input("A")), EpsViaPowerset(Input("A")));
    eps_nested_ok += eq(Eps(Input("N")), EpsViaPowersetNested(Input("N")));
  }
  std::printf("  uplus via umax/x/pi : %d/%d exact\n", uplus_ok, trials);
  std::printf("  monus via powerset  : %d/%d exact\n", monus_ok, trials);
  std::printf("  eps via powerset    : %d/%d exact (Prop 3.1)\n", eps_ok,
              trials);
  std::printf("  eps nested variant  : %d/%d exact (Prop 3.1)\n",
              eps_nested_ok, trials);
  std::printf("\n");
}

void PrintNestRoundTrip() {
  std::printf("=== E20: nest/unnest extension (§7) ===\n");
  Rng rng(22);
  FlatBagSpec spec;
  spec.arity = 2;
  spec.num_elements = 12;
  Bag bag = RandomFlatBag(rng, spec);
  Database db;
  (void)db.Put("B", bag);
  Evaluator eval;
  Bag nested = eval.EvalToBag(NestExpr(Input("B"), {2}), db).value();
  Bag back =
      eval.EvalToBag(UnnestExpr(NestExpr(Input("B"), {2}), 2), db).value();
  std::printf("  |B| = %s (%zu distinct) -> nest groups: %zu -> unnest: %s "
              "occurrences\n",
              bag.TotalCount().ToString().c_str(), bag.DistinctCount(),
              nested.DistinctCount(), back.TotalCount().ToString().c_str());
  std::printf("  (nest does not increase expressive power without P — the\n"
              "   conservativity observation the paper cites from [Won93])\n\n");
}

Database RandomDb(uint64_t seed, size_t elements, uint64_t max_mult) {
  Rng rng(seed);
  FlatBagSpec spec;
  spec.num_elements = elements;
  spec.max_mult = max_mult;
  Database db;
  (void)db.Put("A", RandomFlatBag(rng, spec));
  (void)db.Put("B", RandomFlatBag(rng, spec));
  return db;
}

void BM_MonusPrimitive(benchmark::State& state) {
  Database db = RandomDb(31, static_cast<size_t>(state.range(0)), 3);
  Expr q = Monus(Input("A"), Input("B"));
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MonusPrimitive)->DenseRange(2, 10, 2);

void BM_MonusViaPowerset(benchmark::State& state) {
  // The derived form enumerates P(A): exponential in A's content — the
  // cost of the nesting increase.
  Database db = RandomDb(31, static_cast<size_t>(state.range(0)), 3);
  Expr q = MonusViaPowerset(Input("A"), Input("B"));
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MonusViaPowerset)->DenseRange(2, 10, 2);

void BM_EpsPrimitive(benchmark::State& state) {
  Database db = RandomDb(32, static_cast<size_t>(state.range(0)), 4);
  Expr q = Eps(Input("A"));
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EpsPrimitive)->DenseRange(2, 10, 2);

void BM_EpsViaPowerset(benchmark::State& state) {
  Database db = RandomDb(32, static_cast<size_t>(state.range(0)), 4);
  Expr q = EpsViaPowerset(Input("A"));
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EpsViaPowerset)->DenseRange(2, 10, 2);

void BM_NestGrouping(benchmark::State& state) {
  Rng rng(33);
  FlatBagSpec spec;
  spec.arity = 2;
  spec.num_elements = static_cast<size_t>(state.range(0));
  spec.num_atoms = 8;
  Database db;
  (void)db.Put("B", RandomFlatBag(rng, spec));
  Expr q = NestExpr(Input("B"), {2});
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NestGrouping)->RangeMultiplier(4)->Range(16, 4096);

}  // namespace

int main(int argc, char** argv) {
  PrintEquivalenceTable();
  PrintNestRoundTrip();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
