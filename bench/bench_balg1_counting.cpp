// Experiments E5/E6/E8 — BALG¹ counting behaviour (paper §4).
//
// E5: the §4 occurrence table for Q(B) = π_{1,4}(σ_{2=3}(B×B)) on a bag
//     with n×[a,b] and m×[b,a] — the paper's exact counts are n², m², nm.
// E6: Example 4.1 (in-degree > out-degree) on star graphs.
// E8: the Theorem 4.4 mechanism — BALG¹ evaluation keeps every
//     multiplicity polynomial in the input (the LOGSPACE proxy: the
//     work-tape entries are tuple addresses plus polynomially-bounded
//     counters). Measured: max multiplicity bits and counted size of
//     intermediates as the input grows — the series must grow like
//     O(log n) bits, not like the exponential regimes of P/P_b.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

using namespace bagalg;

namespace {

Expr Section4Query() {
  Expr prod = Product(Input("B"), Input("B"));
  Expr sel = Select(Proj(Var(0), 2), Proj(Var(0), 3), prod);
  return ProjectAttrs(sel, {1, 4});
}

void PrintOccurrenceTable() {
  std::printf(
      "=== E5: §4 occurrence table, Q(B) = pi_{1,4}(sigma_{2=3}(B x B)) "
      "===\n");
  std::printf("%4s %4s  %8s %8s %8s %8s   %s\n", "n", "m", "Q[aa]", "Q[bb]",
              "BxB[abab]", "BxB[baba]", "paper: nm, nm, n^2, m^2");
  Value a = MakeAtom("a"), b = MakeAtom("b");
  for (auto [n, m] : {std::pair<uint64_t, uint64_t>{2, 1},
                      {3, 2},
                      {5, 3},
                      {10, 7},
                      {50, 20}}) {
    Bag bag = MakeBag({{MakeTuple({a, b}), n}, {MakeTuple({b, a}), m}});
    Database db;
    (void)db.Put("B", bag);
    Evaluator eval;
    Bag q = eval.EvalToBag(Section4Query(), db).value();
    Bag prod =
        eval.EvalToBag(Product(Input("B"), Input("B")), db).value();
    std::printf("%4llu %4llu  %8s %8s %8s %8s\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(m),
                q.CountOf(MakeTuple({a, a})).ToString().c_str(),
                q.CountOf(MakeTuple({b, b})).ToString().c_str(),
                prod.CountOf(MakeTuple({a, b, a, b})).ToString().c_str(),
                prod.CountOf(MakeTuple({b, a, b, a})).ToString().c_str());
  }
  std::printf("\n");
}

void PrintLogspaceProxyTable() {
  std::printf(
      "=== E8: Thm 4.4 proxy — BALG¹ multiplicities stay polynomial ===\n");
  std::printf("%8s  %16s  %18s   %s\n", "|input|", "max mult bits",
              "max distinct", "(bits ~ c*log n => LOGSPACE counters)");
  Rng rng(11);
  for (uint64_t n : {8, 16, 32, 64, 128, 256}) {
    FlatBagSpec spec;
    spec.arity = 2;
    spec.num_atoms = 4;
    spec.num_elements = static_cast<size_t>(n);
    spec.max_mult = 3;
    Bag bag = RandomFlatBag(rng, spec);
    Database db;
    (void)db.Put("B", bag);
    Evaluator eval;
    // A representative BALG¹ pipeline: product, selection, projection,
    // difference, union.
    Expr q = Monus(Section4Query(),
                   ProjectAttrs(Input("B"), {1, 2}));
    auto r = eval.EvalToBag(q, db);
    if (!r.ok()) continue;
    std::printf("%8s  %16llu  %18llu\n",
                bag.TotalCount().ToString().c_str(),
                static_cast<unsigned long long>(eval.stats().max_mult_bits),
                static_cast<unsigned long long>(eval.stats().max_distinct));
  }
  std::printf("\n");
}

void BM_Section4Query(benchmark::State& state) {
  Value a = MakeAtom("a"), b = MakeAtom("b");
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Bag bag = MakeBag({{MakeTuple({a, b}), n}, {MakeTuple({b, a}), n / 2 + 1}});
  Database db;
  (void)db.Put("B", bag);
  Expr q = Section4Query();
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Section4Query)->RangeMultiplier(8)->Range(8, 1 << 15);

void BM_Example41Degrees(benchmark::State& state) {
  Rng rng(5);
  Bag g = RandomGraph(rng, static_cast<size_t>(state.range(0)), 0.3);
  Database db;
  (void)db.Put("G", g);
  Expr q = InDegreeGreaterThanOut(Input("G"), MakeAtom("v0"));
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Example41Degrees)->RangeMultiplier(2)->Range(8, 128);

void BM_ParityWithOrder(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Value> atoms = AtomPool(n, "o");
  Bag::Builder r_builder;
  for (const Value& v : atoms) r_builder.AddOne(Value::Tuple({v}));
  Database db;
  (void)db.Put("R", std::move(r_builder).Build().value());
  (void)db.Put("Leq", TotalOrderLeq(atoms));
  Expr q = EvenCardinalityWithOrder(Input("R"), Input("Leq"), MakeAtom("u"));
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParityWithOrder)->RangeMultiplier(2)->Range(4, 64);

}  // namespace

int main(int argc, char** argv) {
  PrintOccurrenceTable();
  PrintLogspaceProxyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
