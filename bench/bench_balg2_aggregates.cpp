// Experiments E11/E12 — BALG² aggregates and the Theorem 5.1 mechanism.
//
// §3 defines count/sum/average inside the algebra via one level of bag
// nesting; Theorem 5.1 bounds BALG² by PSPACE because intermediate bags
// stay at most exponential. The table verifies the aggregates against
// native arithmetic; the proxy table tracks the Theorem 5.1 quantities
// (max multiplicity bits, distinct elements) for aggregate pipelines with
// one powerset, contrasting with the BALG¹ series of bench_balg1_counting.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/util/rng.h"

using namespace bagalg;

namespace {

Bag BagOfInts(const std::vector<uint64_t>& values, const Value& unit) {
  Bag::Builder builder;
  for (uint64_t v : values) {
    builder.AddOne(Value::FromBag(IntAsBag(v, unit)));
  }
  return std::move(builder).Build().value();
}

void PrintAggregateTable() {
  std::printf("=== E12: §3 aggregates inside the algebra vs native ===\n");
  std::printf("%-24s %8s %8s %10s   %s\n", "multiset", "count", "sum", "avg",
              "(avg empty when not integral)");
  Value unit = MakeAtom("u");
  Evaluator eval;
  std::vector<std::vector<uint64_t>> inputs = {
      {2, 4, 6}, {1, 2}, {5}, {3, 3, 3, 3}, {1, 2, 3, 4, 5, 6, 7}, {0, 0, 4}};
  for (const auto& values : inputs) {
    Database db;
    (void)db.Put("B", BagOfInts(values, unit));
    uint64_t count =
        DecodeIntBag(eval.EvalToBag(CountAgg(Input("B"), unit), db).value())
            .value();
    uint64_t sum =
        DecodeIntBag(eval.EvalToBag(SumAgg(Input("B")), db).value()).value();
    Bag avg_bag = eval.EvalToBag(AverageAgg(Input("B"), unit), db).value();
    std::string avg = avg_bag.empty()
                          ? "(empty)"
                          : avg_bag.TotalCount().ToString();
    std::string label = "{";
    for (size_t i = 0; i < values.size(); ++i) {
      label += (i ? "," : "") + std::to_string(values[i]);
    }
    label += "}";
    uint64_t native_sum = std::accumulate(values.begin(), values.end(),
                                          uint64_t{0});
    std::printf("%-24s %8llu %8llu %10s   native: %zu, %llu%s\n",
                label.c_str(), static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(sum), avg.c_str(),
                values.size(), static_cast<unsigned long long>(native_sum),
                native_sum % values.size() == 0 ? " (divisible)" : "");
  }
  std::printf("\n");
}

void PrintPspaceProxyTable() {
  std::printf(
      "=== E11: Thm 5.1 proxy — BALG² intermediates stay <= exponential "
      "===\n");
  std::printf("%8s  %16s  %14s   %s\n", "sum(B)", "max mult bits",
              "max distinct", "(bits ~ O(n): single-exponential counts)");
  Value unit = MakeAtom("u");
  for (uint64_t n : {4, 8, 12, 16, 20}) {
    Database db;
    (void)db.Put("B", BagOfInts({n / 2, n / 2}, unit));
    Evaluator eval;
    Limits limits;
    limits.max_powerset_results = 1u << 22;
    Evaluator bounded(limits);
    // The average pipeline contains P(sum(B)) — the one-powerset shape the
    // theorem's claim bounds.
    auto r = bounded.EvalToBag(AverageAgg(Input("B"), unit), db);
    if (!r.ok()) continue;
    std::printf("%8llu  %16llu  %14llu\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(
                    bounded.stats().max_mult_bits),
                static_cast<unsigned long long>(
                    bounded.stats().max_distinct));
  }
  std::printf("\n");
}

void BM_CountAgg(benchmark::State& state) {
  Value unit = MakeAtom("u");
  std::vector<uint64_t> values(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < values.size(); ++i) values[i] = i % 7 + 1;
  Database db;
  (void)db.Put("B", BagOfInts(values, unit));
  Expr q = CountAgg(Input("B"), unit);
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CountAgg)->RangeMultiplier(4)->Range(8, 512);

void BM_SumAgg(benchmark::State& state) {
  Value unit = MakeAtom("u");
  std::vector<uint64_t> values(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < values.size(); ++i) values[i] = i % 7 + 1;
  Database db;
  (void)db.Put("B", BagOfInts(values, unit));
  Expr q = SumAgg(Input("B"));
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SumAgg)->RangeMultiplier(4)->Range(8, 512);

void BM_AverageAgg(benchmark::State& state) {
  // The powerset of sum(B) is linear in |sum| here (single distinct
  // element), so average stays tractable — Theorem 5.1 in action.
  Value unit = MakeAtom("u");
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Database db;
  (void)db.Put("B", BagOfInts({n, n, n, n}, unit));
  Expr q = AverageAgg(Input("B"), unit);
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AverageAgg)->RangeMultiplier(2)->Range(4, 64);

}  // namespace

int main(int argc, char** argv) {
  PrintAggregateTable();
  PrintPspaceProxyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
