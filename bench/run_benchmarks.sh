#!/usr/bin/env bash
# Runs every bench_* binary with --benchmark_format=json and saves the
# machine-readable output as BENCH_<name>.json, one file per bench, so the
# perf trajectory accumulates run over run.
#
#   bench/run_benchmarks.sh [--compare | --governor-overhead | --validate-obs] [BUILD_DIR] [OUT_DIR]
#
# Defaults: BUILD_DIR=build, OUT_DIR=bench/results. Honors
# BENCHMARK_MIN_TIME (default 0.05s per benchmark) to trade precision for
# wall time. Several benches print human-readable preambles before the JSON
# document; the preamble goes to stderr (or is stripped here for the ones
# that still use stdout), so every BENCH_*.json is a valid JSON document.
#
# With --compare, results go to a temporary directory (unless OUT_DIR is
# given) and are diffed against the committed bench/results baselines with
# bench/compare_benchmarks.py; the script fails on any >10% regression.
#
# With --governor-overhead, only bench_governor runs (in its --paired
# mode); the resulting per-workload gov-on/gov-off ratios are checked
# against the <2% checkpoint overhead budget (docs/ROBUSTNESS.md) with
# compare_benchmarks.py --overhead.
#
# With --validate-obs, one bench runs briefly with --bagalg_trace and the
# emitted Chrome trace is checked with tools/validate_obs.py (schema +
# span-tree linkage), guarding the bench-side tracing hook.
set -euo pipefail

# Bench runs are verified runs: every IR plan a bench lowers is
# re-verified after each optimization pass (src/ir/verify.h). The
# verifier runs at plan-build time only, so measured per-row loops are
# unaffected — but plan-time benches (BM_IrLowerOnly and small-input
# exec benches where lowering dominates) do pay for it, so baselines
# and --compare gate runs must agree on it: export it unconditionally.
export BAGALG_IR_VERIFY=1

COMPARE=0
if [ "${1:-}" = "--compare" ]; then
  COMPARE=1
  shift
fi

if [ "${1:-}" = "--governor-overhead" ]; then
  shift
  BUILD_DIR="${1:-build}"
  OUT_DIR="${2:-$(mktemp -d)}"
  BIN="${BUILD_DIR}/bench/bench_governor"
  if [ ! -x "${BIN}" ]; then
    echo "missing ${BIN} — build first:" >&2
    echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
  mkdir -p "${OUT_DIR}"
  OUT="${OUT_DIR}/governor_overhead.json"
  echo "== bench_governor --paired -> ${OUT}" >&2
  # Paired mode: each workload times gov_off and gov_on back-to-back in the
  # same few-ms window and reports the median of per-round ratios, so host
  # frequency/scheduler drift cancels instead of swamping the 2% budget
  # (independent off/on repetitions were observed swinging -9%..+25%
  # run-to-run on a busy host).
  "${BIN}" --paired >"${OUT}" 2>/dev/null
  exec python3 "$(dirname "$0")/compare_benchmarks.py" \
    --overhead "${OUT}" --overhead-tolerance 0.02
fi

if [ "${1:-}" = "--validate-obs" ]; then
  shift
  BUILD_DIR="${1:-build}"
  BIN="${BUILD_DIR}/bench/bench_ops"
  if [ ! -x "${BIN}" ]; then
    echo "missing ${BIN} — build first:" >&2
    echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
  TRACE="$(mktemp --suffix=.json)"
  echo "== bench_ops --bagalg_trace -> ${TRACE}" >&2
  "${BIN}" --bagalg_trace="${TRACE}" --benchmark_min_time=0.01 \
    --benchmark_filter='CartesianProduct|AdditiveUnion' >/dev/null 2>&1
  exec python3 "$(dirname "$0")/../tools/validate_obs.py" --trace "${TRACE}"
fi

BUILD_DIR="${1:-build}"
if [ "${COMPARE}" = 1 ]; then
  OUT_DIR="${2:-$(mktemp -d)}"
else
  OUT_DIR="${2:-bench/results}"
fi
MIN_TIME="${BENCHMARK_MIN_TIME:-0.05}"

if ! ls "${BUILD_DIR}"/bench/bench_* >/dev/null 2>&1; then
  echo "no bench binaries under ${BUILD_DIR}/bench — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

status=0
for bin in "${BUILD_DIR}"/bench/bench_*; do
  [ -x "${bin}" ] || continue
  case "${bin}" in *.json|*.txt) continue ;; esac
  name="$(basename "${bin}")"
  out="${OUT_DIR}/BENCH_${name}.json"
  echo "== ${name} -> ${out}" >&2
  raw="$(mktemp)"
  if "${bin}" --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
      >"${raw}" 2>/dev/null; then
    # Keep everything from the first line that opens the JSON document
    # (benches with custom mains may print a preamble first).
    # google-benchmark's JSON document opens with a line that is exactly
    # "{"; preamble tables never do (even ones with lines like "{2,4,6} ...").
    awk 'started || /^\{[[:space:]]*$/ { started = 1; print }' "${raw}" >"${out}"
    if [ ! -s "${out}" ]; then
      echo "   WARNING: ${name} produced no JSON" >&2
      status=1
    fi
  else
    echo "   WARNING: ${name} failed" >&2
    status=1
  fi
  rm -f "${raw}"
done

if [ "${COMPARE}" = 1 ]; then
  python3 "$(dirname "$0")/compare_benchmarks.py" \
    --baseline "$(dirname "$0")/results" --candidate "${OUT_DIR}" || status=1
fi
exit "${status}"
