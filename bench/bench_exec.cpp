// Execution-engine comparison: tree-walking evaluator vs the Volcano-style
// pipeline vs the fused batched IR engine on BALG¹ workloads (the paper's
// tractable fragment, Thm 4.4).
//
// The streaming Volcano engine avoids materializing intermediates for
// select/project/product chains (the pipeline stays a pull loop), while
// pipeline breakers (−, ∩, ε) fall back to materialization — mirroring how
// SQL engines treat DISTINCT/EXCEPT. The IR engine goes further: it fuses
// map/σ/π into one pass over 1024-row batches, promotes σ-over-× equi
// predicates to hash joins, and amortizes per-row overhead (virtual calls,
// governor ticking) across each batch. The table checks exact three-way
// agreement; the benches chart all engines as the inputs grow — the
// BM_PipelineJoin / BM_IrJoin pair is the headline 2x gate of the IR PR.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/exec/compile.h"
#include "src/ir/lower.h"
#include "src/obs/trace.h"
#include "src/stats/expr_gen.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

using namespace bagalg;

namespace {

Expr JoinChain() {
  // π1(σ_{2=3}((R × S) selective pipeline)).
  return ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 3),
                             Product(Input("R"), Input("S"))),
                      {1, 4});
}

Database MakeDb(size_t elements, uint64_t seed = 7) {
  Rng rng(seed);
  FlatBagSpec spec1;
  spec1.arity = 2;
  spec1.num_atoms = 16;
  spec1.num_elements = elements;
  spec1.max_mult = 3;
  Database db;
  (void)db.Put("R", RandomFlatBag(rng, spec1));
  (void)db.Put("S", RandomFlatBag(rng, spec1));
  return db;
}

void PrintAgreementSweep() {
  // stderr, so --benchmark_format=json output on stdout stays parseable.
  std::fprintf(stderr,
               "=== volcano + fused IR vs evaluator: agreement on random "
               "BALG¹ queries ===\n");
  Rng rng(4242);
  Type tup2 = Type::Tuple({Type::Atom(), Type::Atom()});
  Schema schema{{"R", Type::Bag(tup2)}, {"S", Type::Bag(tup2)}};
  ExprGenOptions options;
  options.max_bag_nesting = 1;
  options.allow_powerset = false;
  Evaluator eval;
  int volcano_agree = 0;
  int ir_agree = 0;
  const int trials = 100;
  exec::ExecOptions strict_ir;
  strict_ir.engine = exec::Engine::kIr;
  for (int i = 0; i < trials; ++i) {
    auto e = RandomExpr(rng, schema, options);
    if (!e.ok()) continue;
    Database db = MakeDb(6, 1000 + static_cast<uint64_t>(i));
    auto r1 = eval.EvalToBag(*e, db);
    auto r2 = exec::RunVolcanoPipeline(*e, db);
    auto r3 = exec::RunPipeline(*e, db, strict_ir);
    if (r1.ok() && r2.ok() && *r1 == *r2) ++volcano_agree;
    if (r1.ok() && r3.ok() && *r1 == *r3) ++ir_agree;
  }
  std::fprintf(stderr, "  volcano: %d/%d identical bags\n", volcano_agree,
               trials);
  std::fprintf(stderr, "  fused ir: %d/%d identical bags\n\n", ir_agree,
               trials);
}

void BM_EvaluatorJoin(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Expr q = JoinChain();
  Evaluator eval;
  // Null unless --bagalg_trace=FILE was passed: the disabled path costs one
  // pointer test per AST node, which is what the ≤2% budget measures.
  eval.set_tracer(obs::GlobalTracerIfEnabled());
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvaluatorJoin)->RangeMultiplier(4)->Range(16, 1024);

// Pinned to the Volcano engine: the tuple-at-a-time baseline the IR engine
// is gated against (bench/compare_benchmarks.py tracks both names).
void BM_PipelineJoin(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Expr q = JoinChain();
  exec::ExecOptions options;
  options.tracer = obs::GlobalTracerIfEnabled();
  for (auto _ : state) {
    auto r = exec::RunVolcanoPipeline(q, db, options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PipelineJoin)->RangeMultiplier(4)->Range(16, 1024);

// The fused batched engine on the same join: hash-join promotion plus
// fused σ/π stages. The PR's acceptance gate wants ≥2x over
// BM_PipelineJoin at the larger sizes.
void BM_IrJoin(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Expr q = JoinChain();
  exec::ExecOptions options;
  options.engine = exec::Engine::kIr;
  options.tracer = obs::GlobalTracerIfEnabled();
  for (auto _ : state) {
    auto r = exec::RunPipeline(q, db, options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IrJoin)->RangeMultiplier(4)->Range(16, 1024);

void BM_PipelineCompileOnly(benchmark::State& state) {
  Database db = MakeDb(64);
  Expr q = JoinChain();
  for (auto _ : state) {
    auto r = exec::CompilePipeline(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PipelineCompileOnly);

// Plan-time cost of the IR front half (rewrite, typecheck, lowering,
// passes) — the per-query overhead the batched execution must amortize.
void BM_IrLowerOnly(benchmark::State& state) {
  Database db = MakeDb(64);
  Expr q = JoinChain();
  for (auto _ : state) {
    auto r = ir::LowerToIr(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IrLowerOnly);

void BM_EvaluatorUnionChain(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Expr q = Uplus(Uplus(Input("R"), Input("S")), Uplus(Input("S"), Input("R")));
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvaluatorUnionChain)->RangeMultiplier(8)->Range(64, 1 << 14);

// Pinned Volcano, as with BM_PipelineJoin.
void BM_PipelineUnionChain(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Expr q = Uplus(Uplus(Input("R"), Input("S")), Uplus(Input("S"), Input("R")));
  for (auto _ : state) {
    auto r = exec::RunVolcanoPipeline(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PipelineUnionChain)->RangeMultiplier(8)->Range(64, 1 << 14);

void BM_IrUnionChain(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Expr q = Uplus(Uplus(Input("R"), Input("S")), Uplus(Input("S"), Input("R")));
  exec::ExecOptions options;
  options.engine = exec::Engine::kIr;
  for (auto _ : state) {
    auto r = exec::RunPipeline(q, db, options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IrUnionChain)->RangeMultiplier(8)->Range(64, 1 << 14);

}  // namespace

int main(int argc, char** argv) {
  obs::EnableGlobalTraceFromArgs(&argc, argv);
  PrintAgreementSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
