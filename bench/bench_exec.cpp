// Execution-engine comparison: tree-walking evaluator vs the Volcano-style
// pipeline on BALG¹ workloads (the paper's tractable fragment, Thm 4.4).
//
// The streaming engine avoids materializing intermediates for
// select/project/product chains (the pipeline stays a pull loop), while
// pipeline breakers (−, ∩, ε) fall back to materialization — mirroring how
// SQL engines treat DISTINCT/EXCEPT. The table checks exact agreement; the
// benches chart both engines as the inputs grow.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/exec/compile.h"
#include "src/obs/trace.h"
#include "src/stats/expr_gen.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

using namespace bagalg;

namespace {

Expr JoinChain() {
  // π1(σ_{2=3}((R × S) selective pipeline)).
  return ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 3),
                             Product(Input("R"), Input("S"))),
                      {1, 4});
}

Database MakeDb(size_t elements, uint64_t seed = 7) {
  Rng rng(seed);
  FlatBagSpec spec1;
  spec1.arity = 2;
  spec1.num_atoms = 16;
  spec1.num_elements = elements;
  spec1.max_mult = 3;
  Database db;
  (void)db.Put("R", RandomFlatBag(rng, spec1));
  (void)db.Put("S", RandomFlatBag(rng, spec1));
  return db;
}

void PrintAgreementSweep() {
  // stderr, so --benchmark_format=json output on stdout stays parseable.
  std::fprintf(stderr,
               "=== pipeline vs evaluator: agreement on random BALG¹ "
               "queries ===\n");
  Rng rng(4242);
  Type tup2 = Type::Tuple({Type::Atom(), Type::Atom()});
  Schema schema{{"R", Type::Bag(tup2)}, {"S", Type::Bag(tup2)}};
  ExprGenOptions options;
  options.max_bag_nesting = 1;
  options.allow_powerset = false;
  Evaluator eval;
  int agree = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    auto e = RandomExpr(rng, schema, options);
    if (!e.ok()) continue;
    Database db = MakeDb(6, 1000 + static_cast<uint64_t>(i));
    auto r1 = eval.EvalToBag(*e, db);
    auto r2 = exec::RunPipeline(*e, db);
    if (r1.ok() && r2.ok() && *r1 == *r2) ++agree;
  }
  std::fprintf(stderr, "  %d/%d random queries: identical bags\n\n", agree,
               trials);
}

void BM_EvaluatorJoin(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Expr q = JoinChain();
  Evaluator eval;
  // Null unless --bagalg_trace=FILE was passed: the disabled path costs one
  // pointer test per AST node, which is what the ≤2% budget measures.
  eval.set_tracer(obs::GlobalTracerIfEnabled());
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvaluatorJoin)->RangeMultiplier(4)->Range(16, 1024);

void BM_PipelineJoin(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Expr q = JoinChain();
  exec::ExecOptions options;
  options.tracer = obs::GlobalTracerIfEnabled();
  for (auto _ : state) {
    auto r = exec::RunPipeline(q, db, options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PipelineJoin)->RangeMultiplier(4)->Range(16, 1024);

void BM_PipelineCompileOnly(benchmark::State& state) {
  Database db = MakeDb(64);
  Expr q = JoinChain();
  for (auto _ : state) {
    auto r = exec::CompilePipeline(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PipelineCompileOnly);

void BM_EvaluatorUnionChain(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Expr q = Uplus(Uplus(Input("R"), Input("S")), Uplus(Input("S"), Input("R")));
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvaluatorUnionChain)->RangeMultiplier(8)->Range(64, 1 << 14);

void BM_PipelineUnionChain(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Expr q = Uplus(Uplus(Input("R"), Input("S")), Uplus(Input("S"), Input("R")));
  for (auto _ : state) {
    auto r = exec::RunPipeline(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PipelineUnionChain)->RangeMultiplier(8)->Range(64, 1 << 14);

}  // namespace

int main(int argc, char** argv) {
  obs::EnableGlobalTraceFromArgs(&argc, argv);
  PrintAgreementSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
