// Experiments E13/E14 — Figure 1 and the Theorem 5.2 separation.
//
// The table reproduces the whole Lemma 5.4 package per n: the In_n/Out_n
// balanced split (property (1)), the degree asymmetry, the Φ query values
// on G vs G' (computed in the algebra, a BALG² query), and the k-move
// pebble-game verdicts: Φ separates the graphs while the duplicator
// survives k moves whenever n > 2^k. Benchmarks time the game search.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/games/pebble_game.h"
#include "src/games/structures.h"

using namespace bagalg;
using namespace bagalg::games;

namespace {

bool PhiHolds(const Structure& s, const Value& alpha) {
  Database db;
  (void)db.Put("G", EdgesAsBag(s));
  Evaluator eval;
  auto r = eval.EvalToBag(InDegreeGreaterThanOut(Input("G"), alpha), db);
  return r.ok() && !r->empty();
}

void PrintFig1Table() {
  std::printf(
      "=== E13/E14: Fig 1 graphs, the Φ query, and the pebble game ===\n");
  std::printf("%4s %7s %10s %8s %8s %10s %12s\n", "n", "nodes", "balanced",
              "Phi(G)", "Phi(G')", "k=1 game", "k=2 game");
  for (int n = 4; n <= 8; n += 2) {
    auto g = BuildFig1StarGraphs(n);
    if (!g.ok()) continue;
    bool balanced = BalancedSplitHolds(g->in_nodes, n) &&
                    BalancedSplitHolds(g->out_nodes, n);
    bool phi_g = PhiHolds(g->g, g->alpha);
    bool phi_gp = PhiHolds(g->g_prime, g->alpha);
    PebbleGame game1(g->g, g->g_prime);
    bool dup1 = game1.DuplicatorWins(1);
    std::string k2 = "-";
    if (n <= 6) {  // the k=2 search is exponential in the 2^n completion
      PebbleGame game2(g->g, g->g_prime);
      k2 = game2.DuplicatorWins(2) ? "duplicator" : "spoiler";
    }
    std::printf("%4d %7zu %10s %8s %8s %10s %12s\n", n,
                2 * g->in_nodes.size() + 1, balanced ? "yes" : "NO",
                phi_g ? "true" : "false", phi_gp ? "true" : "false",
                dup1 ? "duplicator" : "spoiler", k2.c_str());
  }
  std::printf(
      "(paper: property (1) holds; Phi false on G, true on G'; the\n"
      " duplicator wins the k-move game for n > 2^k — so Phi, a BALG²\n"
      " query, is not expressible in RALG² (Theorem 5.2).)\n\n");
}

void BM_BuildFig1(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto g = BuildFig1StarGraphs(n);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_BuildFig1)->DenseRange(4, 14, 2);

void BM_PhiQueryOnFig1(benchmark::State& state) {
  auto g = BuildFig1StarGraphs(static_cast<int>(state.range(0))).value();
  Database db;
  (void)db.Put("G", EdgesAsBag(g.g_prime));
  Expr phi = InDegreeGreaterThanOut(Input("G"), g.alpha);
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(phi, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PhiQueryOnFig1)->DenseRange(4, 12, 2);

void BM_PebbleGameOneMove(benchmark::State& state) {
  auto g = BuildFig1StarGraphs(static_cast<int>(state.range(0))).value();
  for (auto _ : state) {
    PebbleGame game(g.g, g.g_prime);
    bool w = game.DuplicatorWins(1);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_PebbleGameOneMove)->DenseRange(4, 8, 2);

void BM_PebbleGameTwoMoves(benchmark::State& state) {
  auto g = BuildFig1StarGraphs(static_cast<int>(state.range(0))).value();
  for (auto _ : state) {
    PebbleGame game(g.g, g.g_prime);
    bool w = game.DuplicatorWins(2);
    benchmark::DoNotOptimize(w);
  }
  PebbleGame game(g.g, g.g_prime);
  (void)game.DuplicatorWins(2);
  state.counters["consistency_checks"] =
      static_cast<double>(game.stats().consistency_checks);
}
BENCHMARK(BM_PebbleGameTwoMoves)->DenseRange(4, 6, 2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFig1Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
