// Experiment E10 — Proposition 4.2: BALG¹∖{−} ≡ RALG∖{−}.
//
// The table verifies the translation on random databases (membership
// agreement, three engines: bag semantics + ε, the translated query, and
// the standalone set engine); the benchmarks compare the cost of bag
// semantics vs set semantics vs the reference engine on the same queries —
// the practical face of "bags are often kept to avoid duplicate
// elimination" (§1).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/core/bag_ops.h"
#include "src/relational/relation.h"
#include "src/relational/translate.h"
#include "src/stats/sampler.h"
#include "src/util/rng.h"

using namespace bagalg;
using relational::Relation;
using relational::ToSetSemantics;
using relational::TranslateBalg1ToRalg;

namespace {

Expr JoinQuery() {
  return ProjectAttrs(Select(Proj(Var(0), 2), Proj(Var(0), 3),
                             Product(Input("A"), Input("B"))),
                      {1, 4});
}

void PrintEquivalenceTable() {
  std::printf("=== E10: Prop 4.2 — three engines agree on membership ===\n");
  Rng rng(77);
  FlatBagSpec spec;
  spec.arity = 2;
  spec.num_elements = 12;
  Evaluator eval;
  Expr q = JoinQuery();
  Expr translated = TranslateBalg1ToRalg(q).value();
  int agree = 0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    Bag a = DupElim(RandomFlatBag(rng, spec)).value();
    Bag b = DupElim(RandomFlatBag(rng, spec)).value();
    Database db;
    (void)db.Put("A", a);
    (void)db.Put("B", b);
    Bag via_bags = DupElim(eval.EvalToBag(q, db).value()).value();
    Bag via_translation = eval.EvalToBag(translated, db).value();
    Bag via_reference = Relation::FromBag(a)
                            .value()
                            .Product(Relation::FromBag(b).value())
                            .SelectEqAttrs(2, 3)
                            .value()
                            .Project({1, 4})
                            .value()
                            .ToBag();
    if (via_bags == via_translation && via_translation == via_reference) {
      ++agree;
    }
  }
  std::printf("  pi_{1,4}(sigma_{2=3}(A x B)): %d/%d instances, all three "
              "engines identical\n\n",
              agree, trials);
}

Database MakeDb(uint64_t seed, size_t elements, uint64_t max_mult) {
  Rng rng(seed);
  FlatBagSpec spec;
  spec.arity = 2;
  spec.num_atoms = 16;
  spec.num_elements = elements;
  spec.max_mult = max_mult;
  Database db;
  (void)db.Put("A", RandomFlatBag(rng, spec));
  (void)db.Put("B", RandomFlatBag(rng, spec));
  return db;
}

void BM_JoinBagSemantics(benchmark::State& state) {
  Database db = MakeDb(91, static_cast<size_t>(state.range(0)), 4);
  Expr q = JoinQuery();
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_JoinBagSemantics)->RangeMultiplier(4)->Range(16, 1024);

void BM_JoinSetSemantics(benchmark::State& state) {
  Database db = MakeDb(91, static_cast<size_t>(state.range(0)), 4);
  Expr q = ToSetSemantics(JoinQuery());
  Evaluator eval;
  for (auto _ : state) {
    auto r = eval.EvalToBag(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_JoinSetSemantics)->RangeMultiplier(4)->Range(16, 1024);

void BM_JoinReferenceEngine(benchmark::State& state) {
  Database db = MakeDb(91, static_cast<size_t>(state.range(0)), 4);
  Relation a = Relation::FromBag(db.Get("A").value()).value();
  Relation b = Relation::FromBag(db.Get("B").value()).value();
  for (auto _ : state) {
    auto r = a.Product(b).SelectEqAttrs(2, 3).value().Project({1, 4});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_JoinReferenceEngine)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

int main(int argc, char** argv) {
  PrintEquivalenceTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
