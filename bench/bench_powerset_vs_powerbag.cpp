// Experiment E1 — powerset vs powerbag cardinality (paper §1, Def 5.1).
//
// Paper claim: for B_n = n occurrences of a single constant,
//   |P(B_n)|   = n + 1         (one occurrence of each distinct subbag)
//   |P_b(B_n)| = 2^n           (occurrence-distinguishing)
// This is the gap that makes the powerbag intractable and justifies basing
// BALG on the powerset (§5). The table prints both series; the benchmarks
// time the two operators on duplicate-heavy and distinct-heavy inputs.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/bag_ops.h"
#include "src/core/encoding.h"

using namespace bagalg;

namespace {

void PrintReproductionTable() {
  std::printf(
      "=== E1: |P(n*a)| vs |P_b(n*a)| — paper: n+1 vs 2^n (exact) ===\n");
  std::printf("%4s  %16s  %10s  %20s  %10s\n", "n", "|P(B_n)|", "expect",
              "|P_b(B_n)|", "expect");
  for (uint64_t n = 0; n <= 16; n += 2) {
    Bag bn = NCopies(Mult(n), MakeAtom("a"));
    Limits limits;
    limits.max_powerset_results = 1u << 20;
    Bag ps = Powerset(bn, limits).value();
    Bag pb = Powerbag(bn, limits).value();
    std::printf("%4llu  %16s  %10llu  %20s  %10s\n",
                static_cast<unsigned long long>(n),
                ps.TotalCount().ToString().c_str(),
                static_cast<unsigned long long>(n + 1),
                pb.TotalCount().ToString().c_str(),
                BigNat::TwoPow(n).ToString().c_str());
  }
  std::printf("\n");
}

/// Powerset over a bag of n duplicates of one element: linear output.
void BM_PowersetDuplicates(benchmark::State& state) {
  Bag bn = NCopies(Mult(static_cast<uint64_t>(state.range(0))),
                   MakeAtom("a"));
  Limits limits;
  limits.max_powerset_results = 1u << 22;
  for (auto _ : state) {
    auto p = Powerset(bn, limits);
    benchmark::DoNotOptimize(p);
  }
  state.counters["distinct_subbags"] =
      static_cast<double>(state.range(0) + 1);
}
BENCHMARK(BM_PowersetDuplicates)->RangeMultiplier(4)->Range(4, 4096);

/// Powerbag over the same input: 2^n total occurrences (counted form keeps
/// it n+1 entries, with binomial multiplicities).
void BM_PowerbagDuplicates(benchmark::State& state) {
  Bag bn = NCopies(Mult(static_cast<uint64_t>(state.range(0))),
                   MakeAtom("a"));
  Limits limits;
  limits.max_powerset_results = 1u << 22;
  limits.max_mult_bits = 1u << 20;
  for (auto _ : state) {
    auto p = Powerbag(bn, limits);
    benchmark::DoNotOptimize(p);
  }
  Bag out = Powerbag(bn, limits).value();
  state.counters["standard_size_bits"] =
      static_cast<double>(out.TotalCount().BitLength());
}
BENCHMARK(BM_PowerbagDuplicates)->RangeMultiplier(4)->Range(4, 1024);

/// Powerset over n *distinct* elements: 2^n distinct subbags — the
/// exponential case both operators share.
void BM_PowersetDistinct(benchmark::State& state) {
  Bag::Builder builder;
  for (int64_t i = 0; i < state.range(0); ++i) {
    builder.AddOne(MakeAtom("d" + std::to_string(i)));
  }
  Bag bag = std::move(builder).Build().value();
  Limits limits;
  limits.max_powerset_results = 1u << 22;
  for (auto _ : state) {
    auto p = Powerset(bag, limits);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PowersetDistinct)->DenseRange(2, 14, 2);

}  // namespace

int main(int argc, char** argv) {
  PrintReproductionTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
