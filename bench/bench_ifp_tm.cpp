// Experiment E18 — Theorem 6.6: Turing machines through BALG²+IFP.
//
// The table runs machines both natively and compiled into the algebra and
// compares verdict/tape/step counts exactly; the benchmarks chart the cost
// of algebra-hosted computation against input size — each TM step is a
// full pass of bag operators, so the overhead factor is the price of
// Turing completeness inside a query language.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/tm/ifp_compiler.h"
#include "src/tm/machine.h"

using namespace bagalg;
using namespace bagalg::tm;

namespace {

void PrintAgreementTable() {
  std::printf("=== E18: native vs algebra-compiled machines ===\n");
  std::printf("%-18s %-8s %8s %8s %10s %10s  %s\n", "machine", "input",
              "nat.steps", "alg.steps", "nat.tape", "alg.tape", "verdicts");
  struct Case {
    TmSpec spec;
    std::string input;
    size_t cells;
  } cases[] = {
      {UnaryIncrementMachine(), "1", 3},
      {UnaryIncrementMachine(), "1111", 6},
      {EvenOnesMachine(), "11", 4},
      {EvenOnesMachine(), "11111", 7},
      {AnBnMachine(), "ab", 4},
      {AnBnMachine(), "aabb", 6},
      {AnBnMachine(), "aabbb", 7},
      {BinaryIncrementMachine(), "1101", 6},
  };
  for (const auto& c : cases) {
    auto native = RunMachine(c.spec, c.input);
    auto algebra = RunMachineViaAlgebra(c.spec, c.input, c.cells);
    if (!native.ok() || !algebra.ok()) {
      std::printf("%-18s %-8s ERROR\n", c.spec.name.c_str(),
                  c.input.c_str());
      continue;
    }
    std::printf("%-18s %-8s %8llu %8llu %10s %10s  %s/%s %s\n",
                c.spec.name.c_str(), c.input.c_str(),
                static_cast<unsigned long long>(native->steps),
                static_cast<unsigned long long>(algebra->steps),
                native->final_tape.c_str(), algebra->final_tape.c_str(),
                native->accepted ? "ACC" : "REJ",
                algebra->accepted ? "ACC" : "REJ",
                native->accepted == algebra->accepted &&
                        native->final_tape == algebra->final_tape &&
                        native->steps == algebra->steps
                    ? "EXACT"
                    : "MISMATCH");
  }
  std::printf("\n");
}

void BM_NativeEvenOnes(benchmark::State& state) {
  std::string input(static_cast<size_t>(state.range(0)), '1');
  TmSpec spec = EvenOnesMachine();
  for (auto _ : state) {
    auto r = RunMachine(spec, input);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NativeEvenOnes)->DenseRange(2, 10, 2);

void BM_AlgebraEvenOnes(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string input(n, '1');
  TmSpec spec = EvenOnesMachine();
  EvalStats stats;
  for (auto _ : state) {
    auto r = RunMachineViaAlgebra(spec, input, n + 2, Limits::Default(),
                                  &stats);
    benchmark::DoNotOptimize(r);
  }
  state.counters["operator_applications"] =
      static_cast<double>(stats.steps);
}
BENCHMARK(BM_AlgebraEvenOnes)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);

void BM_AlgebraAnBn(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string input = std::string(n, 'a') + std::string(n, 'b');
  TmSpec spec = AnBnMachine();
  for (auto _ : state) {
    auto r = RunMachineViaAlgebra(spec, input, 2 * n + 2);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AlgebraAnBn)->DenseRange(1, 3, 1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintAgreementTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
