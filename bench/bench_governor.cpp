// Governor checkpoint overhead — paired gov_off/gov_on runs of the
// checkpointed kernels (merge walk, Cartesian product, powerset odometer,
// evaluator entry loops) at threads=1. Each pair runs the identical
// workload with and without an ambient no-limit ResourceGovernor, so the
// time delta is exactly the checkpoint discipline's cost: one local
// decrement per iteration plus a full Check() every kCheckpointStride.
//
// Two modes:
//  - default: ordinary google-benchmark *_gov_off / *_gov_on rows, for the
//    perf trajectory collected by bench/run_benchmarks.sh.
//  - --paired: the assertion mode used by
//      bench/run_benchmarks.sh --governor-overhead
//    Shared hosts drift too much for independent off/on timings — per-rep
//    means (and even minima over dozens of repetitions) were observed
//    swinging -9%..+25% run to run, an order of magnitude above the budget
//    being asserted. Paired mode instead times off and on back-to-back
//    inside the same few-millisecond window, so frequency and scheduler
//    drift hit both sides alike and cancel in the ratio; the reported
//    overhead is the median of per-round ratios (each side min-of-3 within
//    its round). Output is a JSON document consumed by
//    compare_benchmarks.py --overhead, which asserts the <2% budget from
//    docs/ROBUSTNESS.md.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "src/algebra/builder.h"
#include "src/algebra/eval.h"
#include "src/core/bag_ops.h"
#include "src/stats/sampler.h"
#include "src/util/governor.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

using namespace bagalg;

namespace {

Bag MakeInput(size_t elements, uint64_t seed) {
  Rng rng(seed);
  FlatBagSpec spec;
  spec.arity = 2;
  spec.num_atoms = 64;
  spec.num_elements = elements;
  spec.max_mult = 4;
  return RandomFlatBag(rng, spec);
}

/// Runs `body` once per benchmark iteration, optionally under a fresh
/// no-limit governor (the configuration the REPL installs per statement).
template <typename Body>
void RunGoverned(benchmark::State& state, bool governed, const Body& body) {
  for (auto _ : state) {
    if (governed) {
      ResourceGovernor governor{GovernorOptions{}};
      GovernorScope scope(&governor);
      body();
    } else {
      body();
    }
  }
}

void BM_Subtract_gov_off(benchmark::State& state) {
  Bag a = MakeInput(static_cast<size_t>(state.range(0)), 1);
  Bag b = MakeInput(static_cast<size_t>(state.range(0)), 2);
  RunGoverned(state, false, [&] {
    auto r = Subtract(a, b);
    benchmark::DoNotOptimize(r);
  });
}
BENCHMARK(BM_Subtract_gov_off)->Arg(1 << 14);

void BM_Subtract_gov_on(benchmark::State& state) {
  Bag a = MakeInput(static_cast<size_t>(state.range(0)), 1);
  Bag b = MakeInput(static_cast<size_t>(state.range(0)), 2);
  RunGoverned(state, true, [&] {
    auto r = Subtract(a, b);
    benchmark::DoNotOptimize(r);
  });
}
BENCHMARK(BM_Subtract_gov_on)->Arg(1 << 14);

void BM_Product_gov_off(benchmark::State& state) {
  Bag a = MakeInput(static_cast<size_t>(state.range(0)), 1);
  Bag b = MakeInput(static_cast<size_t>(state.range(0)), 2);
  RunGoverned(state, false, [&] {
    auto r = CartesianProduct(a, b);
    benchmark::DoNotOptimize(r);
  });
}
BENCHMARK(BM_Product_gov_off)->Arg(1 << 7);

void BM_Product_gov_on(benchmark::State& state) {
  Bag a = MakeInput(static_cast<size_t>(state.range(0)), 1);
  Bag b = MakeInput(static_cast<size_t>(state.range(0)), 2);
  RunGoverned(state, true, [&] {
    auto r = CartesianProduct(a, b);
    benchmark::DoNotOptimize(r);
  });
}
BENCHMARK(BM_Product_gov_on)->Arg(1 << 7);

Bag Atoms(size_t n) {
  Bag::Builder b;
  for (size_t i = 0; i < n; ++i) b.AddOne(MakeAtom("e" + std::to_string(i)));
  auto r = std::move(b).Build();
  return r.ok() ? std::move(r).value() : Bag();
}

void BM_Powerset_gov_off(benchmark::State& state) {
  Bag in = Atoms(static_cast<size_t>(state.range(0)));
  RunGoverned(state, false, [&] {
    auto r = Powerset(in);
    benchmark::DoNotOptimize(r);
  });
}
BENCHMARK(BM_Powerset_gov_off)->Arg(12);

void BM_Powerset_gov_on(benchmark::State& state) {
  Bag in = Atoms(static_cast<size_t>(state.range(0)));
  RunGoverned(state, true, [&] {
    auto r = Powerset(in);
    benchmark::DoNotOptimize(r);
  });
}
BENCHMARK(BM_Powerset_gov_on)->Arg(12);

Expr MapSelectQuery() {
  return Map(Tup({Proj(Var(0), 2), Proj(Var(0), 1)}),
             Select(Proj(Var(0), 1), Proj(Var(0), 1), Input("B")));
}

void BM_EvalMapSelect_gov_off(benchmark::State& state) {
  Database db;
  (void)db.Put("B", MakeInput(static_cast<size_t>(state.range(0)), 1));
  Expr query = MapSelectQuery();
  Evaluator eval;
  RunGoverned(state, false, [&] {
    auto r = eval.EvalToBag(query, db);
    benchmark::DoNotOptimize(r);
  });
}
BENCHMARK(BM_EvalMapSelect_gov_off)->Arg(1 << 13);

void BM_EvalMapSelect_gov_on(benchmark::State& state) {
  Database db;
  (void)db.Put("B", MakeInput(static_cast<size_t>(state.range(0)), 1));
  Expr query = MapSelectQuery();
  Evaluator eval;
  // The walker binds the ambient governor at construction time inside
  // Evaluator::Eval, so the per-iteration governor is picked up through
  // set_governor exactly like the REPL's per-statement EvalGovernor.
  for (auto _ : state) {
    ResourceGovernor governor{GovernorOptions{}};
    eval.set_governor(&governor);
    auto r = eval.EvalToBag(query, db);
    benchmark::DoNotOptimize(r);
    eval.set_governor(nullptr);
  }
}
BENCHMARK(BM_EvalMapSelect_gov_on)->Arg(1 << 13);

// ------------------------------------------------------------ paired mode

uint64_t TimeOnceNs(const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

struct PairedWorkload {
  std::string name;
  std::function<void(bool governed)> run;
};

int RunPaired() {
  constexpr int kRounds = 31;
  constexpr int kInnerRuns = 3;

  Bag sub_a = MakeInput(1 << 14, 1);
  Bag sub_b = MakeInput(1 << 14, 2);
  Bag prod_a = MakeInput(1 << 7, 1);
  Bag prod_b = MakeInput(1 << 7, 2);
  Bag pow_in = Atoms(12);
  Database db;
  (void)db.Put("B", MakeInput(1 << 13, 1));
  Expr query = MapSelectQuery();
  Evaluator eval;

  auto governed_kernel = [](const std::function<void()>& body, bool governed) {
    if (governed) {
      ResourceGovernor governor{GovernorOptions{}};
      GovernorScope scope(&governor);
      body();
    } else {
      body();
    }
  };

  std::vector<PairedWorkload> workloads;
  workloads.push_back({"Subtract/16384", [&](bool governed) {
                         governed_kernel(
                             [&] {
                               auto r = Subtract(sub_a, sub_b);
                               benchmark::DoNotOptimize(r);
                             },
                             governed);
                       }});
  workloads.push_back({"Product/128", [&](bool governed) {
                         governed_kernel(
                             [&] {
                               auto r = CartesianProduct(prod_a, prod_b);
                               benchmark::DoNotOptimize(r);
                             },
                             governed);
                       }});
  workloads.push_back({"Powerset/12", [&](bool governed) {
                         governed_kernel(
                             [&] {
                               auto r = Powerset(pow_in);
                               benchmark::DoNotOptimize(r);
                             },
                             governed);
                       }});
  workloads.push_back({"EvalMapSelect/8192", [&](bool governed) {
                         if (governed) {
                           ResourceGovernor governor{GovernorOptions{}};
                           eval.set_governor(&governor);
                           auto r = eval.EvalToBag(query, db);
                           benchmark::DoNotOptimize(r);
                           eval.set_governor(nullptr);
                         } else {
                           auto r = eval.EvalToBag(query, db);
                           benchmark::DoNotOptimize(r);
                         }
                       }});

  std::cout << "{\n  \"governor_overhead_pairs\": [\n";
  for (size_t w = 0; w < workloads.size(); ++w) {
    const PairedWorkload& work = workloads[w];
    // Warm caches, the atom intern table, and the allocator before timing.
    work.run(false);
    work.run(true);
    std::vector<double> off_ns, on_ns, ratios;
    for (int round = 0; round < kRounds; ++round) {
      // Min-of-3 per side, both sides inside the same few-ms window: a
      // frequency or scheduler excursion hits off and on alike, so it
      // cancels in this round's ratio instead of biasing the estimate.
      uint64_t off = ~uint64_t{0};
      uint64_t on = ~uint64_t{0};
      for (int i = 0; i < kInnerRuns; ++i) {
        off = std::min(off, TimeOnceNs([&] { work.run(false); }));
        on = std::min(on, TimeOnceNs([&] { work.run(true); }));
      }
      off_ns.push_back(static_cast<double>(off));
      on_ns.push_back(static_cast<double>(on));
      ratios.push_back(static_cast<double>(on) / static_cast<double>(off));
    }
    std::cout << "    {\"name\": \"" << work.name
              << "\", \"off_ns\": " << Median(off_ns)
              << ", \"on_ns\": " << Median(on_ns)
              << ", \"overhead\": " << Median(ratios) - 1.0 << "}"
              << (w + 1 < workloads.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // The overhead budget is defined at threads=1: serial runs make the
  // gov_on/gov_off delta attributable to checkpoints alone.
  ThreadPool::Configure(ParallelOptions::Serial());
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paired") == 0) return RunPaired();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
