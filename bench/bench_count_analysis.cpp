// Experiment E9 — the Proposition 4.1/4.5 polynomial abstraction.
//
// The table runs the abstract count interpreter on a BALG¹ expression zoo
// over B_n = n·[a], prints the inferred polynomial per tuple, and verifies
// it against concrete evaluation; it then shows the bag-even count
// function failing the finite-difference polynomial test at every degree —
// the computational content of "bag-even ∉ BALG¹". Benchmarks measure the
// analysis itself.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/analysis/count_analysis.h"
#include "src/analysis/polynomial.h"

using namespace bagalg;
using analysis::AnalyzeCounts;
using analysis::IsPolynomialSequence;

namespace {

void PrintAbstractionTable() {
  std::printf("=== E9: Prop 4.1 polynomials, inferred and verified ===\n");
  Value a = MakeAtom("a");
  Expr B = Input("B");
  struct Row {
    const char* label;
    Expr expr;
  } rows[] = {
      {"B", B},
      {"B ⊎ B", Uplus(B, B)},
      {"B × B", Product(B, B)},
      {"π1(B×B) − B", Monus(Map(Tup({Proj(Var(0), 1)}), Product(B, B)), B)},
      {"ε(B ⊎ B)", Eps(Uplus(B, B))},
      {"min(π1(B×B), 2B)", Inter(Map(Tup({Proj(Var(0), 1)}),
                                     Product(B, B)),
                                 Uplus(B, B))},
  };
  Evaluator eval;
  for (const Row& row : rows) {
    auto an = AnalyzeCounts(row.expr, "B", a);
    if (!an.ok()) {
      std::printf("  %-22s analysis error: %s\n", row.label,
                  an.status().ToString().c_str());
      continue;
    }
    // Verify at three points past the validity threshold.
    uint64_t start = an->UniformValidFrom().ToUint64().value();
    bool verified = true;
    for (uint64_t n = start; n < start + 3; ++n) {
      Database db;
      (void)db.Put("B", NCopies(Mult(n), Value::Tuple({a})));
      auto out = eval.EvalToBag(row.expr, db);
      if (!out.ok()) {
        verified = false;
        break;
      }
      for (const auto& [t, cf] : an->counts) {
        if (!(BigInt(out->CountOf(t)) == cf.poly.Eval(BigNat(n)))) {
          verified = false;
        }
      }
    }
    std::string polys;
    for (const auto& [t, cf] : an->counts) {
      if (!polys.empty()) polys += ", ";
      polys += t.ToString() + " : " + cf.poly.ToString();
    }
    std::printf("  %-22s { %s }  valid_from=%s  %s\n", row.label,
                polys.c_str(), an->UniformValidFrom().ToString().c_str(),
                verified ? "VERIFIED" : "MISMATCH");
  }
  std::printf("\n");
}

void PrintBagEvenTable() {
  std::printf(
      "=== E9b: Prop 4.5 — bag-even's count function is not polynomial "
      "===\n");
  std::printf("  f(n) = n if n even else 0, sampled n = 0..29\n");
  std::vector<BigInt> samples;
  for (int64_t n = 0; n < 30; ++n) {
    samples.push_back(BigInt(n % 2 == 0 ? n : 0));
  }
  for (size_t d = 0; d <= 10; ++d) {
    std::printf("  degree <= %2zu : finite differences vanish? %s\n", d,
                IsPolynomialSequence(samples, d) ? "yes (?!)" : "no");
  }
  std::printf(
      "  (every BALG¹ count function is eventually polynomial — Prop 4.1 —\n"
      "   so bag-even is not BALG¹-definable; with an order it is, §4.)\n\n");
}

void BM_AnalyzeCounts(benchmark::State& state) {
  Value a = MakeAtom("a");
  // Chain of products: polynomial degree grows with the chain length.
  Expr e = Input("B");
  for (int64_t i = 0; i < state.range(0); ++i) {
    e = Product(e, Input("B"));
  }
  for (auto _ : state) {
    auto r = AnalyzeCounts(e, "B", a);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AnalyzeCounts)->DenseRange(1, 6, 1);

void BM_PolynomialEvalLargeN(benchmark::State& state) {
  analysis::Polynomial p({BigInt(3), BigInt(-2), BigInt(1), BigInt(5)});
  BigNat n = BigNat::Pow(BigNat(10), static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto v = p.Eval(n);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_PolynomialEvalLargeN)->DenseRange(1, 5, 1);

}  // namespace

int main(int argc, char** argv) {
  PrintAbstractionTable();
  PrintBagEvenTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
