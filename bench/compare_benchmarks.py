#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json files against committed baselines.

Usage:
    bench/compare_benchmarks.py [--baseline DIR] [--candidate DIR]
                                [--threshold FRACTION]

Matches benchmarks by (file, benchmark name) between the baseline directory
(default: bench/results) and the candidate directory, reports the
per-benchmark real-time delta, and exits nonzero when any benchmark
regressed by more than the threshold (default: 0.10, i.e. 10% slower).

Typical use, via the harness:
    bench/run_benchmarks.sh --compare            # run fresh, diff vs repo
or standalone against two directories of results:
    bench/compare_benchmarks.py --candidate /tmp/fresh-results
"""

import argparse
import json
import os
import sys

# Durations are normalized to nanoseconds before comparison.
_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_results(path):
    """Returns {benchmark name: real_time_ns} for one BENCH_*.json file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) when repetitions are on.
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = b.get("name")
        real = b.get("real_time")
        unit = b.get("time_unit", "ns")
        if name is None or real is None or unit not in _TIME_UNIT_NS:
            continue
        out[name] = real * _TIME_UNIT_NS[unit]
    return out


def format_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def load_minima(path):
    """Returns {benchmark name: min real_time_ns over repetitions} for one
    BENCH_*.json file produced with --benchmark_repetitions. The minimum is
    the noise-robust estimator for paired overhead measurement: scheduler
    and frequency noise only ever add time, so the fastest repetition of
    each side is the closest observation of its true cost."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = b.get("run_name", b.get("name", ""))
        real = b.get("real_time")
        unit = b.get("time_unit", "ns")
        if not name or real is None or unit not in _TIME_UNIT_NS:
            continue
        ns = real * _TIME_UNIT_NS[unit]
        out[name] = min(out.get(name, ns), ns)
    return out


def check_overhead(path, tolerance):
    """Checks the governor checkpoint overhead in FILE against the
    tolerance and fails when any workload pair exceeds it.

    Used by `run_benchmarks.sh --governor-overhead` to assert the governor
    checkpoint budget from docs/ROBUSTNESS.md (<2% at threads=1). The
    preferred input is the JSON emitted by `bench_governor --paired`, whose
    `governor_overhead_pairs` rows carry a noise-cancelling paired estimate
    (median of per-round on/off ratios measured back-to-back — independent
    off/on timings drift too much on shared hosts to assert a 2% budget).
    A plain google-benchmark results file with *_gov_on / *_gov_off rows is
    also accepted: those are paired by name on their minima over
    repetitions.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    pairs = []  # (label, off_ns, on_ns, overhead)
    if "governor_overhead_pairs" in doc:
        for row in doc["governor_overhead_pairs"]:
            pairs.append((row["name"], row["off_ns"], row["on_ns"],
                          row["overhead"]))
    else:
        results = load_minima(path)
        for name, on_ns in sorted(results.items()):
            if "_gov_on" not in name:
                continue
            off_name = name.replace("_gov_on", "_gov_off")
            if off_name not in results:
                print(f"WARNING: {name} has no {off_name} partner",
                      file=sys.stderr)
                continue
            off_ns = results[off_name]
            overhead = (on_ns - off_ns) / off_ns if off_ns > 0 else 0.0
            label = name.replace("_gov_on", "")
            pairs.append((label, off_ns, on_ns, overhead))

    if not pairs:
        print("no gov_on/gov_off pairs found", file=sys.stderr)
        return 2

    failures = []
    print(f"{'benchmark':40s} {'gov off':>10s} {'gov on':>10s} "
          f"{'overhead':>9s}")
    for label, off_ns, on_ns, overhead in pairs:
        tag = ""
        if overhead > tolerance:
            tag = "  OVER BUDGET"
            failures.append((label, overhead))
        print(f"{label[:40]:40s} {format_ns(off_ns):>10s} "
              f"{format_ns(on_ns):>10s} {overhead:>+8.2%}{tag}")

    if failures:
        print(f"\nFAIL: {len(failures)} pair(s) above the "
              f"{tolerance:.0%} governor overhead budget:", file=sys.stderr)
        for label, overhead in failures:
            print(f"  {label}: {overhead:+.2%}", file=sys.stderr)
        return 1
    print(f"\nPASS: all {len(pairs)} pairs within the {tolerance:.0%} "
          f"governor overhead budget.")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff benchmark results against committed baselines.")
    parser.add_argument("--baseline", default="bench/results",
                        help="directory of baseline BENCH_*.json files")
    parser.add_argument("--candidate",
                        help="directory of freshly produced BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fail when any benchmark is this fraction slower "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--overhead", metavar="FILE",
                        help="instead of diffing directories, pair "
                             "*_gov_on/*_gov_off benchmarks within FILE and "
                             "check the governor checkpoint overhead")
    parser.add_argument("--overhead-tolerance", type=float, default=0.02,
                        help="fail when any gov_on/gov_off pair exceeds this "
                             "relative overhead (default 0.02 = 2%%)")
    args = parser.parse_args()

    if args.overhead:
        return check_overhead(args.overhead, args.overhead_tolerance)
    if not args.candidate:
        parser.error("--candidate is required unless --overhead is given")

    baseline_files = {
        f for f in os.listdir(args.baseline)
        if f.startswith("BENCH_") and f.endswith(".json")
    }
    candidate_files = {
        f for f in os.listdir(args.candidate)
        if f.startswith("BENCH_") and f.endswith(".json")
    }

    rows = []  # (file, name, base_ns, cand_ns, delta)
    missing = []
    for fname in sorted(baseline_files):
        if fname not in candidate_files:
            missing.append(f"{fname}: not produced by candidate run")
            continue
        base = load_results(os.path.join(args.baseline, fname))
        cand = load_results(os.path.join(args.candidate, fname))
        for name in sorted(base):
            if name not in cand:
                missing.append(f"{fname}: {name} missing from candidate")
                continue
            base_ns, cand_ns = base[name], cand[name]
            delta = (cand_ns - base_ns) / base_ns if base_ns > 0 else 0.0
            rows.append((fname, name, base_ns, cand_ns, delta))
        for name in sorted(set(cand) - set(base)):
            print(f"NEW       {fname:40s} {name} "
                  f"({format_ns(cand[name])}, no baseline)")
    for fname in sorted(candidate_files - baseline_files):
        print(f"NEW FILE  {fname} (no baseline)")

    if not rows and not missing:
        print("no comparable benchmarks found", file=sys.stderr)
        return 2

    regressions = []
    print(f"\n{'benchmark':58s} {'baseline':>10s} {'candidate':>10s} "
          f"{'delta':>8s}")
    for fname, name, base_ns, cand_ns, delta in sorted(
            rows, key=lambda r: -r[4]):
        tag = ""
        if delta > args.threshold:
            tag = "  REGRESSION"
            regressions.append((fname, name, delta))
        label = f"{fname.removeprefix('BENCH_bench_').removesuffix('.json')}" \
                f"/{name}"
        print(f"{label[:58]:58s} {format_ns(base_ns):>10s} "
              f"{format_ns(cand_ns):>10s} {delta:>+7.1%}{tag}")

    improved = sum(1 for r in rows if r[4] < -args.threshold)
    print(f"\n{len(rows)} benchmarks compared: {len(regressions)} regressed "
          f"beyond {args.threshold:.0%}, {improved} improved beyond "
          f"{args.threshold:.0%}.")
    for note in missing:
        print(f"WARNING: {note}", file=sys.stderr)

    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s) above "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for fname, name, delta in regressions:
            print(f"  {fname}: {name} {delta:+.1%}", file=sys.stderr)
        return 1
    print("PASS: no regressions above threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
