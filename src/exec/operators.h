#ifndef BAGALG_EXEC_OPERATORS_H_
#define BAGALG_EXEC_OPERATORS_H_

/// \file operators.h
/// The physical operators of the BALG¹ execution engine.
///
/// Streaming: Scan, Select, MapProject, UnionAll (⊎), NestedLoopProduct.
/// Pipeline breakers (materialize children into counted hash state):
/// Monus, MaxUnion, Intersect, DupElim.
///
/// Lambda bodies (MAP images and σ sides) are *object-level* expressions
/// over the row's tuple — the BALG¹ shape — evaluated by a small dedicated
/// interpreter (EvalRowLambda).

#include <functional>
#include <vector>

#include "src/algebra/expr.h"
#include "src/exec/operator.h"
#include "src/obs/trace.h"

namespace bagalg::exec {

/// Evaluates an object-level lambda body (Var(0) / τ / α_i / const) on a
/// row value. Unsupported for bodies using bag operators or deeper binders
/// (those queries stay on the tree-walking evaluator).
Result<Value> EvalRowLambda(const Expr& body, const Value& row);

/// Leaf scan over a materialized bag's canonical entries.
OperatorPtr MakeScan(Bag bag);

/// σ_{lhs=rhs}: keeps rows where the two object-level bodies agree.
OperatorPtr MakeSelect(OperatorPtr child, Expr lhs, Expr rhs);

/// MAP φ: applies an object-level body to each row (no merging; the sink
/// merges equal images, preserving the additive MAP semantics).
OperatorPtr MakeMapProject(OperatorPtr child, Expr body);

/// ⊎: concatenates the two input streams.
OperatorPtr MakeUnionAll(OperatorPtr left, OperatorPtr right);

/// ×: nested-loop product; the right side is materialized on Open, the
/// left side streams. Multiplicities multiply; tuple fields concatenate.
OperatorPtr MakeNestedLoopProduct(OperatorPtr left, OperatorPtr right);

/// − / ∪ / ∩: materialize both children and stream the merged counts.
enum class MergeKind { kMonus, kMaxUnion, kIntersect };
OperatorPtr MakeMerge(MergeKind kind, OperatorPtr left, OperatorPtr right);

/// ε: materializes and streams each distinct value once.
OperatorPtr MakeDupElim(OperatorPtr child);

/// Observability decorator: wraps `op` so each Open..Close cycle becomes a
/// trace span named "exec.<name>" carrying the row count, Next() call
/// count, and per-phase (open/next/close) wall time, and bumps the global
/// metrics counters "exec.rows" / "exec.next_calls". Children wrapped the
/// same way nest inside, since a parent opens before and closes after its
/// children. Returns `op` unchanged when `tracer` is null.
OperatorPtr WrapWithTracing(OperatorPtr op, obs::Tracer* tracer);

}  // namespace bagalg::exec

#endif  // BAGALG_EXEC_OPERATORS_H_
