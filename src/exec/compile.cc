#include "src/exec/compile.h"

#include <cstdlib>
#include <cstring>

#include "src/obs/metrics.h"

namespace bagalg::exec {

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kAuto:
      return "auto";
    case Engine::kVolcano:
      return "volcano";
    case Engine::kIr:
      return "ir";
  }
  return "?";
}

Engine EngineFromEnv() {
  const char* env = std::getenv("BAGALG_EXEC_ENGINE");
  if (env == nullptr) return Engine::kAuto;
  if (std::strcmp(env, "ir") == 0) return Engine::kIr;
  if (std::strcmp(env, "interp") == 0 || std::strcmp(env, "volcano") == 0) {
    return Engine::kVolcano;
  }
  return Engine::kAuto;
}

namespace {

/// OK iff the lambda body is object-level (the pipeline fragment).
Status CheckLambdaBody(const Expr& body) {
  const ExprNode& n = body.node();
  switch (n.kind) {
    case ExprKind::kVar:
      if (n.index != 0) {
        return Status::Unsupported("nested binder in pipeline lambda");
      }
      return Status::Ok();
    case ExprKind::kConst:
      return Status::Ok();
    case ExprKind::kTupling:
    case ExprKind::kAttrProj: {
      for (const Expr& c : n.children) {
        BAGALG_RETURN_IF_ERROR(CheckLambdaBody(c));
      }
      return Status::Ok();
    }
    default:
      return Status::Unsupported(
          std::string("operator ") + ExprKindName(n.kind) +
          " in a lambda body is outside the pipeline fragment");
  }
}

Result<OperatorPtr> Compile(const Expr& expr, const Database& db,
                            obs::Tracer* tracer) {
  const ExprNode& n = expr.node();
  // Every produced operator is routed through Trace(), which wraps it with
  // the timing decorator when a tracer is attached (identity otherwise).
  auto Trace = [tracer](OperatorPtr op) {
    return WrapWithTracing(std::move(op), tracer);
  };
  switch (n.kind) {
    case ExprKind::kInput: {
      BAGALG_ASSIGN_OR_RETURN(Bag bag, db.Get(n.name));
      return Trace(MakeScan(std::move(bag)));
    }
    case ExprKind::kConst: {
      if (!n.literal->IsBag()) {
        return Status::Unsupported("non-bag constant at pipeline root");
      }
      return Trace(MakeScan(n.literal->bag()));
    }
    case ExprKind::kAdditiveUnion: {
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr l,
                              Compile(n.children[0], db, tracer));
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr r,
                              Compile(n.children[1], db, tracer));
      return Trace(MakeUnionAll(std::move(l), std::move(r)));
    }
    case ExprKind::kSubtract:
    case ExprKind::kMaxUnion:
    case ExprKind::kIntersect: {
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr l,
                              Compile(n.children[0], db, tracer));
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr r,
                              Compile(n.children[1], db, tracer));
      MergeKind kind = n.kind == ExprKind::kSubtract ? MergeKind::kMonus
                       : n.kind == ExprKind::kMaxUnion
                           ? MergeKind::kMaxUnion
                           : MergeKind::kIntersect;
      return Trace(MakeMerge(kind, std::move(l), std::move(r)));
    }
    case ExprKind::kProduct: {
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr l,
                              Compile(n.children[0], db, tracer));
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr r,
                              Compile(n.children[1], db, tracer));
      return Trace(MakeNestedLoopProduct(std::move(l), std::move(r)));
    }
    case ExprKind::kMap: {
      BAGALG_RETURN_IF_ERROR(CheckLambdaBody(n.children[0]));
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr child,
                              Compile(n.children[1], db, tracer));
      return Trace(MakeMapProject(std::move(child), n.children[0]));
    }
    case ExprKind::kSelect: {
      BAGALG_RETURN_IF_ERROR(CheckLambdaBody(n.children[0]));
      BAGALG_RETURN_IF_ERROR(CheckLambdaBody(n.children[1]));
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr child,
                              Compile(n.children[2], db, tracer));
      return Trace(MakeSelect(std::move(child), n.children[0],
                              n.children[1]));
    }
    case ExprKind::kDupElim: {
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr child,
                              Compile(n.children[0], db, tracer));
      return Trace(MakeDupElim(std::move(child)));
    }
    default:
      return Status::Unsupported(
          std::string("operator ") + ExprKindName(n.kind) +
          " is outside the BALG^1 pipeline fragment");
  }
}

}  // namespace

Result<OperatorPtr> CompilePipeline(const Expr& expr, const Database& db,
                                    const ExecOptions& options) {
  obs::Tracer* tracer =
      options.tracer != nullptr && options.tracer->enabled() ? options.tracer
                                                             : nullptr;
  return Compile(expr, db, tracer);
}

Result<Bag> RunVolcanoPipeline(const Expr& expr, const Database& db,
                               const ExecOptions& options) {
  if (options.preflight) {
    BAGALG_RETURN_IF_ERROR(options.preflight(expr, db));
  }
  BAGALG_ASSIGN_OR_RETURN(OperatorPtr root,
                          CompilePipeline(expr, db, options));
  obs::Span span;
  if (options.tracer != nullptr) {
    span = options.tracer->StartSpan("exec.pipeline", "exec");
  }
  Result<Bag> out = [&] {
    GovernorScope scope(options.governor);
    return Collect(root.get());
  }();
  if (options.governor != nullptr) obs::MirrorGovernorStats();
  if (span.active() && out.ok()) {
    span.AddAttr("rows", uint64_t{out.value().DistinctCount()});
  }
  return out;
}

}  // namespace bagalg::exec
