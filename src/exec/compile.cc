#include "src/exec/compile.h"

namespace bagalg::exec {

namespace {

/// OK iff the lambda body is object-level (the pipeline fragment).
Status CheckLambdaBody(const Expr& body) {
  const ExprNode& n = body.node();
  switch (n.kind) {
    case ExprKind::kVar:
      if (n.index != 0) {
        return Status::Unsupported("nested binder in pipeline lambda");
      }
      return Status::Ok();
    case ExprKind::kConst:
      return Status::Ok();
    case ExprKind::kTupling:
    case ExprKind::kAttrProj: {
      for (const Expr& c : n.children) {
        BAGALG_RETURN_IF_ERROR(CheckLambdaBody(c));
      }
      return Status::Ok();
    }
    default:
      return Status::Unsupported(
          std::string("operator ") + ExprKindName(n.kind) +
          " in a lambda body is outside the pipeline fragment");
  }
}

Result<OperatorPtr> Compile(const Expr& expr, const Database& db) {
  const ExprNode& n = expr.node();
  switch (n.kind) {
    case ExprKind::kInput: {
      BAGALG_ASSIGN_OR_RETURN(Bag bag, db.Get(n.name));
      return MakeScan(std::move(bag));
    }
    case ExprKind::kConst: {
      if (!n.literal->IsBag()) {
        return Status::Unsupported("non-bag constant at pipeline root");
      }
      return MakeScan(n.literal->bag());
    }
    case ExprKind::kAdditiveUnion: {
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr l, Compile(n.children[0], db));
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr r, Compile(n.children[1], db));
      return MakeUnionAll(std::move(l), std::move(r));
    }
    case ExprKind::kSubtract:
    case ExprKind::kMaxUnion:
    case ExprKind::kIntersect: {
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr l, Compile(n.children[0], db));
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr r, Compile(n.children[1], db));
      MergeKind kind = n.kind == ExprKind::kSubtract ? MergeKind::kMonus
                       : n.kind == ExprKind::kMaxUnion
                           ? MergeKind::kMaxUnion
                           : MergeKind::kIntersect;
      return MakeMerge(kind, std::move(l), std::move(r));
    }
    case ExprKind::kProduct: {
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr l, Compile(n.children[0], db));
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr r, Compile(n.children[1], db));
      return MakeNestedLoopProduct(std::move(l), std::move(r));
    }
    case ExprKind::kMap: {
      BAGALG_RETURN_IF_ERROR(CheckLambdaBody(n.children[0]));
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr child, Compile(n.children[1], db));
      return MakeMapProject(std::move(child), n.children[0]);
    }
    case ExprKind::kSelect: {
      BAGALG_RETURN_IF_ERROR(CheckLambdaBody(n.children[0]));
      BAGALG_RETURN_IF_ERROR(CheckLambdaBody(n.children[1]));
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr child, Compile(n.children[2], db));
      return MakeSelect(std::move(child), n.children[0], n.children[1]);
    }
    case ExprKind::kDupElim: {
      BAGALG_ASSIGN_OR_RETURN(OperatorPtr child, Compile(n.children[0], db));
      return MakeDupElim(std::move(child));
    }
    default:
      return Status::Unsupported(
          std::string("operator ") + ExprKindName(n.kind) +
          " is outside the BALG^1 pipeline fragment");
  }
}

}  // namespace

Result<OperatorPtr> CompilePipeline(const Expr& expr, const Database& db) {
  return Compile(expr, db);
}

Result<Bag> RunPipeline(const Expr& expr, const Database& db) {
  BAGALG_ASSIGN_OR_RETURN(OperatorPtr root, CompilePipeline(expr, db));
  return Collect(root.get());
}

}  // namespace bagalg::exec
