#ifndef BAGALG_EXEC_COMPILE_H_
#define BAGALG_EXEC_COMPILE_H_

/// \file compile.h
/// Compiles BALG¹ expressions into physical operator pipelines.
///
/// The supported fragment is exactly the paper's tractable one (§4): no
/// powerset, no bag-destroy, no fixpoints, no nested-bag construction, and
/// lambda bodies restricted to object level (τ / α / const / the binder).
/// Everything else returns Unsupported — callers fall back to the
/// tree-walking evaluator.

#include <functional>

#include "src/algebra/database.h"
#include "src/algebra/expr.h"
#include "src/exec/operators.h"
#include "src/util/governor.h"
#include "src/util/result.h"

namespace bagalg::exec {

/// Execution knobs. Default-constructed options run uninstrumented.
struct ExecOptions {
  /// When non-null and enabled, every physical operator is wrapped with a
  /// tracing decorator (see WrapWithTracing) and RunPipeline adds a root
  /// "exec.pipeline" span.
  obs::Tracer* tracer = nullptr;
  /// Admission hook run by RunPipeline before compiling: a non-OK return
  /// (typically kBudgetExceeded from analysis::MakeBudgetPreflight) refuses
  /// the query without executing anything.
  std::function<Status(const Expr&, const Database&)> preflight;
  /// Per-query ResourceGovernor (deadline / memory cap / cancellation).
  /// RunPipeline installs it as the ambient governor for the run, so the
  /// operators' per-row checkpoints and the kernels below enforce it.
  /// Borrowed; nullptr (the default) runs ungoverned.
  ResourceGovernor* governor = nullptr;
};

/// Builds the physical pipeline for `expr` against `db`. Input bags are
/// bound (copied by shared reference) at compile time.
Result<OperatorPtr> CompilePipeline(const Expr& expr, const Database& db,
                                    const ExecOptions& options = {});

/// Convenience: compile + run to a canonical bag.
Result<Bag> RunPipeline(const Expr& expr, const Database& db,
                        const ExecOptions& options = {});

}  // namespace bagalg::exec

#endif  // BAGALG_EXEC_COMPILE_H_
