#ifndef BAGALG_EXEC_COMPILE_H_
#define BAGALG_EXEC_COMPILE_H_

/// \file compile.h
/// Compiles BALG¹ expressions into physical operator pipelines.
///
/// The supported fragment is exactly the paper's tractable one (§4): no
/// powerset, no bag-destroy, no fixpoints, no nested-bag construction, and
/// lambda bodies restricted to object level (τ / α / const / the binder).
/// Everything else returns Unsupported — callers fall back to the
/// tree-walking evaluator.
///
/// The fused IR engine (src/ir) lowers the same fragment; its plans are
/// additionally checked by the IR verifier after every optimization pass
/// (src/ir/verify.h, on by default in Debug and under BAGALG_IR_VERIFY=1),
/// so engine dispatch (Engine::kAuto below) only ever runs verified IR
/// plans or this module's Volcano pipeline.

#include <functional>

#include "src/algebra/database.h"
#include "src/algebra/expr.h"
#include "src/exec/operators.h"
#include "src/util/governor.h"
#include "src/util/result.h"

namespace bagalg::exec {

/// Which execution engine RunPipeline uses.
enum class Engine {
  /// Honor BAGALG_EXEC_ENGINE ("ir", or "interp"/"volcano"); when unset,
  /// prefer the fused IR engine and fall back to Volcano for plans the IR
  /// cannot lower.
  kAuto,
  /// The tuple-at-a-time Volcano pipeline (this module).
  kVolcano,
  /// The fused batched IR engine (src/ir). Strict: plans outside the IR
  /// fragment fail with kUnsupported instead of falling back.
  kIr,
};

/// "auto" / "volcano" / "ir".
const char* EngineName(Engine engine);

/// Reads BAGALG_EXEC_ENGINE: "ir" selects the IR engine (with Volcano
/// fallback for unlowerable plans), "interp" / "volcano" the Volcano
/// pipeline. kAuto when unset or unrecognized.
Engine EngineFromEnv();

/// What RunPipeline actually did, for journaling and tests.
struct ExecReport {
  Engine engine_used = Engine::kVolcano;
  /// True when the IR engine was preferred but the plan failed to lower
  /// and the Volcano pipeline ran instead.
  bool fell_back = false;
};

/// Execution knobs. Default-constructed options run uninstrumented.
struct ExecOptions {
  /// When non-null and enabled, every physical operator is wrapped with a
  /// tracing decorator (see WrapWithTracing) and RunPipeline adds a root
  /// "exec.pipeline" span.
  obs::Tracer* tracer = nullptr;
  /// Admission hook run by RunPipeline before compiling: a non-OK return
  /// (typically kBudgetExceeded from analysis::MakeBudgetPreflight) refuses
  /// the query without executing anything.
  std::function<Status(const Expr&, const Database&)> preflight;
  /// Per-query ResourceGovernor (deadline / memory cap / cancellation).
  /// RunPipeline installs it as the ambient governor for the run, so the
  /// operators' per-row checkpoints and the kernels below enforce it.
  /// Borrowed; nullptr (the default) runs ungoverned.
  ResourceGovernor* governor = nullptr;
  /// Engine selection (see Engine).
  Engine engine = Engine::kAuto;
  /// When non-null, receives which engine ran (and whether the IR engine
  /// fell back). Borrowed.
  ExecReport* report = nullptr;
};

/// Builds the physical pipeline for `expr` against `db`. Input bags are
/// bound (copied by shared reference) at compile time.
Result<OperatorPtr> CompilePipeline(const Expr& expr, const Database& db,
                                    const ExecOptions& options = {});

/// Convenience: run to a canonical bag on the engine selected by
/// `options.engine`. Defined in src/ir/run.cc (libbagalg_ir) — engine
/// dispatch must reach both this module and the IR engine, and the IR
/// library already links back to bagalg_exec for the Volcano bridge.
/// Callers of RunPipeline link bagalg_ir.
Result<Bag> RunPipeline(const Expr& expr, const Database& db,
                        const ExecOptions& options = {});

/// Compile + run on the Volcano pipeline only, ignoring `options.engine`.
/// The kVolcano leg of RunPipeline, and the pinned engine for benchmarks
/// that measure the tuple-at-a-time baseline.
Result<Bag> RunVolcanoPipeline(const Expr& expr, const Database& db,
                               const ExecOptions& options = {});

}  // namespace bagalg::exec

#endif  // BAGALG_EXEC_COMPILE_H_
