#include "src/exec/operators.h"

#include "src/core/bag_ops.h"
#include "src/obs/metrics.h"
#include "src/util/governor.h"

namespace bagalg::exec {

Result<Bag> Collect(Operator* root) {
  BAGALG_RETURN_IF_ERROR(root->Open());
  Bag::Builder builder;
  CheckpointTicker ticker(sizeof(BagEntry));
  while (true) {
    // The drain loop runs once per produced row, so this is the pipeline's
    // main checkpoint; operators with internal loops that can spin without
    // producing (select filters, inner-side materialization) carry their
    // own tickers. On a trip, Close() still runs: Volcano teardown is the
    // same for error and success.
    if (ticker.Due()) {
      if (Status s = ticker.Flush(); !s.ok()) {
        root->Close();
        return s;
      }
    }
    auto row = root->Next();
    if (!row.ok()) {
      root->Close();
      return row.status();
    }
    if (!row.value().has_value()) break;
    builder.Add(std::move(row.value()->value), std::move(row.value()->count));
  }
  root->Close();
  return std::move(builder).Build();
}

Result<Value> EvalRowLambda(const Expr& body, const Value& row) {
  const ExprNode& n = body.node();
  switch (n.kind) {
    case ExprKind::kVar:
      if (n.index != 0) {
        return Status::Unsupported(
            "pipeline lambdas support a single binder level");
      }
      return row;
    case ExprKind::kConst:
      return *n.literal;
    case ExprKind::kTupling: {
      std::vector<Value> fields;
      fields.reserve(n.children.size());
      for (const Expr& c : n.children) {
        BAGALG_ASSIGN_OR_RETURN(Value v, EvalRowLambda(c, row));
        fields.push_back(std::move(v));
      }
      return Value::Tuple(std::move(fields));
    }
    case ExprKind::kAttrProj: {
      BAGALG_ASSIGN_OR_RETURN(Value v, EvalRowLambda(n.children[0], row));
      if (!v.IsTuple() || n.index < 1 || n.index > v.fields().size()) {
        return Status::InvalidArgument(
            "bad attribute projection in pipeline lambda");
      }
      return v.fields()[n.index - 1];
    }
    default:
      return Status::Unsupported(
          std::string("operator ") + ExprKindName(n.kind) +
          " in a lambda body is outside the pipeline fragment");
  }
}

namespace {

class ScanOp : public Operator {
 public:
  explicit ScanOp(Bag bag) : bag_(std::move(bag)) {}

  Status Open() override {
    pos_ = 0;
    return Status::Ok();
  }

  Result<std::optional<Row>> Next() override {
    if (pos_ >= bag_.entries().size()) return std::optional<Row>();
    const BagEntry& e = bag_.entries()[pos_++];
    return std::optional<Row>(Row{e.value, e.count});
  }

  void Close() override {}
  std::string Name() const override { return "scan"; }

 private:
  Bag bag_;
  size_t pos_ = 0;
};

class SelectOp : public Operator {
 public:
  SelectOp(OperatorPtr child, Expr lhs, Expr rhs)
      : child_(std::move(child)), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Open() override {
    // Bind the ticker at Open, not construction: operators are built before
    // RunPipeline installs the governor scope.
    ticker_ = CheckpointTicker();
    return child_->Open();
  }

  Result<std::optional<Row>> Next() override {
    // This loop can discard arbitrarily many rows before producing one, so
    // the Collect-side per-row checkpoint alone would never fire on a
    // selective filter over a huge child.
    while (true) {
      if (ticker_.Due()) {
        BAGALG_RETURN_IF_ERROR(ticker_.Flush());
      }
      BAGALG_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
      // A fresh empty optional, not `row` itself: returning the disengaged
      // object trips GCC 12's -Wmaybe-uninitialized through the inlined
      // payload copy under -fsanitize=address.
      if (!row.has_value()) return std::optional<Row>();
      BAGALG_ASSIGN_OR_RETURN(Value l, EvalRowLambda(lhs_, row->value));
      BAGALG_ASSIGN_OR_RETURN(Value r, EvalRowLambda(rhs_, row->value));
      if (l == r) return row;
    }
  }

  void Close() override { child_->Close(); }
  std::string Name() const override { return "select"; }

 private:
  OperatorPtr child_;
  Expr lhs_;
  Expr rhs_;
  CheckpointTicker ticker_;
};

class MapProjectOp : public Operator {
 public:
  MapProjectOp(OperatorPtr child, Expr body)
      : child_(std::move(child)), body_(std::move(body)) {}

  Status Open() override { return child_->Open(); }

  Result<std::optional<Row>> Next() override {
    BAGALG_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
    if (!row.has_value()) return std::optional<Row>();
    BAGALG_ASSIGN_OR_RETURN(Value image, EvalRowLambda(body_, row->value));
    return std::optional<Row>(Row{std::move(image), std::move(row->count)});
  }

  void Close() override { child_->Close(); }
  std::string Name() const override { return "map"; }

 private:
  OperatorPtr child_;
  Expr body_;
};

class UnionAllOp : public Operator {
 public:
  UnionAllOp(OperatorPtr left, OperatorPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Status Open() override {
    on_left_ = true;
    BAGALG_RETURN_IF_ERROR(left_->Open());
    return right_->Open();
  }

  Result<std::optional<Row>> Next() override {
    if (on_left_) {
      BAGALG_ASSIGN_OR_RETURN(std::optional<Row> row, left_->Next());
      if (row.has_value()) return row;
      on_left_ = false;
    }
    return right_->Next();
  }

  void Close() override {
    left_->Close();
    right_->Close();
  }
  std::string Name() const override { return "union-all"; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  bool on_left_ = true;
};

class NestedLoopProductOp : public Operator {
 public:
  NestedLoopProductOp(OperatorPtr left, OperatorPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Status Open() override {
    BAGALG_RETURN_IF_ERROR(right_->Open());
    // Materialize the inner side once.
    inner_.clear();
    CheckpointTicker ticker(sizeof(Row));
    while (true) {
      if (ticker.Due()) {
        if (Status s = ticker.Flush(); !s.ok()) {
          right_->Close();
          return s;
        }
      }
      auto row = right_->Next();
      if (!row.ok()) {
        right_->Close();
        return row.status();
      }
      if (!row.value().has_value()) break;
      if (!row.value()->value.IsTuple()) {
        right_->Close();
        return Status::InvalidArgument("product requires tuple rows");
      }
      inner_.push_back(std::move(*row.value()));
    }
    right_->Close();
    inner_pos_ = inner_.size();  // force a left fetch first
    return left_->Open();
  }

  Result<std::optional<Row>> Next() override {
    while (true) {
      if (inner_pos_ < inner_.size()) {
        const Row& r = inner_[inner_pos_++];
        std::vector<Value> fields = current_.value.fields();
        const auto& rf = r.value.fields();
        fields.insert(fields.end(), rf.begin(), rf.end());
        return std::optional<Row>(
            Row{Value::Tuple(std::move(fields)), current_.count * r.count});
      }
      BAGALG_ASSIGN_OR_RETURN(std::optional<Row> row, left_->Next());
      if (!row.has_value()) return row;
      if (!row->value.IsTuple()) {
        return Status::InvalidArgument("product requires tuple rows");
      }
      current_ = std::move(*row);
      inner_pos_ = 0;
    }
  }

  void Close() override { left_->Close(); }
  std::string Name() const override { return "nested-loop-product"; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<Row> inner_;
  size_t inner_pos_ = 0;
  Row current_;
};

/// Shared base for the materializing binary merges and ε.
class MaterializingOp : public Operator {
 public:
  Status Open() override {
    output_.clear();
    pos_ = 0;
    BAGALG_ASSIGN_OR_RETURN(Bag bag, Materialize());
    CheckpointTicker ticker(sizeof(Row));
    output_.reserve(bag.DistinctCount());
    for (const BagEntry& e : bag.entries()) {
      if (ticker.Due()) {
        BAGALG_RETURN_IF_ERROR(ticker.Flush());
      }
      output_.push_back(Row{e.value, e.count});
    }
    return Status::Ok();
  }

  Result<std::optional<Row>> Next() override {
    if (pos_ >= output_.size()) return std::optional<Row>();
    return std::optional<Row>(output_[pos_++]);
  }

  void Close() override { output_.clear(); }

 protected:
  virtual Result<Bag> Materialize() = 0;

  static Result<Bag> Drain(Operator* child) { return Collect(child); }

 private:
  std::vector<Row> output_;
  size_t pos_ = 0;
};

class MergeOp : public MaterializingOp {
 public:
  MergeOp(MergeKind kind, OperatorPtr left, OperatorPtr right)
      : kind_(kind), left_(std::move(left)), right_(std::move(right)) {}

  std::string Name() const override {
    switch (kind_) {
      case MergeKind::kMonus:
        return "monus";
      case MergeKind::kMaxUnion:
        return "max-union";
      case MergeKind::kIntersect:
        return "intersect";
    }
    return "merge";
  }

 protected:
  Result<Bag> Materialize() override {
    BAGALG_ASSIGN_OR_RETURN(Bag l, Drain(left_.get()));
    BAGALG_ASSIGN_OR_RETURN(Bag r, Drain(right_.get()));
    switch (kind_) {
      case MergeKind::kMonus:
        return Subtract(l, r);
      case MergeKind::kMaxUnion:
        return MaxUnion(l, r);
      case MergeKind::kIntersect:
        return Intersect(l, r);
    }
    return Status::Internal("unhandled merge kind");
  }

 private:
  MergeKind kind_;
  OperatorPtr left_;
  OperatorPtr right_;
};

class TracingOp : public Operator {
 public:
  TracingOp(OperatorPtr inner, obs::Tracer* tracer)
      : inner_(std::move(inner)), tracer_(tracer) {}

  Status Open() override {
    span_.End();  // re-Open recycles the operator; close out the old cycle
    span_ = tracer_->StartSpan("exec." + inner_->Name(), "exec");
    rows_ = 0;
    next_calls_ = 0;
    next_ns_ = 0;
    close_ns_ = 0;
    uint64_t t0 = obs::MonotonicNowNs();
    Status s = inner_->Open();
    open_ns_ = obs::MonotonicNowNs() - t0;
    if (!s.ok()) Finish("open-error");
    return s;
  }

  Result<std::optional<Row>> Next() override {
    uint64_t t0 = obs::MonotonicNowNs();
    Result<std::optional<Row>> row = inner_->Next();
    next_ns_ += obs::MonotonicNowNs() - t0;
    ++next_calls_;
    if (row.ok() && row.value().has_value()) ++rows_;
    if (!row.ok()) Finish("next-error");
    return row;
  }

  void Close() override {
    uint64_t t0 = obs::MonotonicNowNs();
    inner_->Close();
    close_ns_ = obs::MonotonicNowNs() - t0;
    Finish(nullptr);
  }

  std::string Name() const override { return inner_->Name(); }

 private:
  /// Ends the span with the cycle's statistics; safe to call repeatedly.
  void Finish(const char* error) {
    if (!span_.active()) return;
    span_.AddAttr("rows", rows_);
    span_.AddAttr("next_calls", next_calls_);
    span_.AddAttr("open_us", static_cast<double>(open_ns_) / 1e3);
    span_.AddAttr("next_us", static_cast<double>(next_ns_) / 1e3);
    span_.AddAttr("close_us", static_cast<double>(close_ns_) / 1e3);
    if (error != nullptr) span_.AddAttr("error", error);
    span_.End();
    obs::GlobalMetrics().GetCounter("exec.rows")->Increment(rows_);
    obs::GlobalMetrics().GetCounter("exec.next_calls")->Increment(next_calls_);
  }

  OperatorPtr inner_;
  obs::Tracer* tracer_;
  obs::Span span_;
  uint64_t rows_ = 0;
  uint64_t next_calls_ = 0;
  uint64_t open_ns_ = 0;
  uint64_t next_ns_ = 0;
  uint64_t close_ns_ = 0;
};

class DupElimOp : public MaterializingOp {
 public:
  explicit DupElimOp(OperatorPtr child) : child_(std::move(child)) {}
  std::string Name() const override { return "dup-elim"; }

 protected:
  Result<Bag> Materialize() override {
    BAGALG_ASSIGN_OR_RETURN(Bag b, Drain(child_.get()));
    return DupElim(b);
  }

 private:
  OperatorPtr child_;
};

}  // namespace

OperatorPtr MakeScan(Bag bag) { return std::make_unique<ScanOp>(std::move(bag)); }

OperatorPtr MakeSelect(OperatorPtr child, Expr lhs, Expr rhs) {
  return std::make_unique<SelectOp>(std::move(child), std::move(lhs),
                                    std::move(rhs));
}

OperatorPtr MakeMapProject(OperatorPtr child, Expr body) {
  return std::make_unique<MapProjectOp>(std::move(child), std::move(body));
}

OperatorPtr MakeUnionAll(OperatorPtr left, OperatorPtr right) {
  return std::make_unique<UnionAllOp>(std::move(left), std::move(right));
}

OperatorPtr MakeNestedLoopProduct(OperatorPtr left, OperatorPtr right) {
  return std::make_unique<NestedLoopProductOp>(std::move(left),
                                               std::move(right));
}

OperatorPtr MakeMerge(MergeKind kind, OperatorPtr left, OperatorPtr right) {
  return std::make_unique<MergeOp>(kind, std::move(left), std::move(right));
}

OperatorPtr MakeDupElim(OperatorPtr child) {
  return std::make_unique<DupElimOp>(std::move(child));
}

OperatorPtr WrapWithTracing(OperatorPtr op, obs::Tracer* tracer) {
  if (tracer == nullptr || !tracer->enabled()) return op;
  return std::make_unique<TracingOp>(std::move(op), tracer);
}

}  // namespace bagalg::exec
