#ifndef BAGALG_EXEC_OPERATOR_H_
#define BAGALG_EXEC_OPERATOR_H_

/// \file operator.h
/// A Volcano-style (open/next/close) execution engine for the BALG¹
/// fragment.
///
/// Theorem 4.4 is the paper's practical headline: the unnested fragment —
/// the one SQL engines actually evaluate — is LOGSPACE. This module
/// executes that fragment the way an engine would: operators pull
/// (value, multiplicity) rows from their children; scans, selections,
/// projections and products stream; the multiplicity-merging operators
/// (−, ∪, ∩, ε) are pipeline breakers that materialize, exactly as
/// DISTINCT/EXCEPT/INTERSECT do in practice. Results agree bag-for-bag
/// with the tree-walking evaluator (fuzz-tested), and bench_exec measures
/// the streaming payoff.

#include <memory>
#include <optional>
#include <string>

#include "src/core/value.h"
#include "src/util/result.h"

namespace bagalg::exec {

/// One streamed row: a value with a positive multiplicity. Rows for the
/// same value may appear multiple times in a stream; consumers that need
/// canonical counts merge them (Bag::Builder does).
struct Row {
  Value value;
  Mult count;
};

/// The pull-based operator interface.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (and its children) for iteration.
  virtual Status Open() = 0;

  /// Produces the next row, or nullopt at end of stream.
  virtual Result<std::optional<Row>> Next() = 0;

  /// Releases per-iteration state. Open may be called again afterwards.
  virtual void Close() = 0;

  /// Operator name for EXPLAIN-style output ("scan", "select", ...).
  virtual std::string Name() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains a pipeline into a canonical bag.
Result<Bag> Collect(Operator* root);

}  // namespace bagalg::exec

#endif  // BAGALG_EXEC_OPERATOR_H_
