#include "src/core/type.h"

#include <cassert>

#include "src/util/strings.h"

namespace bagalg {

struct Type::Rep {
  Kind kind;
  std::vector<Type> children;  // tuple fields, or single bag element
  int bag_nesting = 0;
  size_t hash = 0;
};

namespace {

size_t CombineHash(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

const std::shared_ptr<const Type::Rep>& AtomRep() {
  static auto rep = [] {
    auto r = std::make_shared<Type::Rep>();
    r->kind = Type::Kind::kAtom;
    r->hash = 0x41u;
    return std::shared_ptr<const Type::Rep>(std::move(r));
  }();
  return rep;
}

const std::shared_ptr<const Type::Rep>& BottomRep() {
  static auto rep = [] {
    auto r = std::make_shared<Type::Rep>();
    r->kind = Type::Kind::kBottom;
    r->hash = 0x5fu;
    return std::shared_ptr<const Type::Rep>(std::move(r));
  }();
  return rep;
}

}  // namespace

Type::Type() : rep_(BottomRep()) {}

Type Type::Atom() { return Type(AtomRep()); }

Type Type::Bottom() { return Type(BottomRep()); }

Type Type::Tuple(std::vector<Type> fields) {
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kTuple;
  size_t h = 0x54u;
  int nesting = 0;
  for (const Type& f : fields) {
    h = CombineHash(h, f.Hash());
    nesting = std::max(nesting, f.BagNesting());
  }
  rep->children = std::move(fields);
  rep->bag_nesting = nesting;
  rep->hash = h;
  return Type(std::move(rep));
}

Type Type::Bag(Type element) {
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kBag;
  rep->bag_nesting = element.BagNesting() + 1;
  rep->hash = CombineHash(0x42u, element.Hash());
  rep->children.push_back(std::move(element));
  return Type(std::move(rep));
}

Type::Kind Type::kind() const { return rep_->kind; }

const std::vector<Type>& Type::fields() const {
  assert(IsTuple());
  return rep_->children;
}

const Type& Type::element() const {
  assert(IsBag());
  return rep_->children[0];
}

int Type::BagNesting() const { return rep_->bag_nesting; }

bool Type::operator==(const Type& other) const {
  if (rep_ == other.rep_) return true;
  if (rep_->kind != other.rep_->kind) return false;
  if (rep_->hash != other.rep_->hash) return false;
  if (rep_->children.size() != other.rep_->children.size()) return false;
  for (size_t i = 0; i < rep_->children.size(); ++i) {
    if (rep_->children[i] != other.rep_->children[i]) return false;
  }
  return true;
}

size_t Type::Hash() const { return rep_->hash; }

bool Type::Accepts(const Type& other) const {
  if (other.IsBottom()) return true;
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case Kind::kAtom:
    case Kind::kBottom:
      return true;
    case Kind::kBag:
      return element().Accepts(other.element());
    case Kind::kTuple: {
      if (fields().size() != other.fields().size()) return false;
      for (size_t i = 0; i < fields().size(); ++i) {
        if (!fields()[i].Accepts(other.fields()[i])) return false;
      }
      return true;
    }
  }
  return false;
}

Result<Type> Type::Join(const Type& a, const Type& b) {
  if (a.IsBottom()) return b;
  if (b.IsBottom()) return a;
  if (a.kind() != b.kind()) {
    return Status::TypeError("incompatible types " + a.ToString() + " and " +
                             b.ToString());
  }
  switch (a.kind()) {
    case Kind::kAtom:
      return Type::Atom();
    case Kind::kBag: {
      BAGALG_ASSIGN_OR_RETURN(Type elem, Join(a.element(), b.element()));
      return Type::Bag(std::move(elem));
    }
    case Kind::kTuple: {
      if (a.fields().size() != b.fields().size()) {
        return Status::TypeError("tuple arity mismatch: " + a.ToString() +
                                 " vs " + b.ToString());
      }
      std::vector<Type> fields;
      fields.reserve(a.fields().size());
      for (size_t i = 0; i < a.fields().size(); ++i) {
        BAGALG_ASSIGN_OR_RETURN(Type f, Join(a.fields()[i], b.fields()[i]));
        fields.push_back(std::move(f));
      }
      return Type::Tuple(std::move(fields));
    }
    case Kind::kBottom:
      break;  // handled above
  }
  return Status::Internal("unreachable Type::Join case");
}

std::string Type::ToString() const {
  switch (kind()) {
    case Kind::kAtom:
      return "U";
    case Kind::kBottom:
      return "_";
    case Kind::kBag:
      return "{{" + element().ToString() + "}}";
    case Kind::kTuple: {
      std::string out = "[";
      for (size_t i = 0; i < fields().size(); ++i) {
        if (i > 0) out += ", ";
        out += fields()[i].ToString();
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Type& type) {
  return os << type.ToString();
}

}  // namespace bagalg
