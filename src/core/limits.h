#ifndef BAGALG_CORE_LIMITS_H_
#define BAGALG_CORE_LIMITS_H_

/// \file limits.h
/// Resource budgets for bag operations and query evaluation.
///
/// The algebra contains operations with exponential and hyperexponential
/// output (powerset, powerbag, iterated bag-destroy — paper Prop 3.2 and
/// Thm 5.5). A Limits budget turns would-be memory exhaustion into a clean
/// StatusCode::kResourceExhausted, which the complexity benchmarks also use
/// to probe where each fragment's blow-up frontier lies.

#include <cstdint>

namespace bagalg {

/// Budgets enforced by bag operations and the evaluator. A value of 0 means
/// "unlimited" for that dimension.
struct Limits {
  /// Maximum number of distinct elements in any produced bag.
  uint64_t max_distinct = 1u << 22;
  /// Maximum number of distinct subbags a powerset/powerbag may enumerate.
  uint64_t max_powerset_results = 1u << 22;
  /// Maximum bit-length of any multiplicity produced.
  uint64_t max_mult_bits = 1u << 22;
  /// Maximum number of operator applications in one evaluation (0 = off).
  uint64_t max_eval_steps = 0;
  /// Maximum number of fixpoint iterations (IFP); 0 = unlimited.
  uint64_t max_fixpoint_iterations = 1u << 20;

  /// A permissive default (the values above).
  static Limits Default() { return Limits{}; }

  /// Everything unlimited; use only in tests on known-small inputs.
  static Limits Unlimited() { return Limits{0, 0, 0, 0, 0}; }

  /// A tight budget for failure-injection tests.
  static Limits Tiny() { return Limits{64, 64, 512, 10000, 64}; }
};

}  // namespace bagalg

#endif  // BAGALG_CORE_LIMITS_H_
