#include "src/core/atom.h"

namespace bagalg {

AtomId AtomTable::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  AtomId id = static_cast<AtomId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<AtomId> AtomTable::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::string AtomTable::NameOf(AtomId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < names_.size()) return names_[id];
  return "#" + std::to_string(id);
}

size_t AtomTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

AtomTable& GlobalAtomTable() {
  static AtomTable* table = new AtomTable();
  return *table;
}

AtomId GlobalAtom(std::string_view name) {
  return GlobalAtomTable().Intern(name);
}

}  // namespace bagalg
