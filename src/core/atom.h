#ifndef BAGALG_CORE_ATOM_H_
#define BAGALG_CORE_ATOM_H_

/// \file atom.h
/// Atomic constants of the paper's type U.
///
/// The domain of U is an infinite set of uninterpreted constants (paper §2).
/// bagalg represents a constant as an opaque 32-bit AtomId; the AtomTable
/// maps ids to printable names for I/O. Queries must be generic (insensitive
/// to isomorphisms of the database, §2), which the engine guarantees
/// structurally: no algebra operation ever inspects anything about an atom
/// other than its identity — names exist only at the I/O boundary.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bagalg {

/// Identity of an atomic constant.
using AtomId = uint32_t;

/// Bidirectional mapping between atom ids and their printable names.
///
/// Interning is append-only; ids are dense starting at 0. Thread-safe: the
/// evaluator itself is single-threaded per query, but bagalgd parses and
/// prints statements for many sessions concurrently, and they all intern
/// into the global table. A plain mutex suffices — interning happens at the
/// I/O boundary (parse/print), never inside kernel loops, so the lock is
/// nowhere near a hot path.
class AtomTable {
 public:
  AtomTable() = default;

  /// Returns the id for `name`, interning it on first use.
  AtomId Intern(std::string_view name);

  /// Returns the id for `name` if already interned.
  std::optional<AtomId> Find(std::string_view name) const;

  /// Returns the name of an id; "#<id>" if the id was never interned here
  /// (so printing never fails, even across tables).
  std::string NameOf(AtomId id) const;

  /// Number of interned atoms.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, AtomId> ids_;
};

/// Process-wide default table used by printers when none is supplied.
AtomTable& GlobalAtomTable();

/// Convenience: interns `name` in the global table.
AtomId GlobalAtom(std::string_view name);

}  // namespace bagalg

#endif  // BAGALG_CORE_ATOM_H_
