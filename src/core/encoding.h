#ifndef BAGALG_CORE_ENCODING_H_
#define BAGALG_CORE_ENCODING_H_

/// \file encoding.h
/// Size measures for values and bags.
///
/// The paper's data complexity is defined against the *standard encoding*
/// (§2): duplicates are written out explicitly, so a bag's size is the sum
/// over elements of multiplicity × element size. The engine stores bags in
/// counted form; these functions recover the paper's measure (and the
/// counted measure, for the §3 representation-ablation experiment E19)
/// without materializing the explicit encoding.

#include "src/core/value.h"
#include "src/util/bignat.h"

namespace bagalg {

/// Size of the paper's standard encoding of a value: atoms weigh 1; a tuple
/// weighs 1 plus its fields; a bag weighs 1 plus multiplicity-weighted
/// element sizes. BigNat because multiplicities may be astronomical.
BigNat StandardEncodingSize(const Value& value);

/// Standard-encoding size of a bag (as if it were the database).
BigNat StandardEncodingSize(const Bag& bag);

/// Size of the counted representation actually stored: like the standard
/// encoding but each (element, multiplicity) entry costs element size plus
/// the limb count of the multiplicity, independent of its magnitude.
uint64_t CountedEncodingSize(const Value& value);
uint64_t CountedEncodingSize(const Bag& bag);

/// The largest multiplicity appearing anywhere inside the value/bag
/// (including nested bags); 0 for bag-free values. This is the quantity
/// Proposition 3.2 tracks.
BigNat MaxMultiplicity(const Value& value);
BigNat MaxMultiplicity(const Bag& bag);

}  // namespace bagalg

#endif  // BAGALG_CORE_ENCODING_H_
