#include "src/core/encoding.h"

namespace bagalg {

BigNat StandardEncodingSize(const Value& value) {
  switch (value.kind()) {
    case Value::Kind::kAtom:
      return BigNat(1);
    case Value::Kind::kTuple: {
      BigNat total(1);
      for (const Value& f : value.fields()) total += StandardEncodingSize(f);
      return total;
    }
    case Value::Kind::kBag:
      return StandardEncodingSize(value.bag()) + BigNat(1);
  }
  return BigNat();
}

BigNat StandardEncodingSize(const Bag& bag) {
  BigNat total;
  for (const BagEntry& e : bag.entries()) {
    total += e.count * StandardEncodingSize(e.value);
  }
  return total;
}

uint64_t CountedEncodingSize(const Value& value) {
  switch (value.kind()) {
    case Value::Kind::kAtom:
      return 1;
    case Value::Kind::kTuple: {
      uint64_t total = 1;
      for (const Value& f : value.fields()) total += CountedEncodingSize(f);
      return total;
    }
    case Value::Kind::kBag:
      return CountedEncodingSize(value.bag()) + 1;
  }
  return 0;
}

uint64_t CountedEncodingSize(const Bag& bag) {
  uint64_t total = 0;
  for (const BagEntry& e : bag.entries()) {
    total += CountedEncodingSize(e.value);
    total += e.count.LimbCount() == 0 ? 1 : e.count.LimbCount();
  }
  return total;
}

BigNat MaxMultiplicity(const Value& value) {
  switch (value.kind()) {
    case Value::Kind::kAtom:
      return BigNat();
    case Value::Kind::kTuple: {
      BigNat best;
      for (const Value& f : value.fields()) {
        BigNat m = MaxMultiplicity(f);
        if (m > best) best = std::move(m);
      }
      return best;
    }
    case Value::Kind::kBag:
      return MaxMultiplicity(value.bag());
  }
  return BigNat();
}

BigNat MaxMultiplicity(const Bag& bag) {
  BigNat best;
  for (const BagEntry& e : bag.entries()) {
    if (e.count > best) best = e.count;
    BigNat inner = MaxMultiplicity(e.value);
    if (inner > best) best = std::move(inner);
  }
  return best;
}

}  // namespace bagalg
