#ifndef BAGALG_CORE_VALUE_H_
#define BAGALG_CORE_VALUE_H_

/// \file value.h
/// Complex-object values: atoms, tuples, and (nested) bags.
///
/// A value of the paper's data model (§2) is a tree built from atomic
/// constants with tuple and bag constructors. bagalg values are immutable
/// shared trees with precomputed hashes and types, so copying is O(1) and
/// structurally shared — essential for powerset outputs where the 2^n
/// subbags share all their elements.
///
/// Bags are stored in *canonical counted form*: a sorted vector of
/// (value, multiplicity) entries with distinct values and nonzero BigNat
/// multiplicities. An element "n-belongs" to the bag (paper's term) iff its
/// entry carries multiplicity n. The paper's standard encoding — duplicates
/// written out explicitly — is reproduced by the size accounting in
/// encoding.h, not by the storage; the counted/explicit distinction is
/// itself one of the experiments (E19).

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/atom.h"
#include "src/core/type.h"
#include "src/util/bignat.h"
#include "src/util/result.h"

namespace bagalg {

/// Multiplicity of a bag element. Arbitrary precision: Proposition 3.2 shows
/// iterated powerset/bag-destroy chains reach hyperexponential counts.
using Mult = BigNat;

class Bag;

/// An immutable complex-object value (atom, tuple, or bag).
class Value {
 public:
  enum class Kind { kAtom, kTuple, kBag };

  /// Constructs an atom value.
  static Value Atom(AtomId id);
  /// Constructs a tuple value (arity may be 0).
  static Value Tuple(std::vector<Value> fields);
  /// Wraps a bag as a value.
  static Value FromBag(Bag bag);

  /// Default-constructs the empty tuple (so Value is regular).
  Value();

  Kind kind() const;
  bool IsAtom() const { return kind() == Kind::kAtom; }
  bool IsTuple() const { return kind() == Kind::kTuple; }
  bool IsBag() const { return kind() == Kind::kBag; }

  /// Atom identity; requires IsAtom().
  AtomId atom_id() const;
  /// Tuple fields; requires IsTuple().
  const std::vector<Value>& fields() const;
  /// Contained bag; requires IsBag().
  const Bag& bag() const;

  /// The value's type, precomputed at construction. Empty bags carry a
  /// Bottom element type unless built with an explicit one.
  const Type& type() const;

  /// Precomputed structural hash.
  size_t Hash() const;

  /// Total order over all values: atoms (by id) < tuples (lex) < bags (lex
  /// over canonical entries). This order canonicalizes bag storage; it is
  /// *not* the database order relation of §4 (see orderings in derived.h).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Rendering, e.g. "[a, {{b*3, c}}]". Atom names resolved through `table`
  /// (the global table if null).
  std::string ToString(const AtomTable* table = nullptr) const;

  /// Internal shared representation (not part of the supported API).
  struct Rep;

 private:
  explicit Value(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}
  std::shared_ptr<const Rep> rep_;
};

/// One canonical bag entry: a distinct value with its positive multiplicity.
struct BagEntry {
  Value value;
  Mult count;
};

/// An immutable homogeneous bag in canonical counted form.
///
/// Equality and ordering compare entries only; the element type is metadata
/// (two empty bags are equal regardless of their declared element types).
class Bag {
 public:
  /// The empty bag with Bottom element type.
  Bag();
  /// The empty bag with a declared element type.
  explicit Bag(Type element_type);

  /// Accumulates (value, multiplicity) pairs and produces a canonical bag.
  /// Zero-multiplicity additions are ignored. Build fails with TypeError if
  /// the element values are not type-compatible (inhomogeneous bag).
  class Builder {
   public:
    Builder() = default;
    /// Declares the element type up front (useful for empty results).
    explicit Builder(Type element_type) : declared_(std::move(element_type)) {}

    /// Pre-allocates room for `n` further pending additions. Safe to call
    /// once per batch inside a loop: capacity grows geometrically, so
    /// repeated incremental reservations stay amortized O(1) per item
    /// (an exact-fit reserve would recopy everything on every call).
    void Reserve(size_t n) {
      const size_t want = items_.size() + n;
      if (want > items_.capacity()) {
        items_.reserve(std::max(want, items_.capacity() * 2));
      }
    }

    /// Adds `count` occurrences of `value`.
    void Add(Value value, Mult count);
    /// Adds a single occurrence.
    void AddOne(Value value) { Add(std::move(value), Mult(1)); }
    /// Adds every entry of another bag, scaled by `factor`.
    void AddBag(const Bag& bag, const Mult& factor = Mult(1));

    /// Number of (unmerged) pending additions, for limit pre-checks.
    size_t PendingCount() const { return items_.size(); }

    /// Canonicalizes: sorts (in parallel for large pending sets, skipped
    /// entirely when the additions arrived in order — the common case for
    /// kernels that emit canonically), merges duplicates, joins element
    /// types.
    Result<Bag> Build() &&;

   private:
    Type declared_ = Type::Bottom();
    std::vector<BagEntry> items_;
  };

  /// Constructs a bag directly from entries already in canonical form:
  /// strictly sorted by Value order, distinct, positive counts, every value
  /// acceptable by `element_type`. Skips the sort / duplicate-merge / type
  /// join work of Builder; the kernels use it for outputs whose
  /// canonicality is structural (merge walks, products of canonical
  /// operands, subbag materialization). Preconditions are assert-checked in
  /// debug builds only.
  static Bag FromCanonicalEntries(Type element_type,
                                  std::vector<BagEntry> entries);

  /// The joined element type of the bag's members (Bottom if empty and
  /// undeclared).
  const Type& element_type() const;
  /// The bag's own type: {{element_type}}.
  Type type() const { return Type::Bag(element_type()); }

  /// Canonical entries: sorted by value, distinct, positive counts.
  const std::vector<BagEntry>& entries() const;

  /// Number of distinct elements.
  size_t DistinctCount() const { return entries().size(); }
  /// Total number of occurrences (the paper's bag cardinality).
  const Mult& TotalCount() const;
  /// True iff the bag has no occurrences.
  bool empty() const { return entries().empty(); }
  /// True iff every multiplicity is 1 (the bag "is a set").
  bool IsSetLike() const;

  /// Multiplicity of `value` in this bag (zero if absent). Bags with at
  /// least kIndexThreshold distinct elements lazily build a hash index
  /// (once, thread-safely) and answer in O(1) expected probes; smaller
  /// bags binary-search the canonical entry list.
  Mult CountOf(const Value& value) const;
  /// True iff `value` occurs at least once.
  bool Contains(const Value& value) const { return !CountOf(value).IsZero(); }
  /// True iff this is a subbag of `other` (paper's ⊑: every multiplicity
  /// here is ≤ the multiplicity there). Probes `other`'s hash index when
  /// this bag is much smaller; merge-walks otherwise.
  bool SubBagOf(const Bag& other) const;

  /// Distinct-count threshold above which bags build the lazy hash index.
  static constexpr size_t kIndexThreshold = 64;

  /// Precomputed structural hash (entry-based; element type excluded).
  size_t Hash() const;
  /// Lexicographic order over canonical entries.
  int Compare(const Bag& other) const;
  bool operator==(const Bag& other) const;
  bool operator!=(const Bag& other) const { return !(*this == other); }

  /// Rendering, e.g. "{{a, [b, c]*3}}".
  std::string ToString(const AtomTable* table = nullptr) const;

  /// Internal shared representation (not part of the supported API).
  struct Rep;

 private:
  friend class Builder;
  explicit Bag(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);
std::ostream& operator<<(std::ostream& os, const Bag& bag);

// ----- Convenience constructors (used pervasively by tests and examples) ---

/// Atom value by name, interned in `table` (global table if null).
Value MakeAtom(std::string_view name, AtomTable* table = nullptr);

/// Tuple value from an initializer list.
Value MakeTuple(std::initializer_list<Value> fields);

/// Bag from (value, small multiplicity) pairs; dies on type error (test
/// convenience only — library code uses Bag::Builder).
Bag MakeBag(std::initializer_list<std::pair<Value, uint64_t>> items);

/// Bag of values, each with multiplicity 1.
Bag MakeBagOf(std::initializer_list<Value> values);

/// The bag B_n of the paper's proofs: n occurrences of `value` and nothing
/// else.
Bag NCopies(const Mult& n, const Value& value);

}  // namespace bagalg

#endif  // BAGALG_CORE_VALUE_H_
