#include "src/core/iso.h"

#include <cassert>

namespace bagalg {

AtomId Isomorphism::Apply(AtomId id) const {
  auto it = mapping_.find(id);
  return it == mapping_.end() ? id : it->second;
}

Value Isomorphism::Apply(const Value& value) const {
  switch (value.kind()) {
    case Value::Kind::kAtom:
      return Value::Atom(Apply(value.atom_id()));
    case Value::Kind::kTuple: {
      std::vector<Value> fields;
      fields.reserve(value.fields().size());
      for (const Value& f : value.fields()) fields.push_back(Apply(f));
      return Value::Tuple(std::move(fields));
    }
    case Value::Kind::kBag: {
      auto bag = Apply(value.bag());
      assert(bag.ok());  // renaming preserves homogeneity
      return Value::FromBag(std::move(bag).value());
    }
  }
  return value;
}

Result<Bag> Isomorphism::Apply(const Bag& bag) const {
  Bag::Builder builder(bag.element_type());
  for (const BagEntry& e : bag.entries()) {
    builder.Add(Apply(e.value), e.count);
  }
  return std::move(builder).Build();
}

Isomorphism Isomorphism::Inverse() const {
  Isomorphism inv;
  for (const auto& [from, to] : mapping_) {
    assert(inv.mapping_.find(to) == inv.mapping_.end() &&
           "Isomorphism::Inverse on a non-injective mapping");
    inv.Map(to, from);
  }
  return inv;
}

Isomorphism Isomorphism::RandomPermutation(const std::vector<AtomId>& atoms,
                                           Rng& rng) {
  std::vector<AtomId> shuffled = atoms;
  // Fisher-Yates.
  for (size_t i = shuffled.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.Below(i));
    std::swap(shuffled[i - 1], shuffled[j]);
  }
  Isomorphism iso;
  for (size_t i = 0; i < atoms.size(); ++i) {
    iso.Map(atoms[i], shuffled[i]);
  }
  return iso;
}

void CollectAtoms(const Value& value, std::unordered_set<AtomId>* out) {
  switch (value.kind()) {
    case Value::Kind::kAtom:
      out->insert(value.atom_id());
      return;
    case Value::Kind::kTuple:
      for (const Value& f : value.fields()) CollectAtoms(f, out);
      return;
    case Value::Kind::kBag:
      CollectAtoms(value.bag(), out);
      return;
  }
}

void CollectAtoms(const Bag& bag, std::unordered_set<AtomId>* out) {
  for (const BagEntry& e : bag.entries()) {
    CollectAtoms(e.value, out);
  }
}

}  // namespace bagalg
