#include "src/core/bag_ops.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace bagalg {

namespace {

/// Merge-walks two canonical entry lists, combining multiplicities with
/// `combine` (absent elements contribute multiplicity 0) and keeping only
/// positive results.
Result<Bag> MergeCombine(const Bag& a, const Bag& b,
                         Mult (*combine)(const Mult&, const Mult&)) {
  BAGALG_ASSIGN_OR_RETURN(Type elem,
                          Type::Join(a.element_type(), b.element_type()));
  Bag::Builder builder(elem);
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  const Mult zero;
  size_t i = 0, j = 0;
  while (i < ea.size() || j < eb.size()) {
    int c;
    if (i == ea.size()) {
      c = 1;
    } else if (j == eb.size()) {
      c = -1;
    } else {
      c = ea[i].value.Compare(eb[j].value);
    }
    if (c < 0) {
      builder.Add(ea[i].value, combine(ea[i].count, zero));
      ++i;
    } else if (c > 0) {
      builder.Add(eb[j].value, combine(zero, eb[j].count));
      ++j;
    } else {
      builder.Add(ea[i].value, combine(ea[i].count, eb[j].count));
      ++i;
      ++j;
    }
  }
  return std::move(builder).Build();
}

Mult CombineAdd(const Mult& p, const Mult& q) { return p + q; }
Mult CombineMonus(const Mult& p, const Mult& q) { return p.MonusSub(q); }
Mult CombineMax(const Mult& p, const Mult& q) { return Mult::Max(p, q); }
Mult CombineMin(const Mult& p, const Mult& q) { return Mult::Min(p, q); }

/// Binomial coefficient C(n, k) with BigNat n and machine k.
/// Used by the powerbag's occurrence counting.
Mult Binomial(const Mult& n, uint64_t k) {
  // C(n, k) = Π_{i=1..k} (n - k + i) / i, computed with exact division by
  // keeping the running product divisible at every step.
  Mult num(1);
  Mult base = n.MonusSub(Mult(k));
  for (uint64_t i = 1; i <= k; ++i) {
    num = num * (base + Mult(i));
    auto dm = num.DivMod(Mult(i));
    assert(dm.ok() && dm->remainder.IsZero());
    num = std::move(dm->quotient);
  }
  return num;
}

}  // namespace

Status CheckDistinctLimit(uint64_t distinct, const Limits& limits) {
  if (limits.max_distinct != 0 && distinct > limits.max_distinct) {
    return Status::ResourceExhausted(
        "bag would hold " + std::to_string(distinct) +
        " distinct elements (limit " + std::to_string(limits.max_distinct) +
        ")");
  }
  return Status::Ok();
}

Status CheckMultLimit(const Mult& m, const Limits& limits) {
  if (limits.max_mult_bits != 0 && m.BitLength() > limits.max_mult_bits) {
    return Status::ResourceExhausted(
        "multiplicity of " + std::to_string(m.BitLength()) +
        " bits exceeds limit of " + std::to_string(limits.max_mult_bits) +
        " bits");
  }
  return Status::Ok();
}

Result<Bag> AdditiveUnion(const Bag& a, const Bag& b) {
  return MergeCombine(a, b, &CombineAdd);
}

Result<Bag> Subtract(const Bag& a, const Bag& b) {
  return MergeCombine(a, b, &CombineMonus);
}

Result<Bag> MaxUnion(const Bag& a, const Bag& b) {
  return MergeCombine(a, b, &CombineMax);
}

Result<Bag> Intersect(const Bag& a, const Bag& b) {
  return MergeCombine(a, b, &CombineMin);
}

Result<Bag> CartesianProduct(const Bag& a, const Bag& b,
                             const Limits& limits) {
  for (const Bag* operand : {&a, &b}) {
    if (!operand->empty() && !operand->element_type().IsTuple()) {
      return Status::InvalidArgument(
          "Cartesian product requires bags of tuples, got element type " +
          operand->element_type().ToString());
    }
  }
  BAGALG_RETURN_IF_ERROR(CheckDistinctLimit(
      static_cast<uint64_t>(a.DistinctCount()) * b.DistinctCount(), limits));
  Bag::Builder builder;
  for (const BagEntry& ea : a.entries()) {
    for (const BagEntry& eb : b.entries()) {
      std::vector<Value> fields = ea.value.fields();
      const auto& bf = eb.value.fields();
      fields.insert(fields.end(), bf.begin(), bf.end());
      Mult count = ea.count * eb.count;
      BAGALG_RETURN_IF_ERROR(CheckMultLimit(count, limits));
      builder.Add(Value::Tuple(std::move(fields)), std::move(count));
    }
  }
  // Preserve a typed-empty result where possible.
  if (a.empty() || b.empty()) {
    Type elem = Type::Bottom();
    if (a.element_type().IsTuple() && b.element_type().IsTuple()) {
      std::vector<Type> fields = a.element_type().fields();
      const auto& bf = b.element_type().fields();
      fields.insert(fields.end(), bf.begin(), bf.end());
      elem = Type::Tuple(std::move(fields));
    }
    return Bag(std::move(elem));
  }
  return std::move(builder).Build();
}

namespace {

/// Shared subbag enumerator for powerset / powerbag. Enumerates every
/// distinct subbag of `bag`; for each, `emit(sub_entries)` is called with
/// the chosen per-entry multiplicities (parallel to bag.entries(); zero
/// entries allowed in the vector, they are skipped when materializing).
Status ForEachSubbag(
    const Bag& bag, const Limits& limits,
    const std::function<Status(const std::vector<uint64_t>&)>& emit) {
  const auto& entries = bag.entries();
  // Pre-check the number of distinct subbags: Π (m_i + 1).
  if (limits.max_powerset_results != 0) {
    Mult total(1);
    const Mult cap(limits.max_powerset_results);
    for (const BagEntry& e : entries) {
      total = total * (e.count + Mult(1));
      if (total > cap) {
        return Status::ResourceExhausted(
            "powerset would enumerate more than " +
            std::to_string(limits.max_powerset_results) +
            " distinct subbags");
      }
    }
  }
  // All m_i now fit comfortably in uint64 (each m_i + 1 ≤ cap).
  std::vector<uint64_t> maxima(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    auto m = entries[i].count.ToUint64();
    if (!m.ok()) {
      return Status::ResourceExhausted(
          "powerset operand multiplicity exceeds enumerable range");
    }
    maxima[i] = *m;
  }
  std::vector<uint64_t> chosen(entries.size(), 0);
  while (true) {
    BAGALG_RETURN_IF_ERROR(emit(chosen));
    // Odometer increment.
    size_t pos = 0;
    while (pos < chosen.size() && chosen[pos] == maxima[pos]) {
      chosen[pos] = 0;
      ++pos;
    }
    if (pos == chosen.size()) return Status::Ok();
    ++chosen[pos];
  }
}

/// Materializes a subbag from per-entry chosen multiplicities.
Result<Value> MaterializeSubbag(const Bag& bag,
                                const std::vector<uint64_t>& chosen) {
  Bag::Builder builder(bag.element_type());
  const auto& entries = bag.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    if (chosen[i] != 0) builder.Add(entries[i].value, Mult(chosen[i]));
  }
  BAGALG_ASSIGN_OR_RETURN(Bag sub, std::move(builder).Build());
  return Value::FromBag(std::move(sub));
}

}  // namespace

Result<Bag> Powerset(const Bag& bag, const Limits& limits) {
  Bag::Builder builder(bag.type());
  Status st = ForEachSubbag(
      bag, limits, [&](const std::vector<uint64_t>& chosen) -> Status {
        auto sub = MaterializeSubbag(bag, chosen);
        if (!sub.ok()) return sub.status();
        builder.Add(std::move(sub).value(), Mult(1));
        return Status::Ok();
      });
  BAGALG_RETURN_IF_ERROR(st);
  return std::move(builder).Build();
}

Result<Bag> Powerbag(const Bag& bag, const Limits& limits) {
  const auto& entries = bag.entries();
  Bag::Builder builder(bag.type());
  Status st = ForEachSubbag(
      bag, limits, [&](const std::vector<uint64_t>& chosen) -> Status {
        Mult occurrences(1);
        for (size_t i = 0; i < entries.size(); ++i) {
          occurrences = occurrences * Binomial(entries[i].count, chosen[i]);
        }
        Status mult_ok = CheckMultLimit(occurrences, limits);
        if (!mult_ok.ok()) return mult_ok;
        auto sub = MaterializeSubbag(bag, chosen);
        if (!sub.ok()) return sub.status();
        builder.Add(std::move(sub).value(), std::move(occurrences));
        return Status::Ok();
      });
  BAGALG_RETURN_IF_ERROR(st);
  return std::move(builder).Build();
}

Result<Bag> BagDestroy(const Bag& bag, const Limits& limits) {
  if (!bag.empty() && !bag.element_type().IsBag()) {
    return Status::InvalidArgument(
        "bag-destroy requires a bag of bags, got element type " +
        bag.element_type().ToString());
  }
  Type inner_elem = bag.element_type().IsBag()
                        ? bag.element_type().element()
                        : Type::Bottom();
  Bag::Builder builder(inner_elem);
  uint64_t distinct_bound = 0;
  for (const BagEntry& e : bag.entries()) {
    distinct_bound += e.value.bag().DistinctCount();
    BAGALG_RETURN_IF_ERROR(CheckDistinctLimit(distinct_bound, limits));
    for (const BagEntry& inner : e.value.bag().entries()) {
      Mult count = inner.count * e.count;
      BAGALG_RETURN_IF_ERROR(CheckMultLimit(count, limits));
      builder.Add(inner.value, std::move(count));
    }
  }
  return std::move(builder).Build();
}

Result<Bag> DupElim(const Bag& bag) {
  Bag::Builder builder(bag.element_type());
  for (const BagEntry& e : bag.entries()) {
    builder.Add(e.value, Mult(1));
  }
  return std::move(builder).Build();
}

Result<Bag> MapBag(const Bag& bag,
                   const std::function<Result<Value>(const Value&)>& fn,
                   const Type& declared_result_elem) {
  Bag::Builder builder(declared_result_elem);
  for (const BagEntry& e : bag.entries()) {
    BAGALG_ASSIGN_OR_RETURN(Value image, fn(e.value));
    builder.Add(std::move(image), e.count);
  }
  return std::move(builder).Build();
}

Result<Bag> SelectBag(const Bag& bag,
                      const std::function<Result<bool>(const Value&)>& pred) {
  Bag::Builder builder(bag.element_type());
  for (const BagEntry& e : bag.entries()) {
    BAGALG_ASSIGN_OR_RETURN(bool keep, pred(e.value));
    if (keep) builder.Add(e.value, e.count);
  }
  return std::move(builder).Build();
}

Result<Bag> Nest(const Bag& bag, const std::vector<size_t>& nested_attrs) {
  if (!bag.empty() && !bag.element_type().IsTuple()) {
    return Status::InvalidArgument("nest requires a bag of tuples");
  }
  size_t arity =
      bag.element_type().IsTuple() ? bag.element_type().fields().size() : 0;
  std::vector<bool> is_nested(arity, false);
  for (size_t a : nested_attrs) {
    if (a >= arity) {
      return Status::InvalidArgument("nest attribute index out of range");
    }
    is_nested[a] = true;
  }
  // Group by the key (non-nested attributes), accumulating the nested
  // projections with their multiplicities.
  std::map<std::vector<Value>, Bag::Builder> groups;
  for (const BagEntry& e : bag.entries()) {
    const auto& fields = e.value.fields();
    std::vector<Value> key;
    std::vector<Value> nested;
    for (size_t i = 0; i < arity; ++i) {
      (is_nested[i] ? nested : key).push_back(fields[i]);
    }
    groups[std::move(key)].Add(Value::Tuple(std::move(nested)), e.count);
  }
  Bag::Builder out;
  for (auto& [key, group_builder] : groups) {
    BAGALG_ASSIGN_OR_RETURN(Bag group, std::move(group_builder).Build());
    std::vector<Value> fields = key;
    fields.push_back(Value::FromBag(std::move(group)));
    out.Add(Value::Tuple(std::move(fields)), Mult(1));
  }
  return std::move(out).Build();
}

Result<Bag> Unnest(const Bag& bag, size_t attr, const Limits& limits) {
  if (!bag.empty() && !bag.element_type().IsTuple()) {
    return Status::InvalidArgument("unnest requires a bag of tuples");
  }
  Bag::Builder out;
  uint64_t distinct_bound = 0;
  for (const BagEntry& e : bag.entries()) {
    const auto& fields = e.value.fields();
    if (attr >= fields.size()) {
      return Status::InvalidArgument("unnest attribute index out of range");
    }
    if (!fields[attr].IsBag()) {
      return Status::InvalidArgument("unnest attribute is not a bag");
    }
    const Bag& inner = fields[attr].bag();
    distinct_bound += inner.DistinctCount();
    BAGALG_RETURN_IF_ERROR(CheckDistinctLimit(distinct_bound, limits));
    for (const BagEntry& ie : inner.entries()) {
      std::vector<Value> new_fields;
      new_fields.reserve(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) {
        new_fields.push_back(i == attr ? ie.value : fields[i]);
      }
      Mult count = e.count * ie.count;
      BAGALG_RETURN_IF_ERROR(CheckMultLimit(count, limits));
      out.Add(Value::Tuple(std::move(new_fields)), std::move(count));
    }
  }
  return std::move(out).Build();
}

}  // namespace bagalg
