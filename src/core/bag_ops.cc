#include "src/core/bag_ops.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <iterator>
#include <map>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/governor.h"
#include "src/util/parallel.h"

namespace bagalg {

namespace {

// Task granularity for the parallel kernels. Product pairs and subbag
// materializations are much heavier than sort comparisons, so the kernels
// use finer grains than the pool's default sorting grain.
constexpr size_t kPairGrain = 1024;
constexpr size_t kSubbagGrain = 256;

// Binomial rows C(m, 0..m) are precomputed per entry for the powerbag; rows
// for larger m fall back to on-the-fly computation to bound table memory
// (a row for m holds m+1 values of up to ~m bits each).
constexpr uint64_t kBinomialRowMaxM = 4096;

// Rough per-subbag allocation charged to the governor's memory cap during
// powerset/powerbag enumeration: one Value::Rep + one Bag::Rep + the kept
// entry vector. Order-of-magnitude is all the cap needs; exact accounting
// would put a size computation on the innermost loop.
constexpr uint64_t kSubbagBytesEstimate = 160;

/// RAII per-kernel scope: opens a span on the ambient tracer (the query
/// driver's tracer when one is active on this thread, the global tracer
/// otherwise), and on exit mirrors the cumulative pool / BigNat totals into
/// the MetricsRegistry so `\metrics` and the bench exports see them.
class KernelScope {
 public:
  explicit KernelScope(const char* name)
      : span_(obs::StartAmbientSpan(name, "kernel")) {}

  obs::Span& span() { return span_; }

  ~KernelScope() {
    static obs::Counter* const tasks =
        obs::GlobalMetrics().GetCounter("kernel.pool_tasks_spawned");
    static obs::Counter* const parallel =
        obs::GlobalMetrics().GetCounter("kernel.pool_parallel_dispatches");
    static obs::Counter* const serial =
        obs::GlobalMetrics().GetCounter("kernel.pool_serial_dispatches");
    static obs::Counter* const slow =
        obs::GlobalMetrics().GetCounter("kernel.bignat_slow_path_ops");
    // Counters raised to the monotone process totals (see Counter::RaiseTo)
    // so Prometheus exposition types them correctly.
    const ParallelStats stats = ThreadPool::Stats();
    tasks->RaiseTo(stats.tasks_spawned);
    parallel->RaiseTo(stats.parallel_dispatches);
    serial->RaiseTo(stats.serial_dispatches);
    slow->RaiseTo(BigNat::SlowPathOps());
    // Only governed kernels refresh the governor counters: the check keeps
    // the mirror off ungoverned library-call paths.
    if (CurrentGovernor() != nullptr) obs::MirrorGovernorStats();
  }

 private:
  obs::Span span_;
};

obs::Counter* MergeIndexedCounter() {
  static obs::Counter* const c =
      obs::GlobalMetrics().GetCounter("kernel.merges_indexed");
  return c;
}

/// Merge-walks two canonical entry lists, combining multiplicities with
/// `combine` (absent elements contribute multiplicity 0) and keeping only
/// positive results. The walk visits both lists in value order, so the
/// output is canonical by construction and skips Builder's sort entirely.
Result<Bag> MergeCombine(const Bag& a, const Bag& b,
                         Mult (*combine)(const Mult&, const Mult&)) {
  BAGALG_ASSIGN_OR_RETURN(Type elem,
                          Type::Join(a.element_type(), b.element_type()));
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  std::vector<BagEntry> out;
  out.reserve(ea.size() + eb.size());
  const Mult zero;
  CheckpointTicker ticker(sizeof(BagEntry));
  size_t i = 0, j = 0;
  while (i < ea.size() || j < eb.size()) {
    if (ticker.Due()) {
      BAGALG_RETURN_IF_ERROR(ticker.Flush());
    }
    int c;
    if (i == ea.size()) {
      c = 1;
    } else if (j == eb.size()) {
      c = -1;
    } else {
      c = ea[i].value.Compare(eb[j].value);
    }
    if (c < 0) {
      Mult m = combine(ea[i].count, zero);
      if (!m.IsZero()) out.push_back({ea[i].value, std::move(m)});
      ++i;
    } else if (c > 0) {
      Mult m = combine(zero, eb[j].count);
      if (!m.IsZero()) out.push_back({eb[j].value, std::move(m)});
      ++j;
    } else {
      Mult m = combine(ea[i].count, eb[j].count);
      if (!m.IsZero()) out.push_back({ea[i].value, std::move(m)});
      ++i;
      ++j;
    }
  }
  return Bag::FromCanonicalEntries(std::move(elem), std::move(out));
}

Mult CombineAdd(const Mult& p, const Mult& q) { return p + q; }
Mult CombineMonus(const Mult& p, const Mult& q) { return p.MonusSub(q); }
Mult CombineMax(const Mult& p, const Mult& q) { return Mult::Max(p, q); }
Mult CombineMin(const Mult& p, const Mult& q) { return Mult::Min(p, q); }

/// True when iterating `small` and probing `large`'s hash index beats the
/// O(|small| + |large|) merge walk: the large side is big enough to carry
/// an index and the small side is a fraction of it.
bool ProbeBeatsMerge(const Bag& small, const Bag& large) {
  return large.DistinctCount() >= Bag::kIndexThreshold &&
         small.DistinctCount() * 4 <= large.DistinctCount();
}

/// A union-shaped merge (⊎ or ∪) with an empty operand returns the other
/// operand's entries unchanged; when the joined element type also matches,
/// the whole rep is shared. Returns true and sets *result if the identity
/// applied (callers fall through to the merge walk otherwise).
bool UnionEmptyIdentity(const Bag& a, const Bag& b, const Type& elem,
                        Result<Bag>* result) {
  if (!a.empty() && !b.empty()) return false;
  const Bag& keep = a.empty() ? b : a;
  if (elem == keep.element_type()) {
    *result = keep;
  } else {
    std::vector<BagEntry> out = keep.entries();
    *result = Bag::FromCanonicalEntries(elem, std::move(out));
  }
  return true;
}

}  // namespace

Status CheckDistinctLimit(uint64_t distinct, const Limits& limits) {
  if (limits.max_distinct != 0 && distinct > limits.max_distinct) {
    return Status::ResourceExhausted(
        "bag would hold " + std::to_string(distinct) +
        " distinct elements (limit " + std::to_string(limits.max_distinct) +
        ")");
  }
  return Status::Ok();
}

Status CheckMultLimit(const Mult& m, const Limits& limits) {
  if (limits.max_mult_bits != 0 && m.BitLength() > limits.max_mult_bits) {
    return Status::ResourceExhausted(
        "multiplicity of " + std::to_string(m.BitLength()) +
        " bits exceeds limit of " + std::to_string(limits.max_mult_bits) +
        " bits");
  }
  return Status::Ok();
}

Result<Bag> AdditiveUnion(const Bag& a, const Bag& b) {
  KernelScope scope("kernel.additive_union");
  BAGALG_ASSIGN_OR_RETURN(Type elem,
                          Type::Join(a.element_type(), b.element_type()));
  Result<Bag> identity = Bag();
  if (UnionEmptyIdentity(a, b, elem, &identity)) return identity;
  return MergeCombine(a, b, &CombineAdd);
}

Result<Bag> Subtract(const Bag& a, const Bag& b) {
  KernelScope scope("kernel.subtract");
  BAGALG_ASSIGN_OR_RETURN(Type elem,
                          Type::Join(a.element_type(), b.element_type()));
  if (a.empty()) return Bag(std::move(elem));
  if (b.empty()) {
    if (elem == a.element_type()) return a;
    std::vector<BagEntry> out = a.entries();
    return Bag::FromCanonicalEntries(std::move(elem), std::move(out));
  }
  if (ProbeBeatsMerge(a, b)) {
    // a is a fraction of b: walk a, probe b's hash index, skip the merge
    // walk over b entirely. The output follows a's order, so it stays
    // canonical.
    MergeIndexedCounter()->Increment();
    std::vector<BagEntry> out;
    out.reserve(a.DistinctCount());
    CheckpointTicker ticker(sizeof(BagEntry));
    for (const BagEntry& e : a.entries()) {
      if (ticker.Due()) {
        BAGALG_RETURN_IF_ERROR(ticker.Flush());
      }
      Mult m = e.count.MonusSub(b.CountOf(e.value));
      if (!m.IsZero()) out.push_back({e.value, std::move(m)});
    }
    return Bag::FromCanonicalEntries(std::move(elem), std::move(out));
  }
  return MergeCombine(a, b, &CombineMonus);
}

Result<Bag> MaxUnion(const Bag& a, const Bag& b) {
  KernelScope scope("kernel.max_union");
  BAGALG_ASSIGN_OR_RETURN(Type elem,
                          Type::Join(a.element_type(), b.element_type()));
  Result<Bag> identity = Bag();
  if (UnionEmptyIdentity(a, b, elem, &identity)) return identity;
  return MergeCombine(a, b, &CombineMax);
}

Result<Bag> Intersect(const Bag& a, const Bag& b) {
  KernelScope scope("kernel.intersect");
  BAGALG_ASSIGN_OR_RETURN(Type elem,
                          Type::Join(a.element_type(), b.element_type()));
  if (a.empty() || b.empty()) return Bag(std::move(elem));
  const Bag& small = a.DistinctCount() <= b.DistinctCount() ? a : b;
  const Bag& large = &small == &a ? b : a;
  if (ProbeBeatsMerge(small, large)) {
    // The intersection is a subbag of the small side: walk it and probe the
    // large side's hash index instead of merge-walking both.
    MergeIndexedCounter()->Increment();
    std::vector<BagEntry> out;
    out.reserve(small.DistinctCount());
    CheckpointTicker ticker(sizeof(BagEntry));
    for (const BagEntry& e : small.entries()) {
      if (ticker.Due()) {
        BAGALG_RETURN_IF_ERROR(ticker.Flush());
      }
      Mult other = large.CountOf(e.value);
      if (!other.IsZero()) {
        out.push_back({e.value, Mult::Min(e.count, other)});
      }
    }
    return Bag::FromCanonicalEntries(std::move(elem), std::move(out));
  }
  return MergeCombine(a, b, &CombineMin);
}

Result<Bag> CartesianProduct(const Bag& a, const Bag& b,
                             const Limits& limits) {
  KernelScope scope("kernel.product");
  for (const Bag* operand : {&a, &b}) {
    if (!operand->empty() && !operand->element_type().IsTuple()) {
      return Status::InvalidArgument(
          "Cartesian product requires bags of tuples, got element type " +
          operand->element_type().ToString());
    }
  }
  uint64_t pairs = 0;
  if (__builtin_mul_overflow(static_cast<uint64_t>(a.DistinctCount()),
                             static_cast<uint64_t>(b.DistinctCount()),
                             &pairs)) {
    return Status::ResourceExhausted(
        "Cartesian product distinct-element count overflows uint64");
  }
  BAGALG_RETURN_IF_ERROR(CheckDistinctLimit(pairs, limits));
  if (a.empty() || b.empty()) {
    // Preserve a typed-empty result where possible.
    Type elem = Type::Bottom();
    if (a.element_type().IsTuple() && b.element_type().IsTuple()) {
      std::vector<Type> fields = a.element_type().fields();
      const auto& bf = b.element_type().fields();
      fields.insert(fields.end(), bf.begin(), bf.end());
      elem = Type::Tuple(std::move(fields));
    }
    return Bag(std::move(elem));
  }
  // Every element of a (resp. b) is a tuple of a.element_type()'s (resp.
  // b's) arity, so the result type is the concatenation of the two field
  // lists — no per-pair type joins needed.
  std::vector<Type> field_types = a.element_type().fields();
  {
    const auto& bf = b.element_type().fields();
    field_types.insert(field_types.end(), bf.begin(), bf.end());
  }
  Type elem = Type::Tuple(std::move(field_types));

  // The double loop over two canonical (strictly value-sorted) operands
  // emits pairs in block-lexicographic order, which for fixed-arity tuples
  // *is* the canonical value order — so the concatenated chunk outputs are
  // already sorted and distinct and the sort/merge of Builder is skipped.
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  const size_t nb = eb.size();
  struct ChunkOut {
    std::vector<BagEntry> entries;
    Status status;
  };
  const size_t outer_grain = std::max<size_t>(1, kPairGrain / nb);
  ChunkOut combined = ParallelTransformReduce(
      ea.size(), outer_grain, ChunkOut{},
      [&](size_t begin, size_t end, size_t chunk) {
        // Ambient-context span: on a pool worker the propagated context
        // parents this chunk under the kernel.product span.
        obs::Span chunk_span =
            obs::StartAmbientSpan("kernel.product.chunk", "kernel");
        chunk_span.AddAttr("chunk", uint64_t{chunk});
        ChunkOut out;
        size_t chunk_pairs = 0;
        if (__builtin_mul_overflow(end - begin, nb, &chunk_pairs)) {
          // Unreachable given the pre-checked total, but a wrapped reserve
          // argument would be silent UB-adjacent under-reservation.
          out.status = Status::ResourceExhausted(
              "Cartesian product chunk size overflows size_t");
          return out;
        }
        out.entries.reserve(chunk_pairs);
        CheckpointTicker ticker(sizeof(BagEntry));
        for (size_t i = begin; i < end; ++i) {
          for (size_t j = 0; j < nb; ++j) {
            if (ticker.Due()) {
              out.status = ticker.Flush();
              if (!out.status.ok()) return out;
            }
            std::vector<Value> fields = ea[i].value.fields();
            const auto& bf = eb[j].value.fields();
            fields.insert(fields.end(), bf.begin(), bf.end());
            Mult count = ea[i].count * eb[j].count;
            out.status = CheckMultLimit(count, limits);
            if (!out.status.ok()) return out;
            out.entries.push_back(
                {Value::Tuple(std::move(fields)), std::move(count)});
          }
        }
        return out;
      },
      [](ChunkOut acc, ChunkOut next) {
        if (!acc.status.ok()) return acc;
        if (!next.status.ok()) {
          next.entries.clear();
          return next;
        }
        if (acc.entries.empty()) return next;
        acc.entries.insert(acc.entries.end(),
                           std::make_move_iterator(next.entries.begin()),
                           std::make_move_iterator(next.entries.end()));
        return acc;
      });
  BAGALG_RETURN_IF_ERROR(combined.status);
  scope.span().AddAttr("pairs", pairs);
  return Bag::FromCanonicalEntries(std::move(elem),
                                   std::move(combined.entries));
}

namespace {

/// Precomputed shape of a powerset / powerbag enumeration: the per-entry
/// maxima m_i and the number of distinct subbags Π (m_i + 1) when it fits
/// a uint64 (it always does under the default results cap; `enumerable`
/// is false only for uncapped runs beyond machine range).
struct SubbagEnum {
  std::vector<uint64_t> maxima;
  bool enumerable = true;
  uint64_t total = 0;
};

Result<SubbagEnum> PrepareSubbagEnum(const Bag& bag, const Limits& limits) {
  const auto& entries = bag.entries();
  // Pre-check the number of distinct subbags: Π (m_i + 1).
  if (limits.max_powerset_results != 0) {
    Mult total(1);
    const Mult cap(limits.max_powerset_results);
    for (const BagEntry& e : entries) {
      total = total * (e.count + Mult(1));
      if (total > cap) {
        return Status::ResourceExhausted(
            "powerset would enumerate more than " +
            std::to_string(limits.max_powerset_results) +
            " distinct subbags");
      }
    }
  }
  SubbagEnum en;
  en.maxima.resize(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    auto m = entries[i].count.ToUint64();
    if (!m.ok()) {
      return Status::ResourceExhausted(
          "powerset operand multiplicity exceeds enumerable range");
    }
    en.maxima[i] = *m;
  }
  en.total = 1;
  for (uint64_t m : en.maxima) {
    uint64_t radix = 0;
    if (__builtin_add_overflow(m, uint64_t{1}, &radix) ||
        __builtin_mul_overflow(en.total, radix, &en.total)) {
      en.enumerable = false;
      break;
    }
  }
  return en;
}

/// Enumerates the subbag indices [begin, end) of the mixed-radix odometer
/// (digit i runs 0..m_i, digit 0 least significant), calling
/// emit(chosen) for each. Decoding `begin` directly is what lets the
/// kernels stride-partition the index space across pool tasks. `emit` is a
/// template parameter so per-subbag dispatch inlines (no std::function).
template <typename Emit>
Status ForEachSubbagRange(const std::vector<uint64_t>& maxima, uint64_t begin,
                          uint64_t end, Emit&& emit) {
  if (begin >= end) return Status::Ok();
  std::vector<uint64_t> chosen(maxima.size(), 0);
  uint64_t rem = begin;
  for (size_t i = 0; i < maxima.size() && rem != 0; ++i) {
    const uint64_t radix = maxima[i] + 1;
    chosen[i] = rem % radix;
    rem /= radix;
  }
  for (uint64_t idx = begin;;) {
    BAGALG_RETURN_IF_ERROR(emit(chosen));
    if (++idx == end) return Status::Ok();
    // Odometer increment; idx < total guarantees a non-maxed digit exists.
    size_t pos = 0;
    while (chosen[pos] == maxima[pos]) {
      chosen[pos] = 0;
      ++pos;
    }
    ++chosen[pos];
  }
}

/// Unbounded odometer walk for enumerations whose total exceeds uint64
/// (only reachable with the results cap disabled).
template <typename Emit>
Status ForEachSubbagAll(const std::vector<uint64_t>& maxima, Emit&& emit) {
  std::vector<uint64_t> chosen(maxima.size(), 0);
  while (true) {
    BAGALG_RETURN_IF_ERROR(emit(chosen));
    size_t pos = 0;
    while (pos < chosen.size() && chosen[pos] == maxima[pos]) {
      chosen[pos] = 0;
      ++pos;
    }
    if (pos == chosen.size()) return Status::Ok();
    ++chosen[pos];
  }
}

/// Materializes a subbag from per-entry chosen multiplicities. The kept
/// entries are a subsequence of the parent's canonical entries, so the
/// result is canonical by construction — no Builder needed.
Value MaterializeSubbag(const Bag& bag, const std::vector<uint64_t>& chosen) {
  const auto& entries = bag.entries();
  size_t kept = 0;
  for (uint64_t c : chosen) kept += c != 0 ? 1 : 0;
  std::vector<BagEntry> sub;
  sub.reserve(kept);
  for (size_t i = 0; i < entries.size(); ++i) {
    if (chosen[i] != 0) sub.push_back({entries[i].value, Mult(chosen[i])});
  }
  return Value::FromBag(
      Bag::FromCanonicalEntries(bag.element_type(), std::move(sub)));
}

/// Shared powerset / powerbag driver: enumerates every subbag, computes its
/// result multiplicity with make_count(chosen, &mult), and adds it to
/// `builder`. Enumerable index spaces are stride-partitioned across the
/// pool; per-chunk outputs are appended in chunk index order, so the
/// builder sees the exact serial emission order regardless of scheduling
/// (and Build canonicalizes anyway). The first error in odometer order wins,
/// matching serial semantics.
template <typename MakeCount>
Status EnumerateSubbagsInto(const Bag& bag, const SubbagEnum& en,
                            Bag::Builder& builder, MakeCount&& make_count) {
  CheckpointTicker serial_ticker(kSubbagBytesEstimate);
  auto serial_emit = [&](const std::vector<uint64_t>& chosen) -> Status {
    if (serial_ticker.Due()) {
      BAGALG_RETURN_IF_ERROR(serial_ticker.Flush());
    }
    Mult count;
    BAGALG_RETURN_IF_ERROR(make_count(chosen, &count));
    builder.Add(MaterializeSubbag(bag, chosen), std::move(count));
    return Status::Ok();
  };
  if (!en.enumerable) return ForEachSubbagAll(en.maxima, serial_emit);
  // Charge the builder's up-front reservation before making it: an admitted
  // but huge enumeration must trip the memory cap as a typed error, not die
  // inside vector growth. Saturate the estimate if it overflows.
  if (CurrentGovernor() != nullptr) {
    uint64_t reserve_bytes = 0;
    if (__builtin_mul_overflow(en.total, uint64_t{sizeof(BagEntry)},
                               &reserve_bytes)) {
      reserve_bytes = UINT64_MAX;
    }
    GovernorAccountBytes(reserve_bytes);
    BAGALG_RETURN_IF_ERROR(GovernorCheckpoint());
  }
  builder.Reserve(en.total);
  const size_t chunks = ParallelChunkCount(en.total, kSubbagGrain);
  if (chunks <= 1) {
    return ForEachSubbagRange(en.maxima, 0, en.total, serial_emit);
  }
  struct ChunkOut {
    std::vector<BagEntry> entries;
    Status status;
  };
  std::vector<ChunkOut> outs(chunks);
  // Round up without forming total + chunks - 1, which wraps for totals
  // near UINT64_MAX (reachable with the results cap disabled) and would
  // silently shrink every chunk.
  const uint64_t per =
      en.total / chunks + (en.total % chunks != 0 ? 1 : 0);
  ThreadPool::Global().Run(chunks, [&](size_t c) {
    uint64_t lo = 0;
    if (__builtin_mul_overflow(static_cast<uint64_t>(c), per, &lo) ||
        lo >= en.total) {
      return;  // chunk lies entirely beyond the index space
    }
    const uint64_t hi = en.total - lo < per ? en.total : lo + per;
    // Parents under the kernel.powerset / kernel.powerbag span through the
    // pool's propagated trace context.
    obs::Span chunk_span =
        obs::StartAmbientSpan("kernel.subbag.chunk", "kernel");
    chunk_span.AddAttr("chunk", uint64_t{c});
    chunk_span.AddAttr("subbags", hi - lo);
    outs[c].entries.reserve(hi - lo);
    CheckpointTicker ticker(kSubbagBytesEstimate);
    outs[c].status = ForEachSubbagRange(
        en.maxima, lo, hi, [&](const std::vector<uint64_t>& chosen) -> Status {
          if (ticker.Due()) {
            BAGALG_RETURN_IF_ERROR(ticker.Flush());
          }
          Mult count;
          BAGALG_RETURN_IF_ERROR(make_count(chosen, &count));
          outs[c].entries.push_back(
              {MaterializeSubbag(bag, chosen), std::move(count)});
          return Status::Ok();
        });
  });
  for (ChunkOut& chunk : outs) {
    BAGALG_RETURN_IF_ERROR(chunk.status);
    for (BagEntry& e : chunk.entries) {
      builder.Add(std::move(e.value), std::move(e.count));
    }
  }
  return Status::Ok();
}

/// Binomial coefficient C(n, k) with BigNat n and machine k.
/// Fallback for powerbag entries whose multiplicity exceeds the
/// precomputed-row bound.
Mult Binomial(const Mult& n, uint64_t k) {
  // C(n, k) = Π_{i=1..k} (n - k + i) / i, computed with exact division by
  // keeping the running product divisible at every step.
  Mult num(1);
  Mult base = n.MonusSub(Mult(k));
  for (uint64_t i = 1; i <= k; ++i) {
    num = num * (base + Mult(i));
    auto dm = num.DivMod(Mult(i));
    assert(dm.ok() && dm->remainder.IsZero());
    num = std::move(dm->quotient);
  }
  return num;
}

}  // namespace

Result<Bag> Powerset(const Bag& bag, const Limits& limits) {
  KernelScope scope("kernel.powerset");
  BAGALG_ASSIGN_OR_RETURN(SubbagEnum en, PrepareSubbagEnum(bag, limits));
  if (en.enumerable) scope.span().AddAttr("subbags", en.total);
  Bag::Builder builder(bag.type());
  BAGALG_RETURN_IF_ERROR(EnumerateSubbagsInto(
      bag, en, builder, [](const std::vector<uint64_t>&, Mult* count) {
        *count = Mult(1);
        return Status::Ok();
      }));
  return std::move(builder).Build();
}

Result<Bag> Powerbag(const Bag& bag, const Limits& limits) {
  KernelScope scope("kernel.powerbag");
  BAGALG_ASSIGN_OR_RETURN(SubbagEnum en, PrepareSubbagEnum(bag, limits));
  if (en.enumerable) scope.span().AddAttr("subbags", en.total);
  const auto& entries = bag.entries();
  // Per-entry binomial rows C(m_i, 0..m_i) via the incremental recurrence
  // C(m, k) = C(m, k-1) · (m - k + 1) / k — O(m_i) big-number operations
  // per entry instead of O(k) per *subbag*. Rows beyond the size bound stay
  // empty and fall back to on-the-fly Binomial.
  std::vector<std::vector<Mult>> rows(entries.size());
  CheckpointTicker row_ticker(sizeof(Mult));
  for (size_t i = 0; i < entries.size(); ++i) {
    const uint64_t m = en.maxima[i];
    if (m > kBinomialRowMaxM) continue;
    auto& row = rows[i];
    row.reserve(m + 1);
    row.push_back(Mult(1));
    for (uint64_t k = 1; k <= m; ++k) {
      if (row_ticker.Due()) {
        BAGALG_RETURN_IF_ERROR(row_ticker.Flush());
      }
      auto dm = (row.back() * Mult(m - k + 1)).DivMod(Mult(k));
      assert(dm.ok() && dm->remainder.IsZero());
      row.push_back(std::move(dm->quotient));
    }
  }
  Bag::Builder builder(bag.type());
  BAGALG_RETURN_IF_ERROR(EnumerateSubbagsInto(
      bag, en,
      builder, [&](const std::vector<uint64_t>& chosen, Mult* count) -> Status {
        Mult occ(1);
        for (size_t i = 0; i < chosen.size(); ++i) {
          const uint64_t k = chosen[i];
          if (k == 0) continue;
          Mult f = !rows[i].empty() ? rows[i][k]
                                    : Binomial(entries[i].count, k);
          if (f.IsOne()) continue;  // covers C(m, m) = 1 too
          occ = occ.IsOne() ? std::move(f) : occ * f;
        }
        BAGALG_RETURN_IF_ERROR(CheckMultLimit(occ, limits));
        *count = std::move(occ);
        return Status::Ok();
      }));
  return std::move(builder).Build();
}

Result<Bag> BagDestroy(const Bag& bag, const Limits& limits) {
  KernelScope scope("kernel.bag_destroy");
  if (!bag.empty() && !bag.element_type().IsBag()) {
    return Status::InvalidArgument(
        "bag-destroy requires a bag of bags, got element type " +
        bag.element_type().ToString());
  }
  Type inner_elem = bag.element_type().IsBag()
                        ? bag.element_type().element()
                        : Type::Bottom();
  Bag::Builder builder(inner_elem);
  uint64_t distinct_bound = 0;
  CheckpointTicker ticker(sizeof(BagEntry));
  for (const BagEntry& e : bag.entries()) {
    if (__builtin_add_overflow(distinct_bound, e.value.bag().DistinctCount(),
                               &distinct_bound)) {
      return Status::ResourceExhausted(
          "bag-destroy distinct-element bound overflows uint64");
    }
    BAGALG_RETURN_IF_ERROR(CheckDistinctLimit(distinct_bound, limits));
    builder.Reserve(e.value.bag().DistinctCount());
    for (const BagEntry& inner : e.value.bag().entries()) {
      if (ticker.Due()) {
        BAGALG_RETURN_IF_ERROR(ticker.Flush());
      }
      Mult count = inner.count * e.count;
      BAGALG_RETURN_IF_ERROR(CheckMultLimit(count, limits));
      builder.Add(inner.value, std::move(count));
    }
  }
  return std::move(builder).Build();
}

Result<Bag> DupElim(const Bag& bag) {
  // The distinct values with multiplicity 1 each: the entry list already is
  // the answer, in canonical order.
  std::vector<BagEntry> out;
  out.reserve(bag.DistinctCount());
  for (const BagEntry& e : bag.entries()) {
    out.push_back({e.value, Mult(1)});
  }
  return Bag::FromCanonicalEntries(bag.element_type(), std::move(out));
}

Result<Bag> MapBag(const Bag& bag,
                   const std::function<Result<Value>(const Value&)>& fn,
                   const Type& declared_result_elem) {
  Bag::Builder builder(declared_result_elem);
  builder.Reserve(bag.DistinctCount());
  CheckpointTicker ticker(sizeof(BagEntry));
  for (const BagEntry& e : bag.entries()) {
    if (ticker.Due()) {
      BAGALG_RETURN_IF_ERROR(ticker.Flush());
    }
    BAGALG_ASSIGN_OR_RETURN(Value image, fn(e.value));
    builder.Add(std::move(image), e.count);
  }
  return std::move(builder).Build();
}

Result<Bag> SelectBag(const Bag& bag,
                      const std::function<Result<bool>(const Value&)>& pred) {
  // A subsequence of canonical entries is canonical; the declared element
  // type is unchanged by selection.
  std::vector<BagEntry> out;
  CheckpointTicker ticker(sizeof(BagEntry));
  for (const BagEntry& e : bag.entries()) {
    if (ticker.Due()) {
      BAGALG_RETURN_IF_ERROR(ticker.Flush());
    }
    BAGALG_ASSIGN_OR_RETURN(bool keep, pred(e.value));
    if (keep) out.push_back({e.value, e.count});
  }
  return Bag::FromCanonicalEntries(bag.element_type(), std::move(out));
}

Result<Bag> Nest(const Bag& bag, const std::vector<size_t>& nested_attrs) {
  if (!bag.empty() && !bag.element_type().IsTuple()) {
    return Status::InvalidArgument("nest requires a bag of tuples");
  }
  size_t arity =
      bag.element_type().IsTuple() ? bag.element_type().fields().size() : 0;
  std::vector<bool> is_nested(arity, false);
  for (size_t a : nested_attrs) {
    if (a >= arity) {
      return Status::InvalidArgument("nest attribute index out of range");
    }
    is_nested[a] = true;
  }
  // Group by the key (non-nested attributes), accumulating the nested
  // projections with their multiplicities.
  std::map<std::vector<Value>, Bag::Builder> groups;
  CheckpointTicker ticker(sizeof(BagEntry));
  for (const BagEntry& e : bag.entries()) {
    if (ticker.Due()) {
      BAGALG_RETURN_IF_ERROR(ticker.Flush());
    }
    const auto& fields = e.value.fields();
    std::vector<Value> key;
    std::vector<Value> nested;
    for (size_t i = 0; i < arity; ++i) {
      (is_nested[i] ? nested : key).push_back(fields[i]);
    }
    groups[std::move(key)].Add(Value::Tuple(std::move(nested)), e.count);
  }
  Bag::Builder out;
  for (auto& [key, group_builder] : groups) {
    BAGALG_ASSIGN_OR_RETURN(Bag group, std::move(group_builder).Build());
    std::vector<Value> fields = key;
    fields.push_back(Value::FromBag(std::move(group)));
    out.Add(Value::Tuple(std::move(fields)), Mult(1));
  }
  return std::move(out).Build();
}

Result<Bag> Unnest(const Bag& bag, size_t attr, const Limits& limits) {
  if (!bag.empty() && !bag.element_type().IsTuple()) {
    return Status::InvalidArgument("unnest requires a bag of tuples");
  }
  Bag::Builder out;
  uint64_t distinct_bound = 0;
  CheckpointTicker ticker(sizeof(BagEntry));
  for (const BagEntry& e : bag.entries()) {
    const auto& fields = e.value.fields();
    if (attr >= fields.size()) {
      return Status::InvalidArgument("unnest attribute index out of range");
    }
    if (!fields[attr].IsBag()) {
      return Status::InvalidArgument("unnest attribute is not a bag");
    }
    const Bag& inner = fields[attr].bag();
    if (__builtin_add_overflow(distinct_bound, inner.DistinctCount(),
                               &distinct_bound)) {
      return Status::ResourceExhausted(
          "unnest distinct-element bound overflows uint64");
    }
    BAGALG_RETURN_IF_ERROR(CheckDistinctLimit(distinct_bound, limits));
    out.Reserve(inner.DistinctCount());
    for (const BagEntry& ie : inner.entries()) {
      if (ticker.Due()) {
        BAGALG_RETURN_IF_ERROR(ticker.Flush());
      }
      std::vector<Value> new_fields;
      new_fields.reserve(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) {
        new_fields.push_back(i == attr ? ie.value : fields[i]);
      }
      Mult count = e.count * ie.count;
      BAGALG_RETURN_IF_ERROR(CheckMultLimit(count, limits));
      out.Add(Value::Tuple(std::move(new_fields)), std::move(count));
    }
  }
  return std::move(out).Build();
}

}  // namespace bagalg
