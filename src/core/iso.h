#ifndef BAGALG_CORE_ISO_H_
#define BAGALG_CORE_ISO_H_

/// \file iso.h
/// Database isomorphisms (paper §2).
///
/// Queries must be generic: insensitive to isomorphisms of the database,
/// where an isomorphism is a bijection on atomic constants extended
/// componentwise to tuples and multiplicity-preservingly to bags. This
/// module applies atom renamings to values/bags and generates random
/// permutations, so property tests can verify genericity of every operator
/// and derived query.

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/value.h"
#include "src/util/rng.h"

namespace bagalg {

/// A (partial) renaming of atoms; ids absent from the map are fixed points.
class Isomorphism {
 public:
  Isomorphism() = default;

  /// Adds the mapping from -> to. Later additions override earlier ones.
  void Map(AtomId from, AtomId to) { mapping_[from] = to; }

  /// Image of an atom (identity when unmapped).
  AtomId Apply(AtomId id) const;

  /// Applies the renaming recursively to a value / bag.
  Value Apply(const Value& value) const;
  Result<Bag> Apply(const Bag& bag) const;

  /// The inverse renaming (requires injectivity on the mapped ids; asserts
  /// in debug builds otherwise).
  Isomorphism Inverse() const;

  /// A uniformly random permutation of `atoms`.
  static Isomorphism RandomPermutation(const std::vector<AtomId>& atoms,
                                       Rng& rng);

 private:
  std::unordered_map<AtomId, AtomId> mapping_;
};

/// Collects every atom id occurring in a value / bag.
void CollectAtoms(const Value& value, std::unordered_set<AtomId>* out);
void CollectAtoms(const Bag& bag, std::unordered_set<AtomId>* out);

}  // namespace bagalg

#endif  // BAGALG_CORE_ISO_H_
