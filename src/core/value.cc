#include "src/core/value.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <iterator>
#include <mutex>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/governor.h"
#include "src/util/parallel.h"

namespace bagalg {

namespace {

size_t CombineHash(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

const Mult& ZeroMult() {
  static const Mult* zero = new Mult();
  return *zero;
}

}  // namespace

// ---------------------------------------------------------------- Value::Rep

struct Value::Rep {
  Value::Kind kind;
  AtomId atom = 0;
  std::vector<Value> fields;
  // Bag payload stored via pointer to keep Rep constructible before Bag is
  // complete at declaration time and to avoid a recursive by-value member.
  std::shared_ptr<const Bag> bag;
  Type type;
  size_t hash = 0;
};

// ------------------------------------------------------------------ Bag::Rep

struct Bag::Rep {
  Type element_type = Type::Bottom();
  std::vector<BagEntry> entries;
  Mult total;
  size_t hash = 0;
  // Lazy open-addressing hash index over `entries` (slot holds entry index
  // + 1; 0 means empty). Built at most once, under `index_once`, when a
  // membership probe hits a bag with >= Bag::kIndexThreshold distinct
  // elements. Mutable because the index is a cache on an immutable Rep.
  mutable std::once_flag index_once;
  mutable std::vector<uint32_t> index;
};

namespace {

const std::shared_ptr<const Bag::Rep>& EmptyBagRep() {
  static auto rep = [] {
    auto r = std::make_shared<Bag::Rep>();
    r->hash = 0x90u;
    return std::shared_ptr<const Bag::Rep>(std::move(r));
  }();
  return rep;
}

// ------------------------------------------------------ lazy hash index

/// True when `rep` is large enough for the hash index to pay for itself
/// and small enough for uint32 slots.
bool IndexEligible(const Bag::Rep& rep) {
  return rep.entries.size() >= Bag::kIndexThreshold &&
         rep.entries.size() < (uint64_t{1} << 32) - 1;
}

/// Builds the open-addressing table: power-of-two capacity at load factor
/// <= 0.5, linear probing, slots hold entry index + 1. Deterministic (one
/// insertion order) and collision-safe: probes compare the actual values.
void BuildValueIndex(const Bag::Rep& rep) {
  const size_t n = rep.entries.size();
  const size_t cap = std::bit_ceil(n * 2);
  GovernorAccountBytes(cap * sizeof(uint32_t));
  rep.index.assign(cap, 0);
  const size_t mask = cap - 1;
  for (size_t i = 0; i < n; ++i) {
    size_t slot = rep.entries[i].value.Hash() & mask;
    while (rep.index[slot] != 0) slot = (slot + 1) & mask;
    rep.index[slot] = static_cast<uint32_t>(i + 1);
  }
  obs::GlobalMetrics().GetCounter("kernel.index_builds")->Increment();
}

/// Probes the (built-on-demand) index of `rep` for `value`; nullptr when
/// absent. Requires IndexEligible(rep).
const BagEntry* IndexedFind(const Bag::Rep& rep, const Value& value) {
  std::call_once(rep.index_once, [&rep] { BuildValueIndex(rep); });
  static obs::Counter* probes =
      obs::GlobalMetrics().GetCounter("kernel.index_probes");
  static obs::Counter* hits =
      obs::GlobalMetrics().GetCounter("kernel.index_hits");
  probes->Increment();
  const size_t mask = rep.index.size() - 1;
  size_t slot = value.Hash() & mask;
  while (true) {
    const uint32_t stored = rep.index[slot];
    if (stored == 0) return nullptr;
    const BagEntry& e = rep.entries[stored - 1];
    if (e.value == value) {
      hits->Increment();
      return &e;
    }
    slot = (slot + 1) & mask;
  }
}

// --------------------------------------------------- parallel canonical sort

bool EntryValueLess(const BagEntry& a, const BagEntry& b) {
  return a.value.Compare(b.value) < 0;
}

/// Sorts `items` by value order. Large inputs are chunk-sorted on the
/// global pool, then the sorted runs are merged pairwise in index order —
/// so the resulting sequence of (value, count) contents is independent of
/// the thread count.
void SortEntriesByValue(std::vector<BagEntry>& items) {
  constexpr size_t kSortGrain = 4096;
  const size_t n = items.size();
  const size_t chunks = ParallelChunkCount(n, kSortGrain);
  if (chunks <= 1) {
    std::sort(items.begin(), items.end(), EntryValueLess);
    return;
  }
  obs::Span sort_span = obs::StartAmbientSpan("kernel.build.sort", "kernel");
  sort_span.AddAttr("entries", uint64_t{n});
  sort_span.AddAttr("chunks", uint64_t{chunks});
  const size_t per = (n + chunks - 1) / chunks;
  std::vector<std::pair<size_t, size_t>> runs;
  for (size_t begin = 0; begin < n; begin += per) {
    runs.emplace_back(begin, std::min(begin + per, n));
  }
  ThreadPool::Global().Run(runs.size(), [&](size_t c) {
    // Chunk spans land under kernel.build.sort via pool context propagation.
    obs::Span chunk_span =
        obs::StartAmbientSpan("kernel.build.sort_chunk", "kernel");
    chunk_span.AddAttr("chunk", uint64_t{c});
    std::sort(items.begin() + runs[c].first, items.begin() + runs[c].second,
              EntryValueLess);
  });
  // Merge adjacent runs, halving the run count each round; the pairwise
  // merges of one round are independent and run on the pool too.
  std::vector<BagEntry> scratch(n);
  std::vector<BagEntry>* src = &items;
  std::vector<BagEntry>* dst = &scratch;
  while (runs.size() > 1) {
    std::vector<std::pair<size_t, size_t>> next;
    const size_t pairs = runs.size() / 2;
    for (size_t p = 0; p < pairs; ++p) {
      next.emplace_back(runs[2 * p].first, runs[2 * p + 1].second);
    }
    if (runs.size() % 2 == 1) next.push_back(runs.back());
    ThreadPool::Global().Run(next.size(), [&](size_t p) {
      obs::Span merge_span =
          obs::StartAmbientSpan("kernel.build.sort_merge", "kernel");
      merge_span.AddAttr("pair", uint64_t{p});
      if (p < pairs) {
        const auto [lo, mid] = runs[2 * p];
        const auto [mid2, hi] = runs[2 * p + 1];
        (void)mid2;
        std::merge(std::make_move_iterator(src->begin() + lo),
                   std::make_move_iterator(src->begin() + mid),
                   std::make_move_iterator(src->begin() + mid),
                   std::make_move_iterator(src->begin() + hi),
                   dst->begin() + lo, EntryValueLess);
      } else {
        const auto [lo, hi] = runs[2 * p];
        std::move(src->begin() + lo, src->begin() + hi, dst->begin() + lo);
      }
    });
    runs = std::move(next);
    std::swap(src, dst);
  }
  if (src != &items) items = std::move(*src);
}

}  // namespace

// --------------------------------------------------------------------- Value

Value::Value() : Value(Tuple({})) {}

Value Value::Atom(AtomId id) {
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kAtom;
  rep->atom = id;
  rep->type = Type::Atom();
  rep->hash = CombineHash(0xa70u, id);
  return Value(std::move(rep));
}

Value Value::Tuple(std::vector<Value> fields) {
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kTuple;
  size_t h = 0x70u;
  std::vector<Type> field_types;
  field_types.reserve(fields.size());
  for (const Value& f : fields) {
    h = CombineHash(h, f.Hash());
    field_types.push_back(f.type());
  }
  rep->fields = std::move(fields);
  rep->type = Type::Tuple(std::move(field_types));
  rep->hash = h;
  return Value(std::move(rep));
}

Value Value::FromBag(Bag bag) {
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kBag;
  rep->hash = CombineHash(0xb0u, bag.Hash());
  rep->type = bag.type();
  rep->bag = std::make_shared<const Bag>(std::move(bag));
  return Value(std::move(rep));
}

Value::Kind Value::kind() const { return rep_->kind; }

AtomId Value::atom_id() const {
  assert(IsAtom());
  return rep_->atom;
}

const std::vector<Value>& Value::fields() const {
  assert(IsTuple());
  return rep_->fields;
}

const Bag& Value::bag() const {
  assert(IsBag());
  return *rep_->bag;
}

const Type& Value::type() const { return rep_->type; }

size_t Value::Hash() const { return rep_->hash; }

int Value::Compare(const Value& other) const {
  if (rep_ == other.rep_) return 0;
  if (kind() != other.kind()) {
    return static_cast<int>(kind()) < static_cast<int>(other.kind()) ? -1 : 1;
  }
  switch (kind()) {
    case Kind::kAtom:
      if (atom_id() != other.atom_id()) {
        return atom_id() < other.atom_id() ? -1 : 1;
      }
      return 0;
    case Kind::kTuple: {
      const auto& a = fields();
      const auto& b = other.fields();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      return 0;
    }
    case Kind::kBag:
      return bag().Compare(other.bag());
  }
  return 0;
}

bool Value::operator==(const Value& other) const {
  if (rep_ == other.rep_) return true;
  if (rep_->hash != other.rep_->hash) return false;
  return Compare(other) == 0;
}

std::string Value::ToString(const AtomTable* table) const {
  const AtomTable& t = table != nullptr ? *table : GlobalAtomTable();
  switch (kind()) {
    case Kind::kAtom:
      return t.NameOf(atom_id());
    case Kind::kTuple: {
      std::string out = "[";
      for (size_t i = 0; i < fields().size(); ++i) {
        if (i > 0) out += ", ";
        out += fields()[i].ToString(table);
      }
      out += "]";
      return out;
    }
    case Kind::kBag:
      return bag().ToString(table);
  }
  return "?";
}

// ----------------------------------------------------------------------- Bag

Bag::Bag() : rep_(EmptyBagRep()) {}

Bag::Bag(Type element_type) {
  auto rep = std::make_shared<Rep>();
  rep->element_type = std::move(element_type);
  rep->hash = 0x90u;
  rep_ = std::move(rep);
}

void Bag::Builder::Add(Value value, Mult count) {
  if (count.IsZero()) return;
  items_.push_back(BagEntry{std::move(value), std::move(count)});
}

void Bag::Builder::AddBag(const Bag& bag, const Mult& factor) {
  if (factor.IsZero()) return;
  Reserve(bag.entries().size());
  for (const BagEntry& e : bag.entries()) {
    Add(e.value, e.count * factor);
  }
}

Result<Bag> Bag::Builder::Build() && {
  // Kernels that emit in canonical order (merge walks, products of
  // canonical operands, subbag materialization) skip the sort entirely;
  // the pre-scan costs one Compare per adjacent pair.
  bool presorted = true;
  for (size_t i = 1; i < items_.size(); ++i) {
    if (items_[i - 1].value.Compare(items_[i].value) > 0) {
      presorted = false;
      break;
    }
  }
  if (!presorted) SortEntriesByValue(items_);
  auto rep = std::make_shared<Rep>();
  rep->entries.reserve(items_.size());
  Type elem = declared_;
  Mult total;
  size_t h = 0x90u;
  for (BagEntry& item : items_) {
    // Join allocates; skip it when the item's type is already subsumed —
    // the overwhelmingly common case of homogeneous additions.
    if (!(item.value.type() == elem)) {
      BAGALG_ASSIGN_OR_RETURN(elem, Type::Join(elem, item.value.type()));
    }
    if (!rep->entries.empty() && rep->entries.back().value == item.value) {
      rep->entries.back().count += item.count;
    } else {
      rep->entries.push_back(std::move(item));
    }
  }
  for (const BagEntry& e : rep->entries) {
    total += e.count;
    h = CombineHash(h, CombineHash(e.value.Hash(), e.count.Hash()));
  }
  rep->element_type = std::move(elem);
  rep->total = std::move(total);
  rep->hash = h;
  items_.clear();
  // Charge the canonical entry array to the ambient governor's memory cap.
  // Tiny bags (per-subbag results inside powerset enumeration) are skipped:
  // their enclosing loop is already checkpointed, and charging them here
  // would put an atomic on the kernels' hottest path.
  if (rep->entries.size() >= kGovernorAccountMinEntries) {
    GovernorAccountBytes(rep->entries.capacity() * sizeof(BagEntry));
  }
  return Bag(std::move(rep));
}

Bag Bag::FromCanonicalEntries(Type element_type,
                              std::vector<BagEntry> entries) {
#ifndef NDEBUG
  for (size_t i = 0; i < entries.size(); ++i) {
    assert(!entries[i].count.IsZero() &&
           "FromCanonicalEntries: zero multiplicity");
    assert((i == 0 || entries[i - 1].value.Compare(entries[i].value) < 0) &&
           "FromCanonicalEntries: entries not strictly sorted");
  }
#endif
  auto rep = std::make_shared<Rep>();
  Mult total;
  size_t h = 0x90u;
  for (const BagEntry& e : entries) {
    total += e.count;
    h = CombineHash(h, CombineHash(e.value.Hash(), e.count.Hash()));
  }
  rep->element_type = std::move(element_type);
  rep->entries = std::move(entries);
  rep->total = std::move(total);
  rep->hash = h;
  if (rep->entries.size() >= kGovernorAccountMinEntries) {
    GovernorAccountBytes(rep->entries.capacity() * sizeof(BagEntry));
  }
  return Bag(std::move(rep));
}

const Type& Bag::element_type() const { return rep_->element_type; }

const std::vector<BagEntry>& Bag::entries() const { return rep_->entries; }

const Mult& Bag::TotalCount() const { return rep_->total; }

bool Bag::IsSetLike() const {
  for (const BagEntry& e : entries()) {
    if (!e.count.IsOne()) return false;
  }
  return true;
}

Mult Bag::CountOf(const Value& value) const {
  if (IndexEligible(*rep_)) {
    const BagEntry* e = IndexedFind(*rep_, value);
    return e != nullptr ? e->count : ZeroMult();
  }
  const auto& es = entries();
  auto it = std::lower_bound(es.begin(), es.end(), value,
                             [](const BagEntry& e, const Value& v) {
                               return e.value.Compare(v) < 0;
                             });
  if (it != es.end() && it->value == value) return it->count;
  return ZeroMult();
}

bool Bag::SubBagOf(const Bag& other) const {
  const auto& a = entries();
  const auto& b = other.entries();
  // Every distinct element here must also be distinct there.
  if (a.size() > b.size()) return false;
  // When this bag is much smaller, probe the other side's hash index
  // instead of walking its whole entry list.
  if (IndexEligible(*other.rep_) && a.size() * 4 <= b.size()) {
    for (const BagEntry& e : a) {
      const BagEntry* match = IndexedFind(*other.rep_, e.value);
      if (match == nullptr || e.count > match->count) return false;
    }
    return true;
  }
  // Merge-walk both canonical entry lists.
  size_t i = 0, j = 0;
  while (i < a.size()) {
    if (j == b.size()) return false;
    int c = a[i].value.Compare(b[j].value);
    if (c < 0) return false;  // element of a missing from b
    if (c > 0) {
      ++j;
      continue;
    }
    if (a[i].count > b[j].count) return false;
    ++i;
    ++j;
  }
  return true;
}

size_t Bag::Hash() const { return rep_->hash; }

int Bag::Compare(const Bag& other) const {
  if (rep_ == other.rep_) return 0;
  const auto& a = entries();
  const auto& b = other.entries();
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].value.Compare(b[i].value);
    if (c != 0) return c;
    c = a[i].count.Compare(b[i].count);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

bool Bag::operator==(const Bag& other) const {
  if (rep_ == other.rep_) return true;
  if (rep_->hash != other.rep_->hash) return false;
  return Compare(other) == 0;
}

std::string Bag::ToString(const AtomTable* table) const {
  std::string out = "{{";
  bool first = true;
  for (const BagEntry& e : entries()) {
    if (!first) out += ", ";
    first = false;
    out += e.value.ToString(table);
    if (!e.count.IsOne()) {
      out += "*";
      out += e.count.ToString();
    }
  }
  out += "}}";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

std::ostream& operator<<(std::ostream& os, const Bag& bag) {
  return os << bag.ToString();
}

// -------------------------------------------------------------- Convenience

Value MakeAtom(std::string_view name, AtomTable* table) {
  AtomTable& t = table != nullptr ? *table : GlobalAtomTable();
  return Value::Atom(t.Intern(name));
}

Value MakeTuple(std::initializer_list<Value> fields) {
  return Value::Tuple(std::vector<Value>(fields));
}

Bag MakeBag(std::initializer_list<std::pair<Value, uint64_t>> items) {
  Bag::Builder builder;
  for (const auto& [value, count] : items) {
    builder.Add(value, Mult(count));
  }
  auto result = std::move(builder).Build();
  assert(result.ok() && "MakeBag: inhomogeneous bag literal");
  return std::move(result).value();
}

Bag MakeBagOf(std::initializer_list<Value> values) {
  Bag::Builder builder;
  for (const Value& v : values) builder.AddOne(v);
  auto result = std::move(builder).Build();
  assert(result.ok() && "MakeBagOf: inhomogeneous bag literal");
  return std::move(result).value();
}

Bag NCopies(const Mult& n, const Value& value) {
  Bag::Builder builder;
  builder.Add(value, n);
  auto result = std::move(builder).Build();
  assert(result.ok());
  return std::move(result).value();
}

}  // namespace bagalg
