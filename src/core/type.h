#ifndef BAGALG_CORE_TYPE_H_
#define BAGALG_CORE_TYPE_H_

/// \file type.h
/// The complex-object type system of the paper (§2).
///
/// Types are built from the atomic type U with tuple and bag constructors:
///   T ::= U | [T1,...,Tk] | {{T}}
/// plus an internal Bottom type, the least element of the subtyping order,
/// used as the element type of empty bags whose contents are unconstrained.
/// The *bag nesting* of a type — the maximum number of bag constructors on a
/// root-to-leaf path — stratifies the algebra into the fragments BALG^k the
/// paper studies.
///
/// Type values are immutable shared trees; copying is O(1).

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace bagalg {

/// An immutable complex-object type.
class Type {
 public:
  enum class Kind {
    kAtom,    ///< the atomic type U
    kTuple,   ///< [T1,...,Tk]
    kBag,     ///< {{T}}
    kBottom,  ///< subtype of every type (element type of untyped empty bags)
  };

  /// Constructs the atomic type U.
  static Type Atom();
  /// Constructs a tuple type from field types (arity may be 0).
  static Type Tuple(std::vector<Type> fields);
  /// Constructs a bag type with the given element type.
  static Type Bag(Type element);
  /// Constructs the Bottom type.
  static Type Bottom();

  /// Default-constructs Bottom (so Type is regular).
  Type();

  Kind kind() const;
  bool IsAtom() const { return kind() == Kind::kAtom; }
  bool IsTuple() const { return kind() == Kind::kTuple; }
  bool IsBag() const { return kind() == Kind::kBag; }
  bool IsBottom() const { return kind() == Kind::kBottom; }

  /// Field types; requires IsTuple().
  const std::vector<Type>& fields() const;
  /// Element type; requires IsBag().
  const Type& element() const;

  /// Maximum number of bag constructors on a root-to-leaf path (paper §2).
  /// Bottom has nesting 0.
  int BagNesting() const;

  /// Structural equality.
  bool operator==(const Type& other) const;
  bool operator!=(const Type& other) const { return !(*this == other); }

  /// Structural hash.
  size_t Hash() const;

  /// True iff a value of type `other` can be used where `*this` is expected
  /// (i.e. other is `*this` with some subtrees replaced by Bottom).
  bool Accepts(const Type& other) const;

  /// Least upper bound of two types in the Bottom-order; TypeError if the
  /// types are structurally incompatible.
  static Result<Type> Join(const Type& a, const Type& b);

  /// Rendering: "U", "[U, {{U}}]", "{{[U, U]}}", "_" for Bottom.
  std::string ToString() const;

  /// Internal shared representation (public for the implementation file's
  /// static singletons; not part of the supported API).
  struct Rep;

 private:
  explicit Type(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Type& type);

}  // namespace bagalg

#endif  // BAGALG_CORE_TYPE_H_
