#ifndef BAGALG_CORE_BAG_OPS_H_
#define BAGALG_CORE_BAG_OPS_H_

/// \file bag_ops.h
/// The semantic core of BALG: every algebra operation of the paper (§3) as
/// a function on canonical bags.
///
/// Multiplicity arithmetic follows the paper exactly. For o with p
/// occurrences in B and q in B':
///   additive union  ⊎ : p + q
///   subtraction     − : max(0, p − q)      (monus)
///   maximal union   ∪ : max(p, q)
///   intersection    ∩ : min(p, q)
///   product         × : p · q   (per tuple pair, concatenating fields)
///   powerset        P : one occurrence of each distinct subbag
///   powerbag       P_b : each subbag with Π C(m_i, k_i) occurrences
///                        (Definition 5.1, occurrence-distinguishing)
///   bag-destroy     δ : additive flattening, scaled by outer counts
///   dup-elim        ε : every positive multiplicity becomes 1
///   MAP φ           : image multiplicities add up
///   σ_{φ=φ'}        : keeps multiplicity where the test holds
/// The AST-level evaluator (src/algebra/eval.h) dispatches to these.
///
/// Large products and powerset/powerbag enumerations are partitioned
/// across the process-wide thread pool (src/util/parallel.h); per-chunk
/// outputs are combined in chunk index order, so results are identical for
/// every thread count. Intersect/Subtract probe the lazy hash index of the
/// larger operand instead of merge-walking when the other side is much
/// smaller. Kernel counters land in the MetricsRegistry and each kernel
/// opens a tracer span when the global tracer is enabled (see
/// docs/PERFORMANCE.md).

#include <functional>
#include <vector>

#include "src/core/limits.h"
#include "src/core/value.h"
#include "src/util/result.h"

namespace bagalg {

/// B ⊎ B': additive union. TypeError on incompatible element types.
Result<Bag> AdditiveUnion(const Bag& a, const Bag& b);

/// B − B': monus subtraction.
Result<Bag> Subtract(const Bag& a, const Bag& b);

/// B ∪ B': maximal union.
Result<Bag> MaxUnion(const Bag& a, const Bag& b);

/// B ∩ B': intersection (minimum multiplicities).
Result<Bag> Intersect(const Bag& a, const Bag& b);

/// B × B': Cartesian product of bags of tuples; field lists concatenate and
/// multiplicities multiply. InvalidArgument if a non-empty operand contains
/// non-tuple elements.
Result<Bag> CartesianProduct(const Bag& a, const Bag& b,
                             const Limits& limits = Limits::Default());

/// P(B): the bag of type {{{{T}}}} holding one occurrence of each distinct
/// subbag of B. The number of distinct subbags is Π (m_i + 1) over the
/// distinct elements; exceeding limits.max_powerset_results yields
/// ResourceExhausted.
Result<Bag> Powerset(const Bag& bag, const Limits& limits = Limits::Default());

/// P_b(B): the powerbag (Definition 5.1) — distinguishes occurrences, so a
/// subbag taking k_i of the m_i copies of element i appears Π C(m_i, k_i)
/// times, and the total count is 2^|B|.
Result<Bag> Powerbag(const Bag& bag, const Limits& limits = Limits::Default());

/// δ(B): one level of flattening; requires every element to be a bag.
Result<Bag> BagDestroy(const Bag& bag,
                       const Limits& limits = Limits::Default());

/// ε(B): duplicate elimination.
Result<Bag> DupElim(const Bag& bag);

/// MAP φ (B): applies `fn` to each distinct element; multiplicities of
/// equal images add up. `declared_result_elem` types the result when B is
/// empty (pass Type::Bottom() if unknown).
Result<Bag> MapBag(const Bag& bag,
                   const std::function<Result<Value>(const Value&)>& fn,
                   const Type& declared_result_elem = Type::Bottom());

/// σ(B): keeps the elements (with their multiplicities) on which `pred`
/// returns true.
Result<Bag> SelectBag(const Bag& bag,
                      const std::function<Result<bool>(const Value&)>& pred);

// ----- Extensions discussed by the paper -----------------------------------

/// nest_{i1..in}(B) (§7): groups a bag of k-ary tuples by the attributes
/// *not* listed, pairing each distinct group key with the bag of projections
/// onto the listed attributes (group contents keep multiplicities; each
/// group appears once). Attribute indices are 0-based here (the paper's
/// α_i is 1-based at the surface-syntax level).
Result<Bag> Nest(const Bag& bag, const std::vector<size_t>& nested_attrs);

/// unnest_i(B): inverse direction — expands attribute i (a bag) of each
/// tuple, multiplying multiplicities.
Result<Bag> Unnest(const Bag& bag, size_t attr,
                   const Limits& limits = Limits::Default());

// ----- Shared limit checks (used by the evaluator too) ----------------------

/// ResourceExhausted if `distinct` exceeds the budget.
Status CheckDistinctLimit(uint64_t distinct, const Limits& limits);

/// ResourceExhausted if a multiplicity's bit length exceeds the budget.
Status CheckMultLimit(const Mult& m, const Limits& limits);

}  // namespace bagalg

#endif  // BAGALG_CORE_BAG_OPS_H_
