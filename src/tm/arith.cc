#include "src/tm/arith.h"

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"

namespace bagalg::tm {

// ----------------------------------------------------------------- terms

ArithTerm ArithTerm::Var(size_t index) {
  ArithTerm t;
  t.kind_ = Kind::kVar;
  t.index_ = index;
  return t;
}

ArithTerm ArithTerm::Const(uint64_t value) {
  ArithTerm t;
  t.kind_ = Kind::kConst;
  t.value_ = value;
  return t;
}

ArithTerm ArithTerm::Add(ArithTerm lhs, ArithTerm rhs) {
  ArithTerm t;
  t.kind_ = Kind::kAdd;
  t.children_ = {std::move(lhs), std::move(rhs)};
  return t;
}

ArithTerm ArithTerm::Mul(ArithTerm lhs, ArithTerm rhs) {
  ArithTerm t;
  t.kind_ = Kind::kMul;
  t.children_ = {std::move(lhs), std::move(rhs)};
  return t;
}

uint64_t ArithTerm::Eval(const std::vector<uint64_t>& assignment) const {
  switch (kind_) {
    case Kind::kVar:
      return assignment[index_];
    case Kind::kConst:
      return value_;
    case Kind::kAdd:
      return lhs().Eval(assignment) + rhs().Eval(assignment);
    case Kind::kMul:
      return lhs().Eval(assignment) * rhs().Eval(assignment);
  }
  return 0;
}

// -------------------------------------------------------------- formulas

ArithFormula ArithFormula::Eq(ArithTerm lhs, ArithTerm rhs) {
  ArithFormula f;
  f.kind_ = Kind::kEq;
  f.terms_ = {std::move(lhs), std::move(rhs)};
  return f;
}

ArithFormula ArithFormula::And(ArithFormula lhs, ArithFormula rhs) {
  ArithFormula f;
  f.kind_ = Kind::kAnd;
  f.children_ = {std::move(lhs), std::move(rhs)};
  return f;
}

ArithFormula ArithFormula::Or(ArithFormula lhs, ArithFormula rhs) {
  ArithFormula f;
  f.kind_ = Kind::kOr;
  f.children_ = {std::move(lhs), std::move(rhs)};
  return f;
}

ArithFormula ArithFormula::Not(ArithFormula inner) {
  ArithFormula f;
  f.kind_ = Kind::kNot;
  f.children_ = {std::move(inner)};
  return f;
}

ArithFormula ArithFormula::Exists(size_t index, ArithFormula inner) {
  ArithFormula f;
  f.kind_ = Kind::kExists;
  f.index_ = index;
  f.children_ = {std::move(inner)};
  return f;
}

bool ArithFormula::EvalNative(std::vector<uint64_t>& assignment,
                              uint64_t bound) const {
  switch (kind_) {
    case Kind::kEq:
      return lhs_term().Eval(assignment) == rhs_term().Eval(assignment);
    case Kind::kAnd:
      return child(0).EvalNative(assignment, bound) &&
             child(1).EvalNative(assignment, bound);
    case Kind::kOr:
      return child(0).EvalNative(assignment, bound) ||
             child(1).EvalNative(assignment, bound);
    case Kind::kNot:
      return !child(0).EvalNative(assignment, bound);
    case Kind::kExists: {
      uint64_t saved = assignment[index_];
      for (uint64_t v = 0; v <= bound; ++v) {
        assignment[index_] = v;
        if (child(0).EvalNative(assignment, bound)) {
          assignment[index_] = saved;
          return true;
        }
      }
      assignment[index_] = saved;
      return false;
    }
  }
  return false;
}

// -------------------------------------------------------------- compiler

namespace {

/// Wraps a bag-of-integer-bags into 1-tuples so products apply.
Expr WrapUnary(Expr e) { return Map(Tup({Var(0)}), std::move(e)); }

/// The full assignment space D_0 × ... × D_{m-1} as m-tuples.
Expr FullDomain(const std::vector<Expr>& domains) {
  Expr out;
  for (const Expr& d : domains) {
    Expr wrapped = WrapUnary(d);
    out = out.IsValid() ? Product(std::move(out), std::move(wrapped))
                        : std::move(wrapped);
  }
  return out;
}

/// Compiles a term to an expression over the σ-bound assignment tuple
/// (Var(0)), denoting the term's value as an integer bag of [a] tuples.
Expr CompileTerm(const ArithTerm& term, const Value& a) {
  switch (term.kind()) {
    case ArithTerm::Kind::kVar:
      return Proj(Var(0), term.var_index() + 1);
    case ArithTerm::Kind::kConst:
      return ConstBag(IntAsBag(term.const_value(), a));
    case ArithTerm::Kind::kAdd:
      return Uplus(CompileTerm(term.lhs(), a), CompileTerm(term.rhs(), a));
    case ArithTerm::Kind::kMul:
      // |x|·|y| copies of [a]: product then normalization (the lemma's
      // "multiplication is simulated by ×").
      return Map(Tup({ConstExpr(a)}),
                 Product(CompileTerm(term.lhs(), a),
                         CompileTerm(term.rhs(), a)));
  }
  return Expr();
}

class Compiler {
 public:
  Compiler(size_t num_vars, const std::vector<Expr>& domains, const Value& a)
      : num_vars_(num_vars), domains_(domains), a_(a) {}

  Result<Expr> Compile(const ArithFormula& f) {
    switch (f.kind()) {
      case ArithFormula::Kind::kEq: {
        // Integer bags over a single unit tuple are equal iff the counts
        // agree, so σ compares the compiled terms directly.
        return Select(CompileTerm(f.lhs_term(), a_),
                      CompileTerm(f.rhs_term(), a_), FullDomain(domains_));
      }
      case ArithFormula::Kind::kAnd: {
        BAGALG_ASSIGN_OR_RETURN(Expr l, Compile(f.child(0)));
        BAGALG_ASSIGN_OR_RETURN(Expr r, Compile(f.child(1)));
        return Inter(std::move(l), std::move(r));
      }
      case ArithFormula::Kind::kOr: {
        BAGALG_ASSIGN_OR_RETURN(Expr l, Compile(f.child(0)));
        BAGALG_ASSIGN_OR_RETURN(Expr r, Compile(f.child(1)));
        return Eps(Umax(std::move(l), std::move(r)));
      }
      case ArithFormula::Kind::kNot: {
        // Complement w.r.t. the full assignment space (the lemma's
        // negation rule).
        BAGALG_ASSIGN_OR_RETURN(Expr c, Compile(f.child(0)));
        return Monus(FullDomain(domains_), std::move(c));
      }
      case ArithFormula::Kind::kExists: {
        size_t j = f.var_index();
        if (j >= num_vars_) {
          return Status::InvalidArgument("quantified variable out of range");
        }
        BAGALG_ASSIGN_OR_RETURN(Expr c, Compile(f.child(0)));
        // Project x_j away, deduplicate, then re-attach its full domain and
        // reorder the attributes back into place — the lemma's projection
        // rule for ∃ (MAP + duplicate elimination).
        std::vector<size_t> keep;
        for (size_t i = 0; i < num_vars_; ++i) {
          if (i != j) keep.push_back(i + 1);
        }
        Expr projected = Eps(ProjectAttrs(std::move(c), keep));
        Expr rejoined = Product(std::move(projected), WrapUnary(domains_[j]));
        // Attributes now: kept vars in order (positions 1..m-1), x_j last.
        std::vector<size_t> reorder(num_vars_);
        size_t pos = 1;
        for (size_t i = 0; i < num_vars_; ++i) {
          reorder[i] = (i == j) ? num_vars_ : pos++;
        }
        return ProjectAttrs(std::move(rejoined), reorder);
      }
    }
    return Status::Internal("unhandled formula kind");
  }

 private:
  size_t num_vars_;
  const std::vector<Expr>& domains_;
  const Value& a_;
};

}  // namespace

Result<Expr> CompileBoundedFormula(const ArithFormula& formula,
                                   size_t num_vars,
                                   const std::vector<Expr>& domains,
                                   const Value& a) {
  if (domains.size() != num_vars || num_vars == 0) {
    return Status::InvalidArgument(
        "one domain expression is required per variable");
  }
  Compiler compiler(num_vars, domains, a);
  BAGALG_ASSIGN_OR_RETURN(Expr compiled, compiler.Compile(formula));
  // Satisfying assignments as a set (multiplicities carry no meaning).
  return Eps(std::move(compiled));
}

}  // namespace bagalg::tm
