#include "src/tm/ifp_compiler.h"

#include <algorithm>

#include "src/algebra/builder.h"
#include "src/algebra/database.h"

namespace bagalg::tm {

namespace {

/// Atom naming conventions shared by encode/compile/decode.
Value SymAtom(char c) { return MakeAtom(std::string("tmsym_") + c); }
Value StateAtom(const std::string& q) { return MakeAtom("tmq_" + q); }
Value NoHeadAtom() { return MakeAtom("tmq__none"); }
Value TickAtom() { return MakeAtom("tmtick"); }
Value WitnessAtom() { return MakeAtom("tmw"); }

/// The bag {{tick * n}} — the paper's bag-encoded index n.
Bag TickBag(uint64_t n) { return NCopies(Mult(n), TickAtom()); }

/// {{tick}} as a constant expression (the index "1" used by ⊎ / ∸).
Expr OneTick() { return ConstBag(TickBag(1)); }

/// σ_{α_i(x) = c}(src).
Expr SelectAttrEq(Expr src, size_t attr, const Value& c) {
  return Select(Proj(Var(0), attr), ConstExpr(c), std::move(src));
}

/// The head tuples of X in state q reading symbol s.
Expr HeadTuples(const Expr& x, const std::string& q, char s) {
  return SelectAttrEq(SelectAttrEq(x, 4, StateAtom(q)), 3, SymAtom(s));
}

/// p ⊎ 1, p ∸ 1, or p according to the move, applied to attribute `attr`
/// of the σ/MAP-bound tuple.
Expr MovedPosition(size_t attr, Move move) {
  switch (move) {
    case Move::kRight:
      return Uplus(Proj(Var(0), attr), OneTick());
    case Move::kLeft:
      return Monus(Proj(Var(0), attr), OneTick());
    case Move::kStay:
      return Proj(Var(0), attr);
  }
  return Proj(Var(0), attr);
}

}  // namespace

CompiledMachine CompiledMachine::Compile(const TmSpec& spec,
                                         const std::string& input_name) {
  CompiledMachine out;
  out.spec_ = spec;
  out.input_name_ = input_name;

  // Complete the transition table: a missing (state, symbol) entry means
  // "reject" in the native simulator, so compile it as an explicit move to
  // the reject state (write back the same symbol, stay).
  TmSpec total = spec;
  for (const std::string& q : spec.States()) {
    if (q == spec.accept_state || q == spec.reject_state) continue;
    for (char s : spec.Symbols()) {
      total.delta.try_emplace({q, s},
                              Transition{spec.reject_state, s, Move::kStay});
    }
  }

  Expr x = Var(0);  // the fixpoint iterate; lambda bodies never capture it
  Value g = NoHeadAtom();

  // Non-head cells of X (candidates for copying forward).
  Expr idle_cells = SelectAttrEq(x, 4, g);

  std::vector<Expr> contributions;
  for (const auto& [key, t] : total.delta) {
    const auto& [q1, s1] = key;
    Expr heads = HeadTuples(x, q1, s1);
    Expr succ_t = Uplus(Proj(Var(0), 1), OneTick());

    if (t.move == Move::kStay) {
      // The head stays: one rewritten head tuple, plus forward copies of
      // every other cell of the same time step.
      Expr head_next = Map(Tup({succ_t, Proj(Var(0), 2),
                                ConstExpr(SymAtom(t.write)),
                                ConstExpr(StateAtom(t.next))}),
                           heads);
      Expr pairs = Select(Proj(Var(0), 5), Proj(Var(0), 1),
                          Product(heads, idle_cells));
      Expr copies = Map(Tup({Uplus(Proj(Var(0), 1), OneTick()),
                             Proj(Var(0), 6), Proj(Var(0), 7), ConstExpr(g)}),
                        pairs);
      contributions.push_back(Umax(std::move(head_next), std::move(copies)));
      continue;
    }

    // Moving head: the old cell is rewritten without the head marker...
    Expr old_cell = Map(Tup({succ_t, Proj(Var(0), 2),
                             ConstExpr(SymAtom(t.write)), ConstExpr(g)}),
                        heads);
    // ...and the head lands on the adjacent cell: join each head tuple
    // with the time-t tuple at position p' (attributes 5..8 after the
    // product) to read that cell's symbol.
    Expr landing = Select(
        Tup({Proj(Var(0), 5), Proj(Var(0), 6)}),
        Tup({Proj(Var(0), 1), MovedPosition(2, t.move)}),
        Product(heads, x));
    Expr new_head = Map(Tup({Uplus(Proj(Var(0), 1), OneTick()),
                             Proj(Var(0), 6), Proj(Var(0), 7),
                             ConstExpr(StateAtom(t.next))}),
                        landing);
    // The landing cell must NOT also be copied forward as head-less: build
    // the head-less twin of new_head and subtract it from the copies.
    Expr stale_twin = Map(Tup({Uplus(Proj(Var(0), 1), OneTick()),
                               Proj(Var(0), 6), Proj(Var(0), 7),
                               ConstExpr(g)}),
                          landing);
    Expr pairs = Select(Proj(Var(0), 5), Proj(Var(0), 1),
                        Product(heads, idle_cells));
    Expr copies = Map(Tup({Uplus(Proj(Var(0), 1), OneTick()),
                           Proj(Var(0), 6), Proj(Var(0), 7), ConstExpr(g)}),
                      pairs);
    Expr kept_copies = Monus(std::move(copies), std::move(stale_twin));
    contributions.push_back(
        Umax(Umax(std::move(old_cell), std::move(new_head)),
             std::move(kept_copies)));
  }

  // Union of all transition contributions.
  Expr derived;
  for (Expr& c : contributions) {
    derived = derived.IsValid() ? Umax(std::move(derived), std::move(c))
                                : std::move(c);
  }
  if (!derived.IsValid()) {
    derived = ConstBag(Bag());  // no transitions: nothing ever derived
  }

  // Gate: once an accepting/rejecting tuple exists, derive nothing more —
  // the inflationary iteration then reaches its fixpoint.
  Expr halted = Umax(SelectAttrEq(x, 4, StateAtom(spec.accept_state)),
                     SelectAttrEq(x, 4, StateAtom(spec.reject_state)));
  Expr witness = ConstBag(MakeBagOf({Value::Tuple({WitnessAtom()})}));
  Expr gate = Monus(witness, Map(Tup({ConstExpr(WitnessAtom())}),
                                 Eps(std::move(halted))));
  Expr gated =
      ProjectAttrs(Product(std::move(derived), std::move(gate)), {1, 2, 3, 4});

  out.expr_ = Ifp(std::move(gated), Input(input_name));
  return out;
}

Result<Bag> CompiledMachine::EncodeInitialConfig(const std::string& input,
                                                 size_t tape_cells) const {
  if (input.size() > tape_cells) {
    return Status::InvalidArgument("input longer than the padded tape");
  }
  std::vector<char> alphabet = spec_.Symbols();
  for (char c : input) {
    if (std::find(alphabet.begin(), alphabet.end(), c) == alphabet.end()) {
      return Status::InvalidArgument(std::string("input symbol '") + c +
                                     "' is not in the machine's alphabet");
    }
  }
  Bag::Builder builder;
  for (size_t cell = 1; cell <= tape_cells; ++cell) {
    char symbol = cell <= input.size() ? input[cell - 1] : spec_.blank;
    Value state =
        cell == 1 ? StateAtom(spec_.initial_state) : NoHeadAtom();
    builder.AddOne(Value::Tuple({Value::FromBag(TickBag(1)),
                                 Value::FromBag(TickBag(cell)),
                                 SymAtom(symbol), std::move(state)}));
  }
  return std::move(builder).Build();
}

Result<TmResult> CompiledMachine::DecodeResult(const Bag& fixpoint) const {
  // Locate the halting tuple (accept or reject state marker).
  Value halt_time;
  std::string final_state;
  bool found = false;
  for (const BagEntry& e : fixpoint.entries()) {
    const Value& marker = e.value.fields()[3];
    for (const std::string* q : {&spec_.accept_state, &spec_.reject_state}) {
      if (marker == StateAtom(*q)) {
        halt_time = e.value.fields()[0];
        final_state = *q;
        found = true;
      }
    }
  }
  if (!found) {
    return Status::NotFound(
        "no halting configuration in the fixpoint (head escaped the padded "
        "tape or the iteration budget was too small)");
  }
  // Collect the cells of the halting time step, ordered by position size.
  std::vector<std::pair<uint64_t, char>> cells;
  for (const BagEntry& e : fixpoint.entries()) {
    if (!(e.value.fields()[0] == halt_time)) continue;
    BAGALG_ASSIGN_OR_RETURN(uint64_t pos,
                            e.value.fields()[1].bag().TotalCount().ToUint64());
    // Recover the symbol char from the atom name "tmsym_<c>".
    std::string name =
        GlobalAtomTable().NameOf(e.value.fields()[2].atom_id());
    if (name.size() != 6 + 1) {
      return Status::Internal("unexpected symbol atom " + name);
    }
    cells.emplace_back(pos, name.back());
  }
  std::sort(cells.begin(), cells.end());
  TmResult result;
  result.halted = true;
  result.accepted = final_state == spec_.accept_state;
  result.final_state = std::move(final_state);
  BAGALG_ASSIGN_OR_RETURN(uint64_t halt_ticks,
                          halt_time.bag().TotalCount().ToUint64());
  result.steps = halt_ticks - 1;  // time starts at 1
  for (const auto& [pos, symbol] : cells) {
    (void)pos;
    result.final_tape.push_back(symbol);
  }
  while (!result.final_tape.empty() &&
         result.final_tape.back() == spec_.blank) {
    result.final_tape.pop_back();
  }
  return result;
}

Result<TmResult> RunMachineViaAlgebra(const TmSpec& spec,
                                      const std::string& input,
                                      size_t tape_cells, const Limits& limits,
                                      EvalStats* stats) {
  CompiledMachine compiled = CompiledMachine::Compile(spec);
  BAGALG_ASSIGN_OR_RETURN(Bag init,
                          compiled.EncodeInitialConfig(input, tape_cells));
  Database db;
  BAGALG_RETURN_IF_ERROR(db.Put("Init", std::move(init)));
  Evaluator eval(limits);
  BAGALG_ASSIGN_OR_RETURN(Bag fixpoint,
                          eval.EvalToBag(compiled.expression(), db));
  if (stats != nullptr) *stats = eval.stats();
  return compiled.DecodeResult(fixpoint);
}

}  // namespace bagalg::tm
