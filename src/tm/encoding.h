#ifndef BAGALG_TM_ENCODING_H_
#define BAGALG_TM_ENCODING_H_

/// \file encoding.h
/// The Theorem 6.1 / Theorem 5.5 expression builders.
///
/// The paper simulates hyper(i)-time Turing machines inside BALG³ by
/// building bag-encoded integer domains:
///   N(B)            — |B| copies of the unit tuple [a]
///   E(B) = N(P(P(N(B))))     — exponential blow-up (2^{|B|+1} copies)
///   E_b(B) = N(P_b(B))       — exact 2^{|B|} copies (the powerbag variant
///                              of Theorem 5.5 / Lemma 5.7)
///   D_i(B) = P(E^i(B))       — the bag of all integer bags up to the
///                              hyper(i)-sized bound, used as time/space
///                              index domain
/// plus the move relation M(B) and the final P(D×D×A×Q)-shaped selection.
/// The full Theorem 6.1 expression is hyperexponential *by design*; this
/// module builds it so its types and power nesting can be *measured*
/// (the proof says 2i+2 nested powersets), and evaluates only the
/// component builders on micro inputs. The runnable Turing-completeness
/// path is ifp_compiler.h.

#include "src/algebra/expr.h"
#include "src/tm/machine.h"

namespace bagalg::tm {

/// N(B): the cardinality of e re-encoded as |e| copies of the tuple [a].
Expr CardNormalize(Expr e, const Value& a);

/// E(B) = N(P(P(N(B)))): 2^{|B|+1} copies of [a]. (The paper's doubling
/// expression; the +1 in the exponent comes from P counting the empty
/// subbag, and is irrelevant to the growth hierarchy.)
Expr ExpBlowup(Expr e, const Value& a);

/// E_b(B) = N(P_b(B)): exactly 2^{|B|} copies of [a] (Theorem 5.5 form).
Expr ExpBlowupViaPowerbag(Expr e, const Value& a);

/// The Proposition 6.3 generalization for BALG^k: E(B) = N(P^{k-1}(N(B)))
/// — k−1 consecutive powersets, legal once k levels of nesting are
/// available, driving the hyper((k−2)·i) time hierarchy. k = 3 recovers
/// ExpBlowup.
Expr ExpBlowupK(Expr e, int k, const Value& a);

/// D_i(B) = P(E^i(B)): one occurrence of every integer bag from 0 up to
/// the i-fold-exponential bound. i = 0 gives P(N(B)).
Expr IndexDomain(Expr e, int i, const Value& a);

/// The Theorem 6.1 move relation M(B): for every machine transition and
/// every alphabet symbol b, a pair [before, after] of partial
/// configurations over the position domain `index_domain`, where a partial
/// configuration is a bag of [position, symbol, state-or-marker] triples.
/// Evaluable for micro domains; type has bag nesting 3.
Expr MoveRelation(const TmSpec& spec, Expr index_domain, const Value& a);

/// The "guess an order" device of Theorem 6.1's encoding phase: from a bag
/// of unary tuples R (the constants to order), builds the bag of *all
/// reflexive total orders* over ε(R) — each order a set-like bag of pairs
/// [x, y] meaning x ≤ y, each appearing exactly once. Construction: the
/// powerset of ε(R) × ε(R) filtered by three selections (totality +
/// reflexivity, antisymmetry, transitivity), all expressed with σ equality
/// tests. The output has n! members for n distinct constants.
Expr LinearOrders(Expr r);

/// The full Theorem 6.1 shape σφ3(σφ2(σφ1(P(D×D×A×Q)))) with the paper's
/// selection structure. Returned for *static analysis* — its power nesting
/// must come out as 2i+2 — and for resource-limit experiments; evaluating
/// it on anything but empty inputs exceeds any reasonable budget, which is
/// precisely Proposition 3.2's point.
Expr Theorem61Skeleton(const TmSpec& spec, Expr b, int i, const Value& a);

}  // namespace bagalg::tm

#endif  // BAGALG_TM_ENCODING_H_
