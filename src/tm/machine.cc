#include "src/tm/machine.h"

#include <set>

namespace bagalg::tm {

std::vector<std::string> TmSpec::States() const {
  std::set<std::string> states = {initial_state, accept_state, reject_state};
  for (const auto& [key, t] : delta) {
    states.insert(key.first);
    states.insert(t.next);
  }
  return std::vector<std::string>(states.begin(), states.end());
}

std::vector<char> TmSpec::Symbols() const {
  std::set<char> symbols = {blank};
  for (const auto& [key, t] : delta) {
    symbols.insert(key.second);
    symbols.insert(t.write);
  }
  return std::vector<char>(symbols.begin(), symbols.end());
}

Result<TmResult> RunMachine(const TmSpec& spec, const std::string& input,
                            uint64_t max_steps) {
  std::string tape = input;
  if (tape.empty()) tape.push_back(spec.blank);
  size_t head = 0;
  std::string state = spec.initial_state;
  TmResult result;
  while (result.steps < max_steps) {
    if (state == spec.accept_state || state == spec.reject_state) {
      result.halted = true;
      result.accepted = state == spec.accept_state;
      break;
    }
    auto it = spec.delta.find({state, tape[head]});
    if (it == spec.delta.end()) {
      // A missing transition rejects, taking one (implicit) step — the
      // same convention the algebra-compiled machine uses.
      result.halted = true;
      result.accepted = false;
      state = spec.reject_state;
      ++result.steps;
      break;
    }
    tape[head] = it->second.write;
    switch (it->second.move) {
      case Move::kLeft:
        if (head == 0) {
          return Status::InvalidArgument(
              "machine moved left of cell 0 (tape is one-way infinite)");
        }
        --head;
        break;
      case Move::kRight:
        ++head;
        if (head == tape.size()) tape.push_back(spec.blank);
        break;
      case Move::kStay:
        break;
    }
    state = it->second.next;
    ++result.steps;
  }
  if (!result.halted) {
    return Status::ResourceExhausted(spec.name + " did not halt within " +
                                     std::to_string(max_steps) + " steps");
  }
  while (!tape.empty() && tape.back() == spec.blank) tape.pop_back();
  result.final_tape = std::move(tape);
  result.final_state = std::move(state);
  return result;
}

TmSpec UnaryIncrementMachine() {
  TmSpec m;
  m.name = "unary-increment";
  m.initial_state = "scan";
  m.accept_state = "acc";
  m.reject_state = "rej";
  m.delta[{"scan", '1'}] = {"scan", '1', Move::kRight};
  m.delta[{"scan", '_'}] = {"acc", '1', Move::kStay};
  return m;
}

TmSpec EvenOnesMachine() {
  TmSpec m;
  m.name = "even-ones";
  m.initial_state = "even";
  m.accept_state = "acc";
  m.reject_state = "rej";
  m.delta[{"even", '1'}] = {"odd", '1', Move::kRight};
  m.delta[{"odd", '1'}] = {"even", '1', Move::kRight};
  m.delta[{"even", '_'}] = {"acc", 'Y', Move::kStay};
  m.delta[{"odd", '_'}] = {"rej", 'N', Move::kStay};
  return m;
}

TmSpec AnBnMachine() {
  TmSpec m;
  m.name = "anbn";
  m.initial_state = "start";
  m.accept_state = "acc";
  m.reject_state = "rej";
  // start: on 'a' mark X, scan right for a matching 'b'; on 'Y' all a's
  // consumed — verify only Y's remain; on blank (empty word) accept.
  m.delta[{"start", 'a'}] = {"findb", 'X', Move::kRight};
  m.delta[{"start", 'Y'}] = {"verify", 'Y', Move::kRight};
  m.delta[{"start", '_'}] = {"acc", '_', Move::kStay};
  // findb: skip a's and Y's, mark the first 'b' as Y, head back left.
  m.delta[{"findb", 'a'}] = {"findb", 'a', Move::kRight};
  m.delta[{"findb", 'Y'}] = {"findb", 'Y', Move::kRight};
  m.delta[{"findb", 'b'}] = {"back", 'Y', Move::kLeft};
  // back: return to the cell right of the last X.
  m.delta[{"back", 'a'}] = {"back", 'a', Move::kLeft};
  m.delta[{"back", 'Y'}] = {"back", 'Y', Move::kLeft};
  m.delta[{"back", 'X'}] = {"start", 'X', Move::kRight};
  // verify: only Y's then blank.
  m.delta[{"verify", 'Y'}] = {"verify", 'Y', Move::kRight};
  m.delta[{"verify", '_'}] = {"acc", '_', Move::kStay};
  return m;
}

TmSpec BinaryIncrementMachine() {
  TmSpec m;
  m.name = "binary-increment";
  m.initial_state = "carry";
  m.accept_state = "acc";
  m.reject_state = "rej";
  // LSB-first: propagate the carry right until a 0 or blank absorbs it.
  m.delta[{"carry", '1'}] = {"carry", '0', Move::kRight};
  m.delta[{"carry", '0'}] = {"acc", '1', Move::kStay};
  m.delta[{"carry", '_'}] = {"acc", '1', Move::kStay};
  return m;
}

}  // namespace bagalg::tm
