#include "src/tm/encoding.h"

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"

namespace bagalg::tm {

namespace {

/// Wraps a bag of bags into a bag of 1-tuples so Cartesian products apply.
Expr WrapUnary(Expr e) { return Map(Tup({Var(0)}), std::move(e)); }

Value SymAtomOf(char c) { return MakeAtom(std::string("tmsym_") + c); }
Value StateAtomOf(const std::string& q) { return MakeAtom("tmq_" + q); }

}  // namespace

Expr CardNormalize(Expr e, const Value& a) {
  return Map(Tup({ConstExpr(a)}), std::move(e));
}

Expr ExpBlowup(Expr e, const Value& a) {
  return CardNormalize(Pow(Pow(CardNormalize(std::move(e), a))), a);
}

Expr ExpBlowupViaPowerbag(Expr e, const Value& a) {
  return CardNormalize(Powbag(std::move(e)), a);
}

Expr ExpBlowupK(Expr e, int k, const Value& a) {
  Expr current = CardNormalize(std::move(e), a);
  for (int i = 0; i < k - 1; ++i) {
    current = Pow(std::move(current));
  }
  return CardNormalize(std::move(current), a);
}

Expr IndexDomain(Expr e, int i, const Value& a) {
  Expr current = CardNormalize(std::move(e), a);
  for (int k = 0; k < i; ++k) {
    current = ExpBlowup(std::move(current), a);
  }
  return Pow(std::move(current));
}

Expr MoveRelation(const TmSpec& spec, Expr index_domain, const Value& a) {
  // One tick as a bag of [a] tuples, matching the index encoding.
  Expr one = ConstBag(MakeBagOf({Value::Tuple({a})}));
  Value g = MakeAtom("tmq__none");
  Expr result;
  for (const auto& [key, t] : spec.delta) {
    const auto& [q1, s1] = key;
    if (t.move == Move::kStay) continue;  // the paper's M covers L/R moves
    for (char b : spec.Symbols()) {
      // For a right move λ(s1,q1) = (R, s2, q2), each index y contributes
      //   [ {{[y, s1, q1], [y⊎1, b, g]}}, {{[y, s2, g], [y⊎1, b, q2]}} ].
      // A left move swaps the roles of y and y⊎1.
      bool right = t.move == Move::kRight;
      Expr y = Var(0);
      Expr y1 = Uplus(Var(0), one);
      Expr head_pos = right ? y : y1;
      Expr other_pos = right ? y1 : y;
      Expr before = Beta(Tup({head_pos, ConstExpr(SymAtomOf(s1)),
                              ConstExpr(StateAtomOf(q1))}));
      before = Uplus(std::move(before),
                     Beta(Tup({other_pos, ConstExpr(SymAtomOf(b)),
                               ConstExpr(g)})));
      Expr after = Beta(Tup({right ? y : y1, ConstExpr(SymAtomOf(t.write)),
                             ConstExpr(g)}));
      after = Uplus(std::move(after),
                    Beta(Tup({right ? y1 : y, ConstExpr(SymAtomOf(b)),
                              ConstExpr(StateAtomOf(t.next))})));
      Expr entry = Map(Tup({std::move(before), std::move(after)}),
                       index_domain);
      result = result.IsValid() ? Uplus(std::move(result), std::move(entry))
                                : std::move(entry);
    }
  }
  if (!result.IsValid()) result = ConstBag(Bag());
  return result;
}

namespace {

/// MAP λp.[α2(p), α1(p)] — the transpose of a bag of pairs.
Expr SwapPairs(Expr o) {
  return Map(Tup({Proj(Var(0), 2), Proj(Var(0), 1)}), std::move(o));
}

}  // namespace

Expr LinearOrders(Expr r) {
  Expr atoms = Eps(std::move(r));
  Expr all_pairs = Product(atoms, atoms);
  Expr diag = Map(Tup({Proj(Var(0), 1), Proj(Var(0), 1)}), atoms);

  // Innermost filter — transitivity: compose(o, o) ⊆ o, where o = Var(0)
  // is the candidate order picked from P(all_pairs). The subbag test is
  // the σ equality c ∩ o = c on the deduplicated composition c.
  Expr compose = Eps(ProjectAttrs(
      Select(Proj(Var(0), 2), Proj(Var(0), 3), Product(Var(0), Var(0))),
      {1, 4}));
  Expr transitive =
      Select(Inter(compose, Var(0)), compose, Pow(std::move(all_pairs)));

  // Antisymmetry (with reflexivity): o ∩ swap(o) equals the diagonal.
  Expr antisymmetric = Select(Inter(Var(0), SwapPairs(Var(0))),
                              ShiftVars(diag, 0, 1), std::move(transitive));

  // Totality + reflexivity: every pair appears in o or its transpose.
  Expr all_pairs_again = Product(atoms, atoms);
  Expr total = Select(Eps(Uplus(Var(0), SwapPairs(Var(0)))),
                      ShiftVars(all_pairs_again, 0, 1),
                      std::move(antisymmetric));
  return total;
}

Expr Theorem61Skeleton(const TmSpec& spec, Expr b, int i, const Value& a) {
  // Alphabet and state bags (wrapped as 1-tuples for the product).
  Bag::Builder alphabet;
  for (char c : spec.Symbols()) {
    alphabet.AddOne(Value::Tuple({SymAtomOf(c)}));
  }
  Bag::Builder states;
  for (const std::string& q : spec.States()) {
    states.AddOne(Value::Tuple({StateAtomOf(q)}));
  }
  states.AddOne(Value::Tuple({MakeAtom("tmq__none")}));
  Expr d = IndexDomain(std::move(b), i, a);
  Expr cells = Product(Product(WrapUnary(d), WrapUnary(d)),
                       Product(ConstBag(std::move(alphabet).Build().value()),
                               ConstBag(std::move(states).Build().value())));
  // All candidate computations: the powerset of the 4-ary cell space, then
  // the paper's three selections. φ1 (initial configuration correct) and
  // φ2 (consecutive configurations follow the move relation) reduce to
  // subbag/membership tests; φ3 demands an accepting state. The skeleton
  // instantiates φ3 exactly and uses membership-shaped placeholders for
  // φ1/φ2 — the analysis-relevant structure (operator shapes, types, power
  // nesting) matches the proof.
  Expr candidates = Pow(std::move(cells));
  Value accept = StateAtomOf(spec.accept_state);
  // φ3: the computation contains a cell in the accepting state:
  //   σ_{λc. σ_{λy. α4(y) = acc}(c) ≠ ∅}. Emptiness-as-equality: compare
  //   ε of the selection against the ε of c ∩ selection... Simplest exact
  //   form: keep c with σ_{acc}(c) == σ_{acc}(c) ∩ c (always true) is
  //   useless; instead require β-membership: the accepting sub-selection
  //   deduplicated equals a one-element normalization. We use the
  //   σ ≠ ∅ test via monus: ε(N(σ_acc(c))) == {{[a]}}.
  Expr acc_cells = Select(Proj(Var(0), 4), ConstExpr(accept), Var(0));
  Expr lhs = Eps(Map(Tup({ConstExpr(a)}), std::move(acc_cells)));
  Expr rhs = ConstBag(MakeBagOf({Value::Tuple({a})}));
  Expr phi3 = Select(std::move(lhs), std::move(rhs), std::move(candidates));
  // φ2 placeholder: computations closed under the move shape — modeled as
  // a self-intersection selection c == c ∩ c (type-faithful, trivially
  // true); φ1 placeholder likewise on the time-1 slice.
  Expr phi2 = Select(Var(0), Inter(Var(0), Var(0)), std::move(phi3));
  Expr phi1 = Select(Var(0), Var(0), std::move(phi2));
  return phi1;
}

}  // namespace bagalg::tm
