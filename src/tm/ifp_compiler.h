#ifndef BAGALG_TM_IFP_COMPILER_H_
#define BAGALG_TM_IFP_COMPILER_H_

/// \file ifp_compiler.h
/// Theorem 6.6: BALG² + inflationary fixpoint is Turing complete.
///
/// Compiles a Turing machine into a single BALG²+IFP expression that
/// simulates it inside the bag algebra. Following the paper's encoding, a
/// computation is a bag of 4-tuples [t, p, s, q]: at time t (a bag of t
/// "tick" atoms) the tape cell p (likewise a bag) holds symbol s, with q
/// the machine state if the head is on that cell and the marker "no-head"
/// otherwise. The fixpoint body derives the time-(t ⊎ 1) configuration
/// from the time-t one — head movement is literally bag arithmetic,
/// p ⊎ {{tick}} and p ∸ {{tick}}, the reason the paper indexes with bags —
/// and a gate built from monus emptiness testing stops derivation once a
/// halting state appears, so the inflationary iteration reaches a fixpoint.
///
/// The initial-configuration encoding and final decoding are host-side
/// (the paper's phase (-) and the inverse of enc; the in-algebra guessing
/// construction of Theorem 6.1 is built — and measured — in encoding.h).
/// The simulation phase (the paper's phase (+)) runs entirely through the
/// algebra evaluator.

#include <string>

#include "src/algebra/eval.h"
#include "src/algebra/expr.h"
#include "src/tm/machine.h"

namespace bagalg::tm {

/// A compiled machine: the IFP expression plus the naming conventions
/// needed to encode/decode configurations.
class CompiledMachine {
 public:
  /// Compiles `spec`. The returned expression reads the initial
  /// configuration from input bag `input_name`.
  static CompiledMachine Compile(const TmSpec& spec,
                                 const std::string& input_name = "Init");

  /// The full BALG²+IFP simulation expression.
  const Expr& expression() const { return expr_; }
  const TmSpec& spec() const { return spec_; }

  /// Encodes "tape = input, head on cell 1, state q0, time 1" as the
  /// initial configuration bag, padding the tape with blanks to
  /// `tape_cells` cells (the head must stay within this region; the run
  /// reports failure otherwise).
  Result<Bag> EncodeInitialConfig(const std::string& input,
                                  size_t tape_cells) const;

  /// Decodes the final configuration out of a fixpoint bag: the halting
  /// tuple's time stamp selects the final tape/state. NotFound if no
  /// halting state is present (head escaped the padded region or the
  /// machine exceeded the iteration budget).
  Result<TmResult> DecodeResult(const Bag& fixpoint) const;

 private:
  TmSpec spec_;
  std::string input_name_;
  Expr expr_;
};

/// End-to-end: compile, encode, run through the algebra evaluator, decode.
/// `tape_cells` bounds the tape region; `limits` bounds the evaluation.
Result<TmResult> RunMachineViaAlgebra(const TmSpec& spec,
                                      const std::string& input,
                                      size_t tape_cells,
                                      const Limits& limits = Limits::Default(),
                                      EvalStats* stats = nullptr);

}  // namespace bagalg::tm

#endif  // BAGALG_TM_IFP_COMPILER_H_
