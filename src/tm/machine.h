#ifndef BAGALG_TM_MACHINE_H_
#define BAGALG_TM_MACHINE_H_

/// \file machine.h
/// Deterministic single-tape Turing machines.
///
/// The substrate for the paper's simulation results: Theorem 5.5 (hyper(i)
/// queries via powerbag), Theorem 6.1 (BALG³ captures the elementary
/// queries), and Theorem 6.6 (BALG²+IFP is Turing complete). The native
/// simulator here is the ground truth the algebra-compiled machines
/// (ifp_compiler.h) are tested against.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace bagalg::tm {

/// Head movement.
enum class Move { kLeft, kRight, kStay };

/// One transition: in (state, symbol), write `write`, move, goto `next`.
struct Transition {
  std::string next;
  char write;
  Move move;
};

/// A deterministic single-tape machine. Symbols are chars; `blank` pads the
/// tape. Halts on reaching `accept_state` or `reject_state`, or when no
/// transition applies (treated as reject).
struct TmSpec {
  std::string name;
  std::string initial_state;
  std::string accept_state;
  std::string reject_state;
  char blank = '_';
  std::map<std::pair<std::string, char>, Transition> delta;

  /// All states mentioned anywhere in the spec.
  std::vector<std::string> States() const;
  /// All tape symbols mentioned anywhere in the spec.
  std::vector<char> Symbols() const;
};

/// Outcome of a run.
struct TmResult {
  bool halted = false;
  bool accepted = false;
  uint64_t steps = 0;
  std::string final_tape;  // trailing blanks trimmed
  std::string final_state;
};

/// Runs the machine natively on `input` (head starts at cell 0). Fails with
/// ResourceExhausted after `max_steps`, or InvalidArgument if the head
/// would move left of cell 0 (the paper's one-way-infinite tape).
Result<TmResult> RunMachine(const TmSpec& spec, const std::string& input,
                            uint64_t max_steps = 100000);

// ------------------------------------------------------- sample machines

/// Appends one '1' to a unary string: "111" -> "1111". Always accepts.
TmSpec UnaryIncrementMachine();

/// Accepts iff the number of '1's is even; writes 'Y'/'N' over the first
/// blank as a visible verdict.
TmSpec EvenOnesMachine();

/// Accepts the language a^n b^n (classic zig-zag marker machine).
TmSpec AnBnMachine();

/// Binary increment on a reversed (LSB-first) bit string: "110" (= 3)
/// becomes "001" (= 4). Always accepts.
TmSpec BinaryIncrementMachine();

}  // namespace bagalg::tm

#endif  // BAGALG_TM_MACHINE_H_
