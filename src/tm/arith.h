#ifndef BAGALG_TM_ARITH_H_
#define BAGALG_TM_ARITH_H_

/// \file arith.h
/// Lemma 5.7: bounded arithmetic compiled into the bag algebra.
///
/// The paper encodes (N, +, ×, =) with quantifiers bounded by a
/// hyperexponential function into BALG² (+P_b): an integer i is the bag of
/// i copies of [a]; + is ⊎; × is Cartesian product followed by
/// normalization; a bounded domain is P of a blown-up integer; logical
/// connectives are ∩, set-complement (monus from the full domain) and
/// projection. This module implements that translation for an explicit
/// formula AST and is validated against a native arithmetic evaluator —
/// the engine behind Theorem 5.5's hyper(i)-TIME queries.

#include <cstdint>
#include <memory>
#include <vector>

#include "src/algebra/expr.h"
#include "src/util/result.h"

namespace bagalg::tm {

/// Arithmetic terms over variables x0..x_{m-1}.
class ArithTerm {
 public:
  enum class Kind { kVar, kConst, kAdd, kMul };

  static ArithTerm Var(size_t index);
  static ArithTerm Const(uint64_t value);
  static ArithTerm Add(ArithTerm lhs, ArithTerm rhs);
  static ArithTerm Mul(ArithTerm lhs, ArithTerm rhs);

  Kind kind() const { return kind_; }
  size_t var_index() const { return index_; }
  uint64_t const_value() const { return value_; }
  const ArithTerm& lhs() const { return children_[0]; }
  const ArithTerm& rhs() const { return children_[1]; }

  /// Native evaluation under an assignment.
  uint64_t Eval(const std::vector<uint64_t>& assignment) const;

 private:
  Kind kind_ = Kind::kConst;
  size_t index_ = 0;
  uint64_t value_ = 0;
  std::vector<ArithTerm> children_;
};

/// Formulas in the bounded fragment: equality atoms, ∧, ∨, ¬, and bounded
/// ∃ over one of the m variables (all variables range over the same
/// bounded domain).
class ArithFormula {
 public:
  enum class Kind { kEq, kAnd, kOr, kNot, kExists };

  static ArithFormula Eq(ArithTerm lhs, ArithTerm rhs);
  static ArithFormula And(ArithFormula lhs, ArithFormula rhs);
  static ArithFormula Or(ArithFormula lhs, ArithFormula rhs);
  static ArithFormula Not(ArithFormula f);
  /// ∃ x_index < bound.
  static ArithFormula Exists(size_t index, ArithFormula f);

  Kind kind() const { return kind_; }
  size_t var_index() const { return index_; }
  const ArithTerm& lhs_term() const { return terms_[0]; }
  const ArithTerm& rhs_term() const { return terms_[1]; }
  const ArithFormula& child(size_t i) const { return children_[i]; }
  size_t child_count() const { return children_.size(); }

  /// Native truth under an assignment with every quantifier ranging over
  /// 0..bound (inclusive).
  bool EvalNative(std::vector<uint64_t>& assignment, uint64_t bound) const;

 private:
  Kind kind_ = Kind::kEq;
  size_t index_ = 0;
  std::vector<ArithTerm> terms_;
  std::vector<ArithFormula> children_;
};

/// Compiles `formula` over `num_vars` variables into a BALG expression
/// denoting the set-like bag of satisfying assignments — m-tuples of
/// integer bags drawn from `domains[j]` (an expression whose elements are
/// the candidate integer bags for x_j, e.g. IndexDomain or a singleton
/// {{b_n}} for the lemma's input variable). `a` is the unit atom.
Result<Expr> CompileBoundedFormula(const ArithFormula& formula,
                                   size_t num_vars,
                                   const std::vector<Expr>& domains,
                                   const Value& a);

}  // namespace bagalg::tm

#endif  // BAGALG_TM_ARITH_H_
