#include "src/util/governor.h"

#include <string>

#include "src/util/fault.h"

namespace bagalg {
namespace {

// Process-wide cumulative counters behind GovernorStats. Relaxed ordering:
// these are monitoring data, never synchronization.
std::atomic<uint64_t> g_deadline_trips{0};
std::atomic<uint64_t> g_memcap_trips{0};
std::atomic<uint64_t> g_cancel_trips{0};
std::atomic<uint64_t> g_fault_trips{0};
std::atomic<uint64_t> g_checkpoints{0};
std::atomic<uint64_t> g_bytes_accounted{0};

}  // namespace

ResourceGovernor::ResourceGovernor(const GovernorOptions& options)
    : deadline_(options.wall_limit_ns == 0
                    ? std::chrono::steady_clock::time_point::max()
                    : std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(options.wall_limit_ns)),
      memory_limit_bytes_(options.memory_limit_bytes),
      cancel_(options.cancel) {}

const char* TripKindName(TripKind kind) {
  switch (kind) {
    case TripKind::kNone:
      return "none";
    case TripKind::kDeadline:
      return "deadline";
    case TripKind::kMemcap:
      return "memcap";
    case TripKind::kCancel:
      return "cancel";
    case TripKind::kFault:
      return "fault";
  }
  return "none";
}

Status ResourceGovernor::Trip(Status status, std::atomic<uint64_t>& counter,
                              TripKind kind) {
  std::lock_guard<std::mutex> lock(trip_mu_);
  // First trip wins: a deadline trip on one pool worker and a memcap trip
  // on another must surface as one coherent error, and re-checks after the
  // trip must keep reporting it (sticky).
  if (!tripped_.load(std::memory_order_relaxed)) {
    counter.fetch_add(1, std::memory_order_relaxed);
    trip_status_ = std::move(status);
    trip_kind_.store(kind, std::memory_order_release);
    tripped_.store(true, std::memory_order_release);
  }
  return trip_status_;
}

Status ResourceGovernor::Check() {
  g_checkpoints.fetch_add(1, std::memory_order_relaxed);
  if (tripped_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(trip_mu_);
    return trip_status_;
  }
  if (fault::ShouldFailCheckpoint()) {
    return Trip(Status::Cancelled("fault injection: checkpoint trip"),
                g_fault_trips, TripKind::kFault);
  }
  if (alloc_fault_.load(std::memory_order_relaxed)) {
    return Trip(
        Status::ResourceExhausted("fault injection: allocation failure"),
        g_fault_trips, TripKind::kFault);
  }
  if (cancel_.cancelled()) {
    return Trip(Status::Cancelled("query cancelled"), g_cancel_trips,
                TripKind::kCancel);
  }
  if (memory_limit_bytes_ != 0) {
    const uint64_t bytes = bytes_.load(std::memory_order_relaxed);
    if (bytes > memory_limit_bytes_) {
      return Trip(
          Status::ResourceExhausted("memory limit exceeded: accounted " +
                                    std::to_string(bytes) + " bytes > cap " +
                                    std::to_string(memory_limit_bytes_)),
          g_memcap_trips, TripKind::kMemcap);
    }
  }
  if (deadline_ != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= deadline_) {
    return Trip(Status::DeadlineExceeded("wall-clock deadline exceeded"),
                g_deadline_trips, TripKind::kDeadline);
  }
  return Status::Ok();
}

void ResourceGovernor::AccountBytes(uint64_t bytes) {
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  g_bytes_accounted.fetch_add(bytes, std::memory_order_relaxed);
  if (fault::ShouldFailAlloc()) {
    // Defer the actual trip to the next Check(): allocation sites are not
    // Status-returning, so the fault surfaces through the normal
    // checkpoint channel on whichever thread checks next.
    alloc_fault_.store(true, std::memory_order_relaxed);
  }
}

GovernorStats ResourceGovernor::Stats() {
  GovernorStats stats;
  stats.deadline_trips = g_deadline_trips.load(std::memory_order_relaxed);
  stats.memcap_trips = g_memcap_trips.load(std::memory_order_relaxed);
  stats.cancel_trips = g_cancel_trips.load(std::memory_order_relaxed);
  stats.fault_trips = g_fault_trips.load(std::memory_order_relaxed);
  stats.checkpoints = g_checkpoints.load(std::memory_order_relaxed);
  stats.bytes_accounted = g_bytes_accounted.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace bagalg
