#include "src/util/bignat.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bagalg {

namespace {
constexpr uint64_t kLimbBase = uint64_t{1} << 32;
}  // namespace

BigNat::BigNat(uint64_t v) {
  if (v == 0) return;
  limbs_.push_back(static_cast<uint32_t>(v & 0xffffffffu));
  uint32_t hi = static_cast<uint32_t>(v >> 32);
  if (hi != 0) limbs_.push_back(hi);
}

void BigNat::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Result<BigNat> BigNat::FromDecimal(std::string_view text) {
  if (text.empty()) {
    return Status::ParseError("empty string is not a decimal number");
  }
  BigNat out;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::ParseError(std::string("invalid decimal digit '") + c +
                                "'");
    }
    out.MulAddSmallInPlace(10, static_cast<uint32_t>(c - '0'));
  }
  return out;
}

BigNat BigNat::TwoPow(uint64_t exp) {
  BigNat out;
  size_t limb = static_cast<size_t>(exp / 32);
  unsigned bit = static_cast<unsigned>(exp % 32);
  out.limbs_.assign(limb + 1, 0);
  out.limbs_[limb] = uint32_t{1} << bit;
  return out;
}

BigNat BigNat::Pow(const BigNat& base, uint64_t exp) {
  BigNat result(1);
  BigNat b = base;
  while (exp > 0) {
    if (exp & 1) result *= b;
    b *= b;
    exp >>= 1;
  }
  return result;
}

size_t BigNat::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

size_t BigNat::DecimalDigits() const { return ToString().size(); }

Result<uint64_t> BigNat::ToUint64() const {
  if (!FitsUint64()) {
    return Status::InvalidArgument("BigNat value exceeds uint64 range");
  }
  uint64_t v = 0;
  if (limbs_.size() >= 1) v |= limbs_[0];
  if (limbs_.size() == 2) v |= uint64_t{limbs_[1]} << 32;
  return v;
}

double BigNat::ToDouble() const {
  double v = 0.0;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    v = v * static_cast<double>(kLimbBase) + static_cast<double>(*it);
  }
  return v;
}

void BigNat::MulAddSmallInPlace(uint32_t mul, uint32_t add) {
  uint64_t carry = add;
  for (uint32_t& limb : limbs_) {
    uint64_t cur = uint64_t{limb} * mul + carry;
    limb = static_cast<uint32_t>(cur & 0xffffffffu);
    carry = cur >> 32;
  }
  while (carry != 0) {
    limbs_.push_back(static_cast<uint32_t>(carry & 0xffffffffu));
    carry >>= 32;
  }
  Normalize();
}

uint32_t BigNat::DivSmallInPlace(uint32_t divisor) {
  assert(divisor != 0);
  uint64_t rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    uint64_t cur = (rem << 32) | limbs_[i];
    limbs_[i] = static_cast<uint32_t>(cur / divisor);
    rem = cur % divisor;
  }
  Normalize();
  return static_cast<uint32_t>(rem);
}

std::string BigNat::ToString() const {
  if (limbs_.empty()) return "0";
  BigNat tmp = *this;
  std::string digits;
  while (!tmp.IsZero()) {
    // Peel 9 decimal digits at a time.
    uint32_t chunk = tmp.DivSmallInPlace(1000000000u);
    bool last = tmp.IsZero();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
      if (last && chunk == 0) break;
    }
  }
  // Strip spurious leading (now trailing) zeros, keep at least one digit.
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  std::reverse(digits.begin(), digits.end());
  return digits;
}

int BigNat::Compare(const BigNat& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigNat BigNat::operator+(const BigNat& other) const {
  BigNat out;
  size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.reserve(n + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t cur = carry;
    if (i < limbs_.size()) cur += limbs_[i];
    if (i < other.limbs_.size()) cur += other.limbs_[i];
    out.limbs_.push_back(static_cast<uint32_t>(cur & 0xffffffffu));
    carry = cur >> 32;
  }
  if (carry != 0) out.limbs_.push_back(static_cast<uint32_t>(carry));
  return out;
}

BigNat BigNat::MonusSub(const BigNat& other) const {
  if (*this <= other) return BigNat();
  auto r = CheckedSub(other);
  assert(r.ok());
  return std::move(r).value();
}

Result<BigNat> BigNat::CheckedSub(const BigNat& other) const {
  if (*this < other) {
    return Status::InvalidArgument("BigNat subtraction underflow");
  }
  BigNat out;
  out.limbs_.reserve(limbs_.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t cur = static_cast<int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) cur -= other.limbs_[i];
    if (cur < 0) {
      cur += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<uint32_t>(cur));
  }
  assert(borrow == 0);
  out.Normalize();
  return out;
}

BigNat BigNat::operator*(const BigNat& other) const {
  if (IsZero() || other.IsZero()) return BigNat();
  BigNat out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t a = limbs_[i];
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + a * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + other.limbs_.size();
    while (carry != 0) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Normalize();
  return out;
}

BigNat BigNat::ShiftLeftBits(unsigned bits) const {
  assert(bits < 32);
  if (bits == 0 || IsZero()) return *this;
  BigNat out;
  out.limbs_.reserve(limbs_.size() + 1);
  uint32_t carry = 0;
  for (uint32_t limb : limbs_) {
    out.limbs_.push_back((limb << bits) | carry);
    carry = static_cast<uint32_t>(uint64_t{limb} >> (32 - bits));
  }
  if (carry != 0) out.limbs_.push_back(carry);
  return out;
}

BigNat BigNat::ShiftRightBits(unsigned bits) const {
  assert(bits < 32);
  if (bits == 0 || IsZero()) return *this;
  BigNat out;
  out.limbs_.resize(limbs_.size());
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t cur = uint64_t{limbs_[i]} >> bits;
    if (i + 1 < limbs_.size()) {
      cur |= uint64_t{limbs_[i + 1]} << (32 - bits) & 0xffffffffu;
    }
    out.limbs_[i] = static_cast<uint32_t>(cur);
  }
  out.Normalize();
  return out;
}

Result<BigNat::DivModResult> BigNat::DivMod(const BigNat& divisor) const {
  if (divisor.IsZero()) {
    return Status::InvalidArgument("BigNat division by zero");
  }
  if (*this < divisor) {
    return DivModResult{BigNat(), *this};
  }
  if (divisor.limbs_.size() == 1) {
    BigNat q = *this;
    uint32_t r = q.DivSmallInPlace(divisor.limbs_[0]);
    return DivModResult{std::move(q), BigNat(r)};
  }
  // Binary long division: adequate for the limb counts bagalg reaches
  // (division only appears in aggregate averages and encodings).
  BigNat quotient;
  BigNat remainder;
  size_t bits = BitLength();
  quotient.limbs_.assign((bits + 31) / 32, 0);
  for (size_t i = bits; i-- > 0;) {
    remainder = remainder.ShiftLeftBits(1);
    uint32_t bit = (limbs_[i / 32] >> (i % 32)) & 1u;
    if (bit) {
      if (remainder.limbs_.empty()) remainder.limbs_.push_back(0);
      remainder.limbs_[0] |= 1u;
    }
    if (remainder >= divisor) {
      remainder = remainder.MonusSub(divisor);
      quotient.limbs_[i / 32] |= uint32_t{1} << (i % 32);
    }
  }
  quotient.Normalize();
  return DivModResult{std::move(quotient), std::move(remainder)};
}

size_t BigNat::Hash() const {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (uint32_t limb : limbs_) {
    h ^= limb + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigNat& n) {
  return os << n.ToString();
}

}  // namespace bagalg
