#include "src/util/bignat.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "src/util/governor.h"

namespace bagalg {

namespace {

constexpr uint64_t kLimbBase = uint64_t{1} << 32;

std::atomic<uint64_t> g_slow_path_ops{0};

void CountSlowPath() {
  g_slow_path_ops.fetch_add(1, std::memory_order_relaxed);
}

uint32_t Lo32(uint64_t v) { return static_cast<uint32_t>(v & 0xffffffffu); }
uint32_t Hi32(uint64_t v) { return static_cast<uint32_t>(v >> 32); }

size_t HashLimb(size_t h, uint32_t limb) {
  return h ^ (limb + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

/// a <=> b over raw normalized limb vectors.
int CompareVec(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// a *= 2 over a raw limb vector (used by the long division).
void ShiftLeft1InPlace(std::vector<uint32_t>& v) {
  uint32_t carry = 0;
  for (uint32_t& limb : v) {
    uint32_t next_carry = limb >> 31;
    limb = (limb << 1) | carry;
    carry = next_carry;
  }
  if (carry != 0) v.push_back(carry);
}

/// a -= b over raw limb vectors; requires a >= b. Trims leading zeros.
void SubVecInPlace(std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t cur = static_cast<int64_t>(a[i]) - borrow;
    if (i < b.size()) cur -= b[i];
    if (cur < 0) {
      cur += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    a[i] = static_cast<uint32_t>(cur);
  }
  assert(borrow == 0);
  while (!a.empty() && a.back() == 0) a.pop_back();
}

}  // namespace

uint64_t BigNat::SlowPathOps() {
  return g_slow_path_ops.load(std::memory_order_relaxed);
}

void BigNat::ResetSlowPathOps() {
  g_slow_path_ops.store(0, std::memory_order_relaxed);
}

BigNat::LimbSpan BigNat::Span(uint32_t (&buf)[2]) const {
  if (!limbs_.empty()) return LimbSpan{limbs_.data(), limbs_.size()};
  buf[0] = Lo32(small_);
  buf[1] = Hi32(small_);
  size_t n = small_ == 0 ? 0 : (buf[1] != 0 ? 2 : 1);
  return LimbSpan{buf, n};
}

BigNat BigNat::FromLimbVector(std::vector<uint32_t> limbs) {
  while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
  BigNat out;
  if (limbs.size() <= 2) {
    uint64_t v = 0;
    if (limbs.size() >= 1) v |= limbs[0];
    if (limbs.size() == 2) v |= uint64_t{limbs[1]} << 32;
    out.small_ = v;
  } else {
    // Only limb-backed values consume heap; the small_ fast path is free.
    // This is where powerbag multiplicities (binomials, 2^n counts) grow,
    // so it is the one BigNat site the memory cap must see.
    GovernorAccountBytes(limbs.capacity() * sizeof(uint32_t));
    out.limbs_ = std::move(limbs);
  }
  return out;
}

void BigNat::PromoteToLimbs() {
  assert(limbs_.empty());
  if (small_ != 0) {
    limbs_.push_back(Lo32(small_));
    uint32_t hi = Hi32(small_);
    if (hi != 0) limbs_.push_back(hi);
  }
  small_ = 0;
  GovernorAccountBytes(limbs_.capacity() * sizeof(uint32_t));
}

Result<BigNat> BigNat::FromDecimal(std::string_view text) {
  if (text.empty()) {
    return Status::ParseError("empty string is not a decimal number");
  }
  BigNat out;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::ParseError(std::string("invalid decimal digit '") + c +
                                "'");
    }
    out.MulAddSmallInPlace(10, static_cast<uint32_t>(c - '0'));
  }
  return out;
}

BigNat BigNat::TwoPow(uint64_t exp) {
  if (exp < 64) return BigNat(uint64_t{1} << exp);
  BigNat out;
  size_t limb = static_cast<size_t>(exp / 32);
  unsigned bit = static_cast<unsigned>(exp % 32);
  out.limbs_.assign(limb + 1, 0);
  out.limbs_[limb] = uint32_t{1} << bit;
  return out;
}

BigNat BigNat::Pow(const BigNat& base, uint64_t exp) {
  BigNat result(1);
  BigNat b = base;
  while (exp > 0) {
    if (exp & 1) result *= b;
    b *= b;
    exp >>= 1;
  }
  return result;
}

size_t BigNat::BitLength() const {
  if (limbs_.empty()) return std::bit_width(small_);
  return (limbs_.size() - 1) * 32 +
         static_cast<size_t>(std::bit_width(limbs_.back()));
}

size_t BigNat::DecimalDigits() const { return ToString().size(); }

size_t BigNat::LimbCount() const {
  if (!limbs_.empty()) return limbs_.size();
  return small_ == 0 ? 0 : (Hi32(small_) != 0 ? 2 : 1);
}

Result<uint64_t> BigNat::ToUint64() const {
  if (!limbs_.empty()) {
    return Status::InvalidArgument("BigNat value exceeds uint64 range");
  }
  return small_;
}

double BigNat::ToDouble() const {
  if (limbs_.empty()) return static_cast<double>(small_);
  double v = 0.0;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    v = v * static_cast<double>(kLimbBase) + static_cast<double>(*it);
  }
  return v;
}

void BigNat::MulAddSmallInPlace(uint32_t mul, uint32_t add) {
  if (limbs_.empty()) {
    unsigned __int128 cur =
        static_cast<unsigned __int128>(small_) * mul + add;
    if (static_cast<uint64_t>(cur >> 64) == 0) {
      small_ = static_cast<uint64_t>(cur);
      return;
    }
    CountSlowPath();
    PromoteToLimbs();
  }
  uint64_t carry = add;
  for (uint32_t& limb : limbs_) {
    uint64_t cur = uint64_t{limb} * mul + carry;
    limb = Lo32(cur);
    carry = cur >> 32;
  }
  while (carry != 0) {
    limbs_.push_back(Lo32(carry));
    carry >>= 32;
  }
  *this = FromLimbVector(std::move(limbs_));
}

uint32_t BigNat::DivSmallInPlace(uint32_t divisor) {
  assert(divisor != 0);
  if (limbs_.empty()) {
    uint32_t rem = static_cast<uint32_t>(small_ % divisor);
    small_ /= divisor;
    return rem;
  }
  uint64_t rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    uint64_t cur = (rem << 32) | limbs_[i];
    limbs_[i] = static_cast<uint32_t>(cur / divisor);
    rem = cur % divisor;
  }
  *this = FromLimbVector(std::move(limbs_));
  return static_cast<uint32_t>(rem);
}

std::string BigNat::ToString() const {
  if (limbs_.empty()) return std::to_string(small_);
  BigNat tmp = *this;
  std::string digits;
  while (!tmp.IsZero()) {
    // Peel 9 decimal digits at a time.
    uint32_t chunk = tmp.DivSmallInPlace(1000000000u);
    bool last = tmp.IsZero();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
      if (last && chunk == 0) break;
    }
  }
  // Strip spurious leading (now trailing) zeros, keep at least one digit.
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  std::reverse(digits.begin(), digits.end());
  return digits;
}

int BigNat::Compare(const BigNat& other) const {
  const bool a_small = limbs_.empty();
  const bool b_small = other.limbs_.empty();
  if (a_small && b_small) {
    if (small_ != other.small_) return small_ < other.small_ ? -1 : 1;
    return 0;
  }
  // A limb form is always >= 2^64, an inline form always < 2^64.
  if (a_small) return -1;
  if (b_small) return 1;
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigNat BigNat::operator+(const BigNat& other) const {
  if (limbs_.empty() && other.limbs_.empty()) {
    uint64_t sum;
    if (!__builtin_add_overflow(small_, other.small_, &sum)) {
      return BigNat(sum);
    }
    // Overflowed exactly once: the result is 2^64 + (wrapped sum).
    BigNat out;
    out.limbs_ = {Lo32(sum), Hi32(sum), 1u};
    return out;
  }
  CountSlowPath();
  uint32_t abuf[2], bbuf[2];
  LimbSpan a = Span(abuf);
  LimbSpan b = other.Span(bbuf);
  std::vector<uint32_t> out;
  size_t n = std::max(a.size, b.size);
  out.reserve(n + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t cur = carry;
    if (i < a.size) cur += a.data[i];
    if (i < b.size) cur += b.data[i];
    out.push_back(Lo32(cur));
    carry = cur >> 32;
  }
  if (carry != 0) out.push_back(static_cast<uint32_t>(carry));
  return FromLimbVector(std::move(out));
}

BigNat BigNat::MonusSub(const BigNat& other) const {
  if (limbs_.empty() && other.limbs_.empty()) {
    return BigNat(small_ >= other.small_ ? small_ - other.small_ : 0);
  }
  if (*this <= other) return BigNat();
  auto r = CheckedSub(other);
  assert(r.ok());
  return std::move(r).value();
}

Result<BigNat> BigNat::CheckedSub(const BigNat& other) const {
  if (limbs_.empty() && other.limbs_.empty()) {
    if (small_ < other.small_) {
      return Status::InvalidArgument("BigNat subtraction underflow");
    }
    return BigNat(small_ - other.small_);
  }
  if (*this < other) {
    return Status::InvalidArgument("BigNat subtraction underflow");
  }
  CountSlowPath();
  uint32_t abuf[2], bbuf[2];
  LimbSpan a = Span(abuf);
  LimbSpan b = other.Span(bbuf);
  std::vector<uint32_t> out;
  out.reserve(a.size);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size; ++i) {
    int64_t cur = static_cast<int64_t>(a.data[i]) - borrow;
    if (i < b.size) cur -= b.data[i];
    if (cur < 0) {
      cur += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(cur));
  }
  assert(borrow == 0);
  return FromLimbVector(std::move(out));
}

BigNat BigNat::operator*(const BigNat& other) const {
  if (limbs_.empty() && other.limbs_.empty()) {
    unsigned __int128 p =
        static_cast<unsigned __int128>(small_) * other.small_;
    uint64_t hi = static_cast<uint64_t>(p >> 64);
    if (hi == 0) return BigNat(static_cast<uint64_t>(p));
    uint64_t lo = static_cast<uint64_t>(p);
    BigNat out;
    out.limbs_ = {Lo32(lo), Hi32(lo), Lo32(hi), Hi32(hi)};
    while (out.limbs_.back() == 0) out.limbs_.pop_back();
    return out;
  }
  if (IsZero() || other.IsZero()) return BigNat();
  CountSlowPath();
  uint32_t abuf[2], bbuf[2];
  LimbSpan a = Span(abuf);
  LimbSpan b = other.Span(bbuf);
  std::vector<uint32_t> out(a.size + b.size, 0);
  for (size_t i = 0; i < a.size; ++i) {
    uint64_t carry = 0;
    uint64_t av = a.data[i];
    for (size_t j = 0; j < b.size; ++j) {
      uint64_t cur = out[i + j] + av * b.data[j] + carry;
      out[i + j] = Lo32(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.size;
    while (carry != 0) {
      uint64_t cur = out[k] + carry;
      out[k] = Lo32(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  return FromLimbVector(std::move(out));
}

Result<BigNat::DivModResult> BigNat::DivMod(const BigNat& divisor) const {
  if (divisor.IsZero()) {
    return Status::InvalidArgument("BigNat division by zero");
  }
  if (limbs_.empty() && divisor.limbs_.empty()) {
    return DivModResult{BigNat(small_ / divisor.small_),
                        BigNat(small_ % divisor.small_)};
  }
  if (*this < divisor) {
    return DivModResult{BigNat(), *this};
  }
  CountSlowPath();
  // Dividend is on the heap here (the inline case with an inline divisor
  // was handled above, and dividend >= divisor).
  if (divisor.limbs_.empty() && Hi32(divisor.small_) == 0) {
    BigNat q = *this;
    uint32_t r = q.DivSmallInPlace(static_cast<uint32_t>(divisor.small_));
    return DivModResult{std::move(q), BigNat(r)};
  }
  // Binary long division: adequate for the limb counts bagalg reaches
  // (division only appears in aggregate averages and encodings).
  uint32_t dbuf[2];
  LimbSpan dv = divisor.Span(dbuf);
  std::vector<uint32_t> div_vec(dv.data, dv.data + dv.size);
  std::vector<uint32_t> rem;
  size_t bits = BitLength();
  std::vector<uint32_t> quot((bits + 31) / 32, 0);
  for (size_t i = bits; i-- > 0;) {
    ShiftLeft1InPlace(rem);
    uint32_t bit = (limbs_[i / 32] >> (i % 32)) & 1u;
    if (bit) {
      if (rem.empty()) rem.push_back(0);
      rem[0] |= 1u;
    }
    if (CompareVec(rem, div_vec) >= 0) {
      SubVecInPlace(rem, div_vec);
      quot[i / 32] |= uint32_t{1} << (i % 32);
    }
  }
  return DivModResult{FromLimbVector(std::move(quot)),
                      FromLimbVector(std::move(rem))};
}

size_t BigNat::Hash() const {
  size_t h = 0x9e3779b97f4a7c15ull;
  if (limbs_.empty()) {
    if (small_ == 0) return h;
    h = HashLimb(h, Lo32(small_));
    if (Hi32(small_) != 0) h = HashLimb(h, Hi32(small_));
    return h;
  }
  for (uint32_t limb : limbs_) h = HashLimb(h, limb);
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigNat& n) {
  return os << n.ToString();
}

}  // namespace bagalg
