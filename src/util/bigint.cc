#include "src/util/bigint.h"

namespace bagalg {

BigInt::BigInt(int64_t v) {
  if (v < 0) {
    negative_ = true;
    // Avoid UB on INT64_MIN.
    magnitude_ = BigNat(static_cast<uint64_t>(-(v + 1)) + 1);
  } else {
    magnitude_ = BigNat(static_cast<uint64_t>(v));
  }
}

BigInt::BigInt(bool negative, BigNat magnitude)
    : negative_(negative && !magnitude.IsZero()),
      magnitude_(std::move(magnitude)) {}

Result<BigNat> BigInt::ToBigNat() const {
  if (negative_) {
    return Status::InvalidArgument("negative BigInt is not a BigNat");
  }
  return magnitude_;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (negative_ == other.negative_) {
    return BigInt(negative_, magnitude_ + other.magnitude_);
  }
  int cmp = magnitude_.Compare(other.magnitude_);
  if (cmp == 0) return BigInt();
  if (cmp > 0) {
    return BigInt(negative_, magnitude_.MonusSub(other.magnitude_));
  }
  return BigInt(other.negative_, other.magnitude_.MonusSub(magnitude_));
}

BigInt BigInt::operator*(const BigInt& other) const {
  return BigInt(negative_ != other.negative_, magnitude_ * other.magnitude_);
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = magnitude_.Compare(other.magnitude_);
  return negative_ ? -mag : mag;
}

std::string BigInt::ToString() const {
  return (negative_ ? "-" : "") + magnitude_.ToString();
}

std::ostream& operator<<(std::ostream& os, const BigInt& n) {
  return os << n.ToString();
}

}  // namespace bagalg
