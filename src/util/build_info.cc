#include "src/util/build_info.h"

// Injected per-source by src/util/CMakeLists.txt; the fallbacks keep
// non-CMake builds (IDE indexers, single-file syntax checks) compiling.
#ifndef BAGALG_GIT_SHA
#define BAGALG_GIT_SHA "unknown"
#endif
#ifndef BAGALG_BUILD_TYPE
#define BAGALG_BUILD_TYPE "unknown"
#endif

namespace bagalg {

namespace {
constexpr char kVersion[] = "0.9.0";
}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo* info = new BuildInfo{
      kVersion,
      BAGALG_GIT_SHA,
      BAGALG_BUILD_TYPE,
  };
  return *info;
}

std::string BuildInfoString() {
  const BuildInfo& info = GetBuildInfo();
  return "bagalg " + info.version + " (" + info.git_sha + ", " +
         info.build_type + ")";
}

std::string BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  return "{\"version\":\"" + info.version + "\",\"git_sha\":\"" +
         info.git_sha + "\",\"build_type\":\"" + info.build_type + "\"}";
}

}  // namespace bagalg
