#include "src/util/strings.h"

namespace bagalg {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace bagalg
