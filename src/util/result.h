#ifndef BAGALG_UTIL_RESULT_H_
#define BAGALG_UTIL_RESULT_H_

/// \file result.h
/// Result<T>: a value-or-Status sum type, the return convention of every
/// fallible value-producing bagalg API.

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace bagalg {

/// Holds either a T or a non-OK Status. Accessing the value of an error
/// Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  /// Implicit construction from an error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The carried status (OK on success).
  const Status& status() const { return status_; }

  /// The value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status from the current function.
#define BAGALG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define BAGALG_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define BAGALG_ASSIGN_OR_RETURN_NAME(a, b) BAGALG_ASSIGN_OR_RETURN_CONCAT(a, b)
#define BAGALG_ASSIGN_OR_RETURN(lhs, expr)                                    \
  BAGALG_ASSIGN_OR_RETURN_IMPL(                                               \
      BAGALG_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace bagalg

#endif  // BAGALG_UTIL_RESULT_H_
