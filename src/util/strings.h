#ifndef BAGALG_UTIL_STRINGS_H_
#define BAGALG_UTIL_STRINGS_H_

/// \file strings.h
/// Small string helpers shared by printers and parsers.

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace bagalg {

/// Joins the string forms of a range with a separator.
template <typename Range>
std::string JoinToString(const Range& range, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : range) {
    if (!first) os << sep;
    os << item;
    first = false;
  }
  return os.str();
}

/// Renders any streamable value to a string.
template <typename T>
std::string ToStr(const T& value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

/// True iff `text` starts with `prefix`.
inline bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

/// Splits on a single character separator (no trimming, keeps empties).
std::vector<std::string> SplitString(std::string_view text, char sep);

}  // namespace bagalg

#endif  // BAGALG_UTIL_STRINGS_H_
