#ifndef BAGALG_UTIL_GOVERNOR_H_
#define BAGALG_UTIL_GOVERNOR_H_

/// \file governor.h
/// Runtime resource governor: deadlines, memory caps, and cooperative
/// cancellation for running queries.
///
/// PR 3's static cost analyzer refuses queries it can *prove* over budget,
/// but symbolic or unknown bounds are admitted — and with powerset `P` in
/// the algebra a single admitted query can still be hyperexponential. The
/// governor is the runtime's last line of defense: a per-query budget
/// (wall-clock deadline, cumulative bytes-allocated cap, cancellation
/// token) checked cooperatively at periodic *checkpoints* inside every loop
/// that scales with bag size. A trip tears the query down through the
/// ordinary Status channel — kDeadlineExceeded, kResourceExhausted, or
/// kCancelled — never by crashing, leaking, or corrupting the session.
///
/// Propagation is by thread-local ambient scope rather than parameter
/// plumbing: the query driver installs the governor with a GovernorScope,
/// and every kernel below (including ThreadPool workers, which inherit the
/// dispatching caller's governor — see parallel.cc) reaches it through
/// CurrentGovernor(). With no governor installed every hook is a
/// branch-predictable no-op, so library users who never construct one pay
/// nothing.
///
/// Checkpoint discipline (see docs/ROBUSTNESS.md): any new loop whose trip
/// count scales with bag size must tick a CheckpointTicker once per
/// iteration (or once per emitted entry). The ticker amortizes the cost —
/// it only consults the governor every kCheckpointStride iterations — so a
/// checkpointed loop stays within the <2% overhead budget asserted by
/// bench/bench_governor.cpp.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "src/util/status.h"

namespace bagalg {

/// A shareable cancellation flag. Default-constructed tokens are *inert*
/// (never cancelled, Cancel() is a no-op); Create() makes a live token.
/// Copies share the flag. Cancel() is an atomic store on a pre-allocated
/// flag, so it is safe to call from a signal handler or another thread
/// while a query runs (the REPL's Ctrl-C handler does exactly that).
class CancellationToken {
 public:
  CancellationToken() = default;

  /// Makes a live token (allocates the shared flag).
  static CancellationToken Create() {
    CancellationToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// True iff this token has a flag (i.e. came from Create or a copy).
  bool valid() const { return flag_ != nullptr; }

  /// Requests cancellation. Async-signal-safe on a valid token.
  void Cancel() {
    if (flag_) flag_->store(true, std::memory_order_release);
  }

  /// Re-arms a valid token for the next query.
  void Reset() {
    if (flag_) flag_->store(false, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Per-query budget knobs. Zero disables the corresponding limit.
struct GovernorOptions {
  /// Wall-clock budget in nanoseconds from governor construction.
  uint64_t wall_limit_ns = 0;
  /// Cumulative bytes-allocated cap (not live bytes: accounting is
  /// monotone, which makes trips deterministic and hooks cheap).
  uint64_t memory_limit_bytes = 0;
  /// External cancellation source; inert token = not cancellable.
  CancellationToken cancel;
};

/// Process-wide trip/activity counters (cumulative, relaxed atomics).
/// Mirrored into the MetricsRegistry by obs::MirrorGovernorStats — same
/// layering as ParallelStats, keeping util free of an obs dependency.
struct GovernorStats {
  uint64_t deadline_trips = 0;
  uint64_t memcap_trips = 0;
  uint64_t cancel_trips = 0;
  uint64_t fault_trips = 0;
  uint64_t checkpoints = 0;
  uint64_t bytes_accounted = 0;
};

/// Which limit a governor tripped on. The distinction matters to operators
/// reading a query journal: kMemcap and a fault-injected allocation failure
/// both surface as kResourceExhausted Status codes, and kCancel covers both
/// a user's Ctrl-C and a fault-injected checkpoint trip — the kind
/// disambiguates them.
enum class TripKind {
  kNone = 0,
  kDeadline,
  kMemcap,
  kCancel,
  kFault,
};

/// Human-readable name ("none", "deadline", "memcap", "cancel", "fault").
const char* TripKindName(TripKind kind);

/// The per-query governor. Construct one per statement, install it with a
/// GovernorScope for the duration of evaluation, and let checkpoints do the
/// rest. Thread-safe: pool workers under the same scope share the instance.
///
/// Trips are *sticky and first-wins*: the first failing check records its
/// Status under a mutex and flips an atomic flag; every later checkpoint on
/// any thread returns that same Status, so a tripped parallel kernel
/// unwinds all chunks with one coherent error.
class ResourceGovernor {
 public:
  explicit ResourceGovernor(const GovernorOptions& options);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// A full checkpoint: fault hooks, cancellation, memory cap, deadline —
  /// in that order. OK means "keep going". Called from CheckpointTicker
  /// every kCheckpointStride loop iterations, not per item.
  Status Check();

  /// Records `bytes` of allocation against the cap. Does not itself fail —
  /// the *next* checkpoint observes the total and trips — so allocation
  /// sites stay noexcept-ish and cheap. Also feeds the alloc fault stream.
  void AccountBytes(uint64_t bytes);

  /// Cumulative bytes accounted against this governor.
  uint64_t bytes_allocated() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// True iff some check already failed; the recorded Status is what every
  /// subsequent Check() returns.
  bool tripped() const { return tripped_.load(std::memory_order_acquire); }

  /// Which limit tripped first (kNone while running / after a clean run).
  TripKind trip_kind() const {
    return trip_kind_.load(std::memory_order_acquire);
  }

  /// Process-wide cumulative counters across all governors.
  static GovernorStats Stats();

 private:
  Status Trip(Status status, std::atomic<uint64_t>& counter, TripKind kind);

  /// Absolute steady-clock deadline; time_point::max() when no wall limit.
  std::chrono::steady_clock::time_point deadline_;
  uint64_t memory_limit_bytes_;
  CancellationToken cancel_;

  std::atomic<uint64_t> bytes_{0};
  /// Set by AccountBytes when the alloc fault stream fires; consumed by the
  /// next Check so the trip surfaces through the normal checkpoint channel.
  std::atomic<bool> alloc_fault_{false};
  std::atomic<bool> tripped_{false};
  std::atomic<TripKind> trip_kind_{TripKind::kNone};
  std::mutex trip_mu_;
  Status trip_status_;
};

namespace internal {
/// The ambient governor for this thread (nullptr = ungoverned). Exposed
/// only for GovernorScope and the thread pool's worker propagation.
/// inline+constinit: constant initialization means direct TLS access with
/// no wrapper function (whose synthesized reference UBSan's null check
/// flags under GCC) and no per-access init guard on the hot no-op path.
inline constinit thread_local ResourceGovernor* g_current_governor = nullptr;
}  // namespace internal

/// The governor in effect on this thread, or nullptr.
inline ResourceGovernor* CurrentGovernor() {
  return internal::g_current_governor;
}

/// RAII installer for the ambient governor. Installing nullptr is a no-op
/// (the outer scope, if any, stays in effect) so callers can pass an
/// optional governor straight through.
class GovernorScope {
 public:
  explicit GovernorScope(ResourceGovernor* governor)
      : previous_(internal::g_current_governor), installed_(governor != nullptr) {
    if (installed_) internal::g_current_governor = governor;
  }
  ~GovernorScope() {
    if (installed_) internal::g_current_governor = previous_;
  }
  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

 private:
  ResourceGovernor* previous_;
  bool installed_;
};

/// Checkpoint against the ambient governor; OK when ungoverned.
inline Status GovernorCheckpoint() {
  ResourceGovernor* gov = internal::g_current_governor;
  return gov == nullptr ? Status::Ok() : gov->Check();
}

/// Accounts bytes against the ambient governor; no-op when ungoverned.
inline void GovernorAccountBytes(uint64_t bytes) {
  ResourceGovernor* gov = internal::g_current_governor;
  if (gov != nullptr) gov->AccountBytes(bytes);
}

/// Iterations between full governor checks in checkpointed loops. Small
/// enough that trips land within tens of microseconds of the limit, large
/// enough that the per-check cost (a steady_clock read plus two relaxed
/// fetch-adds, ~50ns) amortizes below the overhead budget even for the
/// cheapest kernel loops (~6ns/iteration merge walks).
inline constexpr uint64_t kCheckpointStride = 512;

/// Builders and kernels skip byte accounting for outputs smaller than this
/// many entries: tiny bags (the per-subbag case in powerset enumeration)
/// are already bounded by their enumeration's own ticker, and accounting
/// them individually would dominate the kernels' hot paths.
inline constexpr size_t kGovernorAccountMinEntries = 32;

/// Per-loop checkpoint helper: call Due() once per iteration and Flush()
/// when it returns true; every kCheckpointStride-th call charges the
/// elapsed iterations' bytes to the governor and runs a full Check.
/// Stack-local, one per loop (or one per pool chunk), never shared between
/// threads.
///
/// The hot path is a single decrement-and-branch. Anything more — a null
/// test, a byte accumulation, let alone constructing an OK Status (with
/// its empty-string member) — measurably slows the cheapest kernels: the
/// ~6ns/iteration merge walk paid >30% for a combined tick-and-check API.
/// Per-tick bytes are therefore a construction-time constant, multiplied
/// back in at Flush, and the ungoverned case decrements from 2^64-1
/// instead of branching (at one tick per nanosecond that countdown lasts
/// five centuries; if it ever did reach zero, Flush is a no-op).
/// Canonical use:
///
///   CheckpointTicker ticker(sizeof(BagEntry));  // bytes charged per tick
///   for (...) {
///     if (ticker.Due()) BAGALG_RETURN_IF_ERROR(ticker.Flush());
///     ...
///   }
class CheckpointTicker {
 public:
  /// Binds the ambient governor; `bytes_per_tick` is charged for every
  /// Due() call at the next Flush.
  explicit CheckpointTicker(uint64_t bytes_per_tick = 0)
      : CheckpointTicker(internal::g_current_governor, bytes_per_tick) {}
  CheckpointTicker(ResourceGovernor* governor, uint64_t bytes_per_tick)
      : governor_(governor),
        bytes_per_tick_(bytes_per_tick),
        countdown_(governor == nullptr ? kUngovernedCountdown
                                       : kCheckpointStride) {}

  /// Records one iteration; true when the stride boundary was reached and
  /// Flush() must run. One decrement and one predictable branch.
  bool Due() { return --countdown_ == 0; }

  /// Charges the iterations since the last flush and checks immediately
  /// (stride boundaries, loop epilogues, before committing chunk output).
  Status Flush() {
    if (governor_ == nullptr) {
      countdown_ = kUngovernedCountdown;
      return Status::Ok();
    }
    const uint64_t ticks = kCheckpointStride - countdown_;
    countdown_ = kCheckpointStride;
    if (ticks != 0 && bytes_per_tick_ != 0) {
      governor_->AccountBytes(ticks * bytes_per_tick_);
    }
    return governor_->Check();
  }

  bool active() const { return governor_ != nullptr; }

 private:
  static constexpr uint64_t kUngovernedCountdown = ~uint64_t{0};

  ResourceGovernor* governor_;
  uint64_t bytes_per_tick_;
  uint64_t countdown_;
};

/// Batched sibling of CheckpointTicker for batch-at-a-time executors (the
/// IR engine's vectorized pipelines): one OnBatch(n) call per produced
/// batch replaces n per-row Due() calls. Byte accounting is *identical* to
/// per-row ticking followed by a final Flush — every processed item charges
/// exactly bytes_per_item, no more, no less — a property pinned by a paired
/// test in tests/ir_test.cc. Amortization works the other way around from
/// the per-row ticker: instead of counting iterations down to a stride
/// boundary, items accumulate until at least kCheckpointStride are pending,
/// then one AccountBytes + Check covers them all. A 1024-row batch
/// therefore pays at most three branch-predictable compares and one
/// governor check — the per-row engine pays 1024 decrements for the same
/// work.
class BatchCheckpointTicker {
 public:
  /// Binds the ambient governor; `bytes_per_item` is charged for every item
  /// reported through OnBatch.
  explicit BatchCheckpointTicker(uint64_t bytes_per_item = 0)
      : BatchCheckpointTicker(internal::g_current_governor, bytes_per_item) {}
  BatchCheckpointTicker(ResourceGovernor* governor, uint64_t bytes_per_item)
      : governor_(governor), bytes_per_item_(bytes_per_item) {}

  /// Records `items` processed iterations; checks the governor once the
  /// accumulated count reaches the stride. The common full-batch case runs
  /// exactly one check per batch.
  Status OnBatch(uint64_t items) {
    if (governor_ == nullptr) return Status::Ok();
    pending_ += items;
    if (pending_ < kCheckpointStride) return Status::Ok();
    return Flush();
  }

  /// Charges all pending items and checks immediately (loop epilogues, and
  /// whenever a batch boundary must observe a trip promptly).
  Status Flush() {
    if (governor_ == nullptr) return Status::Ok();
    const uint64_t items = pending_;
    pending_ = 0;
    if (items != 0 && bytes_per_item_ != 0) {
      governor_->AccountBytes(items * bytes_per_item_);
    }
    return governor_->Check();
  }

  bool active() const { return governor_ != nullptr; }

 private:
  ResourceGovernor* governor_;
  uint64_t bytes_per_item_;
  uint64_t pending_ = 0;
};

}  // namespace bagalg

#endif  // BAGALG_UTIL_GOVERNOR_H_
