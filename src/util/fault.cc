#include "src/util/fault.h"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <mutex>
#include <string>

#include "src/util/strings.h"

namespace bagalg::fault {
namespace {

// Armed state. `g_armed` gates the hot path with one relaxed load; the spec
// fields are only written while no query is running (Configure/Disarm are
// test/startup entry points), published with release/acquire through
// g_armed.
std::atomic<bool> g_armed{false};
FaultSpec g_spec;

std::atomic<uint64_t> g_events{0};
std::atomic<uint64_t> g_fires{0};
std::once_flag g_env_once;

// splitmix64: the per-event verdict in probabilistic mode is a pure
// function of (seed, event index), so a given arming reproduces exactly,
// independent of thread interleaving.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void LoadFromEnvironment() {
  const char* env = std::getenv("BAGALG_FAULT");
  if (env == nullptr || *env == '\0') return;
  Result<FaultSpec> parsed = FaultSpec::Parse(env);
  // A malformed BAGALG_FAULT silently disarms rather than aborting: fault
  // injection is a test facility and must never take down a production
  // process that inherited a stray variable.
  if (parsed.ok()) Configure(*parsed);
}

void EnsureEnvLoaded() { std::call_once(g_env_once, LoadFromEnvironment); }

// Exception-free numeric parsing in the style of the lang lexer: the whole
// string must be consumed.
bool ParseUint64(const std::string& text, uint64_t* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

// Records one event on `point`'s stream and decides whether the armed
// fault fires on it. On fire, `*fired_index` (when non-null) receives the
// event's global index so callers can derive further deterministic choices
// (the io stream hashes it again to pick short-vs-hard).
bool ShouldFail(FaultPoint point, uint64_t* fired_index = nullptr) {
  if (!g_armed.load(std::memory_order_acquire)) return false;
  if (g_spec.point != point) return false;
  const uint64_t index = g_events.fetch_add(1, std::memory_order_relaxed);
  bool fire;
  if (g_spec.probability > 0.0) {
    // Map the hash to [0, 1) and compare; exactly reproducible for a given
    // (seed, index) pair on every platform with IEEE doubles.
    const uint64_t h = SplitMix64(g_spec.seed ^ index);
    fire = static_cast<double>(h) <
           g_spec.probability * 18446744073709551616.0;  // 2^64
  } else {
    fire = index == g_spec.after;
  }
  if (fire) {
    g_fires.fetch_add(1, std::memory_order_relaxed);
    if (fired_index != nullptr) *fired_index = index;
  }
  return fire;
}

}  // namespace

Result<FaultSpec> FaultSpec::Parse(std::string_view text) {
  FaultSpec spec;
  const std::vector<std::string> parts = SplitString(text, ':');
  if (parts.empty() || parts[0].empty()) {
    return Status::ParseError("empty fault spec");
  }
  if (parts[0] == "alloc") {
    spec.point = FaultPoint::kAlloc;
  } else if (parts[0] == "checkpoint") {
    spec.point = FaultPoint::kCheckpoint;
  } else if (parts[0] == "io") {
    spec.point = FaultPoint::kIo;
  } else {
    return Status::ParseError("unknown fault point '" + parts[0] +
                              "' (expected 'alloc', 'checkpoint', or 'io')");
  }
  bool have_mode = false;
  for (size_t i = 1; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    const size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == part.size()) {
      return Status::ParseError("malformed fault option '" + part +
                                "' (expected key=value)");
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (key == "after") {
      if (!ParseUint64(value, &spec.after)) {
        return Status::ParseError("bad fault option value '" + part + "'");
      }
      have_mode = true;
    } else if (key == "p") {
      if (!ParseDouble(value, &spec.probability)) {
        return Status::ParseError("bad fault option value '" + part + "'");
      }
      if (spec.probability <= 0.0 || spec.probability > 1.0) {
        return Status::ParseError("fault probability must be in (0, 1]");
      }
      have_mode = true;
    } else if (key == "seed") {
      if (!ParseUint64(value, &spec.seed)) {
        return Status::ParseError("bad fault option value '" + part + "'");
      }
    } else {
      return Status::ParseError("unknown fault option '" + key + "'");
    }
  }
  if (!have_mode) {
    return Status::ParseError(
        "fault spec needs 'after=N' or 'p=F' (e.g. \"alloc:after=10\")");
  }
  return spec;
}

void Configure(const FaultSpec& spec) {
  g_armed.store(false, std::memory_order_release);
  g_spec = spec;
  g_events.store(0, std::memory_order_relaxed);
  g_fires.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void Disarm() {
  // Mark the env as consumed so a later Enabled() does not resurrect it.
  std::call_once(g_env_once, [] {});
  g_armed.store(false, std::memory_order_release);
}

bool Enabled() {
  EnsureEnvLoaded();
  return g_armed.load(std::memory_order_acquire);
}

uint64_t EventCount() { return g_events.load(std::memory_order_relaxed); }
uint64_t FireCount() { return g_fires.load(std::memory_order_relaxed); }

bool ShouldFailAlloc() {
  EnsureEnvLoaded();
  return ShouldFail(FaultPoint::kAlloc);
}

bool ShouldFailCheckpoint() {
  EnsureEnvLoaded();
  return ShouldFail(FaultPoint::kCheckpoint);
}

IoFaultKind InjectIoFault() {
  EnsureEnvLoaded();
  uint64_t index = 0;
  if (!ShouldFail(FaultPoint::kIo, &index)) return IoFaultKind::kNone;
  // A second, salted hash of the same index decides the disturbance, so
  // short-vs-hard is as reproducible as the firing decision itself. The
  // salt keeps this draw independent of the firing draw (which already
  // consumed SplitMix64(seed ^ index)).
  constexpr uint64_t kKindSalt = 0x9e3779b97f4a7c15ULL;
  const uint64_t h = SplitMix64(g_spec.seed ^ index ^ kKindSalt);
  return (h & 1) != 0 ? IoFaultKind::kShort : IoFaultKind::kError;
}

}  // namespace bagalg::fault
