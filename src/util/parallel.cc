#include "src/util/parallel.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "src/util/governor.h"

namespace bagalg {

namespace {

// Set while the current thread is executing a pool task; nested parallel
// sections detect it and run inline so the pool cannot deadlock on itself.
thread_local bool tls_in_pool_worker = false;

std::atomic<uint64_t> g_tasks_spawned{0};
std::atomic<uint64_t> g_parallel_dispatches{0};
std::atomic<uint64_t> g_serial_dispatches{0};

unsigned ThreadsFromEnvironment() {
  const char* env = std::getenv("BAGALG_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) return 0;
  return static_cast<unsigned>(v);
}

unsigned ResolveThreadCount(unsigned requested) {
  if (requested == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return requested;
}

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;          // guarded by g_global_mu
std::atomic<ThreadPool*> g_global_pool_ptr{nullptr};  // lock-free fast read

// Registered ambient-context hooks. Static storage + atomic pointer: the
// pointer is zero-initialized before any dynamic initialization runs, so a
// registrar object in another translation unit can install hooks safely no
// matter the TU initialization order.
BatchContextHooks g_batch_hooks_storage;
std::atomic<const BatchContextHooks*> g_batch_hooks{nullptr};

}  // namespace

void SetBatchContextHooks(const BatchContextHooks& hooks) {
  g_batch_hooks_storage = hooks;
  g_batch_hooks.store(&g_batch_hooks_storage, std::memory_order_release);
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable_any cv_work;
  std::condition_variable cv_done;
  // One batch at a time; Run holds run_mu for the batch's duration.
  std::mutex run_mu;

  // Current batch, guarded by mu except for the lock-free index counter.
  const std::function<void(size_t)>* task = nullptr;
  // The dispatching caller's ambient governor, re-installed on each worker
  // for the batch's duration so kernel checkpoints inside pool tasks see
  // the same per-query budget as the caller.
  ResourceGovernor* governor = nullptr;
  // The caller's captured ambient context (opaque; owned by Run) plus the
  // hooks to install it with, null when there is nothing to propagate.
  const BatchContextHooks* hooks = nullptr;
  void* context = nullptr;
  size_t total = 0;
  std::atomic<size_t> next{0};
  size_t finished = 0;
  uint64_t generation = 0;

  std::vector<std::jthread> workers;

  void WorkerLoop(std::stop_token stop) {
    tls_in_pool_worker = true;
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      cv_work.wait(lock, stop, [&] { return generation != seen; });
      if (stop.stop_requested()) return;
      seen = generation;
      const std::function<void(size_t)>* batch_task = task;
      ResourceGovernor* batch_governor = governor;
      const BatchContextHooks* batch_hooks = hooks;
      void* batch_context = context;
      const size_t batch_total = total;
      lock.unlock();
      size_t done_here = 0;
      {
        GovernorScope scope(batch_governor);
        // Enter the propagated context lazily, on the first claimed task: a
        // straggler that wakes after the batch drained must not touch
        // `batch_context` (Run may have released it already), and Run cannot
        // finish while a task this worker claimed is still incomplete.
        void* token = nullptr;
        bool entered = false;
        while (true) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= batch_total) break;
          if (batch_hooks != nullptr && !entered) {
            token = batch_hooks->enter(batch_context);
            entered = true;
          }
          (*batch_task)(i);
          ++done_here;
        }
        if (entered) batch_hooks->exit(token);
      }
      lock.lock();
      finished += done_here;
      if (finished >= batch_total) cv_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(const ParallelOptions& options)
    : impl_(new Impl), options_(options) {
  workers_wanted_ = ResolveThreadCount(options.threads);
  // The calling thread participates in every batch, so spawn one fewer
  // worker than the requested parallelism.
  for (unsigned i = 1; i < workers_wanted_; ++i) {
    impl_->workers.emplace_back(
        [impl = impl_](std::stop_token stop) { impl->WorkerLoop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : impl_->workers) w.request_stop();
  {
    // Wake everyone so stop is observed promptly.
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->cv_work.notify_all();
  }
  impl_->workers.clear();  // joins
  delete impl_;
}

ThreadPool& ThreadPool::Global() {
  ThreadPool* fast = g_global_pool_ptr.load(std::memory_order_acquire);
  if (fast != nullptr) return *fast;
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool == nullptr) {
    ParallelOptions options;
    options.threads = ThreadsFromEnvironment();
    g_global_pool.reset(new ThreadPool(options));
    g_global_pool_ptr.store(g_global_pool.get(), std::memory_order_release);
  }
  return *g_global_pool;
}

void ThreadPool::Configure(const ParallelOptions& options) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_pool_ptr.store(nullptr, std::memory_order_release);
  g_global_pool.reset();  // join old workers before spawning new ones
  g_global_pool.reset(new ThreadPool(options));
  g_global_pool_ptr.store(g_global_pool.get(), std::memory_order_release);
}

ParallelStats ThreadPool::Stats() {
  ParallelStats s;
  s.tasks_spawned = g_tasks_spawned.load(std::memory_order_relaxed);
  s.parallel_dispatches = g_parallel_dispatches.load(std::memory_order_relaxed);
  s.serial_dispatches = g_serial_dispatches.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& task) {
  if (n == 0) return;
  const bool have_workers = !impl_->workers.empty();
  std::unique_lock<std::mutex> batch(impl_->run_mu, std::defer_lock);
  // Serial fallbacks: a serial pool, a trivial batch, a nested section on a
  // worker thread, or a batch already in flight from another caller.
  if (!have_workers || n == 1 || tls_in_pool_worker || !batch.try_lock()) {
    g_serial_dispatches.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) task(i);
    return;
  }
  g_parallel_dispatches.fetch_add(1, std::memory_order_relaxed);
  g_tasks_spawned.fetch_add(n, std::memory_order_relaxed);
  // Capture the caller's ambient context (tracer scope etc.) for the
  // workers; the caller itself already carries it in its own TLS.
  const BatchContextHooks* hooks =
      g_batch_hooks.load(std::memory_order_acquire);
  void* context =
      hooks != nullptr && hooks->capture != nullptr ? hooks->capture() : nullptr;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->task = &task;
    impl_->governor = CurrentGovernor();
    impl_->hooks = context != nullptr ? hooks : nullptr;
    impl_->context = context;
    impl_->total = n;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->finished = 0;
    ++impl_->generation;
    impl_->cv_work.notify_all();
  }
  // The caller pulls tasks alongside the workers.
  size_t done_here = 0;
  while (true) {
    size_t i = impl_->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    task(i);
    ++done_here;
  }
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->finished += done_here;
  impl_->cv_done.wait(lock, [&] { return impl_->finished >= n; });
  impl_->task = nullptr;
  impl_->governor = nullptr;
  impl_->hooks = nullptr;
  impl_->context = nullptr;
  lock.unlock();
  // Workers are done with the batch once finished >= n, so the captured
  // context can be freed here.
  if (context != nullptr) hooks->release(context);
}

size_t ParallelChunkCount(size_t n, size_t grain) {
  ThreadPool& pool = ThreadPool::Global();
  const unsigned p = pool.parallelism();
  if (p <= 1 || tls_in_pool_worker) return 1;
  const size_t g = grain != 0 ? grain : pool.grain();
  if (g == 0 || n < 2 * g) return 1;
  // Mild oversubscription: tasks are pulled from a shared counter, so more
  // chunks than threads self-balances without work stealing.
  const size_t cap = static_cast<size_t>(p) * 4;
  const size_t want = n / g;
  return want < cap ? want : cap;
}

}  // namespace bagalg
