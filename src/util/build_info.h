#ifndef BAGALG_UTIL_BUILD_INFO_H_
#define BAGALG_UTIL_BUILD_INFO_H_

/// \file build_info.h
/// The one place that knows what binary this is.
///
/// Every operator-facing surface that identifies the build — the REPL
/// banner, bagalgd's /healthz endpoint, and the query-journal header line —
/// renders the same BuildInfo, so "which build produced this artifact?" has
/// exactly one answer. The git SHA and build type are baked in by CMake at
/// configure time (see src/util/CMakeLists.txt); a source tree configured
/// outside git reports "unknown". The SHA is captured when CMake runs, so
/// an incremental build after new commits can lag until the next
/// reconfigure — an accepted tradeoff for keeping the build graph free of
/// always-dirty steps.

#include <string>

namespace bagalg {

/// Identity of this binary.
struct BuildInfo {
  /// bagalg release version (bumped by hand, not derived from git).
  std::string version;
  /// Abbreviated git commit SHA at configure time, or "unknown".
  std::string git_sha;
  /// CMAKE_BUILD_TYPE at configure time (e.g. "RelWithDebInfo").
  std::string build_type;
};

/// The baked-in identity of this binary.
const BuildInfo& GetBuildInfo();

/// One-line human rendering: "bagalg VERSION (SHA, BUILD_TYPE)".
std::string BuildInfoString();

/// The same fields as a JSON object fragment:
/// {"version":"...","git_sha":"...","build_type":"..."}. The values are
/// build-system-controlled identifiers (no quotes/control characters), so
/// no escaping is needed and util stays free of a JSON dependency.
std::string BuildInfoJson();

}  // namespace bagalg

#endif  // BAGALG_UTIL_BUILD_INFO_H_
