#ifndef BAGALG_UTIL_STATUS_H_
#define BAGALG_UTIL_STATUS_H_

/// \file status.h
/// Error-handling primitives used across all bagalg public APIs.
///
/// bagalg does not throw exceptions across library boundaries. Fallible
/// operations return a Status (or a Result<T>, see result.h) in the style of
/// production database engines (RocksDB, Arrow): the caller inspects the
/// code and message, and composes propagation with the BAGALG_RETURN_IF_ERROR
/// macro.

#include <ostream>
#include <string>
#include <utility>

namespace bagalg {

/// Canonical error codes. The set is intentionally small; the message carries
/// the detail.
enum class StatusCode {
  kOk = 0,
  /// Malformed input to an API (e.g. a monus on bags of different types).
  kInvalidArgument,
  /// A well-formed expression failed static type checking.
  kTypeError,
  /// Evaluation exceeded a Limits budget (powerset width, bag size, steps).
  kResourceExhausted,
  /// A name (input bag, variable, atom) was not found.
  kNotFound,
  /// Text could not be parsed as a value, type, or expression.
  kParseError,
  /// An operation is not supported in the requested fragment (e.g. P in
  /// BALG1) or not implemented for the given configuration.
  kUnsupported,
  /// A query was *refused before evaluation* because static analysis proved
  /// its estimated output size exceeds the caller's CostBudget. Distinct from
  /// kResourceExhausted: nothing was computed; the refusal is a planning
  /// decision, not a runtime failure.
  kBudgetExceeded,
  /// A running query crossed its ResourceGovernor wall-clock deadline and
  /// was torn down cooperatively at a checkpoint (see util/governor.h).
  /// Distinct from kResourceExhausted (a space budget) and kBudgetExceeded
  /// (an admission-time refusal): work was done, then time ran out.
  kDeadlineExceeded,
  /// A running query was cancelled through a CancellationToken (Ctrl-C in
  /// the REPL, a client disconnect, a fault-injection trip). The session
  /// that issued the query remains usable.
  kCancelled,
  /// The service cannot take the work *right now*: the server shed the
  /// request from a full admission queue, is draining for shutdown, or an
  /// I/O path failed transiently (injected or real short read / disconnect
  /// / accept failure). Nothing about the request itself is wrong — the
  /// canonical retryable code.
  kUnavailable,
  /// An internal invariant was violated; indicates a bug in bagalg itself.
  kInternal,
};

/// Human-readable name of a StatusCode (e.g. "TypeError").
const char* StatusCodeName(StatusCode code);

/// Retryability contract. A code is *retryable* when re-issuing the exact
/// same request later can plausibly succeed because the failure was a
/// property of the moment, not of the request:
///
///   kDeadlineExceeded  load-dependent: the same query may finish within
///                      its deadline on a quieter server
///   kCancelled         someone tore the query down mid-flight (Ctrl-C,
///                      client disconnect, drain); the query itself is fine
///   kUnavailable       admission-control shedding, drain, transient I/O
///
/// Every other code is *permanent*: type errors, parse errors, unsupported
/// operations, and kBudgetExceeded / kResourceExhausted describe the
/// request (its text, its statically provable cost, its memory appetite
/// under the configured cap) and will fail identically on retry. Clients —
/// in particular bagalgd's HTTP layer, which derives status codes and
/// Retry-After headers from this predicate — must not retry permanent
/// errors, and may retry retryable ones with backoff.
bool IsRetryable(StatusCode code);

/// A success-or-error outcome. Cheap to copy on the success path (no
/// allocation); error path carries a message string.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers mirroring the StatusCode enumerators.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status BudgetExceeded(std::string msg) {
    return Status(StatusCode::kBudgetExceeded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The error (or kOk) code.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// True iff retrying the same request later can plausibly succeed (see
  /// IsRetryable(StatusCode) for the contract). False for OK.
  bool IsRetryable() const { return bagalg::IsRetryable(code_); }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates an error Status from the current function. The temporary's
/// name is line-unique so uses may nest (e.g. inside a lambda argument of
/// another invocation) without -Wshadow tripping.
#define BAGALG_STATUS_CONCAT_INNER(a, b) a##b
#define BAGALG_STATUS_CONCAT(a, b) BAGALG_STATUS_CONCAT_INNER(a, b)
#define BAGALG_RETURN_IF_ERROR(expr)                                       \
  do {                                                                     \
    ::bagalg::Status BAGALG_STATUS_CONCAT(_bagalg_st_, __LINE__) = (expr); \
    if (!BAGALG_STATUS_CONCAT(_bagalg_st_, __LINE__).ok()) {               \
      return BAGALG_STATUS_CONCAT(_bagalg_st_, __LINE__);                  \
    }                                                                      \
  } while (0)

}  // namespace bagalg

#endif  // BAGALG_UTIL_STATUS_H_
