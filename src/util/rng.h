#ifndef BAGALG_UTIL_RNG_H_
#define BAGALG_UTIL_RNG_H_

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All randomized tests, property suites and the asymptotic-probability
/// experiments (paper, Example 4.2) use this generator so runs are exactly
/// reproducible from a seed. The core is splitmix64, which has excellent
/// statistical behaviour for the modest demands here and no global state.

#include <cstdint>

namespace bagalg {

/// A small, fast, seedable PRNG (splitmix64).
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    // Modulo bias is negligible for the bounds used (<< 2^32).
    return Next() % bound;
  }

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool Coin(double p = 0.5) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Derives an independent child generator (for parallel streams).
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ull); }

 private:
  uint64_t state_;
};

}  // namespace bagalg

#endif  // BAGALG_UTIL_RNG_H_
