#include "src/util/status.h"

namespace bagalg {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kBudgetExceeded:
      return "BudgetExceeded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

bool IsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kUnavailable:
      return true;
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kTypeError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kNotFound:
    case StatusCode::kParseError:
    case StatusCode::kUnsupported:
    case StatusCode::kBudgetExceeded:
    case StatusCode::kInternal:
      return false;
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace bagalg
