#ifndef BAGALG_UTIL_BIGNAT_H_
#define BAGALG_UTIL_BIGNAT_H_

/// \file bignat.h
/// Arbitrary-precision natural numbers.
///
/// BALG multiplicities explode hyperexponentially under iterated powerset /
/// bag-destroy chains (paper, Proposition 3.2): (deltaP)^i produces counts
/// exponential in the input and (delta delta P P)^i produces hyper(i+1)
/// counts. A 64-bit counter overflows immediately on the workloads of
/// bench_prop32_explosion, so multiplicities are BigNat throughout the
/// engine.
///
/// Representation: a value below 2^64 lives inline in a single uint64_t and
/// never touches the heap — the overwhelmingly common case on real bags,
/// where counts are small and only the explosion experiments escape machine
/// range. Values >= 2^64 spill to a normalized little-endian vector of
/// 32-bit limbs ("the slow path"); arithmetic is schoolbook there, which is
/// ample for the limb counts the experiments reach. Every operation
/// canonicalizes its result (inline iff < 2^64), so equality and hashing
/// never need to reconcile the two forms.

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace bagalg {

/// An immutable-in-interface, arbitrary-precision natural number.
class BigNat {
 public:
  /// Zero.
  BigNat() = default;
  /// From a machine integer.
  BigNat(uint64_t v) : small_(v) {}  // NOLINT(google-explicit-constructor):
                                     // numeric literal ergonomics;
                                     // multiplicities are written inline in
                                     // tests and benches throughout.

  /// Parses a non-empty decimal string of digits. Leading zeros allowed.
  static Result<BigNat> FromDecimal(std::string_view text);

  /// 2^exp.
  static BigNat TwoPow(uint64_t exp);
  /// base^exp by square-and-multiply.
  static BigNat Pow(const BigNat& base, uint64_t exp);

  bool IsZero() const { return small_ == 0 && limbs_.empty(); }
  bool IsOne() const { return small_ == 1 && limbs_.empty(); }

  /// Number of significant bits (0 for zero).
  size_t BitLength() const;
  /// Number of decimal digits (1 for zero).
  size_t DecimalDigits() const;

  /// True iff the value fits in uint64_t.
  bool FitsUint64() const { return limbs_.empty(); }
  /// True iff the value is held in the inline uint64_t fast path (no heap).
  /// Canonicalization makes this equivalent to FitsUint64(); exposed
  /// separately for the fast-path tests and metrics.
  bool IsInlined() const { return limbs_.empty(); }
  /// The value as uint64_t; error if it does not fit.
  Result<uint64_t> ToUint64() const;
  /// The value as a double (may lose precision; +inf on huge values).
  double ToDouble() const;

  /// Decimal rendering.
  std::string ToString() const;

  /// Three-way comparison: negative, zero, positive.
  int Compare(const BigNat& other) const;

  BigNat operator+(const BigNat& other) const;
  /// Truncated ("monus") subtraction: max(0, *this - other). This is the
  /// subtraction semantics of the paper's bag difference.
  BigNat MonusSub(const BigNat& other) const;
  /// Exact subtraction; error (InvalidArgument) on underflow.
  Result<BigNat> CheckedSub(const BigNat& other) const;
  BigNat operator*(const BigNat& other) const;
  /// Quotient and remainder; error (InvalidArgument) on division by zero.
  struct DivModResult;
  Result<DivModResult> DivMod(const BigNat& divisor) const;

  BigNat& operator+=(const BigNat& other) { return *this = *this + other; }
  BigNat& operator*=(const BigNat& other) { return *this = *this * other; }

  bool operator==(const BigNat& o) const {
    return small_ == o.small_ && limbs_ == o.limbs_;
  }
  bool operator!=(const BigNat& o) const { return !(*this == o); }
  bool operator<(const BigNat& o) const { return Compare(o) < 0; }
  bool operator<=(const BigNat& o) const { return Compare(o) <= 0; }
  bool operator>(const BigNat& o) const { return Compare(o) > 0; }
  bool operator>=(const BigNat& o) const { return Compare(o) >= 0; }

  /// max / min, mirroring the maximal-union / intersection multiplicity
  /// arithmetic of the algebra.
  static const BigNat& Max(const BigNat& a, const BigNat& b) {
    return a >= b ? a : b;
  }
  static const BigNat& Min(const BigNat& a, const BigNat& b) {
    return a <= b ? a : b;
  }

  /// Hash suitable for unordered containers. Identical to hashing the
  /// value's 32-bit limb sequence, so it is representation-independent.
  size_t Hash() const;

  /// The number of 32-bit limbs the value occupies (0 for zero); exposed
  /// for size accounting.
  size_t LimbCount() const;

  /// Cumulative count of arithmetic operations that took the limb-vector
  /// slow path (process-wide; mirrored into the MetricsRegistry by the bag
  /// kernels).
  static uint64_t SlowPathOps();
  static void ResetSlowPathOps();

 private:
  /// Non-owning view of a value's limbs; `buf` backs inline values.
  struct LimbSpan {
    const uint32_t* data;
    size_t size;
  };
  LimbSpan Span(uint32_t (&buf)[2]) const;

  /// Wraps a raw limb vector: trims leading zeros and demotes to the inline
  /// form when the value fits uint64, restoring the canonical invariant.
  static BigNat FromLimbVector(std::vector<uint32_t> limbs);

  /// Moves the inline value into limbs_ (slow-path entry).
  void PromoteToLimbs();

  /// Divides in place by a small divisor, returning the remainder.
  uint32_t DivSmallInPlace(uint32_t divisor);
  /// Multiplies in place by small value and adds small addend.
  void MulAddSmallInPlace(uint32_t mul, uint32_t add);

  // Canonical invariant: limbs_ is empty iff the value is < 2^64, in which
  // case small_ holds it. Otherwise limbs_ is the little-endian 32-bit limb
  // form (>= 3 limbs, top limb nonzero) and small_ is 0.
  uint64_t small_ = 0;
  std::vector<uint32_t> limbs_;
};

/// Quotient/remainder pair returned by BigNat::DivMod.
struct BigNat::DivModResult {
  BigNat quotient;
  BigNat remainder;
};

std::ostream& operator<<(std::ostream& os, const BigNat& n);

}  // namespace bagalg

#endif  // BAGALG_UTIL_BIGNAT_H_
