#ifndef BAGALG_UTIL_PARALLEL_H_
#define BAGALG_UTIL_PARALLEL_H_

/// \file parallel.h
/// A small, deterministic thread pool for the bag kernels.
///
/// The semantic core parallelizes three index-space shapes: chunked sorts
/// (Bag::Builder::Build), partitioned double loops (CartesianProduct), and
/// stride-partitioned odometer enumeration (powerset/powerbag). All of them
/// reduce to "run `chunks` independent tasks, then combine the per-chunk
/// results *in chunk index order*" — which is why the pool needs no work
/// stealing and the output of every kernel is bit-identical across thread
/// counts: workers produce independent runs and the single-threaded caller
/// merges them 0,1,2,... regardless of completion order.
///
/// The process-wide pool is configured with ParallelOptions (threads=0 →
/// std::thread::hardware_concurrency(), 1 → fully serial) either in code
/// via ThreadPool::Configure or with the BAGALG_THREADS environment
/// variable, read once at first use. Nested parallel sections (a kernel
/// calling Build inside a pool task) run inline on the worker, so the pool
/// can never deadlock on itself.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <utility>
#include <vector>

namespace bagalg {

/// Knobs for the process-wide pool, in the style of core/limits.h.
struct ParallelOptions {
  /// Worker threads: 0 = hardware_concurrency, 1 = serial (no threads).
  unsigned threads = 0;
  /// Minimum items per task; ParallelFor dispatches serially below 2x this.
  size_t grain = 4096;

  static ParallelOptions Default() { return ParallelOptions{}; }
  static ParallelOptions Serial() { return ParallelOptions{1, 4096}; }
};

/// Cumulative dispatch counters (process-wide, monotonically increasing).
/// The bag kernels mirror these into the MetricsRegistry after each
/// operation (see bag_ops.cc), keeping util free of an obs dependency.
struct ParallelStats {
  uint64_t tasks_spawned = 0;
  uint64_t parallel_dispatches = 0;
  uint64_t serial_dispatches = 0;
};

/// Type-erased propagation of a caller's thread-local ambient context onto
/// pool workers — the same idea as the governor re-installation in
/// WorkerLoop, but for layers above util (the tracer's TraceContext lives in
/// obs, which util must not depend on; obs registers these hooks at load
/// time — see obs/trace.cc).
///
/// Per batch: `capture` runs once on the dispatching thread; a null return
/// means "nothing to propagate" and the remaining hooks are skipped.
/// Otherwise every worker brackets its participation with `enter(captured)`
/// -> token and `exit(token)`, and the dispatcher calls `release(captured)`
/// after the batch completes.
struct BatchContextHooks {
  void* (*capture)() = nullptr;
  void* (*enter)(void* captured) = nullptr;
  void (*exit)(void* token) = nullptr;
  void (*release)(void* captured) = nullptr;
};

/// Installs the process-wide hooks. Expected to be called once, before the
/// first parallel dispatch (a namespace-scope registrar in the obs library
/// does this); later batches pick the new hooks up lock-free.
void SetBatchContextHooks(const BatchContextHooks& hooks);

/// A fixed-size pool of std::jthread workers executing indexed task batches.
class ThreadPool {
 public:
  /// The process-wide instance. First call builds it from BAGALG_THREADS
  /// (or hardware_concurrency when unset).
  static ThreadPool& Global();

  /// Reconfigures the global pool (joins old workers, spawns new ones).
  /// Not safe to call concurrently with running kernels; intended for
  /// start-up, benches, and the determinism tests.
  static void Configure(const ParallelOptions& options);

  /// Worker threads available including the calling thread (>= 1).
  unsigned parallelism() const { return workers_wanted_; }
  size_t grain() const { return options_.grain; }

  /// Runs task(0) .. task(n-1) and blocks until all complete. The calling
  /// thread participates. Tasks must be independent; any ordering of
  /// execution must yield the same combined result (the kernels guarantee
  /// this by combining per-task outputs in index order afterwards).
  /// Falls back to a serial in-place loop when the pool is serial, the
  /// batch is trivial, or the caller is itself a pool worker.
  void Run(size_t n, const std::function<void(size_t)>& task);

  /// Snapshot of the cumulative dispatch counters.
  static ParallelStats Stats();

  ~ThreadPool();

 private:
  explicit ThreadPool(const ParallelOptions& options);

  struct Impl;
  Impl* impl_;
  ParallelOptions options_;
  unsigned workers_wanted_ = 1;
};

/// Number of chunks ParallelFor would split `n` items into under the global
/// pool's configuration (always >= 1; 1 means a serial dispatch).
size_t ParallelChunkCount(size_t n, size_t grain = 0);

/// Splits [0, n) into contiguous chunks of at least `grain` items (global
/// pool grain when 0) and invokes body(begin, end, chunk_index) for each,
/// possibly concurrently. Returns the number of chunks used. Deterministic
/// chunk boundaries: chunk c covers [c*size, min((c+1)*size, n)).
template <typename Body>
size_t ParallelFor(size_t n, size_t grain, Body&& body) {
  if (n == 0) return 0;
  const size_t chunks = ParallelChunkCount(n, grain);
  if (chunks <= 1) {
    body(size_t{0}, n, size_t{0});
    return 1;
  }
  const size_t per = (n + chunks - 1) / chunks;
  ThreadPool::Global().Run(chunks, [&](size_t c) {
    size_t begin = c * per;
    size_t end = begin + per < n ? begin + per : n;
    if (begin < end) body(begin, end, c);
  });
  return chunks;
}

/// Maps chunks of [0, n) through `map(begin, end, chunk) -> T` in parallel,
/// then folds the per-chunk values **in chunk index order** with
/// `reduce(acc, next) -> T`. Index-ordered reduction is what makes the
/// result independent of scheduling; it is exact for the kernels' uses
/// (vector concatenation, sorted-run merging, status collection).
template <typename T, typename Map, typename Reduce>
T ParallelTransformReduce(size_t n, size_t grain, T init, Map&& map,
                          Reduce&& reduce) {
  if (n == 0) return init;
  const size_t chunks = ParallelChunkCount(n, grain);
  const size_t per = (n + chunks - 1) / chunks;
  std::vector<T> partial(chunks);
  if (chunks <= 1) {
    partial[0] = map(size_t{0}, n, size_t{0});
  } else {
    ThreadPool::Global().Run(chunks, [&](size_t c) {
      size_t begin = c * per;
      size_t end = begin + per < n ? begin + per : n;
      if (begin < end) partial[c] = map(begin, end, c);
    });
  }
  T acc = std::move(init);
  for (T& p : partial) acc = reduce(std::move(acc), std::move(p));
  return acc;
}

}  // namespace bagalg

#endif  // BAGALG_UTIL_PARALLEL_H_
