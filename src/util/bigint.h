#ifndef BAGALG_UTIL_BIGINT_H_
#define BAGALG_UTIL_BIGINT_H_

/// \file bigint.h
/// Signed arbitrary-precision integers (sign–magnitude over BigNat).
///
/// Used by the Proposition 4.1 count analysis, whose polynomials subtract:
/// the coefficients of P_t(n) = P¹_t(n) − P²_t(n) may be negative even
/// though every realized count is a natural number.

#include <ostream>
#include <string>

#include "src/util/bignat.h"

namespace bagalg {

/// A signed arbitrary-precision integer.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  BigInt(int64_t v);  // NOLINT(google-explicit-constructor): literal
                      // ergonomics in polynomial code.
  /// From a natural number (non-negative).
  explicit BigInt(BigNat magnitude)
      : negative_(false), magnitude_(std::move(magnitude)) {}
  /// From sign and magnitude (negative zero normalizes to zero).
  BigInt(bool negative, BigNat magnitude);

  bool IsZero() const { return magnitude_.IsZero(); }
  bool IsNegative() const { return negative_; }
  bool IsPositive() const { return !negative_ && !magnitude_.IsZero(); }
  const BigNat& magnitude() const { return magnitude_; }

  /// The value as a BigNat; InvalidArgument if negative.
  Result<BigNat> ToBigNat() const;

  BigInt operator-() const { return BigInt(!negative_, magnitude_); }
  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const { return *this + (-other); }
  BigInt operator*(const BigInt& other) const;

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }

  /// Three-way comparison.
  int Compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  std::string ToString() const;

 private:
  bool negative_ = false;
  BigNat magnitude_;
};

std::ostream& operator<<(std::ostream& os, const BigInt& n);

}  // namespace bagalg

#endif  // BAGALG_UTIL_BIGINT_H_
