#ifndef BAGALG_UTIL_FAULT_H_
#define BAGALG_UTIL_FAULT_H_

/// \file fault.h
/// Deterministic fault injection for the runtime resource governor.
///
/// The governor (util/governor.h) turns would-be crashes into typed errors,
/// but the abort paths it creates — mid-merge, mid-parallel-combine,
/// mid-powerset-odometer — are exactly the paths ordinary tests never walk.
/// This layer forces them deterministically: a process-wide armed fault
/// fires at the Nth accounting/checkpoint event (or, in probabilistic mode,
/// at a seeded pseudo-random subset of events), so a sweep over N visits
/// every abort site and a sanitizer build proves each one unwinds cleanly.
///
/// Faults are armed either programmatically (tests) or from the
/// BAGALG_FAULT environment variable, read once at first use:
///
///   BAGALG_FAULT="alloc:after=42"          fail the 43rd accounted
///                                          allocation event (0-based)
///   BAGALG_FAULT="checkpoint:after=7"      trip the 8th governor checkpoint
///   BAGALG_FAULT="alloc:p=0.001:seed=9"    fail each allocation event with
///                                          probability 1/1000, decided by a
///                                          seeded hash of the event index
///   BAGALG_FAULT="io:p=0.05:seed=7"        disturb each network I/O event
///                                          (read/write/accept in src/net)
///                                          with probability 1/20
///
/// Event counters are process-global atomics, so exactly one thread observes
/// the Nth event no matter how the work is scheduled ("thread-stable"), and
/// the probabilistic mode derives its verdict purely from (seed, event
/// index), making a given arming reproducible run over run. Faults on the
/// alloc/checkpoint streams only fire underneath an active ResourceGovernor
/// — a process with no governor installed never trips. The io stream models
/// the *network*, which misbehaves whether or not a query is running, so io
/// faults fire whenever armed: every net-layer read, write, and accept
/// consults InjectIoFault, and a fired event is downgraded to either a
/// short transfer (the syscall moves 1 byte, exercising every retry loop)
/// or a hard failure (ECONNRESET-shaped for reads, EPIPE-shaped for writes,
/// a transient refusal for accepts) — the choice is itself a deterministic
/// hash of the event index.

#include <cstdint>
#include <string_view>

#include "src/util/result.h"

namespace bagalg::fault {

/// Which instrumented event stream a fault attaches to.
enum class FaultPoint {
  /// Memory-accounting events (ResourceGovernor::AccountBytes call sites in
  /// core/value.cc, util/bignat.cc, and the kernel tickers).
  kAlloc,
  /// Full governor checkpoints (ResourceGovernor::Check).
  kCheckpoint,
  /// Network I/O events (every read/write/accept in src/net/io.cc). Unlike
  /// the streams above, io faults do not require an active governor.
  kIo,
};

/// How a fired io-stream event disturbs the syscall it landed on.
enum class IoFaultKind {
  /// Not fired: perform the operation normally.
  kNone,
  /// Short transfer: move at most one byte (reads and writes); accepts
  /// treat this as a transient failure, since accept has no short form.
  kShort,
  /// Hard failure: simulated peer disconnect on reads, broken pipe on
  /// writes, transient refusal on accepts.
  kError,
};

/// A parsed fault arming. Exactly one of `after` (one-shot index) or
/// `probability` (per-event chance) is active; `probability > 0` wins.
struct FaultSpec {
  FaultPoint point = FaultPoint::kAlloc;
  /// One-shot mode: fire on the event with this 0-based global index.
  uint64_t after = 0;
  /// Probabilistic mode: per-event firing chance in (0, 1]; 0 = one-shot.
  double probability = 0.0;
  /// Seed for the probabilistic verdict hash.
  uint64_t seed = 0;

  /// Parses the BAGALG_FAULT syntax shown in the file comment.
  static Result<FaultSpec> Parse(std::string_view text);
};

/// Arms `spec`, resetting the event and fire counters. Overrides any arming
/// taken from the environment.
void Configure(const FaultSpec& spec);

/// Disarms fault injection (the environment variable is not re-read).
void Disarm();

/// True iff a fault is currently armed (reads BAGALG_FAULT on first call).
bool Enabled();

/// Total events observed / faults fired since the last Configure/Disarm.
uint64_t EventCount();
uint64_t FireCount();

/// Governor-internal hooks: record one event on the given stream and return
/// true iff the armed fault fires on it. Cheap no-ops when disarmed.
bool ShouldFailAlloc();
bool ShouldFailCheckpoint();

/// Net-layer hook: records one event on the io stream and returns the
/// injected disturbance (kNone when disarmed or the event did not fire).
/// The kind of a fired event is a pure function of (seed, event index), so
/// a given arming reproduces the same fault schedule run over run.
IoFaultKind InjectIoFault();

}  // namespace bagalg::fault

#endif  // BAGALG_UTIL_FAULT_H_
