#include "src/ir/ir.h"

#include <utility>

namespace bagalg::ir {

const char* IrKindName(IrKind kind) {
  switch (kind) {
    case IrKind::kScan:
      return "scan";
    case IrKind::kUnionAll:
      return "union_all";
    case IrKind::kCrossJoin:
      return "cross_join";
    case IrKind::kHashJoin:
      return "hash_join";
    case IrKind::kMerge:
      return "merge";
    case IrKind::kDupElim:
      return "dup_elim";
    case IrKind::kBridge:
      return "bridge";
  }
  return "?";
}

std::string Stage::ToString() const {
  switch (kind) {
    case StageKind::kFilter:
      return "filter " + program.ToString() + " == " + rhs.ToString();
    case StageKind::kProject:
      return "project " + program.ToString();
  }
  return "?";
}

size_t CountFusedStages(const IrNode& node) {
  size_t total = node.stages.size();
  for (const auto& child : node.children) total += CountFusedStages(*child);
  return total;
}

std::unique_ptr<IrNode> IrNode::Clone() const {
  auto copy = std::make_unique<IrNode>(kind);
  copy->scan_name = scan_name;
  copy->scan_bag = scan_bag;
  copy->probe_arity = probe_arity;
  copy->probe_key = probe_key;
  copy->build_key = build_key;
  copy->merge_kind = merge_kind;
  copy->stages = stages;
  copy->cost_note = cost_note;
  copy->est_rows = est_rows;
  copy->cse_shared = cse_shared;
  copy->cse_key = cse_key;
  copy->origin = origin;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

namespace {

bool StageEquals(const Stage& a, const Stage& b) {
  if (a.kind != b.kind) return false;
  // Program identity via the symbolic rendering: it covers instructions and
  // constants, and two programs that render identically run identically.
  if (a.program.ToString() != b.program.ToString()) return false;
  if (a.kind == StageKind::kFilter && a.rhs.ToString() != b.rhs.ToString()) {
    return false;
  }
  return true;
}

}  // namespace

bool IrEquals(const IrNode& a, const IrNode& b) {
  if (a.kind != b.kind || a.children.size() != b.children.size() ||
      a.stages.size() != b.stages.size()) {
    return false;
  }
  if (a.kind == IrKind::kScan &&
      (a.scan_name != b.scan_name || !(a.scan_bag == b.scan_bag))) {
    return false;
  }
  if (a.probe_arity != b.probe_arity || a.probe_key != b.probe_key ||
      a.build_key != b.build_key || a.merge_kind != b.merge_kind ||
      a.cse_shared != b.cse_shared || a.cse_key != b.cse_key) {
    return false;
  }
  if (a.kind == IrKind::kBridge &&
      a.origin.ToString() != b.origin.ToString()) {
    return false;
  }
  for (size_t i = 0; i < a.stages.size(); ++i) {
    if (!StageEquals(a.stages[i], b.stages[i])) return false;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!IrEquals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

namespace {

const char* MergeKindName(exec::MergeKind kind) {
  switch (kind) {
    case exec::MergeKind::kMonus:
      return "monus";
    case exec::MergeKind::kMaxUnion:
      return "umax";
    case exec::MergeKind::kIntersect:
      return "inter";
  }
  return "?";
}

void RenderNode(const IrNode& node, size_t depth, const std::string& role,
                const IrNodeAnnotator& annotate, std::string* out) {
  out->append(2 * depth, ' ');
  if (!role.empty()) {
    out->append(role);
    out->append(": ");
  }
  out->append(IrKindName(node.kind));
  switch (node.kind) {
    case IrKind::kScan:
      out->append(" ");
      out->append(node.scan_name);
      break;
    case IrKind::kHashJoin:
      out->append(" a" + std::to_string(node.probe_key) + " == b" +
                  std::to_string(node.build_key));
      break;
    case IrKind::kMerge:
      out->append(" ");
      out->append(MergeKindName(node.merge_kind));
      break;
    case IrKind::kBridge:
      if (node.origin.IsValid()) {
        out->append(" [volcano: " + node.origin.ToString() + "]");
      }
      break;
    default:
      break;
  }
  if (node.cse_shared) out->append(" [shared]");
  if (node.est_rows.has_value()) {
    out->append(" ~" + std::to_string(*node.est_rows) + " rows");
  }
  if (!node.cost_note.empty()) {
    out->append(" : ");
    out->append(node.cost_note);
  }
  if (annotate) {
    std::string extra = annotate(node);
    if (!extra.empty()) {
      out->append(" ");
      out->append(extra);
    }
  }
  out->append("\n");
  for (const Stage& stage : node.stages) {
    out->append(2 * depth + 2, ' ');
    out->append("| ");
    out->append(stage.ToString());
    out->append("\n");
  }
  const bool join =
      node.kind == IrKind::kCrossJoin || node.kind == IrKind::kHashJoin;
  for (size_t i = 0; i < node.children.size(); ++i) {
    std::string child_role;
    if (join) child_role = i == 0 ? "probe" : "build";
    RenderNode(*node.children[i], depth + 1, child_role, annotate, out);
  }
}

}  // namespace

std::string ExplainIrPlan(const IrPlan& plan, const IrNodeAnnotator& annotate) {
  std::string out = "ir plan: batch=" + std::to_string(plan.batch_size) +
                    " fused_stages=" +
                    std::to_string(plan.root ? CountFusedStages(*plan.root)
                                             : 0);
  if (plan.passes.hash_joins != 0) {
    out += " hash_joins=" + std::to_string(plan.passes.hash_joins);
  }
  if (plan.passes.filters_pushed != 0) {
    out += " filters_pushed=" + std::to_string(plan.passes.filters_pushed);
  }
  if (plan.passes.projections_pushed != 0) {
    out += " projections_pushed=" +
           std::to_string(plan.passes.projections_pushed);
  }
  if (plan.passes.cse_nodes != 0) {
    out += " shared=" + std::to_string(plan.passes.cse_nodes);
  }
  if (plan.passes.dead_columns != 0) {
    out += " dead_columns=" + std::to_string(plan.passes.dead_columns);
  }
  if (plan.passes.dup_elims_removed != 0) {
    out += " dup_elims_removed=" + std::to_string(plan.passes.dup_elims_removed);
  }
  if (plan.passes.const_folds != 0) {
    out += " const_folds=" + std::to_string(plan.passes.const_folds);
  }
  out += "\n";
  if (!plan.rewrites.empty()) {
    out += "rewrites:";
    for (const std::string& r : plan.rewrites) {
      out += " ";
      out += r;
    }
    out += "\n";
  }
  if (plan.root != nullptr) RenderNode(*plan.root, 0, "", annotate, &out);
  return out;
}

}  // namespace bagalg::ir
