#include "src/ir/ir.h"

#include <utility>

namespace bagalg::ir {

const char* IrKindName(IrKind kind) {
  switch (kind) {
    case IrKind::kScan:
      return "scan";
    case IrKind::kUnionAll:
      return "union_all";
    case IrKind::kCrossJoin:
      return "cross_join";
    case IrKind::kHashJoin:
      return "hash_join";
    case IrKind::kMerge:
      return "merge";
    case IrKind::kDupElim:
      return "dup_elim";
    case IrKind::kBridge:
      return "bridge";
  }
  return "?";
}

std::string Stage::ToString() const {
  switch (kind) {
    case StageKind::kFilter:
      return "filter " + program.ToString() + " == " + rhs.ToString();
    case StageKind::kProject:
      return "project " + program.ToString();
  }
  return "?";
}

size_t CountFusedStages(const IrNode& node) {
  size_t total = node.stages.size();
  for (const auto& child : node.children) total += CountFusedStages(*child);
  return total;
}

namespace {

const char* MergeKindName(exec::MergeKind kind) {
  switch (kind) {
    case exec::MergeKind::kMonus:
      return "monus";
    case exec::MergeKind::kMaxUnion:
      return "umax";
    case exec::MergeKind::kIntersect:
      return "inter";
  }
  return "?";
}

void RenderNode(const IrNode& node, size_t depth, const std::string& role,
                std::string* out) {
  out->append(2 * depth, ' ');
  if (!role.empty()) {
    out->append(role);
    out->append(": ");
  }
  out->append(IrKindName(node.kind));
  switch (node.kind) {
    case IrKind::kScan:
      out->append(" ");
      out->append(node.scan_name);
      break;
    case IrKind::kHashJoin:
      out->append(" a" + std::to_string(node.probe_key) + " == b" +
                  std::to_string(node.build_key));
      break;
    case IrKind::kMerge:
      out->append(" ");
      out->append(MergeKindName(node.merge_kind));
      break;
    case IrKind::kBridge:
      if (node.origin.IsValid()) {
        out->append(" [volcano: " + node.origin.ToString() + "]");
      }
      break;
    default:
      break;
  }
  if (node.cse_shared) out->append(" [shared]");
  if (node.est_rows.has_value()) {
    out->append(" ~" + std::to_string(*node.est_rows) + " rows");
  }
  if (!node.cost_note.empty()) {
    out->append(" : ");
    out->append(node.cost_note);
  }
  out->append("\n");
  for (const Stage& stage : node.stages) {
    out->append(2 * depth + 2, ' ');
    out->append("| ");
    out->append(stage.ToString());
    out->append("\n");
  }
  const bool join =
      node.kind == IrKind::kCrossJoin || node.kind == IrKind::kHashJoin;
  for (size_t i = 0; i < node.children.size(); ++i) {
    std::string child_role;
    if (join) child_role = i == 0 ? "probe" : "build";
    RenderNode(*node.children[i], depth + 1, child_role, out);
  }
}

}  // namespace

std::string ExplainIrPlan(const IrPlan& plan) {
  std::string out = "ir plan: batch=" + std::to_string(plan.batch_size) +
                    " fused_stages=" +
                    std::to_string(plan.root ? CountFusedStages(*plan.root)
                                             : 0);
  if (plan.passes.hash_joins != 0) {
    out += " hash_joins=" + std::to_string(plan.passes.hash_joins);
  }
  if (plan.passes.filters_pushed != 0) {
    out += " filters_pushed=" + std::to_string(plan.passes.filters_pushed);
  }
  if (plan.passes.projections_pushed != 0) {
    out += " projections_pushed=" +
           std::to_string(plan.passes.projections_pushed);
  }
  if (plan.passes.cse_nodes != 0) {
    out += " shared=" + std::to_string(plan.passes.cse_nodes);
  }
  out += "\n";
  if (!plan.rewrites.empty()) {
    out += "rewrites:";
    for (const std::string& r : plan.rewrites) {
      out += " ";
      out += r;
    }
    out += "\n";
  }
  if (plan.root != nullptr) RenderNode(*plan.root, 0, "", &out);
  return out;
}

}  // namespace bagalg::ir
