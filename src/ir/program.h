#ifndef BAGALG_IR_PROGRAM_H_
#define BAGALG_IR_PROGRAM_H_

/// \file program.h
/// Compiled row programs: the IR engine's replacement for per-row AST
/// walking.
///
/// The Volcano engine evaluates every MAP image and σ side by recursively
/// walking the lambda's Expr tree for every row (exec::EvalRowLambda). The
/// IR engine compiles each object-level lambda body once, into a flat
/// postorder instruction sequence executed by a tiny stack machine — no
/// recursion, no per-node switch re-dispatch through shared_ptr
/// indirections, and the constants pre-resolved into a pool.
///
/// Three shapes cover almost every real pipeline and get dedicated fast
/// paths that skip the stack machine entirely:
///
///   identity      λx. x                      (pass-through)
///   field-ref     λx. α_i(x)                 (join keys, filter sides)
///   gather        λx. τ(α_a1(x), ..., α_ak(x))   (projections)
///
/// The supported fragment is exactly the pipeline lambda fragment of
/// exec::CheckLambdaBody: Var(0) / constants / tupling / attribute
/// projection. Anything else fails to compile with kUnsupported, and the
/// caller falls back to the tree-walking engines.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/algebra/expr.h"
#include "src/core/value.h"
#include "src/util/result.h"

namespace bagalg::ir {

/// A compiled object-level lambda body.
class RowProgram {
 public:
  enum class OpCode : uint8_t {
    kLoadRow,    ///< push the input row
    kLoadConst,  ///< push constants[arg]
    kProjField,  ///< pop a tuple, push its arg-th field (1-based)
    kMakeTuple,  ///< pop arg values, push the tuple of them (in order)
  };

  struct Insn {
    OpCode op;
    uint32_t arg;
  };

  /// Compiles `body` (an expression over Var(0)). Unsupported when the body
  /// leaves the pipeline lambda fragment (bag operators, deeper binders).
  static Result<RowProgram> Compile(const Expr& body);

  /// λx. v — a program that ignores the row and produces `v`. The
  /// const-fold pass rewrites provably-constant stages to this shape.
  static RowProgram Constant(Value v);

  /// λx. τ(α_a1(x), ..., α_ak(x)) for the given 1-based field list; the
  /// empty list yields λx. τ() (a constant). The dead-column pass builds
  /// narrowing projections with this.
  static RowProgram GatherOf(const std::vector<size_t>& fields);

  /// λx. x — the program is a pass-through.
  bool IsIdentity() const { return identity_; }

  /// λx. α_i(x): returns the 1-based field index, nullopt otherwise.
  std::optional<size_t> FieldRef() const { return field_ref_; }

  /// λx. τ(α_a1(x), ..., α_ak(x)): the 1-based field list, empty optional
  /// otherwise. The basis of the projection fast path and of column-remap
  /// pushdowns.
  const std::optional<std::vector<size_t>>& Gather() const { return gather_; }

  /// The program's value when it never reads the row (no kLoadRow): the
  /// same value for every input. nullopt for row-dependent programs.
  const std::optional<Value>& ConstantValue() const { return const_val_; }

  /// The distinct top-level row columns this program reads (1-based,
  /// sorted). nullopt when the whole row escapes (identity, or the row used
  /// directly inside a tuple) — such a program cannot be pushed across a
  /// column boundary.
  std::optional<std::vector<size_t>> ColumnRefs() const;

  /// Rewrites every top-level row-column access c to c - delta. Used when a
  /// predicate on a joined row is pushed into the right (build) side, whose
  /// rows lack the probe side's leading columns. Requires ColumnRefs() to
  /// be available and every reference to exceed delta.
  void ShiftColumns(size_t delta);

  /// Rewrites every top-level row-column access c to map[c - 1] (1-based
  /// on both sides). Used when a predicate is pushed below a gather
  /// projection. Requires ColumnRefs(); false if some reference has no
  /// mapping (c > map.size()).
  bool RemapColumns(const std::vector<size_t>& map);

  /// Executes the program on one row. InvalidArgument on a bad attribute
  /// projection (non-tuple operand or out-of-range field).
  Result<Value> Run(const Value& row) const;

  /// Compact rendering for explain ir, e.g. "x", "a2", "t(a1, a4)", "'k".
  std::string ToString() const;

  const std::vector<Insn>& insns() const { return insns_; }

 private:
  void Reclassify();

  std::vector<Insn> insns_;
  std::vector<Value> consts_;
  bool identity_ = false;
  std::optional<size_t> field_ref_;
  std::optional<std::vector<size_t>> gather_;
  std::optional<Value> const_val_;
};

}  // namespace bagalg::ir

#endif  // BAGALG_IR_PROGRAM_H_
