#ifndef BAGALG_IR_VERIFY_H_
#define BAGALG_IR_VERIFY_H_

/// \file verify.h
/// The IR verifier and the translation-validation harness.
///
/// VerifyIr is the structural checker run after *every* pass (not just once
/// post-lowering): pipeline well-formedness (child counts, non-empty stage
/// programs, the tractability guard of CheckFusionLegality) plus the strict
/// dataflow walk of dataflow.h, which rejects column references off the end
/// of a known row shape, gather lists naming nonexistent columns, hash-join
/// keys outside their side's arity, joins whose probe_arity disagrees with
/// the probe child's actual output, and union children of conflicting
/// shapes. A pass that corrupts a plan structurally fails at the pass that
/// broke it, with the pass named in the error.
///
/// ValidateTranslation is the semantic net for bugs verification cannot see
/// (a dropped filter is a perfectly well-formed plan): it lowers with a
/// pass observer that snapshots the plan around each pass, executes both
/// snapshots against the bound database, and asserts bag-equality. Tests
/// point it at small databases and at the seeded mutation corpus
/// (passes.h's SetPassMutationForTesting) to prove the checker has teeth.
///
/// Enablement: per-pass verification defaults to on in assert-enabled
/// builds and off in Release; BAGALG_IR_VERIFY=1/0 overrides either way —
/// the bench gate runs (`run_benchmarks.sh --compare`) export it so gate
/// runs are verified runs.

#include <string>
#include <vector>

#include "src/algebra/database.h"
#include "src/algebra/expr.h"
#include "src/ir/ir.h"
#include "src/ir/lower.h"
#include "src/util/status.h"

namespace bagalg::ir {

/// True when per-pass plan verification is on: BAGALG_IR_VERIFY=1/on/true
/// forces on, =0/off/false forces off; unset defaults to on in
/// assert-enabled builds (Debug and the default no-build-type configure)
/// and off with NDEBUG. Read once per process.
bool IrVerifyEnabled();

/// Structural verification of a plan: CheckFusionLegality plus the strict
/// dataflow walk (ComputeIrFacts). kInternal / kUnsupported with an
/// "ir verify" diagnostic on the first inconsistency.
Status VerifyIr(const IrPlan& plan);

/// What ValidateTranslation observed across the pass pipeline.
struct ValidationReport {
  /// Passes that changed the plan and had both snapshots executed.
  size_t passes_executed = 0;
  /// Passes that changed the plan (superset of passes_executed: a pass is
  /// counted but not executed when both snapshots fail identically, e.g.
  /// under an injected fault).
  size_t passes_changed = 0;
};

/// Translation validation: lowers `expr` with per-pass verification forced
/// on and a snapshot observer that executes the plan before and after every
/// pass that changed it, asserting bag-equality of the results. Returns the
/// first verifier error or semantic divergence (kInternal, naming the
/// pass). Intended for tests and fuzzing against *small* databases — every
/// changed pass costs two executions. `base` supplies the remaining
/// lowering options (its verify/observer fields are overridden); tests use
/// it to disable the algebra rewriter so crafted stage patterns reach the
/// IR passes intact.
Status ValidateTranslation(const Expr& expr, const Database& db,
                           ValidationReport* report = nullptr,
                           const LowerOptions& base = {});

}  // namespace bagalg::ir

#endif  // BAGALG_IR_VERIFY_H_
