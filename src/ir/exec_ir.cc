#include "src/ir/exec_ir.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/bag_ops.h"
#include "src/exec/compile.h"
#include "src/obs/metrics.h"
#include "src/util/governor.h"

namespace bagalg::ir {

namespace {

/// Per-run executor state shared by all cursors of one ExecuteIr call.
struct ExecContext {
  const Database* db;
  obs::Tracer* tracer;
  size_t batch_size;
  /// CSE cache: cse_key -> materialized result of the shared subplan
  /// (stages included). Lives for one run only.
  std::map<std::string, Bag> cse_cache;
  uint64_t batches = 0;
  uint64_t rows = 0;
  uint64_t pipelines = 0;
};

/// Batch-at-a-time pull cursor. Next() clears `out` and fills up to
/// batch_size rows; returns false at end of stream. Cursors may return a
/// full, partial, or (never) empty batch before EOF.
class BatchCursor {
 public:
  virtual ~BatchCursor() = default;
  virtual Status Open() = 0;
  virtual Result<bool> Next(RowBatch* out) = 0;
  virtual void Close() = 0;
};

using CursorPtr = std::unique_ptr<BatchCursor>;

Result<CursorPtr> MakeCursor(const IrNode& node, ExecContext* ctx);

// ------------------------------------------------------------------ scan

class ScanCursor : public BatchCursor {
 public:
  ScanCursor(Bag bag, size_t batch_size)
      : bag_(std::move(bag)), batch_size_(batch_size) {}

  Status Open() override {
    pos_ = 0;
    return Status::Ok();
  }

  Result<bool> Next(RowBatch* out) override {
    out->Clear();
    const auto& entries = bag_.entries();
    if (pos_ >= entries.size()) return false;
    const size_t end = std::min(entries.size(), pos_ + batch_size_);
    out->Reserve(end - pos_);
    for (; pos_ < end; ++pos_) {
      out->Push(entries[pos_].value, entries[pos_].count);
    }
    return true;
  }

  void Close() override {}

 private:
  Bag bag_;
  size_t batch_size_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------- fused stages

/// Applies one stage to a batch in place. Filters compact with a write
/// index; projections rewrite values through the program fast paths.
Status ApplyStage(const Stage& stage, RowBatch* batch) {
  switch (stage.kind) {
    case StageKind::kFilter: {
      const auto lf = stage.program.FieldRef();
      const auto rf = stage.rhs.FieldRef();
      size_t w = 0;
      for (size_t i = 0; i < batch->size(); ++i) {
        bool keep;
        if (lf.has_value() && rf.has_value()) {
          // Fast path: field-vs-field comparison without program dispatch.
          const Value& row = batch->values[i];
          if (!row.IsTuple() || *lf > row.fields().size() ||
              *rf > row.fields().size() || *lf < 1 || *rf < 1) {
            return Status::InvalidArgument(
                "bad attribute projection in pipeline lambda");
          }
          keep = batch->values[i].fields()[*lf - 1] ==
                 batch->values[i].fields()[*rf - 1];
        } else {
          BAGALG_ASSIGN_OR_RETURN(Value l, stage.program.Run(batch->values[i]));
          BAGALG_ASSIGN_OR_RETURN(Value r, stage.rhs.Run(batch->values[i]));
          keep = l == r;
        }
        if (keep) {
          if (w != i) {
            batch->values[w] = std::move(batch->values[i]);
            batch->counts[w] = std::move(batch->counts[i]);
          }
          ++w;
        }
      }
      batch->values.resize(w);
      batch->counts.resize(w);
      return Status::Ok();
    }
    case StageKind::kProject: {
      if (stage.program.IsIdentity()) return Status::Ok();
      if (const auto field = stage.program.FieldRef(); field.has_value()) {
        for (Value& v : batch->values) {
          if (!v.IsTuple() || *field < 1 || *field > v.fields().size()) {
            return Status::InvalidArgument(
                "bad attribute projection in pipeline lambda");
          }
          v = v.fields()[*field - 1];
        }
        return Status::Ok();
      }
      if (const auto& gather = stage.program.Gather(); gather.has_value()) {
        for (Value& v : batch->values) {
          if (!v.IsTuple()) {
            return Status::InvalidArgument(
                "bad attribute projection in pipeline lambda");
          }
          const auto& fields = v.fields();
          std::vector<Value> picked;
          picked.reserve(gather->size());
          for (size_t c : *gather) {
            if (c < 1 || c > fields.size()) {
              return Status::InvalidArgument(
                  "bad attribute projection in pipeline lambda");
            }
            picked.push_back(fields[c - 1]);
          }
          v = Value::Tuple(std::move(picked));
        }
        return Status::Ok();
      }
      for (Value& v : batch->values) {
        BAGALG_ASSIGN_OR_RETURN(Value image, stage.program.Run(v));
        v = std::move(image);
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown stage kind");
}

/// Wraps a source cursor and runs the node's fused stage list over every
/// batch — the vectorized heart of the engine. Loops over fully-filtered
/// batches so callers never observe an empty non-EOF batch.
class StagedCursor : public BatchCursor {
 public:
  StagedCursor(CursorPtr source, const std::vector<Stage>* stages,
               ExecContext* ctx)
      : source_(std::move(source)), stages_(stages), ctx_(ctx) {}

  Status Open() override {
    ticker_ = BatchCheckpointTicker();
    return source_->Open();
  }

  Result<bool> Next(RowBatch* out) override {
    for (;;) {
      BAGALG_ASSIGN_OR_RETURN(bool more, source_->Next(out));
      if (!more) {
        BAGALG_RETURN_IF_ERROR(ticker_.Flush());
        return false;
      }
      const uint64_t in_rows = out->size();
      for (const Stage& stage : *stages_) {
        BAGALG_RETURN_IF_ERROR(ApplyStage(stage, out));
      }
      ctx_->batches++;
      ctx_->rows += out->size();
      BAGALG_RETURN_IF_ERROR(ticker_.OnBatch(in_rows));
      if (!out->empty()) return true;
    }
  }

  void Close() override { source_->Close(); }

 private:
  CursorPtr source_;
  const std::vector<Stage>* stages_;
  ExecContext* ctx_;
  BatchCheckpointTicker ticker_;
};

// ------------------------------------------------------------- draining

/// Drains a cursor into a canonical bag under a per-pipeline span. The
/// blocking boundaries (merge kernels, build sides, dup-elim, the root)
/// all come through here, so each materialization shows up as one
/// "ir.pipeline.<what>" span with rows/batches attributes.
Result<Bag> DrainToBag(BatchCursor* cursor, ExecContext* ctx,
                       const std::string& what) {
  obs::Span span;
  if (ctx->tracer != nullptr) {
    span = ctx->tracer->StartSpan("ir.pipeline." + what, "ir");
  }
  ctx->pipelines++;
  BAGALG_RETURN_IF_ERROR(cursor->Open());
  Bag::Builder builder;
  RowBatch batch;
  BatchCheckpointTicker ticker;
  uint64_t rows = 0;
  uint64_t batches = 0;
  for (;;) {
    BAGALG_ASSIGN_OR_RETURN(bool more, cursor->Next(&batch));
    if (!more) break;
    builder.Reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      builder.Add(std::move(batch.values[i]), std::move(batch.counts[i]));
    }
    rows += batch.size();
    batches++;
    BAGALG_RETURN_IF_ERROR(ticker.OnBatch(batch.size()));
  }
  BAGALG_RETURN_IF_ERROR(ticker.Flush());
  cursor->Close();
  if (span.active()) {
    span.AddAttr("rows", rows);
    span.AddAttr("batches", batches);
  }
  return std::move(builder).Build();
}

// ---------------------------------------------------------------- joins

/// Hash equi-join: build side materialized into a multiplicity-aware hash
/// table at Open, probe side streamed. Replaces the σ∘× nested loop —
/// O(|probe| + |build| + |matches|) instead of O(|probe|·|build|).
class HashJoinCursor : public BatchCursor {
 public:
  HashJoinCursor(const IrNode& node, CursorPtr probe, CursorPtr build,
                 ExecContext* ctx)
      : node_(node),
        probe_(std::move(probe)),
        build_(std::move(build)),
        ctx_(ctx) {}

  Status Open() override {
    BAGALG_ASSIGN_OR_RETURN(Bag built,
                            DrainToBag(build_.get(), ctx_, "hash_build"));
    table_.clear();
    table_.reserve(built.entries().size());
    for (const BagEntry& e : built.entries()) {
      if (!e.value.IsTuple()) {
        return Status::InvalidArgument("product requires tuple rows");
      }
      if (node_.build_key < 1 ||
          node_.build_key > e.value.fields().size()) {
        return Status::InvalidArgument(
            "bad attribute projection in pipeline lambda");
      }
      table_[e.value.fields()[node_.build_key - 1]].push_back(
          {e.value, e.count});
    }
    obs::GlobalMetrics().GetCounter("ir.hash_joins")->Increment();
    probe_batch_.Clear();
    probe_pos_ = 0;
    matches_ = nullptr;
    match_pos_ = 0;
    return probe_->Open();
  }

  Result<bool> Next(RowBatch* out) override {
    out->Clear();
    out->Reserve(ctx_->batch_size);
    for (;;) {
      // Resume emitting matches carried over from the previous call.
      while (matches_ != nullptr && match_pos_ < matches_->size()) {
        if (out->size() >= ctx_->batch_size) return true;
        const auto& [build_row, build_count] = (*matches_)[match_pos_++];
        out->Push(Concat(probe_batch_.values[probe_pos_], build_row),
                  probe_batch_.counts[probe_pos_] * build_count);
      }
      matches_ = nullptr;
      if (probe_pos_ + 1 < probe_batch_.size()) {
        ++probe_pos_;
      } else {
        BAGALG_ASSIGN_OR_RETURN(bool more, probe_->Next(&probe_batch_));
        if (!more) return !out->empty();
        probe_pos_ = 0;
      }
      const Value& row = probe_batch_.values[probe_pos_];
      if (!row.IsTuple()) {
        return Status::InvalidArgument("product requires tuple rows");
      }
      if (node_.probe_key < 1 || node_.probe_key > row.fields().size()) {
        return Status::InvalidArgument(
            "bad attribute projection in pipeline lambda");
      }
      auto it = table_.find(row.fields()[node_.probe_key - 1]);
      if (it != table_.end()) {
        matches_ = &it->second;
        match_pos_ = 0;
      }
    }
  }

  void Close() override {
    probe_->Close();
    table_.clear();
  }

 private:
  static Value Concat(const Value& left, const Value& right) {
    std::vector<Value> fields = left.fields();
    fields.insert(fields.end(), right.fields().begin(),
                  right.fields().end());
    return Value::Tuple(std::move(fields));
  }

  struct ValueHasher {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };

  const IrNode& node_;
  CursorPtr probe_;
  CursorPtr build_;
  ExecContext* ctx_;
  std::unordered_map<Value, std::vector<std::pair<Value, Mult>>, ValueHasher>
      table_;
  RowBatch probe_batch_;
  size_t probe_pos_ = 0;
  const std::vector<std::pair<Value, Mult>>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

/// Cross join as a fused block-nested loop: build side materialized once,
/// probe side streamed, output counts multiply.
class CrossJoinCursor : public BatchCursor {
 public:
  CrossJoinCursor(CursorPtr probe, CursorPtr build, ExecContext* ctx)
      : probe_(std::move(probe)), build_(std::move(build)), ctx_(ctx) {}

  Status Open() override {
    BAGALG_ASSIGN_OR_RETURN(built_,
                            DrainToBag(build_.get(), ctx_, "cross_build"));
    for (const BagEntry& e : built_.entries()) {
      if (!e.value.IsTuple()) {
        return Status::InvalidArgument("product requires tuple rows");
      }
    }
    probe_batch_.Clear();
    probe_pos_ = 0;
    build_pos_ = 0;
    ticker_ = BatchCheckpointTicker();
    return probe_->Open();
  }

  Result<bool> Next(RowBatch* out) override {
    out->Clear();
    out->Reserve(ctx_->batch_size);
    const auto& build_entries = built_.entries();
    for (;;) {
      if (probe_pos_ >= probe_batch_.size()) {
        BAGALG_ASSIGN_OR_RETURN(bool more, probe_->Next(&probe_batch_));
        if (!more) return !out->empty();
        probe_pos_ = 0;
        build_pos_ = 0;
        for (const Value& v : probe_batch_.values) {
          if (!v.IsTuple()) {
            return Status::InvalidArgument("product requires tuple rows");
          }
        }
      }
      while (probe_pos_ < probe_batch_.size()) {
        const Value& left = probe_batch_.values[probe_pos_];
        const Mult& left_count = probe_batch_.counts[probe_pos_];
        while (build_pos_ < build_entries.size()) {
          if (out->size() >= ctx_->batch_size) return true;
          const BagEntry& e = build_entries[build_pos_++];
          std::vector<Value> fields = left.fields();
          fields.insert(fields.end(), e.value.fields().begin(),
                        e.value.fields().end());
          out->Push(Value::Tuple(std::move(fields)), left_count * e.count);
        }
        BAGALG_RETURN_IF_ERROR(ticker_.OnBatch(build_entries.size()));
        build_pos_ = 0;
        ++probe_pos_;
      }
    }
  }

  void Close() override { probe_->Close(); }

 private:
  CursorPtr probe_;
  CursorPtr build_;
  ExecContext* ctx_;
  Bag built_;
  RowBatch probe_batch_;
  size_t probe_pos_ = 0;
  size_t build_pos_ = 0;
  BatchCheckpointTicker ticker_;
};

// ------------------------------------------------- union / merge / eps

class UnionAllCursor : public BatchCursor {
 public:
  UnionAllCursor(std::vector<CursorPtr> children)
      : children_(std::move(children)) {}

  Status Open() override {
    current_ = 0;
    for (auto& c : children_) BAGALG_RETURN_IF_ERROR(c->Open());
    return Status::Ok();
  }

  Result<bool> Next(RowBatch* out) override {
    while (current_ < children_.size()) {
      BAGALG_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(out));
      if (more) return true;
      ++current_;
    }
    out->Clear();
    return false;
  }

  void Close() override {
    for (auto& c : children_) c->Close();
  }

 private:
  std::vector<CursorPtr> children_;
  size_t current_ = 0;
};

/// Blocking cursor over a pre-materialized bag (merge kernels, dup-elim,
/// CSE cache hits).
class BagCursor : public BatchCursor {
 public:
  BagCursor(Bag bag, size_t batch_size)
      : scan_(std::move(bag), batch_size) {}
  Status Open() override { return scan_.Open(); }
  Result<bool> Next(RowBatch* out) override { return scan_.Next(out); }
  void Close() override { scan_.Close(); }

 private:
  ScanCursor scan_;
};

class MergeCursor : public BatchCursor {
 public:
  MergeCursor(exec::MergeKind kind, CursorPtr left, CursorPtr right,
              ExecContext* ctx)
      : kind_(kind),
        left_(std::move(left)),
        right_(std::move(right)),
        ctx_(ctx) {}

  Status Open() override {
    BAGALG_ASSIGN_OR_RETURN(Bag l, DrainToBag(left_.get(), ctx_, "merge"));
    BAGALG_ASSIGN_OR_RETURN(Bag r, DrainToBag(right_.get(), ctx_, "merge"));
    Result<Bag> merged = [&]() -> Result<Bag> {
      switch (kind_) {
        case exec::MergeKind::kMonus:
          return Subtract(l, r);
        case exec::MergeKind::kMaxUnion:
          return MaxUnion(l, r);
        case exec::MergeKind::kIntersect:
          return Intersect(l, r);
      }
      return Status::Internal("unknown merge kind");
    }();
    BAGALG_RETURN_IF_ERROR(merged.status());
    out_ = std::make_unique<BagCursor>(std::move(merged).value(),
                                       ctx_->batch_size);
    return out_->Open();
  }

  Result<bool> Next(RowBatch* out) override { return out_->Next(out); }

  void Close() override {
    if (out_ != nullptr) out_->Close();
  }

 private:
  exec::MergeKind kind_;
  CursorPtr left_;
  CursorPtr right_;
  ExecContext* ctx_;
  std::unique_ptr<BagCursor> out_;
};

class DupElimCursor : public BatchCursor {
 public:
  DupElimCursor(CursorPtr child, ExecContext* ctx)
      : child_(std::move(child)), ctx_(ctx) {}

  Status Open() override {
    BAGALG_ASSIGN_OR_RETURN(Bag in, DrainToBag(child_.get(), ctx_, "eps"));
    BAGALG_ASSIGN_OR_RETURN(Bag out, DupElim(in));
    out_ = std::make_unique<BagCursor>(std::move(out), ctx_->batch_size);
    return out_->Open();
  }

  Result<bool> Next(RowBatch* out) override { return out_->Next(out); }

  void Close() override {
    if (out_ != nullptr) out_->Close();
  }

 private:
  CursorPtr child_;
  ExecContext* ctx_;
  std::unique_ptr<BagCursor> out_;
};

// --------------------------------------------------------------- bridge

/// Escape hatch: runs a subtree on the Volcano engine, adapting its
/// tuple-at-a-time pulls into batches. The seam a codegen backend would
/// also plug into.
class BridgeCursor : public BatchCursor {
 public:
  BridgeCursor(const IrNode& node, ExecContext* ctx)
      : node_(node), ctx_(ctx) {}

  Status Open() override {
    exec::ExecOptions options;
    options.tracer = ctx_->tracer;
    BAGALG_ASSIGN_OR_RETURN(
        op_, exec::CompilePipeline(node_.origin, *ctx_->db, options));
    ticker_ = CheckpointTicker();
    return op_->Open();
  }

  Result<bool> Next(RowBatch* out) override {
    out->Clear();
    out->Reserve(ctx_->batch_size);
    while (out->size() < ctx_->batch_size) {
      if (ticker_.Due()) BAGALG_RETURN_IF_ERROR(ticker_.Flush());
      BAGALG_ASSIGN_OR_RETURN(std::optional<exec::Row> row, op_->Next());
      if (!row.has_value()) break;
      out->Push(std::move(row->value), std::move(row->count));
    }
    return !out->empty();
  }

  void Close() override {
    if (op_ != nullptr) op_->Close();
  }

 private:
  const IrNode& node_;
  ExecContext* ctx_;
  exec::OperatorPtr op_;
  CheckpointTicker ticker_;
};

// ------------------------------------------------------------------ CSE

/// Cursor for a cse_shared node: the first occurrence materializes the
/// full subplan (stages included) into the per-run cache; later
/// occurrences stream the cached bag.
class CseCursor : public BatchCursor {
 public:
  CseCursor(const IrNode& node, ExecContext* ctx) : node_(node), ctx_(ctx) {}

  Status Open() override;

  Result<bool> Next(RowBatch* out) override { return out_->Next(out); }

  void Close() override {
    if (out_ != nullptr) out_->Close();
  }

 private:
  const IrNode& node_;
  ExecContext* ctx_;
  std::unique_ptr<BagCursor> out_;
};

// ------------------------------------------------------------- assembly

Result<CursorPtr> MakeBase(const IrNode& node, ExecContext* ctx) {
  switch (node.kind) {
    case IrKind::kScan:
      return CursorPtr(
          std::make_unique<ScanCursor>(node.scan_bag, ctx->batch_size));
    case IrKind::kUnionAll: {
      std::vector<CursorPtr> children;
      children.reserve(node.children.size());
      for (const auto& c : node.children) {
        BAGALG_ASSIGN_OR_RETURN(CursorPtr child, MakeCursor(*c, ctx));
        children.push_back(std::move(child));
      }
      return CursorPtr(
          std::make_unique<UnionAllCursor>(std::move(children)));
    }
    case IrKind::kCrossJoin: {
      BAGALG_ASSIGN_OR_RETURN(CursorPtr probe,
                              MakeCursor(*node.children[0], ctx));
      BAGALG_ASSIGN_OR_RETURN(CursorPtr build,
                              MakeCursor(*node.children[1], ctx));
      return CursorPtr(std::make_unique<CrossJoinCursor>(
          std::move(probe), std::move(build), ctx));
    }
    case IrKind::kHashJoin: {
      BAGALG_ASSIGN_OR_RETURN(CursorPtr probe,
                              MakeCursor(*node.children[0], ctx));
      BAGALG_ASSIGN_OR_RETURN(CursorPtr build,
                              MakeCursor(*node.children[1], ctx));
      return CursorPtr(std::make_unique<HashJoinCursor>(
          node, std::move(probe), std::move(build), ctx));
    }
    case IrKind::kMerge: {
      BAGALG_ASSIGN_OR_RETURN(CursorPtr left,
                              MakeCursor(*node.children[0], ctx));
      BAGALG_ASSIGN_OR_RETURN(CursorPtr right,
                              MakeCursor(*node.children[1], ctx));
      return CursorPtr(std::make_unique<MergeCursor>(
          node.merge_kind, std::move(left), std::move(right), ctx));
    }
    case IrKind::kDupElim: {
      BAGALG_ASSIGN_OR_RETURN(CursorPtr child,
                              MakeCursor(*node.children[0], ctx));
      return CursorPtr(
          std::make_unique<DupElimCursor>(std::move(child), ctx));
    }
    case IrKind::kBridge:
      return CursorPtr(std::make_unique<BridgeCursor>(node, ctx));
  }
  return Status::Internal("unknown IR node kind");
}

/// Base cursor plus the node's fused stages (no CSE wrapping).
Result<CursorPtr> MakeStaged(const IrNode& node, ExecContext* ctx) {
  BAGALG_ASSIGN_OR_RETURN(CursorPtr base, MakeBase(node, ctx));
  if (node.stages.empty()) return base;
  return CursorPtr(
      std::make_unique<StagedCursor>(std::move(base), &node.stages, ctx));
}

Status CseCursor::Open() {
  auto it = ctx_->cse_cache.find(node_.cse_key);
  if (it == ctx_->cse_cache.end()) {
    BAGALG_ASSIGN_OR_RETURN(CursorPtr inner, MakeStaged(node_, ctx_));
    BAGALG_ASSIGN_OR_RETURN(Bag bag,
                            DrainToBag(inner.get(), ctx_, "cse"));
    it = ctx_->cse_cache.emplace(node_.cse_key, std::move(bag)).first;
  } else {
    obs::GlobalMetrics().GetCounter("ir.cse_hits")->Increment();
  }
  out_ = std::make_unique<BagCursor>(it->second, ctx_->batch_size);
  return out_->Open();
}

Result<CursorPtr> MakeCursor(const IrNode& node, ExecContext* ctx) {
  if (node.cse_shared && !node.cse_key.empty()) {
    return CursorPtr(std::make_unique<CseCursor>(node, ctx));
  }
  return MakeStaged(node, ctx);
}

}  // namespace

Result<Bag> ExecuteIr(const IrPlan& plan, const Database& db,
                      const ExecIrOptions& options) {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("empty IR plan");
  }
  ExecContext ctx;
  ctx.db = &db;
  ctx.tracer = options.tracer != nullptr && options.tracer->enabled()
                   ? options.tracer
                   : nullptr;
  ctx.batch_size = plan.batch_size == 0 ? kDefaultBatchSize : plan.batch_size;
  BAGALG_ASSIGN_OR_RETURN(CursorPtr root, MakeCursor(*plan.root, &ctx));
  Result<Bag> out = DrainToBag(root.get(), &ctx, "root");
  auto& metrics = obs::GlobalMetrics();
  metrics.GetCounter("ir.batches")->Increment(ctx.batches);
  metrics.GetCounter("ir.rows")->Increment(ctx.rows);
  metrics.GetCounter("ir.pipelines")->Increment(ctx.pipelines);
  return out;
}

}  // namespace bagalg::ir
