#ifndef BAGALG_IR_LOWER_H_
#define BAGALG_IR_LOWER_H_

/// \file lower.h
/// Lowering typed BALG¹ plans into the fused loop IR.
///
/// LowerToIr is the front half of the IR engine: it (optionally) runs the
/// algebra-level rewriter first — which canonicalizes equal subplans so the
/// IR's common-subexpression pass can key on surface syntax — typechecks the
/// plan (join lowering needs the probe side's tuple arity), folds every MAP
/// / σ into fused stages on the producing node, then runs the IR passes
/// (passes.h) and annotates nodes with static_cost bounds.
///
/// The supported fragment is exactly exec::CompilePipeline's BALG¹ fragment;
/// anything outside lowers to kUnsupported, and engine dispatch (run.cc)
/// falls back to the Volcano pipeline or the tree-walking evaluator.

#include <string>

#include "src/algebra/database.h"
#include "src/algebra/expr.h"
#include "src/ir/ir.h"
#include "src/ir/passes.h"
#include "src/util/result.h"

namespace bagalg::ir {

struct LowerOptions {
  /// Run algebra::Optimize before lowering. Besides the usual identity /
  /// selection-pushdown wins, this canonicalizes duplicate subplans so the
  /// CSE pass can recognize them.
  bool optimize_first = true;
  /// Annotate nodes with static_cost exact-facts bounds (cost_note,
  /// est_rows). Lowering never fails on analysis errors — annotations are
  /// best-effort.
  bool annotate_costs = true;
  /// Lower monus/max-union/intersect through the Volcano bridge instead of
  /// the native kMerge node. Exercises the batch-at-a-time Operator bridge;
  /// also the template for any future operator the IR cannot host natively.
  bool merges_via_bridge = false;
  /// Rows per batch for the produced plan.
  size_t batch_size = kDefaultBatchSize;
  /// Per-pass plan verification (verify.h): kAuto follows IrVerifyEnabled()
  /// — on in assert-enabled builds and whenever BAGALG_IR_VERIFY=1 — so
  /// Release builds can opt in without recompiling; kOn/kOff force it.
  enum class Verify { kAuto, kOn, kOff };
  Verify verify = Verify::kAuto;
  /// Pass snapshot observer (passes.h), the hook translation validation
  /// hangs its before/after executions on. Null for none.
  PassObserver observer;
};

/// Lowers `expr` against `db` into a pass-processed IR plan. kUnsupported
/// outside the BALG¹ pipeline fragment; kNotFound for unknown inputs;
/// kTypeError when the plan does not typecheck (joins need arities).
Result<IrPlan> LowerToIr(const Expr& expr, const Database& db,
                         const LowerOptions& options = {});

/// EXPLAIN IR: lower + render the fused pipeline tree (ExplainIrPlan).
Result<std::string> ExplainIr(const Expr& expr, const Database& db,
                              const LowerOptions& options = {});

/// EXPLAIN IR --facts: like ExplainIr, with each node annotated with its
/// dataflow facts (dataflow.h) — proven row shape, dup-freedom, keys,
/// constant columns, and distinct-row interval.
Result<std::string> ExplainIrFacts(const Expr& expr, const Database& db,
                                   const LowerOptions& options = {});

}  // namespace bagalg::ir

#endif  // BAGALG_IR_LOWER_H_
