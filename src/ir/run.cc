/// \file run.cc
/// Engine dispatch: the definition of exec::RunPipeline.
///
/// Lives in the IR library rather than src/exec because dispatch must see
/// both engines, and bagalg_ir already links bagalg_exec (the Volcano
/// bridge and the kVolcano leg). Putting the dispatcher in exec would make
/// the two static libraries mutually dependent.

#include "src/exec/compile.h"
#include "src/ir/exec_ir.h"
#include "src/ir/lower.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/governor.h"

namespace bagalg::exec {

namespace {

Result<Bag> RunIrEngine(const Database& db, const ExecOptions& options,
                        Result<ir::IrPlan>&& plan) {
  BAGALG_RETURN_IF_ERROR(plan.status());
  obs::Span span;
  if (options.tracer != nullptr && options.tracer->enabled()) {
    span = options.tracer->StartSpan("exec.pipeline", "exec");
    span.AddAttr("engine", "ir");
  }
  ir::ExecIrOptions ir_options;
  ir_options.tracer = options.tracer;
  Result<Bag> out = [&] {
    GovernorScope scope(options.governor);
    return ir::ExecuteIr(plan.value(), db, ir_options);
  }();
  if (options.governor != nullptr) obs::MirrorGovernorStats();
  if (span.active() && out.ok()) {
    span.AddAttr("rows", uint64_t{out.value().DistinctCount()});
  }
  return out;
}

}  // namespace

Result<Bag> RunPipeline(const Expr& expr, const Database& db,
                        const ExecOptions& options) {
  if (options.preflight) {
    BAGALG_RETURN_IF_ERROR(options.preflight(expr, db));
  }
  // The preflight already ran; the engine legs must not run it again.
  ExecOptions leg = options;
  leg.preflight = nullptr;

  Engine engine = options.engine;
  if (engine == Engine::kAuto) engine = EngineFromEnv();
  const bool strict_ir = options.engine == Engine::kIr;

  auto report = [&options](Engine used, bool fell_back) {
    if (options.report != nullptr) {
      options.report->engine_used = used;
      options.report->fell_back = fell_back;
    }
    obs::GlobalMetrics()
        .GetCounter(std::string("exec.engine.") + EngineName(used))
        ->Increment();
  };

  if (engine == Engine::kVolcano) {
    report(Engine::kVolcano, false);
    return RunVolcanoPipeline(expr, db, leg);
  }

  // IR preferred (strict when explicitly requested via options.engine).
  Result<ir::IrPlan> plan = ir::LowerToIr(expr, db);
  if (!plan.ok() && !strict_ir) {
    // Plan-time failure only — execution errors (governor trips, faults,
    // runtime type errors) never re-run on the other engine.
    obs::GlobalMetrics().GetCounter("ir.fallbacks")->Increment();
    report(Engine::kVolcano, true);
    return RunVolcanoPipeline(expr, db, leg);
  }
  report(Engine::kIr, false);
  return RunIrEngine(db, leg, std::move(plan));
}

}  // namespace bagalg::exec
