#include "src/ir/lower.h"

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/algebra/rewrite.h"
#include "src/algebra/typecheck.h"
#include "src/analysis/static_cost.h"
#include "src/ir/dataflow.h"
#include "src/ir/passes.h"
#include "src/ir/verify.h"

namespace bagalg::ir {

namespace {

using NodePtr = std::unique_ptr<IrNode>;

/// Arity of the tuples in a bag type; 0 when the type is not a tuple bag.
size_t TupleArityOf(const Type& bag_type) {
  if (!bag_type.IsBag()) return 0;
  const Type& element = bag_type.element();
  if (!element.IsTuple()) return 0;
  return element.fields().size();
}

struct Lowerer {
  const Database& db;
  const std::map<const ExprNode*, Type>& types;
  bool merges_via_bridge;

  Result<NodePtr> Lower(const Expr& e) {
    const ExprNode& n = e.node();
    switch (n.kind) {
      case ExprKind::kInput: {
        BAGALG_ASSIGN_OR_RETURN(Bag bag, db.Get(n.name));
        auto node = std::make_unique<IrNode>(IrKind::kScan);
        node->scan_name = n.name;
        node->scan_bag = std::move(bag);
        node->origin = e;
        return node;
      }
      case ExprKind::kConst: {
        if (!n.literal->IsBag()) {
          return Status::Unsupported("non-bag constant at pipeline root");
        }
        auto node = std::make_unique<IrNode>(IrKind::kScan);
        node->scan_name = "const";
        node->scan_bag = n.literal->bag();
        node->origin = e;
        return node;
      }
      case ExprKind::kAdditiveUnion: {
        auto node = std::make_unique<IrNode>(IrKind::kUnionAll);
        node->origin = e;
        BAGALG_RETURN_IF_ERROR(FlattenUnion(e, &node->children));
        return node;
      }
      case ExprKind::kSubtract:
      case ExprKind::kMaxUnion:
      case ExprKind::kIntersect: {
        if (merges_via_bridge) {
          auto node = std::make_unique<IrNode>(IrKind::kBridge);
          node->origin = e;
          // Validate the subtree lowers at all before committing to the
          // bridge: the Volcano compile at Open would fail identically,
          // but failing here keeps errors at plan time.
          BAGALG_RETURN_IF_ERROR(Lower(n.children[0]).status());
          BAGALG_RETURN_IF_ERROR(Lower(n.children[1]).status());
          return node;
        }
        auto node = std::make_unique<IrNode>(IrKind::kMerge);
        node->merge_kind = n.kind == ExprKind::kSubtract
                               ? exec::MergeKind::kMonus
                           : n.kind == ExprKind::kMaxUnion
                               ? exec::MergeKind::kMaxUnion
                               : exec::MergeKind::kIntersect;
        node->origin = e;
        BAGALG_ASSIGN_OR_RETURN(NodePtr l, Lower(n.children[0]));
        BAGALG_ASSIGN_OR_RETURN(NodePtr r, Lower(n.children[1]));
        node->children.push_back(std::move(l));
        node->children.push_back(std::move(r));
        return node;
      }
      case ExprKind::kProduct: {
        auto node = std::make_unique<IrNode>(IrKind::kCrossJoin);
        node->origin = e;
        auto it = types.find(n.children[0].raw());
        if (it == types.end()) {
          return Status::Internal("untyped product operand in lowering");
        }
        // Typechecking admits only tuple-bag products; a 0 arity means a
        // bag of 0-ary tuples, where pushdown simply finds no probe-side
        // columns.
        node->probe_arity = TupleArityOf(it->second);
        BAGALG_ASSIGN_OR_RETURN(NodePtr l, Lower(n.children[0]));
        BAGALG_ASSIGN_OR_RETURN(NodePtr r, Lower(n.children[1]));
        node->children.push_back(std::move(l));
        node->children.push_back(std::move(r));
        return node;
      }
      case ExprKind::kMap: {
        BAGALG_ASSIGN_OR_RETURN(RowProgram program,
                                RowProgram::Compile(n.children[0]));
        BAGALG_ASSIGN_OR_RETURN(NodePtr child, Lower(n.children[1]));
        Stage stage;
        stage.kind = StageKind::kProject;
        stage.program = std::move(program);
        child->stages.push_back(std::move(stage));
        return child;
      }
      case ExprKind::kSelect: {
        BAGALG_ASSIGN_OR_RETURN(RowProgram lhs,
                                RowProgram::Compile(n.children[0]));
        BAGALG_ASSIGN_OR_RETURN(RowProgram rhs,
                                RowProgram::Compile(n.children[1]));
        BAGALG_ASSIGN_OR_RETURN(NodePtr child, Lower(n.children[2]));
        Stage stage;
        stage.kind = StageKind::kFilter;
        stage.program = std::move(lhs);
        stage.rhs = std::move(rhs);
        child->stages.push_back(std::move(stage));
        return child;
      }
      case ExprKind::kDupElim: {
        auto node = std::make_unique<IrNode>(IrKind::kDupElim);
        node->origin = e;
        BAGALG_ASSIGN_OR_RETURN(NodePtr child, Lower(n.children[0]));
        node->children.push_back(std::move(child));
        return node;
      }
      default:
        return Status::Unsupported(
            std::string("operator ") + ExprKindName(n.kind) +
            " is outside the BALG^1 pipeline fragment");
    }
  }

  /// Flattens nested ⊎ into one n-ary union, but only across bare union
  /// nodes — a fused child (one carrying stages) keeps its own pipeline.
  Status FlattenUnion(const Expr& e, std::vector<NodePtr>* out) {
    const ExprNode& n = e.node();
    for (const Expr& c : n.children) {
      if (c.node().kind == ExprKind::kAdditiveUnion) {
        BAGALG_RETURN_IF_ERROR(FlattenUnion(c, out));
        continue;
      }
      BAGALG_ASSIGN_OR_RETURN(NodePtr child, Lower(c));
      if (child->kind == IrKind::kUnionAll && child->stages.empty()) {
        for (auto& grandchild : child->children) {
          out->push_back(std::move(grandchild));
        }
      } else {
        out->push_back(std::move(child));
      }
    }
    return Status::Ok();
  }
};

/// Best-effort static_cost annotation: cost_note carries the size bound's
/// rendering, est_rows its numeric value when the exact-facts analysis
/// produced a constant that fits uint64.
void Annotate(IrNode* node, const analysis::CostAnalysis& costs) {
  if (node->origin.IsValid()) {
    auto it = costs.per_node.find(node->origin.raw());
    if (it != costs.per_node.end()) {
      node->cost_note = it->second.bound.ToString();
      const analysis::SizeBound& bound = it->second.bound;
      if (bound.IsFinite() && bound.poly.Degree() == 0) {
        Result<BigNat> exact = bound.poly.ConstantTerm().ToBigNat();
        if (exact.ok()) {
          Result<uint64_t> small = exact.value().ToUint64();
          if (small.ok()) node->est_rows = small.value();
        }
      }
    }
  }
  for (auto& child : node->children) Annotate(child.get(), costs);
}

}  // namespace

Result<IrPlan> LowerToIr(const Expr& expr, const Database& db,
                         const LowerOptions& options) {
  Expr plan_expr = expr;
  std::vector<std::string> rewrites;
  if (options.optimize_first) {
    std::map<std::string, size_t> applied;
    Result<Expr> optimized =
        Optimize(expr, db.schema(), RewriteOptions{}, &applied);
    // Rewriter failures (e.g. on plans that do not typecheck) are not
    // fatal at this point — lowering reports the better error below.
    if (optimized.ok()) {
      plan_expr = std::move(optimized).value();
      for (const auto& [rule, count] : applied) {
        rewrites.push_back(rule + "x" + std::to_string(count));
      }
    }
  }

  std::map<const ExprNode*, Type> node_types;
  Result<ExprAnalysis> analysis =
      AnalyzeExpr(plan_expr, db.schema(), &node_types);
  if (!analysis.ok()) return analysis.status();

  Lowerer lowerer{db, node_types, options.merges_via_bridge};
  BAGALG_ASSIGN_OR_RETURN(NodePtr root, lowerer.Lower(plan_expr));

  IrPlan plan;
  plan.root = std::move(root);
  plan.batch_size =
      options.batch_size == 0 ? kDefaultBatchSize : options.batch_size;
  plan.rewrites = std::move(rewrites);
  PassOptions pass_options;
  pass_options.verify_each =
      options.verify == LowerOptions::Verify::kOn ||
      (options.verify == LowerOptions::Verify::kAuto && IrVerifyEnabled());
  pass_options.observer = options.observer;
  BAGALG_RETURN_IF_ERROR(RunPasses(&plan, pass_options));

  if (options.annotate_costs) {
    Result<analysis::CostAnalysis> costs = analysis::AnalyzeCost(
        plan_expr, db.schema(), analysis::CostFacts::Exact(db));
    if (costs.ok()) Annotate(plan.root.get(), costs.value());
  }

  BAGALG_RETURN_IF_ERROR(CheckFusionLegality(plan));
  return plan;
}

Result<std::string> ExplainIr(const Expr& expr, const Database& db,
                              const LowerOptions& options) {
  BAGALG_ASSIGN_OR_RETURN(IrPlan plan, LowerToIr(expr, db, options));
  return ExplainIrPlan(plan);
}

Result<std::string> ExplainIrFacts(const Expr& expr, const Database& db,
                                   const LowerOptions& options) {
  BAGALG_ASSIGN_OR_RETURN(IrPlan plan, LowerToIr(expr, db, options));
  BAGALG_ASSIGN_OR_RETURN(IrFactsMap facts, ComputeIrFacts(plan));
  return ExplainIrPlan(plan, [&facts](const IrNode& node) -> std::string {
    auto it = facts.find(&node);
    if (it == facts.end()) return std::string();
    return it->second.ToString();
  });
}

}  // namespace bagalg::ir
