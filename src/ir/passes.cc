#include "src/ir/passes.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace bagalg::ir {

namespace {

/// True iff every top-level column reference of both filter programs can be
/// remapped through the gather list `g` (i.e. the filter can move below a
/// gather projection).
bool CanRemapThrough(const RowProgram& program,
                     const std::vector<size_t>& gather) {
  const auto refs = program.ColumnRefs();
  if (!refs.has_value()) return false;
  for (size_t c : *refs) {
    if (c < 1 || c > gather.size()) return false;
  }
  return true;
}

/// Pass 1: bubble filters towards the front of a node's stage list. A
/// filter commutes with another filter trivially, and with a gather-shaped
/// projection by remapping its column references through the gather —
/// filter(f) ∘ project(g) ≡ project(g) ∘ filter(f∘g) on every row, counts
/// untouched.
void ReorderStages(IrNode* node, PassStats* stats) {
  auto& stages = node->stages;
  for (size_t i = 1; i < stages.size(); ++i) {
    if (stages[i].kind != StageKind::kFilter) continue;
    size_t j = i;
    bool moved = false;
    while (j > 0) {
      Stage& prev = stages[j - 1];
      if (prev.kind == StageKind::kFilter) break;  // already a filter prefix
      const auto& gather = prev.program.Gather();
      if (!gather.has_value() ||
          !CanRemapThrough(stages[j].program, *gather) ||
          !CanRemapThrough(stages[j].rhs, *gather)) {
        break;
      }
      stages[j].program.RemapColumns(*gather);
      stages[j].rhs.RemapColumns(*gather);
      std::swap(stages[j - 1], stages[j]);
      --j;
      moved = true;
    }
    if (moved) stats->filters_pushed++;
  }
}

/// Pass 2: stages on a union distribute over its inputs, letting each
/// child fuse them into its own pipeline. Sound because ⊎ concatenates
/// streams and stages are per-row.
void PushIntoUnion(IrNode* node, PassStats* stats) {
  if (node->stages.empty()) return;
  for (const Stage& stage : node->stages) {
    if (stage.kind == StageKind::kFilter) {
      stats->filters_pushed++;
    } else {
      stats->projections_pushed++;
    }
  }
  for (auto& child : node->children) {
    for (const Stage& stage : node->stages) {
      child->stages.push_back(stage);
    }
  }
  node->stages.clear();
}

/// Pass 3: a leading filter over a cross join whose column references all
/// fall on one side moves into that side. Build-side programs shift left
/// by the probe arity. Sound over bags: dropping a (row, count) pair before
/// the product drops exactly the joined pairs the post-product filter
/// would have dropped, and surviving counts are untouched.
void PushJoinSideFilters(IrNode* node, PassStats* stats) {
  auto& stages = node->stages;
  size_t i = 0;
  while (i < stages.size() && stages[i].kind == StageKind::kFilter) {
    Stage& stage = stages[i];
    const auto lrefs = stage.program.ColumnRefs();
    const auto rrefs = stage.rhs.ColumnRefs();
    if (!lrefs.has_value() || !rrefs.has_value()) {
      ++i;
      continue;
    }
    std::vector<size_t> refs = *lrefs;
    refs.insert(refs.end(), rrefs->begin(), rrefs->end());
    bool all_probe = true;
    bool all_build = true;
    for (size_t c : refs) {
      if (c > node->probe_arity) all_probe = false;
      if (c <= node->probe_arity) all_build = false;
    }
    if (all_probe && !refs.empty()) {
      node->children[0]->stages.push_back(std::move(stage));
      stages.erase(stages.begin() + static_cast<std::ptrdiff_t>(i));
      stats->filters_pushed++;
      continue;
    }
    if (all_build && !refs.empty()) {
      stage.program.ShiftColumns(node->probe_arity);
      stage.rhs.ShiftColumns(node->probe_arity);
      node->children[1]->stages.push_back(std::move(stage));
      stages.erase(stages.begin() + static_cast<std::ptrdiff_t>(i));
      stats->filters_pushed++;
      continue;
    }
    ++i;
  }
}

/// Pass 4: a leading field==field filter spanning both sides of a cross
/// join is an equi-join predicate; promote the node to kHashJoin.
void DetectHashJoin(IrNode* node, PassStats* stats) {
  if (node->stages.empty() ||
      node->stages.front().kind != StageKind::kFilter) {
    return;
  }
  const auto lf = node->stages.front().program.FieldRef();
  const auto rf = node->stages.front().rhs.FieldRef();
  if (!lf.has_value() || !rf.has_value()) return;
  const size_t arity = node->probe_arity;
  size_t probe_key = 0;
  size_t build_key = 0;
  if (*lf >= 1 && *lf <= arity && *rf > arity) {
    probe_key = *lf;
    build_key = *rf - arity;
  } else if (*rf >= 1 && *rf <= arity && *lf > arity) {
    probe_key = *rf;
    build_key = *lf - arity;
  } else {
    return;
  }
  node->kind = IrKind::kHashJoin;
  node->probe_key = probe_key;
  node->build_key = build_key;
  node->stages.erase(node->stages.begin());
  stats->hash_joins++;
}

void Process(IrNode* node, PassStats* stats) {
  ReorderStages(node, stats);
  if (node->kind == IrKind::kUnionAll) {
    PushIntoUnion(node, stats);
  } else if (node->kind == IrKind::kCrossJoin) {
    PushJoinSideFilters(node, stats);
    DetectHashJoin(node, stats);
  }
  for (auto& child : node->children) Process(child.get(), stats);
}

/// CSE key: the node's source surface syntax plus its fused stages. The
/// pre-lowering rewriter canonicalizes equal subplans, so syntactically
/// equal keys denote equal results; including the stages distinguishes
/// occurrences that acquired different fused work from their parents.
std::string CseKeyOf(const IrNode& node) {
  if (!node.origin.IsValid()) return std::string();
  std::string key = node.origin.ToString();
  for (const Stage& stage : node.stages) {
    key += "\x1f";
    key += stage.ToString();
  }
  return key;
}

void CollectCseCandidates(IrNode* node,
                          std::map<std::string, std::vector<IrNode*>>* seen) {
  // Scans are already shared-rep bags; caching them buys nothing. Bridges
  // re-enter the Volcano engine which has its own lifecycle.
  if (node->kind != IrKind::kScan && node->kind != IrKind::kBridge) {
    const std::string key = CseKeyOf(*node);
    if (!key.empty()) (*seen)[key].push_back(node);
  }
  for (auto& child : node->children) CollectCseCandidates(child.get(), seen);
}

/// Pass 5: mark duplicate subplans for per-run result reuse.
void MarkCse(IrPlan* plan) {
  std::map<std::string, std::vector<IrNode*>> seen;
  CollectCseCandidates(plan->root.get(), &seen);
  for (auto& [key, nodes] : seen) {
    if (nodes.size() < 2) continue;
    for (IrNode* node : nodes) {
      node->cse_shared = true;
      node->cse_key = key;
    }
    plan->passes.cse_nodes++;
  }
}

/// True iff the expression subtree contains an operator whose output can be
/// astronomically larger than its input — the same syntactic criterion
/// static_cost uses for Tractability::kExponentialTower (§3 dichotomy).
bool ContainsIntractable(const Expr& e) {
  if (!e.IsValid()) return false;
  const ExprKind kind = e.node().kind;
  if (kind == ExprKind::kPowerset || kind == ExprKind::kPowerbag) {
    return true;
  }
  for (const Expr& c : e.node().children) {
    if (ContainsIntractable(c)) return true;
  }
  return false;
}

Status CheckNode(const IrNode& node) {
  // Child arity per kind.
  size_t want_children = 0;
  switch (node.kind) {
    case IrKind::kScan:
    case IrKind::kBridge:
      want_children = 0;
      break;
    case IrKind::kUnionAll:
      if (node.children.size() < 2) {
        return Status::Internal("IR union with fewer than two inputs");
      }
      want_children = node.children.size();
      break;
    case IrKind::kCrossJoin:
    case IrKind::kHashJoin:
    case IrKind::kMerge:
      want_children = 2;
      break;
    case IrKind::kDupElim:
      want_children = 1;
      break;
  }
  if (node.children.size() != want_children) {
    return Status::Internal(std::string("IR node ") + IrKindName(node.kind) +
                            " has wrong child count");
  }
  if (node.kind == IrKind::kHashJoin) {
    if (node.probe_key < 1 || node.probe_key > node.probe_arity ||
        node.build_key < 1) {
      return Status::Internal("hash join key outside its side's arity");
    }
  }
  // Fused stages are only legal over tractable producers: a materializing
  // powerset/powerbag in pipeline position must never silently stream
  // through a fused loop (it cannot lower today; this guards future
  // lowering changes — and is the same condition lint rule W005 warns
  // about at the algebra level).
  if (!node.stages.empty() && ContainsIntractable(node.origin)) {
    return Status::Unsupported(
        "powerset/powerbag below a fused pipeline is not fusible");
  }
  for (const Stage& stage : node.stages) {
    if (stage.program.insns().empty()) {
      return Status::Internal("empty stage program in IR plan");
    }
    if (stage.kind == StageKind::kFilter && stage.rhs.insns().empty()) {
      return Status::Internal("empty filter rhs program in IR plan");
    }
  }
  for (const auto& child : node.children) {
    BAGALG_RETURN_IF_ERROR(CheckNode(*child));
  }
  return Status::Ok();
}

}  // namespace

void RunPasses(IrPlan* plan) {
  if (plan->root == nullptr) return;
  Process(plan->root.get(), &plan->passes);
  MarkCse(plan);
}

Status CheckFusionLegality(const IrPlan& plan) {
  if (plan.root == nullptr) {
    return Status::Internal("IR plan without a root");
  }
  return CheckNode(*plan.root);
}

}  // namespace bagalg::ir
