#include "src/ir/passes.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/ir/dataflow.h"
#include "src/ir/verify.h"

namespace bagalg::ir {

namespace {

PassMutation g_mutation = PassMutation::kNone;

/// True iff every top-level column reference of both filter programs can be
/// remapped through the gather list `g` (i.e. the filter can move below a
/// gather projection).
bool CanRemapThrough(const RowProgram& program,
                     const std::vector<size_t>& gather) {
  const auto refs = program.ColumnRefs();
  if (!refs.has_value()) return false;
  for (size_t c : *refs) {
    if (c < 1 || c > gather.size()) return false;
  }
  return true;
}

/// Pass 1: bubble filters towards the front of a node's stage list. A
/// filter commutes with another filter trivially, and with a gather-shaped
/// projection by remapping its column references through the gather —
/// filter(f) ∘ project(g) ≡ project(g) ∘ filter(f∘g) on every row, counts
/// untouched.
void ReorderStages(IrNode* node, PassStats* stats) {
  auto& stages = node->stages;
  if (g_mutation == PassMutation::kDropFilterDuringReorder) {
    // Mutation: "move" a filter past a gather by deleting it.
    for (size_t i = 1; i < stages.size(); ++i) {
      if (stages[i].kind == StageKind::kFilter &&
          stages[i - 1].kind == StageKind::kProject &&
          stages[i - 1].program.Gather().has_value()) {
        stages.erase(stages.begin() + static_cast<std::ptrdiff_t>(i));
        stats->filters_pushed++;
        return;
      }
    }
  }
  for (size_t i = 1; i < stages.size(); ++i) {
    if (stages[i].kind != StageKind::kFilter) continue;
    size_t j = i;
    bool moved = false;
    while (j > 0) {
      Stage& prev = stages[j - 1];
      if (prev.kind == StageKind::kFilter) break;  // already a filter prefix
      const auto& gather = prev.program.Gather();
      if (!gather.has_value() ||
          !CanRemapThrough(stages[j].program, *gather) ||
          !CanRemapThrough(stages[j].rhs, *gather)) {
        break;
      }
      std::vector<size_t> remap = *gather;
      if (g_mutation == PassMutation::kWrongGatherRemap && remap.size() > 1) {
        // Mutation: remap through a rotated gather list.
        std::rotate(remap.begin(), remap.begin() + 1, remap.end());
      }
      stages[j].program.RemapColumns(remap);
      stages[j].rhs.RemapColumns(remap);
      std::swap(stages[j - 1], stages[j]);
      --j;
      moved = true;
    }
    if (moved) stats->filters_pushed++;
  }
}

/// Pass 2: stages on a union distribute over its inputs, letting each
/// child fuse them into its own pipeline. Sound because ⊎ concatenates
/// streams and stages are per-row.
void PushIntoUnion(IrNode* node, PassStats* stats) {
  if (node->stages.empty()) return;
  for (const Stage& stage : node->stages) {
    if (stage.kind == StageKind::kFilter) {
      stats->filters_pushed++;
    } else {
      stats->projections_pushed++;
    }
  }
  for (auto& child : node->children) {
    for (const Stage& stage : node->stages) {
      child->stages.push_back(stage);
    }
  }
  node->stages.clear();
  if (g_mutation == PassMutation::kUnionPushdownDropsChild &&
      node->children.size() > 1) {
    // Mutation: lose the last input while distributing.
    node->children.pop_back();
  }
}

/// Pass 3: a leading filter over a cross join whose column references all
/// fall on one side moves into that side. Build-side programs shift left
/// by the probe arity. Sound over bags: dropping a (row, count) pair before
/// the product drops exactly the joined pairs the post-product filter
/// would have dropped, and surviving counts are untouched.
void PushJoinSideFilters(IrNode* node, PassStats* stats) {
  auto& stages = node->stages;
  size_t i = 0;
  while (i < stages.size() && stages[i].kind == StageKind::kFilter) {
    Stage& stage = stages[i];
    const auto lrefs = stage.program.ColumnRefs();
    const auto rrefs = stage.rhs.ColumnRefs();
    if (!lrefs.has_value() || !rrefs.has_value()) {
      ++i;
      continue;
    }
    std::vector<size_t> refs = *lrefs;
    refs.insert(refs.end(), rrefs->begin(), rrefs->end());
    bool all_probe = true;
    bool all_build = true;
    for (size_t c : refs) {
      if (c > node->probe_arity) all_probe = false;
      if (c <= node->probe_arity) all_build = false;
    }
    if (all_probe && !refs.empty()) {
      node->children[0]->stages.push_back(std::move(stage));
      stages.erase(stages.begin() + static_cast<std::ptrdiff_t>(i));
      stats->filters_pushed++;
      continue;
    }
    if (all_build && !refs.empty()) {
      if (g_mutation != PassMutation::kNoShiftOnBuildPushdown) {
        stage.program.ShiftColumns(node->probe_arity);
        stage.rhs.ShiftColumns(node->probe_arity);
      }
      node->children[1]->stages.push_back(std::move(stage));
      stages.erase(stages.begin() + static_cast<std::ptrdiff_t>(i));
      stats->filters_pushed++;
      continue;
    }
    ++i;
  }
}

/// Pass 4: a leading field==field filter spanning both sides of a cross
/// join is an equi-join predicate; promote the node to kHashJoin.
void DetectHashJoin(IrNode* node, PassStats* stats) {
  if (node->stages.empty() ||
      node->stages.front().kind != StageKind::kFilter) {
    return;
  }
  const auto lf = node->stages.front().program.FieldRef();
  const auto rf = node->stages.front().rhs.FieldRef();
  if (!lf.has_value() || !rf.has_value()) return;
  const size_t arity = node->probe_arity;
  size_t probe_key = 0;
  size_t build_key = 0;
  if (*lf >= 1 && *lf <= arity && *rf > arity) {
    probe_key = *lf;
    build_key = *rf - arity;
  } else if (*rf >= 1 && *rf <= arity && *lf > arity) {
    probe_key = *rf;
    build_key = *lf - arity;
  } else {
    return;
  }
  if (g_mutation == PassMutation::kHashJoinProbeKeyOutOfBounds) {
    probe_key = arity + 5;  // Mutation: key off the end of the probe row.
  }
  if (g_mutation == PassMutation::kHashJoinWrongBuildKey) {
    build_key = build_key == 1 ? 2 : 1;  // Mutation: wrong build column.
  }
  node->kind = IrKind::kHashJoin;
  node->probe_key = probe_key;
  node->build_key = build_key;
  node->stages.erase(node->stages.begin());
  stats->hash_joins++;
}

// ------------------------------------------------------------------
// Fact-driven passes (5-7): consumers of the dataflow.h lattice.

/// Composes adjacent gather projections: project(g1) ∘ project(g2) ≡
/// project(g1[g2]) — the intermediate tuple (and any column of g1 that g2
/// never reads) disappears.
void ComposeGathers(IrNode* node, PassStats* stats) {
  auto& stages = node->stages;
  size_t i = 0;
  while (i + 1 < stages.size()) {
    if (stages[i].kind != StageKind::kProject ||
        stages[i + 1].kind != StageKind::kProject ||
        !stages[i].program.Gather().has_value() ||
        !stages[i + 1].program.Gather().has_value()) {
      ++i;
      continue;
    }
    const std::vector<size_t> g1 = *stages[i].program.Gather();
    const std::vector<size_t> g2 = *stages[i + 1].program.Gather();
    bool in_range = true;
    for (size_t c : g2) {
      if (c < 1 || c > g1.size()) {
        in_range = false;
        break;
      }
    }
    if (!in_range) {
      ++i;
      continue;
    }
    std::vector<size_t> composed(g2.size());
    for (size_t j = 0; j < g2.size(); ++j) composed[j] = g1[g2[j] - 1];
    std::vector<size_t> used = g2;
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    stats->dead_columns += g1.size() - used.size();
    stats->projections_pushed++;
    stages[i].program = RowProgram::GatherOf(composed);
    stages.erase(stages.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    // Stay on i: the composed gather may chain with the next stage too.
  }
}

/// The sorted distinct raw-source columns a stage list reads, walking the
/// demand backwards from "the consumer needs everything". nullopt when the
/// whole raw row is (or may be) needed.
std::optional<std::vector<size_t>> StageListDemand(
    const std::vector<Stage>& stages) {
  bool all = true;  // demand is "every column of the current space"
  std::vector<size_t> demand;
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    const Stage& stage = *it;
    if (stage.kind == StageKind::kFilter) {
      const auto lrefs = stage.program.ColumnRefs();
      const auto rrefs = stage.rhs.ColumnRefs();
      if (!lrefs.has_value() || !rrefs.has_value()) return std::nullopt;
      if (all) continue;  // refs are a subset of "everything"
      demand.insert(demand.end(), lrefs->begin(), lrefs->end());
      demand.insert(demand.end(), rrefs->begin(), rrefs->end());
      continue;
    }
    const RowProgram& program = stage.program;
    if (program.IsIdentity()) continue;
    if (const auto field = program.FieldRef(); field.has_value()) {
      all = false;
      demand.assign(1, *field);
      continue;
    }
    if (const auto& gather = program.Gather(); gather.has_value()) {
      if (all) {
        demand = *gather;
        all = false;
      } else {
        std::vector<size_t> translated;
        translated.reserve(demand.size());
        for (size_t d : demand) {
          if (d < 1 || d > gather->size()) return std::nullopt;
          translated.push_back((*gather)[d - 1]);
        }
        demand = std::move(translated);
      }
      continue;
    }
    const auto refs = program.ColumnRefs();
    if (!refs.has_value()) return std::nullopt;  // the row escapes
    // A general program reads exactly its refs, whatever the consumer
    // takes from its output.
    demand = *refs;
    all = false;
  }
  if (all) return std::nullopt;
  std::sort(demand.begin(), demand.end());
  demand.erase(std::unique(demand.begin(), demand.end()), demand.end());
  return demand;
}

/// Narrows one join's sides to the demanded columns: appends narrowing
/// gathers to the children, remaps the join's raw-space stage prefix, and
/// rebases probe_arity and the hash keys.
Status NarrowJoin(IrNode* node, const IrFactsMap& facts, PassStats* stats) {
  auto build_it = facts.find(node->children[1].get());
  if (build_it == facts.end() ||
      build_it->second.shape != IrFacts::Shape::kTuple) {
    return Status::Ok();  // build arity unknown: nothing provable
  }
  const size_t pa = node->probe_arity;
  const size_t ba = build_it->second.arity;
  auto demand_opt = StageListDemand(node->stages);
  if (!demand_opt.has_value()) return Status::Ok();
  std::vector<size_t> demand = *std::move(demand_opt);
  if (node->kind == IrKind::kHashJoin &&
      g_mutation != PassMutation::kDeadColumnDropsLive) {
    // The keys are read by the join itself, before any stage runs.
    demand.push_back(node->probe_key);
    demand.push_back(pa + node->build_key);
  }
  std::sort(demand.begin(), demand.end());
  demand.erase(std::unique(demand.begin(), demand.end()), demand.end());
  for (size_t c : demand) {
    if (c < 1 || c > pa + ba) {
      return Status::Internal(
          "ir verify: join stage references column " + std::to_string(c) +
          " of " + std::to_string(pa + ba) + "-column joined rows");
    }
  }
  std::vector<size_t> probe_keep;
  std::vector<size_t> build_keep;
  for (size_t c : demand) {
    if (c <= pa) {
      probe_keep.push_back(c);
    } else {
      build_keep.push_back(c - pa);
    }
  }
  if (probe_keep.size() == pa && build_keep.size() == ba) return Status::Ok();

  // Old joined column -> new joined column (0 = dead, never referenced).
  std::vector<size_t> remap(pa + ba, 0);
  for (size_t idx = 0; idx < probe_keep.size(); ++idx) {
    remap[probe_keep[idx] - 1] = idx + 1;
  }
  for (size_t idx = 0; idx < build_keep.size(); ++idx) {
    remap[pa + build_keep[idx] - 1] = probe_keep.size() + idx + 1;
  }
  // Remap the raw-space stage prefix: filters pass coordinates through;
  // the first real projection re-bases them and ends the raw space.
  for (Stage& stage : node->stages) {
    if (stage.kind == StageKind::kFilter) {
      if (!stage.program.RemapColumns(remap) ||
          !stage.rhs.RemapColumns(remap)) {
        return Status::Internal(
            "ir verify: join filter references a column outside the "
            "demand set");
      }
      continue;
    }
    if (stage.program.IsIdentity()) continue;
    if (!stage.program.RemapColumns(remap)) {
      return Status::Internal(
          "ir verify: join projection references a column outside the "
          "demand set");
    }
    break;
  }
  if (probe_keep.size() < pa) {
    Stage narrow;
    narrow.kind = StageKind::kProject;
    narrow.program = RowProgram::GatherOf(probe_keep);
    node->children[0]->stages.push_back(std::move(narrow));
    stats->dead_columns += pa - probe_keep.size();
  }
  if (build_keep.size() < ba) {
    Stage narrow;
    narrow.kind = StageKind::kProject;
    narrow.program = RowProgram::GatherOf(build_keep);
    node->children[1]->stages.push_back(std::move(narrow));
    stats->dead_columns += ba - build_keep.size();
  }
  node->probe_arity = probe_keep.size();
  if (node->kind == IrKind::kHashJoin) {
    // Rebase the keys; a key missing from the demand set (only possible
    // under the kDeadColumnDropsLive mutation) is left stale for the
    // verifier / validator to find.
    for (size_t idx = 0; idx < probe_keep.size(); ++idx) {
      if (probe_keep[idx] == node->probe_key) {
        node->probe_key = idx + 1;
        break;
      }
    }
    for (size_t idx = 0; idx < build_keep.size(); ++idx) {
      if (build_keep[idx] == node->build_key) {
        node->build_key = idx + 1;
        break;
      }
    }
  }
  return Status::Ok();
}

/// Pass 5: dead-column elimination. Top-down so a parent's narrowing
/// gathers land on the children before those are considered; the
/// pre-pass facts stay valid because stage-list edits never change any
/// *descendant's* raw output.
Status DeadColumnWalk(IrNode* node, const IrFactsMap& facts,
                      PassStats* stats) {
  ComposeGathers(node, stats);
  if (node->kind == IrKind::kCrossJoin || node->kind == IrKind::kHashJoin) {
    BAGALG_RETURN_IF_ERROR(NarrowJoin(node, facts, stats));
  }
  for (auto& child : node->children) {
    BAGALG_RETURN_IF_ERROR(DeadColumnWalk(child.get(), facts, stats));
  }
  return Status::Ok();
}

Status DeadColumnElim(IrPlan* plan) {
  BAGALG_ASSIGN_OR_RETURN(IrFactsMap facts, ComputeIrFacts(*plan));
  return DeadColumnWalk(plan->root.get(), facts, &plan->passes);
}

/// Pass 6: constant folding. Walks each node's stage list with live facts:
/// stage sides that read proven-constant columns become constants, a
/// constant==constant filter is erased (equal) or empties the pipeline
/// (unequal — no row can ever pass).
Status ConstFoldNode(IrNode* node, PassStats* stats, IrFacts* out) {
  std::vector<IrFacts> child_facts(node->children.size());
  std::vector<const IrFacts*> child_ptrs;
  child_ptrs.reserve(node->children.size());
  for (size_t i = 0; i < node->children.size(); ++i) {
    BAGALG_RETURN_IF_ERROR(
        ConstFoldNode(node->children[i].get(), stats, &child_facts[i]));
    child_ptrs.push_back(&child_facts[i]);
  }
  BAGALG_ASSIGN_OR_RETURN(IrFacts facts, NodeBaseFacts(*node, child_ptrs));
  bool provably_empty = false;
  size_t i = 0;
  while (i < node->stages.size()) {
    Stage& stage = node->stages[i];
    if (stage.kind == StageKind::kFilter) {
      const auto lfield = stage.program.FieldRef();
      if (lfield.has_value()) {
        auto it = facts.const_cols.find(*lfield);
        if (it != facts.const_cols.end()) {
          stage.program = RowProgram::Constant(it->second);
          stats->const_folds++;
        }
      }
      const auto rfield = stage.rhs.FieldRef();
      if (rfield.has_value()) {
        auto it = facts.const_cols.find(*rfield);
        if (it != facts.const_cols.end()) {
          stage.rhs = RowProgram::Constant(it->second);
          stats->const_folds++;
        }
      }
      const auto& lconst = stage.program.ConstantValue();
      const auto& rconst = stage.rhs.ConstantValue();
      if (lconst.has_value() && rconst.has_value()) {
        bool equal = *lconst == *rconst;
        if (g_mutation == PassMutation::kConstFoldInverted) equal = !equal;
        if (equal) {
          // Tautological filter: every row passes.
          node->stages.erase(node->stages.begin() +
                             static_cast<std::ptrdiff_t>(i));
          stats->const_folds++;
          continue;
        }
        provably_empty = true;  // no row ever passes
        break;
      }
    } else if (stage.kind == StageKind::kProject) {
      const auto field = stage.program.FieldRef();
      if (field.has_value()) {
        auto it = facts.const_cols.find(*field);
        if (it != facts.const_cols.end()) {
          stage.program = RowProgram::Constant(it->second);
          stats->const_folds++;
        }
      }
    }
    BAGALG_ASSIGN_OR_RETURN(facts, ApplyStageFacts(stage, facts));
    ++i;
  }
  if (provably_empty) {
    node->kind = IrKind::kScan;
    node->children.clear();
    node->stages.clear();
    node->scan_name = "empty";
    node->scan_bag = Bag();
    node->probe_arity = 0;
    node->probe_key = 0;
    node->build_key = 0;
    stats->const_folds++;
    BAGALG_ASSIGN_OR_RETURN(facts, NodeBaseFacts(*node, {}));
  }
  *out = std::move(facts);
  return Status::Ok();
}

Status ConstFold(IrPlan* plan) {
  IrFacts root_facts;
  return ConstFoldNode(plan->root.get(), &plan->passes, &root_facts);
}

/// Pass 7: ε over a provably dup-free pipeline is the identity — splice
/// the kDupElim out and hand its stages to the child. `facts` tracks the
/// splice so ancestors see the surviving node's post-stage facts.
void DropDupElims(std::unique_ptr<IrNode>* slot, IrFactsMap* facts,
                  PassStats* stats) {
  IrNode* node = slot->get();
  for (auto& child : node->children) DropDupElims(&child, facts, stats);
  if (node->kind != IrKind::kDupElim) return;
  auto child_it = facts->find(node->children[0].get());
  bool dup_free =
      child_it != facts->end() && child_it->second.dup_free;
  if (g_mutation == PassMutation::kDupElimDropUnproven) dup_free = true;
  if (!dup_free) return;
  auto node_it = facts->find(node);
  std::unique_ptr<IrNode> keep = std::move(node->children[0]);
  for (Stage& stage : node->stages) keep->stages.push_back(std::move(stage));
  // The survivor now produces what the ε-node produced (ε over dup-free
  // input is the identity), so it inherits the ε-node's post-stage facts.
  if (node_it != facts->end()) (*facts)[keep.get()] = node_it->second;
  *slot = std::move(keep);
  stats->dup_elims_removed++;
}

Status DropRedundantDupElim(IrPlan* plan) {
  BAGALG_ASSIGN_OR_RETURN(IrFactsMap facts, ComputeIrFacts(*plan));
  DropDupElims(&plan->root, &facts, &plan->passes);
  return Status::Ok();
}

// ------------------------------------------------------------------
// Pass 8: CSE marking.

/// CSE key: the node's source surface syntax plus its fused stages. The
/// pre-lowering rewriter canonicalizes equal subplans, so syntactically
/// equal keys denote equal results; including the stages distinguishes
/// occurrences that acquired different fused work from their parents.
std::string CseKeyOf(const IrNode& node) {
  if (!node.origin.IsValid()) return std::string();
  std::string key = node.origin.ToString();
  if (g_mutation == PassMutation::kCseKeyIgnoresStages) return key;
  for (const Stage& stage : node.stages) {
    key += "\x1f";
    key += stage.ToString();
  }
  return key;
}

void CollectCseCandidates(IrNode* node,
                          std::map<std::string, std::vector<IrNode*>>* seen) {
  // Scans are already shared-rep bags; caching them buys nothing. Bridges
  // re-enter the Volcano engine which has its own lifecycle.
  if (node->kind != IrKind::kScan && node->kind != IrKind::kBridge) {
    const std::string key = CseKeyOf(*node);
    if (!key.empty()) (*seen)[key].push_back(node);
  }
  for (auto& child : node->children) CollectCseCandidates(child.get(), seen);
}

void MarkCse(IrPlan* plan) {
  std::map<std::string, std::vector<IrNode*>> seen;
  CollectCseCandidates(plan->root.get(), &seen);
  for (auto& [key, nodes] : seen) {
    if (nodes.size() < 2) continue;
    for (IrNode* node : nodes) {
      node->cse_shared = true;
      node->cse_key = key;
    }
    plan->passes.cse_nodes++;
  }
}

// ------------------------------------------------------------------
// Legality check (unchanged contract; see passes.h).

/// True iff the expression subtree contains an operator whose output can be
/// astronomically larger than its input — the same syntactic criterion
/// static_cost uses for Tractability::kExponentialTower (§3 dichotomy).
bool ContainsIntractable(const Expr& e) {
  if (!e.IsValid()) return false;
  const ExprKind kind = e.node().kind;
  if (kind == ExprKind::kPowerset || kind == ExprKind::kPowerbag) {
    return true;
  }
  for (const Expr& c : e.node().children) {
    if (ContainsIntractable(c)) return true;
  }
  return false;
}

Status CheckNode(const IrNode& node) {
  // Child arity per kind.
  size_t want_children = 0;
  switch (node.kind) {
    case IrKind::kScan:
    case IrKind::kBridge:
      want_children = 0;
      break;
    case IrKind::kUnionAll:
      if (node.children.size() < 2) {
        return Status::Internal("IR union with fewer than two inputs");
      }
      want_children = node.children.size();
      break;
    case IrKind::kCrossJoin:
    case IrKind::kHashJoin:
    case IrKind::kMerge:
      want_children = 2;
      break;
    case IrKind::kDupElim:
      want_children = 1;
      break;
  }
  if (node.children.size() != want_children) {
    return Status::Internal(std::string("IR node ") + IrKindName(node.kind) +
                            " has wrong child count");
  }
  if (node.kind == IrKind::kHashJoin) {
    if (node.probe_key < 1 || node.probe_key > node.probe_arity ||
        node.build_key < 1) {
      return Status::Internal("hash join key outside its side's arity");
    }
  }
  // Fused stages are only legal over tractable producers: a materializing
  // powerset/powerbag in pipeline position must never silently stream
  // through a fused loop (it cannot lower today; this guards future
  // lowering changes — and is the same condition lint rule W005 warns
  // about at the algebra level).
  if (!node.stages.empty() && ContainsIntractable(node.origin)) {
    return Status::Unsupported(
        "powerset/powerbag below a fused pipeline is not fusible");
  }
  for (const Stage& stage : node.stages) {
    if (stage.program.insns().empty()) {
      return Status::Internal("empty stage program in IR plan");
    }
    if (stage.kind == StageKind::kFilter && stage.rhs.insns().empty()) {
      return Status::Internal("empty filter rhs program in IR plan");
    }
  }
  for (const auto& child : node.children) {
    BAGALG_RETURN_IF_ERROR(CheckNode(*child));
  }
  return Status::Ok();
}

// ------------------------------------------------------------------
// The pipeline driver.

void WalkLocal(IrNode* node, PassStats* stats,
               void (*fn)(IrNode*, PassStats*)) {
  fn(node, stats);
  for (auto& child : node->children) WalkLocal(child.get(), stats, fn);
}

IrPlan SnapshotPlan(const IrPlan& plan) {
  IrPlan snapshot;
  snapshot.root = plan.root->Clone();
  snapshot.batch_size = plan.batch_size;
  snapshot.passes = plan.passes;
  snapshot.rewrites = plan.rewrites;
  return snapshot;
}

bool SameStats(const PassStats& a, const PassStats& b) {
  return a.filters_pushed == b.filters_pushed &&
         a.projections_pushed == b.projections_pushed &&
         a.hash_joins == b.hash_joins && a.cse_nodes == b.cse_nodes &&
         a.dead_columns == b.dead_columns &&
         a.dup_elims_removed == b.dup_elims_removed &&
         a.const_folds == b.const_folds;
}

}  // namespace

void SetPassMutationForTesting(PassMutation mutation) {
  g_mutation = mutation;
}

Status RunPasses(IrPlan* plan, const PassOptions& options) {
  if (plan->root == nullptr) return Status::Ok();

  auto run_one = [plan, &options](
                     const char* name,
                     const std::function<Status(IrPlan*)>& fn) -> Status {
    IrPlan before;
    if (options.observer) before = SnapshotPlan(*plan);
    BAGALG_RETURN_IF_ERROR(fn(plan));
    if (options.verify_each) {
      Status verified = VerifyIr(*plan);
      if (!verified.ok()) {
        return Status::Internal(std::string("ir verify after pass ") + name +
                                ": " + verified.message());
      }
    }
    if (options.observer) {
      BAGALG_RETURN_IF_ERROR(options.observer(name, before, *plan));
    }
    return Status::Ok();
  };
  auto local = [](void (*fn)(IrNode*, PassStats*)) {
    return [fn](IrPlan* p) -> Status {
      WalkLocal(p->root.get(), &p->passes, fn);
      return Status::Ok();
    };
  };

  // Local rewrites to a fixpoint: each pass only counts on change, so the
  // stats stabilize exactly when the plan does. The bound is a safety rail;
  // real plans settle in two or three rounds.
  for (int round = 0; round < 8; ++round) {
    const PassStats entry = plan->passes;
    BAGALG_RETURN_IF_ERROR(
        run_one("reorder-stages", local(&ReorderStages)));
    BAGALG_RETURN_IF_ERROR(run_one("union-pushdown", local([](IrNode* n,
                                                             PassStats* s) {
      if (n->kind == IrKind::kUnionAll) PushIntoUnion(n, s);
    })));
    BAGALG_RETURN_IF_ERROR(
        run_one("join-side-pushdown", local([](IrNode* n, PassStats* s) {
          if (n->kind == IrKind::kCrossJoin) PushJoinSideFilters(n, s);
        })));
    BAGALG_RETURN_IF_ERROR(
        run_one("hash-join-detect", local([](IrNode* n, PassStats* s) {
          if (n->kind == IrKind::kCrossJoin) DetectHashJoin(n, s);
        })));
    if (SameStats(entry, plan->passes)) break;
  }

  // Fact-driven passes, then CSE keys over the final stage lists.
  BAGALG_RETURN_IF_ERROR(run_one("dead-column-elim", &DeadColumnElim));
  BAGALG_RETURN_IF_ERROR(run_one("const-fold", &ConstFold));
  BAGALG_RETURN_IF_ERROR(
      run_one("drop-redundant-dup-elim", &DropRedundantDupElim));
  BAGALG_RETURN_IF_ERROR(run_one("cse-mark", [](IrPlan* p) -> Status {
    MarkCse(p);
    return Status::Ok();
  }));
  return Status::Ok();
}

Status CheckFusionLegality(const IrPlan& plan) {
  if (plan.root == nullptr) {
    return Status::Internal("IR plan without a root");
  }
  return CheckNode(*plan.root);
}

}  // namespace bagalg::ir
