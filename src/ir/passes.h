#ifndef BAGALG_IR_PASSES_H_
#define BAGALG_IR_PASSES_H_

/// \file passes.h
/// IR-level optimization passes, run by LowerToIr after tree construction.
///
/// Pass order (RunPasses):
///  1. stage reordering — bubble filters leftwards: past other filters
///     freely, past gather-shaped projections by remapping their column
///     references through the gather. Produces the leading-filter form the
///     later passes key on.
///  2. union pushdown — stages on a kUnionAll clone into every child, so
///     each input streams through its own fused pipeline instead of paying
///     a post-union pass.
///  3. join-side pushdown — a leading filter on a cross join whose columns
///     all fall on one side moves into that side (build-side programs shift
///     by the probe arity). Shrinks the join's inputs.
///  4. hash-join detection — a leading field==field filter that spans the
///     two sides of a cross join turns the node into kHashJoin. The O(|L|·
///     |R|) loop becomes O(|L|+|R|) — the headline win on bench_exec joins.
///  5. CSE marking — duplicate subplans (by canonical surface syntax, which
///     the pre-lowering rewriter normalizes) are marked cse_shared; the
///     executor materializes the first occurrence once per run and serves
///     the rest from the cached bag.
///
/// Every pass is multiplicity-sound: filters commute with each other and
/// with projections under bag semantics because stage programs are pure and
/// per-row, and pushing a one-sided filter below a product filters the same
/// (row, count) pairs the joined filter would have dropped.

#include "src/ir/ir.h"
#include "src/util/status.h"

namespace bagalg::ir {

/// Runs all passes over the plan in place, accumulating plan.passes.
void RunPasses(IrPlan* plan);

/// Defensive post-pass validation: every node hosting fused stages must be
/// in the fusible fragment (no powerset/powerbag origins — those never
/// lower, but a future lowering bug must fail loudly, not silently drop
/// multiplicities), hash-join keys must lie inside their sides' arities,
/// and build-side materialization must not be provably astronomical per
/// static_cost. Returns kUnsupported / kInternal with a diagnostic.
Status CheckFusionLegality(const IrPlan& plan);

}  // namespace bagalg::ir

#endif  // BAGALG_IR_PASSES_H_
