#ifndef BAGALG_IR_PASSES_H_
#define BAGALG_IR_PASSES_H_

/// \file passes.h
/// IR-level optimization passes, run by LowerToIr after tree construction.
///
/// RunPasses drives a whole-plan pass pipeline. The local rewrites iterate
/// to a fixpoint (each one no-ops — and stops counting — once the plan
/// stabilizes), then the fact-driven passes consume the dataflow.h facts,
/// and CSE marking runs last so its keys see final stage lists:
///
///  1. stage reordering — bubble filters leftwards: past other filters
///     freely, past gather-shaped projections by remapping their column
///     references through the gather. Produces the leading-filter form the
///     later passes key on.
///  2. union pushdown — stages on a kUnionAll clone into every child, so
///     each input streams through its own fused pipeline instead of paying
///     a post-union pass.
///  3. join-side pushdown — a leading filter on a cross join whose columns
///     all fall on one side moves into that side (build-side programs shift
///     by the probe arity). Shrinks the join's inputs.
///  4. hash-join detection — a leading field==field filter that spans the
///     two sides of a cross join turns the node into kHashJoin. The O(|L|·
///     |R|) loop becomes O(|L|+|R|) — the headline win on bench_exec joins.
///  5. dead-column elimination — composes adjacent gather projections and,
///     per join, narrows each side to the columns its stage list (plus the
///     hash keys) actually demands, appending narrowing gathers to the
///     children and remapping the join's stages. PassStats::dead_columns.
///  6. constant folding — stage programs reading proven-constant columns
///     fold to constants; a filter whose two sides are both constants is
///     erased (equal) or empties the whole pipeline into an empty scan
///     (unequal). PassStats::const_folds.
///  7. redundant dup-elim removal — a kDupElim whose input is provably
///     dup-free (dataflow.h) is spliced out, its stages appended to the
///     child. PassStats::dup_elims_removed.
///  8. CSE marking — duplicate subplans (by canonical surface syntax, which
///     the pre-lowering rewriter normalizes, plus the fused stage list) are
///     marked cse_shared; the executor materializes the first occurrence
///     once per run and serves the rest from the cached bag.
///
/// Every pass is multiplicity-sound: filters commute with each other and
/// with projections under bag semantics because stage programs are pure and
/// per-row; pushing a one-sided filter below a product filters the same
/// (row, count) pairs the joined filter would have dropped; narrowing a
/// join side is a projection the join's own stages already implied; ε over
/// an all-counts-one bag is the identity. Soundness is *checked*, not just
/// argued: with verification on (verify.h), VerifyIr runs after every
/// pass, and the translation-validation harness executes before/after
/// snapshots via the PassObserver hook below.

#include <functional>
#include <string>

#include "src/ir/ir.h"
#include "src/util/status.h"

namespace bagalg::ir {

/// Called after each pass with the pass name and the plan before/after (the
/// before is a snapshot clone). A non-OK return aborts the pipeline —
/// that's how the translation validator rejects a semantics-changing pass.
using PassObserver =
    std::function<Status(const std::string& pass_name, const IrPlan& before,
                         const IrPlan& after)>;

struct PassOptions {
  /// Run VerifyIr after every pass; failures name the offending pass.
  bool verify_each = false;
  /// Snapshot observer (translation validation); null for none. Snapshots
  /// are only cloned when set — the plain path never pays for them.
  PassObserver observer;
};

/// Runs all passes over the plan in place, accumulating plan.passes.
/// Fails when a fact-driven pass hits a structurally inconsistent plan,
/// when per-pass verification rejects a pass's output, or when the
/// observer does.
Status RunPasses(IrPlan* plan, const PassOptions& options = {});

/// Defensive post-pass validation: every node hosting fused stages must be
/// in the fusible fragment (no powerset/powerbag origins — those never
/// lower, but a future lowering bug must fail loudly, not silently drop
/// multiplicities), hash-join keys must lie inside their sides' arities,
/// and build-side materialization must not be provably astronomical per
/// static_cost. Returns kUnsupported / kInternal with a diagnostic.
Status CheckFusionLegality(const IrPlan& plan);

/// Seeded pass mutations: intentionally broken pass variants behind a
/// test-only hook. Each one models a realistic compiler bug; the mutation
/// corpus in tests/verify_test.cc proves every one is rejected by VerifyIr
/// or by translation validation — the checker demonstrably has teeth.
/// Never set outside tests.
enum class PassMutation {
  kNone,
  /// Reordering deletes a filter instead of moving it past a gather.
  kDropFilterDuringReorder,
  /// Reordering remaps filter columns through a rotated gather list.
  kWrongGatherRemap,
  /// Hash-join detection emits a probe key beyond the probe arity.
  kHashJoinProbeKeyOutOfBounds,
  /// Hash-join detection emits the wrong (but often in-bounds) build key.
  kHashJoinWrongBuildKey,
  /// Join-side pushdown forgets to shift build-side column references.
  kNoShiftOnBuildPushdown,
  /// Union pushdown drops the last child after distributing stages.
  kUnionPushdownDropsChild,
  /// Dup-elim removal fires without the dup-freedom proof.
  kDupElimDropUnproven,
  /// Constant folding inverts the equal/unequal decision.
  kConstFoldInverted,
  /// Dead-column elimination forgets that hash keys are live.
  kDeadColumnDropsLive,
  /// CSE keys ignore fused stages, conflating distinct pipelines.
  kCseKeyIgnoresStages,
};

/// Installs `mutation` process-globally for subsequent RunPasses calls.
/// Test-only; always restore kNone.
void SetPassMutationForTesting(PassMutation mutation);

}  // namespace bagalg::ir

#endif  // BAGALG_IR_PASSES_H_
