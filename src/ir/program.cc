#include "src/ir/program.h"

#include <algorithm>
#include <utility>

namespace bagalg::ir {

namespace {

Status CompileInto(const Expr& body, std::vector<RowProgram::Insn>* insns,
                   std::vector<Value>* consts) {
  const ExprNode& n = body.node();
  switch (n.kind) {
    case ExprKind::kVar:
      if (n.index != 0) {
        return Status::Unsupported(
            "pipeline lambdas support a single binder level");
      }
      insns->push_back({RowProgram::OpCode::kLoadRow, 0});
      return Status::Ok();
    case ExprKind::kConst:
      insns->push_back({RowProgram::OpCode::kLoadConst,
                        static_cast<uint32_t>(consts->size())});
      consts->push_back(*n.literal);
      return Status::Ok();
    case ExprKind::kAttrProj:
      BAGALG_RETURN_IF_ERROR(CompileInto(n.children[0], insns, consts));
      insns->push_back({RowProgram::OpCode::kProjField,
                        static_cast<uint32_t>(n.index)});
      return Status::Ok();
    case ExprKind::kTupling: {
      for (const Expr& c : n.children) {
        BAGALG_RETURN_IF_ERROR(CompileInto(c, insns, consts));
      }
      insns->push_back({RowProgram::OpCode::kMakeTuple,
                        static_cast<uint32_t>(n.children.size())});
      return Status::Ok();
    }
    default:
      return Status::Unsupported(
          std::string("operator ") + ExprKindName(n.kind) +
          " in a lambda body is outside the pipeline fragment");
  }
}

}  // namespace

Result<RowProgram> RowProgram::Compile(const Expr& body) {
  RowProgram program;
  BAGALG_RETURN_IF_ERROR(
      CompileInto(body, &program.insns_, &program.consts_));
  program.Reclassify();
  return program;
}

RowProgram RowProgram::Constant(Value v) {
  RowProgram program;
  program.insns_.push_back({OpCode::kLoadConst, 0});
  program.consts_.push_back(std::move(v));
  program.Reclassify();
  return program;
}

RowProgram RowProgram::GatherOf(const std::vector<size_t>& fields) {
  RowProgram program;
  for (size_t f : fields) {
    program.insns_.push_back({OpCode::kLoadRow, 0});
    program.insns_.push_back({OpCode::kProjField, static_cast<uint32_t>(f)});
  }
  program.insns_.push_back(
      {OpCode::kMakeTuple, static_cast<uint32_t>(fields.size())});
  program.Reclassify();
  return program;
}

void RowProgram::Reclassify() {
  identity_ = false;
  field_ref_.reset();
  gather_.reset();
  const_val_.reset();
  const auto& p = insns_;
  // Row-independent programs compute one value for every input; fold it
  // now so stages built from them can run (and be folded) without the
  // stack machine. A malformed constant body (projection off a non-tuple
  // constant) simply stays unclassified and fails at Run time.
  if (!p.empty() &&
      std::none_of(p.begin(), p.end(), [](const Insn& insn) {
        return insn.op == OpCode::kLoadRow;
      })) {
    Result<Value> folded = Run(Value::Tuple({}));
    if (folded.ok()) const_val_ = std::move(folded).value();
    return;
  }
  if (p.size() == 1 && p[0].op == OpCode::kLoadRow) {
    identity_ = true;
    return;
  }
  if (p.size() == 2 && p[0].op == OpCode::kLoadRow &&
      p[1].op == OpCode::kProjField) {
    field_ref_ = p[1].arg;
    return;
  }
  // τ(α_a1(x), ..., α_ak(x)): pairs of (LoadRow, ProjField) closed by one
  // MakeTuple consuming everything.
  if (p.size() >= 3 && p.back().op == OpCode::kMakeTuple &&
      p.back().arg * 2 + 1 == p.size()) {
    std::vector<size_t> fields;
    for (size_t i = 0; i + 1 < p.size(); i += 2) {
      if (p[i].op != OpCode::kLoadRow || p[i + 1].op != OpCode::kProjField) {
        return;
      }
      fields.push_back(p[i + 1].arg);
    }
    gather_ = std::move(fields);
  }
}

std::optional<std::vector<size_t>> RowProgram::ColumnRefs() const {
  std::vector<size_t> refs;
  for (size_t i = 0; i < insns_.size(); ++i) {
    if (insns_[i].op != OpCode::kLoadRow) continue;
    // The row value itself must never escape: each load must be immediately
    // projected, pinning the access to one column.
    if (i + 1 >= insns_.size() ||
        insns_[i + 1].op != OpCode::kProjField) {
      return std::nullopt;
    }
    refs.push_back(insns_[i + 1].arg);
  }
  std::sort(refs.begin(), refs.end());
  refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
  return refs;
}

void RowProgram::ShiftColumns(size_t delta) {
  for (size_t i = 0; i + 1 < insns_.size(); ++i) {
    if (insns_[i].op == OpCode::kLoadRow &&
        insns_[i + 1].op == OpCode::kProjField) {
      insns_[i + 1].arg -= static_cast<uint32_t>(delta);
    }
  }
  Reclassify();
}

bool RowProgram::RemapColumns(const std::vector<size_t>& map) {
  for (size_t i = 0; i + 1 < insns_.size(); ++i) {
    if (insns_[i].op == OpCode::kLoadRow &&
        insns_[i + 1].op == OpCode::kProjField) {
      const uint32_t c = insns_[i + 1].arg;
      if (c == 0 || c > map.size()) return false;
    }
  }
  for (size_t i = 0; i + 1 < insns_.size(); ++i) {
    if (insns_[i].op == OpCode::kLoadRow &&
        insns_[i + 1].op == OpCode::kProjField) {
      insns_[i + 1].arg =
          static_cast<uint32_t>(map[insns_[i + 1].arg - 1]);
    }
  }
  Reclassify();
  return true;
}

Result<Value> RowProgram::Run(const Value& row) const {
  // The all-fast-path callers never reach here; still, keep the machine
  // allocation-light: the stack rarely exceeds a handful of slots.
  std::vector<Value> stack;
  stack.reserve(4);
  for (const Insn& insn : insns_) {
    switch (insn.op) {
      case OpCode::kLoadRow:
        stack.push_back(row);
        break;
      case OpCode::kLoadConst:
        stack.push_back(consts_[insn.arg]);
        break;
      case OpCode::kProjField: {
        Value v = std::move(stack.back());
        stack.pop_back();
        if (!v.IsTuple() || insn.arg < 1 || insn.arg > v.fields().size()) {
          return Status::InvalidArgument(
              "bad attribute projection in pipeline lambda");
        }
        stack.push_back(v.fields()[insn.arg - 1]);
        break;
      }
      case OpCode::kMakeTuple: {
        std::vector<Value> fields(insn.arg);
        for (size_t i = insn.arg; i > 0; --i) {
          fields[i - 1] = std::move(stack.back());
          stack.pop_back();
        }
        stack.push_back(Value::Tuple(std::move(fields)));
        break;
      }
    }
  }
  return std::move(stack.back());
}

std::string RowProgram::ToString() const {
  // Symbolic re-rendering by running the machine over strings.
  std::vector<std::string> stack;
  for (const Insn& insn : insns_) {
    switch (insn.op) {
      case OpCode::kLoadRow:
        stack.push_back("x");
        break;
      case OpCode::kLoadConst:
        stack.push_back(consts_[insn.arg].ToString());
        break;
      case OpCode::kProjField: {
        std::string base = std::move(stack.back());
        stack.pop_back();
        stack.push_back(base == "x" ? "a" + std::to_string(insn.arg)
                                    : base + ".a" + std::to_string(insn.arg));
        break;
      }
      case OpCode::kMakeTuple: {
        const size_t first = stack.size() - insn.arg;
        std::string joined;
        for (size_t i = first; i < stack.size(); ++i) {
          if (i > first) joined += ", ";
          joined += stack[i];
        }
        stack.resize(first);
        stack.push_back("t(" + joined + ")");
        break;
      }
    }
  }
  return stack.empty() ? std::string("?") : stack.back();
}

}  // namespace bagalg::ir
