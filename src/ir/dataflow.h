#ifndef BAGALG_IR_DATAFLOW_H_
#define BAGALG_IR_DATAFLOW_H_

/// \file dataflow.h
/// Property dataflow over the fused loop IR: per-node facts on a small
/// lattice, computed bottom-up in one pass.
///
/// Every fact is *may-unknown / must-proven*: a set property (dup_free, a
/// key, a constant column) is only recorded when the transfer rules prove
/// it; absence means "unknown", never "false". That makes every consumer
/// sound by construction — the fact-driven passes (passes.cc) only fire on
/// proven facts, and the verifier (verify.h) treats a transfer-rule
/// *failure* (an arity mismatch, an out-of-range column reference) as a
/// structural error in the plan.
///
/// The lattice per node, in dataflow order:
///
///   shape        ⊥ (unknown) | non-tuple | tuple(arity)
///   dup_free     every multiplicity in the node's output is exactly 1
///   keys         column sets on which distinct entries differ (the full
///                column set is an implicit key: canonical entries are
///                distinct values, so two entries always differ somewhere)
///   const_cols   columns carrying the same value in every row
///   disjoint     (kUnionAll) children proven pairwise entry-disjoint —
///                with dup-free children this makes the union dup-free
///   rows         [min, max] interval over *distinct entries* streamed;
///                max folds in the static_cost annotation (IrNode::est_rows)
///                when the structural bound is weaker
///
/// Facts describe the node's *post-stage* output; ApplyStageFacts steps a
/// fact set through one fused stage, and NodeBaseFacts combines child facts
/// through the node's source semantics. Both are exposed so passes can walk
/// a stage list incrementally (const-fold does exactly that).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/value.h"
#include "src/ir/ir.h"
#include "src/util/result.h"

namespace bagalg::ir {

struct IrFacts {
  enum class Shape : uint8_t { kUnknown, kNonTuple, kTuple };

  Shape shape = Shape::kUnknown;
  size_t arity = 0;  ///< valid iff shape == kTuple

  bool dup_free = false;
  /// Proven keys: 1-based column sets, each sorted ascending. Bounded by
  /// kMaxKeys; the implicit full-column key is not stored (HasKeyWithin
  /// handles it).
  std::vector<std::vector<size_t>> keys;
  /// Proven constant columns (1-based).
  std::map<size_t, Value> const_cols;
  /// kUnionAll only: children proven pairwise disjoint.
  bool disjoint_children = false;

  /// Distinct-entry cardinality interval. max_rows nullopt = unbounded.
  uint64_t min_rows = 0;
  std::optional<uint64_t> max_rows;

  /// True when `cols` (1-based, any order) is proven to contain a key —
  /// an explicit one, or the implicit full-column key when the shape is a
  /// known tuple and `cols` covers every column. A gather over such a
  /// column set is injective on entries.
  bool HasKeyWithin(const std::vector<size_t>& cols) const;

  /// Compact rendering for explain ir --facts, e.g.
  /// "[dup_free key{1} const{2='k'} rows=3..40]". Empty when nothing is
  /// proven beyond an unknown shape.
  std::string ToString() const;
};

/// Facts keyed by node; populated for every node in the plan.
using IrFactsMap = std::map<const IrNode*, IrFacts>;

/// Steps `in` through one fused stage. Fails (kInternal) when the stage is
/// structurally inconsistent with the incoming shape: a column reference
/// off the end of a known tuple, a filter over a known non-tuple, an empty
/// program.
Result<IrFacts> ApplyStageFacts(const Stage& stage, const IrFacts& in);

/// Combines child facts through the node's source semantics (scan payload,
/// union, join, merge, dup-elim), *before* the node's own stages. Fails
/// (kInternal) on structural inconsistencies: child arity mismatches under
/// a union, hash keys outside their side's arity, non-tuple join inputs,
/// wrong child counts.
Result<IrFacts> NodeBaseFacts(const IrNode& node,
                              const std::vector<const IrFacts*>& children);

/// Bottom-up facts for every node (post-stage). Fails on the first
/// structural inconsistency — the error doubles as the verifier's finding.
Result<IrFactsMap> ComputeIrFacts(const IrPlan& plan);

}  // namespace bagalg::ir

#endif  // BAGALG_IR_DATAFLOW_H_
