#ifndef BAGALG_IR_IR_H_
#define BAGALG_IR_IR_H_

/// \file ir.h
/// The fused loop IR: a batched pipeline tree between BALG plans and
/// execution.
///
/// Where the Volcano layer (src/exec) maps one algebra operator to one
/// physical operator pulling one Row per virtual call, the IR collapses
/// every fusible chain of MAP / σ / α-projection into a *stage list*
/// attached to the node that produces the rows. An IrNode is therefore a
/// pipeline: a source (scan, join, union, merge) plus zero or more fused
/// stages applied to each batch in one pass, with no intermediate Bag
/// materialized between them. Batches are columnar (values ∥ counts) and
/// default to kDefaultBatchSize rows, so per-row costs — virtual dispatch,
/// governor ticking, span bookkeeping — amortize across the batch.
///
/// The supported fragment is the same BALG¹ fragment as exec::CompilePipeline
/// (paper §4): no powerset / bag-destroy / fixpoints / nested-bag
/// construction, object-level lambda bodies only. Lowering anything else
/// returns kUnsupported and callers fall back.
///
/// The tree is deliberately execution-strategy-neutral: ExecuteIr (exec_ir.h)
/// interprets it batch-at-a-time today, and a codegen backend can walk the
/// same nodes to emit loops later — nothing in the node structure assumes an
/// interpreter.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/algebra/expr.h"
#include "src/core/value.h"
#include "src/exec/operators.h"
#include "src/ir/program.h"

namespace bagalg::ir {

/// Rows per batch. 1024 keeps a batch's value handles + counts comfortably
/// in L2 while amortizing per-batch overhead to noise.
inline constexpr size_t kDefaultBatchSize = 1024;

/// A columnar chunk of rows: parallel arrays of values and multiplicities.
/// The arena the vectorized interpreter streams through; cursors reuse one
/// batch across Next() calls, so steady-state execution does not allocate
/// per row.
struct RowBatch {
  std::vector<Value> values;
  std::vector<Mult> counts;

  size_t size() const { return values.size(); }
  bool empty() const { return values.empty(); }
  void Clear() {
    values.clear();
    counts.clear();
  }
  void Reserve(size_t n) {
    values.reserve(n);
    counts.reserve(n);
  }
  void Push(Value v, Mult c) {
    values.push_back(std::move(v));
    counts.push_back(std::move(c));
  }
};

/// One fused per-row transformation applied in pipeline position.
enum class StageKind : uint8_t {
  kFilter,   ///< σ_{φ=φ'}: keep rows where program == rhs
  kProject,  ///< MAP φ / α-projection: rewrite each row through program
};

struct Stage {
  StageKind kind;
  RowProgram program;  ///< projection body, or the filter's left side
  RowProgram rhs;      ///< the filter's right side (unused for kProject)

  std::string ToString() const;
};

/// IR node kinds. Fusible per-row work never gets its own node — it lives
/// in `stages` on the producer.
enum class IrKind : uint8_t {
  kScan,      ///< stream a bound database bag (or constant) in canonical order
  kUnionAll,  ///< ⊎ over n children, streamed sequentially
  kCrossJoin, ///< × as a fused block-nested loop (build side materialized)
  kHashJoin,  ///< equi-join detected from σ over ×; hash table on build side
  kMerge,     ///< monus / max-union / intersect (blocking, kernel-based)
  kDupElim,   ///< ε (blocking)
  kBridge,    ///< escape hatch: wrap a Volcano operator batch-at-a-time
};

const char* IrKindName(IrKind kind);

struct IrNode {
  explicit IrNode(IrKind k) : kind(k) {}

  IrKind kind;
  /// Children. For joins: [0] = probe/left, [1] = build/right.
  std::vector<std::unique_ptr<IrNode>> children;

  // --- kScan ---
  std::string scan_name;  ///< input name, or "const" for literals
  Bag scan_bag;           ///< bound at lowering time

  // --- kCrossJoin / kHashJoin ---
  /// Arity of the probe (left) side's tuples; build-side column c in the
  /// joined row is probe_arity + c.
  size_t probe_arity = 0;
  /// kHashJoin only: 1-based key columns in probe- and build-side rows.
  size_t probe_key = 0;
  size_t build_key = 0;

  // --- kMerge ---
  exec::MergeKind merge_kind = exec::MergeKind::kMonus;

  /// Fused per-row stages applied to this node's raw output, in order.
  std::vector<Stage> stages;

  // --- analysis annotations (lower.cc / passes.cc) ---
  std::string cost_note;          ///< static_cost rendering for explain ir
  std::optional<uint64_t> est_rows;  ///< exact-facts row bound when known
  bool cse_shared = false;        ///< materialization reused via the CSE cache
  std::string cse_key;            ///< canonical key for the shared result

  /// The source subexpression this node was lowered from. Keeps the Expr
  /// alive for kBridge re-compilation and provenance in explain ir.
  Expr origin;

  /// Deep-copies the pipeline tree. Cheap relative to node count: Bag,
  /// Value, and Expr members are shared-handle copies. Used by the
  /// translation-validation harness to snapshot a plan around each pass.
  std::unique_ptr<IrNode> Clone() const;
};

/// Deep structural equality of two pipeline trees (kinds, scan payloads,
/// join/merge configuration, stage programs, CSE marks). Annotation-only
/// fields (cost_note, est_rows, origin identity) are ignored: two plans
/// that execute identically compare equal.
bool IrEquals(const IrNode& a, const IrNode& b);

struct PassStats {
  size_t filters_pushed = 0;      ///< predicate pushdowns (incl. join sides)
  size_t projections_pushed = 0;  ///< projection/column-remap pushdowns
  size_t hash_joins = 0;          ///< σ∘× pairs promoted to hash joins
  size_t cse_nodes = 0;           ///< blocking nodes marked for result reuse
  // Fact-driven passes (dataflow.h facts feed these; see passes.cc).
  size_t dead_columns = 0;     ///< columns pruned from join sides / gathers
  size_t dup_elims_removed = 0;  ///< kDupElim dropped on proven-dup-free input
  size_t const_folds = 0;      ///< constant-folded stages / emptied plans
};

/// A lowered, pass-processed plan ready for ExecuteIr.
struct IrPlan {
  std::unique_ptr<IrNode> root;
  size_t batch_size = kDefaultBatchSize;
  PassStats passes;
  /// Names of algebra-level rewrites applied before lowering (empty when
  /// lowering ran on the raw plan).
  std::vector<std::string> rewrites;
};

/// Total number of fused stages across the plan (the "how much per-row work
/// was fused" headline of explain ir).
size_t CountFusedStages(const IrNode& node);

/// Renders the pipeline tree: one line per node with kind, details, fused
/// stages, batch size header, and cost annotations. The format is covered
/// by tests; keep it stable.
///
/// `annotate`, when set, is called once per node and its return value (if
/// non-empty) is appended to that node's line — the hook behind
/// `explain ir --facts` (verify.h renders dataflow facts through it).
using IrNodeAnnotator = std::function<std::string(const IrNode&)>;
std::string ExplainIrPlan(const IrPlan& plan,
                          const IrNodeAnnotator& annotate = nullptr);

}  // namespace bagalg::ir

#endif  // BAGALG_IR_IR_H_
