#ifndef BAGALG_IR_EXEC_IR_H_
#define BAGALG_IR_EXEC_IR_H_

/// \file exec_ir.h
/// The vectorized IR interpreter: batch-at-a-time cursors over RowBatch.
///
/// Each IrNode becomes a BatchCursor producing up to plan.batch_size rows
/// per Next() call. Fused stages run inside the producing cursor's loop —
/// a filter compacts the batch in place with a write index, a projection
/// rewrites values through the compiled RowProgram (or its gather /
/// field-ref fast path) — so a scan→σ→MAP chain is literally one pass over
/// each batch with zero intermediate Bags.
///
/// Governor integration is per batch: a BatchCheckpointTicker charges and
/// checks once per ~kCheckpointStride rows instead of every row, with byte
/// accounting identical to the per-row ticker (paired test in
/// tests/ir_test.cc). Materialization points (merge kernels, dup-elim,
/// hash-join build sides) account memory through Bag::Builder exactly as
/// the Volcano engine does, so memory-cap trips are engine-independent.
///
/// Non-fusible plans never reach this layer — lowering rejects them — but
/// kBridge nodes let individual subtrees run on the Volcano engine behind a
/// batch-at-a-time adapter, which is also the seam where a future codegen
/// backend plugs in.

#include <map>
#include <string>

#include "src/algebra/database.h"
#include "src/core/value.h"
#include "src/ir/ir.h"
#include "src/obs/trace.h"
#include "src/util/result.h"

namespace bagalg::ir {

struct ExecIrOptions {
  /// When non-null and enabled, per-pipeline spans ("ir.pipeline.<kind>")
  /// wrap each root-level cursor drain and ir.* metrics are recorded.
  obs::Tracer* tracer = nullptr;
};

/// Runs a lowered plan to a canonical bag. The ambient governor (installed
/// by the caller's GovernorScope) is enforced per batch. `db` backs kBridge
/// nodes, which re-compile their origin subexpression through
/// exec::CompilePipeline.
Result<Bag> ExecuteIr(const IrPlan& plan, const Database& db,
                      const ExecIrOptions& options = {});

}  // namespace bagalg::ir

#endif  // BAGALG_IR_EXEC_IR_H_
