#include "src/ir/verify.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/ir/dataflow.h"
#include "src/ir/exec_ir.h"
#include "src/ir/lower.h"
#include "src/ir/passes.h"

namespace bagalg::ir {

bool IrVerifyEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("BAGALG_IR_VERIFY");
    if (env != nullptr) {
      if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
          std::strcmp(env, "true") == 0) {
        return true;
      }
      if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
          std::strcmp(env, "false") == 0) {
        return false;
      }
    }
#ifndef NDEBUG
    return true;
#else
    return false;
#endif
  }();
  return enabled;
}

Status VerifyIr(const IrPlan& plan) {
  BAGALG_RETURN_IF_ERROR(CheckFusionLegality(plan));
  // The strict dataflow walk doubles as the shape/arity verifier: its
  // transfer rules fail on exactly the structural inconsistencies a buggy
  // pass introduces (dangling column references, bad gathers, key bounds,
  // probe_arity drift, shape-mismatched unions/merges).
  return ComputeIrFacts(plan).status();
}

Status ValidateTranslation(const Expr& expr, const Database& db,
                           ValidationReport* report,
                           const LowerOptions& base) {
  LowerOptions options = base;
  options.verify = LowerOptions::Verify::kOn;
  options.observer = [&db, report](const std::string& pass,
                                   const IrPlan& before,
                                   const IrPlan& after) -> Status {
    if (before.root == nullptr || after.root == nullptr) {
      return Status::Internal("ir verify: pass " + pass +
                              " observed a rootless plan");
    }
    if (IrEquals(*before.root, *after.root)) return Status::Ok();
    if (report != nullptr) report->passes_changed++;
    Result<Bag> was = ExecuteIr(before, db);
    Result<Bag> now = ExecuteIr(after, db);
    if (was.ok() != now.ok()) {
      return Status::Internal(
          "translation validation: pass " + pass +
          " changed the execution outcome (" +
          (was.ok() ? "ok -> " + now.status().message()
                    : was.status().message() + " -> ok") +
          ")");
    }
    if (!was.ok()) {
      // Both fail (e.g. under an injected fault): nothing to compare.
      return Status::Ok();
    }
    if (report != nullptr) report->passes_executed++;
    if (!(was.value() == now.value())) {
      return Status::Internal(
          "translation validation: pass " + pass +
          " changed the result bag (" +
          std::to_string(was.value().DistinctCount()) + " distinct/" +
          was.value().TotalCount().ToString() + " total -> " +
          std::to_string(now.value().DistinctCount()) + " distinct/" +
          now.value().TotalCount().ToString() + " total)");
    }
    return Status::Ok();
  };
  return LowerToIr(expr, db, options).status();
}

}  // namespace bagalg::ir
