#include "src/ir/dataflow.h"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

namespace bagalg::ir {

namespace {

/// Explicit keys kept per node. Key combination under joins is quadratic in
/// this, so keep it small — the passes only ever ask "is there a key inside
/// this column set", which one witness answers.
constexpr size_t kMaxKeys = 4;

/// Per-column scans (key / constant detection) only run on bags at most
/// this large: the facts must stay cheap enough to compute on every
/// lowering, including inside bench loops.
constexpr size_t kScanFactEntryCap = 4096;

/// The all-counts-one walk (Bag::IsSetLike) is O(distinct); gate it so a
/// huge scan doesn't turn plan-time into data-time.
constexpr size_t kSetLikeEntryCap = 1 << 16;

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > std::numeric_limits<uint64_t>::max() - b
             ? std::numeric_limits<uint64_t>::max()
             : a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<uint64_t>::max() / b) {
    return std::numeric_limits<uint64_t>::max();
  }
  return a * b;
}

std::optional<uint64_t> MaxAdd(const std::optional<uint64_t>& a,
                               const std::optional<uint64_t>& b) {
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  return SatAdd(*a, *b);
}

std::optional<uint64_t> MaxMul(const std::optional<uint64_t>& a,
                               const std::optional<uint64_t>& b) {
  if (a.has_value() && *a == 0) return 0;
  if (b.has_value() && *b == 0) return 0;
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  return SatMul(*a, *b);
}

std::optional<uint64_t> MaxMin(const std::optional<uint64_t>& a,
                               const std::optional<uint64_t>& b) {
  if (!a.has_value()) return b;
  if (!b.has_value()) return a;
  return std::min(*a, *b);
}

void AddKey(IrFacts* facts, std::vector<size_t> key) {
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  if (key.empty()) return;
  // The implicit full-column key is never stored.
  if (facts->shape == IrFacts::Shape::kTuple && key.size() == facts->arity) {
    return;
  }
  for (const auto& existing : facts->keys) {
    if (existing == key) return;
  }
  if (facts->keys.size() >= kMaxKeys) return;
  facts->keys.push_back(std::move(key));
}

bool IsSubset(const std::vector<size_t>& sub, const std::vector<size_t>& sup) {
  // Both sorted.
  return std::includes(sup.begin(), sup.end(), sub.begin(), sub.end());
}

/// The node's per-row "row shape error" helper: every referenced column
/// must exist under the incoming shape.
Status CheckRefs(const std::optional<std::vector<size_t>>& refs,
                 const IrFacts& in, const char* what) {
  if (!refs.has_value() || refs->empty()) return Status::Ok();
  if (in.shape == IrFacts::Shape::kNonTuple) {
    return Status::Internal(std::string("ir verify: ") + what +
                            " projects a column out of non-tuple rows");
  }
  if (in.shape == IrFacts::Shape::kTuple) {
    for (size_t c : *refs) {
      if (c < 1 || c > in.arity) {
        return Status::Internal(
            std::string("ir verify: ") + what + " references column " +
            std::to_string(c) + " of " + std::to_string(in.arity) +
            "-column rows");
      }
    }
  }
  return Status::Ok();
}

/// A general projection program decomposed into per-output-field sources,
/// when its top level is one MakeTuple of flat fields.
struct TupleField {
  enum class Kind : uint8_t { kConst, kColumn, kOpaque };
  Kind kind = Kind::kOpaque;
  size_t column = 0;  ///< kColumn: 1-based source column
  std::optional<Value> constant;
};

/// Decomposes `t(f1, ..., fk)`-shaped programs where every field is a
/// constant or a single column copy. nullopt when the program has any
/// other shape.
std::optional<std::vector<TupleField>> DecomposeTupleProgram(
    const RowProgram& program) {
  const auto& insns = program.insns();
  if (insns.empty() ||
      insns.back().op != RowProgram::OpCode::kMakeTuple) {
    return std::nullopt;
  }
  const size_t want = insns.back().arg;
  std::vector<TupleField> fields;
  size_t i = 0;
  while (i + 1 < insns.size()) {
    TupleField field;
    if (insns[i].op == RowProgram::OpCode::kLoadRow &&
        i + 2 < insns.size() &&
        insns[i + 1].op == RowProgram::OpCode::kProjField) {
      field.kind = TupleField::Kind::kColumn;
      field.column = insns[i + 1].arg;
      i += 2;
    } else if (insns[i].op == RowProgram::OpCode::kLoadConst) {
      // The constant pool is private to RowProgram; the caller recovers the
      // value by running the whole program on a probe row.
      field.kind = TupleField::Kind::kConst;
      i += 1;
    } else {
      return std::nullopt;
    }
    fields.push_back(field);
  }
  if (fields.size() != want) return std::nullopt;
  return fields;
}

IrFacts Unknown() { return IrFacts{}; }

/// Facts for a scan's bound bag. Exact where the bag is small enough to
/// inspect; conservative (unknown) beyond the caps.
IrFacts ScanFacts(const IrNode& node) {
  IrFacts facts;
  const Bag& bag = node.scan_bag;
  const Type& element = bag.element_type();
  if (element.IsTuple()) {
    facts.shape = IrFacts::Shape::kTuple;
    facts.arity = element.fields().size();
  } else if (!element.IsBottom()) {
    facts.shape = IrFacts::Shape::kNonTuple;
  }
  const size_t distinct = bag.DistinctCount();
  facts.min_rows = distinct;
  facts.max_rows = distinct;
  if (distinct <= kSetLikeEntryCap) facts.dup_free = bag.IsSetLike();
  if (facts.shape == IrFacts::Shape::kTuple && facts.arity > 0 &&
      distinct > 0 && distinct <= kScanFactEntryCap) {
    const auto& entries = bag.entries();
    for (size_t c = 1; c <= facts.arity; ++c) {
      bool constant = true;
      std::set<Value> seen;
      const Value& first = entries[0].value.fields()[c - 1];
      for (const BagEntry& entry : entries) {
        const Value& v = entry.value.fields()[c - 1];
        if (constant && !(v == first)) constant = false;
        seen.insert(v);
      }
      if (constant) facts.const_cols.emplace(c, first);
      if (seen.size() == distinct && facts.arity > 1) AddKey(&facts, {c});
    }
  }
  return facts;
}

/// Remaps an old key through a gather list when the gather covers it; the
/// witness picks the first gather position for each key column.
std::optional<std::vector<size_t>> RemapKeyThrough(
    const std::vector<size_t>& key, const std::vector<size_t>& gather) {
  std::vector<size_t> remapped;
  for (size_t k : key) {
    bool found = false;
    for (size_t j = 0; j < gather.size(); ++j) {
      if (gather[j] == k) {
        remapped.push_back(j + 1);
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return remapped;
}

IrFacts GatherFacts(const std::vector<size_t>& gather, const IrFacts& in) {
  IrFacts out;
  out.shape = IrFacts::Shape::kTuple;
  out.arity = gather.size();
  const bool injective = in.HasKeyWithin(gather);
  out.dup_free = in.dup_free && injective;
  for (const auto& key : in.keys) {
    if (auto remapped = RemapKeyThrough(key, gather)) {
      AddKey(&out, *std::move(remapped));
    }
  }
  // The source's implicit full-column key survives when the gather covers
  // every column.
  if (in.shape == IrFacts::Shape::kTuple && in.arity > 0) {
    std::vector<size_t> full(in.arity);
    for (size_t c = 0; c < in.arity; ++c) full[c] = c + 1;
    if (auto remapped = RemapKeyThrough(full, gather)) {
      AddKey(&out, *std::move(remapped));
    }
  }
  for (size_t j = 0; j < gather.size(); ++j) {
    auto it = in.const_cols.find(gather[j]);
    if (it != in.const_cols.end()) out.const_cols.emplace(j + 1, it->second);
  }
  if (injective) {
    out.min_rows = in.min_rows;
    out.max_rows = in.max_rows;
  } else {
    out.min_rows = in.min_rows > 0 ? 1 : 0;
    out.max_rows = in.max_rows;
  }
  return out;
}

}  // namespace

bool IrFacts::HasKeyWithin(const std::vector<size_t>& cols) const {
  std::vector<size_t> sorted = cols;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (const auto& key : keys) {
    if (IsSubset(key, sorted)) return true;
  }
  if (shape == Shape::kTuple) {
    // Implicit key: canonical entries are pairwise distinct values, so the
    // full column set always separates them.
    bool covers_all = true;
    for (size_t c = 1; c <= arity; ++c) {
      if (!std::binary_search(sorted.begin(), sorted.end(), c)) {
        covers_all = false;
        break;
      }
    }
    if (covers_all) return true;
  }
  return false;
}

std::string IrFacts::ToString() const {
  std::vector<std::string> parts;
  if (shape == Shape::kTuple) {
    parts.push_back("arity=" + std::to_string(arity));
  }
  if (dup_free) parts.push_back("dup_free");
  if (disjoint_children) parts.push_back("disjoint");
  for (const auto& key : keys) {
    std::string k = "key{";
    for (size_t i = 0; i < key.size(); ++i) {
      if (i > 0) k += ",";
      k += std::to_string(key[i]);
    }
    parts.push_back(k + "}");
  }
  for (const auto& [col, v] : const_cols) {
    parts.push_back("const{" + std::to_string(col) + "=" + v.ToString() + "}");
  }
  if (max_rows.has_value() || min_rows > 0) {
    std::string rows = "rows=" + std::to_string(min_rows) + "..";
    rows += max_rows.has_value() ? std::to_string(*max_rows) : "*";
    parts.push_back(rows);
  }
  if (parts.empty()) return std::string();
  std::string out = "[";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += " ";
    out += parts[i];
  }
  return out + "]";
}

Result<IrFacts> ApplyStageFacts(const Stage& stage, const IrFacts& in) {
  if (stage.program.insns().empty()) {
    return Status::Internal("ir verify: empty stage program");
  }
  if (stage.kind == StageKind::kFilter) {
    if (stage.rhs.insns().empty()) {
      return Status::Internal("ir verify: empty filter rhs program");
    }
    BAGALG_RETURN_IF_ERROR(
        CheckRefs(stage.program.ColumnRefs(), in, "filter"));
    BAGALG_RETURN_IF_ERROR(CheckRefs(stage.rhs.ColumnRefs(), in, "filter"));
    IrFacts out = in;
    out.min_rows = 0;
    out.disjoint_children = false;
    // σ_{α_c(x) = v} pins column c for every surviving row.
    const auto field = stage.program.FieldRef();
    const auto& rhs_const = stage.rhs.ConstantValue();
    if (field.has_value() && rhs_const.has_value()) {
      out.const_cols.insert_or_assign(*field, *rhs_const);
    }
    return out;
  }

  // kProject.
  const RowProgram& program = stage.program;
  if (program.IsIdentity()) return in;
  BAGALG_RETURN_IF_ERROR(CheckRefs(program.ColumnRefs(), in, "projection"));
  if (const auto& constant = program.ConstantValue(); constant.has_value()) {
    IrFacts out;
    if (constant->IsTuple()) {
      out.shape = IrFacts::Shape::kTuple;
      out.arity = constant->fields().size();
      for (size_t c = 0; c < out.arity; ++c) {
        out.const_cols.emplace(c + 1, constant->fields()[c]);
      }
    } else {
      out.shape = IrFacts::Shape::kNonTuple;
    }
    out.min_rows = in.min_rows > 0 ? 1 : 0;
    out.max_rows = MaxMin(in.max_rows, std::optional<uint64_t>(1));
    // Counts of merged entries sum, so dup-freedom needs a singleton input.
    out.dup_free =
        in.dup_free && in.max_rows.has_value() && *in.max_rows <= 1;
    return out;
  }
  if (const auto field = program.FieldRef(); field.has_value()) {
    IrFacts out;
    const bool injective = in.HasKeyWithin({*field});
    out.dup_free = in.dup_free && injective;
    if (injective) {
      out.min_rows = in.min_rows;
      out.max_rows = in.max_rows;
    } else {
      out.min_rows = in.min_rows > 0 ? 1 : 0;
      out.max_rows = in.max_rows;
    }
    return out;
  }
  if (const auto& gather = program.Gather(); gather.has_value()) {
    return GatherFacts(*gather, in);
  }
  if (auto fields = DecomposeTupleProgram(program)) {
    // t(...)-shaped with constant and column-copy fields: behave like a
    // gather over the copied columns, with the constant fields recovered by
    // running the program on one representative row (all-constant fields
    // are handled by the ConstantValue branch above, so a probe row built
    // from the incoming const facts is only needed per-field).
    IrFacts out;
    out.shape = IrFacts::Shape::kTuple;
    out.arity = fields->size();
    std::vector<size_t> copied;
    for (size_t j = 0; j < fields->size(); ++j) {
      const TupleField& field = (*fields)[j];
      if (field.kind == TupleField::Kind::kColumn) {
        copied.push_back(field.column);
        auto it = in.const_cols.find(field.column);
        if (it != in.const_cols.end()) {
          out.const_cols.emplace(j + 1, it->second);
        }
      }
    }
    // Constant fields: recover values by evaluating the program on a probe
    // row whose copied columns are filled with placeholders. Sound because
    // a kConst field ignores the row entirely.
    if (in.shape == IrFacts::Shape::kTuple) {
      std::vector<Value> probe_fields(in.arity, MakeAtom("_"));
      Result<Value> probe = program.Run(Value::Tuple(std::move(probe_fields)));
      if (probe.ok() && probe.value().IsTuple() &&
          probe.value().fields().size() == fields->size()) {
        for (size_t j = 0; j < fields->size(); ++j) {
          if ((*fields)[j].kind == TupleField::Kind::kConst) {
            out.const_cols.emplace(j + 1, probe.value().fields()[j]);
          }
        }
      }
    }
    const bool injective = !copied.empty() && in.HasKeyWithin(copied);
    out.dup_free = in.dup_free && injective;
    for (const auto& key : in.keys) {
      // A key survives when every key column is among the copied fields.
      std::vector<size_t> remapped;
      bool ok = true;
      for (size_t k : key) {
        bool found = false;
        for (size_t j = 0; j < fields->size(); ++j) {
          if ((*fields)[j].kind == TupleField::Kind::kColumn &&
              (*fields)[j].column == k) {
            remapped.push_back(j + 1);
            found = true;
            break;
          }
        }
        if (!found) {
          ok = false;
          break;
        }
      }
      if (ok) AddKey(&out, std::move(remapped));
    }
    if (injective) {
      out.min_rows = in.min_rows;
      out.max_rows = in.max_rows;
    } else {
      out.min_rows = in.min_rows > 0 ? 1 : 0;
      out.max_rows = in.max_rows;
    }
    return out;
  }
  // Opaque projection: nothing survives but a coarse row interval.
  IrFacts out;
  out.min_rows = in.min_rows > 0 ? 1 : 0;
  out.max_rows = in.max_rows;
  return out;
}

Result<IrFacts> NodeBaseFacts(const IrNode& node,
                              const std::vector<const IrFacts*>& children) {
  IrFacts facts;
  switch (node.kind) {
    case IrKind::kScan:
      if (!children.empty()) {
        return Status::Internal("ir verify: scan with children");
      }
      facts = ScanFacts(node);
      break;
    case IrKind::kBridge:
      facts = Unknown();
      break;
    case IrKind::kUnionAll: {
      if (children.size() < 2) {
        return Status::Internal("ir verify: union with fewer than two inputs");
      }
      // Shape join: known tuple arities must agree.
      for (const IrFacts* child : children) {
        if (child->shape == IrFacts::Shape::kUnknown) continue;
        if (facts.shape == IrFacts::Shape::kUnknown) {
          facts.shape = child->shape;
          facts.arity = child->arity;
        } else if (facts.shape != child->shape ||
                   facts.arity != child->arity) {
          return Status::Internal(
              "ir verify: union children disagree on row shape");
        }
      }
      // Unknown children widen facts, not shapes: the known arity stands,
      // and a real mismatch surfaces when the unknown side becomes known.
      // Constant columns common to every child (same value everywhere).
      facts.const_cols = children[0]->const_cols;
      for (size_t i = 1; i < children.size() && !facts.const_cols.empty();
           ++i) {
        for (auto it = facts.const_cols.begin();
             it != facts.const_cols.end();) {
          auto other = children[i]->const_cols.find(it->first);
          if (other == children[i]->const_cols.end() ||
              !(other->second == it->second)) {
            it = facts.const_cols.erase(it);
          } else {
            ++it;
          }
        }
      }
      // Disjointness witness: one column constant in every child with
      // pairwise-distinct values.
      size_t tag_col = 0;
      for (const auto& [col, value] : children[0]->const_cols) {
        bool everywhere = true;
        std::vector<const Value*> values{&value};
        for (size_t i = 1; i < children.size(); ++i) {
          auto it = children[i]->const_cols.find(col);
          if (it == children[i]->const_cols.end()) {
            everywhere = false;
            break;
          }
          values.push_back(&it->second);
        }
        if (!everywhere) continue;
        bool distinct = true;
        for (size_t a = 0; a < values.size() && distinct; ++a) {
          for (size_t b = a + 1; b < values.size(); ++b) {
            if (*values[a] == *values[b]) {
              distinct = false;
              break;
            }
          }
        }
        if (distinct) {
          facts.disjoint_children = true;
          tag_col = col;
          break;
        }
      }
      bool all_dup_free = true;
      for (const IrFacts* child : children) {
        all_dup_free = all_dup_free && child->dup_free;
      }
      facts.dup_free = facts.disjoint_children && all_dup_free;
      // A key shared by every child extends to the union when the tag
      // column separates the children.
      if (facts.disjoint_children) {
        for (const auto& key : children[0]->keys) {
          bool shared = true;
          for (size_t i = 1; i < children.size(); ++i) {
            bool found = false;
            for (const auto& other : children[i]->keys) {
              if (other == key) {
                found = true;
                break;
              }
            }
            if (!found) {
              shared = false;
              break;
            }
          }
          if (shared) {
            std::vector<size_t> extended = key;
            extended.push_back(tag_col);
            AddKey(&facts, std::move(extended));
          }
        }
      }
      uint64_t min_sum = 0;
      uint64_t min_max = 0;
      std::optional<uint64_t> max_sum = 0;
      for (const IrFacts* child : children) {
        min_sum = SatAdd(min_sum, child->min_rows);
        min_max = std::max(min_max, child->min_rows);
        max_sum = MaxAdd(max_sum, child->max_rows);
      }
      facts.min_rows = facts.disjoint_children ? min_sum : min_max;
      facts.max_rows = max_sum;
      break;
    }
    case IrKind::kCrossJoin:
    case IrKind::kHashJoin: {
      if (children.size() != 2) {
        return Status::Internal("ir verify: join without two inputs");
      }
      const IrFacts& probe = *children[0];
      const IrFacts& build = *children[1];
      if (probe.shape == IrFacts::Shape::kNonTuple ||
          build.shape == IrFacts::Shape::kNonTuple) {
        return Status::Internal("ir verify: join over non-tuple rows");
      }
      if (probe.shape == IrFacts::Shape::kTuple &&
          probe.arity != node.probe_arity) {
        return Status::Internal(
            "ir verify: join probe_arity " + std::to_string(node.probe_arity) +
            " disagrees with probe rows of arity " +
            std::to_string(probe.arity));
      }
      const bool build_known = build.shape == IrFacts::Shape::kTuple;
      if (build_known) {
        facts.shape = IrFacts::Shape::kTuple;
        facts.arity = node.probe_arity + build.arity;
      }
      if (node.kind == IrKind::kHashJoin) {
        if (node.probe_key < 1 || node.probe_key > node.probe_arity) {
          return Status::Internal(
              "ir verify: hash join probe key a" +
              std::to_string(node.probe_key) + " outside probe arity " +
              std::to_string(node.probe_arity));
        }
        if (build_known &&
            (node.build_key < 1 || node.build_key > build.arity)) {
          return Status::Internal(
              "ir verify: hash join build key b" +
              std::to_string(node.build_key) + " outside build arity " +
              std::to_string(build.arity));
        }
      }
      facts.dup_free = probe.dup_free && build.dup_free;
      // Keys combine across sides: (probe key) ∪ (build key shifted). The
      // implicit full-column keys participate when the side's arity is
      // known.
      if (build_known) {
        auto keys_of = [](const IrFacts& side,
                          size_t arity) -> std::vector<std::vector<size_t>> {
          std::vector<std::vector<size_t>> out = side.keys;
          if (arity > 0) {
            std::vector<size_t> full(arity);
            for (size_t c = 0; c < arity; ++c) full[c] = c + 1;
            out.push_back(std::move(full));
          }
          return out;
        };
        for (const auto& lk : keys_of(probe, node.probe_arity)) {
          for (const auto& rk : keys_of(build, build.arity)) {
            std::vector<size_t> combined = lk;
            for (size_t c : rk) combined.push_back(c + node.probe_arity);
            AddKey(&facts, std::move(combined));
          }
        }
      }
      facts.const_cols = probe.const_cols;
      if (build_known) {
        for (const auto& [col, value] : build.const_cols) {
          facts.const_cols.emplace(col + node.probe_arity, value);
        }
      }
      if (node.kind == IrKind::kCrossJoin) {
        facts.min_rows = SatMul(probe.min_rows, build.min_rows);
        facts.max_rows = MaxMul(probe.max_rows, build.max_rows);
      } else {
        facts.min_rows = 0;
        facts.max_rows = MaxMul(probe.max_rows, build.max_rows);
        // A keyed side caps the join at the other side's cardinality.
        if (probe.HasKeyWithin({node.probe_key})) {
          facts.max_rows = MaxMin(facts.max_rows, build.max_rows);
        }
        if (build_known && build.HasKeyWithin({node.build_key})) {
          facts.max_rows = MaxMin(facts.max_rows, probe.max_rows);
        }
      }
      break;
    }
    case IrKind::kMerge: {
      if (children.size() != 2) {
        return Status::Internal("ir verify: merge without two inputs");
      }
      const IrFacts& left = *children[0];
      const IrFacts& right = *children[1];
      if (left.shape != IrFacts::Shape::kUnknown &&
          right.shape != IrFacts::Shape::kUnknown &&
          (left.shape != right.shape || left.arity != right.arity)) {
        return Status::Internal(
            "ir verify: merge inputs disagree on row shape");
      }
      facts.shape =
          left.shape != IrFacts::Shape::kUnknown ? left.shape : right.shape;
      facts.arity = left.shape != IrFacts::Shape::kUnknown ? left.arity
                                                           : right.arity;
      switch (node.merge_kind) {
        case exec::MergeKind::kMonus:
          // Entries ⊆ left's, counts ≤ left's.
          facts.dup_free = left.dup_free;
          facts.keys = left.keys;
          facts.const_cols = left.const_cols;
          facts.min_rows = 0;
          facts.max_rows = left.max_rows;
          break;
        case exec::MergeKind::kIntersect:
          facts.dup_free = left.dup_free || right.dup_free;
          facts.keys = left.keys;
          facts.const_cols = left.const_cols;
          for (const auto& [col, value] : right.const_cols) {
            facts.const_cols.emplace(col, value);
          }
          facts.min_rows = 0;
          facts.max_rows = MaxMin(left.max_rows, right.max_rows);
          break;
        case exec::MergeKind::kMaxUnion:
          facts.dup_free = left.dup_free && right.dup_free;
          // Entries from either side may coincide on any column subset;
          // only shared constant columns survive.
          for (const auto& [col, value] : left.const_cols) {
            auto it = right.const_cols.find(col);
            if (it != right.const_cols.end() && it->second == value) {
              facts.const_cols.emplace(col, value);
            }
          }
          facts.min_rows = std::max(left.min_rows, right.min_rows);
          facts.max_rows = MaxAdd(left.max_rows, right.max_rows);
          break;
      }
      break;
    }
    case IrKind::kDupElim: {
      if (children.size() != 1) {
        return Status::Internal("ir verify: dup-elim without one input");
      }
      // ε keeps the entry set and squashes counts: every entry-level fact
      // survives, and the output is dup-free by construction.
      facts = *children[0];
      facts.dup_free = true;
      facts.disjoint_children = false;
      break;
    }
  }
  // Cardinality tightening from the static_cost annotation (lower.cc's
  // Annotate): est_rows bounds the node source's total multiplicity, hence
  // its distinct entries.
  if (node.est_rows.has_value()) {
    facts.max_rows = MaxMin(facts.max_rows, node.est_rows);
  }
  return facts;
}

namespace {

Status ComputeNode(const IrNode& node, IrFactsMap* map) {
  std::vector<const IrFacts*> children;
  children.reserve(node.children.size());
  for (const auto& child : node.children) {
    BAGALG_RETURN_IF_ERROR(ComputeNode(*child, map));
    children.push_back(&(*map)[child.get()]);
  }
  BAGALG_ASSIGN_OR_RETURN(IrFacts facts, NodeBaseFacts(node, children));
  for (const Stage& stage : node.stages) {
    BAGALG_ASSIGN_OR_RETURN(facts, ApplyStageFacts(stage, facts));
  }
  (*map)[&node] = std::move(facts);
  return Status::Ok();
}

}  // namespace

Result<IrFactsMap> ComputeIrFacts(const IrPlan& plan) {
  if (plan.root == nullptr) {
    return Status::Internal("ir verify: plan without a root");
  }
  IrFactsMap map;
  BAGALG_RETURN_IF_ERROR(ComputeNode(*plan.root, &map));
  return map;
}

}  // namespace bagalg::ir
