#include "src/games/calc1.h"

#include <map>
#include <optional>
#include <sstream>

namespace bagalg::games {

Calc1Formula Calc1Formula::Equal(size_t i, size_t j) {
  Calc1Formula f;
  f.kind_ = Kind::kEqual;
  f.i_ = i;
  f.j_ = j;
  return f;
}

Calc1Formula Calc1Formula::Member(size_t atom_var, size_t set_var) {
  Calc1Formula f;
  f.kind_ = Kind::kMember;
  f.i_ = atom_var;
  f.j_ = set_var;
  return f;
}

Calc1Formula Calc1Formula::Subset(size_t i, size_t j) {
  Calc1Formula f;
  f.kind_ = Kind::kSubset;
  f.i_ = i;
  f.j_ = j;
  return f;
}

Calc1Formula Calc1Formula::Edge(size_t i, size_t j) {
  Calc1Formula f;
  f.kind_ = Kind::kEdge;
  f.i_ = i;
  f.j_ = j;
  return f;
}

Calc1Formula Calc1Formula::Not(Calc1Formula inner) {
  Calc1Formula f;
  f.kind_ = Kind::kNot;
  f.children_ = {std::move(inner)};
  return f;
}

Calc1Formula Calc1Formula::And(Calc1Formula l, Calc1Formula r) {
  Calc1Formula f;
  f.kind_ = Kind::kAnd;
  f.children_ = {std::move(l), std::move(r)};
  return f;
}

Calc1Formula Calc1Formula::Or(Calc1Formula l, Calc1Formula r) {
  Calc1Formula f;
  f.kind_ = Kind::kOr;
  f.children_ = {std::move(l), std::move(r)};
  return f;
}

Calc1Formula Calc1Formula::Exists(size_t var, VarSort sort,
                                  Calc1Formula inner) {
  Calc1Formula f;
  f.kind_ = Kind::kExists;
  f.i_ = var;
  f.sort_ = sort;
  f.children_ = {std::move(inner)};
  return f;
}

Calc1Formula Calc1Formula::ForAll(size_t var, VarSort sort,
                                  Calc1Formula inner) {
  Calc1Formula f;
  f.kind_ = Kind::kForAll;
  f.i_ = var;
  f.sort_ = sort;
  f.children_ = {std::move(inner)};
  return f;
}

size_t Calc1Formula::VariableCount() const {
  size_t max_index = 0;
  switch (kind_) {
    case Kind::kEqual:
    case Kind::kMember:
    case Kind::kSubset:
    case Kind::kEdge:
      return std::max(i_, j_) + 1;
    case Kind::kExists:
    case Kind::kForAll:
      max_index = i_ + 1;
      break;
    default:
      break;
  }
  for (const Calc1Formula& c : children_) {
    max_index = std::max(max_index, c.VariableCount());
  }
  return max_index;
}

std::string Calc1Formula::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kEqual:
      os << "x" << i_ << " = x" << j_;
      break;
    case Kind::kMember:
      os << "x" << i_ << " in x" << j_;
      break;
    case Kind::kSubset:
      os << "x" << i_ << " subset x" << j_;
      break;
    case Kind::kEdge:
      os << "E(x" << i_ << ", x" << j_ << ")";
      break;
    case Kind::kNot:
      os << "not(" << children_[0].ToString() << ")";
      break;
    case Kind::kAnd:
      os << "(" << children_[0].ToString() << " and "
         << children_[1].ToString() << ")";
      break;
    case Kind::kOr:
      os << "(" << children_[0].ToString() << " or "
         << children_[1].ToString() << ")";
      break;
    case Kind::kExists:
      os << "exists x" << i_ << (sort_ == VarSort::kAtom ? ":U " : ":{U} ")
         << children_[0].ToString();
      break;
    case Kind::kForAll:
      os << "forall x" << i_ << (sort_ == VarSort::kAtom ? ":U " : ":{U} ")
         << children_[0].ToString();
      break;
  }
  return os.str();
}

namespace {

class Checker {
 public:
  explicit Checker(const Structure& s) : s_(s) {
    for (AtomId a : s.atoms) atoms_.push_back(Value::Atom(a));
    // All sets of atoms (the {U} slice of Comp(A, T)).
    size_t n = s.atoms.size();
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      Bag::Builder builder;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (uint64_t{1} << i)) {
          builder.AddOne(Value::Atom(s.atoms[i]));
        }
      }
      sets_.push_back(Value::FromBag(std::move(builder).Build().value()));
    }
  }

  Result<bool> Eval(const Calc1Formula& f) {
    switch (f.kind()) {
      case Calc1Formula::Kind::kEqual: {
        BAGALG_ASSIGN_OR_RETURN(Value a, Lookup(f.lhs_var()));
        BAGALG_ASSIGN_OR_RETURN(Value b, Lookup(f.rhs_var()));
        return a == b;
      }
      case Calc1Formula::Kind::kMember: {
        BAGALG_ASSIGN_OR_RETURN(Value a, Lookup(f.lhs_var()));
        BAGALG_ASSIGN_OR_RETURN(Value set, Lookup(f.rhs_var()));
        if (!a.IsAtom() || !set.IsBag()) {
          return Status::InvalidArgument(
              "membership needs an atom and a set variable");
        }
        return set.bag().Contains(a);
      }
      case Calc1Formula::Kind::kSubset: {
        BAGALG_ASSIGN_OR_RETURN(Value a, Lookup(f.lhs_var()));
        BAGALG_ASSIGN_OR_RETURN(Value b, Lookup(f.rhs_var()));
        if (!a.IsBag() || !b.IsBag()) {
          return Status::InvalidArgument("subset needs two set variables");
        }
        return a.bag().SubBagOf(b.bag());
      }
      case Calc1Formula::Kind::kEdge: {
        BAGALG_ASSIGN_OR_RETURN(Value a, Lookup(f.lhs_var()));
        BAGALG_ASSIGN_OR_RETURN(Value b, Lookup(f.rhs_var()));
        return s_.HasEdge(a, b);
      }
      case Calc1Formula::Kind::kNot: {
        BAGALG_ASSIGN_OR_RETURN(bool v, Eval(f.child(0)));
        return !v;
      }
      case Calc1Formula::Kind::kAnd: {
        BAGALG_ASSIGN_OR_RETURN(bool l, Eval(f.child(0)));
        if (!l) return false;
        return Eval(f.child(1));
      }
      case Calc1Formula::Kind::kOr: {
        BAGALG_ASSIGN_OR_RETURN(bool l, Eval(f.child(0)));
        if (l) return true;
        return Eval(f.child(1));
      }
      case Calc1Formula::Kind::kExists:
      case Calc1Formula::Kind::kForAll: {
        bool universal = f.kind() == Calc1Formula::Kind::kForAll;
        const auto& domain =
            f.bound_sort() == VarSort::kAtom ? atoms_ : sets_;
        // Variables may be reused by nested quantifiers (finite-variable
        // logic); save and restore any outer binding.
        auto prev = env_.find(f.bound_var());
        std::optional<Value> saved;
        if (prev != env_.end()) saved = prev->second;
        bool verdict = universal;
        Status error = Status::Ok();
        for (const Value& v : domain) {
          env_[f.bound_var()] = v;
          auto r = Eval(f.child(0));
          if (!r.ok()) {
            error = r.status();
            break;
          }
          if (*r != universal) {
            verdict = !universal;  // witness / countermodel found
            break;
          }
        }
        if (saved.has_value()) {
          env_[f.bound_var()] = *saved;
        } else {
          env_.erase(f.bound_var());
        }
        BAGALG_RETURN_IF_ERROR(error);
        return verdict;
      }
    }
    return Status::Internal("unhandled CALC1 kind");
  }

 private:
  Result<Value> Lookup(size_t var) {
    auto it = env_.find(var);
    if (it == env_.end()) {
      return Status::InvalidArgument("free variable x" + std::to_string(var) +
                                     " in CALC1 sentence");
    }
    return it->second;
  }

  const Structure& s_;
  std::vector<Value> atoms_;
  std::vector<Value> sets_;
  std::map<size_t, Value> env_;
};

}  // namespace

Result<bool> EvalCalc1(const Calc1Formula& sentence, const Structure& s) {
  Checker checker(s);
  return checker.Eval(sentence);
}

}  // namespace bagalg::games
