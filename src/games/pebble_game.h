#ifndef BAGALG_GAMES_PEBBLE_GAME_H_
#define BAGALG_GAMES_PEBBLE_GAME_H_

/// \file pebble_game.h
/// The [GV90] k-move game for complex objects (paper §5).
///
/// Two players alternate: the spoiler picks an object of type U or {U} from
/// the completion of either structure; the duplicator answers in the other
/// structure. The duplicator wins a round iff the picked pairs induce an
/// isomorphism of the generated substructures: a type- and
/// equality-preserving bijection preserving the logical predicates (∈, ⊆)
/// and the edge relation. A_k ≡_{k,T} A'_k (duplicator has a winning
/// strategy) iff the structures agree on all CALC¹ sentences with k
/// variables over T (Theorem 5.3) — which is how Lemma 5.4 turns "the
/// duplicator wins on Fig 1" into "RALG² cannot define Φ".
///
/// The engine does exhaustive minimax with memoization on the pick-set; it
/// is meant for the small structures of Lemma 5.4 (n ≤ 6–8 atoms).

#include <cstdint>

#include "src/games/structures.h"

namespace bagalg::games {

/// Statistics from one game search.
struct GameStats {
  uint64_t states_explored = 0;
  uint64_t consistency_checks = 0;
};

/// Plays the k-move game on (a, b).
class PebbleGame {
 public:
  PebbleGame(const Structure& a, const Structure& b);

  /// True iff the duplicator has a winning strategy for k moves.
  bool DuplicatorWins(int k);

  const GameStats& stats() const { return stats_; }

  /// Exposed for testing: is the partial mapping `pairs` (a_i -> b_i) a
  /// partial isomorphism w.r.t. equality, membership, containment, and the
  /// edge relations?
  bool ConsistentMap(const std::vector<std::pair<Value, Value>>& pairs);

 private:
  bool Search(std::vector<std::pair<Value, Value>>& pairs, int moves_left);

  const Structure& a_;
  const Structure& b_;
  std::vector<Value> domain_a_;
  std::vector<Value> domain_b_;
  GameStats stats_;
};

}  // namespace bagalg::games

#endif  // BAGALG_GAMES_PEBBLE_GAME_H_
