#include "src/games/structures.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <string>

namespace bagalg::games {

namespace {

/// The set {atoms[i] : i ∈ indices} as a set-like bag value.
Value SetOfAtoms(const std::vector<AtomId>& atoms,
                 const std::vector<int>& indices) {
  Bag::Builder builder;
  for (int i : indices) builder.AddOne(Value::Atom(atoms[i]));
  auto bag = std::move(builder).Build();
  assert(bag.ok());
  return Value::FromBag(std::move(bag).value());
}

}  // namespace

bool Structure::HasEdge(const Value& u, const Value& v) const {
  for (const auto& [a, b] : edges) {
    if (a == u && b == v) return true;
  }
  return false;
}

std::vector<Value> CompletionDomain(const Structure& s) {
  std::vector<Value> objects;
  for (AtomId a : s.atoms) objects.push_back(Value::Atom(a));
  size_t n = s.atoms.size();
  assert(n < 24 && "completion domain is exponential in the atom count");
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    Bag::Builder builder;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) builder.AddOne(Value::Atom(s.atoms[i]));
    }
    auto bag = std::move(builder).Build();
    assert(bag.ok());
    objects.push_back(Value::FromBag(std::move(bag).value()));
  }
  return objects;
}

Result<StarGraphs> BuildFig1StarGraphs(int n) {
  if (n < 4 || n % 2 != 0) {
    return Status::InvalidArgument(
        "the Fig 1 construction needs an even n >= 4, got " +
        std::to_string(n));
  }
  // Fresh atoms named g<n>_1 .. g<n>_n (0-based indices internally).
  std::vector<AtomId> atoms;
  for (int i = 1; i <= n; ++i) {
    atoms.push_back(
        GlobalAtom("g" + std::to_string(n) + "_" + std::to_string(i)));
  }

  // Index-set families by the paper's induction (0-based indices).
  std::vector<std::vector<int>> in_sets = {{0, 1}, {2, 3}};
  std::vector<std::vector<int>> out_sets = {{0, 2}, {1, 3}};
  for (int m = 4; m < n; m += 2) {
    std::vector<std::vector<int>> next_in;
    std::vector<std::vector<int>> next_out;
    for (const auto& s : in_sets) {
      auto with_new1 = s;
      with_new1.push_back(m);  // element m is "n+1" at this stage
      next_in.push_back(with_new1);
      auto with_new2 = s;
      with_new2.push_back(m + 1);
      next_out.push_back(with_new2);
    }
    for (const auto& s : out_sets) {
      auto with_new2 = s;
      with_new2.push_back(m + 1);
      next_in.push_back(with_new2);
      auto with_new1 = s;
      with_new1.push_back(m);
      next_out.push_back(with_new1);
    }
    in_sets = std::move(next_in);
    out_sets = std::move(next_out);
  }

  StarGraphs out;
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  out.alpha = SetOfAtoms(atoms, all);
  for (const auto& s : in_sets) out.in_nodes.push_back(SetOfAtoms(atoms, s));
  for (const auto& s : out_sets) {
    out.out_nodes.push_back(SetOfAtoms(atoms, s));
  }

  out.g.atoms = atoms;
  out.g_prime.atoms = atoms;
  // G: every In node points at α; α points at every Out node.
  for (const Value& v : out.in_nodes) out.g.edges.emplace_back(v, out.alpha);
  for (const Value& v : out.out_nodes) {
    out.g.edges.emplace_back(out.alpha, v);
  }
  // G': same, except the first outgoing edge is inverted.
  out.g_prime.edges = out.g.edges;
  for (auto& [u, v] : out.g_prime.edges) {
    if (u == out.alpha) {
      std::swap(u, v);
      break;
    }
  }
  return out;
}

bool BalancedSplitHolds(const std::vector<Value>& family, int n) {
  if (family.empty()) return false;
  // Count, per atom, in how many member sets it occurs; all counts must be
  // |family| / 2.
  std::map<Value, size_t> occurrences;
  for (const Value& set : family) {
    for (const BagEntry& e : set.bag().entries()) {
      occurrences[e.value] += 1;
    }
  }
  if (occurrences.size() != static_cast<size_t>(n)) return false;
  for (const auto& [atom, count] : occurrences) {
    (void)atom;
    if (count * 2 != family.size()) return false;
  }
  return true;
}

size_t InDegree(const Structure& s, const Value& node) {
  size_t d = 0;
  for (const auto& [u, v] : s.edges) {
    (void)u;
    if (v == node) ++d;
  }
  return d;
}

size_t OutDegree(const Structure& s, const Value& node) {
  size_t d = 0;
  for (const auto& [u, v] : s.edges) {
    (void)v;
    if (u == node) ++d;
  }
  return d;
}

Bag EdgesAsBag(const Structure& s) {
  Bag::Builder builder;
  for (const auto& [u, v] : s.edges) {
    builder.AddOne(Value::Tuple({u, v}));
  }
  auto bag = std::move(builder).Build();
  assert(bag.ok());
  return std::move(bag).value();
}

}  // namespace bagalg::games
