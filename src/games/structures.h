#ifndef BAGALG_GAMES_STRUCTURES_H_
#define BAGALG_GAMES_STRUCTURES_H_

/// \file structures.h
/// Finite structures with complex-object domains, and the Figure 1
/// construction of Lemma 5.4.
///
/// The Theorem 5.2 separation (RALG² ⊊ BALG²) is proved with the [GV90]
/// pebble game on a pair of star graphs whose nodes are *sets* of atomic
/// constants: a central node α = {1..n} linked to 2^{n/2} nodes drawn from
/// two families In_n and Out_n of n/2-subsets, chosen so that every atom
/// belongs to exactly half the sets of each family (property (1) of the
/// paper). In G the star is balanced (in-degree(α) = out-degree(α)); in G'
/// one edge is inverted. The query Φ — "in-degree of α exceeds out-degree"
/// — distinguishes the graphs, yet the duplicator wins the k-move game when
/// n > 2^k, so no CALC¹/RALG² sentence defines Φ.

#include <utility>
#include <vector>

#include "src/core/value.h"
#include "src/util/result.h"

namespace bagalg::games {

/// A finite structure: a domain of atoms plus one binary (nonlogical) edge
/// relation over complex objects built from those atoms.
struct Structure {
  std::vector<AtomId> atoms;
  std::vector<std::pair<Value, Value>> edges;

  /// True iff (u, v) is an edge.
  bool HasEdge(const Value& u, const Value& v) const;
};

/// The objects of the completion Comp(A, T) for T = {U, {U}}: the atoms of
/// the structure plus every set of atoms (represented as set-like bag
/// values). 2^|atoms| + |atoms| objects — callers keep |atoms| small.
std::vector<Value> CompletionDomain(const Structure& s);

/// The Figure 1 pair (G_{k,T}, G'_{k,T}) for an even n >= 4.
struct StarGraphs {
  Structure g;        ///< balanced star: in-degree(α) == out-degree(α)
  Structure g_prime;  ///< one edge inverted: in-degree(α) > out-degree(α)
  Value alpha;        ///< the central node {1..n}
  std::vector<Value> in_nodes;   ///< In_n (sources in G)
  std::vector<Value> out_nodes;  ///< Out_n (sinks in G)
};

/// Builds the graphs, with In_n / Out_n by the paper's induction:
///   In_4  = {{1,2},{3,4}},  Out_4 = {{1,3},{2,4}}
///   In_{n+2}  = {S ∪ {n+1} : S ∈ In_n}  ∪ {S ∪ {n+2} : S ∈ Out_n}
///   Out_{n+2} = {S ∪ {n+1} : S ∈ Out_n} ∪ {S ∪ {n+2} : S ∈ In_n}
/// InvalidArgument unless n is even and >= 4.
Result<StarGraphs> BuildFig1StarGraphs(int n);

/// Checks the paper's property (1): every atom i belongs to exactly half
/// the sets of `family`.
bool BalancedSplitHolds(const std::vector<Value>& family, int n);

/// Degree counting over a structure.
size_t InDegree(const Structure& s, const Value& node);
size_t OutDegree(const Structure& s, const Value& node);

/// Converts the structure's edge relation to a BALG database bag of pairs
/// [u, v] — the input of the Φ query in the algebra (type {{[{{U}},{{U}}]}},
/// a BALG² input).
Bag EdgesAsBag(const Structure& s);

}  // namespace bagalg::games

#endif  // BAGALG_GAMES_STRUCTURES_H_
