#include "src/games/pebble_game.h"

namespace bagalg::games {

namespace {

/// Is `x` a member of set-object `s` (an atom in a set-like bag)?
bool Member(const Value& x, const Value& s) {
  return s.IsBag() && x.IsAtom() && s.bag().Contains(x);
}

/// Is set-object `s` contained in set-object `t`?
bool Contained(const Value& s, const Value& t) {
  return s.IsBag() && t.IsBag() && s.bag().SubBagOf(t.bag());
}

}  // namespace

PebbleGame::PebbleGame(const Structure& a, const Structure& b)
    : a_(a), b_(b) {
  domain_a_ = CompletionDomain(a);
  domain_b_ = CompletionDomain(b);
}

bool PebbleGame::ConsistentMap(
    const std::vector<std::pair<Value, Value>>& pairs) {
  stats_.consistency_checks += 1;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [x, fx] = pairs[i];
    // Types (kinds) must agree.
    if (x.kind() != fx.kind()) return false;
    for (size_t j = 0; j < pairs.size(); ++j) {
      const auto& [y, fy] = pairs[j];
      // Bijectivity / equality preservation.
      if ((x == y) != (fx == fy)) return false;
      // Logical predicates.
      if (Member(x, y) != Member(fx, fy)) return false;
      if (x.IsBag() && y.IsBag() && Contained(x, y) != Contained(fx, fy)) {
        return false;
      }
      // Nonlogical edge relation.
      if (a_.HasEdge(x, y) != b_.HasEdge(fx, fy)) return false;
      if (a_.HasEdge(y, x) != b_.HasEdge(fy, fx)) return false;
    }
  }
  return true;
}

bool PebbleGame::Search(std::vector<std::pair<Value, Value>>& pairs,
                        int moves_left) {
  stats_.states_explored += 1;
  if (moves_left == 0) return true;
  // Spoiler tries every object in either structure; the duplicator must
  // have a consistent answer that survives the remaining moves.
  for (int side = 0; side < 2; ++side) {
    const auto& spoiler_domain = side == 0 ? domain_a_ : domain_b_;
    const auto& duplicator_domain = side == 0 ? domain_b_ : domain_a_;
    for (const Value& pick : spoiler_domain) {
      bool answered = false;
      for (const Value& reply : duplicator_domain) {
        if (side == 0) {
          pairs.emplace_back(pick, reply);
        } else {
          pairs.emplace_back(reply, pick);
        }
        bool ok = ConsistentMap(pairs) && Search(pairs, moves_left - 1);
        pairs.pop_back();
        if (ok) {
          answered = true;
          break;
        }
      }
      if (!answered) return false;  // the spoiler wins with this pick
    }
  }
  return true;
}

bool PebbleGame::DuplicatorWins(int k) {
  std::vector<std::pair<Value, Value>> pairs;
  return Search(pairs, k);
}

}  // namespace bagalg::games
