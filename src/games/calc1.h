#ifndef BAGALG_GAMES_CALC1_H_
#define BAGALG_GAMES_CALC1_H_

/// \file calc1.h
/// CALC¹ — the complex-object calculus of [HS91] over types U and {U},
/// with active-domain semantics (paper §5).
///
/// The paper's Theorem 5.3 ties three things together: RALG² expressibility,
/// CALC¹ sentences, and the [GV90] pebble game — two structures agree on
/// all k-variable CALC¹ sentences iff the duplicator wins the k-move game.
/// This module provides the logic side: a typed formula AST (variables of
/// type U or {U}; predicates =, ∈, ⊆, and the binary edge relation E;
/// connectives; quantifiers ranging over the completion Comp(A, T)) and a
/// model checker. The integration tests verify the Theorem 5.3 equivalence
/// empirically: whenever the duplicator wins the k-move game, every
/// sentence with at most k quantified variables agrees on the two
/// structures.

#include <memory>
#include <string>
#include <vector>

#include "src/games/structures.h"
#include "src/util/result.h"

namespace bagalg::games {

/// Variable sorts: atoms (type U) or sets of atoms (type {U}).
enum class VarSort { kAtom, kSet };

/// A CALC¹ formula over variables x0, x1, ... (de Bruijn-free: variables
/// are globally indexed; quantifiers bind by index).
class Calc1Formula {
 public:
  enum class Kind {
    kEqual,     ///< x_i = x_j (same sort)
    kMember,    ///< x_i ∈ x_j (atom ∈ set)
    kSubset,    ///< x_i ⊆ x_j (set ⊆ set)
    kEdge,      ///< E(x_i, x_j) — the structure's nonlogical relation
    kNot,
    kAnd,
    kOr,
    kExists,    ///< ∃ x_i : sort
    kForAll,    ///< ∀ x_i : sort
  };

  static Calc1Formula Equal(size_t i, size_t j);
  static Calc1Formula Member(size_t atom_var, size_t set_var);
  static Calc1Formula Subset(size_t i, size_t j);
  static Calc1Formula Edge(size_t i, size_t j);
  static Calc1Formula Not(Calc1Formula f);
  static Calc1Formula And(Calc1Formula l, Calc1Formula r);
  static Calc1Formula Or(Calc1Formula l, Calc1Formula r);
  static Calc1Formula Exists(size_t var, VarSort sort, Calc1Formula f);
  static Calc1Formula ForAll(size_t var, VarSort sort, Calc1Formula f);

  Kind kind() const { return kind_; }
  size_t lhs_var() const { return i_; }
  size_t rhs_var() const { return j_; }
  size_t bound_var() const { return i_; }
  VarSort bound_sort() const { return sort_; }
  const Calc1Formula& child(size_t k) const { return children_[k]; }
  size_t child_count() const { return children_.size(); }

  /// Number of distinct quantified variables (the k of Theorem 5.3 when
  /// variables are reused maximally; here simply the max index + 1).
  size_t VariableCount() const;

  /// Human-readable rendering.
  std::string ToString() const;

 private:
  Kind kind_ = Kind::kEqual;
  size_t i_ = 0;
  size_t j_ = 0;
  VarSort sort_ = VarSort::kAtom;
  std::vector<Calc1Formula> children_;
};

/// Model-checks a sentence (all variables quantified) on a structure:
/// quantifiers range over the atoms (sort U) or over all sets of atoms
/// (sort {U}) of the completion. InvalidArgument on free variables or
/// sort mismatches discovered at evaluation time.
Result<bool> EvalCalc1(const Calc1Formula& sentence, const Structure& s);

}  // namespace bagalg::games

#endif  // BAGALG_GAMES_CALC1_H_
