#include "src/algebra/eval.h"

#include <sstream>
#include <vector>

#include "src/core/encoding.h"
#include "src/obs/metrics.h"

namespace bagalg {

void EvalStats::Merge(const EvalStats& other) {
  steps += other.steps;
  for (size_t k = 0; k < op_counts.size(); ++k) {
    op_counts[k] += other.op_counts[k];
  }
  max_distinct = std::max(max_distinct, other.max_distinct);
  max_mult_bits = std::max(max_mult_bits, other.max_mult_bits);
  if (other.max_standard_size > max_standard_size) {
    max_standard_size = other.max_standard_size;
  }
  max_counted_size = std::max(max_counted_size, other.max_counted_size);
  fixpoint_iterations += other.fixpoint_iterations;
}

std::string EvalStats::ToString() const {
  std::ostringstream os;
  os << "steps=" << steps << " max_distinct=" << max_distinct
     << " max_mult_bits=" << max_mult_bits
     << " fixpoint_iterations=" << fixpoint_iterations;
  if (!max_standard_size.IsZero()) {
    os << " max_standard_size=" << max_standard_size;
  }
  if (max_counted_size != 0) os << " max_counted_size=" << max_counted_size;
  os << "\nops:";
  for (size_t k = 0; k < op_counts.size(); ++k) {
    if (op_counts[k] == 0) continue;
    os << " " << ExprKindName(static_cast<ExprKind>(k)) << "=" << op_counts[k];
  }
  return os.str();
}

namespace {

/// One evaluation, carrying the binder stack.
class Walker {
 public:
  Walker(const Limits& limits, bool track_sizes, EvalStats* stats,
         const Database& db, obs::Tracer* tracer, NodeProfileMap* profiles)
      : limits_(limits),
        track_sizes_(track_sizes),
        stats_(stats),
        db_(db),
        // Pre-resolve the enabled check so the per-node cost of disabled
        // tracing is one null test.
        tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        profiles_(profiles) {}

  // Kept tiny so the disabled-instrumentation fast path inlines into every
  // recursive call site as branch + direct EvalNode call.
  Result<Value> Eval(const Expr& expr) {
    if (tracer_ == nullptr && profiles_ == nullptr) [[likely]] {
      return EvalNode(expr);
    }
    return EvalInstrumented(expr);
  }

 private:
  __attribute__((noinline)) Result<Value> EvalInstrumented(const Expr& expr) {
    obs::Span span;
    if (tracer_ != nullptr) {
      span = tracer_->StartSpan(ExprKindName(expr->kind), "eval");
    }
    uint64_t start_ns = profiles_ != nullptr ? obs::MonotonicNowNs() : 0;
    Result<Value> out = EvalNode(expr);
    uint64_t distinct = 0;
    uint64_t total = 0;
    if (out.ok() && out.value().IsBag()) {
      const Bag& bag = out.value().bag();
      distinct = bag.DistinctCount();
      total = bag.TotalCount().ToUint64().ok()
                  ? bag.TotalCount().ToUint64().value()
                  : ~uint64_t{0};
    }
    if (profiles_ != nullptr) {
      NodeProfile& p = (*profiles_)[expr.raw()];
      p.calls += 1;
      p.wall_ns += obs::MonotonicNowNs() - start_ns;
      p.max_distinct = std::max(p.max_distinct, distinct);
      p.max_total = std::max(p.max_total, total);
    }
    if (span.active()) {
      if (out.ok() && out.value().IsBag()) {
        span.AddAttr("distinct", distinct);
      } else if (!out.ok()) {
        span.AddAttr("error", StatusCodeName(out.status().code()));
      }
    }
    return out;
  }

  Result<Value> EvalNode(const Expr& expr) {
    stats_->steps += 1;
    if (limits_.max_eval_steps != 0 &&
        stats_->steps > limits_.max_eval_steps) {
      return Status::ResourceExhausted("evaluation step budget exhausted");
    }
    // Node visits scale with query size times data size (Map/Select bodies
    // re-enter here per entry), making this the evaluator's checkpoint.
    if (ticker_.Due()) {
      BAGALG_RETURN_IF_ERROR(ticker_.Flush());
    }
    const ExprNode& n = expr.node();
    stats_->op_counts[static_cast<size_t>(n.kind)] += 1;

    switch (n.kind) {
      case ExprKind::kInput: {
        BAGALG_ASSIGN_OR_RETURN(Bag bag, db_.Get(n.name));
        return Value::FromBag(std::move(bag));
      }
      case ExprKind::kConst:
        return *n.literal;
      case ExprKind::kVar: {
        if (n.index >= binders_.size()) {
          return Status::InvalidArgument("unbound variable during eval");
        }
        return binders_[binders_.size() - 1 - n.index];
      }
      case ExprKind::kAdditiveUnion:
      case ExprKind::kSubtract:
      case ExprKind::kMaxUnion:
      case ExprKind::kIntersect: {
        BAGALG_ASSIGN_OR_RETURN(Bag a, EvalBag(n.children[0]));
        BAGALG_ASSIGN_OR_RETURN(Bag b, EvalBag(n.children[1]));
        Result<Bag> r = [&] {
          switch (n.kind) {
            case ExprKind::kAdditiveUnion:
              return AdditiveUnion(a, b);
            case ExprKind::kSubtract:
              return Subtract(a, b);
            case ExprKind::kMaxUnion:
              return MaxUnion(a, b);
            default:
              return Intersect(a, b);
          }
        }();
        return Finish(std::move(r));
      }
      case ExprKind::kProduct: {
        BAGALG_ASSIGN_OR_RETURN(Bag a, EvalBag(n.children[0]));
        BAGALG_ASSIGN_OR_RETURN(Bag b, EvalBag(n.children[1]));
        return Finish(CartesianProduct(a, b, limits_));
      }
      case ExprKind::kTupling: {
        std::vector<Value> fields;
        fields.reserve(n.children.size());
        for (const Expr& c : n.children) {
          BAGALG_ASSIGN_OR_RETURN(Value v, Eval(c));
          fields.push_back(std::move(v));
        }
        return Value::Tuple(std::move(fields));
      }
      case ExprKind::kBagging: {
        BAGALG_ASSIGN_OR_RETURN(Value v, Eval(n.children[0]));
        Bag::Builder builder;
        builder.AddOne(std::move(v));
        BAGALG_ASSIGN_OR_RETURN(Bag bag, std::move(builder).Build());
        return Value::FromBag(std::move(bag));
      }
      case ExprKind::kPowerset: {
        BAGALG_ASSIGN_OR_RETURN(Bag b, EvalBag(n.children[0]));
        return Finish(Powerset(b, limits_));
      }
      case ExprKind::kPowerbag: {
        BAGALG_ASSIGN_OR_RETURN(Bag b, EvalBag(n.children[0]));
        return Finish(Powerbag(b, limits_));
      }
      case ExprKind::kBagDestroy: {
        BAGALG_ASSIGN_OR_RETURN(Bag b, EvalBag(n.children[0]));
        return Finish(BagDestroy(b, limits_));
      }
      case ExprKind::kDupElim: {
        BAGALG_ASSIGN_OR_RETURN(Bag b, EvalBag(n.children[0]));
        return Finish(DupElim(b));
      }
      case ExprKind::kAttrProj: {
        BAGALG_ASSIGN_OR_RETURN(Value v, Eval(n.children[0]));
        if (!v.IsTuple()) {
          return Status::InvalidArgument("proj applied to a non-tuple");
        }
        if (n.index < 1 || n.index > v.fields().size()) {
          return Status::InvalidArgument("proj attribute out of range");
        }
        return v.fields()[n.index - 1];
      }
      case ExprKind::kMap: {
        BAGALG_ASSIGN_OR_RETURN(Bag src, EvalBag(n.children[1]));
        Bag::Builder builder;
        for (const BagEntry& e : src.entries()) {
          if (ticker_.Due()) {
            BAGALG_RETURN_IF_ERROR(ticker_.Flush());
          }
          binders_.push_back(e.value);
          auto image = Eval(n.children[0]);
          binders_.pop_back();
          BAGALG_RETURN_IF_ERROR(image.status());
          builder.Add(std::move(image).value(), e.count);
        }
        return Finish(std::move(builder).Build());
      }
      case ExprKind::kSelect: {
        BAGALG_ASSIGN_OR_RETURN(Bag src, EvalBag(n.children[2]));
        Bag::Builder builder(src.element_type());
        for (const BagEntry& e : src.entries()) {
          if (ticker_.Due()) {
            BAGALG_RETURN_IF_ERROR(ticker_.Flush());
          }
          binders_.push_back(e.value);
          auto lhs = Eval(n.children[0]);
          auto rhs = Eval(n.children[1]);
          binders_.pop_back();
          BAGALG_RETURN_IF_ERROR(lhs.status());
          BAGALG_RETURN_IF_ERROR(rhs.status());
          if (lhs.value() == rhs.value()) builder.Add(e.value, e.count);
        }
        return Finish(std::move(builder).Build());
      }
      case ExprKind::kNest: {
        BAGALG_ASSIGN_OR_RETURN(Bag src, EvalBag(n.children[0]));
        std::vector<size_t> attrs0;
        for (size_t a : n.attrs) {
          if (a == 0) return Status::InvalidArgument("nest attrs are 1-based");
          attrs0.push_back(a - 1);
        }
        return Finish(Nest(src, attrs0));
      }
      case ExprKind::kUnnest: {
        BAGALG_ASSIGN_OR_RETURN(Bag src, EvalBag(n.children[0]));
        if (n.attrs.empty() || n.attrs[0] == 0) {
          return Status::InvalidArgument("unnest attr is 1-based");
        }
        return Finish(Unnest(src, n.attrs[0] - 1, limits_));
      }
      case ExprKind::kIfp:
      case ExprKind::kBoundedIfp: {
        BAGALG_ASSIGN_OR_RETURN(Bag current, EvalBag(n.children[1]));
        Bag bound;
        bool bounded = n.kind == ExprKind::kBoundedIfp;
        if (bounded) {
          BAGALG_ASSIGN_OR_RETURN(bound, EvalBag(n.children[2]));
        }
        uint64_t iterations = 0;
        while (true) {
          if (limits_.max_fixpoint_iterations != 0 &&
              iterations >= limits_.max_fixpoint_iterations) {
            return Status::ResourceExhausted(
                "fixpoint iteration budget exhausted after " +
                std::to_string(iterations) + " rounds");
          }
          ++iterations;
          stats_->fixpoint_iterations += 1;
          obs::Span iter_span;
          if (tracer_ != nullptr) {
            iter_span = tracer_->StartSpan("ifp.iteration", "eval");
            iter_span.AddAttr("iteration", iterations);
          }
          binders_.push_back(Value::FromBag(current));
          auto step = Eval(n.children[0]);
          binders_.pop_back();
          BAGALG_RETURN_IF_ERROR(step.status());
          if (!step.value().IsBag()) {
            return Status::InvalidArgument("ifp body must denote a bag");
          }
          BAGALG_ASSIGN_OR_RETURN(Bag next,
                                  MaxUnion(step.value().bag(), current));
          if (bounded) {
            BAGALG_ASSIGN_OR_RETURN(next, Intersect(next, bound));
          }
          BAGALG_RETURN_IF_ERROR(Observe(next));
          if (iter_span.active()) {
            iter_span.AddAttr("distinct", uint64_t{next.DistinctCount()});
          }
          if (next == current) break;
          current = std::move(next);
        }
        return Value::FromBag(std::move(current));
      }
    }
    return Status::Internal("unhandled expression kind in eval");
  }

  Result<Bag> EvalBag(const Expr& expr) {
    BAGALG_ASSIGN_OR_RETURN(Value v, Eval(expr));
    if (!v.IsBag()) {
      return Status::InvalidArgument(
          std::string(ExprKindName(expr->kind)) +
          " was expected to denote a bag but denoted a " +
          v.type().ToString());
    }
    return v.bag();
  }

  /// Applies limit checks + statistics to a produced bag.
  Status Observe(const Bag& bag) {
    BAGALG_RETURN_IF_ERROR(CheckDistinctLimit(bag.DistinctCount(), limits_));
    stats_->max_distinct =
        std::max(stats_->max_distinct, uint64_t{bag.DistinctCount()});
    for (const BagEntry& e : bag.entries()) {
      if (ticker_.Due()) {
        BAGALG_RETURN_IF_ERROR(ticker_.Flush());
      }
      uint64_t bits = e.count.BitLength();
      stats_->max_mult_bits = std::max(stats_->max_mult_bits, bits);
      BAGALG_RETURN_IF_ERROR(CheckMultLimit(e.count, limits_));
    }
    if (track_sizes_) {
      BigNat size = StandardEncodingSize(bag);
      if (size > stats_->max_standard_size) {
        stats_->max_standard_size = std::move(size);
      }
      stats_->max_counted_size =
          std::max(stats_->max_counted_size, CountedEncodingSize(bag));
    }
    return Status::Ok();
  }

  Result<Value> Finish(Result<Bag> bag) {
    BAGALG_RETURN_IF_ERROR(bag.status());
    BAGALG_RETURN_IF_ERROR(Observe(bag.value()));
    return Value::FromBag(std::move(bag).value());
  }

  const Limits& limits_;
  bool track_sizes_;
  EvalStats* stats_;
  const Database& db_;
  obs::Tracer* tracer_;
  NodeProfileMap* profiles_;
  std::vector<Value> binders_;
  // Bound to the governor installed by Evaluator::Eval (inert when none).
  // One ticker for the whole walk: node visits, entry loops, and Observe
  // scans all drain the same stride. Checkpoint-only (no bytes per tick):
  // the bag builders and kernels below account their own output bytes.
  CheckpointTicker ticker_;
};

}  // namespace

Result<Value> Evaluator::Eval(const Expr& expr, const Database& db) {
  if (preflight_) {
    BAGALG_RETURN_IF_ERROR(preflight_(expr, db));
  }
  // Install the per-query governor for the whole walk; the Walker's ticker
  // binds to it at construction, after the scope is in place.
  GovernorScope scope(governor_);
  Walker walker(limits_, track_sizes_, &stats_, db, tracer_,
                node_profiling_ ? &node_profiles_ : nullptr);
  Result<Value> out = walker.Eval(expr);
  if (governor_ != nullptr) obs::MirrorGovernorStats();
  return out;
}

Result<Bag> Evaluator::EvalToBag(const Expr& expr, const Database& db) {
  BAGALG_ASSIGN_OR_RETURN(Value v, Eval(expr, db));
  if (!v.IsBag()) {
    return Status::InvalidArgument("query result is not a bag: " +
                                   v.type().ToString());
  }
  return v.bag();
}

}  // namespace bagalg
