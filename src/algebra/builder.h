#ifndef BAGALG_ALGEBRA_BUILDER_H_
#define BAGALG_ALGEBRA_BUILDER_H_

/// \file builder.h
/// Fluent construction API for BALG expressions.
///
/// Free functions named after the paper's operators build shared AST nodes:
///
///   auto q = Proj(Select(Proj(Var(0), 2), Proj(Var(0), 3),
///                        Product(Input("B"), Input("B"))),
///                 {1, 4});
///
/// Lambda-binding positions (Map/Select bodies, fixpoint bodies) take an
/// expression over `Var(0)` (de Bruijn index of the innermost binder).

#include <initializer_list>
#include <vector>

#include "src/algebra/expr.h"

namespace bagalg {

/// Reference to the named database bag.
Expr Input(std::string name);
/// Literal complex object.
Expr ConstExpr(Value literal);
/// Literal bag.
Expr ConstBag(Bag bag);
/// Lambda-bound variable; depth 0 is the innermost binder.
Expr Var(size_t depth = 0);

/// B ⊎ B' — additive union.
Expr Uplus(Expr a, Expr b);
/// B − B' — monus subtraction.
Expr Monus(Expr a, Expr b);
/// B ∪ B' — maximal union.
Expr Umax(Expr a, Expr b);
/// B ∩ B' — intersection.
Expr Inter(Expr a, Expr b);
/// B × B' — Cartesian product.
Expr Product(Expr a, Expr b);

/// τ(o1,...,ok) — tupling.
Expr Tup(std::vector<Expr> fields);
Expr Tup(std::initializer_list<Expr> fields);
/// β(o) — bagging (singleton bag).
Expr Beta(Expr e);
/// α_i(o) — attribute projection, 1-based as in the paper.
Expr Proj(Expr e, size_t attr);

/// P(B) — powerset.
Expr Pow(Expr e);
/// P_b(B) — powerbag.
Expr Powbag(Expr e);
/// δ(B) — bag-destroy (flatten one level).
Expr Destroy(Expr e);
/// ε(B) — duplicate elimination.
Expr Eps(Expr e);

/// MAP φ (B), with φ given as a body over Var(0).
Expr Map(Expr body, Expr source);
/// σ_{φ=φ'}(B), with φ, φ' given as bodies over Var(0).
Expr Select(Expr lhs, Expr rhs, Expr source);

/// π_{a1,...,an}(B) — the paper's tuple projection, defined as
/// MAP λx.[α_{a1}(x),...,α_{an}(x)]. Attributes 1-based.
Expr ProjectAttrs(Expr source, std::initializer_list<size_t> attrs);
Expr ProjectAttrs(Expr source, const std::vector<size_t>& attrs);

/// nest / unnest extensions (§7). Attributes 1-based.
Expr NestExpr(Expr source, std::vector<size_t> nested_attrs);
Expr UnnestExpr(Expr source, size_t attr);

/// Inflationary fixpoint of T(X) = body(X) ∪ X starting from seed
/// (Theorem 6.6). body is over Var(0) = the current iterate.
Expr Ifp(Expr body, Expr seed);
/// Bounded inflationary fixpoint: T(X) = (body(X) ∪ X) ∩ bound.
Expr BoundedIfp(Expr body, Expr seed, Expr bound);

}  // namespace bagalg

#endif  // BAGALG_ALGEBRA_BUILDER_H_
